(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5–§6) through the simulator, then microbenchmarks the
   compiler pass itself with Bechamel.

   Usage:
     main.exe                 run everything
     main.exe quick           skip the slowest figures (fig6 sweep, fig9)
     main.exe fig4 fig7 ...   run selected pieces only                     *)

module Figures = Spf_harness.Figures

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: compile-time cost of the pass (analysis +
   code generation) on each kernel's IR.  One Test.make per kernel; the
   IR is rebuilt inside the staged closure because the pass mutates it. *)

open Bechamel
open Toolkit

let pass_test ~name build_func =
  Test.make ~name
    (Staged.stage (fun () ->
         let f = build_func () in
         ignore (Spf_core.Pass.run f)))

let pass_tests () =
  let module Is = Spf_workloads.Is in
  let module Cg = Spf_workloads.Cg in
  let module Ra = Spf_workloads.Ra in
  let module Hj = Spf_workloads.Hj in
  let module G500 = Spf_workloads.G500 in
  let g =
    G500.kronecker { G500.scale = 8; edge_factor = 8; seed = 1; max_vertices = None }
  in
  Test.make_grouped ~name:"pass"
    [
      pass_test ~name:"IS" (fun () -> Is.build_func Is.default);
      pass_test ~name:"CG" (fun () -> Cg.build_func Cg.default);
      pass_test ~name:"RA" (fun () -> Ra.build_func Ra.default);
      pass_test ~name:"HJ-2" (fun () -> Hj.build_func Hj.default_hj2);
      pass_test ~name:"HJ-8" (fun () -> Hj.build_func Hj.default_hj8);
      pass_test ~name:"G500" (fun () -> G500.build_func g);
    ]

let run_bechamel () =
  Format.printf "@.=== Pass compile-time microbenchmarks (Bechamel) ===@.";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances (pass_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) ->
          Format.printf "  %-12s %10.1f ns/run  (r² %s)@." name t
            (match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "n/a")
      | Some [] | None -> Format.printf "  %-12s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)

let pieces : (string * (unit -> unit)) list =
  [
    ("table1", Figures.table1);
    ("fig2", Figures.fig2);
    ("fig4", fun () -> Figures.fig4 ());
    ("fig5", Figures.fig5);
    ("fig6", fun () -> Figures.fig6 ());
    ("fig7", Figures.fig7);
    ("fig8", Figures.fig8);
    ("fig9", fun () -> Figures.fig9 ());
    ("fig10", Figures.fig10);
    ("ablation", Figures.ablation_flat_offsets);
    ("ablation-split", Figures.ablation_split);
    ("bechamel", run_bechamel);
  ]

let quick_set =
  [ "table1"; "fig2"; "fig4"; "fig5"; "fig7"; "fig8"; "fig10"; "bechamel" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected =
    match args with
    | [] -> List.map fst pieces
    | [ "quick" ] -> quick_set
    | names -> names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name pieces with
      | Some f ->
          let t = Unix.gettimeofday () in
          f ();
          Format.printf "  [%s: %.1fs]@." name (Unix.gettimeofday () -. t)
      | None ->
          Format.eprintf "unknown piece %S; known: quick %s@." name
            (String.concat " " (List.map fst pieces)))
    selected;
  Format.printf "@.total wall time: %.1fs@." (Unix.gettimeofday () -. t0)
