examples/custom_kernel.ml: Array Format List Spf_core Spf_ir Spf_sim Spf_workloads
