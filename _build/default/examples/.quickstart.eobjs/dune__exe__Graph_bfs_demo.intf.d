examples/graph_bfs_demo.mli:
