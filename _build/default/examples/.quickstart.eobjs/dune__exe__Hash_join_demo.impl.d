examples/hash_join_demo.ml: Format List Spf_core Spf_harness Spf_sim Spf_workloads
