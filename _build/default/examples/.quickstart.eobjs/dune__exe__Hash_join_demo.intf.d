examples/hash_join_demo.mli:
