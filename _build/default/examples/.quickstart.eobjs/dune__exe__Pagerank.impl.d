examples/pagerank.ml: Array Format Spf_core Spf_ir Spf_sim Spf_workloads
