examples/pagerank.mli:
