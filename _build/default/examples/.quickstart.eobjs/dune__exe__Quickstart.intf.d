examples/quickstart.mli:
