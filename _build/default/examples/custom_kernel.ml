(* Bring your own kernel: a three-level indirection  acc += w[y[x[i]]]
   (two dependent loads feeding the final access).  Shows the staggered
   offsets of eq. (1) on a t=3 chain, the [max_stagger] knob of §6.2, and a
   look-ahead sweep like Fig 6.

   Run with:  dune exec examples/custom_kernel.exe *)

module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory
module Interp = Spf_sim.Interp
module Machine = Spf_sim.Machine
module Config = Spf_core.Config

let n = 1 lsl 15
let m = 1 lsl 21 (* indirection tables: 8 MiB each of i32 *)

let build_kernel () =
  let b = Builder.create ~name:"triple_indirect" ~nparams:3 in
  let x = Builder.param b 0
  and y = Builder.param b 1
  and w = Builder.param b 2 in
  let head = Builder.new_block b "head" in
  let body = Builder.new_block b "body" in
  let exit = Builder.new_block b "exit" in
  let entry = Builder.current_block b in
  Builder.br b head;
  Builder.set_block b head;
  let i = Builder.phi ~name:"i" b [ (entry, Ir.Imm 0) ] in
  let acc = Builder.phi ~name:"acc" b [ (entry, Ir.Imm 0) ] in
  let c = Builder.cmp b Ir.Slt i (Ir.Imm n) in
  Builder.cbr b c body exit;
  Builder.set_block b body;
  let a = Builder.load ~name:"xa" b Ir.I32 (Builder.gep b x i 4) in
  let bv = Builder.load ~name:"yb" b Ir.I32 (Builder.gep b y a 4) in
  let wv = Builder.load ~name:"wv" b Ir.I32 (Builder.gep b w bv 4) in
  let acc' = Builder.add b acc wv in
  let i' = Builder.add b i (Ir.Imm 1) in
  Builder.br b head;
  Builder.add_incoming b i ~pred:body i';
  Builder.add_incoming b acc ~pred:body acc';
  Builder.set_block b exit;
  Builder.ret b (Some acc);
  Builder.finish b

let setup () =
  let mem = Memory.create ~initial:(1 lsl 26) () in
  let rng = Spf_workloads.Rng.create ~seed:7 in
  let arr len bound =
    Memory.alloc_i32_array mem
      (Array.init len (fun _ -> Spf_workloads.Rng.int rng bound))
  in
  let x = arr n m and y = arr m m and w = arr m 1000 in
  (mem, [| x; y; w |])

let cycles ~config () =
  let func = build_kernel () in
  (match config with
  | Some config -> ignore (Spf_core.Pass.run ~config func)
  | None -> ());
  Spf_ir.Verifier.check_exn func;
  let mem, args = setup () in
  let interp = Interp.create ~machine:Machine.a53 ~mem ~args func in
  Interp.run interp;
  ((Interp.stats interp).Spf_sim.Stats.cycles, Interp.retval interp)

let () =
  (* The pass on a t=3 chain: offsets c, 2c/3, c/3. *)
  let func = build_kernel () in
  let report = Spf_core.Pass.run func in
  Format.printf "--- pass report (t = 3 chain) ---@.%a@."
    (Spf_core.Pass.pp_report func) report;

  let baseline, expected = cycles ~config:None () in
  Format.printf "A53 baseline: %d cycles@.@." baseline;

  (* Stagger-depth ablation (§6.2 / Fig 7). *)
  Format.printf "stagger depth sweep (c = 64):@.";
  List.iter
    (fun depth ->
      let cfg = { Config.default with Config.max_stagger = depth } in
      let cy, ret = cycles ~config:(Some cfg) () in
      assert (ret = expected);
      Format.printf "  depth %d: %.2fx@." depth
        (float_of_int baseline /. float_of_int cy))
    [ 1; 2; 3 ];

  (* Look-ahead sweep (Fig 6). *)
  Format.printf "look-ahead sweep (full stagger):@.";
  List.iter
    (fun c ->
      let cy, ret = cycles ~config:(Some (Config.with_c c Config.default)) () in
      assert (ret = expected);
      Format.printf "  c = %-4d %.2fx@." c
        (float_of_int baseline /. float_of_int cy))
    [ 4; 16; 64; 256 ]
