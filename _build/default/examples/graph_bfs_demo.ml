(* Graph500-style BFS (§5.1): demonstrates the split the paper describes —
   the work-queue chain is out of the pass's reach (growing bound, stores
   into the queue), while the edge->visited stride-indirect in the inner
   loop is picked up, clamped to each vertex's edge range.

   Run with:  dune exec examples/graph_bfs_demo.exe *)

module G500 = Spf_workloads.G500
module Workload = Spf_workloads.Workload
module Machine = Spf_sim.Machine
module Runner = Spf_harness.Runner

(* The report below uses a small graph so the decision log is quick to
   produce; the speedup table uses the out-of-cache configuration (where
   the edge->visited prefetches have something to hide).  Generating the
   scale-19 Kronecker graph takes a few seconds on first use. *)
let report_params =
  { G500.scale = 12; edge_factor = 10; seed = 5; max_vertices = None }

let params = G500.large

let () =
  let b = G500.build report_params in
  let report = Spf_core.Pass.run b.Workload.func in
  Format.printf "--- pass decisions on the BFS loop nest ---@.%a@."
    (Spf_core.Pass.pp_report b.Workload.func)
    report;
  Format.printf
    "The work/vertex/edge-list loads are rejected (the queue bound grows@.\
     inside the loop and the queue itself is stored to), matching §6.1;@.\
     parent[col[e]] under the edge induction variable is prefetched with@.\
     its look-ahead clamped to the row bounds.@.@.";
  (* In-order vs out-of-order response, as in Fig 4. *)
  Format.printf "%-9s %10s %10s@." "machine" "auto" "manual";
  List.iter
    (fun machine ->
      let base = Runner.run ~machine (G500.build params) in
      let auto =
        let b = G500.build params in
        ignore (Spf_core.Pass.run b.Workload.func);
        Runner.run ~machine b
      in
      let manual = Runner.run ~machine (G500.build ~manual:G500.optimal params) in
      Format.printf "%-9s %9.2fx %9.2fx@." machine.Machine.name
        (Runner.speedup ~baseline:base auto)
        (Runner.speedup ~baseline:base manual))
    [ Machine.a53; Machine.xeon_phi ]
