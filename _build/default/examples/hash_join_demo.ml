(* Database hash-join probing (the paper's HJ workloads, §5.1): shows how
   the pass handles a hash computation in the address chain, what it can
   and cannot pick up in a linked-bucket table, and how the four machine
   models respond.

   Run with:  dune exec examples/hash_join_demo.exe *)

module Hj = Spf_workloads.Hj
module Workload = Spf_workloads.Workload
module Machine = Spf_sim.Machine
module Runner = Spf_harness.Runner

let params = { Hj.default_hj8 with Hj.n_probes = 1 lsl 14 }

let () =
  (* What does the pass do with a chained hash table? *)
  let b = Hj.build params in
  let report = Spf_core.Pass.run b.Workload.func in
  Format.printf "--- pass decisions on the HJ-8 probe loop ---@.%a@."
    (Spf_core.Pass.pp_report b.Workload.func)
    report;
  Format.printf
    "Note: the stride->hash->bucket chain is prefetched; the linked-list@.\
     walk is rejected (its address flows through a loop phi), except for@.\
     the first node, which §4.6 hoisting prefetches from the bucket's@.\
     next-pointer.  Manual code with runtime knowledge of the chain@.\
     length staggers all four accesses (§5.1).@.@.";
  (* Compare baseline / auto / manual across machines. *)
  Format.printf "%-9s %12s %12s@." "machine" "auto" "manual(d=3)";
  List.iter
    (fun machine ->
      let base = Runner.run ~machine (Hj.build params) in
      let auto =
        let b = Hj.build params in
        ignore (Spf_core.Pass.run b.Workload.func);
        Runner.run ~machine b
      in
      let manual =
        Runner.run ~machine (Hj.build ~manual:Hj.optimal_hj8 params)
      in
      Format.printf "%-9s %11.2fx %11.2fx@." machine.Machine.name
        (Runner.speedup ~baseline:base auto)
        (Runner.speedup ~baseline:base manual))
    Machine.all
