(* PageRank-style push iteration — a workload the paper's introduction
   motivates (graph analytics) but does not evaluate.  Shows the public API
   end to end on a kernel the pass has never seen:

     for e in 0..m:                       (flat edge sweep, CSR-by-source)
       contrib[dst[e]] += rank_over_deg[src[e]]

   Both `src` and `dst` are scanned sequentially; the gather from
   rank_over_deg and the read-modify-write into contrib are the indirect
   accesses.  The pass prefetches both chains (stores into contrib do not
   block them: §4.2 only forbids stores to the arrays that *feed
   addresses*, and the address chains read src/dst, not contrib), each
   with its stride companion — the decision log below shows all four.

   Run with:  dune exec examples/pagerank.exe *)

module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory
module Interp = Spf_sim.Interp
module Machine = Spf_sim.Machine
module G500 = Spf_workloads.G500

let graph_params =
  { G500.scale = 16; edge_factor = 10; seed = 11; max_vertices = None }

(* params: 0 = src (i32[m]), 1 = dst (i32[m]), 2 = rank_over_deg (f64[n]),
   3 = contrib (f64[n]) *)
let build_kernel ~m =
  let b = Builder.create ~name:"pagerank_push" ~nparams:4 in
  let src = Builder.param b 0
  and dst = Builder.param b 1
  and rod = Builder.param b 2
  and contrib = Builder.param b 3 in
  let _ =
    Builder.counted_loop b ~init:(Ir.Imm 0) ~bound:(Ir.Imm m) ~step:(Ir.Imm 1)
      (fun e ->
        let s = Builder.load ~name:"src" b Ir.I32 (Builder.gep b src e 4) in
        let d = Builder.load ~name:"dst" b Ir.I32 (Builder.gep b dst e 4) in
        let r = Builder.load ~name:"rank" b Ir.F64 (Builder.gep b rod s 8) in
        let cell = Builder.gep ~name:"cell" b contrib d 8 in
        let cur = Builder.load ~name:"cur" b Ir.F64 cell in
        Builder.store b Ir.F64 cell (Builder.binop b Ir.Fadd cur r))
  in
  Builder.ret b None;
  Builder.finish b

let () =
  (* Flatten a Kronecker graph into (src, dst) edge arrays. *)
  let g = G500.kronecker graph_params in
  let m = Array.length g.G500.col in
  let src = Array.make m 0 in
  for v = 0 to g.G500.n - 1 do
    for e = g.G500.row.(v) to g.G500.row.(v + 1) - 1 do
      src.(e) <- v
    done
  done;
  let degree v = max 1 (g.G500.row.(v + 1) - g.G500.row.(v)) in
  let rod = Array.init g.G500.n (fun v -> 1.0 /. float_of_int (degree v)) in
  (* Reference result. *)
  let expected = Array.make g.G500.n 0.0 in
  for e = 0 to m - 1 do
    expected.(g.G500.col.(e)) <- expected.(g.G500.col.(e)) +. rod.(src.(e))
  done;
  let simulate ~prefetched =
    let mem = Memory.create ~initial:(1 lsl 25) () in
    let src_b = Memory.alloc_i32_array mem src in
    let dst_b = Memory.alloc_i32_array mem g.G500.col in
    let rod_b = Memory.alloc_f64_array mem rod in
    let contrib_b = Memory.alloc mem (8 * g.G500.n) in
    let func = build_kernel ~m in
    if prefetched then begin
      let report = Spf_core.Pass.run func in
      Format.printf "--- pass decisions ---@.%a@."
        (Spf_core.Pass.pp_report func) report
    end;
    Spf_ir.Verifier.check_exn func;
    let interp =
      Interp.create ~machine:Machine.a53 ~mem
        ~args:[| src_b; dst_b; rod_b; contrib_b |]
        func
    in
    Interp.run interp;
    let got = Memory.read_f64_array mem ~base:contrib_b ~len:g.G500.n in
    Array.iteri
      (fun v x -> assert (abs_float (x -. expected.(v)) < 1e-9))
      got;
    (Interp.stats interp).Spf_sim.Stats.cycles
  in
  let base = simulate ~prefetched:false in
  let pf = simulate ~prefetched:true in
  Format.printf "A53: baseline %d cycles, prefetched %d cycles -> %.2fx@."
    base pf
    (float_of_int base /. float_of_int pf)
