(* Quickstart: build the paper's motivating loop (Fig 1 / code listing 1),
   run the automatic prefetching pass over it, and simulate the before/after
   on a Haswell-class machine model.

     for (i = 0; i < n; i++) target[base[i]]++;

   Run with:  dune exec examples/quickstart.exe *)

module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory
module Interp = Spf_sim.Interp
module Machine = Spf_sim.Machine

let n_keys = 1 lsl 16
let n_buckets = 1 lsl 22

(* 1. Build the kernel in SSA IR with the builder API. *)
let build_kernel () =
  let b = Builder.create ~name:"stride_indirect" ~nparams:2 in
  let base = Builder.param b 0 and target = Builder.param b 1 in
  let _exit =
    Builder.counted_loop b ~init:(Ir.Imm 0) ~bound:(Ir.Imm n_keys)
      ~step:(Ir.Imm 1) (fun i ->
        let k = Builder.load ~name:"key" b Ir.I32 (Builder.gep b base i 4) in
        let slot = Builder.gep ~name:"slot" b target k 4 in
        let v = Builder.load ~name:"count" b Ir.I32 slot in
        Builder.store b Ir.I32 slot (Builder.add b v (Ir.Imm 1)))
  in
  Builder.ret b None;
  Builder.finish b

(* 2. Set up memory: a random index array and an empty bucket array. *)
let setup () =
  let mem = Memory.create ~initial:(1 lsl 25) () in
  let rng = Spf_workloads.Rng.create ~seed:1 in
  let base =
    Memory.alloc_i32_array mem
      (Array.init n_keys (fun _ -> Spf_workloads.Rng.int rng n_buckets))
  in
  let target = Memory.alloc mem (4 * n_buckets) in
  (mem, [| base; target |])

let simulate func =
  let mem, args = setup () in
  let interp = Interp.create ~machine:Machine.haswell ~mem ~args func in
  Interp.run interp;
  Interp.stats interp

let () =
  let func = build_kernel () in
  Format.printf "--- kernel before the pass ---@.%s@."
    (Spf_ir.Printer.func_to_string func);
  let before = simulate (build_kernel ()) in

  (* 3. Run the pass (defaults: c = 64, stride companions on). *)
  let report = Spf_core.Pass.run func in
  Format.printf "--- pass report ---@.%a@."
    (Spf_core.Pass.pp_report func) report;
  Format.printf "--- kernel after the pass ---@.%s@."
    (Spf_ir.Printer.func_to_string func);

  (* 4. The transformation is verified and semantics-preserving. *)
  Spf_ir.Verifier.check_exn func;

  (* 5. Simulate both versions. *)
  let after = simulate func in
  Format.printf "baseline: %d cycles (%d instructions)@."
    before.Spf_sim.Stats.cycles before.Spf_sim.Stats.instructions;
  Format.printf "prefetch: %d cycles (%d instructions, %d prefetches)@."
    after.Spf_sim.Stats.cycles after.Spf_sim.Stats.instructions
    after.Spf_sim.Stats.sw_prefetches;
  Format.printf "speedup: %.2fx@."
    (float_of_int before.Spf_sim.Stats.cycles
    /. float_of_int after.Spf_sim.Stats.cycles)
