lib/core/analysis.ml: Array List Spf_ir
