lib/core/analysis.mli: Spf_ir
