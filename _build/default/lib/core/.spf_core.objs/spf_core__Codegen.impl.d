lib/core/codegen.ml: Analysis Array Config Dfs Hashtbl List Safety Schedule Spf_ir
