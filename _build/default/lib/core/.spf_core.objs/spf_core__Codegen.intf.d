lib/core/codegen.mli: Analysis Config Dfs Safety
