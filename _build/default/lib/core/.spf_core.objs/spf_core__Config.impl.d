lib/core/config.ml:
