lib/core/config.mli:
