lib/core/dfs.ml: Analysis Hashtbl Int List Option Set Spf_ir
