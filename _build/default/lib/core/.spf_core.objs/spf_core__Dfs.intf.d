lib/core/dfs.mli: Analysis Spf_ir
