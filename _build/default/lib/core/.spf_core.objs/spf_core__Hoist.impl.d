lib/core/hoist.ml: Analysis Config Hashtbl List Spf_ir
