lib/core/hoist.mli: Analysis Config Spf_ir
