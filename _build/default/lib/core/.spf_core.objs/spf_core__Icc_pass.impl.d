lib/core/icc_pass.ml: Analysis Codegen Config Dfs List Pass Safety Spf_ir
