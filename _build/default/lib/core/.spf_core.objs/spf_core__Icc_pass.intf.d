lib/core/icc_pass.mli: Config Pass Spf_ir
