lib/core/pass.ml: Analysis Codegen Config Dfs Format Hoist List Safety Spf_ir
