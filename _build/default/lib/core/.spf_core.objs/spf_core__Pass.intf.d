lib/core/pass.mli: Codegen Config Format Hoist Safety Spf_ir
