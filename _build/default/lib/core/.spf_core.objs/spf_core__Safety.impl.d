lib/core/safety.ml: Analysis Array Config Dfs Int List Set Spf_ir
