lib/core/safety.mli: Analysis Config Dfs Spf_ir
