lib/core/schedule.ml: List
