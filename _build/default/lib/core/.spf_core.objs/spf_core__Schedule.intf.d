lib/core/schedule.mli:
