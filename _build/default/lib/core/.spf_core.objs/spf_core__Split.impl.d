lib/core/split.ml: Analysis Array Config Hashtbl List Option Pass Spf_ir
