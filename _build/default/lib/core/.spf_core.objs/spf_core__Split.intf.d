lib/core/split.mli: Config Pass Spf_ir
