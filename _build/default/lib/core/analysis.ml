module Ir = Spf_ir.Ir
module Cfg = Spf_ir.Cfg
module Dom = Spf_ir.Dom
module Loops = Spf_ir.Loops
module Indvar = Spf_ir.Indvar

(* Read-only analysis bundle shared by every stage of the pass.  Built once
   per function; the pass gathers and vets all candidates against it before
   mutating the function, so it never works from stale data. *)

type t = {
  func : Ir.func;
  cfg : Cfg.t;
  dom : Dom.t;
  loops : Loops.t;
  ivs : Indvar.t;
  order : int array; (* program-order key per instruction id *)
}

let order_stride = 1 lsl 20

let make (func : Ir.func) =
  let cfg = Cfg.build func in
  let dom = Dom.build cfg in
  let loops = Loops.analyze func cfg dom in
  let ivs = Indvar.analyze func cfg loops in
  let order = Array.make (max 1 (Ir.n_instrs func)) max_int in
  Ir.iter_blocks func (fun b ->
      let r = Cfg.rpo_index cfg b.bid in
      if r >= 0 then
        Array.iteri (fun pos id -> order.(id) <- (r * order_stride) + pos) b.instrs);
  { func; cfg; dom; loops; ivs; order }

let compare_order t a b = compare t.order.(a) t.order.(b)

let sort_program_order t ids = List.sort (compare_order t) ids

(* The loop a candidate's induction variable belongs to. *)
let loop_of_iv t (iv : Indvar.ivar) = Loops.loop t.loops iv.loop_index

(* Base-object roots for the simple may-alias test of §4.2: addresses are
   traced through geps to an allocation or parameter.  Distinct roots are
   assumed not to alias (our IR builders never create aliased parameters);
   anything else is [Unknown] and treated conservatively. *)
type root = Ralloc of int | Rparam of int | Unknown

let rec root_of t (o : Ir.operand) =
  match o with
  | Ir.Imm _ | Ir.Fimm _ -> Unknown
  | Ir.Var id -> (
      match (Ir.instr t.func id).kind with
      | Ir.Gep { base; _ } -> root_of t base
      | Ir.Alloc _ -> Ralloc id
      | Ir.Param k -> Rparam k
      | Ir.Binop _ | Ir.Cmp _ | Ir.Select _ | Ir.Load _ | Ir.Store _
      | Ir.Phi _ | Ir.Call _ | Ir.Prefetch _ -> Unknown)

let roots_may_alias a b =
  match (a, b) with
  | Unknown, _ | _, Unknown -> true
  | Ralloc x, Ralloc y -> x = y
  | Rparam x, Rparam y -> x = y
  | Ralloc _, Rparam _ | Rparam _, Ralloc _ -> false
