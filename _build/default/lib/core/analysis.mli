(** Read-only analysis bundle shared by every stage of the pass. *)

type t = {
  func : Spf_ir.Ir.func;
  cfg : Spf_ir.Cfg.t;
  dom : Spf_ir.Dom.t;
  loops : Spf_ir.Loops.t;
  ivs : Spf_ir.Indvar.t;
  order : int array;  (** program-order key per instruction id *)
}

val make : Spf_ir.Ir.func -> t

val compare_order : t -> int -> int -> int
val sort_program_order : t -> int list -> int list

val loop_of_iv : t -> Spf_ir.Indvar.ivar -> Spf_ir.Loops.loop

(** Base-object roots for the simple may-alias test of §4.2. *)
type root = Ralloc of int | Rparam of int | Unknown

val root_of : t -> Spf_ir.Ir.operand -> root
val roots_may_alias : root -> root -> bool
