module Ir = Spf_ir.Ir
module Loops = Spf_ir.Loops
module Indvar = Spf_ir.Indvar
module Iset = Set.Make (Int)

(* The depth-first search of Algorithm 1 (lines 1-24): starting from a load,
   walk the data-dependence graph backwards until induction variables are
   found, recording every instruction on each path.  Search stops along a
   path at any instruction defined outside all loops.  When paths reach
   several induction variables we keep the one belonging to the innermost
   loop ("closest loop to the load", line 21) and merge the paths that
   depend on it (line 24). *)

type candidate = {
  load_id : int;
  iv : Indvar.ivar;
  slice : int list;
      (* the address-generation code: every instruction on a path from the
         induction variable to the load (inclusive of the load, exclusive of
         the induction phi), in program order *)
}

(* One DFS result: paths grouped by the induction variable they reached. *)
type paths = (Indvar.ivar * Iset.t) list

let merge_paths (a : Analysis.t) (paths : paths) : (Indvar.ivar * Iset.t) option
    =
  match paths with
  | [] -> None
  | [ p ] -> Some p
  | _ ->
      (* Pick the induction variable of the deepest loop, then union every
         path that reached it. *)
      let depth (iv : Indvar.ivar) = (Loops.loop a.Analysis.loops iv.loop_index).depth in
      let best =
        List.fold_left
          (fun acc (iv, _) ->
            match acc with
            | Some b when depth b >= depth iv -> acc
            | _ -> Some iv)
          None paths
      in
      Option.map
        (fun (best : Indvar.ivar) ->
          let set =
            List.fold_left
              (fun acc ((iv : Indvar.ivar), s) ->
                if iv.iv_id = best.iv_id then Iset.union acc s else acc)
              Iset.empty paths
          in
          (best, set))
        best

let find_candidate (a : Analysis.t) (load : Ir.instr) : candidate option =
  let func = a.Analysis.func in
  let memo : (int, (Indvar.ivar * Iset.t) option) Hashtbl.t = Hashtbl.create 32 in
  let on_path : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let rec dfs id : (Indvar.ivar * Iset.t) option =
    match Hashtbl.find_opt memo id with
    | Some r -> r
    | None ->
        if Hashtbl.mem on_path id then None (* loop-carried cycle: dead path *)
        else begin
          Hashtbl.replace on_path id ();
          let i = Ir.instr func id in
          let paths = ref [] in
          List.iter
            (fun (o : Ir.operand) ->
              match o with
              | Ir.Imm _ | Ir.Fimm _ -> ()
              | Ir.Var v -> (
                  match Indvar.ivar_of a.Analysis.ivs v with
                  | Some iv ->
                      (* Found an induction variable: this path ends. *)
                      paths := (iv, Iset.singleton id) :: !paths
                  | None ->
                      let vi = Ir.instr func v in
                      if
                        Ir.defines_value vi.kind
                        && Loops.in_any_loop a.Analysis.loops vi.block
                      then
                        (match dfs v with
                        | Some (iv, set) ->
                            paths := (iv, Iset.add id set) :: !paths
                        | None -> ())))
            (Ir.srcs i.kind);
          Hashtbl.remove on_path id;
          let r = merge_paths a !paths in
          Hashtbl.replace memo id r;
          r
        end
  in
  match dfs load.id with
  | None -> None
  | Some (iv, set) ->
      (* The induction variable's loop must actually contain the load for
         look-ahead to make sense. *)
      let l = Analysis.loop_of_iv a iv in
      if Loops.contains l load.block then
        Some
          {
            load_id = load.id;
            iv;
            slice = Analysis.sort_program_order a (Iset.elements set);
          }
      else None

(* Loads of the slice in dependence (= program) order; the last one is the
   candidate load itself.  [t] of eq. (1) is the length of this list. *)
let chain_loads (a : Analysis.t) (c : candidate) =
  List.filter
    (fun id ->
      match (Ir.instr a.Analysis.func id).kind with
      | Ir.Load _ -> true
      | _ -> false)
    c.slice

(* Transitive dependencies of [root] within the slice, including [root],
   in program order.  This is the code one staggered prefetch must clone. *)
let sub_slice (a : Analysis.t) (c : candidate) ~root =
  let func = a.Analysis.func in
  let in_slice = Iset.of_list c.slice in
  let keep = Hashtbl.create 16 in
  let rec visit id =
    if (not (Hashtbl.mem keep id)) && Iset.mem id in_slice then begin
      Hashtbl.replace keep id ();
      List.iter
        (function
          | Ir.Var v -> visit v
          | Ir.Imm _ | Ir.Fimm _ -> ())
        (Ir.srcs (Ir.instr func id).kind)
    end
  in
  visit root;
  List.filter (Hashtbl.mem keep) c.slice
