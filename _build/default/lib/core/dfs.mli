(** The depth-first search of Algorithm 1 (lines 1–24): walk the
    data-dependence graph backwards from a load until induction variables
    are found, keep the induction variable of the innermost loop when
    several are reachable, and merge the paths that depend on it. *)

type candidate = {
  load_id : int;
  iv : Spf_ir.Indvar.ivar;
  slice : int list;
      (** address-generation code: every instruction on a path from the
          induction variable to the load (load included, induction phi
          excluded), in program order *)
}

val find_candidate : Analysis.t -> Spf_ir.Ir.instr -> candidate option
(** [None] when no path reaches an induction variable whose loop contains
    the load. *)

val chain_loads : Analysis.t -> candidate -> int list
(** The slice's loads in dependence order; the candidate load comes last.
    Its length is [t] in the scheduling formula (eq. 1). *)

val sub_slice : Analysis.t -> candidate -> root:int -> int list
(** Transitive in-slice dependencies of [root], including [root], in
    program order — the code one staggered prefetch clones. *)
