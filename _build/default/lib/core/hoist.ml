module Ir = Spf_ir.Ir
module Loops = Spf_ir.Loops

(* Prefetch loop hoisting (§4.6).

   Loads inside an inner loop whose address depends on a header phi taking
   its initial value from outside the loop (a linked-list walk, or an edge
   scan seeded by an outer-loop value) cannot be given look-ahead within the
   inner loop.  When the path from that phi to the load is pure address
   arithmetic — no further loads, calls or phis — we can substitute the
   phi's initial value, hoist the cloned computation into the preheader,
   and prefetch the inner loop's first access one trip early.

   Because the clone contains no loads the hoisted code cannot fault, which
   discharges §4.6's safety obligation trivially (the restricted form we
   implement; DESIGN.md §5 records the restriction). *)

type hoisted = {
  load_id : int;
  prefetch_id : int;
  preheader : int;
  support_ids : int list;
}

exception Not_hoistable

(* Gather the address-computation chain of [load] within [l], substituting
   header phis by their initial values.  Returns the chain (ids inside the
   loop, in discovery postorder = dependence order) and the substitution. *)
let chain_of (a : Analysis.t) (l : Loops.loop) (load : Ir.instr) =
  let func = a.Analysis.func in
  let subst : (int, Ir.operand) Hashtbl.t = Hashtbl.create 4 in
  let chain = ref [] in
  let visited = Hashtbl.create 8 in
  let has_phi = ref false in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      let i = Ir.instr func id in
      if not (Loops.contains l i.block) then () (* usable directly *)
      else
        match i.kind with
        | Ir.Phi incoming when i.block = l.header -> (
            let outside, _ =
              List.partition (fun (p, _) -> not (Loops.contains l p)) incoming
            in
            match outside with
            | [ (_, (Ir.Var _ as init)) ] ->
                (* §4.6: the phi must reference a *value* from an outer
                   loop; constant-seeded phis are ordinary induction
                   variables, served by the main pass's look-ahead. *)
                has_phi := true;
                Hashtbl.replace subst id init
            | _ -> raise Not_hoistable)
        | Ir.Load _ when id <> load.id -> raise Not_hoistable
        | Ir.Call _ | Ir.Phi _ -> raise Not_hoistable
        | Ir.Store _ | Ir.Prefetch _ -> raise Not_hoistable
        | Ir.Binop _ | Ir.Cmp _ | Ir.Select _ | Ir.Gep _ | Ir.Alloc _
        | Ir.Param _ | Ir.Load _ ->
            List.iter
              (function
                | Ir.Var v -> visit v
                | Ir.Imm _ | Ir.Fimm _ -> ())
              (Ir.srcs i.kind);
            chain := id :: !chain
    end
  in
  visit load.id;
  if not !has_phi then raise Not_hoistable;
  (List.rev !chain, subst)

let try_hoist (a : Analysis.t) (l : Loops.loop) (load : Ir.instr) =
  match l.preheader with
  | None -> None
  | Some preheader -> (
      match chain_of a l load with
      | exception Not_hoistable -> None
      | chain, subst ->
          let func = a.Analysis.func in
          let clones = Hashtbl.create 8 in
          let map_operand (o : Ir.operand) =
            match o with
            | Ir.Var v -> (
                match Hashtbl.find_opt subst v with
                | Some init -> init
                | None -> (
                    match Hashtbl.find_opt clones v with
                    | Some c -> Ir.Var c
                    | None -> o))
            | Ir.Imm _ | Ir.Fimm _ -> o
          in
          let new_ids = ref [] in
          let prefetch_id = ref (-1) in
          List.iter
            (fun id ->
              let orig = Ir.instr func id in
              let mapped = Ir.map_srcs map_operand orig.kind in
              let kind =
                if id = load.id then
                  match mapped with
                  | Ir.Load (_, addr) -> Ir.Prefetch addr
                  | _ -> assert false
                else mapped
              in
              let c =
                Ir.fresh_instr func ~name:("pfh." ^ orig.name) ~block:preheader
                  kind
              in
              Hashtbl.replace clones id c.id;
              if id = load.id then prefetch_id := c.id
              else new_ids := c.id :: !new_ids)
            chain;
          let support = List.rev !new_ids in
          Ir.insert_at_end func ~bid:preheader (support @ [ !prefetch_id ]);
          Some
            {
              load_id = load.id;
              prefetch_id = !prefetch_id;
              preheader;
              support_ids = support;
            })

(* Hoist every eligible load (outside [exclude_blocks]).  Runs before the
   main pass on the pristine function; the code it inserts contains no
   loads, so it cannot create new candidates for the main pass. *)
let run ?(exclude_blocks = []) (a : Analysis.t) (_config : Config.t) =
  let func = a.Analysis.func in
  let loads = ref [] in
  Ir.iter_instrs func (fun i ->
      match i.kind with
      | Ir.Load _ when not (List.mem i.block exclude_blocks) -> (
          match Loops.innermost a.Analysis.loops i.block with
          | Some li -> loads := (i, li) :: !loads
          | None -> ())
      | _ -> ());
  List.filter_map
    (fun (load, li) -> try_hoist a (Loops.loop a.Analysis.loops li) load)
    (List.rev !loads)
