(** Model of the Intel compiler's stride-indirect prefetching pass — the
    "ICC-generated" baseline of Fig 4(d).  Accepts only pure [A[B[i]]]
    chains under compile-time-constant trip counts; hash computation
    (RA, HJ) and runtime bounds (G500, CG-with-CSR) defeat it. *)

val run : ?config:Config.t -> Spf_ir.Ir.func -> Pass.report
