(** The automatic software-prefetch generation pass (Algorithm 1, with the
    fault-avoidance rules of §4.2, eq. 1 scheduling, and §4.6 hoisting). *)

type decision =
  | Emitted of Codegen.emitted list
  | Hoisted of Hoist.hoisted
  | Rejected of Safety.reject

type report = {
  decisions : (int * decision) list;
      (** per inspected load (id), in program order *)
  n_prefetches : int;
  n_support : int;  (** address-generation instructions added *)
}

val count_prefetches : (int * decision) list -> int * int
(** (prefetches, support instructions) summed over a decision list. *)

val run :
  ?config:Config.t -> ?exclude_blocks:int list -> Spf_ir.Ir.func -> report
(** Mutate [func] in place, inserting prefetches and their address
    generation; returns what was done and why.  Loads in [exclude_blocks]
    are not considered (used by {!Split} to leave peeled epilogues
    prefetch-free). *)

val pp_report : Spf_ir.Ir.func -> Format.formatter -> report -> unit
