(* Prefetch scheduling (§4.4, eq. 1):

       offset(l) = c * (t - l) / t

   where [t] is the number of loads in the dependent chain and [l] the
   position of a given load (0 = the sequential look-ahead access).  Each
   chain load is thereby prefetched c/t iterations before the next one
   consumes it, spacing dependent prefetches evenly: for the paper's
   integer-sort example (t = 2, c = 64) the stride access is prefetched at
   i+64 and the indirect one at i+32. *)

let offset ~c ~t ~l =
  if t <= 0 then invalid_arg "Schedule.offset: empty chain";
  c * (t - l) / t

let offsets ~c ~t = List.init t (fun l -> offset ~c ~t ~l)
