(** Prefetch scheduling (§4.4, eq. 1): [offset = c (t - l) / t]. *)

val offset : c:int -> t:int -> l:int -> int
(** Look-ahead distance in iterations for the [l]-th load (0-based) of a
    [t]-load dependent chain. *)

val offsets : c:int -> t:int -> int list
(** All [t] offsets, outermost load first. *)
