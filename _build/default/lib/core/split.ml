module Ir = Spf_ir.Ir
module Loops = Spf_ir.Loops
module Indvar = Spf_ir.Indvar

(* Loop splitting for clamp-free prefetching.

   The pass guards every look-ahead index with [min (iv + off) limit]
   (Algorithm 1, line 49).  The Intel compiler instead "reduc[es] overhead
   by moving the checks on the prefetch to outer loops" (§6.1): run the
   bulk of the loop over [init, bound - c), where [iv + off < bound] holds
   for every offset the pass emits, and finish with an epilogue over the
   remaining iterations.  The pass can then skip the clamps in the main
   loop (Config.assume_margin) — saving one add-like instruction per
   prefetch per iteration, the overhead Fig 8 measures.

   Mechanically we clone the loop to serve as the *main* loop and let the
   original become the epilogue, which keeps every exit use of the
   original loop's values intact:

       preheader -> clone(header..latch) over [init, max(init, bound-c))
                 -> original loop, its phis re-seeded with the clone's
                    final values, over [wherever the clone stopped, bound)

   Eligibility is deliberately conservative: a canonical +1 induction
   variable, a loop-invariant bound tested with [slt] in the header, a
   single latch, and the header as the only exit. *)

type split = {
  loop_header : int; (* original header (now the epilogue's) *)
  main_header : int; (* cloned header: the clamp-free main loop *)
  main_blocks : int list; (* all cloned block ids *)
  epilogue_blocks : int list; (* the original loop's blocks *)
}

(* A loop is splittable when it has the canonical counted shape. *)
let eligible (a : Analysis.t) (l : Loops.loop) =
  let func = a.Analysis.func in
  match l.latches with
  | [ _latch ] -> (
      let header = Ir.block func l.header in
      match header.term with
      | Ir.Cbr (_, _, _) -> (
          (* The header must be the only exit. *)
          match Loops.exit_edges a.Analysis.cfg l with
          | [ (from, _) ] when from = l.header -> (
              (* Exactly one canonical induction variable with slt bound. *)
              let ivs =
                List.filter
                  (fun (iv : Indvar.ivar) -> iv.loop_index = l.index)
                  (Indvar.ivars a.Analysis.ivs)
              in
              match ivs with
              | [ iv ]
                when iv.step = 1
                     && iv.bound <> None
                     && iv.bound_cmp = Some Ir.Slt ->
                  Some iv
              | _ -> None)
          | _ -> None)
      | Ir.Br _ | Ir.Ret _ | Ir.Unreachable -> None)
  | _ -> None

(* Clone the loop's blocks with an operand remapping; returns the block id
   map and instruction id map. *)
let clone_loop (func : Ir.func) (l : Loops.loop) =
  let block_map = Hashtbl.create 8 in
  let instr_map = Hashtbl.create 32 in
  (* Create the blocks first so branches can be remapped. *)
  Array.iteri
    (fun bid inside ->
      if inside then begin
        let orig = Ir.block func bid in
        let nb =
          Ir.add_block func ~name:("main." ^ orig.Ir.bname) Ir.Unreachable
        in
        Hashtbl.replace block_map bid nb.Ir.bid
      end)
    l.Loops.member;
  let map_block b = match Hashtbl.find_opt block_map b with Some b' -> b' | None -> b in
  let map_operand (o : Ir.operand) =
    match o with
    | Ir.Var v -> (
        match Hashtbl.find_opt instr_map v with
        | Some v' -> Ir.Var v'
        | None -> o)
    | Ir.Imm _ | Ir.Fimm _ -> o
  in
  (* Clone instructions in program order per block. *)
  Array.iteri
    (fun bid inside ->
      if inside then begin
        let orig = Ir.block func bid in
        let nbid = map_block bid in
        let ids =
          Array.to_list orig.Ir.instrs
          |> List.map (fun id ->
                 let oi = Ir.instr func id in
                 let ni =
                   Ir.fresh_instr func ~name:oi.Ir.name ~block:nbid oi.Ir.kind
                 in
                 Hashtbl.replace instr_map id ni.Ir.id;
                 ni.Ir.id)
        in
        Ir.insert_at_end func ~bid:nbid ids
      end)
    l.Loops.member;
  (* Remap the clones' operands and phi labels, and the terminators. *)
  Hashtbl.iter
    (fun _ nid ->
      let ni = Ir.instr func nid in
      let kind = Ir.map_srcs map_operand ni.Ir.kind in
      let kind =
        match kind with
        | Ir.Phi incoming ->
            Ir.Phi (List.map (fun (p, v) -> (map_block p, v)) incoming)
        | k -> k
      in
      ni.Ir.kind <- kind)
    instr_map;
  Array.iteri
    (fun bid inside ->
      if inside then begin
        let orig = Ir.block func bid in
        let nb = Ir.block func (map_block bid) in
        nb.Ir.term <-
          (match orig.Ir.term with
          | Ir.Br b -> Ir.Br (map_block b)
          | Ir.Cbr (c, t, e) -> Ir.Cbr (map_operand c, map_block t, map_block e)
          | (Ir.Ret _ | Ir.Unreachable) as t -> t)
      end)
    l.Loops.member;
  (block_map, instr_map)

(* Split one eligible loop by margin [c]. *)
let split_loop (a : Analysis.t) (l : Loops.loop) (iv : Indvar.ivar) ~c =
  let func = a.Analysis.func in
  match l.preheader with
  | None -> None
  | Some preheader ->
      let bound = Option.get iv.bound in
      let block_map, instr_map = clone_loop func l in
      let main_header = Hashtbl.find block_map l.header in
      (* Main-loop bound: max(init, bound - c), materialised in the
         preheader. *)
      let sub =
        Ir.fresh_instr func ~name:"split.sub" ~block:preheader
          (Ir.Binop (Ir.Sub, bound, Ir.Imm c))
      in
      let main_bound =
        Ir.fresh_instr func ~name:"split.bound" ~block:preheader
          (Ir.Binop (Ir.Smax, iv.init, Ir.Var sub.id))
      in
      Ir.insert_at_end func ~bid:preheader [ sub.id; main_bound.id ];
      (* Point the preheader at the main loop. *)
      (Ir.block func preheader).Ir.term <-
        (match (Ir.block func preheader).Ir.term with
        | Ir.Br b when b = l.header -> Ir.Br main_header
        | Ir.Cbr (cnd, t, e) ->
            let swap b = if b = l.header then main_header else b in
            Ir.Cbr (cnd, swap t, swap e)
        | t -> t);
      (* The main loop's header compare tests against the reduced bound,
         and its exit edge enters the original (epilogue) header. *)
      let mh = Ir.block func main_header in
      (match mh.Ir.term with
      | Ir.Cbr (Ir.Var cid, bt, bf) ->
          let ci = Ir.instr func cid in
          (match ci.Ir.kind with
          | Ir.Cmp (pred, lhs, _) -> ci.Ir.kind <- Ir.Cmp (pred, lhs, Ir.Var main_bound.id)
          | _ -> ());
          let exit_to_epilogue b = if Loops.contains l b || Hashtbl.fold (fun _ v acc -> acc || v = b) block_map false then b else l.header in
          mh.Ir.term <- Ir.Cbr (Ir.Var cid, exit_to_epilogue bt, exit_to_epilogue bf)
      | _ -> ());
      (* Re-seed the epilogue's header phis: the preheader edge is replaced
         by the main-loop header, carrying each phi's cloned value. *)
      Array.iter
        (fun id ->
          let i = Ir.instr func id in
          match i.Ir.kind with
          | Ir.Phi incoming ->
              i.Ir.kind <-
                Ir.Phi
                  (List.map
                     (fun (p, v) ->
                       if Loops.contains l p then (p, v)
                       else
                         ( main_header,
                           Ir.Var (Hashtbl.find instr_map i.Ir.id) ))
                     incoming)
          | _ -> ())
        (Ir.block func l.header).Ir.instrs;
      let epilogue = ref [] in
      Array.iteri
        (fun bid inside -> if inside then epilogue := bid :: !epilogue)
        l.Loops.member;
      Some
        {
          loop_header = l.header;
          main_header;
          main_blocks = Hashtbl.fold (fun _ v acc -> v :: acc) block_map [];
          epilogue_blocks = !epilogue;
        }

(* Split every eligible top-level loop; returns the splits performed. *)
let run ?(config = Config.default) (func : Ir.func) : split list =
  let a = Analysis.make func in
  let candidates =
    Array.to_list (Loops.loops a.Analysis.loops)
    |> List.filter_map (fun (l : Loops.loop) ->
           if l.depth = 1 then
             Option.map (fun iv -> (l, iv)) (eligible a l)
           else None)
  in
  List.filter_map
    (fun (l, iv) -> split_loop a l iv ~c:config.Config.c)
    candidates

(* The full recipe modelled on ICC's hoisted checks: peel each eligible
   loop by [config.c], then run the pass with clamps suppressed in the
   peeled main loops and the epilogues left prefetch-free. *)
let split_and_prefetch ?(config = Config.default) (func : Ir.func) :
    split list * Pass.report =
  let splits = run ~config func in
  let epilogue_blocks = List.concat_map (fun s -> s.epilogue_blocks) splits in
  let config =
    if splits = [] then config
    else { config with Config.assume_margin = config.Config.c }
  in
  let report = Pass.run ~config ~exclude_blocks:epilogue_blocks func in
  (splits, report)
