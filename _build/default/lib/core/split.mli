(** Loop splitting for clamp-free prefetching — the hoisted-checks
    optimisation the paper attributes to the Intel compiler (§6.1).

    Each eligible counted loop is peeled: a cloned {e main} loop runs over
    [[init, max(init, bound - c))], where [iv + off < bound] holds for
    every offset the pass can emit, and the original loop finishes the
    remaining iterations as an epilogue.  Run the pass afterwards with
    {!Config.t.assume_margin}[ = c] and the epilogue excluded, or use
    {!split_and_prefetch} which does both. *)

type split = {
  loop_header : int;  (** original header — now the epilogue's *)
  main_header : int;  (** the cloned, clamp-free main loop's header *)
  main_blocks : int list;
  epilogue_blocks : int list;
}

val run : ?config:Config.t -> Spf_ir.Ir.func -> split list
(** Peel every eligible top-level loop by [config.c].  Eligibility:
    canonical +1 induction variable, loop-invariant [slt] bound tested in
    the header, single latch, header as the only exit, and a preheader. *)

val split_and_prefetch :
  ?config:Config.t -> Spf_ir.Ir.func -> split list * Pass.report
(** The full recipe: {!run}, then {!Pass.run} with clamps suppressed in
    the peeled main loops and epilogues left prefetch-free. *)
