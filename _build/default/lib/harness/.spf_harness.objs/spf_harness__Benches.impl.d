lib/harness/benches.ml: List Option Spf_core Spf_sim Spf_workloads
