lib/harness/benches.mli: Spf_core Spf_sim Spf_workloads
