lib/harness/figures.ml: Array Benches Format List Option Printf Runner Spf_core Spf_sim Spf_workloads
