lib/harness/figures.mli: Spf_sim
