lib/harness/runner.ml: Format List Printf Spf_ir Spf_sim Spf_workloads String
