lib/harness/runner.mli: Spf_sim Spf_workloads
