lib/ir/builder.ml: Array Ir Printf
