lib/ir/cfg.ml: Array Ir List
