lib/ir/indvar.ml: Array Cfg Hashtbl Ir List Loops
