lib/ir/indvar.mli: Cfg Ir Loops
