lib/ir/ir.mli:
