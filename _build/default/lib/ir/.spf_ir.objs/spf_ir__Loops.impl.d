lib/ir/loops.ml: Array Cfg Dom Hashtbl Ir List
