lib/ir/loops.mli: Cfg Dom Ir
