lib/ir/parser.ml: Array Format Ir List Option Printf Seq String
