lib/ir/printer.ml: Array Format Ir
