lib/ir/simplify.ml: Array Ir List Usedef
