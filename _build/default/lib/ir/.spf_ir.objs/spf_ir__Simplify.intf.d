lib/ir/simplify.mli: Ir
