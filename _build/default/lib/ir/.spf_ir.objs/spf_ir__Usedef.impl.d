lib/ir/usedef.ml: Array Ir List
