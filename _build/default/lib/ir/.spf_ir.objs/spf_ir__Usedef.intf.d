lib/ir/usedef.mli: Ir
