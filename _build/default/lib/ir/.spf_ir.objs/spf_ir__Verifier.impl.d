lib/ir/verifier.ml: Array Cfg Dom Format Ir List Printf String
