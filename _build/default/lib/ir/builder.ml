(* Imperative construction of SSA functions.

   The builder keeps a current block; every emission helper appends to it
   and returns the operand naming the new value.  Loop back-edges are closed
   with [add_incoming] after the body has been built. *)

type t = {
  func : Ir.func;
  mutable cur : int;
  mutable sealed : bool;
}

let create ~name ~nparams =
  let func = Ir.create_func ~name in
  let entry = Ir.add_block func ~name:"entry" Ir.Unreachable in
  let params =
    Array.init nparams (fun k ->
        (Ir.append_instr func ~bid:entry.bid
           ~name:(Printf.sprintf "arg%d" k)
           (Ir.Param k))
          .id)
  in
  func.param_ids <- params;
  func.entry <- entry.bid;
  { func; cur = entry.bid; sealed = false }

let func b = b.func
let current_block b = b.cur
let param b k = Ir.Var b.func.param_ids.(k)

let new_block b name =
  let blk = Ir.add_block b.func ~name Ir.Unreachable in
  blk.bid

let set_block b bid = b.cur <- bid

let emit ?(name = "v") b kind =
  let i = Ir.append_instr b.func ~bid:b.cur ~name kind in
  Ir.Var i.id

(* Arithmetic / misc value producers ---------------------------------- *)

let binop ?name b op x y = emit ?name b (Ir.Binop (op, x, y))
let add ?name b x y = binop ?name b Ir.Add x y
let sub ?name b x y = binop ?name b Ir.Sub x y
let mul ?name b x y = binop ?name b Ir.Mul x y
let cmp ?name b pred x y = emit ?name b (Ir.Cmp (pred, x, y))
let select ?name b c x y = emit ?name b (Ir.Select (c, x, y))
let load ?name b ty addr = emit ?name b (Ir.Load (ty, addr))
let store b ty addr v = ignore (emit ~name:"st" b (Ir.Store (ty, addr, v)))
let gep ?name b base index scale = emit ?name b (Ir.Gep { base; index; scale })
let prefetch b addr = ignore (emit ~name:"pf" b (Ir.Prefetch addr))
let alloc ?name b size = emit ?name b (Ir.Alloc size)

let call ?name b ~pure callee args =
  emit ?name b (Ir.Call { callee; args; pure })

let phi ?name b incoming = emit ?name b (Ir.Phi incoming)

let add_incoming b phi_op ~pred value =
  match phi_op with
  | Ir.Var id -> (
      let i = Ir.instr b.func id in
      match i.kind with
      | Ir.Phi incoming -> i.kind <- Ir.Phi (incoming @ [ (pred, value) ])
      | _ -> invalid_arg "Builder.add_incoming: not a phi")
  | Ir.Imm _ | Ir.Fimm _ -> invalid_arg "Builder.add_incoming: not a phi"

(* Terminators --------------------------------------------------------- *)

let set_term b t = (Ir.block b.func b.cur).term <- t
let br b target = set_term b (Ir.Br target)
let cbr b c bthen belse = set_term b (Ir.Cbr (c, bthen, belse))
let ret b v = set_term b (Ir.Ret v)

let finish b =
  b.sealed <- true;
  b.func

(* Structured helpers --------------------------------------------------- *)

(* Counted loop [for iv = init; iv < bound; iv += step].  Calls [body]
   with the induction variable while positioned inside the loop body
   block, then closes the back edge.  Returns the exit block id, with the
   builder positioned there. *)
let counted_loop ?(name = "loop") b ~init ~bound ~step body =
  let header = new_block b (name ^ ".head") in
  let body_b = new_block b (name ^ ".body") in
  let exit_b = new_block b (name ^ ".exit") in
  let pred = current_block b in
  br b header;
  set_block b header;
  let iv = phi ~name:(name ^ ".iv") b [ (pred, init) ] in
  let c = cmp ~name:(name ^ ".cond") b Ir.Slt iv bound in
  cbr b c body_b exit_b;
  set_block b body_b;
  body iv;
  let next = add ~name:(name ^ ".next") b iv step in
  let latch = current_block b in
  br b header;
  add_incoming b iv ~pred:latch next;
  set_block b exit_b;
  exit_b
