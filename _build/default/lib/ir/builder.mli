(** Imperative construction of SSA functions.

    The builder keeps a {e current block}; each emission helper appends an
    instruction there and returns the operand naming its value.  Loop
    back-edges are closed with {!add_incoming} once the body exists. *)

type t

val create : name:string -> nparams:int -> t
(** Fresh function with [nparams] parameters materialised in the entry
    block. *)

val func : t -> Ir.func
(** The function under construction (also available before {!finish}). *)

val current_block : t -> int
val param : t -> int -> Ir.operand

val new_block : t -> string -> int
(** Create an (unterminated) block and return its id; does not move the
    insertion point. *)

val set_block : t -> int -> unit
(** Move the insertion point. *)

val emit : ?name:string -> t -> Ir.kind -> Ir.operand
(** Append an arbitrary instruction to the current block. *)

(** {1 Typed emission helpers} *)

val binop : ?name:string -> t -> Ir.binop -> Ir.operand -> Ir.operand -> Ir.operand
val add : ?name:string -> t -> Ir.operand -> Ir.operand -> Ir.operand
val sub : ?name:string -> t -> Ir.operand -> Ir.operand -> Ir.operand
val mul : ?name:string -> t -> Ir.operand -> Ir.operand -> Ir.operand
val cmp : ?name:string -> t -> Ir.cmp -> Ir.operand -> Ir.operand -> Ir.operand
val select : ?name:string -> t -> Ir.operand -> Ir.operand -> Ir.operand -> Ir.operand
val load : ?name:string -> t -> Ir.ty -> Ir.operand -> Ir.operand
val store : t -> Ir.ty -> Ir.operand -> Ir.operand -> unit
val gep : ?name:string -> t -> Ir.operand -> Ir.operand -> int -> Ir.operand
(** [gep b base index scale] emits address [base + index * scale]. *)

val prefetch : t -> Ir.operand -> unit
val alloc : ?name:string -> t -> Ir.operand -> Ir.operand
val call : ?name:string -> t -> pure:bool -> string -> Ir.operand list -> Ir.operand
val phi : ?name:string -> t -> (int * Ir.operand) list -> Ir.operand

val add_incoming : t -> Ir.operand -> pred:int -> Ir.operand -> unit
(** Append an incoming edge to a previously-created phi. *)

(** {1 Terminators} *)

val br : t -> int -> unit
val cbr : t -> Ir.operand -> int -> int -> unit
val ret : t -> Ir.operand option -> unit

val finish : t -> Ir.func

(** {1 Structured helpers} *)

val counted_loop :
  ?name:string ->
  t ->
  init:Ir.operand ->
  bound:Ir.operand ->
  step:Ir.operand ->
  (Ir.operand -> unit) ->
  int
(** [counted_loop b ~init ~bound ~step body] builds the canonical loop
    [for (iv = init; iv < bound; iv += step) body iv], leaves the builder
    positioned in the exit block and returns that block's id.  [body] may
    create additional blocks; the loop latch is whichever block is current
    when [body] returns. *)
