(* Control-flow graph queries over an [Ir.func]: predecessor lists and a
   reverse-postorder numbering.  Built once per analysis; the pass rebuilds
   analyses after mutating the function. *)

type t = {
  func : Ir.func;
  preds : int list array;
  succs : int list array;
  rpo : int array;           (* rpo.(k) = block id in reverse postorder  *)
  rpo_index : int array;     (* rpo_index.(bid) = k, or -1 if unreachable *)
}

let build (func : Ir.func) =
  let n = Ir.n_blocks func in
  let succs = Array.init n (fun b -> Ir.successors (Ir.block func b).term) in
  let preds = Array.make n [] in
  Array.iteri
    (fun b ss -> List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss)
    succs;
  Array.iteri (fun b ps -> preds.(b) <- List.rev ps) preds;
  (* Postorder DFS from the entry. *)
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succs.(b);
      post := b :: !post
    end
  in
  dfs func.entry;
  let rpo = Array.of_list !post in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun k b -> rpo_index.(b) <- k) rpo;
  { func; preds; succs; rpo; rpo_index }

let preds t b = t.preds.(b)
let succs t b = t.succs.(b)
let rpo t = t.rpo
let rpo_index t b = t.rpo_index.(b)
let reachable t b = t.rpo_index.(b) >= 0
