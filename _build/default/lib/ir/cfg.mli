(** Control-flow graph queries: predecessors, successors and a reverse
    postorder numbering of the reachable blocks. *)

type t

val build : Ir.func -> t
(** Snapshot the CFG.  Invalidated by any mutation of the function's blocks
    or terminators. *)

val preds : t -> int -> int list
val succs : t -> int -> int list

val rpo : t -> int array
(** Reachable block ids in reverse postorder (entry first). *)

val rpo_index : t -> int -> int
(** Position of a block in {!rpo}, or [-1] if unreachable. *)

val reachable : t -> int -> bool
