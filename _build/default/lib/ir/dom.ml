(* Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm,
   operating on the CFG's reverse-postorder numbering. *)

type t = {
  cfg : Cfg.t;
  entry : int;
  idom : int array; (* idom.(bid) = immediate dominator; entry maps to itself *)
}

let build (cfg : Cfg.t) =
  let rpo = Cfg.rpo cfg in
  let n_blocks = Array.fold_left (fun m b -> max m (b + 1)) 1 rpo in
  let idom = Array.make n_blocks (-1) in
  let entry = rpo.(0) in
  idom.(entry) <- entry;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while Cfg.rpo_index cfg !f1 > Cfg.rpo_index cfg !f2 do
        f1 := idom.(!f1)
      done;
      while Cfg.rpo_index cfg !f2 > Cfg.rpo_index cfg !f1 do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let processed = List.filter (fun p -> idom.(p) >= 0) (Cfg.preds cfg b) in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { cfg; entry; idom }

let idom t b = if b = t.entry then None else Some t.idom.(b)

let dominates t a b =
  if not (Cfg.reachable t.cfg b) then false
  else if a = b then true
  else begin
    let cur = ref b in
    let result = ref false in
    while (not !result) && !cur <> t.entry do
      cur := t.idom.(!cur);
      if !cur = a then result := true
    done;
    !result
  end

let def_dominates_use (func : Ir.func) t ~def ~use_at =
  let di = Ir.instr func def and ui = Ir.instr func use_at in
  if di.block <> ui.block then dominates t di.block ui.block
  else begin
    let b = Ir.block func di.block in
    let dpos = ref (-1) and upos = ref (-1) in
    Array.iteri
      (fun k id ->
        if id = def then dpos := k;
        if id = use_at then upos := k)
      b.instrs;
    !dpos >= 0 && !upos >= 0 && !dpos < !upos
  end
