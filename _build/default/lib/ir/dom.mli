(** Dominator tree (Cooper–Harvey–Kennedy). *)

type t

val build : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator of a block; [None] for the entry. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — block [a] dominates block [b] (reflexive). *)

val def_dominates_use : Ir.func -> t -> def:int -> use_at:int -> bool
(** Whether instruction [def]'s definition site strictly precedes
    instruction [use_at] in program order (by block dominance, or by
    within-block position when they share a block). *)
