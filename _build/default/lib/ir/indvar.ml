(* Canonical induction-variable recognition.

   An induction variable is a phi in a loop header with exactly two incoming
   edges: a loop-invariant initial value from outside the loop and
   [phi + step] (constant step) from a latch.  When the loop's exit test is
   a header comparison of the phi against a loop-invariant limit we record
   that limit; the prefetching pass uses it as the clamp bound
   ("max(iv.val)" in Algorithm 1, line 49). *)

type ivar = {
  iv_id : int; (* phi instruction id *)
  loop_index : int;
  init : Ir.operand;
  step : int;
  next_id : int; (* id of the increment instruction *)
  bound : Ir.operand option; (* loop-invariant exit limit, if recognised *)
  bound_cmp : Ir.cmp option; (* predicate used against [bound] *)
}

type t = { by_phi : (int, ivar) Hashtbl.t; all : ivar list }

let is_loop_invariant (func : Ir.func) (l : Loops.loop) (o : Ir.operand) =
  match o with
  | Ir.Imm _ | Ir.Fimm _ -> true
  | Ir.Var id -> not (Loops.contains l (Ir.instr func id).block)

(* Match [phi + c] / [c + phi] / [phi - c]. *)
let step_of (func : Ir.func) ~phi_id (o : Ir.operand) =
  match o with
  | Ir.Var id -> (
      match (Ir.instr func id).kind with
      | Ir.Binop (Ir.Add, Ir.Var p, Ir.Imm c) when p = phi_id -> Some (id, c)
      | Ir.Binop (Ir.Add, Ir.Imm c, Ir.Var p) when p = phi_id -> Some (id, c)
      | Ir.Binop (Ir.Sub, Ir.Var p, Ir.Imm c) when p = phi_id -> Some (id, -c)
      | _ -> None)
  | Ir.Imm _ | Ir.Fimm _ -> None

(* Recognise the exit limit for [iv]: the header must end in a conditional
   branch on [cmp pred iv limit] (or the symmetric form) with [limit]
   loop-invariant. *)
let bound_of (func : Ir.func) (l : Loops.loop) ~iv_id =
  let header = Ir.block func l.header in
  match header.term with
  | Ir.Cbr (Ir.Var cid, _, _) -> (
      match (Ir.instr func cid).kind with
      | Ir.Cmp (pred, Ir.Var v, limit)
        when v = iv_id && is_loop_invariant func l limit ->
          (Some limit, Some pred)
      | Ir.Cmp (pred, limit, Ir.Var v)
        when v = iv_id && is_loop_invariant func l limit ->
          let flipped =
            match pred with
            | Ir.Slt -> Ir.Sgt | Ir.Sle -> Ir.Sge
            | Ir.Sgt -> Ir.Slt | Ir.Sge -> Ir.Sle
            | Ir.Eq -> Ir.Eq | Ir.Ne -> Ir.Ne
          in
          (Some limit, Some flipped)
      | _ -> (None, None))
  | Ir.Cbr (_, _, _) | Ir.Br _ | Ir.Ret _ | Ir.Unreachable -> (None, None)

let analyze (func : Ir.func) (_cfg : Cfg.t) (loops : Loops.t) =
  let by_phi = Hashtbl.create 16 in
  let all = ref [] in
  Array.iter
    (fun (l : Loops.loop) ->
      let header = Ir.block func l.header in
      Array.iter
        (fun id ->
          let i = Ir.instr func id in
          match i.kind with
          | Ir.Phi incoming when List.length incoming = 2 ->
              let outside, inside =
                List.partition (fun (p, _) -> not (Loops.contains l p)) incoming
              in
              (match (outside, inside) with
              | [ (_, init) ], [ (_, loop_val) ]
                when is_loop_invariant func l init -> (
                  match step_of func ~phi_id:id loop_val with
                  | Some (next_id, step) when step <> 0 ->
                      let bound, bound_cmp = bound_of func l ~iv_id:id in
                      let iv =
                        { iv_id = id; loop_index = l.index; init; step;
                          next_id; bound; bound_cmp }
                      in
                      Hashtbl.replace by_phi id iv;
                      all := iv :: !all
                  | Some _ | None -> ())
              | _ -> ())
          | _ -> ())
        header.instrs)
    (Loops.loops loops);
  { by_phi; all = List.rev !all }

let ivars t = t.all
let ivar_of t id = Hashtbl.find_opt t.by_phi id
let is_ivar t id = Hashtbl.mem t.by_phi id
