(** Canonical induction-variable recognition.

    An induction variable is a header phi with a loop-invariant initial
    value and a constant-step increment along the back edge.  If the loop
    exits via a header comparison of the phi against a loop-invariant limit,
    the limit is recorded — the prefetching pass clamps look-ahead indices
    against it (Algorithm 1, line 49). *)

type ivar = {
  iv_id : int;  (** the phi's instruction id *)
  loop_index : int;
  init : Ir.operand;
  step : int;
  next_id : int;  (** the increment instruction's id *)
  bound : Ir.operand option;  (** loop-invariant exit limit, if recognised *)
  bound_cmp : Ir.cmp option;  (** predicate comparing the phi to [bound] *)
}

type t

val analyze : Ir.func -> Cfg.t -> Loops.t -> t

val ivars : t -> ivar list
val ivar_of : t -> int -> ivar option
(** The induction variable whose phi has the given instruction id. *)

val is_ivar : t -> int -> bool

val is_loop_invariant : Ir.func -> Loops.loop -> Ir.operand -> bool
(** Whether an operand's value cannot change between iterations of [loop]. *)
