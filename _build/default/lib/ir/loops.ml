(* Natural-loop detection.  A back edge is an edge n->h where h dominates n;
   the loop body is everything that reaches n without passing through h.
   Loops sharing a header are merged.  Nesting is recovered by block-set
   inclusion. *)

type loop = {
  index : int;
  header : int;
  member : bool array; (* membership, indexed by block id *)
  latches : int list;
  preheader : int option;
  mutable parent : int option; (* index of the innermost enclosing loop *)
  mutable depth : int; (* 1 for outermost *)
}

type t = {
  loops : loop array;
  innermost_of : int option array; (* per block id *)
}

let analyze (func : Ir.func) (cfg : Cfg.t) (dom : Dom.t) =
  let n = Ir.n_blocks func in
  (* Collect back edges grouped by header. *)
  let by_header = Hashtbl.create 8 in
  for b = 0 to n - 1 do
    if Cfg.reachable cfg b then
      List.iter
        (fun s ->
          if Dom.dominates dom s b then
            Hashtbl.replace by_header s (b :: (try Hashtbl.find by_header s with Not_found -> [])))
        (Cfg.succs cfg b)
  done;
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) by_header [] in
  let headers = List.sort compare headers in
  let make_loop index header =
    let latches = List.rev (Hashtbl.find by_header header) in
    let member = Array.make n false in
    member.(header) <- true;
    let rec mark b =
      if not member.(b) then begin
        member.(b) <- true;
        List.iter mark (Cfg.preds cfg b)
      end
    in
    List.iter mark latches;
    let preheader =
      match List.filter (fun p -> not member.(p)) (Cfg.preds cfg header) with
      | [ p ] -> Some p
      | _ -> None
    in
    { index; header; member; latches; preheader; parent = None; depth = 1 }
  in
  let loops = Array.of_list (List.mapi make_loop headers) in
  (* Parent = smallest strictly containing loop (by block count). *)
  let size l = Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 l.member in
  let sizes = Array.map size loops in
  Array.iteri
    (fun i li ->
      let best = ref None in
      Array.iteri
        (fun j lj ->
          if i <> j && lj.member.(li.header) && (sizes.(j) > sizes.(i)
             || (sizes.(j) = sizes.(i) && not li.member.(lj.header)))
          then
            match !best with
            | Some k when sizes.(k) <= sizes.(j) -> ()
            | _ -> best := Some j)
        loops;
      li.parent <- !best)
    loops;
  let rec depth_of l =
    match l.parent with None -> 1 | Some p -> 1 + depth_of loops.(p)
  in
  Array.iter (fun l -> l.depth <- depth_of l) loops;
  (* Innermost loop per block: the containing loop of maximal depth. *)
  let innermost_of = Array.make n None in
  for b = 0 to n - 1 do
    Array.iter
      (fun l ->
        if l.member.(b) then
          match innermost_of.(b) with
          | Some k when loops.(k).depth >= l.depth -> ()
          | _ -> innermost_of.(b) <- Some l.index)
      loops
  done;
  { loops; innermost_of }

let loops t = t.loops
let loop t i = t.loops.(i)
let innermost t bid = t.innermost_of.(bid)
let in_any_loop t bid = t.innermost_of.(bid) <> None
let contains l bid = bid < Array.length l.member && l.member.(bid)

let loop_depth t bid =
  match t.innermost_of.(bid) with None -> 0 | Some i -> t.loops.(i).depth

(* All loops containing [bid], innermost first. *)
let loops_containing t bid =
  let rec chain i =
    let l = t.loops.(i) in
    l :: (match l.parent with None -> [] | Some p -> chain p)
  in
  match t.innermost_of.(bid) with None -> [] | Some i -> chain i

(* Exit edges of a loop: (from-block, to-block) with [from] inside and [to]
   outside. *)
let exit_edges cfg l =
  let acc = ref [] in
  Array.iteri
    (fun b inside ->
      if inside then
        List.iter
          (fun s -> if not (contains l s) then acc := (b, s) :: !acc)
          (Cfg.succs cfg b))
    l.member;
  List.rev !acc
