(** Natural-loop detection and loop-nest queries. *)

type loop = {
  index : int;  (** position in {!loops} *)
  header : int;
  member : bool array;  (** block membership, indexed by block id *)
  latches : int list;  (** back-edge sources *)
  preheader : int option;  (** unique out-of-loop predecessor, if any *)
  mutable parent : int option;  (** innermost enclosing loop index *)
  mutable depth : int;  (** 1 for outermost loops *)
}

type t

val analyze : Ir.func -> Cfg.t -> Dom.t -> t

val loops : t -> loop array
val loop : t -> int -> loop
val innermost : t -> int -> int option
(** Innermost loop containing block [bid], if any. *)

val in_any_loop : t -> int -> bool
val contains : loop -> int -> bool
val loop_depth : t -> int -> int
(** Nesting depth of a block (0 when outside all loops). *)

val loops_containing : t -> int -> loop list
(** Loops containing a block, innermost first. *)

val exit_edges : Cfg.t -> loop -> (int * int) list
(** Edges leaving the loop as [(from, to)] pairs. *)
