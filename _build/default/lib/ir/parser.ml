(* Parser for the textual IR syntax emitted by {!Printer}, so functions can
   round-trip through text — used by golden tests and for writing kernels
   by hand.  The concrete syntax is line-oriented:

     func NAME (2 params, entry bb0) {
     bb0 (entry):
       %arg0.0 = param 0
       ...
       br bb1
     bb1 (loop.head):
       %i.2 = phi [bb0: #0], [bb2: %next.9]
       ...
     }

   Instruction ids are explicit in the text (%name.ID), so parsing
   reconstructs the exact instruction table. *)

exception Parse_error of { line : int; msg : string }

let fail ~line fmt =
  Format.kasprintf (fun msg -> raise (Parse_error { line; msg })) fmt

(* ------------------------------------------------------------------ *)
(* Tokenising helpers                                                  *)
(* ------------------------------------------------------------------ *)


let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

(* "%name.id" -> id; also accepts bare "%id". *)
let parse_var ~line w =
  if String.length w < 2 || w.[0] <> '%' then fail ~line "expected %%var, got %S" w
  else begin
    let body = String.sub w 1 (String.length w - 1) in
    let id_str =
      match String.rindex_opt body '.' with
      | Some k -> String.sub body (k + 1) (String.length body - k - 1)
      | None -> body
    in
    match int_of_string_opt id_str with
    | Some id -> id
    | None -> fail ~line "bad instruction id in %S" w
  end

let var_name w =
  (* "%name.id" -> "name" *)
  let body = String.sub w 1 (String.length w - 1) in
  match String.rindex_opt body '.' with
  | Some k -> String.sub body 0 k
  | None -> body

let looks_float s =
  String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n' || c = 'i') s

let parse_operand ~line w : Ir.operand =
  let w = if String.length w > 0 && w.[String.length w - 1] = ',' then String.sub w 0 (String.length w - 1) else w in
  if w = "" then fail ~line "empty operand"
  else if w.[0] = '#' then begin
    let body = String.sub w 1 (String.length w - 1) in
    if looks_float body then
      match float_of_string_opt body with
      | Some f -> Ir.Fimm f
      | None -> fail ~line "bad float immediate %S" w
    else
      match int_of_string_opt body with
      | Some n -> Ir.Imm n
      | None -> (
          match float_of_string_opt body with
          | Some f -> Ir.Fimm f
          | None -> fail ~line "bad immediate %S" w)
  end
  else if w.[0] = '%' then Ir.Var (parse_var ~line w)
  else fail ~line "expected operand, got %S" w

let parse_block_ref ~line w =
  let w =
    String.to_seq w
    |> Seq.filter (fun c -> c <> ',' && c <> ':')
    |> String.of_seq
  in
  if String.length w > 2 && String.sub w 0 2 = "bb" then
    match int_of_string_opt (String.sub w 2 (String.length w - 2)) with
    | Some b -> b
    | None -> fail ~line "bad block reference %S" w
  else fail ~line "expected bbN, got %S" w

let ty_of_string ~line = function
  | "i8" -> Ir.I8
  | "i16" -> Ir.I16
  | "i32" -> Ir.I32
  | "i64" -> Ir.I64
  | "f64" -> Ir.F64
  | s -> fail ~line "unknown type %S" s

let strip_comma w =
  if String.length w > 0 && w.[String.length w - 1] = ',' then
    String.sub w 0 (String.length w - 1)
  else w

let binop_of_string = function
  | "add" -> Some Ir.Add | "sub" -> Some Ir.Sub | "mul" -> Some Ir.Mul
  | "sdiv" -> Some Ir.Sdiv | "srem" -> Some Ir.Srem
  | "and" -> Some Ir.And | "or" -> Some Ir.Or | "xor" -> Some Ir.Xor
  | "shl" -> Some Ir.Shl | "lshr" -> Some Ir.Lshr | "ashr" -> Some Ir.Ashr
  | "smin" -> Some Ir.Smin | "smax" -> Some Ir.Smax
  | "fadd" -> Some Ir.Fadd | "fsub" -> Some Ir.Fsub
  | "fmul" -> Some Ir.Fmul | "fdiv" -> Some Ir.Fdiv
  | _ -> None

let cmp_of_string ~line = function
  | "eq" -> Ir.Eq | "ne" -> Ir.Ne | "slt" -> Ir.Slt
  | "sle" -> Ir.Sle | "sgt" -> Ir.Sgt | "sge" -> Ir.Sge
  | s -> fail ~line "unknown comparison %S" s

(* Parse the phi incoming list "[bb0: v], [bb2: v]" from the raw rhs. *)
let parse_phi_incoming ~line rhs =
  (* Split on '[' ... ']' groups. *)
  let groups = ref [] in
  let n = String.length rhs in
  let i = ref 0 in
  while !i < n do
    if rhs.[!i] = '[' then begin
      match String.index_from_opt rhs !i ']' with
      | None -> fail ~line "unterminated phi group"
      | Some j ->
          groups := String.sub rhs (!i + 1) (j - !i - 1) :: !groups;
          i := j + 1
    end
    else incr i
  done;
  List.rev_map
    (fun g ->
      match String.split_on_char ':' g with
      | [ blk; v ] ->
          let blk = String.trim blk and v = String.trim v in
          (parse_block_ref ~line blk, parse_operand ~line v)
      | _ -> fail ~line "bad phi group [%s]" g)
    !groups

(* Parse a call "call [pure] f(a, b)" rhs. *)
let parse_call ~line rhs =
  let rhs = String.trim rhs in
  let pure, rhs =
    if String.length rhs >= 5 && String.sub rhs 0 5 = "pure " then
      (true, String.sub rhs 5 (String.length rhs - 5))
    else (false, rhs)
  in
  match String.index_opt rhs '(' with
  | None -> fail ~line "call without argument list"
  | Some k ->
      let callee = String.trim (String.sub rhs 0 k) in
      let close =
        match String.rindex_opt rhs ')' with
        | Some c -> c
        | None -> fail ~line "call without closing paren"
      in
      let args_str = String.sub rhs (k + 1) (close - k - 1) in
      let args =
        String.split_on_char ',' args_str
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map (parse_operand ~line)
      in
      Ir.Call { callee; args; pure }

let parse_kind ~line (rhs : string) : Ir.kind =
  let words = split_words rhs in
  match words with
  | [] -> fail ~line "empty instruction"
  | op :: rest -> (
      match (binop_of_string op, rest) with
      | Some b, [ x; y ] -> Ir.Binop (b, parse_operand ~line x, parse_operand ~line y)
      | Some _, _ -> fail ~line "binop expects two operands"
      | None, _ -> (
          match (op, rest) with
          | "cmp", [ pred; x; y ] ->
              Ir.Cmp (cmp_of_string ~line pred, parse_operand ~line x, parse_operand ~line y)
          | "select", [ c; x; y ] ->
              Ir.Select (parse_operand ~line c, parse_operand ~line x, parse_operand ~line y)
          | "load", [ ty; a ] ->
              Ir.Load (ty_of_string ~line (strip_comma ty), parse_operand ~line a)
          | "store", [ ty; v; "->"; a ] ->
              Ir.Store (ty_of_string ~line ty, parse_operand ~line a, parse_operand ~line v)
          | "gep", [ base; index; "x"; scale ] -> (
              match int_of_string_opt scale with
              | Some s ->
                  Ir.Gep
                    { base = parse_operand ~line base;
                      index = parse_operand ~line index;
                      scale = s }
              | None -> fail ~line "bad gep scale %S" scale)
          | "phi", _ -> Ir.Phi (parse_phi_incoming ~line rhs)
          | "call", _ ->
              parse_call ~line (String.sub rhs 4 (String.length rhs - 4))
          | "prefetch", [ a ] -> Ir.Prefetch (parse_operand ~line a)
          | "alloc", [ a ] -> Ir.Alloc (parse_operand ~line a)
          | "param", [ k ] -> (
              match int_of_string_opt k with
              | Some k -> Ir.Param k
              | None -> fail ~line "bad param index %S" k)
          | _ -> fail ~line "cannot parse instruction %S" rhs))

let parse_terminator ~line words : Ir.terminator =
  match words with
  | [ "br"; b ] -> Ir.Br (parse_block_ref ~line b)
  | [ "cbr"; c; b1; b2 ] ->
      Ir.Cbr (parse_operand ~line c, parse_block_ref ~line b1, parse_block_ref ~line b2)
  | [ "ret" ] -> Ir.Ret None
  | [ "ret"; v ] -> Ir.Ret (Some (parse_operand ~line v))
  | [ "unreachable" ] -> Ir.Unreachable
  | _ -> fail ~line "cannot parse terminator %S" (String.concat " " words)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

type pending_block = {
  pbid : int;
  pname : string;
  mutable pinstrs : (int * string * Ir.kind) list; (* id, name, kind *)
  mutable pterm : Ir.terminator option;
}

let parse (text : string) : Ir.func =
  let lines = String.split_on_char '\n' text in
  let fname = ref "f" in
  let entry = ref 0 in
  let blocks : pending_block list ref = ref [] in
  let current : pending_block option ref = ref None in
  List.iteri
    (fun lineno raw ->
      let line = lineno + 1 in
      let s = String.trim raw in
      if s = "" || s = "}" then ()
      else if String.length s >= 5 && String.sub s 0 5 = "func " then begin
        (match split_words s with
        | "func" :: name :: _ -> fname := name
        | _ -> fail ~line "bad func header");
        (* entry block: "... entry bbK) {" *)
        let needle = "entry " in
        let pos = ref None in
        for k = 0 to String.length s - String.length needle do
          if !pos = None && String.sub s k (String.length needle) = needle then
            pos := Some k
        done;
        match !pos with
        | Some k -> (
            let tail =
              String.sub s
                (k + String.length needle)
                (String.length s - k - String.length needle)
            in
            match split_words tail with
            | w :: _ ->
                entry :=
                  (try
                     parse_block_ref ~line
                       (String.concat "" (String.split_on_char ')' w))
                   with _ -> 0)
            | [] -> ())
        | None -> ()
      end
      else if String.length s >= 2 && String.sub s 0 2 = "bb"
              && String.contains s ':' then begin
        (* "bbN (name):" *)
        let words = split_words s in
        match words with
        | bb :: rest ->
            let bid = parse_block_ref ~line bb in
            let bname =
              match rest with
              | name :: _ ->
                  String.to_seq name
                  |> Seq.filter (fun c -> c <> '(' && c <> ')' && c <> ':')
                  |> String.of_seq
              | [] -> Printf.sprintf "bb%d" bid
            in
            let pb = { pbid = bid; pname = bname; pinstrs = []; pterm = None } in
            blocks := pb :: !blocks;
            current := Some pb
        | [] -> ()
      end
      else begin
        let pb =
          match !current with
          | Some pb -> pb
          | None -> fail ~line "instruction outside any block"
        in
        if String.length s > 0 && s.[0] = '%' then begin
          (* "%name.id = kind" *)
          match String.index_opt s '=' with
          | None -> fail ~line "expected '=' in %S" s
          | Some k ->
              let lhs = String.trim (String.sub s 0 k) in
              let rhs = String.trim (String.sub s (k + 1) (String.length s - k - 1)) in
              let id = parse_var ~line lhs in
              let name = var_name lhs in
              pb.pinstrs <- (id, name, parse_kind ~line rhs) :: pb.pinstrs
        end
        else begin
          let words = split_words s in
          match words with
          | ("br" | "cbr" | "ret" | "unreachable") :: _ ->
              pb.pterm <- Some (parse_terminator ~line words)
          | ("store" | "prefetch") :: _ ->
              (* value-less instructions are printed without an id; assign
                 a fresh one after parsing (below) via id -1 *)
              pb.pinstrs <- (-1, "st", parse_kind ~line s) :: pb.pinstrs
          | _ -> fail ~line "cannot parse line %S" s
        end
      end)
    lines;
  let blocks = List.rev !blocks in
  if blocks = [] then fail ~line:0 "no blocks";
  (* Assign ids to value-less instructions that were printed without one:
     give them ids after the maximum explicit id. *)
  let max_id = ref (-1) in
  List.iter
    (fun pb ->
      List.iter (fun (id, _, _) -> if id > !max_id then max_id := id) pb.pinstrs)
    blocks;
  let next_anon = ref (!max_id + 1) in
  let func = Ir.create_func ~name:!fname in
  let n_blocks = List.fold_left (fun m pb -> max m (pb.pbid + 1)) 0 blocks in
  (* Create blocks in id order. *)
  let by_id = Array.make n_blocks None in
  List.iter (fun pb -> by_id.(pb.pbid) <- Some pb) blocks;
  Array.iteri
    (fun bid slot ->
      match slot with
      | None -> ignore (Ir.add_block func ~name:(Printf.sprintf "bb%d" bid) Ir.Unreachable)
      | Some pb ->
          ignore
            (Ir.add_block func ~name:pb.pname
               (Option.value pb.pterm ~default:Ir.Unreachable)))
    by_id;
  (* Materialise instructions with their explicit ids. *)
  let place (pb : pending_block) =
    let ids =
      List.rev_map
        (fun (id, name, kind) ->
          let id = if id >= 0 then id else begin
            let a = !next_anon in
            incr next_anon;
            a
          end
          in
          (* fresh_instr assigns sequential ids; we need explicit ones, so
             pad the table up to [id] first. *)
          while Ir.n_instrs func <= id do
            ignore
              (Ir.fresh_instr func ~name:"pad" ~block:pb.pbid
                 (Ir.Binop (Ir.Add, Ir.Imm 0, Ir.Imm 0)))
          done;
          let i = Ir.instr func id in
          i.Ir.kind <- kind;
          i.Ir.name <- name;
          i.Ir.block <- pb.pbid;
          id)
        pb.pinstrs
    in
    (Ir.block func pb.pbid).Ir.instrs <- Array.of_list ids
  in
  List.iter place blocks;
  func.Ir.entry <- !entry;
  (* Parameters, in index order. *)
  let params = ref [] in
  Ir.iter_instrs func (fun i ->
      match i.Ir.kind with
      | Ir.Param k -> params := (k, i.Ir.id) :: !params
      | _ -> ());
  func.Ir.param_ids <-
    Array.of_list
      (List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) !params));
  func

let parse_exn = parse

let parse_result text =
  match parse text with
  | f -> Ok f
  | exception Parse_error { line; msg } ->
      Error (Printf.sprintf "line %d: %s" line msg)
