(** Parser for the textual IR syntax emitted by {!Printer}, enabling
    text round-trips (golden tests) and hand-written kernels. *)

exception Parse_error of { line : int; msg : string }

val parse : string -> Ir.func
(** @raise Parse_error on malformed input. *)

val parse_exn : string -> Ir.func
(** Alias of {!parse}. *)

val parse_result : string -> (Ir.func, string) result
