(* Human-readable IR dumps in an LLVM-flavoured syntax, e.g.

     loop.body:
       %t3 = gep %b, %t2 x 4
       %t4 = load i32, %t3
       ... *)

let pp_operand (func : Ir.func) fmt (o : Ir.operand) =
  match o with
  | Ir.Imm n -> Format.fprintf fmt "#%d" n
  | Ir.Fimm x -> Format.fprintf fmt "#%g" x
  | Ir.Var id ->
      let i = Ir.instr func id in
      Format.fprintf fmt "%%%s.%d" i.name i.id

let pp_kind func fmt (k : Ir.kind) =
  let op = pp_operand func in
  match k with
  | Ir.Binop (b, x, y) ->
      Format.fprintf fmt "%s %a, %a" (Ir.string_of_binop b) op x op y
  | Ir.Cmp (c, x, y) ->
      Format.fprintf fmt "cmp %s %a, %a" (Ir.string_of_cmp c) op x op y
  | Ir.Select (c, x, y) ->
      Format.fprintf fmt "select %a, %a, %a" op c op x op y
  | Ir.Load (ty, a) ->
      Format.fprintf fmt "load %s, %a" (Ir.string_of_ty ty) op a
  | Ir.Store (ty, a, v) ->
      Format.fprintf fmt "store %s %a -> %a" (Ir.string_of_ty ty) op v op a
  | Ir.Gep { base; index; scale } ->
      Format.fprintf fmt "gep %a, %a x %d" op base op index scale
  | Ir.Phi incoming ->
      Format.fprintf fmt "phi %a"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           (fun fmt (b, v) -> Format.fprintf fmt "[bb%d: %a]" b op v))
        incoming
  | Ir.Call { callee; args; pure } ->
      Format.fprintf fmt "call%s %s(%a)"
        (if pure then " pure" else "")
        callee
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           op)
        args
  | Ir.Prefetch a -> Format.fprintf fmt "prefetch %a" op a
  | Ir.Alloc sz -> Format.fprintf fmt "alloc %a" op sz
  | Ir.Param i -> Format.fprintf fmt "param %d" i

let pp_terminator func fmt (t : Ir.terminator) =
  let op = pp_operand func in
  match t with
  | Ir.Br b -> Format.fprintf fmt "br bb%d" b
  | Ir.Cbr (c, b1, b2) -> Format.fprintf fmt "cbr %a, bb%d, bb%d" op c b1 b2
  | Ir.Ret None -> Format.fprintf fmt "ret"
  | Ir.Ret (Some v) -> Format.fprintf fmt "ret %a" op v
  | Ir.Unreachable -> Format.fprintf fmt "unreachable"

let pp_instr func fmt (i : Ir.instr) =
  if Ir.defines_value i.kind then
    Format.fprintf fmt "%%%s.%d = %a" i.name i.id (pp_kind func) i.kind
  else pp_kind func fmt i.kind

let pp_block func fmt (b : Ir.block) =
  Format.fprintf fmt "bb%d (%s):@." b.bid b.bname;
  Array.iter
    (fun id -> Format.fprintf fmt "  %a@." (pp_instr func) (Ir.instr func id))
    b.instrs;
  Format.fprintf fmt "  %a@." (pp_terminator func) b.term

let pp_func fmt (f : Ir.func) =
  Format.fprintf fmt "func %s (%d params, entry bb%d) {@."
    f.fname (Array.length f.param_ids) f.entry;
  Ir.iter_blocks f (fun b -> pp_block f fmt b);
  Format.fprintf fmt "}@."

let func_to_string f = Format.asprintf "%a" pp_func f
let instr_to_string f i = Format.asprintf "%a" (pp_instr f) i
