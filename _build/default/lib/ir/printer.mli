(** Human-readable IR dumps in an LLVM-flavoured syntax. *)

val pp_operand : Ir.func -> Format.formatter -> Ir.operand -> unit
val pp_kind : Ir.func -> Format.formatter -> Ir.kind -> unit
val pp_terminator : Ir.func -> Format.formatter -> Ir.terminator -> unit
val pp_instr : Ir.func -> Format.formatter -> Ir.instr -> unit
val pp_block : Ir.func -> Format.formatter -> Ir.block -> unit
val pp_func : Format.formatter -> Ir.func -> unit

val func_to_string : Ir.func -> string
val instr_to_string : Ir.func -> Ir.instr -> string
