(* Scalar simplifications: constant folding and dead-code elimination.

   Run after the prefetching pass (it can leave unused address-generation
   clones when a duplicate-line prefetch is elided) and available to any IR
   producer.  Both transforms iterate to a fixed point. *)

(* Evaluate a constant-operand instruction, mirroring the interpreter's
   integer semantics.  Floats are folded only for exact operations. *)
let fold_kind (k : Ir.kind) : Ir.operand option =
  match k with
  | Ir.Binop (op, Ir.Imm a, Ir.Imm b) -> (
      match op with
      | Ir.Add -> Some (Ir.Imm (a + b))
      | Ir.Sub -> Some (Ir.Imm (a - b))
      | Ir.Mul -> Some (Ir.Imm (a * b))
      | Ir.Sdiv -> if b = 0 then None else Some (Ir.Imm (a / b))
      | Ir.Srem -> if b = 0 then None else Some (Ir.Imm (a mod b))
      | Ir.And -> Some (Ir.Imm (a land b))
      | Ir.Or -> Some (Ir.Imm (a lor b))
      | Ir.Xor -> Some (Ir.Imm (a lxor b))
      | Ir.Shl -> if b < 0 || b > 62 then None else Some (Ir.Imm (a lsl b))
      | Ir.Lshr -> if b < 0 || b > 62 then None else Some (Ir.Imm (a lsr b))
      | Ir.Ashr -> if b < 0 || b > 62 then None else Some (Ir.Imm (a asr b))
      | Ir.Smin -> Some (Ir.Imm (min a b))
      | Ir.Smax -> Some (Ir.Imm (max a b))
      | Ir.Fadd | Ir.Fsub | Ir.Fmul | Ir.Fdiv -> None)
  | Ir.Cmp (pred, Ir.Imm a, Ir.Imm b) ->
      let r =
        match pred with
        | Ir.Eq -> a = b
        | Ir.Ne -> a <> b
        | Ir.Slt -> a < b
        | Ir.Sle -> a <= b
        | Ir.Sgt -> a > b
        | Ir.Sge -> a >= b
      in
      Some (Ir.Imm (if r then 1 else 0))
  | Ir.Select (Ir.Imm c, a, b) -> Some (if c <> 0 then a else b)
  | Ir.Gep { base = Ir.Imm b; index = Ir.Imm i; scale } ->
      Some (Ir.Imm (b + (i * scale)))
  (* Algebraic identities. *)
  | Ir.Binop (Ir.Add, x, Ir.Imm 0) | Ir.Binop (Ir.Add, Ir.Imm 0, x) -> Some x
  | Ir.Binop (Ir.Sub, x, Ir.Imm 0) -> Some x
  | Ir.Binop (Ir.Mul, x, Ir.Imm 1) | Ir.Binop (Ir.Mul, Ir.Imm 1, x) -> Some x
  | Ir.Binop (Ir.Mul, _, Ir.Imm 0) | Ir.Binop (Ir.Mul, Ir.Imm 0, _) ->
      Some (Ir.Imm 0)
  | Ir.Binop ((Ir.Or | Ir.Xor), x, Ir.Imm 0)
  | Ir.Binop ((Ir.Or | Ir.Xor), Ir.Imm 0, x) -> Some x
  | Ir.Binop ((Ir.Shl | Ir.Lshr | Ir.Ashr), x, Ir.Imm 0) -> Some x
  | Ir.Gep { base; index = Ir.Imm 0; _ } -> Some base
  | _ -> None

(* Replace every use of [id] (instruction operands and terminators) with
   [replacement]. *)
let replace_uses (func : Ir.func) ~id ~replacement =
  let subst (o : Ir.operand) =
    match o with Ir.Var v when v = id -> replacement | _ -> o
  in
  Ir.iter_instrs func (fun i -> i.Ir.kind <- Ir.map_srcs subst i.Ir.kind);
  Ir.iter_blocks func (fun b ->
      b.Ir.term <-
        (match b.Ir.term with
        | Ir.Cbr (c, t, e) -> Ir.Cbr (subst c, t, e)
        | Ir.Ret (Some v) -> Ir.Ret (Some (subst v))
        | (Ir.Br _ | Ir.Ret None | Ir.Unreachable) as t -> t))

(* One constant-folding sweep; returns how many instructions were folded
   away. *)
let constant_fold_once (func : Ir.func) =
  let folded = ref 0 in
  Ir.iter_instrs func (fun i ->
      match i.Ir.kind with
      | Ir.Phi _ | Ir.Load _ | Ir.Store _ | Ir.Call _ | Ir.Prefetch _
      | Ir.Alloc _ | Ir.Param _ -> ()
      | _ -> (
          match fold_kind i.Ir.kind with
          | Some replacement ->
              replace_uses func ~id:i.Ir.id ~replacement;
              Ir.remove_instr func i.Ir.id;
              incr folded
          | None -> ()));
  !folded

let constant_fold (func : Ir.func) =
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let n = constant_fold_once func in
    total := !total + n;
    continue_ := n > 0
  done;
  !total

(* Dead-code elimination: drop value-producing, side-effect-free
   instructions with no uses, to a fixed point.  Parameters survive even
   when unused (they are the calling convention). *)
let dce (func : Ir.func) =
  let removed = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let uses = Usedef.build func in
    let dead = ref [] in
    Ir.iter_instrs func (fun i ->
        if
          Ir.defines_value i.Ir.kind
          && (not (Ir.has_side_effect i.Ir.kind))
          && Usedef.n_uses uses i.Ir.id = 0
          && not (Array.mem i.Ir.id func.Ir.param_ids)
        then dead := i.Ir.id :: !dead);
    List.iter (fun id -> Ir.remove_instr func id) !dead;
    removed := !removed + List.length !dead;
    continue_ := !dead <> []
  done;
  !removed

let simplify func =
  let f = constant_fold func in
  let d = dce func in
  (f, d)
