(** Scalar simplifications: constant folding (with basic algebraic
    identities) and dead-code elimination, each run to a fixed point. *)

val constant_fold : Ir.func -> int
(** Fold constant-operand arithmetic/compares/selects/geps, rewriting all
    uses; returns the number of instructions eliminated. *)

val dce : Ir.func -> int
(** Remove unused, side-effect-free value definitions (parameters are
    kept); returns the number of instructions removed. *)

val simplify : Ir.func -> int * int
(** [constant_fold] then [dce]; returns both counts. *)
