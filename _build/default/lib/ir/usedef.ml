(* Def-use chains: for every instruction id, the ids of instructions (and
   terminators, represented by their block) that read it. *)

type t = {
  uses : int list array; (* instruction ids using this def *)
  term_uses : int list array; (* block ids whose terminator uses this def *)
}

let build (func : Ir.func) =
  let n = Ir.n_instrs func in
  let uses = Array.make n [] in
  let term_uses = Array.make n [] in
  Ir.iter_instrs func (fun i ->
      List.iter
        (function
          | Ir.Var v -> uses.(v) <- i.id :: uses.(v)
          | Ir.Imm _ | Ir.Fimm _ -> ())
        (Ir.srcs i.kind));
  Ir.iter_blocks func (fun b ->
      List.iter
        (function
          | Ir.Var v -> term_uses.(v) <- b.bid :: term_uses.(v)
          | Ir.Imm _ | Ir.Fimm _ -> ())
        (Ir.term_srcs b.term));
  Array.iteri (fun k l -> uses.(k) <- List.rev l) uses;
  Array.iteri (fun k l -> term_uses.(k) <- List.rev l) term_uses;
  { uses; term_uses }

let uses t id = t.uses.(id)
let term_uses t id = t.term_uses.(id)
let n_uses t id = List.length t.uses.(id) + List.length t.term_uses.(id)
