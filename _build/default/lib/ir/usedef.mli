(** Def-use chains. *)

type t

val build : Ir.func -> t

val uses : t -> int -> int list
(** Instruction ids that read the given definition. *)

val term_uses : t -> int -> int list
(** Block ids whose terminator reads the given definition. *)

val n_uses : t -> int -> int
