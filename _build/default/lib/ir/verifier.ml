(* Structural and SSA well-formedness checks.  Returns the list of
   violations so tests can assert emptiness and the pass can be checked
   before and after running. *)

type violation = { where : string; what : string }

let pp_violation fmt v = Format.fprintf fmt "%s: %s" v.where v.what

let check (func : Ir.func) : violation list =
  let errs = ref [] in
  let err where fmt =
    Format.kasprintf (fun what -> errs := { where; what } :: !errs) fmt
  in
  let n_blocks = Ir.n_blocks func in
  let valid_block b = b >= 0 && b < n_blocks in
  (* Instruction table consistency: every block's instrs exist, belong to
     that block, and each id appears exactly once across all blocks. *)
  let placement = Array.make (Ir.n_instrs func) (-1) in
  Ir.iter_blocks func (fun b ->
      Array.iter
        (fun id ->
          if id < 0 || id >= Ir.n_instrs func then
            err (Printf.sprintf "bb%d" b.bid) "instr id %d out of range" id
          else begin
            if placement.(id) >= 0 then
              err (Printf.sprintf "bb%d" b.bid)
                "instr %d appears in two blocks (bb%d)" id placement.(id);
            placement.(id) <- b.bid;
            let i = Ir.instr func id in
            if i.block <> b.bid then
              err
                (Printf.sprintf "bb%d" b.bid)
                "instr %d records block bb%d" id i.block
          end)
        b.instrs);
  (* Terminator targets and phi labels must name real blocks; the CFG-based
     checks below would crash otherwise, so bail out early if not. *)
  Ir.iter_blocks func (fun b ->
      List.iter
        (fun s ->
          if not (valid_block s) then
            err (Printf.sprintf "bb%d" b.bid) "branch to invalid bb%d" s)
        (Ir.successors b.term);
      Array.iter
        (fun id ->
          match (Ir.instr func id).kind with
          | Phi incoming ->
              List.iter
                (fun (p, _) ->
                  if not (valid_block p) then
                    err (Printf.sprintf "instr %d" id)
                      "phi labels invalid bb%d" p)
                incoming
          | _ -> ())
        b.instrs);
  if !errs <> [] then List.rev !errs
  else begin
  let cfg = Cfg.build func in
  let dom = Dom.build cfg in
  (* Phi structure: incoming labels = predecessors; phis lead their block. *)
  Ir.iter_blocks func (fun b ->
      if Cfg.reachable cfg b.bid then begin
        let preds = List.sort compare (Cfg.preds cfg b.bid) in
        let seen_nonphi = ref false in
        Array.iter
          (fun id ->
            let i = Ir.instr func id in
            match i.kind with
            | Ir.Phi incoming ->
                if !seen_nonphi then
                  err
                    (Printf.sprintf "instr %d" id)
                    "phi appears after non-phi in bb%d" b.bid;
                let labels = List.sort compare (List.map fst incoming) in
                if labels <> preds then
                  err
                    (Printf.sprintf "instr %d" id)
                    "phi labels do not match predecessors of bb%d" b.bid
            | _ -> seen_nonphi := true)
          b.instrs
      end);
  (* SSA dominance: every use is dominated by its definition.  Phi uses are
     checked at the end of the corresponding predecessor. *)
  let check_use ~user_block ~user_id (o : Ir.operand) =
    match o with
    | Ir.Imm _ | Ir.Fimm _ -> ()
    | Ir.Var def ->
        if def < 0 || def >= Ir.n_instrs func then
          err (Printf.sprintf "instr %d" user_id) "use of invalid id %d" def
        else begin
          let di = Ir.instr func def in
          if not (Ir.defines_value di.kind) then
            err
              (Printf.sprintf "instr %d" user_id)
              "use of non-value instr %d" def;
          if Cfg.reachable cfg user_block && Cfg.reachable cfg di.block then
            if not (Dom.def_dominates_use func dom ~def ~use_at:user_id) then
              err
                (Printf.sprintf "instr %d" user_id)
                "use of %d not dominated by its definition" def
        end
  in
  Ir.iter_blocks func (fun b ->
      Array.iter
        (fun id ->
          let i = Ir.instr func id in
          match i.kind with
          | Ir.Phi incoming ->
              List.iter
                (fun (pred, v) ->
                  match v with
                  | Ir.Imm _ | Ir.Fimm _ -> ()
                  | Ir.Var def ->
                      if def < 0 || def >= Ir.n_instrs func then
                        err (Printf.sprintf "instr %d" id)
                          "phi uses invalid id %d" def
                      else begin
                        let di = Ir.instr func def in
                        if
                          Cfg.reachable cfg pred
                          && Cfg.reachable cfg di.block
                          && not (Dom.dominates dom di.block pred)
                        then
                          err
                            (Printf.sprintf "instr %d" id)
                            "phi input %d not available on edge bb%d->bb%d" def
                            pred b.bid
                      end)
                incoming
          | _ ->
              List.iter (check_use ~user_block:b.bid ~user_id:id) (Ir.srcs i.kind))
        b.instrs;
      (* Terminator uses: treat as used at end of block; dominance by block
         suffices since the terminator follows all instructions. *)
      List.iter
        (function
          | Ir.Imm _ | Ir.Fimm _ -> ()
          | Ir.Var def ->
              if def < 0 || def >= Ir.n_instrs func then
                err (Printf.sprintf "bb%d term" b.bid) "use of invalid id %d" def
              else begin
                let di = Ir.instr func def in
                if
                  Cfg.reachable cfg b.bid
                  && Cfg.reachable cfg di.block
                  && not (Dom.dominates dom di.block b.bid)
                then
                  err
                    (Printf.sprintf "bb%d term" b.bid)
                    "use of %d not dominated by its definition" def
              end)
        (Ir.term_srcs b.term));
  List.rev !errs
  end

let check_exn func =
  match check func with
  | [] -> ()
  | vs ->
      let msg =
        String.concat "; "
          (List.map (fun v -> Format.asprintf "%a" pp_violation v) vs)
      in
      invalid_arg ("Verifier: " ^ msg)
