(** Structural and SSA well-formedness checks. *)

type violation = { where : string; what : string }

val pp_violation : Format.formatter -> violation -> unit

val check : Ir.func -> violation list
(** All violations found: instruction-table consistency, branch-target
    validity, phi structure (labels match predecessors, phis lead their
    block), and SSA dominance of uses by definitions. *)

val check_exn : Ir.func -> unit
(** @raise Invalid_argument listing the violations, if any. *)
