lib/sim/cache.mli:
