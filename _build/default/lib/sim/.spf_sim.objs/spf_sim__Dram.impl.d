lib/sim/dram.ml: Machine
