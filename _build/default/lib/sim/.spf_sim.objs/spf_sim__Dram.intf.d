lib/sim/dram.mli: Machine
