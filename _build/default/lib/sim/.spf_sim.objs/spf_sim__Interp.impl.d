lib/sim/interp.ml: Array Dram Hashtbl Int64 List Machine Memory Memsys Option Printf Spf_ir Stats
