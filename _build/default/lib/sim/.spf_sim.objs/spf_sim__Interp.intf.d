lib/sim/interp.mli: Dram Machine Memory Spf_ir Stats
