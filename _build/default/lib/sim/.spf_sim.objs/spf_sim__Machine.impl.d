lib/sim/machine.ml: Format List String
