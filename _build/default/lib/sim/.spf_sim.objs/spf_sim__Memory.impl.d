lib/sim/memory.ml: Array Bytes Char Int32 Int64 Machine Spf_ir
