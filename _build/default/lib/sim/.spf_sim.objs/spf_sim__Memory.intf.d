lib/sim/memory.mli: Spf_ir
