lib/sim/memsys.ml: Array Cache Dram Hashtbl Machine Option Stats Stride_pf
