lib/sim/memsys.mli: Dram Machine Stats
