lib/sim/multicore.ml: Array Dram Interp Machine
