lib/sim/multicore.mli: Dram Interp Machine
