lib/sim/profile.ml: Array Cache Format Hashtbl Int64 List Machine Memory Option Printf Spf_ir
