lib/sim/profile.mli: Format Machine Memory Spf_ir
