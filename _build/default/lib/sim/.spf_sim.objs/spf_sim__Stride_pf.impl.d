lib/sim/stride_pf.ml: Array Machine
