lib/sim/stride_pf.mli: Machine
