(** DRAM channel model: fixed fill latency plus a per-line occupancy that
    bounds bandwidth.  Shared between cores in multicore experiments. *)

type t

val create : Machine.dram_cfg -> tscale:int -> t
(** Latencies are multiplied by [tscale], the core model's sub-cycle time
    scale. *)

val request : t -> now:int -> int
(** Request a line fill; returns its completion time and advances the
    channel's next-free time. *)

val backlog : t -> now:int -> int
(** Queueing delay a request issued at [now] would see before service —
    memory systems use it to drop prefetches under contention. *)

val fills : t -> int

val occupancy : t -> int
(** Scaled per-line channel occupancy. *)

val latency : t -> int
(** Scaled fill latency. *)
