(* Multicore driver for the bandwidth experiment (Fig 9): N independent
   instances (private caches and TLBs) share one DRAM channel.  Cores are
   co-simulated by always stepping the core with the smallest local time,
   so contention on the shared channel is interleaved realistically. *)

type t = { cores : Interp.t array }

let create ~machine ~n_cores ~make_instance =
  let tscale = Interp.default_tscale in
  let dram = Dram.create machine.Machine.dram ~tscale in
  let cores =
    Array.init n_cores (fun core_id -> make_instance ~core_id ~dram ~tscale)
  in
  { cores }

let run ?(fuel = max_int) t =
  let n = Array.length t.cores in
  let live = ref n in
  let steps = ref 0 in
  while !live > 0 && !steps < fuel do
    (* Pick the non-halted core with minimal local time. *)
    let best = ref (-1) in
    for k = 0 to n - 1 do
      if not (Interp.halted t.cores.(k)) then
        if !best < 0 || Interp.time t.cores.(k) < Interp.time t.cores.(!best)
        then best := k
    done;
    if !best >= 0 then begin
      if not (Interp.step t.cores.(!best)) then decr live
    end;
    incr steps
  done;
  if !live > 0 then failwith "Multicore.run: out of fuel"

let cores t = t.cores

(* Makespan: the time at which the last core finishes. *)
let total_cycles t =
  Array.fold_left (fun m c -> max m (Interp.cycles c)) 0 t.cores
