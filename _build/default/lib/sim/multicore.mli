(** Multicore co-simulation: N instances with private caches sharing one
    DRAM channel (the Fig 9 bandwidth experiment). *)

type t

val create :
  machine:Machine.t ->
  n_cores:int ->
  make_instance:(core_id:int -> dram:Dram.t -> tscale:int -> Interp.t) ->
  t
(** The callback must build each core's interpreter over the shared [dram]
    with the given [tscale]. *)

val run : ?fuel:int -> t -> unit
(** Co-simulate until every core's program returns, always advancing the
    core with the smallest local time. *)

val cores : t -> Interp.t array

val total_cycles : t -> int
(** Cycles at which the last core finished. *)
