module Ir = Spf_ir.Ir

(* Per-instruction memory profiling: run a function functionally (no
   timing) over a cache model and attribute hits/misses to each load,
   store and prefetch site.  The CLI's `profile` subcommand uses this to
   show exactly which loads miss — the loads the pass should be catching. *)

type site = {
  instr_id : int;
  name : string;
  mutable accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable misses : int;
}

type t = {
  sites : (int, site) Hashtbl.t;
  machine : Machine.t;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t option;
}

let create (machine : Machine.t) =
  let mk (g : Machine.cache_geom) =
    Cache.create ~size:g.size ~assoc:g.assoc ~unit_shift:Machine.line_shift
  in
  {
    sites = Hashtbl.create 32;
    machine;
    l1 = mk machine.l1;
    l2 = mk machine.l2;
    l3 = Option.map mk machine.l3;
  }

let site t (i : Ir.instr) =
  match Hashtbl.find_opt t.sites i.id with
  | Some s -> s
  | None ->
      let s =
        {
          instr_id = i.id;
          name = i.name;
          accesses = 0;
          l1_hits = 0;
          l2_hits = 0;
          l3_hits = 0;
          misses = 0;
        }
      in
      Hashtbl.replace t.sites i.id s;
      s

let touch t (i : Ir.instr) ~addr =
  let s = site t i in
  s.accesses <- s.accesses + 1;
  let line = addr lsr Machine.line_shift in
  if Cache.access t.l1 line then s.l1_hits <- s.l1_hits + 1
  else if Cache.access t.l2 line then begin
    s.l2_hits <- s.l2_hits + 1;
    ignore (Cache.insert t.l1 line)
  end
  else
    match t.l3 with
    | Some l3 when Cache.access l3 line ->
        s.l3_hits <- s.l3_hits + 1;
        ignore (Cache.insert t.l2 line);
        ignore (Cache.insert t.l1 line)
    | other ->
        s.misses <- s.misses + 1;
        (match other with
        | Some l3 -> ignore (Cache.insert l3 line)
        | None -> ());
        ignore (Cache.insert t.l2 line);
        ignore (Cache.insert t.l1 line)

(* Functional execution with cache profiling: a simplified interpreter that
   shares the Memory model but skips all timing. *)
let run ?(fuel = 200_000_000) t (func : Ir.func) ~(mem : Memory.t)
    ~(args : int array) =
  let n = Ir.n_instrs func in
  let env = Array.make (max n 1) 0 in
  let fenv = Array.make (max n 1) 0.0 in
  Array.iteri
    (fun k id -> if k < Array.length args then env.(id) <- args.(k))
    func.Ir.param_ids;
  let ival = function
    | Ir.Var id -> env.(id)
    | Ir.Imm x -> x
    | Ir.Fimm x -> Int64.to_int (Int64.bits_of_float x)
  in
  let fval = function
    | Ir.Var id -> fenv.(id)
    | Ir.Fimm x -> x
    | Ir.Imm x -> float_of_int x
  in
  let cur = ref func.Ir.entry in
  let halted = ref false in
  let retval = ref None in
  let steps = ref 0 in
  while (not !halted) && !steps < fuel do
    incr steps;
    let block = Ir.block func !cur in
    Array.iter
      (fun id ->
        let i = Ir.instr func id in
        match i.Ir.kind with
        | Ir.Phi _ -> () (* handled on edges *)
        | Ir.Binop (op, x, y) -> (
            let dst = i.Ir.id in
            match op with
            | Ir.Fadd -> fenv.(dst) <- fval x +. fval y
            | Ir.Fsub -> fenv.(dst) <- fval x -. fval y
            | Ir.Fmul -> fenv.(dst) <- fval x *. fval y
            | Ir.Fdiv -> fenv.(dst) <- fval x /. fval y
            | Ir.Add -> env.(dst) <- ival x + ival y
            | Ir.Sub -> env.(dst) <- ival x - ival y
            | Ir.Mul -> env.(dst) <- ival x * ival y
            | Ir.Sdiv -> env.(dst) <- ival x / ival y
            | Ir.Srem -> env.(dst) <- ival x mod ival y
            | Ir.And -> env.(dst) <- ival x land ival y
            | Ir.Or -> env.(dst) <- ival x lor ival y
            | Ir.Xor -> env.(dst) <- ival x lxor ival y
            | Ir.Shl -> env.(dst) <- ival x lsl ival y
            | Ir.Lshr -> env.(dst) <- ival x lsr ival y
            | Ir.Ashr -> env.(dst) <- ival x asr ival y
            | Ir.Smin -> env.(dst) <- min (ival x) (ival y)
            | Ir.Smax -> env.(dst) <- max (ival x) (ival y))
        | Ir.Cmp (pred, x, y) ->
            let a = ival x and b = ival y in
            env.(i.Ir.id) <-
              (match pred with
               | Ir.Eq -> if a = b then 1 else 0
               | Ir.Ne -> if a <> b then 1 else 0
               | Ir.Slt -> if a < b then 1 else 0
               | Ir.Sle -> if a <= b then 1 else 0
               | Ir.Sgt -> if a > b then 1 else 0
               | Ir.Sge -> if a >= b then 1 else 0)
        | Ir.Select (c, x, y) ->
            let pick = if ival c <> 0 then x else y in
            env.(i.Ir.id) <- ival pick;
            (match pick with
            | Ir.Var v -> fenv.(i.Ir.id) <- fenv.(v)
            | Ir.Fimm f -> fenv.(i.Ir.id) <- f
            | Ir.Imm _ -> ())
        | Ir.Gep { base; index; scale } ->
            env.(i.Ir.id) <- ival base + (ival index * scale)
        | Ir.Load (ty, a) ->
            let addr = ival a in
            touch t i ~addr;
            (match ty with
            | Ir.F64 -> fenv.(i.Ir.id) <- Memory.load_f64 mem addr
            | _ -> env.(i.Ir.id) <- Memory.load mem ty addr)
        | Ir.Store (ty, a, v) ->
            let addr = ival a in
            touch t i ~addr;
            (match ty with
            | Ir.F64 -> Memory.store_f64 mem addr (fval v)
            | _ -> Memory.store mem ty addr (ival v))
        | Ir.Prefetch a ->
            let addr = ival a in
            if addr >= 0 then touch t i ~addr
        | Ir.Alloc sz -> env.(i.Ir.id) <- Memory.alloc mem (ival sz)
        | Ir.Call _ -> failwith "Profile.run: calls unsupported"
        | Ir.Param _ -> ())
      block.Ir.instrs;
    (* Edge with phi copies. *)
    let goto succ =
      let copies = ref [] in
      Array.iter
        (fun id ->
          let i = Ir.instr func id in
          match i.Ir.kind with
          | Ir.Phi incoming -> (
              match List.assoc_opt !cur incoming with
              | Some v -> copies := (i.Ir.id, ival v,
                    (match v with
                     | Ir.Var vv -> fenv.(vv)
                     | Ir.Fimm f -> f
                     | Ir.Imm _ -> 0.0)) :: !copies
              | None -> failwith "Profile.run: missing phi edge")
          | _ -> ())
        (Ir.block func succ).Ir.instrs;
      List.iter (fun (dst, v, fv) -> env.(dst) <- v; fenv.(dst) <- fv) !copies;
      cur := succ
    in
    match block.Ir.term with
    | Ir.Br succ -> goto succ
    | Ir.Cbr (c, bt, bf) -> goto (if ival c <> 0 then bt else bf)
    | Ir.Ret v ->
        retval := Option.map ival v;
        halted := true
    | Ir.Unreachable -> failwith "Profile.run: unreachable"
  done;
  if not !halted then failwith "Profile.run: out of fuel";
  !retval

let sites t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.sites []
  |> List.sort (fun a b -> compare b.misses a.misses)

let pp fmt t =
  Format.fprintf fmt "%-18s %10s %10s %10s %10s %10s@." "site" "accesses"
    "l1" "l2" "l3" "misses";
  List.iter
    (fun s ->
      Format.fprintf fmt "%%%-17s %10d %10d %10d %10d %10d@."
        (Printf.sprintf "%s.%d" s.name s.instr_id)
        s.accesses s.l1_hits s.l2_hits s.l3_hits s.misses)
    (sites t)
