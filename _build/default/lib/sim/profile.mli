(** Per-instruction memory profiling: functional (untimed) execution over a
    cache model, attributing hits and misses to each load/store/prefetch
    site.  The CLI's [profile] subcommand uses this to show which loads
    miss — the loads the pass should be catching. *)

type site = {
  instr_id : int;
  name : string;
  mutable accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable misses : int;
}

type t

val create : Machine.t -> t

val run :
  ?fuel:int ->
  t ->
  Spf_ir.Ir.func ->
  mem:Memory.t ->
  args:int array ->
  int option
(** Execute the function, profiling every memory access; returns the
    function's return value.  Calls are unsupported. *)

val sites : t -> site list
(** All touched sites, worst missers first. *)

val pp : Format.formatter -> t -> unit
