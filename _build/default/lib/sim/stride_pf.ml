(* Hardware stride prefetcher, modelled after the region-based streamers in
   these cores (e.g. Intel's L2 streamer): stream-table entries track the
   last access and stride *per 4 KiB region* (two sub-streams per region,
   as the streamers document), not per instruction.  Once a stride has been
   confirmed [threshold] times the prefetcher requests the line [distance]
   lines ahead in the stream's direction.

   Being region-based matters for the paper's results twice over:
   - purely data-dependent accesses (IS's buckets, RA's table...) never
     confirm a stride, which is the gap the pass fills;
   - interleaved streams over the *same* array — the demand stream at [i]
     and the pass's look-ahead loads at [i + offset] — compete for the
     region's sub-streams and keep disturbing each other, which is why the
     paper's software stride companions (§4.3, Fig 5) still pay off on
     machines with hardware prefetchers. *)

type entry = {
  mutable region : int;
  mutable last : int;
  mutable stride : int;
  mutable conf : int;
}

type t = { cfg : Machine.stride_cfg; entries : entry array (* 2 per set *) }

let region_shift = 12

(* Sub-streams tracked per region.  These streamers detect one forward
   stream per 4 KiB page: when the pass's look-ahead loads interleave with
   the demand stream on the same array, the two keep retraining the entry
   and coverage collapses — the measured reason the intuitive
   indirect-only scheme of Fig 2 underperforms and the stride companions
   of Fig 5 pay off. *)
let slots_per_region = 1

let create (cfg : Machine.stride_cfg) =
  {
    cfg;
    entries =
      Array.init (cfg.table * slots_per_region) (fun _ ->
          { region = -1; last = 0; stride = 0; conf = 0 });
  }

let reset e ~region ~addr =
  e.region <- region;
  e.last <- addr;
  e.stride <- 0;
  e.conf <- 0

(* Train on a demand access; returns the address to prefetch, if any. *)
let train t ~pc ~addr =
  ignore pc;
  let region = addr lsr region_shift in
  let sets = Array.length t.entries / slots_per_region in
  let base = region mod sets * slots_per_region in
  let slot k = t.entries.(base + k) in
  (* Among this region's sub-streams, pick the one whose stride continues
     at [addr]; failing that, the closest one; failing that, steal the
     weakest. *)
  let best = ref None in
  for k = 0 to slots_per_region - 1 do
    let e = slot k in
    if e.region = region then begin
      let d = addr - e.last in
      let continues = d = e.stride && d <> 0 in
      let closeness = abs d in
      match !best with
      | Some (bc, bclose, _) when (bc && not continues)
                                   || (bc = continues && bclose <= closeness) ->
          ()
      | _ -> best := Some (continues, closeness, e)
    end
  done;
  let free_slot () =
    let found = ref None in
    for k = 0 to slots_per_region - 1 do
      if !found = None && (slot k).region <> region then found := Some (slot k)
    done;
    !found
  in
  match !best with
  | Some ((continues, closeness, e) : bool * int * entry)
    when closeness <= 2048 && (continues || free_slot () = None) ->
      (* Continue (or re-train) this sub-stream.  A non-continuing access
         prefers a free sub-slot (handled below) so that a second stream in
         the region does not destroy the first. *)
      let s = addr - e.last in
      e.last <- addr;
      if s = 0 then None
      else if s = e.stride then begin
        if e.conf < 1_000 then e.conf <- e.conf + 1;
        if e.conf >= t.cfg.threshold then begin
          let dir = if s > 0 then 1 else -1 in
          Some (addr + (dir * t.cfg.distance * Machine.line_size))
        end
        else None
      end
      else begin
        e.stride <- s;
        e.conf <- 0;
        None
      end
  | _ -> (
      (* New (sub-)stream: prefer a slot holding another region, else the
         weakest of this region's slots. *)
      match free_slot () with
      | Some e ->
          reset e ~region ~addr;
          None
      | None ->
          let victim = ref (slot 0) in
          for k = 1 to slots_per_region - 1 do
            if (slot k).conf < !victim.conf then victim := slot k
          done;
          reset !victim ~region ~addr;
          None)

let insert_to_l1 t = t.cfg.to_l1
