lib/workloads/cg.ml: Array Int64 Rng Spf_ir Spf_sim Workload
