lib/workloads/cg.mli: Spf_ir Workload
