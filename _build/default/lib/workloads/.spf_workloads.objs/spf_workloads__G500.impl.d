lib/workloads/g500.ml: Array Hashtbl Option Rng Spf_ir Spf_sim Workload
