lib/workloads/g500.mli: Spf_ir Workload
