lib/workloads/hj.ml: Array Option Rng Spf_ir Spf_sim Workload
