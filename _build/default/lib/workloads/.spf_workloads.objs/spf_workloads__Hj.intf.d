lib/workloads/hj.mli: Spf_ir Workload
