lib/workloads/is.ml: Array Rng Spf_ir Spf_sim Workload
