lib/workloads/is.mli: Spf_ir Workload
