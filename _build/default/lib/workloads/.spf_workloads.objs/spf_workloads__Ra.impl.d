lib/workloads/ra.ml: Array Spf_ir Spf_sim Workload
