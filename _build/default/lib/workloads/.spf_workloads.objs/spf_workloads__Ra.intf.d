lib/workloads/ra.mli: Spf_ir Workload
