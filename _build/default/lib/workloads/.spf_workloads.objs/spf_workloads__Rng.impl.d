lib/workloads/rng.ml: Array
