lib/workloads/rng.mli:
