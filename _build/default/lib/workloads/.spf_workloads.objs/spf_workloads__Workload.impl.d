lib/workloads/workload.ml: Printf Spf_ir Spf_sim
