lib/workloads/workload.mli: Spf_ir Spf_sim
