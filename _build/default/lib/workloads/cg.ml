module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory

(* Conjugate Gradient (NAS Parallel Benchmarks) — the sparse
   matrix-times-vector product that dominates CG's runtime.  The irregular
   access is the gather [x[col[j]]] through the stored column indices.

   Substitution note (DESIGN.md): we store the matrix in ELLPACK layout
   (constant [row_nnz] non-zeros per row) and split the product into a flat
   gather-multiply loop followed by a per-row reduction.  The gather loop —
   where all the memory-boundness lives — has exactly the paper's
   stride-indirect shape with a compile-time trip count, which is also what
   lets the ICC-model baseline pick CG up, as Fig 4(d) reports for the real
   Intel compiler.  Column indices follow a band-plus-scatter distribution
   (see [generate]), so the 2 MiB dense vector is accessed with strong
   locality: most gathers hit the L1/L2, a tail misses — CG's "smaller
   irregular dataset... more likely to fit in the L2 cache" and "less of a
   challenge for the TLB" (§5.1). *)

type params = { n_rows : int; row_nnz : int; n_cols : int; seed : int }

let default = { n_rows = 1 lsl 15; row_nnz = 16; n_cols = 1 lsl 18; seed = 7 }

let nnz p = p.n_rows * p.row_nnz

type manual = { c : int; stride : bool }

let optimal = { c = 64; stride = true }

(* params: 0 = col indices (i32[nnz]), 1 = matrix values (f64[nnz]),
   2 = x (f64[n_cols]), 3 = products scratch (f64[nnz]), 4 = y (f64[rows]) *)
let build_func ?manual p =
  let b = Builder.create ~name:"cg_spmv" ~nparams:5 in
  let col = Builder.param b 0
  and a = Builder.param b 1
  and x = Builder.param b 2
  and prod = Builder.param b 3
  and y = Builder.param b 4 in
  let m = nnz p in
  (* Gather loop: prod[j] = a[j] * x[col[j]]. *)
  let _ =
    Builder.counted_loop ~name:"gather" b ~init:(Ir.Imm 0) ~bound:(Ir.Imm m)
      ~step:(Ir.Imm 1) (fun j ->
        (match manual with
        | Some mc ->
            if mc.stride then begin
              let idx =
                Builder.binop b Ir.Smin
                  (Builder.add b j (Ir.Imm mc.c))
                  (Ir.Imm (m - 1))
              in
              Builder.prefetch b (Builder.gep b col idx 4)
            end;
            let idx =
              Builder.binop b Ir.Smin
                (Builder.add b j (Ir.Imm (mc.c / 2)))
                (Ir.Imm (m - 1))
            in
            let c = Builder.load b Ir.I32 (Builder.gep b col idx 4) in
            Builder.prefetch b (Builder.gep b x c 8)
        | None -> ());
        let c = Builder.load ~name:"colidx" b Ir.I32 (Builder.gep b col j 4) in
        let xv = Builder.load ~name:"xv" b Ir.F64 (Builder.gep b x c 8) in
        let av = Builder.load ~name:"av" b Ir.F64 (Builder.gep b a j 8) in
        let pv = Builder.binop ~name:"prod" b Ir.Fmul av xv in
        Builder.store b Ir.F64 (Builder.gep b prod j 8) pv)
  in
  (* Reduction loop: y[r] = sum of prod[r*row_nnz ..]. *)
  let _ =
    Builder.counted_loop ~name:"rows" b ~init:(Ir.Imm 0)
      ~bound:(Ir.Imm p.n_rows) ~step:(Ir.Imm 1) (fun r ->
        let base = Builder.mul b r (Ir.Imm p.row_nnz) in
        let bound = Builder.add b base (Ir.Imm p.row_nnz) in
        let sum_cell = Builder.gep b y r 8 in
        Builder.store b Ir.F64 sum_cell (Ir.Fimm 0.0);
        let _ =
          Builder.counted_loop ~name:"red" b ~init:base ~bound ~step:(Ir.Imm 1)
            (fun k ->
              let pv = Builder.load b Ir.F64 (Builder.gep b prod k 8) in
              let cur = Builder.load b Ir.F64 sum_cell in
              Builder.store b Ir.F64 sum_cell (Builder.binop b Ir.Fadd cur pv))
        in
        ())
  in
  Builder.ret b None;
  Builder.finish b

(* NAS CG's matrices are unstructured but far from uniform-random: column
   indices cluster, giving the gather stream strong temporal locality (and
   modest TLB pressure, §5.1).  We model that with a band-plus-scatter
   distribution: most indices fall in a window that tracks the row, the
   rest are uniform. *)
let generate p =
  let rng = Rng.create ~seed:p.seed in
  let window = max 1 (p.n_cols / 32) in
  let cols =
    Array.init (nnz p) (fun j ->
        if Rng.int rng 100 < 75 then begin
          let center = j * p.n_cols / nnz p in
          let lo = max 0 (min (p.n_cols - window) (center - (window / 2))) in
          lo + Rng.int rng window
        end
        else Rng.int rng p.n_cols)
  in
  let vals = Array.init (nnz p) (fun _ -> Rng.float rng -. 0.5) in
  let x = Array.init p.n_cols (fun _ -> Rng.float rng -. 0.5) in
  (cols, vals, x)

let reference p (cols, vals, x) =
  Array.init p.n_rows (fun r ->
      let sum = ref 0.0 in
      for k = 0 to p.row_nnz - 1 do
        let j = (r * p.row_nnz) + k in
        sum := !sum +. (vals.(j) *. x.(cols.(j)))
      done;
      !sum)

let checksum_floats ys =
  Array.fold_left (fun acc v -> Workload.mix acc (Int64.to_int (Int64.bits_of_float v))) 0 ys

let build ?manual (p : params) : Workload.built =
  let ((cols, vals, x) as data) = generate p in
  let mem = Memory.create ~initial:(1 lsl 25) () in
  let col_base = Memory.alloc_i32_array mem cols in
  let a_base = Memory.alloc_f64_array mem vals in
  let x_base = Memory.alloc_f64_array mem x in
  let prod_base = Memory.alloc mem (8 * nnz p) in
  let y_base = Memory.alloc mem (8 * p.n_rows) in
  let expected = checksum_floats (reference p data) in
  let check m ~retval:_ =
    checksum_floats (Memory.read_f64_array m ~base:y_base ~len:p.n_rows)
  in
  {
    Workload.name = "CG";
    func = build_func ?manual p;
    mem;
    args = [| col_base; a_base; x_base; prod_base; y_base |];
    expected;
    check;
  }
