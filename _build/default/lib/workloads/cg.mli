(** Conjugate Gradient (NAS Parallel Benchmarks) — the sparse
    matrix-vector product's gather [x[col[j]]].

    Substitutions (DESIGN.md §4): ELLPACK layout (constant non-zeros per
    row) with the product split into a flat gather-multiply loop and a
    per-row reduction — the gather loop carries all the memory-boundness
    and has the compile-time trip count that lets the ICC-model baseline
    pick CG up, as the paper reports for the real Intel compiler.  Column
    indices follow a band-plus-scatter distribution so the dense-vector
    gather has CG's characteristic locality. *)

type params = { n_rows : int; row_nnz : int; n_cols : int; seed : int }

val default : params
val nnz : params -> int

type manual = { c : int; stride : bool }

val optimal : manual

val build_func : ?manual:manual -> params -> Spf_ir.Ir.func
val build : ?manual:manual -> params -> Workload.built
