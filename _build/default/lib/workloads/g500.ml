module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory

(* Graph500 seq-csr: breadth-first search over a Kronecker (R-MAT) graph in
   compressed-sparse-row format, with the reference code's single work
   queue.

   The queue bound (tail) grows inside the loop, so the outer work-list
   loads are out of reach of the pass — no loop-invariant bound, and the
   queue itself is stored to — exactly the "complicated control flow" the
   paper blames for the pass missing the work/vertex/edge-list prefetches.
   What the pass does catch is the edge→visited stride-indirect in the
   inner loop (parent[col[e]] under the edge induction variable), whose
   look-ahead is clamped to the current vertex's edges; that pattern
   dominates on the in-order machines (§6.1).  The manual variant adds the
   staggered work→vertex→edge chain and small-distance cross-vertex parent
   prefetches, using the runtime knowledge the compiler lacks. *)

type params = {
  scale : int;
  edge_factor : int;
  seed : int;
  max_vertices : int option;
      (* stop after dequeuing this many vertices: bounds simulation cost
         while keeping the full graph's memory footprint (the BFS touches
         a working set far larger than any cache, as the paper's -s 21
         does); [None] runs to an empty queue *)
}

(* Stand-ins for the paper's -s 16 (mostly cache-resident) and -s 21 (well
   past every cache) at simulator-tractable costs; DESIGN.md §4 records the
   substitution. *)
let small = { scale = 16; edge_factor = 16; seed = 5; max_vertices = None }

let large =
  { scale = 19; edge_factor = 10; seed = 5; max_vertices = Some 12_000 }

type manual = {
  c_work : int;
  c_edge : int;
  c_col : int;
  inner : bool;
      (* emit the per-edge prefetches?  The paper's Haswell-optimal scheme
         restricts manual prefetching to the outer loops (§6.2, Fig 8);
         on the in-order machines the inner-loop prefetches dominate. *)
}

let optimal = { c_work = 16; c_edge = 32; c_col = 64; inner = true }
let optimal_ooo = { optimal with inner = false }

type graph = {
  n : int;
  row : int array; (* n+1 *)
  col : int array;
}

(* R-MAT edge sampling with the Graph500 parameters (A=0.57, B=0.19,
   C=0.19). *)
let kronecker p =
  let n = 1 lsl p.scale in
  let m = p.edge_factor * n in
  let rng = Rng.create ~seed:p.seed in
  let edges = Array.make (2 * m) (0, 0) in
  for k = 0 to m - 1 do
    let u = ref 0 and v = ref 0 in
    for bit = 0 to p.scale - 1 do
      let r = Rng.float rng in
      let ub, vb =
        if r < 0.57 then (0, 0)
        else if r < 0.76 then (0, 1)
        else if r < 0.95 then (1, 0)
        else (1, 1)
      in
      u := !u lor (ub lsl bit);
      v := !v lor (vb lsl bit)
    done;
    edges.(2 * k) <- (!u, !v);
    edges.((2 * k) + 1) <- (!v, !u)
  done;
  let deg = Array.make n 0 in
  Array.iter (fun (u, _) -> deg.(u) <- deg.(u) + 1) edges;
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + deg.(i)
  done;
  let fill = Array.copy row in
  let col = Array.make (2 * m) 0 in
  Array.iter
    (fun (u, v) ->
      col.(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1)
    edges;
  { n; row; col }

let root_of g =
  let rec find i = if g.row.(i + 1) > g.row.(i) then i else find (i + 1) in
  find 0

(* Reference BFS with identical queue semantics (and the same optional
   vertex budget as the kernel). *)
let reference_bfs g ~root ~max_vertices =
  let budget = Option.value max_vertices ~default:g.n in
  let parent = Array.make g.n (-1) in
  let work = Array.make g.n 0 in
  parent.(root) <- root;
  work.(0) <- root;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail && !head < budget do
    let v = work.(!head) in
    incr head;
    for e = g.row.(v) to g.row.(v + 1) - 1 do
      let dest = g.col.(e) in
      if parent.(dest) < 0 then begin
        parent.(dest) <- v;
        work.(!tail) <- dest;
        incr tail
      end
    done
  done;
  (parent, !tail)

(* params: 0 = work, 1 = parent, 2 = row, 3 = col (+ the total edge count
   baked in for the manual variant's global clamp) *)
let build_func ?manual ?max_vertices g =
  let b = Builder.create ~name:"g500_bfs" ~nparams:4 in
  let work = Builder.param b 0
  and parent = Builder.param b 1
  and row = Builder.param b 2
  and col = Builder.param b 3 in
  let m_edges = Array.length g.col in
  let ohead = Builder.new_block b "work.head" in
  let obody = Builder.new_block b "work.body" in
  let oexit = Builder.new_block b "work.exit" in
  let entry = Builder.current_block b in
  Builder.br b ohead;
  Builder.set_block b ohead;
  let head = Builder.phi ~name:"head" b [ (entry, Ir.Imm 0) ] in
  let tail = Builder.phi ~name:"tail" b [ (entry, Ir.Imm 1) ] in
  let cond = Builder.cmp b Ir.Slt head tail in
  let cond =
    match max_vertices with
    | None -> cond
    | Some k ->
        Builder.binop b Ir.And cond (Builder.cmp b Ir.Slt head (Ir.Imm k))
  in
  Builder.cbr b cond obody oexit;
  Builder.set_block b obody;
  (match manual with
  | Some mc ->
      (* Staggered work -> vertex -> edge-list prefetches, clamped by the
         live queue extent. *)
      let tail_m1 = Builder.sub ~name:"tail.m1" b tail (Ir.Imm 1) in
      let at off =
        Builder.binop b Ir.Smin (Builder.add b head (Ir.Imm off)) tail_m1
      in
      Builder.prefetch b (Builder.gep b work (at mc.c_work) 4);
      let v1 = Builder.load b Ir.I32 (Builder.gep b work (at (mc.c_work / 2)) 4) in
      Builder.prefetch b (Builder.gep b row v1 4);
      let v2 = Builder.load b Ir.I32 (Builder.gep b work (at (mc.c_work / 4)) 4) in
      let rs2 = Builder.load b Ir.I32 (Builder.gep b row v2 4) in
      Builder.prefetch b (Builder.gep b col rs2 4)
  | None -> ());
  let v = Builder.load ~name:"v" b Ir.I32 (Builder.gep b work head 4) in
  let rs = Builder.load ~name:"row.s" b Ir.I32 (Builder.gep b row v 4) in
  let re =
    Builder.load ~name:"row.e" b Ir.I32
      (Builder.gep b row (Builder.add b v (Ir.Imm 1)) 4)
  in
  (* Inner edge loop. *)
  let ehead = Builder.new_block b "edge.head" in
  let ebody = Builder.new_block b "edge.body" in
  let eif = Builder.new_block b "edge.if" in
  let elatch = Builder.new_block b "edge.latch" in
  let eexit = Builder.new_block b "edge.exit" in
  Builder.br b ehead;
  Builder.set_block b ehead;
  let e = Builder.phi ~name:"e" b [ (obody, rs) ] in
  let tail_in = Builder.phi ~name:"tail.in" b [ (obody, tail) ] in
  let econd = Builder.cmp b Ir.Slt e re in
  Builder.cbr b econd ebody eexit;
  Builder.set_block b ebody;
  (match manual with
  | Some mc when mc.inner ->
      (* Cross-vertex prefetches at small distance, clamped only by the
         global edge count — the runtime-knowledge trade-off of §5.1. *)
      let gat off =
        Builder.binop b Ir.Smin (Builder.add b e (Ir.Imm off))
          (Ir.Imm (m_edges - 1))
      in
      Builder.prefetch b (Builder.gep b col (gat mc.c_col) 4);
      let d' = Builder.load b Ir.I32 (Builder.gep b col (gat mc.c_edge) 4) in
      Builder.prefetch b (Builder.gep b parent d' 8)
  | Some _ | None -> ());
  let dest = Builder.load ~name:"dest" b Ir.I32 (Builder.gep b col e 4) in
  let pv = Builder.load ~name:"pv" b Ir.I64 (Builder.gep b parent dest 8) in
  (* parent entries are stored as value+1 so that "unvisited" is 0 and the
     load needs no sign handling; 8-byte entries match Graph500's int64_t
     parent array. *)
  let unvisited = Builder.cmp ~name:"unvis" b Ir.Eq pv (Ir.Imm 0) in
  Builder.cbr b unvisited eif elatch;
  Builder.set_block b eif;
  let vp1 = Builder.add b v (Ir.Imm 1) in
  Builder.store b Ir.I64 (Builder.gep b parent dest 8) vp1;
  Builder.store b Ir.I32 (Builder.gep b work tail_in 4) dest;
  let tail_if = Builder.add b tail_in (Ir.Imm 1) in
  Builder.br b elatch;
  Builder.set_block b elatch;
  let tail2 =
    Builder.phi ~name:"tail2" b [ (ebody, tail_in); (eif, tail_if) ]
  in
  let e' = Builder.add b e (Ir.Imm 1) in
  Builder.br b ehead;
  Builder.add_incoming b e ~pred:elatch e';
  Builder.add_incoming b tail_in ~pred:elatch tail2;
  Builder.set_block b eexit;
  let head' = Builder.add b head (Ir.Imm 1) in
  Builder.br b ohead;
  Builder.add_incoming b head ~pred:eexit head';
  Builder.add_incoming b tail ~pred:eexit tail_in;
  Builder.set_block b oexit;
  Builder.ret b (Some tail);
  Builder.finish b

let checksum_parents ~get n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := Workload.mix !acc (get i)
  done;
  !acc

(* Graph construction and the reference BFS are by far the most expensive
   host-side work; cache them per parameter set (they are immutable). *)
let graph_cache : (params, graph * int * int array * int) Hashtbl.t =
  Hashtbl.create 4

let graph_of p =
  match Hashtbl.find_opt graph_cache p with
  | Some entry -> entry
  | None ->
      let g = kronecker p in
      let root = root_of g in
      let parent_ref, visited =
        reference_bfs g ~root ~max_vertices:p.max_vertices
      in
      let entry = (g, root, parent_ref, visited) in
      Hashtbl.replace graph_cache p entry;
      entry

let build ?manual ?(name = "G500") (p : params) : Workload.built =
  let g, root, parent_ref, visited = graph_of p in
  let mem = Memory.create ~initial:(1 lsl 25) () in
  let work_base = Memory.alloc mem (4 * g.n) in
  let parent_base = Memory.alloc mem (8 * g.n) in
  let row_base = Memory.alloc_i32_array mem g.row in
  let col_base = Memory.alloc_i32_array mem g.col in
  Memory.store mem Ir.I32 (work_base + 0) root;
  Memory.store mem Ir.I64 (parent_base + (8 * root)) (root + 1);
  let expected =
    Workload.mix (checksum_parents ~get:(fun i -> parent_ref.(i) + 1) g.n) visited
  in
  let check m ~retval =
    let parents =
      checksum_parents ~get:(fun i -> Memory.load m Ir.I64 (parent_base + (8 * i))) g.n
    in
    Workload.mix parents (Option.value retval ~default:min_int)
  in
  {
    Workload.name = name;
    func = build_func ?manual ?max_vertices:p.max_vertices g;
    mem;
    args = [| work_base; parent_base; row_base; col_base |];
    expected;
    check;
  }
