(** Graph500 seq-csr: queue-based breadth-first search over a Kronecker
    (R-MAT) graph in CSR form.

    The queue bound grows inside the loop and the queue is stored to, so
    the work/vertex/edge-list chains are out of the pass's reach — the
    "complicated control flow" of §6.1 — while the edge→visited
    stride-indirect in the inner loop is picked up with row-clamped
    look-ahead.  The manual variant adds the staggered work→vertex→edge
    chain and small-distance cross-vertex parent prefetches. *)

type params = {
  scale : int;  (** 2^scale vertices *)
  edge_factor : int;
  seed : int;
  max_vertices : int option;
      (** optional vertex budget: bounds simulation cost while keeping the
          full graph's memory footprint (DESIGN.md §4) *)
}

val small : params
(** Stand-in for the paper's -s 16: footprint around LLC size. *)

val large : params
(** Stand-in for -s 21: footprint far past every cache, vertex-budgeted. *)

type manual = { c_work : int; c_edge : int; c_col : int; inner : bool }

val optimal : manual
val optimal_ooo : manual
(** Outer-loop prefetches only — the scheme the paper found best on
    Haswell (§6.2). *)

type graph = { n : int; row : int array; col : int array }

val kronecker : params -> graph
(** R-MAT sampling with the Graph500 parameters (A=0.57, B=C=0.19),
    symmetrised, in CSR. *)

val root_of : graph -> int
val reference_bfs :
  graph -> root:int -> max_vertices:int option -> int array * int
(** Reference parent array and visited count, with kernel-identical queue
    semantics. *)

val build_func :
  ?manual:manual -> ?max_vertices:int -> graph -> Spf_ir.Ir.func

val build : ?manual:manual -> ?name:string -> params -> Workload.built
(** Graphs and reference BFS results are cached per [params]. *)
