module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory

(* Hash Join (Teubner et al.-style microkernel, §5.1): hash each probe key,
   index a bucket array, and scan the bucket.  Buckets hold two inline keys
   plus a chain pointer:

     bucket  = { key0 : i64; key1 : i64; next : i64; pad }   (32 bytes)
     node    = { key0 : i64; key1 : i64; next : i64; pad }

   HJ-2 fills every bucket with exactly two keys (no chain — "no linked-list
   traversals due to the data structure used"); HJ-8 fills eight, i.e. two
   inline plus three chain nodes, so each probe makes four dependent
   irregular accesses.  Inputs are crafted so occupancy is exact: the key
   for (bucket b, slot s) is [(b lxor s) lor (s lsl 33)] under the hash
   [h(k) = (k lxor (k lsr 33)) land mask], which is also enough arithmetic
   in the address chain to defeat the ICC-model pass, as the paper reports.

   The probe accumulates [acc += (h+1)] per matching slot and returns it —
   the checksum validated against the reference implementation. *)

type params = {
  log_buckets : int;
  elems_per_bucket : int; (* 2 or 8 *)
  n_probes : int;
  seed : int;
}

let default_hj2 =
  { log_buckets = 18; elems_per_bucket = 2; n_probes = 1 lsl 17; seed = 3 }

let default_hj8 =
  { log_buckets = 17; elems_per_bucket = 8; n_probes = 1 lsl 16; seed = 3 }

let bucket_bytes = 32
let node_bytes = 32
let nodes_per_bucket p = max 0 ((p.elems_per_bucket - 2) / 2)

let hash ~mask k = (k lxor (k lsr 33)) land mask
let key_of ~bucket ~slot = bucket lxor slot lor (slot lsl 33)

type manual = { c : int; depth : int (* irregular accesses to prefetch, 1-4 *) }

let optimal_hj2 = { c = 64; depth = 1 }
let optimal_hj8 = { c = 64; depth = 3 (* Fig 7: 3 of 4 is optimal *) }

(* Hash computation in IR. *)
let emit_hash b ~mask k =
  let t1 = Builder.binop ~name:"h.shr" b Ir.Lshr k (Ir.Imm 33) in
  let t2 = Builder.binop ~name:"h.xor" b Ir.Xor k t1 in
  Builder.binop ~name:"h" b Ir.And t2 (Ir.Imm mask)

(* One staggered manual-prefetch group: re-execute the probe chain [level]
   loads deep at look-ahead [off] and prefetch the next structure.
   level 0 prefetches the bucket; level k > 0 prefetches the k-th chain
   node via real loads of the next pointers (§5.1's HJ-8 description). *)
let emit_manual_group b ~probe ~buckets ~mask ~n ~off ~level i =
  let idx =
    Builder.binop b Ir.Smin (Builder.add b i (Ir.Imm off)) (Ir.Imm (n - 1))
  in
  let pk = Builder.load b Ir.I64 (Builder.gep b probe idx 8) in
  let h = emit_hash b ~mask pk in
  let baddr = Builder.gep b buckets h bucket_bytes in
  if level = 0 then Builder.prefetch b baddr
  else begin
    let rec chase addr k =
      let nxt = Builder.load b Ir.I64 (Builder.gep b addr (Ir.Imm 2) 8) in
      if k = 1 then Builder.prefetch b nxt else chase nxt (k - 1)
    in
    chase baddr level
  end

let build_func ?manual p =
  let mask = (1 lsl p.log_buckets) - 1 in
  let n = p.n_probes in
  let b = Builder.create ~name:"hj_probe" ~nparams:2 in
  let probe = Builder.param b 0 and buckets = Builder.param b 1 in
  let head = Builder.new_block b "probe.head" in
  let body = Builder.new_block b "probe.body" in
  let exit = Builder.new_block b "probe.exit" in
  let entry = Builder.current_block b in
  Builder.br b head;
  Builder.set_block b head;
  let i = Builder.phi ~name:"probe.iv" b [ (entry, Ir.Imm 0) ] in
  let acc = Builder.phi ~name:"acc" b [ (entry, Ir.Imm 0) ] in
  let cond = Builder.cmp b Ir.Slt i (Ir.Imm n) in
  Builder.cbr b cond body exit;
  Builder.set_block b body;
  (* Manual staggered prefetches (stride + [depth] irregulars). *)
  (match manual with
  | Some m ->
      let t = m.depth + 1 in
      (* stride prefetch of the probe-key array *)
      let idx =
        Builder.binop b Ir.Smin (Builder.add b i (Ir.Imm m.c)) (Ir.Imm (n - 1))
      in
      Builder.prefetch b (Builder.gep b probe idx 8);
      for level = 0 to m.depth - 1 do
        let off = m.c * (t - 1 - level) / t in
        emit_manual_group b ~probe ~buckets ~mask ~n ~off ~level i
      done
  | None -> ());
  let pk = Builder.load ~name:"pkey" b Ir.I64 (Builder.gep b probe i 8) in
  let h = emit_hash b ~mask pk in
  let weight = Builder.add ~name:"w" b h (Ir.Imm 1) in
  let baddr = Builder.gep ~name:"bkt" b buckets h bucket_bytes in
  let check_slot acc addr slot =
    let k = Builder.load ~name:"skey" b Ir.I64 (Builder.gep b addr (Ir.Imm slot) 8) in
    let e = Builder.cmp ~name:"eq" b Ir.Eq k pk in
    Builder.add ~name:"acc" b acc (Builder.mul b e weight)
  in
  let acc1 = check_slot acc baddr 0 in
  let acc2 = check_slot acc1 baddr 1 in
  let nxt = Builder.load ~name:"chain" b Ir.I64 (Builder.gep b baddr (Ir.Imm 2) 8) in
  let acc_final =
    if nodes_per_bucket p = 0 then acc2
    else begin
      (* Walk the chain: node = phi(nxt, node.next); scan two keys each. *)
      let pre = Builder.current_block b in
      let whead = Builder.new_block b "walk.head" in
      let wbody = Builder.new_block b "walk.body" in
      let wexit = Builder.new_block b "walk.exit" in
      Builder.br b whead;
      Builder.set_block b whead;
      let node = Builder.phi ~name:"node" b [ (pre, nxt) ] in
      let wacc = Builder.phi ~name:"wacc" b [ (pre, acc2) ] in
      let wc = Builder.cmp b Ir.Ne node (Ir.Imm 0) in
      Builder.cbr b wc wbody wexit;
      Builder.set_block b wbody;
      let a1 = check_slot wacc node 0 in
      let a2 = check_slot a1 node 1 in
      let nn = Builder.load ~name:"nnext" b Ir.I64 (Builder.gep b node (Ir.Imm 2) 8) in
      let wlatch = Builder.current_block b in
      Builder.br b whead;
      Builder.add_incoming b node ~pred:wlatch nn;
      Builder.add_incoming b wacc ~pred:wlatch a2;
      Builder.set_block b wexit;
      wacc
    end
  in
  let i' = Builder.add b i (Ir.Imm 1) in
  let latch = Builder.current_block b in
  Builder.br b head;
  Builder.add_incoming b i ~pred:latch i';
  Builder.add_incoming b acc ~pred:latch acc_final;
  Builder.set_block b exit;
  Builder.ret b (Some acc);
  Builder.finish b

(* Host-side construction of the table and probe stream. *)
let setup p mem =
  let n_buckets = 1 lsl p.log_buckets in
  let npb = nodes_per_bucket p in
  let buckets_base = Memory.alloc mem (bucket_bytes * n_buckets) in
  let nodes_base =
    if npb = 0 then 0 else Memory.alloc mem (node_bytes * npb * n_buckets)
  in
  let keys = ref [] in
  for bkt = 0 to n_buckets - 1 do
    let key s = key_of ~bucket:bkt ~slot:s in
    let baddr = buckets_base + (bucket_bytes * bkt) in
    Memory.store mem Ir.I64 baddr (key 0);
    Memory.store mem Ir.I64 (baddr + 8) (key 1);
    keys := key 0 :: key 1 :: !keys;
    let node t = nodes_base + (node_bytes * ((bkt * npb) + t)) in
    Memory.store mem Ir.I64 (baddr + 16) (if npb > 0 then node 0 else 0);
    for t = 0 to npb - 1 do
      let na = node t in
      Memory.store mem Ir.I64 na (key (2 + (2 * t)));
      Memory.store mem Ir.I64 (na + 8) (key (3 + (2 * t)));
      Memory.store mem Ir.I64 (na + 16) (if t < npb - 1 then node (t + 1) else 0);
      keys := key (2 + (2 * t)) :: key (3 + (2 * t)) :: !keys
    done
  done;
  let all_keys = Array.of_list !keys in
  let rng = Rng.create ~seed:p.seed in
  Rng.shuffle rng all_keys;
  let probes = Array.init p.n_probes (fun k -> all_keys.(k mod Array.length all_keys)) in
  let probe_base = Memory.alloc_i64_array mem probes in
  (probe_base, buckets_base, probes)

(* Every probe key exists exactly once, so the reference accumulator is the
   sum of (hash+1) over the probe stream. *)
let reference p probes =
  let mask = (1 lsl p.log_buckets) - 1 in
  Array.fold_left (fun acc k -> acc + hash ~mask k + 1) 0 probes

let build ?manual (p : params) : Workload.built =
  let mem = Memory.create ~initial:(1 lsl 25) () in
  let probe_base, buckets_base, probes = setup p mem in
  let expected = reference p probes in
  {
    Workload.name = (if p.elems_per_bucket <= 2 then "HJ-2" else "HJ-8");
    func = build_func ?manual p;
    mem;
    args = [| probe_base; buckets_base |];
    expected;
    check = (fun _ ~retval -> Option.value retval ~default:min_int);
  }
