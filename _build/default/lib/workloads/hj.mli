(** Hash Join probing (§5.1): hash each probe key, index a bucket array,
    scan two inline slots plus an optional chain of nodes.

    HJ-2 fills every bucket with exactly two keys (no chain); HJ-8 fills
    eight — two inline plus three chain nodes, i.e. four dependent
    irregular accesses per probe.  Keys are crafted so occupancy is exact;
    the hash ([k lxor (k lsr 33)] masked) is enough arithmetic in the
    address chain to defeat the ICC-model pass. *)

type params = {
  log_buckets : int;
  elems_per_bucket : int;  (** 2 or 8 *)
  n_probes : int;
  seed : int;
}

val default_hj2 : params
val default_hj8 : params

val bucket_bytes : int
val node_bytes : int
val nodes_per_bucket : params -> int

val hash : mask:int -> int -> int
val key_of : bucket:int -> slot:int -> int
(** Crafted so [hash (key_of ~bucket ~slot) = bucket] and keys are
    pairwise distinct. *)

(** Staggered manual prefetching: the probe-array stride prefetch plus
    [depth] dependent irregular prefetches at eq.-1 offsets (§5.1's
    16/12/8/4 staggering; Fig 7 sweeps [depth]). *)
type manual = { c : int; depth : int }

val optimal_hj2 : manual
val optimal_hj8 : manual
(** depth 3 — the Fig 7 optimum. *)

val build_func : ?manual:manual -> params -> Spf_ir.Ir.func
val build : ?manual:manual -> params -> Workload.built
