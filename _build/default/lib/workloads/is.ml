module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory

(* Integer Sort (NAS Parallel Benchmarks) — the bucket-counting loop, the
   paper's running example (code listing 1 / Fig 3):

     for (i = 0; i < n_keys; i++) key_buff1[key_buff2[i]]++;

   key_buff2 is scanned sequentially; the increment is an indirect access
   into a bucket array sized well past the last-level cache, so every
   indirect access misses.  Manual variants reproduce the schemes of Fig 2:
   the intuitive indirect-only prefetch, and the staggered stride+indirect
   pair at a configurable look-ahead [c]. *)

type params = { n_keys : int; n_buckets : int; seed : int }

(* Buckets total 32 MiB — 4x Haswell's LLC, as NPB class B is relative to
   the paper's machines. *)
let default = { n_keys = 1 lsl 18; n_buckets = 1 lsl 23; seed = 42 }

type manual = { c : int; stride : bool }

let intuitive = { c = 64; stride = false } (* listing 1 line 4 only *)
let optimal = { c = 64; stride = true } (* lines 4 and 6 *)
let offset_too_small = { c = 8; stride = true }

(* Big enough that prefetched lines fall out of the L1/L2 and the TLB
   churns between prefetch and use. *)
let offset_too_big = { c = 512; stride = true }

(* The kernel in IR.  [manual] adds hand-written prefetches at the top of
   the loop body. *)
let build_func ?manual p =
  let b = Builder.create ~name:"is_bucket_count" ~nparams:2 in
  let kb2 = Builder.param b 0 and kb1 = Builder.param b 1 in
  let n = Ir.Imm p.n_keys in
  let _exit =
    Builder.counted_loop b ~init:(Ir.Imm 0) ~bound:n ~step:(Ir.Imm 1)
      (fun i ->
        (match manual with
        | Some m ->
            if m.stride then begin
              let idx =
                Builder.binop b Ir.Smin
                  (Builder.add b i (Ir.Imm m.c))
                  (Ir.Imm (p.n_keys - 1))
              in
              Builder.prefetch b (Builder.gep b kb2 idx 4)
            end;
            let idx =
              Builder.binop b Ir.Smin
                (Builder.add b i (Ir.Imm (m.c / 2)))
                (Ir.Imm (p.n_keys - 1))
            in
            let k = Builder.load b Ir.I32 (Builder.gep b kb2 idx 4) in
            Builder.prefetch b (Builder.gep b kb1 k 4)
        | None -> ());
        let k = Builder.load ~name:"key" b Ir.I32 (Builder.gep b kb2 i 4) in
        let slot = Builder.gep ~name:"slot" b kb1 k 4 in
        let v = Builder.load ~name:"count" b Ir.I32 slot in
        Builder.store b Ir.I32 slot (Builder.add b v (Ir.Imm 1)))
  in
  Builder.ret b None;
  Builder.finish b

let keys p =
  let rng = Rng.create ~seed:p.seed in
  Array.init p.n_keys (fun _ -> Rng.int rng p.n_buckets)

(* Reference result: the bucket counts, computed in OCaml. *)
let reference_counts p ks =
  let counts = Array.make p.n_buckets 0 in
  Array.iter (fun k -> counts.(k) <- counts.(k) + 1) ks;
  counts

let checksum_of p ~get_count ks =
  let acc = ref 0 in
  for i = 0 to p.n_keys - 1 do
    acc := Workload.mix !acc (get_count ks.(i))
  done;
  !acc

let build ?manual (p : params) : Workload.built =
  let ks = keys p in
  let mem = Memory.create ~initial:(1 lsl 26) () in
  let kb2 = Memory.alloc_i32_array mem ks in
  let kb1 = Memory.alloc mem (4 * p.n_buckets) in
  let counts = reference_counts p ks in
  let expected = checksum_of p ~get_count:(fun k -> counts.(k)) ks in
  let check m ~retval:_ =
    checksum_of p ~get_count:(fun k -> Memory.load m Ir.I32 (kb1 + (4 * k))) ks
  in
  {
    Workload.name = "IS";
    func = build_func ?manual p;
    mem;
    args = [| kb2; kb1 |];
    expected;
    check;
  }
