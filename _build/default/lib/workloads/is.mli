(** Integer Sort (NAS Parallel Benchmarks) — the bucket-counting loop, the
    paper's running example (code listing 1 / Fig 3):
    [for i in 0..n: key_buff1[key_buff2[i]]++]. *)

type params = { n_keys : int; n_buckets : int; seed : int }

val default : params
(** 2^18 keys into a 32 MiB bucket array (4x Haswell's LLC, mirroring how
    NPB class B relates to the paper's machines). *)

(** Hand-inserted prefetch schemes (Fig 2). *)
type manual = { c : int; stride : bool }

val intuitive : manual
(** Only the indirect prefetch (listing 1, line 4). *)

val optimal : manual
(** Indirect + staggered stride prefetch at c = 64 (lines 4 and 6). *)

val offset_too_small : manual
val offset_too_big : manual

val build_func : ?manual:manual -> params -> Spf_ir.Ir.func
(** The kernel alone (used by tests and the pass microbenchmarks). *)

val build : ?manual:manual -> params -> Workload.built

val keys : params -> int array
(** The generated key stream (deterministic in [seed]). *)
