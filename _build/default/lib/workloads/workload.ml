module Ir = Spf_ir.Ir
module Memory = Spf_sim.Memory

(* Common shape of a benchmark instance: a freshly-built IR function, the
   memory image holding its arrays, the parameter values, and a validation
   checksum (the reference implementation's value).  Instances are built
   fresh for every run because the pass mutates the function and the run
   mutates the memory. *)

type built = {
  name : string;
  func : Ir.func;
  mem : Memory.t;
  args : int array;
  expected : int; (* reference implementation's checksum *)
  check : Memory.t -> retval:int option -> int;
      (* recompute the checksum after a run (from memory, the returned
         value, or both) *)
}

let validate (b : built) ~retval =
  let got = b.check b.mem ~retval in
  if got <> b.expected then
    failwith
      (Printf.sprintf "%s: checksum mismatch: expected %d, got %d" b.name
         b.expected got)

(* Mix step shared by checksum helpers. *)
let mix acc v = (acc * 1_000_003) + v land ((1 lsl 62) - 1)
