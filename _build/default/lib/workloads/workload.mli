(** Common shape of a benchmark instance.

    Instances are built fresh for every run: the pass mutates the function
    and execution mutates the memory image. *)

type built = {
  name : string;
  func : Spf_ir.Ir.func;
  mem : Spf_sim.Memory.t;
  args : int array;  (** parameter values (array base addresses, sizes...) *)
  expected : int;  (** the reference implementation's checksum *)
  check : Spf_sim.Memory.t -> retval:int option -> int;
      (** recompute the checksum from the post-run memory image and/or the
          function's return value *)
}

val validate : built -> retval:int option -> unit
(** @raise Failure when the recomputed checksum disagrees with the
    reference — every harness run goes through this. *)

val mix : int -> int -> int
(** Order-sensitive checksum mixing step shared by the workloads. *)
