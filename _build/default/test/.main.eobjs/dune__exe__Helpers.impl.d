test/helpers.ml: Alcotest Format List Spf_ir Spf_sim String
