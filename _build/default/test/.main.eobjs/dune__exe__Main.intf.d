test/main.mli:
