test/test_analysis.ml: Alcotest Array Helpers List Spf_ir Spf_workloads
