test/test_cache.ml: Alcotest List QCheck QCheck_alcotest Spf_sim
