test/test_hoist.ml: Alcotest Array Helpers List Spf_core Spf_ir Spf_sim Spf_workloads Test_pass
