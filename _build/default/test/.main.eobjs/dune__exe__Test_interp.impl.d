test/test_interp.ml: Alcotest Array Helpers Spf_ir Spf_sim Spf_workloads
