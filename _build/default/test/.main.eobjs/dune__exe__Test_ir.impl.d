test/test_ir.ml: Alcotest Array Helpers List Option Spf_ir String
