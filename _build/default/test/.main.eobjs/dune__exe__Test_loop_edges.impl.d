test/test_loop_edges.ml: Alcotest Array Helpers List Spf_core Spf_ir Spf_sim
