test/test_memsys.ml: Alcotest Helpers List Spf_sim Spf_workloads
