test/test_multicore.ml: Alcotest Array Spf_sim Spf_workloads Test_pass
