test/test_parser.ml: Alcotest Array Helpers List Spf_core Spf_ir Spf_sim Spf_workloads
