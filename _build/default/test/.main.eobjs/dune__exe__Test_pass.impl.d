test/test_pass.ml: Alcotest Helpers List Spf_core Spf_ir Spf_sim Spf_workloads
