test/test_profile.ml: Alcotest List Spf_core Spf_ir Spf_sim Spf_workloads
