test/test_props.ml: Array Hashtbl List QCheck QCheck_alcotest Spf_core Spf_ir Spf_sim Spf_workloads
