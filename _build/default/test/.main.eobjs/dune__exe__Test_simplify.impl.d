test/test_simplify.ml: Alcotest Array Helpers Spf_core Spf_ir Spf_sim Spf_workloads Test_pass
