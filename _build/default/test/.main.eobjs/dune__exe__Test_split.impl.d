test/test_split.ml: Alcotest Array Helpers List Printf Spf_core Spf_ir Spf_sim Spf_workloads Test_pass
