test/test_timing.ml: Alcotest Helpers List Spf_ir Spf_sim
