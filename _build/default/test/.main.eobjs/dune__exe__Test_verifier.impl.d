test/test_verifier.ml: Alcotest Array Helpers List Spf_core Spf_ir Spf_workloads
