test/test_workloads.ml: Alcotest Array Hashtbl Helpers List Spf_ir Spf_sim Spf_workloads Test_pass
