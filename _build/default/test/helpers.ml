module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory
module Interp = Spf_sim.Interp
module Machine = Spf_sim.Machine

(* Shared fixtures: small hand-built IR functions and execution helpers. *)

(* A tiny machine so unit tests exercise cache edges quickly. *)
let tiny_machine =
  {
    Machine.haswell with
    Machine.name = "Tiny";
    l1 = { Machine.size = 1024; assoc = 2 };
    l2 = { Machine.size = 4096; assoc = 4 };
    l3 = None;
    tlb_entries = 8;
    tlb_assoc = 2;
    pf_mshrs = 4;
  }

(* Run a function to completion and return (retval, stats). *)
let run ?(machine = Machine.haswell) ?(mem = Memory.create ()) ?(args = [||])
    func =
  let interp = Interp.create ~machine ~mem ~args func in
  Interp.run ~fuel:10_000_000 interp;
  (Interp.retval interp, Interp.stats interp)

let run_ret ?machine ?mem ?args func =
  match run ?machine ?mem ?args func with
  | Some v, _ -> v
  | None, _ -> Alcotest.fail "function returned no value"

(* The paper's running example (Fig 3a / code listing 1):
   for (i = 0; i < n; i++) b[a[i]]++  over i32 arrays passed as params. *)
let is_like_kernel ~n =
  let b = Builder.create ~name:"is_like" ~nparams:2 in
  let a = Builder.param b 0 and tgt = Builder.param b 1 in
  let _ =
    Builder.counted_loop b ~init:(Ir.Imm 0) ~bound:(Ir.Imm n) ~step:(Ir.Imm 1)
      (fun i ->
        let k = Builder.load ~name:"key" b Ir.I32 (Builder.gep b a i 4) in
        let slot = Builder.gep ~name:"slot" b tgt k 4 in
        let v = Builder.load ~name:"count" b Ir.I32 slot in
        Builder.store b Ir.I32 slot (Builder.add b v (Ir.Imm 1)))
  in
  Builder.ret b None;
  Builder.finish b

(* sum = Σ a[i] for i < n; returns sum. *)
let sum_kernel ~n =
  let b = Builder.create ~name:"sum" ~nparams:1 in
  let a = Builder.param b 0 in
  let head = Builder.new_block b "head" in
  let body = Builder.new_block b "body" in
  let exit = Builder.new_block b "exit" in
  let entry = Builder.current_block b in
  Builder.br b head;
  Builder.set_block b head;
  let i = Builder.phi ~name:"i" b [ (entry, Ir.Imm 0) ] in
  let acc = Builder.phi ~name:"acc" b [ (entry, Ir.Imm 0) ] in
  let c = Builder.cmp b Ir.Slt i (Ir.Imm n) in
  Builder.cbr b c body exit;
  Builder.set_block b body;
  let v = Builder.load b Ir.I32 (Builder.gep b a i 4) in
  let acc' = Builder.add b acc v in
  let i' = Builder.add b i (Ir.Imm 1) in
  Builder.br b head;
  Builder.add_incoming b i ~pred:body i';
  Builder.add_incoming b acc ~pred:body acc';
  Builder.set_block b exit;
  Builder.ret b (Some acc);
  Builder.finish b

let count_kind func pred =
  let n = ref 0 in
  Ir.iter_instrs func (fun i -> if pred i.Ir.kind then incr n);
  !n

let count_prefetches func =
  count_kind func (function Ir.Prefetch _ -> true | _ -> false)

let count_loads func =
  count_kind func (function Ir.Load _ -> true | _ -> false)

let verify_ok func =
  match Spf_ir.Verifier.check func with
  | [] -> ()
  | vs ->
      Alcotest.failf "verifier: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Spf_ir.Verifier.pp_violation) vs))
