module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Cfg = Spf_ir.Cfg
module Dom = Spf_ir.Dom
module Loops = Spf_ir.Loops
module Indvar = Spf_ir.Indvar

(* CFG / dominators / loops / induction variables on hand-built shapes. *)

(* Diamond: entry -> (then | else) -> join -> exit. *)
let diamond () =
  let b = Builder.create ~name:"diamond" ~nparams:1 in
  let bthen = Builder.new_block b "then" in
  let belse = Builder.new_block b "else" in
  let join = Builder.new_block b "join" in
  let c = Builder.cmp b Ir.Sgt (Builder.param b 0) (Ir.Imm 0) in
  Builder.cbr b c bthen belse;
  Builder.set_block b bthen;
  Builder.br b join;
  Builder.set_block b belse;
  Builder.br b join;
  Builder.set_block b join;
  let v = Builder.phi b [ (bthen, Ir.Imm 1); (belse, Ir.Imm 2) ] in
  Builder.ret b (Some v);
  Builder.finish b

let test_cfg_diamond () =
  let f = diamond () in
  let cfg = Cfg.build f in
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ] (List.sort compare (Cfg.succs cfg 0));
  Alcotest.(check (list int)) "join preds" [ 1; 2 ] (List.sort compare (Cfg.preds cfg 3));
  Alcotest.(check int) "entry first in rpo" 0 (Cfg.rpo cfg).(0);
  Alcotest.(check bool) "all reachable" true
    (List.for_all (Cfg.reachable cfg) [ 0; 1; 2; 3 ])

let test_dom_diamond () =
  let f = diamond () in
  let dom = Dom.build (Cfg.build f) in
  Alcotest.(check bool) "entry dominates join" true (Dom.dominates dom 0 3);
  Alcotest.(check bool) "then does not dominate join" false (Dom.dominates dom 1 3);
  Alcotest.(check (option int)) "idom of join is entry" (Some 0) (Dom.idom dom 3);
  Alcotest.(check (option int)) "entry has no idom" None (Dom.idom dom 0)

let test_unreachable_block () =
  let f = diamond () in
  let dead = Ir.add_block f ~name:"dead" (Ir.Br 3) in
  let cfg = Cfg.build f in
  Alcotest.(check bool) "dead block unreachable" false (Cfg.reachable cfg dead.Ir.bid);
  Alcotest.(check int) "rpo_index is -1" (-1) (Cfg.rpo_index cfg dead.Ir.bid)

let analyze f =
  let cfg = Cfg.build f in
  let dom = Dom.build cfg in
  let loops = Loops.analyze f cfg dom in
  let ivs = Indvar.analyze f cfg loops in
  (cfg, dom, loops, ivs)

let test_single_loop () =
  let f = Helpers.sum_kernel ~n:10 in
  let _, _, loops, ivs = analyze f in
  Alcotest.(check int) "one loop" 1 (Array.length (Loops.loops loops));
  let l = Loops.loop loops 0 in
  Alcotest.(check int) "header is block 1" 1 l.Loops.header;
  Alcotest.(check (list int)) "latch is the body" [ 2 ] l.Loops.latches;
  Alcotest.(check (option int)) "preheader is entry" (Some 0) l.Loops.preheader;
  Alcotest.(check int) "depth 1" 1 l.Loops.depth;
  (* Induction variables: i is canonical; acc is not (step is a load). *)
  match Indvar.ivars ivs with
  | [ iv ] ->
      Alcotest.(check int) "step 1" 1 iv.Indvar.step;
      Alcotest.(check bool) "bound recognised" true (iv.Indvar.bound <> None);
      Alcotest.(check bool) "bound is n" true (iv.Indvar.bound = Some (Ir.Imm 10));
      Alcotest.(check bool) "cmp is slt" true (iv.Indvar.bound_cmp = Some Ir.Slt)
  | ivs -> Alcotest.failf "expected 1 induction variable, got %d" (List.length ivs)

(* Two-level nest via CG's builder. *)
let test_nested_loops () =
  let f = Spf_workloads.Cg.build_func { Spf_workloads.Cg.default with n_rows = 4; row_nnz = 4; n_cols = 16 } in
  let _, _, loops, ivs = analyze f in
  let ls = Loops.loops loops in
  Alcotest.(check int) "three loops (gather, rows, red)" 3 (Array.length ls);
  let depth2 = Array.to_list ls |> List.filter (fun l -> l.Loops.depth = 2) in
  Alcotest.(check int) "one inner loop" 1 (List.length depth2);
  let inner = List.hd depth2 in
  Alcotest.(check bool) "inner parent set" true (inner.Loops.parent <> None);
  (* All three loops have canonical induction variables. *)
  Alcotest.(check int) "three induction variables" 3 (List.length (Indvar.ivars ivs))

let test_loop_invariance () =
  let f = Helpers.sum_kernel ~n:10 in
  let _, _, loops, _ = analyze f in
  let l = Loops.loop loops 0 in
  Alcotest.(check bool) "imm is invariant" true
    (Indvar.is_loop_invariant f l (Ir.Imm 3));
  Alcotest.(check bool) "param is invariant" true
    (Indvar.is_loop_invariant f l (Ir.Var f.Ir.param_ids.(0)));
  (* The phi itself is not invariant. *)
  let header = Ir.block f l.Loops.header in
  Alcotest.(check bool) "header phi is variant" false
    (Indvar.is_loop_invariant f l (Ir.Var header.Ir.instrs.(0)))

let test_g500_queue_bound_not_invariant () =
  (* The BFS queue's head phi must be a recognised IV but with NO bound,
     because tail grows inside the loop (this gates the paper's G500
     behaviour). *)
  let p = { Spf_workloads.G500.small with scale = 6; edge_factor = 4 } in
  let g = Spf_workloads.G500.kronecker p in
  let f = Spf_workloads.G500.build_func g in
  let _, _, _, ivs = analyze f in
  let head_iv =
    List.find_opt
      (fun iv -> (Ir.instr f iv.Indvar.iv_id).Ir.name = "head")
      (Indvar.ivars ivs)
  in
  match head_iv with
  | None -> Alcotest.fail "head not recognised as induction variable"
  | Some iv ->
      Alcotest.(check bool) "head has no loop-invariant bound" true
        (iv.Indvar.bound = None)

let test_usedef () =
  let f = Helpers.sum_kernel ~n:10 in
  let ud = Spf_ir.Usedef.build f in
  (* The param (array base) is used by exactly one gep. *)
  let uses = Spf_ir.Usedef.uses ud f.Ir.param_ids.(0) in
  Alcotest.(check int) "param used once" 1 (List.length uses);
  (* The loop condition value is used by the terminator only. *)
  let header = Ir.block f 1 in
  let cond_id = header.Ir.instrs.(Array.length header.Ir.instrs - 1) in
  Alcotest.(check int) "cmp has no instr uses" 0
    (List.length (Spf_ir.Usedef.uses ud cond_id));
  Alcotest.(check (list int)) "cmp used by header terminator" [ 1 ]
    (Spf_ir.Usedef.term_uses ud cond_id)

let suite =
  [
    Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
    Alcotest.test_case "dom diamond" `Quick test_dom_diamond;
    Alcotest.test_case "unreachable block" `Quick test_unreachable_block;
    Alcotest.test_case "single loop" `Quick test_single_loop;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "loop invariance" `Quick test_loop_invariance;
    Alcotest.test_case "G500 queue bound not invariant" `Quick
      test_g500_queue_bound_not_invariant;
    Alcotest.test_case "use-def chains" `Quick test_usedef;
  ]
