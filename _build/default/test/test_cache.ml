module Cache = Spf_sim.Cache

(* Unit and property tests for the set-associative LRU cache, including a
   brute-force reference model. *)

let test_hit_after_insert () =
  let c = Cache.create ~size:1024 ~assoc:2 ~unit_shift:6 in
  Alcotest.(check bool) "cold miss" false (Cache.access c 5);
  ignore (Cache.insert c 5);
  Alcotest.(check bool) "hit after insert" true (Cache.access c 5)

let test_lru_eviction () =
  (* 2-way, pick keys that map to the same set. *)
  let c = Cache.create ~size:128 ~assoc:2 ~unit_shift:6 in
  (* sets = 128/64/2 = 1, so every key collides. *)
  ignore (Cache.insert c 1);
  ignore (Cache.insert c 2);
  ignore (Cache.access c 1); (* refresh 1; 2 becomes LRU *)
  let evicted = Cache.insert c 3 in
  Alcotest.(check (option int)) "LRU way evicted" (Some 2) evicted;
  Alcotest.(check bool) "1 survives" true (Cache.mem c 1);
  Alcotest.(check bool) "3 present" true (Cache.mem c 3);
  Alcotest.(check bool) "2 gone" false (Cache.mem c 2)

let test_insert_refreshes () =
  let c = Cache.create ~size:128 ~assoc:2 ~unit_shift:6 in
  ignore (Cache.insert c 1);
  ignore (Cache.insert c 2);
  ignore (Cache.insert c 1); (* refresh, not duplicate *)
  let evicted = Cache.insert c 3 in
  Alcotest.(check (option int)) "2 was LRU" (Some 2) evicted

let test_mem_does_not_touch () =
  let c = Cache.create ~size:128 ~assoc:2 ~unit_shift:6 in
  ignore (Cache.insert c 1);
  ignore (Cache.insert c 2);
  ignore (Cache.mem c 1); (* must NOT refresh *)
  let evicted = Cache.insert c 3 in
  Alcotest.(check (option int)) "probe did not refresh 1" (Some 1) evicted

let test_clear () =
  let c = Cache.create ~size:1024 ~assoc:4 ~unit_shift:6 in
  ignore (Cache.insert c 7);
  Cache.clear c;
  Alcotest.(check bool) "cleared" false (Cache.mem c 7)

let test_capacity () =
  let c = Cache.create ~size:4096 ~assoc:4 ~unit_shift:6 in
  Alcotest.(check int) "capacity" 64 (Cache.capacity c)

(* Reference model: per-set list, most-recent first. *)
module Reference = struct
  type t = { sets : int; assoc : int; mutable data : (int * int list) list }

  let create ~sets ~assoc = { sets; assoc; data = [] }

  let set_of t key = key mod t.sets

  let find_set t s = try List.assoc s t.data with Not_found -> []

  let update_set t s l = t.data <- (s, l) :: List.remove_assoc s t.data

  let access t key =
    let s = set_of t key in
    let l = find_set t s in
    if List.mem key l then begin
      update_set t s (key :: List.filter (( <> ) key) l);
      true
    end
    else false

  let insert t key =
    let s = set_of t key in
    let l = find_set t s in
    if List.mem key l then update_set t s (key :: List.filter (( <> ) key) l)
    else begin
      let l = key :: l in
      let l = if List.length l > t.assoc then List.filteri (fun i _ -> i < t.assoc) l else l in
      update_set t s l
    end
end

let prop_matches_reference =
  QCheck.Test.make ~name:"cache matches reference LRU model" ~count:200
    QCheck.(pair (int_bound 3) (list (pair bool (int_bound 40))))
    (fun (assoc_sel, ops) ->
      let assoc = 1 lsl assoc_sel in
      (* 4 sets x assoc ways *)
      let c = Cache.create_entries ~entries:(4 * assoc) ~assoc in
      let r = Reference.create ~sets:4 ~assoc in
      List.for_all
        (fun (is_insert, key) ->
          if is_insert then begin
            ignore (Cache.insert c key);
            Reference.insert r key;
            true
          end
          else Cache.access c key = Reference.access r key)
        ops)

let suite =
  [
    Alcotest.test_case "hit after insert" `Quick test_hit_after_insert;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "insert refreshes" `Quick test_insert_refreshes;
    Alcotest.test_case "mem does not touch LRU" `Quick test_mem_does_not_touch;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "capacity" `Quick test_capacity;
    QCheck_alcotest.to_alcotest prop_matches_reference;
  ]
