module Ir = Spf_ir.Ir
module Pass = Spf_core.Pass
module Icc = Spf_core.Icc_pass
module Workload = Spf_workloads.Workload

(* The ICC-model baseline must accept exactly the simplest patterns
   (Fig 4d): IS and CG yes; RA, HJ and G500 no. *)

let prefetch_count build =
  let b : Workload.built = build () in
  let report = Icc.run b.Workload.func in
  Helpers.verify_ok b.Workload.func;
  report.Pass.n_prefetches

let test_accepts_is () =
  Alcotest.(check bool) "IS prefetched" true
    (prefetch_count (fun () -> Spf_workloads.Is.build Test_pass.small_is) > 0)

let test_accepts_cg () =
  Alcotest.(check bool) "CG prefetched" true
    (prefetch_count (fun () -> Spf_workloads.Cg.build Test_pass.small_cg) > 0)

let test_rejects_ra () =
  Alcotest.(check int) "RA: hash computation defeats it" 0
    (prefetch_count (fun () -> Spf_workloads.Ra.build Test_pass.small_ra))

let test_rejects_hj () =
  Alcotest.(check int) "HJ-2: hash computation defeats it" 0
    (prefetch_count (fun () -> Spf_workloads.Hj.build Test_pass.small_hj2));
  Alcotest.(check int) "HJ-8 likewise" 0
    (prefetch_count (fun () -> Spf_workloads.Hj.build Test_pass.small_hj8))

let test_rejects_g500 () =
  Alcotest.(check int) "G500: runtime bounds defeat it" 0
    (prefetch_count (fun () -> Spf_workloads.G500.build Test_pass.small_g500))

let test_icc_preserves_is_semantics () =
  let b = Spf_workloads.Is.build Test_pass.small_is in
  ignore (Icc.run b.Workload.func);
  let interp =
    Spf_sim.Interp.create ~machine:Spf_sim.Machine.xeon_phi ~mem:b.Workload.mem
      ~args:b.Workload.args b.Workload.func
  in
  Spf_sim.Interp.run interp;
  Workload.validate b ~retval:(Spf_sim.Interp.retval interp)

let test_subset_of_main_pass () =
  (* Whatever ICC emits, the main pass also emits (same chains, same
     offsets) — ICC is a strict restriction. *)
  let count pass build =
    let b : Workload.built = build () in
    let r : Pass.report = pass b.Workload.func in
    r.Pass.n_prefetches
  in
  List.iter
    (fun build ->
      let icc = count (fun f -> Icc.run f) build in
      let auto = count (fun f -> Pass.run f) build in
      Alcotest.(check bool) "icc <= auto" true (icc <= auto))
    [
      (fun () -> Spf_workloads.Is.build Test_pass.small_is);
      (fun () -> Spf_workloads.Cg.build Test_pass.small_cg);
      (fun () -> Spf_workloads.Ra.build Test_pass.small_ra);
      (fun () -> Spf_workloads.Hj.build Test_pass.small_hj8);
    ]

let suite =
  [
    Alcotest.test_case "accepts IS" `Quick test_accepts_is;
    Alcotest.test_case "accepts CG" `Quick test_accepts_cg;
    Alcotest.test_case "rejects RA" `Quick test_rejects_ra;
    Alcotest.test_case "rejects HJ" `Quick test_rejects_hj;
    Alcotest.test_case "rejects G500" `Quick test_rejects_g500;
    Alcotest.test_case "preserves IS semantics" `Quick test_icc_preserves_is_semantics;
    Alcotest.test_case "strict subset of the main pass" `Quick test_subset_of_main_pass;
  ]
