module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder

(* Structural tests for the IR container and the builder. *)

let test_srcs () =
  Alcotest.(check int) "binop has two srcs" 2
    (List.length (Ir.srcs (Ir.Binop (Ir.Add, Ir.Imm 1, Ir.Imm 2))));
  Alcotest.(check int) "gep has two srcs" 2
    (List.length (Ir.srcs (Ir.Gep { base = Ir.Imm 0; index = Ir.Imm 1; scale = 4 })));
  Alcotest.(check int) "param has no srcs" 0
    (List.length (Ir.srcs (Ir.Param 0)));
  Alcotest.(check int) "phi srcs are its incoming values" 2
    (List.length (Ir.srcs (Ir.Phi [ (0, Ir.Imm 1); (1, Ir.Imm 2) ])))

let test_map_srcs () =
  let double = function Ir.Imm n -> Ir.Imm (2 * n) | o -> o in
  (match Ir.map_srcs double (Ir.Binop (Ir.Add, Ir.Imm 3, Ir.Var 1)) with
  | Ir.Binop (Ir.Add, Ir.Imm 6, Ir.Var 1) -> ()
  | _ -> Alcotest.fail "binop srcs not mapped");
  (* Phi labels must be preserved. *)
  match Ir.map_srcs double (Ir.Phi [ (7, Ir.Imm 1) ]) with
  | Ir.Phi [ (7, Ir.Imm 2) ] -> ()
  | _ -> Alcotest.fail "phi label lost"

let test_defines_value () =
  Alcotest.(check bool) "store defines no value" false
    (Ir.defines_value (Ir.Store (Ir.I32, Ir.Imm 0, Ir.Imm 0)));
  Alcotest.(check bool) "prefetch defines no value" false
    (Ir.defines_value (Ir.Prefetch (Ir.Imm 0)));
  Alcotest.(check bool) "load defines a value" true
    (Ir.defines_value (Ir.Load (Ir.I32, Ir.Imm 0)))

let test_side_effects () =
  Alcotest.(check bool) "pure call has no side effect" false
    (Ir.has_side_effect (Ir.Call { callee = "f"; args = []; pure = true }));
  Alcotest.(check bool) "impure call has side effects" true
    (Ir.has_side_effect (Ir.Call { callee = "f"; args = []; pure = false }));
  Alcotest.(check bool) "store has side effects" true
    (Ir.has_side_effect (Ir.Store (Ir.I32, Ir.Imm 0, Ir.Imm 0)))

let test_ty_sizes () =
  Alcotest.(check (list int)) "type sizes" [ 1; 2; 4; 8; 8 ]
    (List.map Ir.size_of_ty [ Ir.I8; Ir.I16; Ir.I32; Ir.I64; Ir.F64 ])

let test_builder_structure () =
  let func = Helpers.is_like_kernel ~n:4 in
  Alcotest.(check int) "four blocks (entry/head/body/exit)" 4 (Ir.n_blocks func);
  Alcotest.(check int) "two loads" 2 (Helpers.count_loads func);
  Helpers.verify_ok func

let test_insert_before () =
  let func = Helpers.is_like_kernel ~n:4 in
  (* Find the first load and splice a fresh instruction before it. *)
  let the_load = ref None in
  Ir.iter_instrs func (fun i ->
      match i.Ir.kind with
      | Ir.Load _ when !the_load = None -> the_load := Some i
      | _ -> ());
  let load = Option.get !the_load in
  let extra =
    Ir.fresh_instr func ~name:"extra" ~block:load.Ir.block
      (Ir.Binop (Ir.Add, Ir.Imm 1, Ir.Imm 2))
  in
  Ir.insert_before func ~anchor:load.Ir.id [ extra.Ir.id ];
  let blk = Ir.block func load.Ir.block in
  let pos x =
    let p = ref (-1) in
    Array.iteri (fun k id -> if id = x then p := k) blk.Ir.instrs;
    !p
  in
  Alcotest.(check bool) "extra precedes load" true
    (pos extra.Ir.id >= 0 && pos extra.Ir.id < pos load.Ir.id);
  Helpers.verify_ok func

let test_insert_at_head_after_phis () =
  let func = Helpers.sum_kernel ~n:4 in
  (* The loop header (block 1) starts with two phis. *)
  let header = Ir.block func 1 in
  let extra =
    Ir.fresh_instr func ~name:"extra" ~block:1 (Ir.Binop (Ir.Add, Ir.Imm 1, Ir.Imm 2))
  in
  Ir.insert_at_head func ~bid:1 [ extra.Ir.id ];
  let is_phi id =
    match (Ir.instr func id).Ir.kind with Ir.Phi _ -> true | _ -> false
  in
  Alcotest.(check bool) "phis still lead the block" true
    (is_phi header.Ir.instrs.(0) && is_phi header.Ir.instrs.(1));
  Alcotest.(check int) "inserted right after phi group" extra.Ir.id
    header.Ir.instrs.(2);
  Helpers.verify_ok func

let test_insert_at_end () =
  let func = Helpers.sum_kernel ~n:4 in
  let extra =
    Ir.fresh_instr func ~name:"extra" ~block:2 (Ir.Binop (Ir.Add, Ir.Imm 1, Ir.Imm 2))
  in
  Ir.insert_at_end func ~bid:2 [ extra.Ir.id ];
  let body = Ir.block func 2 in
  Alcotest.(check int) "appended last" extra.Ir.id
    body.Ir.instrs.(Array.length body.Ir.instrs - 1);
  Helpers.verify_ok func

let test_successors () =
  Alcotest.(check (list int)) "br" [ 3 ] (Ir.successors (Ir.Br 3));
  Alcotest.(check (list int)) "cbr" [ 1; 2 ]
    (Ir.successors (Ir.Cbr (Ir.Imm 1, 1, 2)));
  Alcotest.(check (list int)) "cbr same target deduplicated" [ 1 ]
    (Ir.successors (Ir.Cbr (Ir.Imm 1, 1, 1)));
  Alcotest.(check (list int)) "ret" [] (Ir.successors (Ir.Ret None))

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_printer_smoke () =
  let func = Helpers.is_like_kernel ~n:4 in
  let s = Spf_ir.Printer.func_to_string func in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("printout contains " ^ needle) true
        (contains ~needle s))
    [ "func is_like"; "phi"; "load i32"; "gep"; "store" ]

let suite =
  [
    Alcotest.test_case "srcs" `Quick test_srcs;
    Alcotest.test_case "map_srcs" `Quick test_map_srcs;
    Alcotest.test_case "defines_value" `Quick test_defines_value;
    Alcotest.test_case "side effects" `Quick test_side_effects;
    Alcotest.test_case "type sizes" `Quick test_ty_sizes;
    Alcotest.test_case "builder structure" `Quick test_builder_structure;
    Alcotest.test_case "insert_before" `Quick test_insert_before;
    Alcotest.test_case "insert_at_head after phis" `Quick test_insert_at_head_after_phis;
    Alcotest.test_case "insert_at_end" `Quick test_insert_at_end;
    Alcotest.test_case "successors" `Quick test_successors;
    Alcotest.test_case "printer smoke" `Quick test_printer_smoke;
  ]
