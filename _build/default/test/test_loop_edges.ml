module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Cfg = Spf_ir.Cfg
module Dom = Spf_ir.Dom
module Loops = Spf_ir.Loops
module Pass = Spf_core.Pass

(* Edge cases for the CFG analyses: loops with several latches (a
   [continue]), irreducible control flow, and self-loops must be analysed
   without crashing and handled conservatively by the pass. *)

(* Loop with two latches: body branches; both arms jump back to the
   header. *)
let two_latch_loop () =
  let b = Builder.create ~name:"twolatch" ~nparams:2 in
  let a = Builder.param b 0 and tgt = Builder.param b 1 in
  let head = Builder.new_block b "head" in
  let arm1 = Builder.new_block b "arm1" in
  let arm2 = Builder.new_block b "arm2" in
  let exit = Builder.new_block b "exit" in
  let entry = Builder.current_block b in
  Builder.br b head;
  Builder.set_block b head;
  let i = Builder.phi ~name:"i" b [ (entry, Ir.Imm 0) ] in
  let c = Builder.cmp b Ir.Slt i (Ir.Imm 256) in
  let body = Builder.new_block b "body" in
  Builder.cbr b c body exit;
  Builder.set_block b body;
  let k = Builder.load b Ir.I32 (Builder.gep b a i 4) in
  let v = Builder.load b Ir.I32 (Builder.gep b tgt k 4) in
  let which = Builder.cmp b Ir.Slt v (Ir.Imm 100) in
  Builder.cbr b which arm1 arm2;
  Builder.set_block b arm1;
  let i1 = Builder.add b i (Ir.Imm 1) in
  Builder.br b head;
  Builder.set_block b arm2;
  let i2 = Builder.add b i (Ir.Imm 2) in
  Builder.br b head;
  Builder.add_incoming b i ~pred:arm1 i1;
  Builder.add_incoming b i ~pred:arm2 i2;
  Builder.set_block b exit;
  Builder.ret b None;
  Builder.finish b

let test_two_latches_detected () =
  let f = two_latch_loop () in
  Helpers.verify_ok f;
  let cfg = Cfg.build f in
  let loops = Loops.analyze f cfg (Dom.build cfg) in
  match Loops.loops loops with
  | [| l |] -> Alcotest.(check int) "two latches" 2 (List.length l.Loops.latches)
  | ls -> Alcotest.failf "expected one loop, got %d" (Array.length ls)

let test_pass_rejects_multi_latch () =
  (* The phi is not a canonical induction variable (two in-loop incoming
     edges), so the pass must refuse rather than emit unsafe look-ahead. *)
  let f = two_latch_loop () in
  let report = Pass.run f in
  Alcotest.(check int) "no prefetches" 0 report.Pass.n_prefetches;
  Helpers.verify_ok f

(* Irreducible CFG: two blocks jumping into each other, entered at both. *)
let irreducible () =
  let b = Builder.create ~name:"irr" ~nparams:1 in
  let x = Builder.new_block b "x" in
  let y = Builder.new_block b "y" in
  let exit = Builder.new_block b "exit" in
  let c = Builder.cmp b Ir.Sgt (Builder.param b 0) (Ir.Imm 0) in
  Builder.cbr b c x y;
  Builder.set_block b x;
  let cx = Builder.cmp b Ir.Sgt (Builder.param b 0) (Ir.Imm 10) in
  Builder.cbr b cx y exit;
  Builder.set_block b y;
  let cy = Builder.cmp b Ir.Sgt (Builder.param b 0) (Ir.Imm 20) in
  Builder.cbr b cy x exit;
  Builder.set_block b exit;
  Builder.ret b None;
  Builder.finish b

let test_irreducible_analysed () =
  let f = irreducible () in
  Helpers.verify_ok f;
  let cfg = Cfg.build f in
  let dom = Dom.build cfg in
  let loops = Loops.analyze f cfg dom in
  (* Neither x->y nor y->x is a back edge (neither dominates the other),
     so no natural loop is reported. *)
  Alcotest.(check int) "no natural loops" 0 (Array.length (Loops.loops loops));
  (* And the pass runs without crashing. *)
  let report = Pass.run f in
  Alcotest.(check int) "nothing prefetched" 0 report.Pass.n_prefetches

(* A self-loop: the header is its own latch. *)
let test_self_loop () =
  let b = Builder.create ~name:"self" ~nparams:1 in
  let a = Builder.param b 0 in
  let head = Builder.new_block b "head" in
  let exit = Builder.new_block b "exit" in
  let entry = Builder.current_block b in
  Builder.br b head;
  Builder.set_block b head;
  let i = Builder.phi ~name:"i" b [ (entry, Ir.Imm 0) ] in
  let v = Builder.load b Ir.I32 (Builder.gep b a i 4) in
  ignore v;
  let i' = Builder.add b i (Ir.Imm 1) in
  Builder.add_incoming b i ~pred:head i';
  let c = Builder.cmp b Ir.Slt i' (Ir.Imm 64) in
  Builder.cbr b c head exit;
  Builder.set_block b exit;
  Builder.ret b (Some i);
  Builder.finish b

let test_self_loop_analysed () =
  let f = test_self_loop () in
  Helpers.verify_ok f;
  let cfg = Cfg.build f in
  let loops = Loops.analyze f cfg (Dom.build cfg) in
  match Loops.loops loops with
  | [| l |] ->
      Alcotest.(check int) "header is its own latch" l.Loops.header
        (List.hd l.Loops.latches);
      (* Executes correctly too. *)
      let mem = Spf_sim.Memory.create () in
      let base = Spf_sim.Memory.alloc_i32_array mem (Array.make 64 0) in
      Alcotest.(check int) "runs to completion" 63
        (Helpers.run_ret ~mem ~args:[| base |] f)
  | ls -> Alcotest.failf "expected one loop, got %d" (Array.length ls)

let suite =
  [
    Alcotest.test_case "two latches detected" `Quick test_two_latches_detected;
    Alcotest.test_case "pass rejects multi-latch loop" `Quick
      test_pass_rejects_multi_latch;
    Alcotest.test_case "irreducible CFG analysed" `Quick test_irreducible_analysed;
    Alcotest.test_case "self-loop analysed and executes" `Quick
      test_self_loop_analysed;
  ]
