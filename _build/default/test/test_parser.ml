module Ir = Spf_ir.Ir
module Parser = Spf_ir.Parser
module Printer = Spf_ir.Printer

(* Text round-trips: print -> parse -> print must be a fixed point, and the
   parsed function must verify and execute identically. *)

let roundtrip func =
  let text = Printer.func_to_string func in
  let parsed = Parser.parse text in
  let text' = Printer.func_to_string parsed in
  Alcotest.(check string) "print/parse/print fixed point" text text';
  parsed

let test_roundtrip_fixtures () =
  List.iter
    (fun f -> Helpers.verify_ok (roundtrip f))
    [
      Helpers.is_like_kernel ~n:16;
      Helpers.sum_kernel ~n:16;
      Spf_workloads.Is.build_func Spf_workloads.Is.default;
      Spf_workloads.Cg.build_func Spf_workloads.Cg.default;
      Spf_workloads.Ra.build_func Spf_workloads.Ra.default;
      Spf_workloads.Hj.build_func Spf_workloads.Hj.default_hj8;
    ]

let test_roundtrip_after_pass () =
  (* The pass's output (clamps, prefetches, clones) must round-trip too. *)
  let f = Helpers.is_like_kernel ~n:256 in
  ignore (Spf_core.Pass.run f);
  Helpers.verify_ok (roundtrip f)

let test_parsed_function_executes () =
  let f = Helpers.sum_kernel ~n:50 in
  let parsed = roundtrip f in
  let mem = Spf_sim.Memory.create () in
  let base =
    Spf_sim.Memory.alloc_i32_array mem (Array.init 50 (fun i -> i * 3))
  in
  let direct = Helpers.run_ret ~mem ~args:[| base |] f in
  let mem2 = Spf_sim.Memory.create () in
  let base2 =
    Spf_sim.Memory.alloc_i32_array mem2 (Array.init 50 (fun i -> i * 3))
  in
  let via_text = Helpers.run_ret ~mem:mem2 ~args:[| base2 |] parsed in
  Alcotest.(check int) "parsed function computes the same value" direct via_text

let test_handwritten_source () =
  let src =
    {|func double_sum (1 params, entry bb0) {
bb0 (entry):
  %a.0 = param 0
  br bb1
bb1 (head):
  %i.1 = phi [bb0: #0], [bb2: %next.6]
  %acc.2 = phi [bb0: #0], [bb2: %acc2.5]
  %c.3 = cmp slt %i.1, #10
  cbr %c.3, bb2, bb3
bb2 (body):
  %v.4 = load i32, %a.0
  %acc2.5 = add %acc.2, %v.4
  %next.6 = add %i.1, #1
  br bb1
bb3 (exit):
  ret %acc.2
}|}
  in
  let f = Parser.parse src in
  Helpers.verify_ok f;
  let mem = Spf_sim.Memory.create () in
  let base = Spf_sim.Memory.alloc_i32_array mem [| 7 |] in
  Alcotest.(check int) "hand-written kernel sums 10 x 7" 70
    (Helpers.run_ret ~mem ~args:[| base |] f)

let test_float_immediates () =
  let b = Spf_ir.Builder.create ~name:"f" ~nparams:1 in
  let p = Spf_ir.Builder.param b 0 in
  let x = Spf_ir.Builder.binop b Ir.Fmul (Ir.Fimm 2.5) (Ir.Fimm 0.125) in
  Spf_ir.Builder.store b Ir.F64 p x;
  Spf_ir.Builder.ret b None;
  let f = Spf_ir.Builder.finish b in
  Helpers.verify_ok (roundtrip f)

let test_parse_errors () =
  let bad = [ "bb0 (x):\n  %v.0 = frobnicate #1\n  ret"; "  %v.0 = add #1 #2" ] in
  List.iter
    (fun src ->
      match Parser.parse_result src with
      | Ok _ -> Alcotest.failf "expected a parse error for %S" src
      | Error _ -> ())
    bad

let suite =
  [
    Alcotest.test_case "round-trip fixtures" `Quick test_roundtrip_fixtures;
    Alcotest.test_case "round-trip after the pass" `Quick test_roundtrip_after_pass;
    Alcotest.test_case "parsed function executes" `Quick test_parsed_function_executes;
    Alcotest.test_case "hand-written source" `Quick test_handwritten_source;
    Alcotest.test_case "float immediates" `Quick test_float_immediates;
    Alcotest.test_case "parse errors reported" `Quick test_parse_errors;
  ]
