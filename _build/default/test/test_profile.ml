module Ir = Spf_ir.Ir
module Profile = Spf_sim.Profile
module Machine = Spf_sim.Machine
module Workload = Spf_workloads.Workload

(* The untimed profiler must execute correctly and attribute misses to the
   right sites — before the pass, the indirect demand load is the misser;
   after it, the prefetch absorbs the misses and the demand load hits. *)

let site_by_name prof f name =
  List.filter
    (fun (s : Profile.site) ->
      (Ir.instr f s.Profile.instr_id).Ir.name = name)
    (Profile.sites prof)

let run_profiled ?(transform = false) () =
  let p = { Spf_workloads.Is.n_keys = 8192; n_buckets = 1 lsl 20; seed = 9 } in
  let b = Spf_workloads.Is.build p in
  if transform then ignore (Spf_core.Pass.run b.Workload.func);
  let prof = Profile.create Machine.haswell in
  let retval =
    Profile.run prof b.Workload.func ~mem:b.Workload.mem ~args:b.Workload.args
  in
  Workload.validate b ~retval;
  (prof, b.Workload.func)

let test_baseline_attribution () =
  let prof, f = run_profiled () in
  (* The bucket-increment load ("count") misses nearly always; the
     sequential key load barely misses. *)
  match (site_by_name prof f "count", site_by_name prof f "key") with
  | [ count ], [ key ] ->
      Alcotest.(check bool) "indirect load dominated by misses" true
        (count.Profile.misses * 10 > count.Profile.accesses * 8);
      Alcotest.(check bool) "sequential load mostly hits" true
        (key.Profile.misses * 10 < key.Profile.accesses)
  | _ -> Alcotest.fail "expected exactly one site per load"

let test_pass_shifts_misses_to_prefetch () =
  let prof, f = run_profiled ~transform:true () in
  match site_by_name prof f "count" with
  | [ count ] ->
      Alcotest.(check bool) "demand load now hits" true
        (count.Profile.misses * 10 < count.Profile.accesses);
      (* Some prefetch site now carries the misses. *)
      let pf_misses =
        List.fold_left
          (fun acc (s : Profile.site) ->
            match (Ir.instr f s.Profile.instr_id).Ir.kind with
            | Ir.Prefetch _ -> acc + s.Profile.misses
            | _ -> acc)
          0 (Profile.sites prof)
      in
      Alcotest.(check bool) "prefetches absorb the misses" true
        (pf_misses > (8192 * 6) / 10)
  | _ -> Alcotest.fail "expected exactly one count site"

let test_sites_sorted_by_misses () =
  let prof, _ = run_profiled () in
  let rec decreasing = function
    | (a : Profile.site) :: (b :: _ as rest) ->
        a.Profile.misses >= b.Profile.misses && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "worst missers first" true (decreasing (Profile.sites prof))

let suite =
  [
    Alcotest.test_case "baseline attribution" `Quick test_baseline_attribution;
    Alcotest.test_case "pass shifts misses to prefetch" `Quick
      test_pass_shifts_misses_to_prefetch;
    Alcotest.test_case "sites sorted" `Quick test_sites_sorted_by_misses;
  ]
