module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Simplify = Spf_ir.Simplify
module Memory = Spf_sim.Memory

(* Constant folding and DCE: correctness and fixed-point behaviour. *)

let test_fold_arith () =
  let b = Builder.create ~name:"t" ~nparams:0 in
  let x = Builder.add b (Ir.Imm 20) (Ir.Imm 22) in
  let y = Builder.mul b x (Ir.Imm 1) in
  let z = Builder.binop b Ir.Smin y (Ir.Imm 100) in
  Builder.ret b (Some z);
  let f = Builder.finish b in
  let folded = Simplify.constant_fold f in
  Alcotest.(check bool) "folded several" true (folded >= 3);
  Helpers.verify_ok f;
  (match (Ir.block f 0).Ir.term with
  | Ir.Ret (Some (Ir.Imm 42)) -> ()
  | _ -> Alcotest.fail "return not folded to 42");
  Alcotest.(check int) "still executes" 42 (Helpers.run_ret f)

let test_fold_identities () =
  let b = Builder.create ~name:"t" ~nparams:1 in
  let p = Builder.param b 0 in
  let x = Builder.add b p (Ir.Imm 0) in
  let y = Builder.binop b Ir.Xor x (Ir.Imm 0) in
  let z = Builder.binop b Ir.Shl y (Ir.Imm 0) in
  Builder.ret b (Some z);
  let f = Builder.finish b in
  ignore (Simplify.constant_fold f);
  Helpers.verify_ok f;
  (* Everything collapses to the parameter. *)
  (match (Ir.block f 0).Ir.term with
  | Ir.Ret (Some (Ir.Var id)) when id = f.Ir.param_ids.(0) -> ()
  | _ -> Alcotest.fail "identities not collapsed to the parameter");
  Alcotest.(check int) "still executes" 7 (Helpers.run_ret ~args:[| 7 |] f)

let test_fold_does_not_touch_loads () =
  let mem = Memory.create () in
  let base = Memory.alloc_i32_array mem [| 5 |] in
  let b = Builder.create ~name:"t" ~nparams:1 in
  let v = Builder.load b Ir.I32 (Builder.param b 0) in
  Builder.ret b (Some v);
  let f = Builder.finish b in
  Alcotest.(check int) "nothing folded" 0 (Simplify.constant_fold f);
  Alcotest.(check int) "load preserved" 5 (Helpers.run_ret ~mem ~args:[| base |] f)

let test_div_by_zero_not_folded () =
  let b = Builder.create ~name:"t" ~nparams:0 in
  let x = Builder.binop b Ir.Sdiv (Ir.Imm 5) (Ir.Imm 0) in
  Builder.store b Ir.I32 (Ir.Imm 4096) x;
  Builder.ret b None;
  let f = Builder.finish b in
  Alcotest.(check int) "division by zero left alone" 0 (Simplify.constant_fold f)

let test_dce_removes_unused () =
  let b = Builder.create ~name:"t" ~nparams:1 in
  let p = Builder.param b 0 in
  let _dead1 = Builder.add b p (Ir.Imm 1) in
  let _dead2 = Builder.mul b p (Ir.Imm 3) in
  let live = Builder.add b p (Ir.Imm 2) in
  Builder.ret b (Some live);
  let f = Builder.finish b in
  let removed = Simplify.dce f in
  Alcotest.(check int) "two dead instructions removed" 2 removed;
  Helpers.verify_ok f;
  Alcotest.(check int) "live path intact" 12 (Helpers.run_ret ~args:[| 10 |] f)

let test_dce_transitive () =
  (* A dead chain: b uses a, nothing uses b — both must go. *)
  let b = Builder.create ~name:"t" ~nparams:1 in
  let p = Builder.param b 0 in
  let a = Builder.add b p (Ir.Imm 1) in
  let _bb = Builder.mul b a (Ir.Imm 2) in
  Builder.ret b (Some p);
  let f = Builder.finish b in
  Alcotest.(check int) "chain removed" 2 (Simplify.dce f);
  Helpers.verify_ok f

let test_dce_keeps_side_effects () =
  let mem = Memory.create () in
  let base = Memory.alloc mem 64 in
  let b = Builder.create ~name:"t" ~nparams:1 in
  let p = Builder.param b 0 in
  Builder.store b Ir.I32 p (Ir.Imm 9);
  Builder.prefetch b p;
  Builder.ret b None;
  let f = Builder.finish b in
  Alcotest.(check int) "stores and prefetches kept" 0 (Simplify.dce f);
  ignore (Helpers.run ~mem ~args:[| base |] f);
  Alcotest.(check int) "store executed" 9 (Memory.load mem Ir.I32 base)

let test_dce_keeps_loads () =
  (* Loads are side-effect free in this IR but removing an unused load is
     still fine semantically; the current policy removes them.  What must
     never be removed is a load whose value is used. *)
  let mem = Memory.create () in
  let base = Memory.alloc_i32_array mem [| 3 |] in
  let b = Builder.create ~name:"t" ~nparams:1 in
  let v = Builder.load b Ir.I32 (Builder.param b 0) in
  Builder.ret b (Some v);
  let f = Builder.finish b in
  Alcotest.(check int) "used load kept" 0 (Simplify.dce f);
  Alcotest.(check int) "value intact" 3 (Helpers.run_ret ~mem ~args:[| base |] f)

let test_simplify_after_pass_preserves_semantics () =
  let p = Test_pass.small_is in
  let b1 = Spf_workloads.Is.build p in
  ignore (Spf_core.Pass.run b1.Spf_workloads.Workload.func);
  ignore (Simplify.simplify b1.Spf_workloads.Workload.func);
  Helpers.verify_ok b1.Spf_workloads.Workload.func;
  let interp =
    Spf_sim.Interp.create ~machine:Spf_sim.Machine.haswell
      ~mem:b1.Spf_workloads.Workload.mem ~args:b1.Spf_workloads.Workload.args
      b1.Spf_workloads.Workload.func
  in
  Spf_sim.Interp.run interp;
  Spf_workloads.Workload.validate b1 ~retval:(Spf_sim.Interp.retval interp)

let suite =
  [
    Alcotest.test_case "fold arithmetic" `Quick test_fold_arith;
    Alcotest.test_case "fold identities" `Quick test_fold_identities;
    Alcotest.test_case "loads not folded" `Quick test_fold_does_not_touch_loads;
    Alcotest.test_case "division by zero left alone" `Quick test_div_by_zero_not_folded;
    Alcotest.test_case "dce removes unused" `Quick test_dce_removes_unused;
    Alcotest.test_case "dce transitive" `Quick test_dce_transitive;
    Alcotest.test_case "dce keeps side effects" `Quick test_dce_keeps_side_effects;
    Alcotest.test_case "used load kept" `Quick test_dce_keeps_loads;
    Alcotest.test_case "simplify after pass preserves semantics" `Quick
      test_simplify_after_pass_preserves_semantics;
  ]
