module Ir = Spf_ir.Ir
module Split = Spf_core.Split
module Pass = Spf_core.Pass
module Config = Spf_core.Config
module Memory = Spf_sim.Memory

(* Loop splitting (the ICC hoisted-checks optimisation): the peel must
   preserve semantics exactly, the main loop's prefetches must carry no
   clamps, and ineligible loops must be left alone. *)

let run_sum ~n f =
  let mem = Memory.create () in
  let base = Memory.alloc_i32_array mem (Array.init n (fun i -> (i * 7) land 0xFF)) in
  Helpers.run_ret ~mem ~args:[| base |] f

let expected_sum ~n =
  let s = ref 0 in
  for i = 0 to n - 1 do
    s := !s + ((i * 7) land 0xFF)
  done;
  !s

let test_split_preserves_sum () =
  List.iter
    (fun n ->
      let f = Helpers.sum_kernel ~n in
      let splits = Split.run f in
      Alcotest.(check int) "one split" 1 (List.length splits);
      Helpers.verify_ok f;
      Alcotest.(check int)
        (Printf.sprintf "sum preserved at n=%d" n)
        (expected_sum ~n) (run_sum ~n f))
    [ 0; 1; 63; 64; 65; 200; 1024 ]
(* n < c exercises the empty main loop; n = c the boundary. *)

let test_split_and_prefetch_is_like () =
  let n = 4096 in
  let mem = Memory.create () in
  let rng = Spf_workloads.Rng.create ~seed:2 in
  let setup () =
    let mem = Memory.create () in
    let rng = Spf_workloads.Rng.create ~seed:2 in
    let a =
      Memory.alloc_i32_array mem
        (Array.init n (fun _ -> Spf_workloads.Rng.int rng (1 lsl 16)))
    in
    let tgt = Memory.alloc mem (4 * (1 lsl 16)) in
    (mem, [| a; tgt |])
  in
  ignore (mem, rng);
  (* Reference: plain run. *)
  let checksum args mem =
    let acc = ref 0 in
    for k = 0 to (1 lsl 16) - 1 do
      acc := Spf_workloads.Workload.mix !acc (Memory.load mem Ir.I32 (args.(1) + (4 * k)))
    done;
    !acc
  in
  let plain = Helpers.is_like_kernel ~n in
  let mem0, args0 = setup () in
  ignore (Helpers.run ~mem:mem0 ~args:args0 plain);
  let expected = checksum args0 mem0 in
  (* Split + clamp-free prefetch. *)
  let f = Helpers.is_like_kernel ~n in
  let splits, report = Split.split_and_prefetch f in
  Helpers.verify_ok f;
  Alcotest.(check int) "loop split" 1 (List.length splits);
  Alcotest.(check bool) "prefetches emitted" true (report.Pass.n_prefetches > 0);
  (* No Smin clamp in the cloned main loop. *)
  let s = List.hd splits in
  List.iter
    (fun bid ->
      Array.iter
        (fun id ->
          match (Ir.instr f id).Ir.kind with
          | Ir.Binop (Ir.Smin, _, _) ->
              Alcotest.fail "clamp found in the peeled main loop"
          | _ -> ())
        (Ir.block f bid).Ir.instrs)
    s.Split.main_blocks;
  let mem1, args1 = setup () in
  ignore (Helpers.run ~mem:mem1 ~args:args1 f);
  Alcotest.(check int) "results identical" expected (checksum args1 mem1)

let test_split_reduces_instructions () =
  let n = 65536 in
  let count_dynamic f =
    let mem = Memory.create () in
    let rng = Spf_workloads.Rng.create ~seed:3 in
    let a =
      Memory.alloc_i32_array mem
        (Array.init n (fun _ -> Spf_workloads.Rng.int rng (1 lsl 20)))
    in
    let tgt = Memory.alloc mem (4 * (1 lsl 20)) in
    let _, st = Helpers.run ~mem ~args:[| a; tgt |] f in
    st.Spf_sim.Stats.instructions
  in
  let clamped = Helpers.is_like_kernel ~n in
  ignore (Pass.run clamped);
  let split = Helpers.is_like_kernel ~n in
  ignore (Split.split_and_prefetch split);
  Alcotest.(check bool) "clamp-free main loop executes fewer instructions"
    true
    (count_dynamic split < count_dynamic clamped)

let test_ineligible_loops_untouched () =
  (* The BFS work loop (growing bound) must not be split. *)
  let p = Test_pass.small_g500 in
  let g = Spf_workloads.G500.kronecker p in
  let f = Spf_workloads.G500.build_func g in
  let n_blocks_before = Ir.n_blocks f in
  let splits = Split.run f in
  Alcotest.(check int) "no split of the work loop" 0
    (List.length
       (List.filter (fun (s : Split.split) -> s.Split.loop_header = 1) splits));
  ignore n_blocks_before;
  Helpers.verify_ok f

let test_epilogue_has_no_prefetches () =
  let f = Helpers.is_like_kernel ~n:4096 in
  let splits, _ = Split.split_and_prefetch f in
  let s = List.hd splits in
  List.iter
    (fun bid ->
      Array.iter
        (fun id ->
          match (Ir.instr f id).Ir.kind with
          | Ir.Prefetch _ -> Alcotest.fail "prefetch leaked into the epilogue"
          | _ -> ())
        (Ir.block f bid).Ir.instrs)
    s.Split.epilogue_blocks

let suite =
  [
    Alcotest.test_case "split preserves sums (incl. boundaries)" `Quick
      test_split_preserves_sum;
    Alcotest.test_case "split+prefetch preserves IS-like kernel" `Quick
      test_split_and_prefetch_is_like;
    Alcotest.test_case "split reduces dynamic instructions" `Quick
      test_split_reduces_instructions;
    Alcotest.test_case "ineligible loops untouched" `Quick
      test_ineligible_loops_untouched;
    Alcotest.test_case "epilogue prefetch-free" `Quick
      test_epilogue_has_no_prefetches;
  ]
