module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory
module Machine = Spf_sim.Machine

(* Timing-model invariants the reproduction rests on: prefetches never
   stall, in-order cores stall on dependent misses, out-of-order cores
   overlap independent ones, and prefetching a line early makes its later
   demand load cheap. *)

(* A kernel that performs [n] dependent pointer-chase loads (each address
   comes from the previous load), touching one new line each. *)
let chase_kernel ~n =
  let b = Builder.create ~name:"chase" ~nparams:1 in
  let p0 = Builder.param b 0 in
  let rec chase p k =
    if k = 0 then p else chase (Builder.load b Ir.I64 p) (k - 1)
  in
  let last = chase p0 n in
  Builder.ret b (Some last);
  Builder.finish b

(* Independent loads: addr = base + k*4096. *)
let independent_kernel ~n =
  let b = Builder.create ~name:"indep" ~nparams:1 in
  let base = Builder.param b 0 in
  let acc =
    List.fold_left
      (fun acc k ->
        let v = Builder.load b Ir.I64 (Builder.gep b base (Ir.Imm k) 4096) in
        Builder.add b acc v)
      (Ir.Imm 0)
      (List.init n (fun k -> k))
  in
  Builder.ret b (Some acc);
  Builder.finish b

let chain_memory ~n =
  let mem = Memory.create () in
  let base = Memory.alloc mem ((n + 1) * 4096) in
  (* cell k (at base + k*4096) points to cell k+1. *)
  for k = 0 to n - 1 do
    Memory.store mem Ir.I64 (base + (k * 4096)) (base + ((k + 1) * 4096))
  done;
  (mem, base)

let cycles ?machine ~mem ~args f =
  let _, st = Helpers.run ?machine ~mem ~args f in
  st.Spf_sim.Stats.cycles

let test_dependent_vs_independent_ooo () =
  let n = 16 in
  let mem1, base1 = chain_memory ~n in
  let dep = cycles ~machine:Machine.haswell ~mem:mem1 ~args:[| base1 |] (chase_kernel ~n) in
  let mem2, _ = chain_memory ~n in
  let base2 = 4096 in
  ignore base2;
  let indep =
    cycles ~machine:Machine.haswell ~mem:mem2 ~args:[| 4096 |]
      (independent_kernel ~n)
  in
  (* Dependent misses serialise; independent ones overlap on an
     out-of-order core. *)
  Alcotest.(check bool) "chase costs much more than the gather" true
    (dep > 2 * indep)

let test_inorder_does_not_overlap_independent () =
  let n = 16 in
  let mem1, _ = chain_memory ~n in
  let ooo = cycles ~machine:Machine.haswell ~mem:mem1 ~args:[| 4096 |] (independent_kernel ~n) in
  let mem2, _ = chain_memory ~n in
  let io = cycles ~machine:Machine.a53 ~mem:mem2 ~args:[| 4096 |] (independent_kernel ~n) in
  Alcotest.(check bool) "in-order pays each miss serially" true (io > 2 * ooo)

let test_prefetch_never_stalls () =
  (* A block of k prefetches to missing lines must cost ~k dispatch slots,
     not k memory latencies, on the in-order core. *)
  let n = 16 in
  let build ~prefetch =
    let b = Builder.create ~name:"pf" ~nparams:1 in
    let base = Builder.param b 0 in
    List.iter
      (fun k ->
        let addr = Builder.gep b base (Ir.Imm k) 4096 in
        if prefetch then Builder.prefetch b addr
        else ignore (Builder.load b Ir.I64 addr))
      (List.init n (fun k -> k));
    Builder.ret b None;
    Builder.finish b
  in
  let mem1, _ = chain_memory ~n in
  let with_loads = cycles ~machine:Machine.a53 ~mem:mem1 ~args:[| 4096 |] (build ~prefetch:false) in
  let mem2, _ = chain_memory ~n in
  let with_pf = cycles ~machine:Machine.a53 ~mem:mem2 ~args:[| 4096 |] (build ~prefetch:true) in
  Alcotest.(check bool) "prefetches are non-blocking" true
    (with_pf * 5 < with_loads)

let test_prefetched_load_is_cheap () =
  (* prefetch addr; spin; load addr  — the load must cost ~an L1 hit. *)
  let build ~spin ~prefetch =
    let b = Builder.create ~name:"t" ~nparams:1 in
    let base = Builder.param b 0 in
    if prefetch then Builder.prefetch b base;
    (* spin: a chain of dependent adds to pass time without touching
       memory. *)
    let rec loop v k = if k = 0 then v else loop (Builder.add b v (Ir.Imm 1)) (k - 1) in
    let w = loop (Ir.Imm 0) spin in
    let v = Builder.load b Ir.I64 base in
    Builder.ret b (Some (Builder.add b v w));
    Builder.finish b
  in
  let spin = 600 in
  let mem1, _ = chain_memory ~n:1 in
  let cold = cycles ~machine:Machine.a53 ~mem:mem1 ~args:[| 4096 |] (build ~spin ~prefetch:false) in
  let mem2, _ = chain_memory ~n:1 in
  let warm = cycles ~machine:Machine.a53 ~mem:mem2 ~args:[| 4096 |] (build ~spin ~prefetch:true) in
  (* Both pay the spin; only the cold one also pays the miss. *)
  Alcotest.(check bool) "prefetch hides the whole miss" true
    (cold - warm > (Machine.a53.Machine.dram.latency / 2))

let test_late_prefetch_hides_partially () =
  (* With a short spin the prefetch is still in flight when the load
     arrives: the load waits the remainder — more than a hit, less than a
     full miss. *)
  let build ~spin ~prefetch =
    let b = Builder.create ~name:"t" ~nparams:1 in
    let base = Builder.param b 0 in
    if prefetch then Builder.prefetch b base;
    let rec loop v k = if k = 0 then v else loop (Builder.add b v (Ir.Imm 1)) (k - 1) in
    let w = loop (Ir.Imm 0) spin in
    let v = Builder.load b Ir.I64 base in
    Builder.ret b (Some (Builder.add b v w));
    Builder.finish b
  in
  let spin = 40 in
  let mem1, _ = chain_memory ~n:1 in
  let cold = cycles ~machine:Machine.a53 ~mem:mem1 ~args:[| 4096 |] (build ~spin ~prefetch:false) in
  let mem2, _ = chain_memory ~n:1 in
  let late = cycles ~machine:Machine.a53 ~mem:mem2 ~args:[| 4096 |] (build ~spin ~prefetch:true) in
  let mem3, _ = chain_memory ~n:1 in
  let warm =
    cycles ~machine:Machine.a53 ~mem:mem3 ~args:[| 4096 |]
      (build ~spin:600 ~prefetch:true)
  in
  ignore warm;
  Alcotest.(check bool) "late prefetch still helps" true (late < cold);
  Alcotest.(check bool) "but does not hide everything" true
    (cold - late < Machine.a53.Machine.dram.latency)

let suite =
  [
    Alcotest.test_case "dependent vs independent (OoO)" `Quick
      test_dependent_vs_independent_ooo;
    Alcotest.test_case "in-order serialises independent misses" `Quick
      test_inorder_does_not_overlap_independent;
    Alcotest.test_case "prefetches never stall" `Quick test_prefetch_never_stalls;
    Alcotest.test_case "prefetched load is cheap" `Quick test_prefetched_load_is_cheap;
    Alcotest.test_case "late prefetch partial hiding" `Quick
      test_late_prefetch_hides_partially;
  ]
