module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Verifier = Spf_ir.Verifier

(* The verifier must accept all well-formed fixtures and flag each class of
   breakage. *)

let test_accepts_fixtures () =
  Helpers.verify_ok (Helpers.is_like_kernel ~n:8);
  Helpers.verify_ok (Helpers.sum_kernel ~n:8);
  Helpers.verify_ok (Spf_workloads.Is.build_func Spf_workloads.Is.default);
  Helpers.verify_ok (Spf_workloads.Cg.build_func Spf_workloads.Cg.default);
  Helpers.verify_ok (Spf_workloads.Ra.build_func Spf_workloads.Ra.default);
  Helpers.verify_ok (Spf_workloads.Hj.build_func Spf_workloads.Hj.default_hj8)

let violations f = List.length (Verifier.check f)

let test_bad_branch_target () =
  let f = Helpers.sum_kernel ~n:4 in
  (Ir.block f 2).Ir.term <- Ir.Br 99;
  Alcotest.(check bool) "invalid target flagged" true (violations f > 0)

let test_phi_label_mismatch () =
  let f = Helpers.sum_kernel ~n:4 in
  let header = Ir.block f 1 in
  let phi = Ir.instr f header.Ir.instrs.(0) in
  (match phi.Ir.kind with
  | Ir.Phi incoming ->
      phi.Ir.kind <- Ir.Phi (List.map (fun (_, v) -> (97, v)) incoming)
  | _ -> Alcotest.fail "expected phi");
  Alcotest.(check bool) "phi label mismatch flagged" true (violations f > 0)

let test_phi_after_nonphi () =
  let f = Helpers.sum_kernel ~n:4 in
  let header = Ir.block f 1 in
  (* Move the leading phi to the end of the block. *)
  let n = Array.length header.Ir.instrs in
  let phi_id = header.Ir.instrs.(0) in
  let rest = Array.sub header.Ir.instrs 1 (n - 1) in
  header.Ir.instrs <- Array.append rest [| phi_id |];
  Alcotest.(check bool) "phi after non-phi flagged" true (violations f > 0)

let test_use_before_def () =
  let b = Builder.create ~name:"bad" ~nparams:0 in
  (* Build a block that reads an id defined only later in the block. *)
  let f = Builder.finish b in
  let late = Ir.fresh_instr f ~name:"late" ~block:0 (Ir.Binop (Ir.Add, Ir.Imm 1, Ir.Imm 1)) in
  let early =
    Ir.fresh_instr f ~name:"early" ~block:0
      (Ir.Binop (Ir.Add, Ir.Var late.Ir.id, Ir.Imm 1))
  in
  Ir.insert_at_end f ~bid:0 [ early.Ir.id; late.Ir.id ];
  (Ir.block f 0).Ir.term <- Ir.Ret None;
  Alcotest.(check bool) "use before def flagged" true (violations f > 0)

let test_use_of_nonvalue () =
  let b = Builder.create ~name:"bad" ~nparams:1 in
  let p = Builder.param b 0 in
  Builder.store b Ir.I32 p (Ir.Imm 1);
  let f = Builder.finish b in
  (* Find the store's id and reference it as an operand. *)
  let store_id = ref (-1) in
  Ir.iter_instrs f (fun i ->
      match i.Ir.kind with Ir.Store _ -> store_id := i.Ir.id | _ -> ());
  let bad =
    Ir.fresh_instr f ~name:"bad" ~block:0
      (Ir.Binop (Ir.Add, Ir.Var !store_id, Ir.Imm 1))
  in
  Ir.insert_at_end f ~bid:0 [ bad.Ir.id ];
  (Ir.block f 0).Ir.term <- Ir.Ret None;
  Alcotest.(check bool) "use of non-value flagged" true (violations f > 0)

let test_cross_block_dominance () =
  (* A value defined in the 'then' arm used in the join point without a
     phi must be flagged. *)
  let b = Builder.create ~name:"bad" ~nparams:1 in
  let bthen = Builder.new_block b "then" in
  let belse = Builder.new_block b "else" in
  let join = Builder.new_block b "join" in
  let c = Builder.cmp b Ir.Sgt (Builder.param b 0) (Ir.Imm 0) in
  Builder.cbr b c bthen belse;
  Builder.set_block b bthen;
  let v = Builder.add b (Ir.Imm 1) (Ir.Imm 2) in
  Builder.br b join;
  Builder.set_block b belse;
  Builder.br b join;
  Builder.set_block b join;
  Builder.ret b (Some v);
  let f = Builder.finish b in
  Alcotest.(check bool) "non-dominating use flagged" true (violations f > 0)

let test_pass_output_verifies () =
  (* After the pass mutates a function, the verifier must still accept. *)
  List.iter
    (fun f ->
      ignore (Spf_core.Pass.run f);
      Helpers.verify_ok f)
    [
      Spf_workloads.Is.build_func Spf_workloads.Is.default;
      Spf_workloads.Cg.build_func Spf_workloads.Cg.default;
      Spf_workloads.Ra.build_func Spf_workloads.Ra.default;
      Spf_workloads.Hj.build_func Spf_workloads.Hj.default_hj2;
      Spf_workloads.Hj.build_func Spf_workloads.Hj.default_hj8;
    ]

let suite =
  [
    Alcotest.test_case "accepts fixtures" `Quick test_accepts_fixtures;
    Alcotest.test_case "bad branch target" `Quick test_bad_branch_target;
    Alcotest.test_case "phi label mismatch" `Quick test_phi_label_mismatch;
    Alcotest.test_case "phi after non-phi" `Quick test_phi_after_nonphi;
    Alcotest.test_case "use before def" `Quick test_use_before_def;
    Alcotest.test_case "use of non-value" `Quick test_use_of_nonvalue;
    Alcotest.test_case "cross-block dominance" `Quick test_cross_block_dominance;
    Alcotest.test_case "pass output verifies" `Quick test_pass_output_verifies;
  ]
