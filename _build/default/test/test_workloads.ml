module Ir = Spf_ir.Ir
module Workload = Spf_workloads.Workload
module Is = Spf_workloads.Is
module Cg = Spf_workloads.Cg
module Ra = Spf_workloads.Ra
module Hj = Spf_workloads.Hj
module G500 = Spf_workloads.G500
module Rng = Spf_workloads.Rng

(* Every workload variant must execute to the reference checksum on both an
   in-order and an out-of-order machine, with and without the pass. *)

let machines = [ Spf_sim.Machine.haswell; Spf_sim.Machine.a53 ]

let run_and_validate ?(transform = fun _ -> ()) (b : Workload.built) machine =
  transform b.Workload.func;
  Helpers.verify_ok b.Workload.func;
  let interp =
    Spf_sim.Interp.create ~machine ~mem:b.Workload.mem ~args:b.Workload.args
      b.Workload.func
  in
  Spf_sim.Interp.run ~fuel:50_000_000 interp;
  Workload.validate b ~retval:(Spf_sim.Interp.retval interp)

let check_all ~name builds =
  List.iter
    (fun machine ->
      List.iter
        (fun build ->
          try run_and_validate (build ()) machine
          with Failure m -> Alcotest.failf "%s: %s" name m)
        builds)
    machines

let test_is () =
  check_all ~name:"IS"
    [
      (fun () -> Is.build Test_pass.small_is);
      (fun () -> Is.build ~manual:Is.intuitive Test_pass.small_is);
      (fun () -> Is.build ~manual:Is.optimal Test_pass.small_is);
      (fun () -> Is.build ~manual:Is.offset_too_small Test_pass.small_is);
      (fun () -> Is.build ~manual:Is.offset_too_big Test_pass.small_is);
    ]

let test_cg () =
  check_all ~name:"CG"
    [
      (fun () -> Cg.build Test_pass.small_cg);
      (fun () -> Cg.build ~manual:Cg.optimal Test_pass.small_cg);
      (fun () -> Cg.build ~manual:{ Cg.c = 8; stride = false } Test_pass.small_cg);
    ]

let test_ra () =
  check_all ~name:"RA"
    [
      (fun () -> Ra.build Test_pass.small_ra);
      (fun () -> Ra.build ~manual:Ra.optimal Test_pass.small_ra);
      (fun () ->
        Ra.build ~manual:{ Ra.during_generation = false; c = 16 } Test_pass.small_ra);
    ]

let test_hj () =
  check_all ~name:"HJ"
    [
      (fun () -> Hj.build Test_pass.small_hj2);
      (fun () -> Hj.build ~manual:Hj.optimal_hj2 Test_pass.small_hj2);
      (fun () -> Hj.build Test_pass.small_hj8);
      (fun () -> Hj.build ~manual:{ Hj.c = 32; depth = 4 } Test_pass.small_hj8);
      (fun () -> Hj.build ~manual:{ Hj.c = 32; depth = 1 } Test_pass.small_hj8);
    ]

let test_g500 () =
  check_all ~name:"G500"
    [
      (fun () -> G500.build Test_pass.small_g500);
      (fun () -> G500.build ~manual:G500.optimal Test_pass.small_g500);
      (fun () -> G500.build ~manual:G500.optimal_ooo Test_pass.small_g500);
      (fun () -> G500.build Test_pass.bounded_g500);
      (fun () -> G500.build ~manual:G500.optimal Test_pass.bounded_g500);
    ]

(* HJ structural invariants: exact occupancy and hash consistency. *)
let test_hj_construction () =
  let p = Test_pass.small_hj8 in
  let mask = (1 lsl p.Hj.log_buckets) - 1 in
  for bkt = 0 to 20 do
    for slot = 0 to p.Hj.elems_per_bucket - 1 do
      let k = Hj.key_of ~bucket:bkt ~slot in
      Alcotest.(check int) "hash inverts the crafted key" bkt (Hj.hash ~mask k)
    done
  done;
  (* All keys distinct. *)
  let seen = Hashtbl.create 64 in
  for bkt = 0 to (1 lsl p.Hj.log_buckets) - 1 do
    for slot = 0 to p.Hj.elems_per_bucket - 1 do
      let k = Hj.key_of ~bucket:bkt ~slot in
      Alcotest.(check bool) "key unique" false (Hashtbl.mem seen k);
      Hashtbl.replace seen k ()
    done
  done

(* Kronecker/CSR invariants. *)
let test_g500_graph () =
  let p = Test_pass.small_g500 in
  let g = G500.kronecker p in
  Alcotest.(check int) "row array has n+1 entries" (g.G500.n + 1)
    (Array.length g.G500.row);
  Alcotest.(check int) "row.(n) = number of directed edges"
    (Array.length g.G500.col)
    g.G500.row.(g.G500.n);
  Alcotest.(check int) "2 * edge_factor * n directed edges"
    (2 * p.G500.edge_factor * (1 lsl p.G500.scale))
    (Array.length g.G500.col);
  (* Monotone row offsets; in-range column ids. *)
  for i = 0 to g.G500.n - 1 do
    assert (g.G500.row.(i) <= g.G500.row.(i + 1))
  done;
  Array.iter (fun c -> assert (c >= 0 && c < g.G500.n)) g.G500.col;
  (* The graph is symmetric (each sampled edge added both ways), so BFS
     parents are consistent: parent.(v) is a vertex with an edge to v. *)
  let root = G500.root_of g in
  let parent, visited = G500.reference_bfs g ~root ~max_vertices:None in
  Alcotest.(check bool) "bfs visits at least the root" true (visited >= 1);
  Array.iteri
    (fun v pv ->
      if pv >= 0 && v <> root then begin
        let found = ref false in
        for e = g.G500.row.(pv) to g.G500.row.(pv + 1) - 1 do
          if g.G500.col.(e) = v then found := true
        done;
        if not !found then Alcotest.failf "parent of %d is not a neighbour" v
      end)
    parent

(* The bounded BFS is a prefix of the full BFS. *)
let test_g500_bounded_prefix () =
  let p = Test_pass.small_g500 in
  let g = G500.kronecker p in
  let root = G500.root_of g in
  let full, full_visited = G500.reference_bfs g ~root ~max_vertices:None in
  let bounded, bounded_visited =
    G500.reference_bfs g ~root ~max_vertices:(Some 10)
  in
  Alcotest.(check bool) "bounded visits fewer" true (bounded_visited <= full_visited);
  Array.iteri
    (fun v pv -> if pv >= 0 then Alcotest.(check int) "prefix agrees" full.(v) pv)
    bounded

(* Deterministic RNG. *)
let test_rng_deterministic () =
  let a = Rng.create ~seed:11 and b = Rng.create ~seed:11 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create ~seed:12 in
  Alcotest.(check bool) "different seed, different stream" true
    (List.init 10 (fun _ -> Rng.next a) <> List.init 10 (fun _ -> Rng.next c))

let test_rng_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    assert (v >= 0 && v < 17);
    let f = Rng.float r in
    assert (f >= 0.0 && f < 1.0)
  done

let test_rng_shuffle_is_permutation () =
  let r = Rng.create ~seed:5 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 100 (fun i -> i))

let suite =
  [
    Alcotest.test_case "IS variants validate" `Slow test_is;
    Alcotest.test_case "CG variants validate" `Slow test_cg;
    Alcotest.test_case "RA variants validate" `Slow test_ra;
    Alcotest.test_case "HJ variants validate" `Slow test_hj;
    Alcotest.test_case "G500 variants validate" `Slow test_g500;
    Alcotest.test_case "HJ table construction" `Quick test_hj_construction;
    Alcotest.test_case "Kronecker/CSR invariants" `Quick test_g500_graph;
    Alcotest.test_case "bounded BFS is a prefix" `Quick test_g500_bounded_prefix;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_is_permutation;
  ]
