(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5–§6) through the simulator, then microbenchmarks the
   compiler pass and the simulator's memory system with Bechamel.

   Figure pieces run their independent simulations concurrently on a
   domain pool (output stays byte-identical to a serial run — see
   docs/PERFORMANCE.md), and every invocation writes BENCH.json next to
   the human-readable output so the performance trajectory is tracked.
   Each piece is timed over several trials (min and median recorded) so a
   one-off scheduling hiccup cannot masquerade as a regression.

   Usage:
     main.exe [-j N] [--trials T] [--engine E]         run everything
     main.exe [...] quick           skip the slowest figures (fig6, fig9)
     main.exe [...] fig4 fig7 ...   run selected pieces only              *)

module Figures = Spf_harness.Figures
module Pool = Spf_harness.Pool
module Engine = Spf_sim.Engine
module Profile_guided = Spf_harness.Profile_guided
module Runner = Spf_harness.Runner

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks. *)

open Bechamel
open Toolkit

(* Compile-time cost of the pass (analysis + code generation) on each
   kernel's IR.  One Test.make per kernel; the IR is rebuilt inside the
   staged closure because the pass mutates it. *)
let pass_test ~name build_func =
  Test.make ~name
    (Staged.stage (fun () ->
         let f = build_func () in
         ignore (Spf_core.Pass.run f)))

let pass_tests () =
  let module Is = Spf_workloads.Is in
  let module Cg = Spf_workloads.Cg in
  let module Ra = Spf_workloads.Ra in
  let module Hj = Spf_workloads.Hj in
  let module G500 = Spf_workloads.G500 in
  let g =
    G500.kronecker { G500.scale = 8; edge_factor = 8; seed = 1; max_vertices = None }
  in
  Test.make_grouped ~name:"pass"
    [
      pass_test ~name:"IS" (fun () -> Is.build_func Is.default);
      pass_test ~name:"CG" (fun () -> Cg.build_func Cg.default);
      pass_test ~name:"RA" (fun () -> Ra.build_func Ra.default);
      pass_test ~name:"HJ-2" (fun () -> Hj.build_func Hj.default_hj2);
      pass_test ~name:"HJ-8" (fun () -> Hj.build_func Hj.default_hj8);
      pass_test ~name:"G500" (fun () -> G500.build_func g);
    ]

(* Memory-system fast paths: one [Memsys.access] per run.  "l1-hit"
   exercises the dominant path of every cache-friendly phase (TLB hit +
   L1 hit, no in-flight probe); "l1-miss-dram" pays the whole walk —
   in-flight table, L2/L3 scans, MSHR pacing and the DRAM channel.  The
   miss case strides through lines so each access misses a cold set. *)
let memsys_tests () =
  let module Machine = Spf_sim.Machine in
  let module Memsys = Spf_sim.Memsys in
  let module Dram = Spf_sim.Dram in
  let module Stats = Spf_sim.Stats in
  let module Interp = Spf_sim.Interp in
  let machine = Machine.haswell in
  let tscale = Interp.default_tscale in
  let mk () =
    let dram = Dram.create machine.Machine.dram ~tscale in
    Memsys.create machine ~tscale ~dram ~stats:(Stats.create ()) ()
  in
  let hit =
    let ms = mk () in
    ignore (Memsys.access ms ~kind:Memsys.Demand ~pc:0 ~addr:4096 ~now:0);
    Test.make ~name:"l1-hit"
      (Staged.stage (fun () ->
           ignore (Memsys.access ms ~kind:Memsys.Demand ~pc:0 ~addr:4096 ~now:0)))
  in
  let miss =
    let ms = mk () in
    let line = ref 0 in
    Test.make ~name:"l1-miss-dram"
      (Staged.stage (fun () ->
           (* A large prime stride in lines defeats every cache level
              without staying in one page: each access is a fresh DRAM
              fill, like the random phases of RA / HJ. *)
           line := !line + 8191;
           ignore
             (Memsys.access ms ~kind:Memsys.Demand ~pc:0
                ~addr:(!line * Machine.line_size)
                ~now:0)))
  in
  Test.make_grouped ~name:"memsys" [ hit; miss ]

let run_bechamel () =
  Format.printf "@.=== Microbenchmarks (Bechamel) ===@.";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  List.iter
    (fun tests ->
      let raw = Benchmark.all cfg instances tests in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      (* Hashtbl.iter order is unspecified; sort for stable output. *)
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some (t :: _) ->
              Format.printf "  %-20s %10.1f ns/run  (r² %s)@." name t
                (match Analyze.OLS.r_square ols with
                | Some r -> Printf.sprintf "%.3f" r
                | None -> "n/a")
          | Some [] | None -> Format.printf "  %-20s (no estimate)@." name)
        rows)
    [ pass_tests (); memsys_tests () ];
  0

(* ------------------------------------------------------------------ *)

(* Distance providers: the per-commit acceptance gate for the
   profile-guided subsystem — static (eq. 1, c = 64) vs profile-guided vs
   adaptive geomean speedups over the plain builds on Haswell and A53,
   with the chosen per-workload distances.  The evals are stashed so
   write_bench_json can emit them as "distance_providers". *)

let provider_evals : Profile_guided.eval list ref = ref []

let run_distance_providers ~engine =
  let ctx = Runner.ctx_of_engine (Some engine) in
  let machines = [ Spf_sim.Machine.haswell; Spf_sim.Machine.a53 ] in
  let evals =
    List.map
      (fun machine ->
        Profile_guided.evaluate ~ctx ~machine
          (Spf_harness.Benches.sweepable ()))
      machines
  in
  provider_evals := evals;
  List.iter
    (fun (e : Profile_guided.eval) ->
      Format.printf "  --- %s ---@." e.machine;
      List.iter
        (fun (r : Profile_guided.row) ->
          Format.printf
            "  %-10s static=%5.2fx  profile=%5.2fx (c=%d)  adaptive=%5.2fx@."
            r.bench
            (float_of_int r.plain_cycles /. float_of_int r.static_cycles)
            (float_of_int r.plain_cycles /. float_of_int r.profile_cycles)
            r.profile_c
            (float_of_int r.plain_cycles /. float_of_int r.adaptive_cycles))
        e.rows;
      Format.printf "  geomean    static=%.3fx  profile=%.3fx  adaptive=%.3fx@."
        e.geo_static e.geo_profile e.geo_adaptive)
    evals;
  List.fold_left
    (fun acc (e : Profile_guided.eval) ->
      List.fold_left
        (fun acc (r : Profile_guided.row) ->
          acc + r.plain_cycles + r.adaptive_cycles
          + List.fold_left (fun a (_, cy) -> a + cy) 0 r.sweep)
        acc e.rows)
    0 evals

(* ------------------------------------------------------------------ *)

(* Each piece returns the simulated cycles it executed.  [timed] is false
   for pieces that run no timing simulation (table1 profiles instruction
   mixes only) — those are recorded as skipped in BENCH.json rather than
   reported with a meaningless 0.000s wall. *)
type piece = {
  pname : string;
  timed : bool;
  run : jobs:int -> engine:Engine.t -> int;
}

let pieces : piece list =
  [
    {
      pname = "table1";
      timed = false;
      run = (fun ~jobs:_ ~engine:_ -> Figures.table1 (); 0);
    };
    { pname = "fig2"; timed = true; run = (fun ~jobs ~engine -> Figures.fig2 ~jobs ~engine ()) };
    {
      pname = "fig2-supervised";
      timed = true;
      run =
        (fun ~jobs ~engine ->
          (* The same cells as fig2, but under the whole supervision
             pipeline with its watchdog armed (a deadline no job hits) —
             no journal or bundles, so the piece isolates supervision
             overhead; BENCH.json reports it vs the raw fig2 walls. *)
          let sup =
            Spf_harness.Supervisor.(
              options
                ~policy:{ default_policy with deadline_s = Some 3600.0 }
                ~jobs ~engine ())
          in
          Figures.fig2 ~sup ());
    };
    { pname = "fig4"; timed = true; run = (fun ~jobs ~engine -> Figures.fig4 ~jobs ~engine ()) };
    { pname = "fig5"; timed = true; run = (fun ~jobs ~engine -> Figures.fig5 ~jobs ~engine ()) };
    { pname = "fig6"; timed = true; run = (fun ~jobs ~engine -> Figures.fig6 ~jobs ~engine ()) };
    { pname = "fig7"; timed = true; run = (fun ~jobs ~engine -> Figures.fig7 ~jobs ~engine ()) };
    { pname = "fig8"; timed = true; run = (fun ~jobs ~engine -> Figures.fig8 ~jobs ~engine ()) };
    { pname = "fig9"; timed = true; run = (fun ~jobs ~engine -> Figures.fig9 ~jobs ~engine ()) };
    { pname = "fig10"; timed = true; run = (fun ~jobs ~engine -> Figures.fig10 ~jobs ~engine ()) };
    {
      pname = "ablation";
      timed = true;
      run = (fun ~jobs ~engine -> Figures.ablation_flat_offsets ~jobs ~engine ());
    };
    {
      pname = "ablation-split";
      timed = true;
      run = (fun ~jobs ~engine -> Figures.ablation_split ~jobs ~engine ());
    };
    {
      pname = "distance-providers";
      timed = true;
      run = (fun ~jobs:_ ~engine -> run_distance_providers ~engine);
    };
    { pname = "bechamel"; timed = true; run = (fun ~jobs:_ ~engine:_ -> run_bechamel ()) };
  ]

let quick_set =
  [
    "table1";
    "fig2";
    "fig2-supervised";
    "fig4";
    "fig5";
    "fig7";
    "fig8";
    "fig10";
    "distance-providers";
    "bechamel";
  ]

(* Recorded serial (-j 1) single-trial baseline wall-clock per piece, in
   seconds, from the interpreter-only harness (EXPERIMENTS.md "Harness
   performance baseline").  BENCH.json reports speedup vs these numbers;
   pieces without a recorded baseline get null. *)
let baseline_wall_s : (string * float) list =
  [
    ("fig2", 4.8);
    ("fig4", 265.7);
    ("fig5", 70.9);
    ("fig7", 15.9);
    ("fig8", 45.0);
    ("fig10", 9.3);
    (* bechamel has no baseline entry: the piece gained the memsys group
       in PR 3, so its wall is not comparable to the PR-1 recording. *)
  ]

type measurement = {
  name : string;
  skipped : bool;
  walls_s : float list; (* one entry per trial, in run order *)
  cycles : int;
}

let min_wall m = List.fold_left Float.min infinity m.walls_s

let median_wall m =
  (* Float.compare, not polymorphic compare: boxed-float comparison via
     [compare] is both slower and a lurking trap (nan ordering). *)
  let a = Array.of_list m.walls_s in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 0 then infinity
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* Supervision cost of the supervision pipeline, measured piece-vs-piece:
   best supervised fig2 wall over best raw fig2 wall (acceptance: <2%).
   The driver interleaves the two pieces' trials after a shared excluded
   warmup, so both sets of walls see the same machine state — comparing
   a cold first piece against a warm second one once produced an
   impossible negative overhead.  Measurement noise can still leave the
   supervised min a hair under the raw min; that means "no measurable
   overhead", so the delta is clamped at zero rather than reported as a
   negative cost. *)
let supervised_overhead_pct (ms : measurement list) =
  let find n = List.find_opt (fun m -> m.name = n && not m.skipped) ms in
  match (find "fig2", find "fig2-supervised") with
  | Some raw, Some sup when min_wall raw > 0.0 ->
      Some
        (Float.max 0.0
           (100.0 *. (min_wall sup -. min_wall raw) /. min_wall raw))
  | _ -> None

let write_bench_json ~jobs ~engine ~trials ~total_s (ms : measurement list) =
  let oc = open_out "BENCH.json" in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  (* Schema 5: adds "distance_providers" — static vs profile-guided vs
     adaptive geomean speedups per machine with the chosen per-workload
     distances (present when the distance-providers piece ran). *)
  Buffer.add_string b "  \"schema\": 5,\n";
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string b
    (Printf.sprintf "  \"engine\": %S,\n" (Engine.to_string engine));
  Buffer.add_string b (Printf.sprintf "  \"trials\": %d,\n" trials);
  Buffer.add_string b (Printf.sprintf "  \"total_wall_s\": %.3f,\n" total_s);
  Buffer.add_string b
    (Printf.sprintf "  \"supervised_overhead_pct\": %s,\n"
       (match supervised_overhead_pct ms with
       | Some pct -> Printf.sprintf "%.2f" pct
       | None -> "null"));
  (match !provider_evals with
  | [] -> ()
  | evals ->
      Buffer.add_string b "  \"distance_providers\": [\n";
      List.iteri
        (fun i (e : Profile_guided.eval) ->
          let sep = if i = List.length evals - 1 then "" else "," in
          Buffer.add_string b
            (Printf.sprintf
               "    {\"machine\": %S, \"geo_static\": %.4f, \"geo_profile\": \
                %.4f, \"geo_adaptive\": %.4f, \"benches\": [\n"
               e.machine e.geo_static e.geo_profile e.geo_adaptive);
          List.iteri
            (fun j (r : Profile_guided.row) ->
              let rsep = if j = List.length e.rows - 1 then "" else "," in
              Buffer.add_string b
                (Printf.sprintf
                   "      {\"bench\": %S, \"profile_c\": %d, \"plain_cycles\": \
                    %d, \"static_cycles\": %d, \"profile_cycles\": %d, \
                    \"adaptive_cycles\": %d, \"adaptive_windows\": %d}%s\n"
                   r.bench r.profile_c r.plain_cycles r.static_cycles
                   r.profile_cycles r.adaptive_cycles r.adaptive_windows rsep))
            e.rows;
          Buffer.add_string b (Printf.sprintf "    ]}%s\n" sep))
        evals;
      Buffer.add_string b "  ],\n");
  Buffer.add_string b "  \"pieces\": [\n";
  List.iteri
    (fun i m ->
      let sep = if i = List.length ms - 1 then "" else "," in
      if m.skipped then
        Buffer.add_string b
          (Printf.sprintf "    {\"name\": %S, \"skipped\": true}%s\n" m.name sep)
      else begin
        let wmin = min_wall m and wmed = median_wall m in
        let speedup =
          match List.assoc_opt m.name baseline_wall_s with
          | Some base when wmin > 0.0 -> Printf.sprintf "%.2f" (base /. wmin)
          | _ -> "null"
        in
        Buffer.add_string b
          (Printf.sprintf
             "    {\"name\": %S, \"wall_min_s\": %.3f, \"wall_median_s\": \
              %.3f, \"trials\": %d, \"cycles\": %d, \"speedup_vs_baseline\": \
              %s}%s\n"
             m.name wmin wmed (List.length m.walls_s) m.cycles speedup sep)
      end)
    ms;
  Buffer.add_string b "  ]\n}\n";
  output_string oc (Buffer.contents b);
  close_out oc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Parse -j/--jobs N, --trials T and --engine E anywhere on the command
     line; remaining words select pieces. *)
  let jobs = ref None and trials = ref 3 and engine = ref Engine.default in
  let rec split acc = function
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs := Some j;
            split acc rest
        | _ ->
            Format.eprintf "invalid jobs count %S@." n;
            exit 2)
    | "--trials" :: n :: rest -> (
        match int_of_string_opt n with
        | Some t when t >= 1 ->
            trials := t;
            split acc rest
        | _ ->
            Format.eprintf "invalid trial count %S@." n;
            exit 2)
    | "--engine" :: e :: rest -> (
        match Engine.of_string e with
        | Some e ->
            engine := e;
            split acc rest
        | None ->
            Format.eprintf "invalid engine %S (expected %s)@." e
              (String.concat "|" (List.map Engine.to_string Engine.all));
            exit 2)
    | x :: rest -> split (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = split [] args in
  let jobs = match !jobs with Some j -> j | None -> Pool.default_jobs () in
  let trials = !trials and engine = !engine in
  let selected =
    match args with
    | [] -> List.map (fun p -> p.pname) pieces
    | [ "quick" ] -> quick_set
    | names -> names
  in
  let t0 = Unix.gettimeofday () in
  let measurements = ref [] in
  let timed_run p =
    let t = Unix.gettimeofday () in
    let cycles = p.run ~jobs ~engine in
    (Unix.gettimeofday () -. t, cycles)
  in
  let record m n =
    measurements := m :: !measurements;
    if not m.skipped then
      Format.printf "  [%s: min %.1fs, median %.1fs over %d trials]@." m.name
        (min_wall m) (median_wall m) n
  in
  let find_piece name = List.find_opt (fun p -> p.pname = name) pieces in
  (* fig2 and fig2-supervised exist to be compared, so when both are
     selected their trials interleave (raw, supervised, raw, ...) after
     one shared warmup run that no sample keeps: measuring one piece
     cold and the other warm once produced a negative "overhead". *)
  let handled = ref [] in
  List.iter
    (fun name ->
      if List.mem name !handled then ()
      else
        match find_piece name with
        | Some p ->
            let partner =
              match name with
              | "fig2" -> Some "fig2-supervised"
              | "fig2-supervised" -> Some "fig2"
              | _ -> None
            in
            (match partner with
            | Some other when List.mem other selected ->
                handled := other :: !handled;
                let praw = Option.get (find_piece "fig2") in
                let psup = Option.get (find_piece "fig2-supervised") in
                ignore (timed_run praw) (* shared warmup, excluded *);
                let wraw = ref [] and wsup = ref [] in
                let craw = ref 0 and csup = ref 0 in
                for _ = 1 to trials do
                  let w, c = timed_run praw in
                  wraw := w :: !wraw;
                  craw := c;
                  let w, c = timed_run psup in
                  wsup := w :: !wsup;
                  csup := c
                done;
                record
                  {
                    name = "fig2";
                    skipped = false;
                    walls_s = List.rev !wraw;
                    cycles = !craw;
                  }
                  trials;
                record
                  {
                    name = "fig2-supervised";
                    skipped = false;
                    walls_s = List.rev !wsup;
                    cycles = !csup;
                  }
                  trials
            | _ ->
                (* Untimed pieces run once (their output is the point);
                   timed pieces run [trials] times and record every wall
                   sample. *)
                let n = if p.timed then trials else 1 in
                let walls = ref [] and cycles = ref 0 in
                for _ = 1 to n do
                  let w, c = timed_run p in
                  walls := w :: !walls;
                  cycles := c
                done;
                record
                  {
                    name;
                    skipped = not p.timed;
                    walls_s = List.rev !walls;
                    cycles = !cycles;
                  }
                  n)
        | None ->
            Format.eprintf "unknown piece %S; known: quick %s@." name
              (String.concat " " (List.map (fun p -> p.pname) pieces)))
    selected;
  let total_s = Unix.gettimeofday () -. t0 in
  Format.printf "@.total wall time: %.1fs (jobs=%d, trials=%d, engine=%s)@."
    total_s jobs trials (Engine.to_string engine);
  write_bench_json ~jobs ~engine ~trials ~total_s (List.rev !measurements);
  Format.printf "wrote BENCH.json@."
