(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5–§6) through the simulator, then microbenchmarks the
   compiler pass itself with Bechamel.

   Figure pieces run their independent simulations concurrently on a
   domain pool (output stays byte-identical to a serial run — see
   docs/PERFORMANCE.md), and every invocation writes BENCH.json next to
   the human-readable output so the performance trajectory is tracked.

   Usage:
     main.exe [-j N]                 run everything
     main.exe [-j N] quick           skip the slowest figures (fig6, fig9)
     main.exe [-j N] fig4 fig7 ...   run selected pieces only              *)

module Figures = Spf_harness.Figures
module Pool = Spf_harness.Pool

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: compile-time cost of the pass (analysis +
   code generation) on each kernel's IR.  One Test.make per kernel; the
   IR is rebuilt inside the staged closure because the pass mutates it. *)

open Bechamel
open Toolkit

let pass_test ~name build_func =
  Test.make ~name
    (Staged.stage (fun () ->
         let f = build_func () in
         ignore (Spf_core.Pass.run f)))

let pass_tests () =
  let module Is = Spf_workloads.Is in
  let module Cg = Spf_workloads.Cg in
  let module Ra = Spf_workloads.Ra in
  let module Hj = Spf_workloads.Hj in
  let module G500 = Spf_workloads.G500 in
  let g =
    G500.kronecker { G500.scale = 8; edge_factor = 8; seed = 1; max_vertices = None }
  in
  Test.make_grouped ~name:"pass"
    [
      pass_test ~name:"IS" (fun () -> Is.build_func Is.default);
      pass_test ~name:"CG" (fun () -> Cg.build_func Cg.default);
      pass_test ~name:"RA" (fun () -> Ra.build_func Ra.default);
      pass_test ~name:"HJ-2" (fun () -> Hj.build_func Hj.default_hj2);
      pass_test ~name:"HJ-8" (fun () -> Hj.build_func Hj.default_hj8);
      pass_test ~name:"G500" (fun () -> G500.build_func g);
    ]

let run_bechamel () =
  Format.printf "@.=== Pass compile-time microbenchmarks (Bechamel) ===@.";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances (pass_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) ->
          Format.printf "  %-12s %10.1f ns/run  (r² %s)@." name t
            (match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "n/a")
      | Some [] | None -> Format.printf "  %-12s (no estimate)@." name)
    results;
  0

(* ------------------------------------------------------------------ *)

(* Each piece returns the simulated cycles it executed (0 for the pieces
   that run no timing simulation). *)
let pieces : (string * (jobs:int -> int)) list =
  [
    ("table1", fun ~jobs:_ -> Figures.table1 (); 0);
    ("fig2", fun ~jobs -> Figures.fig2 ~jobs ());
    ("fig4", fun ~jobs -> Figures.fig4 ~jobs ());
    ("fig5", fun ~jobs -> Figures.fig5 ~jobs ());
    ("fig6", fun ~jobs -> Figures.fig6 ~jobs ());
    ("fig7", fun ~jobs -> Figures.fig7 ~jobs ());
    ("fig8", fun ~jobs -> Figures.fig8 ~jobs ());
    ("fig9", fun ~jobs -> Figures.fig9 ~jobs ());
    ("fig10", fun ~jobs -> Figures.fig10 ~jobs ());
    ("ablation", fun ~jobs -> Figures.ablation_flat_offsets ~jobs ());
    ("ablation-split", fun ~jobs -> Figures.ablation_split ~jobs ());
    ("bechamel", fun ~jobs:_ -> run_bechamel ());
  ]

let quick_set =
  [ "table1"; "fig2"; "fig4"; "fig5"; "fig7"; "fig8"; "fig10"; "bechamel" ]

(* Recorded serial (-j 1) baseline wall-clock per piece, in seconds, from
   the first run of this harness (EXPERIMENTS.md "Harness performance
   baseline").  BENCH.json reports speedup vs these numbers; pieces
   without a recorded baseline get null. *)
let baseline_wall_s : (string * float) list =
  [
    ("fig2", 4.8);
    ("fig4", 265.7);
    ("fig5", 70.9);
    ("fig7", 15.9);
    ("fig8", 45.0);
    ("fig10", 9.3);
    ("bechamel", 2.5);
  ]

type measurement = { name : string; wall_s : float; cycles : int }

let write_bench_json ~jobs ~total_s (ms : measurement list) =
  let oc = open_out "BENCH.json" in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": 1,\n";
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string b (Printf.sprintf "  \"total_wall_s\": %.3f,\n" total_s);
  Buffer.add_string b "  \"pieces\": [\n";
  List.iteri
    (fun i m ->
      let speedup =
        match List.assoc_opt m.name baseline_wall_s with
        | Some base when m.wall_s > 0.0 ->
            Printf.sprintf "%.2f" (base /. m.wall_s)
        | _ -> "null"
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"wall_s\": %.3f, \"cycles\": %d, \
            \"speedup_vs_baseline\": %s}%s\n"
           m.name m.wall_s m.cycles speedup
           (if i = List.length ms - 1 then "" else ",")))
    ms;
  Buffer.add_string b "  ]\n}\n";
  output_string oc (Buffer.contents b);
  close_out oc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Parse -j/--jobs N anywhere on the command line. *)
  let rec split_jobs acc = function
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
        | _ ->
            Format.eprintf "invalid jobs count %S@." n;
            exit 2)
    | x :: rest -> split_jobs (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let jobs_opt, args = split_jobs [] args in
  let jobs = match jobs_opt with Some j -> j | None -> Pool.default_jobs () in
  let selected =
    match args with
    | [] -> List.map fst pieces
    | [ "quick" ] -> quick_set
    | names -> names
  in
  let t0 = Unix.gettimeofday () in
  let measurements = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt name pieces with
      | Some f ->
          let t = Unix.gettimeofday () in
          let cycles = f ~jobs in
          let wall_s = Unix.gettimeofday () -. t in
          measurements := { name; wall_s; cycles } :: !measurements;
          Format.printf "  [%s: %.1fs]@." name wall_s
      | None ->
          Format.eprintf "unknown piece %S; known: quick %s@." name
            (String.concat " " (List.map fst pieces)))
    selected;
  let total_s = Unix.gettimeofday () -. t0 in
  Format.printf "@.total wall time: %.1fs (jobs=%d)@." total_s jobs;
  write_bench_json ~jobs ~total_s (List.rev !measurements);
  Format.printf "wrote BENCH.json@."
