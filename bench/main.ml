(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5–§6) through the simulator, then microbenchmarks the
   compiler pass and the simulator's memory system with Bechamel.

   Figure pieces run their independent simulations concurrently on a
   domain pool (output stays byte-identical to a serial run — see
   docs/PERFORMANCE.md), and every invocation writes BENCH.json next to
   the human-readable output so the performance trajectory is tracked.
   Each piece is timed over several trials (min and median recorded) so a
   one-off scheduling hiccup cannot masquerade as a regression.

   Usage:
     main.exe [-j N] [--trials T] [--engine E]         run everything
     main.exe [...] quick           skip the slowest figures (fig6, fig9)
     main.exe [...] fig4 fig7 ...   run selected pieces only              *)

module Figures = Spf_harness.Figures
module Pool = Spf_harness.Pool
module Engine = Spf_sim.Engine
module Profile_guided = Spf_harness.Profile_guided
module Runner = Spf_harness.Runner
module Bench_json = Spf_harness.Bench_json

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks. *)

open Bechamel
open Toolkit

(* Compile-time cost of the pass (analysis + code generation) on each
   kernel's IR.  One Test.make per kernel; the IR is rebuilt inside the
   staged closure because the pass mutates it. *)
let pass_test ~name build_func =
  Test.make ~name
    (Staged.stage (fun () ->
         let f = build_func () in
         ignore (Spf_core.Pass.run f)))

let pass_tests () =
  let module Is = Spf_workloads.Is in
  let module Cg = Spf_workloads.Cg in
  let module Ra = Spf_workloads.Ra in
  let module Hj = Spf_workloads.Hj in
  let module G500 = Spf_workloads.G500 in
  let g =
    G500.kronecker { G500.scale = 8; edge_factor = 8; seed = 1; max_vertices = None }
  in
  Test.make_grouped ~name:"pass"
    [
      pass_test ~name:"IS" (fun () -> Is.build_func Is.default);
      pass_test ~name:"CG" (fun () -> Cg.build_func Cg.default);
      pass_test ~name:"RA" (fun () -> Ra.build_func Ra.default);
      pass_test ~name:"HJ-2" (fun () -> Hj.build_func Hj.default_hj2);
      pass_test ~name:"HJ-8" (fun () -> Hj.build_func Hj.default_hj8);
      pass_test ~name:"G500" (fun () -> G500.build_func g);
    ]

(* Memory-system fast paths: one [Memsys.access] per run.  "l1-hit"
   exercises the dominant path of every cache-friendly phase (TLB hit +
   L1 hit, no in-flight probe); "l1-miss-dram" pays the whole walk —
   in-flight table, L2/L3 scans, MSHR pacing and the DRAM channel.  The
   miss case strides through lines so each access misses a cold set. *)
let memsys_tests () =
  let module Machine = Spf_sim.Machine in
  let module Memsys = Spf_sim.Memsys in
  let module Dram = Spf_sim.Dram in
  let module Stats = Spf_sim.Stats in
  let module Interp = Spf_sim.Interp in
  let machine = Machine.haswell in
  let tscale = Interp.default_tscale in
  let mk () =
    let dram = Dram.create machine.Machine.dram ~tscale in
    Memsys.create machine ~tscale ~dram ~stats:(Stats.create ()) ()
  in
  let hit =
    let ms = mk () in
    ignore (Memsys.access ms ~kind:Memsys.Demand ~pc:0 ~addr:4096 ~now:0);
    Test.make ~name:"l1-hit"
      (Staged.stage (fun () ->
           ignore (Memsys.access ms ~kind:Memsys.Demand ~pc:0 ~addr:4096 ~now:0)))
  in
  let miss =
    let ms = mk () in
    let line = ref 0 in
    Test.make ~name:"l1-miss-dram"
      (Staged.stage (fun () ->
           (* A large prime stride in lines defeats every cache level
              without staying in one page: each access is a fresh DRAM
              fill, like the random phases of RA / HJ. *)
           line := !line + 8191;
           ignore
             (Memsys.access ms ~kind:Memsys.Demand ~pc:0
                ~addr:(!line * Machine.line_size)
                ~now:0)))
  in
  Test.make_grouped ~name:"memsys" [ hit; miss ]

let run_bechamel () =
  Format.printf "@.=== Microbenchmarks (Bechamel) ===@.";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  List.iter
    (fun tests ->
      let raw = Benchmark.all cfg instances tests in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      (* Hashtbl.iter order is unspecified; sort for stable output. *)
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some (t :: _) ->
              Format.printf "  %-20s %10.1f ns/run  (r² %s)@." name t
                (match Analyze.OLS.r_square ols with
                | Some r -> Printf.sprintf "%.3f" r
                | None -> "n/a")
          | Some [] | None -> Format.printf "  %-20s (no estimate)@." name)
        rows)
    [ pass_tests (); memsys_tests () ];
  0

(* ------------------------------------------------------------------ *)

(* Distance providers: the per-commit acceptance gate for the
   profile-guided subsystem — static (eq. 1, c = 64) vs profile-guided vs
   adaptive geomean speedups over the plain builds on Haswell and A53,
   with the chosen per-workload distances.  The evals are stashed so
   write_bench_json can emit them as "distance_providers". *)

let provider_evals : Profile_guided.eval list ref = ref []

let run_distance_providers ~engine =
  let ctx = Runner.ctx_of_engine (Some engine) in
  let machines = [ Spf_sim.Machine.haswell; Spf_sim.Machine.a53 ] in
  let evals =
    List.map
      (fun machine ->
        Profile_guided.evaluate ~ctx ~machine
          (Spf_harness.Benches.sweepable ()))
      machines
  in
  provider_evals := evals;
  List.iter
    (fun (e : Profile_guided.eval) ->
      Format.printf "  --- %s ---@." e.machine;
      List.iter
        (fun (r : Profile_guided.row) ->
          Format.printf
            "  %-10s static=%5.2fx  profile=%5.2fx (c=%d)  adaptive=%5.2fx@."
            r.bench
            (float_of_int r.plain_cycles /. float_of_int r.static_cycles)
            (float_of_int r.plain_cycles /. float_of_int r.profile_cycles)
            r.profile_c
            (float_of_int r.plain_cycles /. float_of_int r.adaptive_cycles))
        e.rows;
      Format.printf "  geomean    static=%.3fx  profile=%.3fx  adaptive=%.3fx@."
        e.geo_static e.geo_profile e.geo_adaptive)
    evals;
  List.fold_left
    (fun acc (e : Profile_guided.eval) ->
      List.fold_left
        (fun acc (r : Profile_guided.row) ->
          acc + r.plain_cycles + r.adaptive_cycles
          + List.fold_left (fun a (_, cy) -> a + cy) 0 r.sweep)
        acc e.rows)
    0 evals

(* ------------------------------------------------------------------ *)

(* The serve piece: start the compile-and-simulate service in-process on
   a temp Unix socket and replay the standard loadtest against it — 1000
   fuzz-generated programs, 50% duplication, concurrency 8.  The result
   (latency split, throughput, cache hit rate, corruption counters) is
   stashed for BENCH.json's "serve" section; the piece's own wall time is
   the loadtest wall plus server start/stop.

   The run is journaled: after the loadtest the server drains (which
   snapshots the cache journal), a second server starts on the same
   journal, and a shorter replay over a prefix of the same program pool
   measures the warm-start hit rate — how much of the cache a restart
   actually keeps. *)

let serve_result : Spf_serve.Loadtest.result option ref = ref None
let serve_warm : (float * int) option ref = ref None

let run_serve ~jobs ~engine =
  let sock = Filename.temp_file "spf-bench-serve" ".sock" in
  Sys.remove sock;
  let jdir = Filename.temp_file "spf-bench-journal" "" in
  Sys.remove jdir;
  let cfg =
    {
      (Spf_serve.Server.default_cfg (Unix_sock sock)) with
      jobs;
      journal_dir = Some jdir;
    }
  in
  let opts = [ ("engine", Engine.to_string engine) ] in
  let connect () = Spf_serve.Client.connect_unix sock in
  let server = Spf_serve.Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Spf_serve.Server.stop server;
      Spf_serve.Server.wait server)
    (fun () ->
      let r =
        Spf_serve.Loadtest.run ~count:1000 ~dup:0.5 ~concurrency:8 ~opts
          ~connect ()
      in
      serve_result := Some r;
      Format.printf "  %a@." Spf_serve.Loadtest.pp r);
  (* Warm restart on the journal the drain just snapshotted.  The
     replay uses the same seed, so its 100-program pool is a prefix of
     the 500 distinct programs above: every request has been seen. *)
  let server2 = Spf_serve.Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Spf_serve.Server.stop server2;
      Spf_serve.Server.wait server2)
    (fun () ->
      let js = Spf_serve.Rcache.journal_stats (Spf_serve.Server.cache server2) in
      let replayed =
        js.Spf_serve.Rcache.replayed_pass + js.Spf_serve.Rcache.replayed_sim
      in
      let wr =
        Spf_serve.Loadtest.run ~count:200 ~dup:0.5 ~concurrency:8 ~opts
          ~connect ()
      in
      serve_warm := Some (wr.Spf_serve.Loadtest.hit_rate, replayed);
      Format.printf
        "  warm restart: hit rate %.1f%% over %d requests (journal replayed \
         %d records)@."
        (100. *. wr.Spf_serve.Loadtest.hit_rate)
        wr.Spf_serve.Loadtest.programs replayed);
  (try Sys.remove (Filename.concat jdir "cache-journal") with Sys_error _ -> ());
  (try Unix.rmdir jdir with Unix.Unix_error _ -> ());
  0

(* ------------------------------------------------------------------ *)

(* Each piece returns the simulated cycles it executed.  [timed] is false
   for pieces that run no timing simulation (table1 profiles instruction
   mixes only) — those are recorded as skipped in BENCH.json rather than
   reported with a meaningless 0.000s wall. *)
type piece = {
  pname : string;
  timed : bool;
  run : jobs:int -> engine:Engine.t -> int;
}

let pieces : piece list =
  [
    {
      pname = "table1";
      timed = false;
      run = (fun ~jobs:_ ~engine:_ -> Figures.table1 (); 0);
    };
    { pname = "fig2"; timed = true; run = (fun ~jobs ~engine -> Figures.fig2 ~jobs ~engine ()) };
    {
      pname = "fig2-supervised";
      timed = true;
      run =
        (fun ~jobs ~engine ->
          (* The same cells as fig2, but under the whole supervision
             pipeline with its watchdog armed (a deadline no job hits) —
             no journal or bundles, so the piece isolates supervision
             overhead; BENCH.json reports it vs the raw fig2 walls. *)
          let sup =
            Spf_harness.Supervisor.(
              options
                ~policy:{ default_policy with deadline_s = Some 3600.0 }
                ~jobs ~engine ())
          in
          Figures.fig2 ~sup ());
    };
    { pname = "fig4"; timed = true; run = (fun ~jobs ~engine -> Figures.fig4 ~jobs ~engine ()) };
    { pname = "fig5"; timed = true; run = (fun ~jobs ~engine -> Figures.fig5 ~jobs ~engine ()) };
    { pname = "fig6"; timed = true; run = (fun ~jobs ~engine -> Figures.fig6 ~jobs ~engine ()) };
    { pname = "fig7"; timed = true; run = (fun ~jobs ~engine -> Figures.fig7 ~jobs ~engine ()) };
    { pname = "fig8"; timed = true; run = (fun ~jobs ~engine -> Figures.fig8 ~jobs ~engine ()) };
    { pname = "fig9"; timed = true; run = (fun ~jobs ~engine -> Figures.fig9 ~jobs ~engine ()) };
    { pname = "fig10"; timed = true; run = (fun ~jobs ~engine -> Figures.fig10 ~jobs ~engine ()) };
    {
      pname = "ablation";
      timed = true;
      run = (fun ~jobs ~engine -> Figures.ablation_flat_offsets ~jobs ~engine ());
    };
    {
      pname = "ablation-split";
      timed = true;
      run = (fun ~jobs ~engine -> Figures.ablation_split ~jobs ~engine ());
    };
    {
      pname = "distance-providers";
      timed = true;
      run = (fun ~jobs:_ ~engine -> run_distance_providers ~engine);
    };
    {
      pname = "serve";
      timed = true;
      run = (fun ~jobs ~engine -> run_serve ~jobs ~engine);
    };
    { pname = "bechamel"; timed = true; run = (fun ~jobs:_ ~engine:_ -> run_bechamel ()) };
  ]

let quick_set =
  [
    "table1";
    "fig2";
    "fig2-supervised";
    "fig4";
    "fig5";
    "fig7";
    "fig8";
    "fig10";
    "distance-providers";
    "serve";
    "bechamel";
  ]

(* Measurement record-keeping and BENCH.json rendering live in
   Spf_harness.Bench_json so the field semantics are unit-tested. *)

let write_bench_json ~jobs ~engine ~trials ~total_s ms =
  let serve =
    Option.map
      (fun (r : Spf_serve.Loadtest.result) ->
        {
          Bench_json.sv_requests = r.programs;
          sv_distinct = r.distinct;
          sv_concurrency = r.concurrency;
          sv_errors = r.errors;
          sv_dropped = r.dropped;
          sv_corrupted = r.corrupted;
          sv_cold = r.cold;
          sv_pass_hits = r.pass_hits;
          sv_sim_hits = r.sim_hits;
          sv_p50_us = r.p50_us;
          sv_p99_us = r.p99_us;
          sv_cold_p50_us = r.cold_p50_us;
          sv_hit_p50_us = r.hit_p50_us;
          sv_throughput_rps = r.throughput_rps;
          sv_hit_rate = r.hit_rate;
          sv_warm_hit_rate =
            (match !serve_warm with Some (hr, _) -> hr | None -> 0.);
          sv_journal_replayed =
            (match !serve_warm with Some (_, n) -> n | None -> 0);
        })
      !serve_result
  in
  Bench_json.write ~path:"BENCH.json" ~jobs ~engine ~trials ~total_s
    ~providers:!provider_evals ?serve ms

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Parse -j/--jobs N, --trials T and --engine E anywhere on the command
     line; remaining words select pieces. *)
  let jobs = ref None and trials = ref 3 and engine = ref Engine.default in
  let rec split acc = function
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs := Some j;
            split acc rest
        | _ ->
            Format.eprintf "invalid jobs count %S@." n;
            exit 2)
    | "--trials" :: n :: rest -> (
        match int_of_string_opt n with
        | Some t when t >= 1 ->
            trials := t;
            split acc rest
        | _ ->
            Format.eprintf "invalid trial count %S@." n;
            exit 2)
    | "--engine" :: e :: rest -> (
        match Engine.of_string e with
        | Some e ->
            engine := e;
            split acc rest
        | None ->
            Format.eprintf "invalid engine %S (expected %s)@." e
              (String.concat "|" (List.map Engine.to_string Engine.all));
            exit 2)
    | x :: rest -> split (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = split [] args in
  let jobs = match !jobs with Some j -> j | None -> Pool.default_jobs () in
  let trials = !trials and engine = !engine in
  let selected =
    match args with
    | [] -> List.map (fun p -> p.pname) pieces
    | [ "quick" ] -> quick_set
    | names -> names
  in
  let t0 = Unix.gettimeofday () in
  let measurements = ref [] in
  let timed_run p =
    let t = Unix.gettimeofday () in
    let cycles = p.run ~jobs ~engine in
    (Unix.gettimeofday () -. t, cycles)
  in
  let record (m : Bench_json.measurement) n =
    measurements := m :: !measurements;
    if not m.skipped then
      Format.printf "  [%s: min %.1fs, median %.1fs over %d trials]@." m.name
        (Bench_json.min_wall m) (Bench_json.median_wall m) n
  in
  let find_piece name = List.find_opt (fun p -> p.pname = name) pieces in
  (* fig2 and fig2-supervised exist to be compared, so when both are
     selected their trials interleave (raw, supervised, raw, ...) after
     one shared warmup run that no sample keeps: measuring one piece
     cold and the other warm once produced a negative "overhead". *)
  let handled = ref [] in
  List.iter
    (fun name ->
      if List.mem name !handled then ()
      else
        match find_piece name with
        | Some p ->
            let partner =
              match name with
              | "fig2" -> Some "fig2-supervised"
              | "fig2-supervised" -> Some "fig2"
              | _ -> None
            in
            (match partner with
            | Some other when List.mem other selected ->
                handled := other :: !handled;
                let praw = Option.get (find_piece "fig2") in
                let psup = Option.get (find_piece "fig2-supervised") in
                ignore (timed_run praw) (* shared warmup, excluded *);
                let wraw = ref [] and wsup = ref [] in
                let craw = ref 0 and csup = ref 0 in
                for _ = 1 to trials do
                  let w, c = timed_run praw in
                  wraw := w :: !wraw;
                  craw := c;
                  let w, c = timed_run psup in
                  wsup := w :: !wsup;
                  csup := c
                done;
                record
                  {
                    Bench_json.name = "fig2";
                    skipped = false;
                    walls_s = List.rev !wraw;
                    cycles = !craw;
                  }
                  trials;
                record
                  {
                    Bench_json.name = "fig2-supervised";
                    skipped = false;
                    walls_s = List.rev !wsup;
                    cycles = !csup;
                  }
                  trials
            | _ ->
                (* Untimed pieces run once (their output is the point);
                   timed pieces run [trials] times and record every wall
                   sample. *)
                let n = if p.timed then trials else 1 in
                let walls = ref [] and cycles = ref 0 in
                for _ = 1 to n do
                  let w, c = timed_run p in
                  walls := w :: !walls;
                  cycles := c
                done;
                record
                  {
                    Bench_json.name;
                    skipped = not p.timed;
                    walls_s = List.rev !walls;
                    cycles = !cycles;
                  }
                  n)
        | None ->
            Format.eprintf "unknown piece %S; known: quick %s@." name
              (String.concat " " (List.map (fun p -> p.pname) pieces)))
    selected;
  let total_s = Unix.gettimeofday () -. t0 in
  Format.printf "@.total wall time: %.1fs (jobs=%d, trials=%d, engine=%s)@."
    total_s jobs trials (Engine.to_string engine);
  write_bench_json ~jobs ~engine ~trials ~total_s (List.rev !measurements);
  Format.printf "wrote BENCH.json@."
