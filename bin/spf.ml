(* spf — command-line driver for the software-prefetching reproduction.

   Subcommands:
     list                      available benchmarks and machines
     show <bench>              dump a benchmark's IR before/after the pass
     run <bench>               simulate one benchmark on one machine
     fig <id>|all              regenerate a paper figure/table
     sweep <bench>             look-ahead sweep for one benchmark
     profile <bench>           per-load hit/miss attribution (untimed)
     split <bench>             loop splitting + clamp-free prefetching
     fuzz                      differential fuzzing of the pass
     validate <case>           translation validation: proof or counterexample
     replay <bundle>           re-run a crash bundle offline

   Campaign subcommands (fig, fuzz) take --resume DIR / --deadline /
   --retries, which run the simulations under Spf_harness.Supervisor:
   per-job deadlines, bounded retry, checkpoint/resume (byte-identical
   stdout) and replayable crash bundles under DIR/bundles.  Exit codes:
   0 success, 1 fuzz divergence, 3 supervised campaign incomplete. *)

module Machine = Spf_sim.Machine
module Workload = Spf_workloads.Workload
module Benches = Spf_harness.Benches
module Figures = Spf_harness.Figures
module Runner = Spf_harness.Runner
open Cmdliner

let bench_conv =
  let parse s =
    match
      List.find_opt
        (fun (b : Benches.bench) ->
          String.lowercase_ascii b.id = String.lowercase_ascii s)
        (Benches.all ())
    with
    | Some b -> Ok b
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown benchmark %S (try: %s)" s
               (String.concat ", "
                  (List.map (fun (b : Benches.bench) -> b.id) (Benches.all ())))))
  in
  Arg.conv (parse, fun fmt (b : Benches.bench) -> Format.pp_print_string fmt b.id)

let machine_conv =
  let parse s =
    match Machine.by_name s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown machine %S (try: %s)" s
               (String.concat ", " (List.map (fun m -> m.Machine.name) Machine.all))))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt m.Machine.name)

let machine_arg =
  Arg.(
    value
    & opt machine_conv Machine.haswell
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:"Target machine model (haswell, a57, a53, xeonphi).")

let engine_arg =
  let alts =
    List.map
      (fun e -> (Spf_sim.Engine.to_string e, e))
      Spf_sim.Engine.all
  in
  Arg.(
    value
    & opt (enum alts) Spf_sim.Engine.default
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Simulator engine: $(b,interp) (classic instruction walker), \
           $(b,compiled) (pre-decoded micro-op closures) or $(b,tape) \
           (struct-of-arrays micro-op tape with superblock fall-through, \
           the default).  All three are bit-identical; tape is \
           fastest.")

type variant = Baseline | Auto | Icc | Manual

let variant_arg =
  let alts =
    [ ("baseline", Baseline); ("auto", Auto); ("icc", Icc); ("manual", Manual) ]
  in
  Arg.(
    value
    & opt (enum alts) Auto
    & info [ "v"; "variant" ] ~docv:"VARIANT"
        ~doc:"baseline | auto (our pass) | icc (restricted model) | manual.")

let c_arg =
  Arg.(
    value
    & opt int 64
    & info [ "c" ] ~docv:"C" ~doc:"Look-ahead constant of eq. (1).")

let assume_margin_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "assume-margin" ] ~docv:"BYTES"
        ~doc:
          "(testing) Deliberately unsound pass variant: look-ahead \
           address offsets of at most $(docv) bytes skip the §4.2 \
           fault-avoidance clamp.  Exists so the validator and the \
           symbolic fuzz oracle can be shown to catch the faults this \
           introduces.")

let with_margin margin config =
  match margin with
  | None -> config
  | Some m -> { config with Spf_core.Config.assume_margin = m }

(* --- distance-provider flags ------------------------------------------ *)

let provider_kind_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("static", `Static);
                ("fixed", `Fixed);
                ("profile", `Profile);
                ("adaptive", `Adaptive);
              ]))
        None
    & info [ "distance-provider" ] ~docv:"PROVIDER"
        ~doc:
          "Where each loop's look-ahead distance comes from: $(b,static) \
           (eq. 1 with $(b,--c), the paper's default), $(b,fixed) \
           (per-loop $(b,--dist-loop) overrides), $(b,profile) (a signed \
           profile file from $(b,spf profile -o), via $(b,--profile-in)), \
           or $(b,adaptive) (per-loop distance registers re-tuned online \
           by the simulator's windowed controller).")

let profile_in_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-in" ] ~docv:"FILE"
        ~doc:
          "Profile file for $(b,--distance-provider=profile), as written \
           by $(b,spf profile BENCH -o FILE).  Profiles are stamped with \
           a digest of the plain program and the machine model; a stale \
           or mismatched file is rejected with a diagnostic (exit 2).")

let dist_loop_arg =
  Arg.(
    value
    & opt_all (pair ~sep:'=' int int) []
    & info [ "dist-loop" ] ~docv:"HEADER=C"
        ~doc:
          "With $(b,--distance-provider=fixed): look-ahead constant for \
           the loop whose pre-pass header block is $(i,HEADER) \
           (repeatable).  A value <= 0 disables prefetching for that \
           loop.")

let die fmtstr =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "%s@." msg;
      exit 2)
    fmtstr

(* Resolve the provider flags against the plain (pre-pass) program —
   profile files are validated here, so a stale file dies with its
   diagnostic before any simulation runs. *)
let resolve_provider kind ~dist_loops ~profile_in ~c ~(machine : Machine.t)
    ~(func : Spf_ir.Ir.func) =
  match kind with
  | None | Some `Static -> Spf_core.Distance.Static
  | Some `Fixed ->
      Spf_core.Distance.Fixed { default_c = Some c; per_loop = dist_loops }
  | Some `Adaptive ->
      Spf_core.Distance.Adaptive Spf_core.Distance.default_adaptive
  | Some `Profile -> (
      match profile_in with
      | None -> die "spf: --distance-provider=profile needs --profile-in FILE"
      | Some file -> (
          match Spf_core.Profdata.load file with
          | Error msg -> die "spf: %s" msg
          | Ok pd -> (
              match
                Spf_core.Profdata.check pd ~func ~machine:machine.Machine.name
              with
              | Error msg -> die "spf: %s: %s" file msg
              | Ok () -> Spf_core.Profdata.provider pd)))

let build_variant (b : Benches.bench) variant ~machine ~c =
  match variant with
  | Baseline -> b.Benches.plain ()
  | Auto ->
      Benches.auto
        ~config:(Spf_core.Config.with_c c Spf_core.Config.default)
        (b.Benches.plain ())
  | Icc ->
      Benches.icc
        ~config:(Spf_core.Config.with_c c Spf_core.Config.default)
        (b.Benches.plain ())
  | Manual -> b.Benches.manual ~machine ~c:(Some c)

(* --- list ------------------------------------------------------------- *)

let list_cmd =
  let doc = "List benchmarks and machine models." in
  let run () =
    Format.printf "benchmarks:@.";
    List.iter
      (fun (b : Benches.bench) -> Format.printf "  %s@." b.id)
      (Benches.all ());
    Format.printf "machines:@.";
    List.iter (fun m -> Format.printf "  %a@." Machine.pp m) Machine.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- show ------------------------------------------------------------- *)

let show_cmd =
  let doc = "Dump a benchmark's IR before and after the prefetching pass." in
  let run bench c =
    let b = bench.Benches.plain () in
    Format.printf "=== %s: IR before the pass ===@.%s@." b.Workload.name
      (Spf_ir.Printer.func_to_string b.Workload.func);
    let report =
      Spf_core.Pass.run
        ~config:(Spf_core.Config.with_c c Spf_core.Config.default)
        b.Workload.func
    in
    Format.printf "=== pass report ===@.%a@."
      (Spf_core.Pass.pp_report b.Workload.func)
      report;
    Format.printf "=== IR after the pass ===@.%s@."
      (Spf_ir.Printer.func_to_string b.Workload.func)
  in
  Cmd.v
    (Cmd.info "show" ~doc)
    Term.(
      const run
      $ Arg.(required & pos 0 (some bench_conv) None & info [] ~docv:"BENCH")
      $ c_arg)

(* --- run -------------------------------------------------------------- *)

let run_cmd =
  let doc = "Simulate one benchmark variant on one machine." in
  let run bench machine variant c engine pkind profile_in dist_loops =
    let built, tuner =
      match pkind with
      | None -> (build_variant bench variant ~machine ~c, None)
      | Some _ ->
          if variant <> Auto then
            die "spf run: --distance-provider applies to the auto variant only";
          let plain = bench.Benches.plain () in
          let provider =
            resolve_provider pkind ~dist_loops ~profile_in ~c ~machine
              ~func:plain.Workload.func
          in
          let config =
            Spf_core.Config.with_provider provider
              (Spf_core.Config.with_c c Spf_core.Config.default)
          in
          let built, report = Benches.auto_with_report ~config plain in
          List.iter
            (fun (ld : Spf_core.Pass.loop_distance) ->
              if ld.enabled then
                Format.printf "  loop bb%d: distance c=%d%s@." ld.header
                  ld.distance
                  (if ld.dist_slot <> None then " (adaptive register)" else "")
              else Format.printf "  loop bb%d: prefetching disabled@." ld.header)
            report.Spf_core.Pass.loop_distances;
          ( built,
            Spf_harness.Profile_guided.tuner_of_report ~machine
              built.Workload.func report )
    in
    let r = Runner.run ~engine ?tuner ~machine built in
    (match tuner with
    | Some tu ->
        List.iter
          (fun (header, final_c) ->
            Format.printf "  loop bb%d: final adaptive c=%d (%d windows)@."
              header final_c (Spf_sim.Tuner.windows tu))
          (Spf_sim.Tuner.final tu)
    | None -> ());
    Format.printf "%s on %s: %a@." built.Workload.name machine.Machine.name
      Spf_sim.Stats.pp r.Runner.stats;
    if variant <> Baseline then begin
      let base = Runner.run ~engine ~machine (bench.Benches.plain ()) in
      Format.printf "speedup vs baseline: %.2fx (insts %+.0f%%)@."
        (Runner.speedup ~baseline:base r)
        (Runner.extra_instructions ~baseline:base r)
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run
      $ Arg.(required & pos 0 (some bench_conv) None & info [] ~docv:"BENCH")
      $ machine_arg $ variant_arg $ c_arg $ engine_arg $ provider_kind_arg
      $ profile_in_arg $ dist_loop_arg)

(* --- fig -------------------------------------------------------------- *)

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of domains for the simulation pool (default: the \
           machine's recommended domain count).  Output is byte-identical \
           for every value.")

(* --- supervision flags shared by the campaign subcommands -------------- *)

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"DIR"
        ~doc:
          "Campaign directory: completed cells are journalled to \
           $(docv)/journal as they finish, so re-running the same command \
           with the same $(docv) skips them and produces byte-identical \
           output; permanently-failed jobs leave replayable crash bundles \
           under $(docv)/bundles (see $(b,spf replay)).  Implies \
           supervised execution.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Per-job wall-clock budget.  A watchdog cancels jobs that \
           exceed it (cooperatively, at basic-block granularity); \
           timeouts are retried, then reported.  Implies supervised \
           execution.")

let retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Re-runs allowed per job after transient failures or timeouts \
           (exponential backoff; default 1).  Implies supervised \
           execution.")

(* Supervision engages when any of its flags is given; [campaign] is the
   identity line the journal pins, so a journal cannot silently be reused
   across a different seed/figure/engine. *)
let supervision ~campaign ~jobs ~engine ~resume ~deadline ~retries =
  match (resume, deadline, retries) with
  | None, None, None -> None
  | _ ->
      let journal =
        Option.map
          (fun dir -> Spf_harness.Journal.start ~dir ~campaign)
          resume
      in
      let bundle_root =
        Option.map (fun dir -> Filename.concat dir "bundles") resume
      in
      let policy =
        {
          Spf_harness.Supervisor.default_policy with
          deadline_s = deadline;
          retries =
            Option.value retries
              ~default:Spf_harness.Supervisor.default_policy.retries;
        }
      in
      Some
        (Spf_harness.Supervisor.options ~policy ?jobs ~engine ?journal
           ?bundle_root ())

let fig_cmd =
  let doc = "Regenerate a figure/table from the paper's evaluation." in
  let figs sup jobs engine provider : (string * (unit -> unit)) list =
    [
      ("table1", Figures.table1);
      ("fig2", fun () -> ignore (Figures.fig2 ?sup ?jobs ~engine ()));
      ("fig4", fun () -> ignore (Figures.fig4 ?sup ?jobs ~engine ?provider ()));
      ("fig5", fun () -> ignore (Figures.fig5 ?sup ?jobs ~engine ?provider ()));
      ("fig6", fun () -> ignore (Figures.fig6 ?sup ?jobs ~engine ()));
      ("fig7", fun () -> ignore (Figures.fig7 ?sup ?jobs ~engine ()));
      ("fig8", fun () -> ignore (Figures.fig8 ?sup ?jobs ~engine ()));
      ("fig9", fun () -> ignore (Figures.fig9 ?sup ?jobs ~engine ()));
      ("fig10", fun () -> ignore (Figures.fig10 ?sup ?jobs ~engine ?provider ()));
      ("ablation", fun () -> ignore (Figures.ablation_flat_offsets ?sup ?jobs ~engine ()));
      ("ablation-split", fun () -> ignore (Figures.ablation_split ?sup ?jobs ~engine ()));
      ("distance-sweep", fun () -> ignore (Figures.distance_sweep ?sup ?jobs ~engine ()));
      ("distance-smoke", fun () -> ignore (Figures.distance_smoke ?sup ?jobs ~engine ()));
    ]
  in
  let run which jobs engine resume deadline retries pkind =
    (* Providers needing per-program inputs (fixed's loop headers, a
       profile file measured for one benchmark) cannot apply across a
       whole figure grid; [spf run] is their consumption path. *)
    let provider =
      match pkind with
      | None | Some `Static -> None
      | Some `Adaptive ->
          Some (Spf_core.Distance.Adaptive Spf_core.Distance.default_adaptive)
      | Some (`Fixed | `Profile) ->
          die
            "spf fig: --distance-provider=%s needs per-program inputs \
             (--dist-loop headers / a --profile-in file); figures accept \
             static or adaptive — use spf run for per-program providers"
            (match pkind with Some `Fixed -> "fixed" | _ -> "profile")
    in
    let campaign =
      Printf.sprintf "fig %s engine=%s provider=%s" which
        (Spf_sim.Engine.to_string engine)
        (match provider with
        | None -> "static"
        | Some p -> Spf_core.Distance.kind p)
    in
    let sup =
      supervision ~campaign ~jobs ~engine ~resume ~deadline ~retries
    in
    let figs = figs sup jobs engine provider in
    match
      if which = "all" then List.iter (fun (_, f) -> f ()) figs
      else
        match List.assoc_opt which figs with
        | Some f -> f ()
        | None ->
            Format.eprintf "unknown figure %S; known: all %s@." which
              (String.concat " " (List.map fst figs))
    with
    | () -> ()
    | exception Figures.Campaign_failed n ->
        Format.eprintf
          "fig %s: %d cell(s) failed permanently; completed cells are \
           checkpointed%s@."
          which n
          (match resume with
          | Some dir ->
              Printf.sprintf " in %s — rerun the same command to retry only \
                              the failures" dir
          | None -> "");
        exit 3
  in
  Cmd.v
    (Cmd.info "fig" ~doc)
    Term.(
      const run
      $ Arg.(value & pos 0 string "all" & info [] ~docv:"FIG")
      $ jobs_arg $ engine_arg $ resume_arg $ deadline_arg $ retries_arg
      $ provider_kind_arg)

(* --- split ------------------------------------------------------------ *)

let split_cmd =
  let doc =
    "Apply loop splitting + clamp-free prefetching (the hoisted-checks      optimisation, §6.1) to a benchmark and show the result."
  in
  let run bench machine c =
    let b = bench.Benches.plain () in
    let config = Spf_core.Config.with_c c Spf_core.Config.default in
    let splits, report =
      Spf_core.Split.split_and_prefetch ~config b.Workload.func
    in
    Format.printf "%d loop(s) split@." (List.length splits);
    Format.printf "=== pass report ===@.%a@."
      (Spf_core.Pass.pp_report b.Workload.func)
      report;
    Format.printf "=== IR after split + prefetch ===@.%s@."
      (Spf_ir.Printer.func_to_string b.Workload.func);
    let r = Runner.run ~machine b in
    let base = Runner.run ~machine (bench.Benches.plain ()) in
    Format.printf "speedup vs baseline on %s: %.2fx (insts %+.0f%%)@."
      machine.Machine.name
      (Runner.speedup ~baseline:base r)
      (Runner.extra_instructions ~baseline:base r)
  in
  Cmd.v
    (Cmd.info "split" ~doc)
    Term.(
      const run
      $ Arg.(required & pos 0 (some bench_conv) None & info [] ~docv:"BENCH")
      $ machine_arg $ c_arg)

(* --- profile ---------------------------------------------------------- *)

let profile_cmd =
  let doc =
    "Profile a benchmark's memory accesses per instruction site (untimed \
     cache model) — shows exactly which loads miss.  With $(b,-o FILE), \
     measure a signed distance profile instead (timed simulator): \
     per-loop attribution of the plain program plus a look-ahead sweep \
     of the transformed one, consumable via $(b,spf run \
     --distance-provider=profile --profile-in FILE)."
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write a distance profile to $(docv): the per-loop chosen \
             look-ahead constants, stamped with a digest of the plain \
             program and the machine model so stale profiles are \
             rejected at consumption time.")
  in
  let run bench machine variant c out =
    match out with
    | Some file ->
        let pd, sweep =
          Spf_harness.Profile_guided.profile ~machine bench
        in
        List.iter
          (fun (c, cy) -> Format.printf "  c=%-4d %d cycles@." c cy)
          sweep;
        List.iter
          (fun (l : Spf_core.Profdata.loop_entry) ->
            Format.printf "  loop bb%d: c=%d (%d accesses, %d misses)@."
              l.header l.c l.accesses l.misses)
          pd.Spf_core.Profdata.loops;
        Spf_core.Profdata.save file pd;
        Format.printf "wrote %s (machine %s)@." file
          pd.Spf_core.Profdata.machine
    | None ->
        let built = build_variant bench variant ~machine ~c in
        let prof = Spf_sim.Profile.create machine in
        let retval =
          Spf_sim.Profile.run prof built.Workload.func ~mem:built.Workload.mem
            ~args:built.Workload.args
        in
        Workload.validate built ~retval;
        Format.printf "%a" Spf_sim.Profile.pp prof
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const run
      $ Arg.(required & pos 0 (some bench_conv) None & info [] ~docv:"BENCH")
      $ machine_arg $ variant_arg $ c_arg $ out_arg)

(* --- sweep ------------------------------------------------------------ *)

let sweep_cmd =
  let doc = "Sweep the look-ahead constant for one benchmark (manual scheme)." in
  let run bench machine =
    let base = Runner.run ~machine (bench.Benches.plain ()) in
    List.iter
      (fun c ->
        let r = Runner.run ~machine (bench.Benches.manual ~machine ~c:(Some c)) in
        Format.printf "c=%-4d speedup %.2fx@." c (Runner.speedup ~baseline:base r))
      [ 4; 8; 16; 32; 64; 128; 256 ]
  in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      const run
      $ Arg.(required & pos 0 (some bench_conv) None & info [] ~docv:"BENCH")
      $ machine_arg)

(* --- fuzz ------------------------------------------------------------- *)

let fuzz_cmd =
  let doc =
    "Differentially fuzz the prefetching pass: random indirect-access \
     programs run original vs. transformed under fault-injection \
     semantics; outcomes must agree, no exception may escape the pass, \
     and wild prefetches must be dropped non-faulting (§4.2/§4.4)."
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Campaign RNG seed.")
  in
  let count_arg =
    Arg.(
      value & opt int 500
      & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of generated programs.")
  in
  let shrink_arg =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Greedily shrink failing cases to minimal reproducers.")
  in
  let cross_engine_arg =
    Arg.(
      value & flag
      & info [ "cross-engine" ]
          ~doc:
            "Differentially compare the simulator engines instead: every \
             generated program (plain and transformed) runs under \
             $(b,interp), $(b,compiled) and $(b,tape), which must agree \
             pairwise on the outcome and on every stats counter, cycles \
             included; a divergence names the disagreeing pair.")
  in
  let oracle_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("concrete", `Concrete);
                  ("cross-engine", `Cross);
                  ("symbolic", `Symbolic);
                ]))
          None
      & info [ "oracle" ] ~docv:"MODE"
          ~doc:
            "Oracle mode: $(b,concrete) (the default differential run), \
             $(b,cross-engine) (same as $(b,--cross-engine)), or \
             $(b,symbolic) — the concrete run backed by a \
             translation-validation proof over all environments.  \
             Symbolic counterexamples shrink and bundle exactly like \
             concrete divergences; cases the validator can neither prove \
             nor refute are counted (and a give-up rate printed), not \
             failed.")
  in
  let inject_hang_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-hang" ] ~docv:"N"
          ~doc:
            "(testing) Replace case $(docv) with an infinite simulator \
             loop, exercising the watchdog/deadline path.  Requires \
             supervised execution ($(b,--deadline)).")
  in
  let inject_crash_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-crash" ] ~docv:"N"
          ~doc:
            "(testing) Make case $(docv) raise, exercising the \
             crash-bundle path.  Requires supervised execution.")
  in
  let run seed count shrink c margin jobs engine cross_engine oracle resume
      deadline retries inject_hang inject_crash pkind =
    (* Provider-preservation fuzzing: any provider must leave the
       transformation semantics-preserving.  Profile is per-program
       (there is no profile file for a generated case), so only the
       synthesisable providers are accepted. *)
    let provider =
      match pkind with
      | None | Some `Static -> Spf_core.Distance.Static
      | Some `Fixed ->
          Spf_core.Distance.Fixed { default_c = None; per_loop = [] }
      | Some `Adaptive ->
          Spf_core.Distance.Adaptive Spf_core.Distance.default_adaptive
      | Some `Profile ->
          die
            "spf fuzz: --distance-provider=profile is per-program (a \
             generated case has no profile file); fuzz accepts static, \
             fixed or adaptive"
    in
    let config =
      Spf_core.Config.with_provider provider
        (with_margin margin (Spf_core.Config.with_c c Spf_core.Config.default))
    in
    let oracle =
      match oracle with
      | Some `Concrete -> Some (Spf_fuzz.Oracle.Concrete (Some engine))
      | Some `Cross -> Some Spf_fuzz.Oracle.Cross_engine
      | Some `Symbolic -> Some Spf_fuzz.Oracle.Symbolic
      | None -> None
    in
    let mode =
      match oracle with
      | Some m -> m
      | None ->
          if cross_engine then Spf_fuzz.Oracle.Cross_engine
          else Spf_fuzz.Oracle.Concrete (Some engine)
    in
    let progress n = Format.printf "  ... %d/%d@." n count; Format.print_flush () in
    let campaign =
      Printf.sprintf "fuzz seed=%d count=%d c=%d oracle=%s margin=%s \
                      provider=%s"
        seed count c
        (Spf_fuzz.Oracle.mode_to_string mode)
        (match margin with Some m -> string_of_int m | None -> "-")
        (Spf_core.Distance.kind provider)
    in
    let supervise =
      supervision ~campaign ~jobs ~engine ~resume ~deadline ~retries
    in
    let inject =
      match (inject_hang, inject_crash) with
      | Some n, _ -> Some (n, Spf_fuzz.Driver.Hang)
      | None, Some n -> Some (n, Spf_fuzz.Driver.Crash)
      | None, None -> None
    in
    (match (inject, supervise) with
    | Some _, None ->
        Format.eprintf
          "fuzz: --inject-hang/--inject-crash need supervised execution \
           (--resume, --deadline or --retries)@.";
        exit 2
    | _ -> ());
    let jobs =
      match jobs with Some j -> j | None -> Spf_harness.Pool.default_jobs ()
    in
    match
      Spf_fuzz.Driver.run ~config ~engine ~cross_engine ?oracle ~shrink
        ~progress ~seed ~jobs ?supervise ?inject ~count ()
    with
    | s ->
        Format.printf "%a" Spf_fuzz.Driver.pp_summary s;
        if not (Spf_fuzz.Driver.ok s) then exit 1
    | exception Spf_fuzz.Driver.Campaign_incomplete n ->
        Format.eprintf
          "fuzz: %d case(s) failed permanently; completed cases are \
           checkpointed%s@."
          n
          (match resume with
          | Some dir ->
              Printf.sprintf " in %s — rerun the same command to retry only \
                              the failures" dir
          | None -> "");
        exit 3
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ seed_arg $ count_arg $ shrink_arg $ c_arg
      $ assume_margin_arg $ jobs_arg $ engine_arg $ cross_engine_arg
      $ oracle_arg $ resume_arg $ deadline_arg $ retries_arg
      $ inject_hang_arg $ inject_crash_arg $ provider_kind_arg)

(* --- validate ---------------------------------------------------------- *)

let validate_cmd =
  let doc =
    "Translation validation: symbolically prove the prefetch pass \
     semantics-preserving on a program, or print a confirmed, runnable \
     counterexample.  Exit 0: proved; 1: refuted; 2: gave up (the \
     checker over-approximates, so an unconfirmed proof failure is a \
     give-up, never a refutation).  See docs/ROBUSTNESS.md."
  in
  let file_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "A runnable $(b,.case) file (program + concrete environment; \
             the format $(b,spf validate) itself prints counterexamples \
             in).")
  in
  let golden_arg =
    Arg.(
      value & flag
      & info [ "golden" ]
          ~doc:
            "Validate the six distinct (program, transformed) pairs \
             behind the 44-row golden timing suite: IS, CG, RA, HJ-2 and \
             HJ-8 under the automatic pass, plus HJ-8 under the manual \
             scheme.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Validate every $(b,*.case) file under $(docv).  With the \
             supervision flags, each file runs as a supervised job \
             ($(b,validate/<file>)): a proof search that exceeds the \
             deadline is classified as a give-up instead of poisoning \
             the sweep, and completed files checkpoint/resume through \
             the journal.")
  in
  let gen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "gen-corpus" ] ~docv:"DIR"
          ~doc:
            "Generate a validation corpus under $(docv): random \
             generated programs whose original run completes, which the \
             pass actually transforms, and which the validator proves, \
             written as $(b,NNN.case) until $(b,--count) are collected.")
  in
  let count_arg =
    Arg.(
      value & opt int 25
      & info [ "n"; "count" ] ~docv:"N"
          ~doc:"Cases to collect with $(b,--gen-corpus).")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Generation seed for $(b,--gen-corpus).")
  in
  let run file golden corpus gen count seed margin jobs engine resume deadline
      retries =
    let config = with_margin margin Spf_core.Config.default in
    (* Fold a batch of per-pair statuses into output + exit code:
       refutation dominates give-up dominates proved. *)
    let finish rows =
      let proved = ref 0 and refuted = ref 0 and gave_up = ref 0 in
      List.iter
        (fun (name, st) ->
          (match st with
          | Spf_valid.Validate.S_proved _ -> incr proved
          | Spf_valid.Validate.S_refuted _ -> incr refuted
          | Spf_valid.Validate.S_gave_up _ -> incr gave_up);
          Format.printf "%s: %s@." name
            (Spf_valid.Validate.status_to_string st))
        rows;
      Format.printf "validate: %d proved, %d refuted, %d gave up@." !proved
        !refuted !gave_up;
      if !refuted > 0 then exit 1 else if !gave_up > 0 then exit 2
    in
    match (file, golden, corpus, gen) with
    | Some f, false, None, None -> (
        let case =
          try Spf_valid.Case.load f
          with
          | Spf_ir.Parser.Parse_error { line; msg } ->
              Format.eprintf "spf validate: %s:%d: %s@." f line msg;
              exit 2
          | Sys_error m ->
              Format.eprintf "spf validate: %s@." m;
              exit 2
        in
        match Spf_valid.Validate.check_case ~config case with
        | Spf_valid.Validate.Proved { paths; obligations } ->
            Format.printf "%s: proved (%d paths, %d look-ahead obligations)@."
              f paths obligations
        | Spf_valid.Validate.Refuted { detail; cex; case } ->
            Format.printf "%s: refuted: %s@." f detail;
            Format.printf
              "  confirmed at brk=%d: original %s, transformed %s%s@."
              cex.Spf_valid.Model.brk
              (Spf_valid.Model.outcome_to_string cex.Spf_valid.Model.original)
              (Spf_valid.Model.outcome_to_string
                 cex.Spf_valid.Model.transformed)
              (if cex.Spf_valid.Model.introduced_fault then
                 " (fault at a pass-inserted instruction)"
               else "");
            Format.printf ";; counterexample as a runnable case:@.%s@."
              (Spf_valid.Case.to_string case);
            exit 1
        | Spf_valid.Validate.Gave_up r ->
            Format.printf "%s: gave up: %s@." f r;
            exit 2)
    | None, true, None, None ->
        finish
          (List.map
             (fun (name, o) -> (name, Spf_valid.Validate.status_of_outcome o))
             (Spf_valid.Validate.check_golden ~config ()))
    | None, false, Some dir, None ->
        let campaign =
          Printf.sprintf "validate corpus=%s margin=%s" dir
            (match margin with Some m -> string_of_int m | None -> "-")
        in
        let supervise =
          supervision ~campaign ~jobs ~engine ~resume ~deadline ~retries
        in
        finish (Spf_valid.Validate.check_corpus ~config ?supervise dir)
    | None, false, None, Some dir -> (
        (try if not (Sys.is_directory dir) then begin
           Format.eprintf "spf validate: %s exists and is not a directory@." dir;
           exit 2
         end
         with Sys_error _ -> Sys.mkdir dir 0o755);
        let kept = ref 0 and tried = ref 0 in
        while !kept < count do
          let spec =
            Spf_fuzz.Gen.random (Spf_workloads.Rng.split ~seed !tried)
          in
          incr tried;
          (* Three gates: the original completes and the concrete oracle
             agrees; the pass emits at least one prefetch (an untouched
             program proves trivially and tests nothing); and the
             validator proves the file as it will be re-read — saved
             first, then loaded back, so the corpus check in CI exercises
             the exact parse-validate path. *)
          match Spf_fuzz.Oracle.check spec with
          | Spf_fuzz.Oracle.Agree a
            when (not a.Spf_fuzz.Oracle.discarded)
                 && a.Spf_fuzz.Oracle.report.Spf_core.Pass.n_prefetches > 0 ->
              let b = Spf_fuzz.Gen.build spec in
              let case =
                Spf_valid.Case.of_concrete ~func:b.Spf_fuzz.Gen.func
                  ~mem:b.Spf_fuzz.Gen.mem ~args:b.Spf_fuzz.Gen.args
                  ~fuel:(Spf_fuzz.Gen.fuel spec)
              in
              let path =
                Filename.concat dir (Printf.sprintf "%03d.case" !kept)
              in
              Spf_valid.Case.save path case;
              (match
                 Spf_valid.Validate.check_case ~config
                   (Spf_valid.Case.load path)
               with
              | Spf_valid.Validate.Proved { paths; obligations } ->
                  Format.printf "%s: proved (%d paths, %d obligations) — %s@."
                    path paths obligations
                    (Spf_fuzz.Gen.to_string spec);
                  incr kept
              | _ -> Sys.remove path)
          | _ -> ()
        done;
        Format.printf "gen-corpus: kept %d/%d generated programs in %s@."
          !kept !tried dir)
    | _ ->
        Format.eprintf
          "spf validate: give exactly one of FILE, --golden, --corpus or \
           --gen-corpus@.";
        exit 2
  in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(
      const run $ file_arg $ golden_arg $ corpus_arg $ gen_arg $ count_arg
      $ seed_arg $ assume_margin_arg $ jobs_arg $ engine_arg $ resume_arg
      $ deadline_arg $ retries_arg)

(* --- replay ------------------------------------------------------------ *)

let replay_cmd =
  let doc =
    "Re-run a crash bundle captured by a supervised campaign.  Exit 0: \
     the recorded job ran clean (the failure was transient or injected); \
     exit 1: the failure reproduced (fuzz divergence or crash); exit 2: \
     the bundle itself is unusable."
  in
  let run dir =
    let b =
      try Spf_harness.Bundle.read dir
      with Failure msg ->
        Format.eprintf "spf replay: %s@." msg;
        exit 2
    in
    match Spf_harness.Bundle.meta_value b "kind" with
    | Some "fuzz-case" -> (
        match Spf_fuzz.Replay.replay b with
        | Spf_fuzz.Replay.Clean ->
            Format.printf "replay %s: clean — the recorded case no longer \
                           fails@." dir
        | Spf_fuzz.Replay.Divergence d ->
            Format.printf "replay %s: divergence reproduced: %s@." dir d;
            exit 1
        | Spf_fuzz.Replay.Undecided r ->
            Format.printf "replay %s: undecided — the validator gave up \
                           re-checking this case: %s@." dir r;
            exit 2
        | exception Failure msg ->
            Format.eprintf "spf replay: %s@." msg;
            exit 2
        | exception e ->
            Format.printf "replay %s: crash reproduced: %s@." dir
              (Printexc.to_string e);
            exit 1)
    | Some "fig-cell" -> (
        let req k =
          match Spf_harness.Bundle.meta_value b k with
          | Some v -> v
          | None ->
              Format.eprintf "spf replay: bundle records no %S@." k;
              exit 2
        in
        let figure = req "figure" in
        let index =
          match int_of_string_opt (req "index") with
          | Some i -> i
          | None ->
              Format.eprintf "spf replay: bad index %S@." (req "index");
              exit 2
        in
        let engine =
          Option.bind
            (Spf_harness.Bundle.meta_value b "engine")
            Spf_sim.Engine.of_string
        in
        match Figures.replay_cell ~figure ~index ?engine () with
        | cycles ->
            Format.printf
              "replay %s: clean — %s/%d re-ran (%d simulated cycles)@." dir
              figure index cycles
        | exception e ->
            Format.printf "replay %s: crash reproduced: %s@." dir
              (Printexc.to_string e);
            exit 1)
    | Some k ->
        Format.eprintf "spf replay: unknown bundle kind %S@." k;
        exit 2
    | None ->
        Format.eprintf "spf replay: bundle records no kind@.";
        exit 2
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None & info [] ~docv:"BUNDLE"))

(* --- serve / loadtest -------------------------------------------------- *)

let serve_addr ~socket ~port =
  match (socket, port) with
  | Some path, None -> Spf_serve.Server.Unix_sock path
  | None, Some p -> Spf_serve.Server.Tcp p
  | Some _, Some _ -> die "spf serve: --socket and --port are exclusive"
  | None, None -> die "spf serve: one of --socket PATH or --port N is required"

let socket_arg cmd =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:(Printf.sprintf "Unix-domain socket for %s." cmd))

let port_arg cmd =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"N"
        ~doc:(Printf.sprintf "Loopback TCP port for %s." cmd))

let serve_cmd =
  let doc = "Long-running compile-and-simulate service with a shared cache." in
  let run socket port jobs batch deadline pass_cap sim_cap journal max_conns
      max_queue idle_timeout max_request_bytes drain_deadline =
    let addr = serve_addr ~socket ~port in
    let cfg =
      {
        (Spf_serve.Server.default_cfg addr) with
        Spf_serve.Server.jobs;
        batch_max = batch;
        deadline_s = (if deadline <= 0. then None else Some deadline);
        pass_cap;
        sim_cap;
        journal_dir = journal;
        max_conns;
        max_queue;
        idle_timeout_s = idle_timeout;
        max_request_bytes;
        drain_deadline_s = drain_deadline;
      }
    in
    (* Route SIGTERM/SIGINT into a graceful drain: block them before any
       server thread exists (threads inherit the mask), then park one
       thread in wait_signal.  A handler could not call Server.stop
       safely — stop takes mutexes. *)
    ignore (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigterm; Sys.sigint ]);
    let t =
      match Spf_serve.Server.start cfg with
      | t -> t
      | exception Failure msg -> die "spf serve: %s" msg
    in
    ignore
      (Thread.create
         (fun () ->
           let _ = Thread.wait_signal [ Sys.sigterm; Sys.sigint ] in
           Format.eprintf "spf serve: draining@.";
           Spf_serve.Server.stop t)
         ());
    Format.printf "spf serve: listening on %s (jobs=%d batch=%d%s)@."
      (match addr with
      | Spf_serve.Server.Unix_sock p -> p
      | Spf_serve.Server.Tcp p -> Printf.sprintf "localhost:%d" p)
      jobs batch
      (match journal with
      | Some dir -> Printf.sprintf " journal=%s" dir
      | None -> "");
    Spf_serve.Server.wait t
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run
      $ socket_arg "the service to bind"
      $ port_arg "the service to bind"
      $ Arg.(
          value
          & opt int (Spf_harness.Pool.default_jobs ())
          & info [ "j"; "jobs" ] ~docv:"N"
              ~doc:"Domain-pool size per simulation batch.")
      $ Arg.(
          value
          & opt int 32
          & info [ "batch" ] ~docv:"N"
              ~doc:"Max requests fused into one supervised batch.")
      $ Arg.(
          value
          & opt float 30.
          & info [ "deadline" ] ~docv:"SECONDS"
              ~doc:"Per-request wall-clock budget (0 disables).")
      $ Arg.(
          value
          & opt int 512
          & info [ "pass-cache" ] ~docv:"N"
              ~doc:"Pass-level result-cache capacity, entries.")
      $ Arg.(
          value
          & opt int 2048
          & info [ "sim-cache" ] ~docv:"N"
              ~doc:"Sim-level result-cache capacity, entries.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "cache-journal" ] ~docv:"DIR"
              ~doc:
                "Crash-safe result-cache journal directory: replayed on \
                 start for a warm cache, appended per insertion, \
                 snapshotted on drain.")
      $ Arg.(
          value
          & opt int 256
          & info [ "max-conns" ] ~docv:"N"
              ~doc:
                "Live-connection budget; excess connections are answered \
                 with a classified busy reply and closed.")
      $ Arg.(
          value
          & opt int 1024
          & info [ "max-queue" ] ~docv:"N"
              ~doc:
                "Queued-request budget; excess SUBMITs get ERR busy \
                 retry-after instead of queueing without bound.")
      $ Arg.(
          value
          & opt float 30.
          & info [ "idle-timeout" ] ~docv:"SECONDS"
              ~doc:"Per-read idle deadline on client input.")
      $ Arg.(
          value
          & opt int (4 * 1024 * 1024)
          & info [ "max-request-bytes" ] ~docv:"N"
              ~doc:"SUBMIT payload budget, bytes.")
      $ Arg.(
          value
          & opt float 10.
          & info [ "drain-deadline" ] ~docv:"SECONDS"
              ~doc:
                "How long in-flight work may run after SIGTERM/SIGINT/\
                 SHUTDOWN before remaining sockets are force-closed."))

let chaos_cmd =
  let doc =
    "Chaos-test a spawned serve daemon: mixed honest + fault traffic, \
     SIGTERM drain, SIGKILL crash, journal warm restarts, leak check."
  in
  let run seed count concurrency jobs keep =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "spf-chaos-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let sock = Filename.concat dir "chaos.sock" in
    let journal = Filename.concat dir "journal" in
    let idle_timeout = 1.0 in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
    let pid = ref None in
    let start () =
      (try if Sys.file_exists sock then Sys.remove sock with Sys_error _ -> ());
      pid :=
        Some
          (Unix.create_process Sys.executable_name
             [|
               Sys.executable_name;
               "serve";
               "--socket";
               sock;
               "--jobs";
               string_of_int jobs;
               "--batch";
               "8";
               "--deadline";
               "10";
               "--cache-journal";
               journal;
               "--max-conns";
               "64";
               "--max-queue";
               "64";
               "--idle-timeout";
               Printf.sprintf "%g" idle_timeout;
               "--max-request-bytes";
               "65536";
               "--drain-deadline";
               "5";
             |]
             devnull devnull devnull)
    in
    let signal s =
      match !pid with
      | Some p -> ( try Unix.kill p s with Unix.Unix_error _ -> ())
      | None -> ()
    in
    let wait_exit () =
      match !pid with
      | None -> -1
      | Some p -> (
          pid := None;
          match Unix.waitpid [] p with
          | _, Unix.WEXITED n -> n
          | _, Unix.WSIGNALED s | _, Unix.WSTOPPED s -> 128 + s
          | exception Unix.Unix_error _ -> -1)
    in
    (* The harness pokes sockets of a daemon it just killed: EPIPE,
       not process death. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let cfg =
      {
        Spf_serve.Chaos.seed;
        count;
        concurrency;
        fault_wait_s = 4. *. idle_timeout;
        connect = (fun () -> Spf_serve.Client.connect_unix sock);
        raw_connect =
          (fun () ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            (try Unix.connect fd (Unix.ADDR_UNIX sock)
             with e ->
               (try Unix.close fd with Unix.Unix_error _ -> ());
               raise e);
            fd);
        ctl =
          {
            Spf_serve.Chaos.start;
            term = (fun () -> signal Sys.sigterm);
            kill = (fun () -> signal Sys.sigkill);
            wait_exit;
          };
        log = (fun m -> Format.printf "chaos: %s@." m);
      }
    in
    let r = Spf_serve.Chaos.run cfg in
    (try Unix.close devnull with Unix.Unix_error _ -> ());
    Format.printf "%a@." Spf_serve.Chaos.pp r;
    if keep then Format.printf "chaos: workspace kept at %s@." dir
    else
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [
          sock;
          Filename.concat journal "cache-journal";
          Filename.concat journal "cache-journal.tmp";
        ]
      |> fun () ->
      List.iter
        (fun d -> try Unix.rmdir d with Unix.Unix_error _ -> ())
        [ journal; dir ];
    if not r.Spf_serve.Chaos.passed then exit 1
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run
      $ Arg.(
          value & opt int 9
          & info [ "seed" ] ~docv:"SEED" ~doc:"Program-pool seed.")
      $ Arg.(
          value & opt int 120
          & info [ "count" ] ~docv:"N"
              ~doc:"Honest requests in the mixed phase.")
      $ Arg.(
          value & opt int 6
          & info [ "concurrency" ] ~docv:"N" ~doc:"Client threads.")
      $ Arg.(
          value & opt int 2
          & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Daemon pool domains.")
      $ Arg.(
          value & flag
          & info [ "keep" ]
              ~doc:"Keep the temp workspace (socket + journal) afterwards."))

let loadtest_cmd =
  let doc =
    "Replay fuzz-generated programs against a serve daemon, measuring \
     latency, throughput and cache hit rate."
  in
  let run socket port spawn seed count dup concurrency machine engine =
    let addr =
      match (socket, port, spawn) with
      | None, None, true ->
          Spf_serve.Server.Unix_sock
            (Filename.temp_file "spf-loadtest" ".sock")
      | _ -> serve_addr ~socket ~port
    in
    let server =
      if spawn then begin
        (match addr with
        | Spf_serve.Server.Unix_sock p when Sys.file_exists p -> Sys.remove p
        | _ -> ());
        Some (Spf_serve.Server.start (Spf_serve.Server.default_cfg addr))
      end
      else None
    in
    let connect () =
      match addr with
      | Spf_serve.Server.Unix_sock p -> Spf_serve.Client.connect_unix p
      | Spf_serve.Server.Tcp p -> Spf_serve.Client.connect_tcp ~port:p
    in
    let r =
      Spf_serve.Loadtest.run ~seed ~count ~dup ~concurrency
        ~opts:
          [
            ("machine", machine.Machine.name);
            ("engine", Spf_sim.Engine.to_string engine);
          ]
        ~connect ()
    in
    Format.printf "%a@." Spf_serve.Loadtest.pp r;
    (match server with
    | Some t ->
        let c = connect () in
        ignore (Spf_serve.Client.shutdown c);
        Spf_serve.Client.close c;
        Spf_serve.Server.wait t
    | None -> ());
    if r.Spf_serve.Loadtest.dropped > 0 || r.Spf_serve.Loadtest.corrupted > 0
    then exit 1
  in
  Cmd.v
    (Cmd.info "loadtest" ~doc)
    Term.(
      const run
      $ socket_arg "an already-running daemon"
      $ port_arg "an already-running daemon"
      $ Arg.(
          value & flag
          & info [ "spawn" ]
              ~doc:
                "Start an in-process server for the duration of the test \
                 (on a temp socket unless --socket/--port is given).")
      $ Arg.(
          value & opt int 7
          & info [ "seed" ] ~docv:"SEED" ~doc:"Program-pool seed.")
      $ Arg.(
          value & opt int 1000
          & info [ "count" ] ~docv:"N" ~doc:"Requests to replay.")
      $ Arg.(
          value & opt float 0.5
          & info [ "dup" ] ~docv:"RATE"
              ~doc:
                "Duplication rate in [0,1): the distinct-program pool has \
                 size count*(1-RATE).")
      $ Arg.(
          value & opt int 8
          & info [ "concurrency" ] ~docv:"N" ~doc:"Client connections.")
      $ machine_arg $ engine_arg)

let () =
  let doc = "Software prefetching for indirect memory accesses (CGO'17) — reproduction" in
  let info = Cmd.info "spf" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            show_cmd;
            run_cmd;
            fig_cmd;
            sweep_cmd;
            profile_cmd;
            split_cmd;
            fuzz_cmd;
            validate_cmd;
            replay_cmd;
            serve_cmd;
            loadtest_cmd;
            chaos_cmd;
          ]))
