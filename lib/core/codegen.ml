module Ir = Spf_ir.Ir

(* Code generation (Algorithm 1, lines 42-54).

   For each load of a candidate's dependent chain we clone its address-
   generation sub-slice with every use of the induction variable replaced
   by [min (iv + offset) limit], convert the cloned load itself into a
   prefetch, and splice the whole group immediately before the original
   candidate load.  Earlier chain loads get larger offsets (eq. 1), so by
   the time a deeper prefetch re-executes an earlier load for real, that
   line has already been prefetched — the staggering of §4.4.  The cloned
   code is O(t^2) in the chain length, as §6.2 observes.

   Two cleanups keep the instruction overhead close to what an optimising
   backend would produce:
   - clones are shared across groups and candidates through a cache keyed
     by (block, original instruction, offset), so several loads probing the
     same structure (e.g. a hash bucket's slots) share one cloned address
     chain;
   - a second prefetch whose address provably lands in an already-
     prefetched cache line (same cloned base, small constant displacement)
     is elided. *)

type emitted = {
  chain_load : int; (* original load this prefetch covers *)
  offset_iters : int; (* look-ahead distance in induction steps *)
  prefetch_id : int; (* the emitted prefetch instruction *)
  support_ids : int list; (* address-generation clones, program order *)
}

(* Where the look-ahead distance for a candidate comes from.  [Dconst]
   bakes eq. 1's offsets into immediates (static/fixed/profile providers);
   [Dreg] reads the constant term from an SSA value — a per-loop function
   parameter the simulator's tuner rewrites between windows — and computes
   eq. 1's stagger at run time. *)
type dist =
  | Dconst of int (* the constant term c, in iterations *)
  | Dreg of { slot : int; init_c : int }
      (* instr id of the distance register; [init_c] is its initial value,
         recorded in [offset_iters] for reporting *)

(* Should the group for chain position [l] (of [t]) be emitted?  Position 0
   is the sequential look-ahead access: a stride prefetch, only emitted as
   a companion when requested (§4.3 / Fig 5).  [max_stagger] keeps only the
   first loads of deep chains (§6.2 / Fig 7). *)
let keep_group (config : Config.t) ~l ~t =
  ignore t;
  l < config.max_stagger && (l > 0 || config.stride_companion)

(* Pass-wide emission state, shared across candidates so that common
   address-generation code is cloned once. *)
type state = {
  seen : (int * int, unit) Hashtbl.t; (* (chain load, offset) emitted *)
  clone_cache : (int * int * int * int, int) Hashtbl.t;
      (* (block, induction variable, orig instr / pseudo-id, offset)
         -> clone id *)
  pf_lines : (int * int * int, unit) Hashtbl.t;
      (* (block, address base id, line displacement) prefetched *)
}

let create_state () =
  {
    seen = Hashtbl.create 16;
    clone_cache = Hashtbl.create 32;
    pf_lines = Hashtbl.create 16;
  }

(* Pseudo-ids for the advance/clamp/limit instructions in the clone cache
   (they have no original-instruction identity). *)
let pseudo_adv = -1
let pseudo_clamp = -2
let pseudo_limit = -3

(* Pseudo-ids for the runtime distance computation of [Dreg] groups. *)
let pseudo_dnum = -4 (* reg * (t - l) *)
let pseudo_ddiv = -5 (* ... / t *)
let pseudo_dfloor = -6 (* max 1 (deep positions can floor to 0) *)
let pseudo_dbytes = -7 (* * step *)

(* The clone cache's offset dimension for a [Dreg] group: static groups key
   on the (positive) byte offset, dynamic groups on a negative code packing
   the chain shape (t, l) — two candidates on the same induction variable
   may have different chain lengths, and reg*(t-l)/t differs with [t]. *)
let dyn_off ~t ~l = -((t * 16) + l + 1)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n asr 1) in
  go 0 n

(* Resolve a prefetch address to (base id, byte displacement) when it is a
   gep with a constant index off an SSA base. *)
let line_key func ~block (addr : Ir.operand) =
  match addr with
  | Ir.Var v -> (
      match (Ir.instr func v).kind with
      | Ir.Gep { base = Ir.Var b; index = Ir.Imm k; scale }
        when abs (k * scale) < 4096 ->
          Some (block, b, k * scale / 64)
      | _ -> Some (block, v, 0))
  | Ir.Imm _ | Ir.Fimm _ -> None

let emit (a : Analysis.t) (config : Config.t) (cand : Dfs.candidate)
    (clamp : Safety.clamp) ~(dist : dist) ~(state : state) : emitted list =
  let func = a.Analysis.func in
  let anchor = cand.load_id in
  let block = (Ir.instr func anchor).block in
  let chain = Array.of_list (Dfs.chain_loads a cand) in
  let t = Array.length chain in
  if t <= 1 then []
  else begin
    let new_ids = ref [] in
    let fresh ~name kind =
      let i = Ir.fresh_instr func ~name ~block kind in
      new_ids := i.id :: !new_ids;
      i.id
    in
    (* Clone-or-reuse an instruction for a given look-ahead offset. *)
    let iv_id = cand.iv.iv_id in
    let support = ref [] in
    let cached ?(count = false) ~key ~off ~name mk =
      match Hashtbl.find_opt state.clone_cache (block, iv_id, key, off) with
      | Some id -> id
      | None ->
          let id = fresh ~name (mk ()) in
          Hashtbl.replace state.clone_cache (block, iv_id, key, off) id;
          if count then support := id :: !support;
          id
    in
    let limit_operand ~off =
      ignore off;
      match clamp with
      | Safety.Clamp_imm n -> Ir.Imm n
      | Safety.Clamp_expr (bound, delta) ->
          let id =
            cached ~key:pseudo_limit ~off:delta ~name:"pf.limit" (fun () ->
                Ir.Binop (Ir.Add, bound, Ir.Imm delta))
          in
          Ir.Var id
    in
    (* The advanced-and-clamped induction value for a static byte offset
       [off] (a [Dconst] group). *)
    let clamped_iv ~off =
      let adv =
        cached ~key:pseudo_adv ~off ~name:"pf.adv" (fun () ->
            Ir.Binop (Ir.Add, Ir.Var cand.iv.iv_id, Ir.Imm off))
      in
      (* Inside a Split-peeled main loop the bound already guarantees
         [iv + off] is in range; skip the clamp (Config.assume_margin). *)
      if off <= config.Config.assume_margin then adv
      else
        cached ~key:pseudo_clamp ~off ~name:"pf.clamp" (fun () ->
            Ir.Binop (Ir.Smin, Ir.Var adv, limit_operand ~off))
    in
    (* The advanced-and-clamped induction value for a [Dreg] group at chain
       position [l]: eq. 1 evaluated at run time against the distance
       register —

         d_l   = max 1 (reg * (t - l) / t)       (iterations)
         adv   = iv + d_l * step                 (index units)
         use   = min adv limit                   (always clamped)

       The division strength-reduces to an arithmetic shift when [t] is a
       power of two (the register is never negative).  The scaffold is
       shared across candidates through the clone cache under a (t, l)
       code, and the instructions it does add are counted as support. *)
    let clamped_iv_dyn ~slot ~l =
      let off = dyn_off ~t ~l in
      let d_l =
        if l = 0 then slot
        else begin
          let num =
            cached ~count:true ~key:pseudo_dnum ~off ~name:"pf.dnum"
              (fun () -> Ir.Binop (Ir.Mul, Ir.Var slot, Ir.Imm (t - l)))
          in
          let q =
            cached ~count:true ~key:pseudo_ddiv ~off ~name:"pf.ddiv"
              (fun () ->
                if is_pow2 t then
                  Ir.Binop (Ir.Ashr, Ir.Var num, Ir.Imm (log2 t))
                else Ir.Binop (Ir.Sdiv, Ir.Var num, Ir.Imm t))
          in
          cached ~count:true ~key:pseudo_dfloor ~off ~name:"pf.dfloor"
            (fun () -> Ir.Binop (Ir.Smax, Ir.Var q, Ir.Imm 1))
        end
      in
      let bytes =
        if cand.iv.step = 1 then d_l
        else
          cached ~count:true ~key:pseudo_dbytes ~off ~name:"pf.dbytes"
            (fun () -> Ir.Binop (Ir.Mul, Ir.Var d_l, Ir.Imm cand.iv.step))
      in
      let adv =
        cached ~key:pseudo_adv ~off ~name:"pf.adv" (fun () ->
            Ir.Binop (Ir.Add, Ir.Var cand.iv.iv_id, Ir.Var bytes))
      in
      (* A runtime distance is never covered by [assume_margin]: always
         clamp. *)
      cached ~key:pseudo_clamp ~off ~name:"pf.clamp" (fun () ->
          Ir.Binop (Ir.Smin, Ir.Var adv, limit_operand ~off))
    in
    let groups = ref [] in
    for l = 0 to t - 1 do
      if keep_group config ~l ~t then begin
        let off =
          match dist with
          | Dconst c -> Schedule.distance ~c ~t ~l * cand.iv.step
          | Dreg _ -> dyn_off ~t ~l
        in
        let key = (chain.(l), off) in
        if not (Hashtbl.mem state.seen key) then begin
          Hashtbl.replace state.seen key ();
          let sub = Dfs.sub_slice a cand ~root:chain.(l) in
          support := [];
          let clamped =
            match dist with
            | Dconst _ -> clamped_iv ~off
            | Dreg { slot; _ } -> clamped_iv_dyn ~slot ~l
          in
          (* Clone the address-generation prefix (everything but the chain
             load itself), sharing clones through the cache. *)
          let map_operand (o : Ir.operand) =
            match o with
            | Ir.Var v when v = cand.iv.iv_id -> Ir.Var clamped
            | Ir.Var v -> (
                match Hashtbl.find_opt state.clone_cache (block, iv_id, v, off) with
                | Some c -> Ir.Var c
                | None -> o)
            | Ir.Imm _ | Ir.Fimm _ -> o
          in
          List.iter
            (fun id ->
              if id <> chain.(l) then begin
                let orig = Ir.instr func id in
                let already =
                  Hashtbl.mem state.clone_cache (block, iv_id, id, off)
                in
                let cid =
                  cached ~key:id ~off ~name:("pf." ^ orig.name) (fun () ->
                      Ir.map_srcs map_operand orig.kind)
                in
                if not already then support := cid :: !support
              end)
            sub;
          (* The chain load becomes the prefetch — unless its line was
             already covered by an earlier group. *)
          let orig = Ir.instr func chain.(l) in
          let addr =
            match Ir.map_srcs map_operand orig.kind with
            | Ir.Load (_, addr) -> addr
            | _ -> assert false
          in
          let covered =
            match line_key func ~block addr with
            | Some k ->
                if Hashtbl.mem state.pf_lines k then true
                else begin
                  Hashtbl.replace state.pf_lines k ();
                  false
                end
            | None -> false
          in
          if covered then ()
          else begin
            let pf = fresh ~name:"pf" (Ir.Prefetch addr) in
            let offset_iters =
              match dist with
              | Dconst _ -> off / max cand.iv.step 1
              | Dreg { init_c; _ } -> Schedule.distance ~c:init_c ~t ~l
            in
            groups :=
              {
                chain_load = chain.(l);
                offset_iters;
                prefetch_id = pf;
                support_ids = List.rev !support;
              }
              :: !groups
          end
        end
      end
    done;
    (* Splice everything (in creation order) just before the original
       load — line 53 of Algorithm 1. *)
    Ir.insert_before func ~anchor (List.rev !new_ids);
    List.rev !groups
  end
