(** Code generation (Algorithm 1, lines 42–54): clone each chain load's
    address-generation slice with the induction variable advanced and
    clamped, convert the cloned load into a prefetch, and splice the group
    immediately before the original load. *)

type emitted = {
  chain_load : int;  (** original load this prefetch covers *)
  offset_iters : int;
      (** look-ahead distance in induction steps (the initial distance for
          a register-scheduled group) *)
  prefetch_id : int;  (** the emitted prefetch instruction *)
  support_ids : int list;  (** address-generation clones, program order *)
}

(** Where a candidate's look-ahead distance comes from: a compile-time
    constant term for eq. 1, or a per-loop distance register (an extra
    function parameter) whose value the simulator's tuner rewrites
    between windows, with eq. 1's stagger computed at run time. *)
type dist = Dconst of int | Dreg of { slot : int; init_c : int }

val keep_group : Config.t -> l:int -> t:int -> bool
(** Stagger/companion policy: which chain positions receive a prefetch. *)

type state
(** Pass-wide emission state: deduplication of (load, offset) pairs, the
    cross-candidate clone cache, and the prefetched-line set. *)

val create_state : unit -> state

val emit :
  Analysis.t ->
  Config.t ->
  Dfs.candidate ->
  Safety.clamp ->
  dist:dist ->
  state:state ->
  emitted list
(** Mutates the function.  Candidates must be emitted in program order so
    that shared clones dominate their reuses. *)
