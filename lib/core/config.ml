(* Pass configuration.  Defaults match the paper's evaluation setup:
   c = 64 for every system (§5), stride companion prefetches on (§4.3),
   unbounded stagger depth, the prototype's direct-induction-index
   restriction (§4.2), and loop hoisting (§4.6) enabled. *)

type t = {
  c : int; (* look-ahead constant of eq. (1) *)
  stride_companion : bool; (* also prefetch the sequential look-ahead array *)
  max_stagger : int; (* how many loads of a dependent chain to prefetch *)
  allow_pure_calls : bool; (* permit side-effect-free calls in slices (§4.1) *)
  hoist : bool; (* hoist inner-loop prefetches (§4.6) *)
  require_direct_iv_index : bool; (* look-ahead array must be indexed by the
                                     raw induction variable (§4.2) *)
  cleanup : bool; (* run DCE after emission: duplicate-line elision can
                     strand unused address-generation clones *)
  assume_margin : int; (* offsets <= this margin skip the fault-avoidance
                          clamp; only sound after Split has peeled the
                          last [margin] iterations (cf. ICC's hoisted
                          checks, §6.1) *)
  provider : Distance.provider; (* where each loop's eq. 1 constant term
                                   comes from (static | fixed | profile |
                                   adaptive) *)
}

let default =
  {
    c = 64;
    stride_companion = true;
    max_stagger = max_int;
    allow_pure_calls = false;
    hoist = true;
    require_direct_iv_index = true;
    cleanup = true;
    assume_margin = 0;
    provider = Distance.Static;
  }

let with_c c t = { t with c }
let with_provider provider t = { t with provider }

(* Canonical one-line rendering of every field, the pass half of a
   content-addressed result-cache key: two configs with equal canonical
   strings drive the pass identically.  Every field is spelled out —
   adding a field without extending this function is a compile error
   (the record pattern below is exhaustive), so the serving cache can
   never conflate configs that differ in a new knob. *)
let canonical
    {
      c;
      stride_companion;
      max_stagger;
      allow_pure_calls;
      hoist;
      require_direct_iv_index;
      cleanup;
      assume_margin;
      provider;
    } =
  Printf.sprintf
    "c=%d stride=%b stagger=%d pure=%b hoist=%b direct=%b cleanup=%b \
     margin=%d provider=%s"
    c stride_companion max_stagger allow_pure_calls hoist
    require_direct_iv_index cleanup assume_margin
    (Format.asprintf "%a" Distance.pp provider)

let digest t = Digest.to_hex (Digest.string (canonical t))
