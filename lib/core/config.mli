(** Pass configuration.  {!default} matches the paper's evaluation setup
    ([c = 64], stride companions on, unbounded stagger, no calls, hoisting
    on, direct induction-variable indexing required). *)

type t = {
  c : int;  (** look-ahead constant of eq. (1) *)
  stride_companion : bool;
      (** also emit the staggered prefetch of the sequential look-ahead
          array (§4.3 / Fig 5) *)
  max_stagger : int;
      (** prefetch at most this many loads of a dependent chain (§6.2) *)
  allow_pure_calls : bool;
      (** permit side-effect-free calls inside prefetch slices — the
          extension discussed in §4.1 *)
  hoist : bool;  (** inner-loop prefetch hoisting (§4.6) *)
  require_direct_iv_index : bool;
      (** insist the look-ahead array is indexed by the raw induction
          variable, as the paper's prototype does (§4.2) *)
  cleanup : bool;
      (** run dead-code elimination after emission (duplicate-line elision
          can strand unused address-generation clones) *)
  assume_margin : int;
      (** offsets up to this margin skip the fault-avoidance clamp — only
          sound after {!Split} has peeled the last [margin] iterations
          (the hoisted-checks optimisation the paper attributes to ICC,
          §6.1) *)
  provider : Distance.provider;
      (** where each loop's eq. 1 constant term comes from; {!default} is
          {!Distance.Static}, the paper's setup *)
}

val default : t
val with_c : int -> t -> t
val with_provider : Distance.provider -> t -> t

val canonical : t -> string
(** Deterministic one-line rendering of every field — the pass half of a
    content-addressed result-cache key.  Exhaustive over the record, so a
    new field cannot be forgotten silently. *)

val digest : t -> string
(** Hex MD5 of {!canonical}. *)
