(* Structured diagnostics for the prefetch pass.

   The pass must never crash the host compiler: an un-transformable loop is
   an everyday outcome, not an error.  Every reason the pass declines or
   aborts work is reified here so that [Pass.run] can return it in the
   report instead of raising, and so a fuzzing driver can assert that no
   exception ever escapes.  [?strict] callers can still turn error-severity
   diagnostics back into exceptions via {!Escalated}. *)

type severity = Note | Error

type phase = Analysis | Hoist | Vet | Emit | Cleanup

(* Why §4.6 hoisting declined a load.  These mirror the structural
   requirements of the restricted (load-free chain) form we implement. *)
type hoist_skip =
  | No_preheader  (* loop has no unique preheader to hoist into *)
  | No_outer_phi  (* chain never crosses a header phi: plain induction *)
  | Phi_init_not_value  (* header phi not seeded by a single outer value *)
  | Chain_load  (* address chain reloads memory inside the loop *)
  | Chain_call  (* address chain calls a function *)
  | Chain_inner_phi  (* address chain crosses a non-header phi *)
  | Chain_effect  (* address chain contains a store or prefetch *)

type kind =
  | Hoist_skip of hoist_skip
  | Internal of { exn : string; backtrace : string }
      (* an exception the pass caught instead of propagating *)

type t = {
  phase : phase;
  severity : severity;
  load_id : int option;  (* the load being considered, when known *)
  kind : kind;
}

exception Escalated of t
(** Raised by [Pass.run ~strict:true] in place of recording an
    error-severity diagnostic. *)

let note ?load_id phase kind = { phase; severity = Note; load_id; kind }

(* Capture a caught exception as an error-severity diagnostic.  Call this
   inside the [with] handler so the backtrace is still the raising one. *)
let of_exn ?load_id phase exn =
  {
    phase;
    severity = Error;
    load_id;
    kind =
      Internal
        {
          exn = Printexc.to_string exn;
          backtrace = Printexc.get_backtrace ();
        };
  }

let phase_to_string = function
  | Analysis -> "analysis"
  | Hoist -> "hoist"
  | Vet -> "vet"
  | Emit -> "emit"
  | Cleanup -> "cleanup"

let hoist_skip_to_string = function
  | No_preheader -> "loop has no preheader"
  | No_outer_phi -> "address chain crosses no header phi (plain induction)"
  | Phi_init_not_value -> "header phi is not seeded by a single outer value"
  | Chain_load -> "address chain contains another load"
  | Chain_call -> "address chain contains a call"
  | Chain_inner_phi -> "address chain crosses a non-header phi"
  | Chain_effect -> "address chain contains a store or prefetch"

let to_string d =
  let what =
    match d.kind with
    | Hoist_skip r -> hoist_skip_to_string r
    | Internal { exn; _ } -> "internal: " ^ exn
  in
  Printf.sprintf "[%s] %s%s%s"
    (phase_to_string d.phase)
    (match d.severity with Note -> "" | Error -> "error: ")
    (match d.load_id with
    | Some id -> Printf.sprintf "load %d: " id
    | None -> "")
    what

let pp fmt d = Format.pp_print_string fmt (to_string d)
