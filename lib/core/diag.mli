(** Structured diagnostics for the prefetch pass.

    Declining to transform a loop is an everyday outcome for a prefetching
    pass, never a reason to crash the host compiler.  Every such outcome is
    reified as a value here so {!Pass.run} can return diagnostics in its
    report instead of raising.  See docs/ROBUSTNESS.md. *)

type severity =
  | Note  (** the pass skipped something, by design *)
  | Error  (** the pass caught an exception it did not expect *)

type phase = Analysis | Hoist | Vet | Emit | Cleanup

(** Why §4.6 hoisting declined a load (restricted load-free-chain form). *)
type hoist_skip =
  | No_preheader
  | No_outer_phi
  | Phi_init_not_value
  | Chain_load
  | Chain_call
  | Chain_inner_phi
  | Chain_effect

type kind =
  | Hoist_skip of hoist_skip
  | Internal of { exn : string; backtrace : string }

type t = {
  phase : phase;
  severity : severity;
  load_id : int option;
  kind : kind;
}

exception Escalated of t
(** Raised by [Pass.run ~strict:true] in place of recording an
    error-severity diagnostic. *)

val note : ?load_id:int -> phase -> kind -> t
val of_exn : ?load_id:int -> phase -> exn -> t
(** Call inside the [with] handler so the recorded backtrace is the raising
    one. *)

val phase_to_string : phase -> string
val hoist_skip_to_string : hoist_skip -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
