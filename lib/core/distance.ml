(* Look-ahead distance providers.

   Eq. 1 gives a static distance from machine-independent heuristics; the
   provider interface lets the same pass consume better evidence when it
   exists — explicit per-loop overrides, a profiling run of the simulator,
   or an online controller that re-tunes mid-run (the lotus SWPrefetching
   pass exposes the same axis as `-prefetch-distance-provider`).

   A provider answers one question per loop: with what constant term [c]
   should eq. 1 schedule this loop's chain, and should the loop be
   prefetched at all?  The adaptive provider additionally asks the code
   generator to read the distance from a per-loop register (an extra
   function parameter) instead of baking it into immediates, so the
   simulator's tuner can rewrite it between windows. *)

type choice = {
  c : int; (* eq. 1 constant term, in iterations *)
  enabled : bool; (* emit prefetches for this loop at all? *)
}

type adaptive_params = {
  window : int; (* demand loads per tuning window *)
  min_c : int;
  max_c : int;
}

type provider =
  | Static
  | Fixed of { default_c : int option; per_loop : (int * int) list }
  | Profile of { per_loop : (int * choice) list }
  | Adaptive of adaptive_params

let default_adaptive = { window = 4096; min_c = 4; max_c = 512 }

let kind = function
  | Static -> "static"
  | Fixed _ -> "fixed"
  | Profile _ -> "profile"
  | Adaptive _ -> "adaptive"

(* [~default_c] is the pass-wide Config.c; [~header] identifies the loop by
   its header block in the pre-pass function (the pass never renumbers
   blocks, so profile data gathered on the plain program stays valid). *)
let choose provider ~default_c ~header =
  match provider with
  | Static -> { c = default_c; enabled = true }
  | Fixed { default_c = d; per_loop } -> (
      match List.assoc_opt header per_loop with
      | Some c when c <= 0 -> { c = 0; enabled = false } (* explicit off *)
      | Some c -> { c; enabled = true }
      | None -> { c = Option.value d ~default:default_c; enabled = true })
  | Profile { per_loop } -> (
      match List.assoc_opt header per_loop with
      | Some ch -> ch
      | None -> { c = default_c; enabled = true } (* unprofiled: eq. 1 *))
  | Adaptive _ ->
      (* Initial value only; the tuner owns the distance after that. *)
      { c = default_c; enabled = true }

let pp fmt = function
  | Static -> Format.fprintf fmt "static"
  | Fixed { default_c; per_loop } ->
      Format.fprintf fmt "fixed(%s%s)"
        (match default_c with Some c -> Printf.sprintf "c=%d" c | None -> "c=default")
        (String.concat ""
           (List.map (fun (h, c) -> Printf.sprintf ",bb%d=%d" h c) per_loop))
  | Profile { per_loop } ->
      Format.fprintf fmt "profile(%s)"
        (String.concat ","
           (List.map
              (fun (h, ch) ->
                Printf.sprintf "bb%d=%s" h
                  (if ch.enabled then string_of_int ch.c else "off"))
              per_loop))
  | Adaptive p ->
      Format.fprintf fmt "adaptive(window=%d,c=%d..%d)" p.window p.min_c
        p.max_c
