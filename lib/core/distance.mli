(** Look-ahead distance providers: where the constant term of eq. 1 comes
    from, per loop — the paper's static heuristic, explicit overrides, a
    profiling run, or an online tuner. *)

type choice = {
  c : int;  (** eq. 1 constant term, in iterations *)
  enabled : bool;  (** emit prefetches for this loop at all? *)
}

type adaptive_params = {
  window : int;  (** demand loads per tuning window *)
  min_c : int;
  max_c : int;
}

type provider =
  | Static  (** eq. 1 with the pass-wide [Config.c] — the paper's default *)
  | Fixed of { default_c : int option; per_loop : (int * int) list }
      (** explicit per-loop-header overrides; an entry [<= 0] disables
          prefetching for that loop; loops without an entry use
          [default_c] (falling back to [Config.c]) *)
  | Profile of { per_loop : (int * choice) list }
      (** choices measured by a profiling run (see {!Profdata});
          unprofiled loops fall back to eq. 1 *)
  | Adaptive of adaptive_params
      (** distances live in per-loop registers re-tuned online by the
          simulator's windowed controller ({!Spf_sim.Tuner}) *)

val default_adaptive : adaptive_params
(** window = 4096 demand loads, c clamped to [4, 512]. *)

val choose : provider -> default_c:int -> header:int -> choice
(** The provider's decision for the loop whose header block (in the
    pre-pass function) is [header]. *)

val kind : provider -> string
(** ["static" | "fixed" | "profile" | "adaptive"]. *)

val pp : Format.formatter -> provider -> unit
