module Ir = Spf_ir.Ir
module Loops = Spf_ir.Loops

(* Prefetch loop hoisting (§4.6).

   Loads inside an inner loop whose address depends on a header phi taking
   its initial value from outside the loop (a linked-list walk, or an edge
   scan seeded by an outer-loop value) cannot be given look-ahead within the
   inner loop.  When the path from that phi to the load is pure address
   arithmetic — no further loads, calls or phis — we can substitute the
   phi's initial value, hoist the cloned computation into the preheader,
   and prefetch the inner loop's first access one trip early.

   Because the clone contains no loads the hoisted code cannot fault, which
   discharges §4.6's safety obligation trivially (the restricted form we
   implement; DESIGN.md §5 records the restriction). *)

type hoisted = {
  load_id : int;
  prefetch_id : int;
  preheader : int;
  support_ids : int list;
}

(* Internal control flow only; [try_hoist] converts it to a [result] so no
   exception crosses the module boundary. *)
exception Skip of Diag.hoist_skip

(* Gather the address-computation chain of [load] within [l], substituting
   header phis by their initial values.  Returns the chain (ids inside the
   loop, in discovery postorder = dependence order) and the substitution. *)
let chain_of (a : Analysis.t) (l : Loops.loop) (load : Ir.instr) =
  let func = a.Analysis.func in
  let subst : (int, Ir.operand) Hashtbl.t = Hashtbl.create 4 in
  let chain = ref [] in
  let visited = Hashtbl.create 8 in
  let has_phi = ref false in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      let i = Ir.instr func id in
      if not (Loops.contains l i.block) then () (* usable directly *)
      else
        match i.kind with
        | Ir.Phi incoming when i.block = l.header -> (
            let outside, _ =
              List.partition (fun (p, _) -> not (Loops.contains l p)) incoming
            in
            match outside with
            | [ (_, (Ir.Var _ as init)) ] ->
                (* §4.6: the phi must reference a *value* from an outer
                   loop; constant-seeded phis are ordinary induction
                   variables, served by the main pass's look-ahead. *)
                has_phi := true;
                Hashtbl.replace subst id init
            | [ (_, (Ir.Imm _ | Ir.Fimm _)) ] ->
                raise (Skip Diag.No_outer_phi)
            | _ -> raise (Skip Diag.Phi_init_not_value))
        | Ir.Load _ when id <> load.id -> raise (Skip Diag.Chain_load)
        | Ir.Call _ -> raise (Skip Diag.Chain_call)
        | Ir.Phi _ -> raise (Skip Diag.Chain_inner_phi)
        | Ir.Store _ | Ir.Prefetch _ -> raise (Skip Diag.Chain_effect)
        | Ir.Binop _ | Ir.Cmp _ | Ir.Select _ | Ir.Gep _ | Ir.Alloc _
        | Ir.Param _ | Ir.Load _ ->
            List.iter
              (function
                | Ir.Var v -> visit v
                | Ir.Imm _ | Ir.Fimm _ -> ())
              (Ir.srcs i.kind);
            chain := id :: !chain
    end
  in
  visit load.id;
  if not !has_phi then raise (Skip Diag.No_outer_phi);
  (List.rev !chain, subst)

let try_hoist (a : Analysis.t) (l : Loops.loop) (load : Ir.instr) :
    (hoisted, Diag.hoist_skip) result =
  match l.preheader with
  | None -> Error Diag.No_preheader
  | Some preheader -> (
      match chain_of a l load with
      | exception Skip reason -> Error reason
      | chain, subst ->
          let func = a.Analysis.func in
          let clones = Hashtbl.create 8 in
          let map_operand (o : Ir.operand) =
            match o with
            | Ir.Var v -> (
                match Hashtbl.find_opt subst v with
                | Some init -> init
                | None -> (
                    match Hashtbl.find_opt clones v with
                    | Some c -> Ir.Var c
                    | None -> o))
            | Ir.Imm _ | Ir.Fimm _ -> o
          in
          let new_ids = ref [] in
          let prefetch_id = ref (-1) in
          List.iter
            (fun id ->
              let orig = Ir.instr func id in
              let mapped = Ir.map_srcs map_operand orig.kind in
              let kind =
                if id = load.id then
                  match mapped with
                  | Ir.Load (_, addr) -> Ir.Prefetch addr
                  | _ -> assert false
                else mapped
              in
              let c =
                Ir.fresh_instr func ~name:("pfh." ^ orig.name) ~block:preheader
                  kind
              in
              Hashtbl.replace clones id c.id;
              if id = load.id then prefetch_id := c.id
              else new_ids := c.id :: !new_ids)
            chain;
          let support = List.rev !new_ids in
          Ir.insert_at_end func ~bid:preheader (support @ [ !prefetch_id ]);
          Ok
            {
              load_id = load.id;
              prefetch_id = !prefetch_id;
              preheader;
              support_ids = support;
            })

(* Hoist every eligible load (outside [exclude_blocks]).  Runs before the
   main pass on the pristine function; the code it inserts contains no
   loads, so it cannot create new candidates for the main pass.  Skipped
   loads are recorded as diagnostics, never raised: a load the restricted
   §4.6 form cannot handle is ordinary input, and even an internal failure
   on one load must not take down the others (or the host compiler). *)
let run ?(exclude_blocks = []) (a : Analysis.t) (_config : Config.t) :
    hoisted list * Diag.t list =
  let func = a.Analysis.func in
  let loads = ref [] in
  Ir.iter_instrs func (fun i ->
      match i.kind with
      | Ir.Load _ when not (List.mem i.block exclude_blocks) -> (
          match Loops.innermost a.Analysis.loops i.block with
          | Some li -> loads := (i, li) :: !loads
          | None -> ())
      | _ -> ());
  let hoisted = ref [] and diags = ref [] in
  List.iter
    (fun ((load : Ir.instr), li) ->
      match try_hoist a (Loops.loop a.Analysis.loops li) load with
      | Ok h -> hoisted := h :: !hoisted
      | Error reason ->
          diags :=
            Diag.note ~load_id:load.id Diag.Hoist (Diag.Hoist_skip reason)
            :: !diags
      | exception exn ->
          diags := Diag.of_exn ~load_id:load.id Diag.Hoist exn :: !diags)
    (List.rev !loads);
  (List.rev !hoisted, List.rev !diags)
