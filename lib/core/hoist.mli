(** Prefetch loop hoisting (§4.6), restricted to load-free address chains:
    inner-loop loads whose address flows from a header phi are prefetched in
    the preheader with the phi replaced by its initial value. *)

type hoisted = {
  load_id : int;
  prefetch_id : int;
  preheader : int;
  support_ids : int list;
}

val try_hoist :
  Analysis.t ->
  Spf_ir.Loops.loop ->
  Spf_ir.Ir.instr ->
  (hoisted, Diag.hoist_skip) result
(** [Error] carries why the restricted §4.6 form declined; no exception
    escapes. *)

val run :
  ?exclude_blocks:int list ->
  Analysis.t ->
  Config.t ->
  hoisted list * Diag.t list
(** Hoist every eligible load whose block is not excluded; skipped loads
    come back as note-severity diagnostics and internal failures as
    error-severity ones — [run] itself never raises.  Mutates the function;
    the inserted code contains no loads, so it cannot feed the main pass
    new candidates. *)
