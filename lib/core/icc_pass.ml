module Ir = Spf_ir.Ir
module Loops = Spf_ir.Loops

(* A model of the Intel compiler's stride-indirect prefetching pass
   (Krishnaiyer et al., IPDPSW'13), the "ICC-generated" baseline of
   Fig 4(d).  Per the paper's observations it "only looks for the simplest
   patterns":

   - exactly an [A[B[i]]] chain — two loads, geps only, no intermediate
     computation (so the hash computations of RA and HJ defeat it);
   - a compile-time-constant trip count, standing in for its need to prove
     array extents statically (so Graph500's runtime frontier/row bounds
     defeat it, as §6.1 reports).

   Everything else (clamping, scheduling, emission) is shared with the main
   pass. *)

let simple_enough (a : Analysis.t) (cand : Dfs.candidate) =
  let func = a.Analysis.func in
  let gep_or_load id =
    match (Ir.instr func id).kind with
    | Ir.Gep _ | Ir.Load _ -> true
    | _ -> false
  in
  List.length (Dfs.chain_loads a cand) = 2
  && List.for_all gep_or_load cand.slice
  && match cand.iv.bound with Some (Ir.Imm _) -> true | _ -> false

let run ?(config = Config.default) (func : Ir.func) : Pass.report =
  let config = { config with Config.hoist = false } in
  let a = Analysis.make func in
  let loads = ref [] in
  Ir.iter_instrs func (fun i ->
      match i.kind with
      | Ir.Load _ when Loops.in_any_loop a.Analysis.loops i.block ->
          loads := i.Ir.id :: !loads
      | _ -> ());
  let loads = Analysis.sort_program_order a (List.rev !loads) in
  let state = Codegen.create_state () in
  let decisions =
    List.map
      (fun load_id ->
        let load = Ir.instr func load_id in
        match Dfs.find_candidate a load with
        | None -> (load_id, Pass.Rejected Safety.No_candidate)
        | Some cand -> (
            if List.length (Dfs.chain_loads a cand) <= 1 then
              (load_id, Pass.Rejected Safety.Pure_stride)
            else if not (simple_enough a cand) then
              (load_id, Pass.Rejected Safety.Indirect_iv_use)
            else
              match Safety.vet a config cand with
              | Error r -> (load_id, Pass.Rejected r)
              | Ok clamp -> (
                  match
                    Codegen.emit a config cand clamp
                      ~dist:(Codegen.Dconst config.Config.c) ~state
                  with
                  | [] -> (load_id, Pass.Rejected Safety.Duplicate)
                  | groups -> (load_id, Pass.Emitted groups))))
      loads
  in
  let n_prefetches, n_support = Pass.count_prefetches decisions in
  {
    Pass.decisions;
    n_prefetches;
    n_support;
    diags = [];
    loop_distances = [];
    adaptive = None;
  }
