module Ir = Spf_ir.Ir
module Loops = Spf_ir.Loops

(* The pass driver: Algorithm 1 end to end.

   Phases:
   1. hoisting (§4.6) on the pristine function — inserts only load-free
      code, so it cannot perturb phase 2's candidate search;
   2. analysis + candidate collection + vetting, all read-only;
   3. code emission, which mutates the function.

   The returned report records, for every load inspected, either what was
   emitted or precisely why the load was rejected — tests and the CLI lean
   on this heavily.

   Robustness contract: [run] never raises (unless [~strict:true] asks it
   to).  A prefetch pass is an optimisation — the worst acceptable outcome
   on any input is "no prefetches emitted", never an exception that takes
   down the host compiler.  Exceptions from any phase are caught at the
   finest containing granularity (per load where possible), converted to
   {!Diag.t} values in [report.diags], and the rest of the work continues. *)

type decision =
  | Emitted of Codegen.emitted list
  | Hoisted of Hoist.hoisted
  | Rejected of Safety.reject
  | Skipped of Diag.t
      (* a phase failed internally on this load; contained, not raised *)

(* The distance decision the provider made for one loop, recorded for
   diagnostics and for building the adaptive tuner (the [dist_slot] is the
   distance-register parameter the tuner rewrites). *)
type loop_distance = {
  header : int; (* loop header block *)
  distance : int; (* eq. 1 constant term (initial value when adaptive) *)
  enabled : bool;
  dist_slot : int option; (* adaptive distance-register instr id *)
}

type report = {
  decisions : (int * decision) list; (* load id -> decision, program order *)
  n_prefetches : int;
  n_support : int; (* address-generation instructions added *)
  diags : Diag.t list; (* skips and contained failures, in discovery order *)
  loop_distances : loop_distance list; (* per prefetched loop, first-seen order *)
  adaptive : Distance.adaptive_params option; (* when the provider is adaptive *)
}

let count_prefetches decisions =
  List.fold_left
    (fun (npf, nsup) (_, d) ->
      match d with
      | Emitted groups ->
          ( npf + List.length groups,
            nsup
            + List.fold_left
                (fun acc (g : Codegen.emitted) ->
                  (* +2 for the advance and clamp of each group *)
                  acc + List.length g.support_ids + 2)
                0 groups )
      | Hoisted h -> (npf + 1, nsup + List.length h.support_ids)
      | Rejected _ | Skipped _ -> (npf, nsup))
    (0, 0) decisions

let run ?(config = Config.default) ?(exclude_blocks = []) ?(strict = false)
    (func : Ir.func) : report =
  let diags = ref [] in
  let record (d : Diag.t) =
    if strict && d.Diag.severity = Diag.Error then raise (Diag.Escalated d);
    diags := d :: !diags
  in
  (* Per-loop distance decisions, first-seen order, plus the lazily created
     distance registers of the adaptive provider. *)
  let loop_dists : (int, loop_distance) Hashtbl.t = Hashtbl.create 4 in
  let loop_order = ref [] in
  let record_loop (ld : loop_distance) =
    if not (Hashtbl.mem loop_dists ld.header) then begin
      Hashtbl.replace loop_dists ld.header ld;
      loop_order := ld.header :: !loop_order
    end
  in
  let finish decisions =
    let n_prefetches, n_support = count_prefetches decisions in
    {
      decisions;
      n_prefetches;
      n_support;
      diags = List.rev !diags;
      loop_distances =
        List.rev_map (fun h -> Hashtbl.find loop_dists h) !loop_order;
      adaptive =
        (match config.Config.provider with
        | Distance.Adaptive p -> Some p
        | _ -> None);
    }
  in
  let excluded b = List.mem b exclude_blocks in
  (* Phase 1: hoisting. *)
  let hoisted =
    if config.Config.hoist then (
      match Hoist.run ~exclude_blocks (Analysis.make func) config with
      | hs, ds ->
          List.iter record ds;
          hs
      | exception exn ->
          record (Diag.of_exn Diag.Hoist exn);
          [])
    else []
  in
  let hoist_decisions =
    List.map (fun (h : Hoist.hoisted) -> (h.load_id, Hoisted h)) hoisted
  in
  (* Phase 2: analyse and vet (read-only). *)
  match Analysis.make func with
  | exception exn ->
      (* Without analysis there are no candidates; report what phase 1 did. *)
      record (Diag.of_exn Diag.Analysis exn);
      finish hoist_decisions
  | a ->
      let loads = ref [] in
      Ir.iter_instrs func (fun i ->
          match i.kind with
          | Ir.Load _
            when Loops.in_any_loop a.Analysis.loops i.block
                 && not (excluded i.block) ->
              loads := i :: !loads
          | _ -> ());
      let loads =
        Analysis.sort_program_order a
          (List.rev_map (fun i -> i.Ir.id) !loads)
      in
      let vetted =
        List.map
          (fun load_id ->
            match
              let load = Ir.instr func load_id in
              match Dfs.find_candidate a load with
              | None -> Error Safety.No_candidate
              | Some cand -> (
                  if List.length (Dfs.chain_loads a cand) <= 1 then
                    Error Safety.Pure_stride
                  else
                    match Safety.vet a config cand with
                    | Error r -> Error r
                    | Ok clamp -> Ok (cand, clamp))
            with
            | verdict -> (load_id, `Vet verdict)
            | exception exn ->
                let d = Diag.of_exn ~load_id Diag.Vet exn in
                record d;
                (load_id, `Skip d))
          loads
      in
      (* Phase 3: emit.  The provider decides, per loop, the constant term
         of eq. 1 and whether to prefetch at all; the adaptive provider
         additionally materialises one distance register per loop — an
         extra function parameter appended to the entry block, which DCE
         spares ([param_ids]) and the simulator's tuner rewrites. *)
      let state = Codegen.create_state () in
      let dist_regs : (int, int) Hashtbl.t = Hashtbl.create 4 in
      let dist_reg ~header ~init_c =
        match Hashtbl.find_opt dist_regs header with
        | Some slot -> slot
        | None ->
            let n = Array.length func.Ir.param_ids in
            let i =
              Ir.append_instr func ~bid:func.Ir.entry ~name:"pf.dist"
                (Ir.Param n)
            in
            func.Ir.param_ids <- Array.append func.Ir.param_ids [| i.Ir.id |];
            ignore init_c;
            Hashtbl.replace dist_regs header i.Ir.id;
            i.Ir.id
      in
      let decisions =
        List.map
          (fun (load_id, v) ->
            match v with
            | `Skip d -> (load_id, Skipped d)
            | `Vet (Error r) -> (load_id, Rejected r)
            | `Vet (Ok (cand, clamp)) -> (
                let header = (Analysis.loop_of_iv a cand.Dfs.iv).Loops.header in
                let choice =
                  Distance.choose config.Config.provider
                    ~default_c:config.Config.c ~header
                in
                if not choice.Distance.enabled then begin
                  record_loop
                    { header; distance = 0; enabled = false; dist_slot = None };
                  (load_id, Rejected Safety.Provider_disabled)
                end
                else
                  let dist =
                    match config.Config.provider with
                    | Distance.Adaptive _ ->
                        let slot =
                          dist_reg ~header ~init_c:choice.Distance.c
                        in
                        Codegen.Dreg { slot; init_c = choice.Distance.c }
                    | _ -> Codegen.Dconst choice.Distance.c
                  in
                  match Codegen.emit a config cand clamp ~dist ~state with
                  | [] -> (load_id, Rejected Safety.Duplicate)
                  | groups ->
                      record_loop
                        {
                          header;
                          distance = choice.Distance.c;
                          enabled = true;
                          dist_slot =
                            (match dist with
                            | Codegen.Dreg { slot; _ } -> Some slot
                            | Codegen.Dconst _ -> None);
                        };
                      (load_id, Emitted groups)
                  | exception exn ->
                      let d = Diag.of_exn ~load_id Diag.Emit exn in
                      record d;
                      (load_id, Skipped d)))
          vetted
      in
      let decisions = hoist_decisions @ decisions in
      (* Duplicate-line elision can leave address-generation clones with no
         remaining users; sweep them so instruction-count reports (Fig 8)
         reflect the code a real backend would run. *)
      (if config.Config.cleanup then
         try ignore (Spf_ir.Simplify.dce func)
         with exn -> record (Diag.of_exn Diag.Cleanup exn));
      finish decisions

let pp_report (func : Ir.func) fmt (r : report) =
  let pp_decision fmt = function
    | Emitted groups ->
        Format.fprintf fmt "emitted %d prefetch(es):" (List.length groups);
        List.iter
          (fun (g : Codegen.emitted) ->
            Format.fprintf fmt "@   load %%%s.%d at offset %d (+%d insts)"
              (Ir.instr func g.chain_load).name g.chain_load g.offset_iters
              (List.length g.support_ids + 2))
          groups
    | Hoisted h ->
        Format.fprintf fmt "hoisted prefetch into bb%d (+%d insts)"
          h.preheader
          (List.length h.support_ids)
    | Rejected r -> Format.fprintf fmt "rejected: %s" (Safety.string_of_reject r)
    | Skipped d -> Format.fprintf fmt "skipped: %s" (Diag.to_string d)
  in
  Format.fprintf fmt "prefetch pass: %d prefetches, %d support instructions@."
    r.n_prefetches r.n_support;
  (match r.adaptive with
  | Some p ->
      Format.fprintf fmt
        "  adaptive distances: window=%d demand loads, c in [%d, %d]@."
        p.Distance.window p.Distance.min_c p.Distance.max_c
  | None -> ());
  List.iter
    (fun ld ->
      if ld.enabled then
        Format.fprintf fmt "  loop bb%d: distance c=%d%s@." ld.header
          ld.distance
          (match ld.dist_slot with
          | Some s -> Printf.sprintf " (register %%%d)" s
          | None -> "")
      else
        Format.fprintf fmt "  loop bb%d: prefetching disabled by provider@."
          ld.header)
    r.loop_distances;
  List.iter
    (fun (load_id, d) ->
      Format.fprintf fmt "  load %%%s.%d: %a@."
        (Ir.instr func load_id).name load_id pp_decision d)
    r.decisions;
  List.iter
    (fun d ->
      match d.Diag.severity with
      | Diag.Error -> Format.fprintf fmt "  diag: %a@." Diag.pp d
      | Diag.Note -> ())
    r.diags
