(** The automatic software-prefetch generation pass (Algorithm 1, with the
    fault-avoidance rules of §4.2, eq. 1 scheduling, and §4.6 hoisting). *)

type decision =
  | Emitted of Codegen.emitted list
  | Hoisted of Hoist.hoisted
  | Rejected of Safety.reject
  | Skipped of Diag.t
      (** a phase failed internally on this load; the failure was contained
          and recorded rather than raised *)

(** The distance decision the provider made for one loop (identified by
    its header block in the pre-pass function). *)
type loop_distance = {
  header : int;
  distance : int;
      (** eq. 1 constant term; the initial value when adaptive *)
  enabled : bool;  (** [false] when the provider turned the loop off *)
  dist_slot : int option;
      (** the adaptive distance register: instr id of the extra [Param]
          the pass appended, rewritten online by {!Spf_sim.Tuner} *)
}

type report = {
  decisions : (int * decision) list;
      (** per inspected load (id), in program order *)
  n_prefetches : int;
  n_support : int;  (** address-generation instructions added *)
  diags : Diag.t list;
      (** hoist skips and contained internal failures, in discovery order *)
  loop_distances : loop_distance list;
      (** provider decisions, one per loop that reached emission,
          first-seen order *)
  adaptive : Distance.adaptive_params option;
      (** the tuner parameters when [config.provider] is adaptive *)
}

val count_prefetches : (int * decision) list -> int * int
(** (prefetches, support instructions) summed over a decision list. *)

val run :
  ?config:Config.t ->
  ?exclude_blocks:int list ->
  ?strict:bool ->
  Spf_ir.Ir.func ->
  report
(** Mutate [func] in place, inserting prefetches and their address
    generation; returns what was done and why.  Loads in [exclude_blocks]
    are not considered (used by {!Split} to leave peeled epilogues
    prefetch-free).

    Never raises by default: exceptions from any phase are caught at the
    finest containing granularity, recorded in [report.diags] (and as
    {!Skipped} decisions where a specific load is implicated), and the
    remaining loads are still processed — a prefetch pass that cannot
    transform an input must degrade to emitting nothing, not crash the
    host compiler.  With [~strict:true], error-severity diagnostics are
    escalated: {!Diag.Escalated} is raised at the point of containment
    instead (note-severity hoist skips never escalate — declining a loop is
    normal operation). *)

val pp_report : Spf_ir.Ir.func -> Format.formatter -> report -> unit
