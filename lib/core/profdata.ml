module Ir = Spf_ir.Ir

(* Versioned on-disk profile: the per-loop distance choices a profiling run
   of the simulator measured, stamped with a digest of the *plain* (pre-
   pass) program so stale or mismatched hints are rejected instead of
   silently misapplied.  Loop headers are block ids of that plain program;
   the pass never renumbers blocks, so they remain valid when the profile
   is consumed by a later pass over the same program.

   The format is a small, self-describing JSON object; the parser below
   accepts exactly the subset this module writes (objects, arrays, strings,
   integers, booleans) and reports position-free but field-precise
   errors — good enough for a file we also author. *)

type loop_entry = {
  header : int;
  c : int; (* chosen eq. 1 constant term *)
  enabled : bool;
  accesses : int; (* demand loads attributed to the loop when measured *)
  misses : int; (* DRAM fills attributed to the loop when measured *)
}

type t = {
  version : int;
  signature : string; (* Digest.to_hex of Ir.signature of the plain program *)
  machine : string;
  default_c : int;
  loops : loop_entry list;
}

let version = 1
let signature_of func = Digest.to_hex (Digest.string (Ir.signature func))

let make ~func ~machine ~default_c ~loops =
  { version; signature = signature_of func; machine; default_c; loops }

let provider t =
  Distance.Profile
    {
      per_loop =
        List.map
          (fun e -> (e.header, { Distance.c = e.c; enabled = e.enabled }))
          t.loops;
    }

(* Writer. *)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let b = Buffer.create 512 in
      Buffer.add_string b "{\n";
      Printf.bprintf b "  \"version\": %d,\n" t.version;
      Printf.bprintf b "  \"signature\": \"%s\",\n" t.signature;
      Printf.bprintf b "  \"machine\": \"%s\",\n" t.machine;
      Printf.bprintf b "  \"default_c\": %d,\n" t.default_c;
      Buffer.add_string b "  \"loops\": [";
      List.iteri
        (fun k e ->
          if k > 0 then Buffer.add_char b ',';
          Printf.bprintf b
            "\n    { \"header\": %d, \"c\": %d, \"enabled\": %b, \
             \"accesses\": %d, \"misses\": %d }"
            e.header e.c e.enabled e.accesses e.misses)
        t.loops;
      Buffer.add_string b "\n  ]\n}\n";
      output_string oc (Buffer.contents b))

(* Reader: a recursive-descent parser for the JSON subset above. *)

exception Bad of string

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Int of int
  | Bool of bool

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect ch =
    skip_ws ();
    if peek () <> ch then
      raise (Bad (Printf.sprintf "expected '%c' at byte %d" ch !pos));
    advance ()
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\000' -> raise (Bad "unterminated string")
      | '\\' ->
          advance ();
          (match peek () with
          | '"' | '\\' | '/' -> Buffer.add_char b (peek ())
          | c -> raise (Bad (Printf.sprintf "unsupported escape '\\%c'" c)));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (
          advance ();
          Obj [])
        else begin
          let rec members acc =
            let k = string_lit () in
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                skip_ws ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> raise (Bad "expected ',' or '}' in object")
          in
          Obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (
          advance ();
          Arr [])
        else begin
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> raise (Bad "expected ',' or ']' in array")
          in
          Arr (elems [])
        end
    | '"' -> Str (string_lit ())
    | 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then (
          pos := !pos + 4;
          Bool true)
        else raise (Bad "bad literal")
    | 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then (
          pos := !pos + 5;
          Bool false)
        else raise (Bad "bad literal")
    | '-' | '0' .. '9' ->
        let start = !pos in
        if peek () = '-' then advance ();
        while match peek () with '0' .. '9' -> true | _ -> false do
          advance ()
        done;
        if !pos = start then raise (Bad "bad number");
        Int (int_of_string (String.sub s start (!pos - start)))
    | c -> raise (Bad (Printf.sprintf "unexpected character '%c'" c))
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage after document");
  v

let field name = function
  | Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> raise (Bad (Printf.sprintf "missing field %S" name)))
  | _ -> raise (Bad (Printf.sprintf "expected an object holding %S" name))

let as_int name = function
  | Int k -> k
  | _ -> raise (Bad (Printf.sprintf "field %S: expected an integer" name))

let as_str name = function
  | Str s -> s
  | _ -> raise (Bad (Printf.sprintf "field %S: expected a string" name))

let as_bool name = function
  | Bool b -> b
  | _ -> raise (Bad (Printf.sprintf "field %S: expected a boolean" name))

let of_json j =
  let v = as_int "version" (field "version" j) in
  if v <> version then
    raise
      (Bad
         (Printf.sprintf
            "profile version %d not supported (this build writes version %d); \
             re-run `spf profile`"
            v version));
  let entry e =
    {
      header = as_int "header" (field "header" e);
      c = as_int "c" (field "c" e);
      enabled = as_bool "enabled" (field "enabled" e);
      accesses = as_int "accesses" (field "accesses" e);
      misses = as_int "misses" (field "misses" e);
    }
  in
  {
    version = v;
    signature = as_str "signature" (field "signature" j);
    machine = as_str "machine" (field "machine" j);
    default_c = as_int "default_c" (field "default_c" j);
    loops =
      (match field "loops" j with
      | Arr es -> List.map entry es
      | _ -> raise (Bad "field \"loops\": expected an array"));
  }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match of_json (parse_json contents) with
      | t -> Ok t
      | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg))

(* Staleness check: the profile must have been measured on exactly this
   (plain) program.  A machine mismatch is reported too — distances tuned
   for one memory system are at best approximate on another. *)
let check t ~func ~machine =
  let sg = signature_of func in
  if not (String.equal t.signature sg) then
    Error
      (Printf.sprintf
         "profile was measured on a different program (signature %s, this \
          program is %s); re-run `spf profile` on the current program"
         t.signature sg)
  else if not (String.equal t.machine machine) then
    Error
      (Printf.sprintf
         "profile was measured on machine %S but this run targets %S; \
          re-run `spf profile` for the target machine"
         t.machine machine)
  else Ok ()
