(** Versioned on-disk profile files: per-loop distance choices measured by
    a profiling run of the simulator, stamped with a digest of the plain
    (pre-pass) program so stale or mismatched hints are rejected instead
    of silently misapplied. *)

type loop_entry = {
  header : int;  (** loop header block in the plain program *)
  c : int;  (** chosen eq. 1 constant term *)
  enabled : bool;
  accesses : int;  (** demand loads attributed to the loop when measured *)
  misses : int;  (** DRAM fills attributed to the loop when measured *)
}

type t = {
  version : int;
  signature : string;
      (** hex digest of {!Spf_ir.Ir.signature} of the plain program *)
  machine : string;
  default_c : int;
  loops : loop_entry list;
}

val version : int
(** The format version this build reads and writes. *)

val signature_of : Spf_ir.Ir.func -> string

val make :
  func:Spf_ir.Ir.func ->
  machine:string ->
  default_c:int ->
  loops:loop_entry list ->
  t
(** Stamp a freshly measured profile for [func] (which must be the plain,
    pre-pass program). *)

val provider : t -> Distance.provider
(** The {!Distance.Profile} provider carrying this profile's choices. *)

val save : string -> t -> unit
val load : string -> (t, string) result

val check : t -> func:Spf_ir.Ir.func -> machine:string -> (unit, string) result
(** Reject a profile measured on a different program (signature mismatch)
    or for a different machine model, with an actionable message. *)
