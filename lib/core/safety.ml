module Ir = Spf_ir.Ir
module Loops = Spf_ir.Loops
module Dom = Spf_ir.Dom
module Indvar = Spf_ir.Indvar
module IntSet = Set.Make (Int)

(* Candidate vetting: the filters of Algorithm 1 (lines 34-40) and the
   fault-avoidance conditions of §4.2.

   A candidate survives only if
   - its slice contains no calls (side effects) and no non-induction phis;
   - every slice instruction executes unconditionally in each iteration of
     the induction variable's loop (its block dominates the single latch) —
     this is the "no loads conditional on loop-variant values" rule;
   - no store in the loop may alias an address-generating load's array;
   - a clamp bound for the look-ahead index can be established, either from
     the loop's (single) exit condition or from the look-ahead array's
     allocation size. *)

type reject =
  | No_candidate (* DFS found no induction variable *)
  | Contains_call
  | Non_iv_phi
  | Conditional_code
  | Store_alias
  | No_clamp
  | Indirect_iv_use
  | Multi_latch
  | Bad_step
  | Pure_stride (* t = 1: left to the hardware prefetcher (§4.3) *)
  | Duplicate
  | Provider_disabled (* the distance provider turned this loop off *)

let string_of_reject = function
  | No_candidate -> "no induction variable reachable"
  | Contains_call -> "slice contains a (possibly impure) call"
  | Non_iv_phi -> "slice contains a non-induction phi"
  | Conditional_code -> "slice is conditional on loop-variant control flow"
  | Store_alias -> "a store in the loop may alias an address-generating load"
  | No_clamp -> "no safe look-ahead clamp could be established"
  | Indirect_iv_use -> "induction variable is not used as a direct array index"
  | Multi_latch -> "loop has multiple latches"
  | Bad_step -> "induction step is not a positive constant"
  | Pure_stride -> "pure stride access: left to the hardware prefetcher"
  | Duplicate -> "identical prefetch already emitted"
  | Provider_disabled -> "distance provider disabled prefetching for this loop"

(* How to clamp the looked-ahead induction value (line 49 of Algorithm 1):
   either a known constant limit, or [base + delta] for a loop-invariant
   bound operand. *)
type clamp = Clamp_imm of int | Clamp_expr of Ir.operand * int

let clamp_from_bound (iv : Indvar.ivar) =
  match (iv.bound, iv.bound_cmp) with
  | Some (Ir.Imm n), Some (Ir.Slt | Ir.Ne) -> Some (Clamp_imm (n - 1))
  | Some (Ir.Imm n), Some Ir.Sle -> Some (Clamp_imm n)
  | Some (Ir.Var _ as b), Some (Ir.Slt | Ir.Ne) -> Some (Clamp_expr (b, -1))
  | Some (Ir.Var _ as b), Some Ir.Sle -> Some (Clamp_expr (b, 0))
  | _, _ -> None

(* Clamp derived from the look-ahead array's allocation: safe only when the
   chain has at most one address-generating (real) load, because deeper
   loads would consume values from beyond the loop's own range (§4.2). *)
let clamp_from_alloc (a : Analysis.t) (cand : Dfs.candidate) ~n_chain_loads =
  if n_chain_loads > 2 then None
  else begin
    let func = a.Analysis.func in
    (* Find the gep(s) indexed directly by the induction variable. *)
    let limits =
      List.filter_map
        (fun id ->
          match (Ir.instr func id).kind with
          | Ir.Gep { base; index = Ir.Var v; scale }
            when v = cand.iv.iv_id -> (
              match Analysis.root_of a base with
              | Analysis.Ralloc alloc_id -> (
                  match (Ir.instr func alloc_id).kind with
                  | Ir.Alloc (Ir.Imm size) when scale > 0 ->
                      Some ((size / scale) - 1)
                  | _ -> None)
              | Analysis.Rparam _ | Analysis.Unknown -> None)
          | _ -> None)
        cand.slice
    in
    match limits with
    | [] -> None
    | l :: rest -> Some (Clamp_imm (List.fold_left min l rest))
  end

let vet (a : Analysis.t) (config : Config.t) (cand : Dfs.candidate) :
    (clamp, reject) result =
  let func = a.Analysis.func in
  let loop = Analysis.loop_of_iv a cand.iv in
  let instr_of id = Ir.instr func id in
  (* Filter: calls and non-induction phis (lines 34-40). *)
  let bad_call id =
    match (instr_of id).kind with
    | Ir.Call { pure; _ } -> not (pure && config.Config.allow_pure_calls)
    | _ -> false
  in
  let non_iv_phi id =
    match (instr_of id).kind with
    | Ir.Phi _ -> not (Indvar.is_ivar a.Analysis.ivs id)
    | _ -> false
  in
  if List.exists bad_call cand.slice then Error Contains_call
  else if List.exists non_iv_phi cand.slice then Error Non_iv_phi
  else if cand.iv.step < 1 then Error Bad_step
  else begin
    match loop.latches with
    | [] | _ :: _ :: _ -> Error Multi_latch
    | [ latch ] ->
        (* Unconditional execution within the loop iteration. *)
        let unconditional id =
          let b = (instr_of id).block in
          Loops.contains loop b && Dom.dominates a.Analysis.dom b latch
        in
        (* Mixed dependences: every operand of a slice instruction must be
           the induction variable, another slice member, or loop-invariant.
           A loop-variant input outside the slice (e.g. a second phi's
           value) would make the advanced clone read addresses that mix
           iteration i with iteration i+offset, voiding §4.2's
           exactly-as-later guarantee. *)
        let slice_set = List.fold_left (fun s id -> IntSet.add id s) IntSet.empty cand.slice in
        let clean_inputs id =
          List.for_all
            (fun (o : Ir.operand) ->
              match o with
              | Ir.Imm _ | Ir.Fimm _ -> true
              | Ir.Var v ->
                  v = cand.iv.iv_id || IntSet.mem v slice_set
                  || Indvar.is_loop_invariant func loop o)
            (Ir.srcs (instr_of id).kind)
        in
        if not (List.for_all unconditional cand.slice) then
          Error Conditional_code
        else if not (List.for_all clean_inputs cand.slice) then
          Error Conditional_code
        else begin
          (* Direct induction-variable indexing (§4.2 prototype rule):
             every slice use of the induction variable must be as the index
             of a gep whose base is loop-invariant. *)
          let uses_iv_ok id =
            let i = instr_of id in
            let uses_iv =
              List.exists
                (function Ir.Var v -> v = cand.iv.iv_id | _ -> false)
                (Ir.srcs i.kind)
            in
            (not uses_iv)
            ||
            match i.kind with
            | Ir.Gep { base; index = Ir.Var v; _ } ->
                v = cand.iv.iv_id && Indvar.is_loop_invariant func loop base
            | _ -> false
          in
          if
            config.Config.require_direct_iv_index
            && not (List.for_all uses_iv_ok cand.slice)
          then Error Indirect_iv_use
          else begin
            (* Store-alias scan over the whole loop (§4.2): address-
               generating loads are every chain load except the final
               (prefetch-target) one. *)
            let chain = Dfs.chain_loads a cand in
            let feeding =
              match List.rev chain with [] -> [] | _ :: rest -> List.rev rest
            in
            let feeding_roots =
              List.map
                (fun id ->
                  match (instr_of id).kind with
                  | Ir.Load (_, addr) -> Analysis.root_of a addr
                  | _ -> Analysis.Unknown)
                feeding
            in
            let store_conflict = ref false in
            Ir.iter_blocks func (fun b ->
                if Loops.contains loop b.bid then
                  Array.iter
                    (fun id ->
                      match (instr_of id).kind with
                      | Ir.Store (_, addr, _) ->
                          let r = Analysis.root_of a addr in
                          if
                            List.exists
                              (fun fr -> Analysis.roots_may_alias r fr)
                              feeding_roots
                          then store_conflict := true
                      | _ -> ())
                    b.instrs);
            if !store_conflict then Error Store_alias
            else begin
              (* Establish the clamp. *)
              let single_exit =
                match Loops.exit_edges a.Analysis.cfg loop with
                | [ _ ] -> true
                | _ -> false
              in
              let from_bound =
                if single_exit then clamp_from_bound cand.iv else None
              in
              match from_bound with
              | Some c -> Ok c
              | None -> (
                  match
                    clamp_from_alloc a cand ~n_chain_loads:(List.length chain)
                  with
                  | Some c -> Ok c
                  | None -> Error No_clamp)
            end
          end
        end
  end
