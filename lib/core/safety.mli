(** Candidate vetting: the filters of Algorithm 1 (lines 34–40) and the
    fault-avoidance conditions of §4.2. *)

type reject =
  | No_candidate  (** DFS found no induction variable *)
  | Contains_call
  | Non_iv_phi
  | Conditional_code
  | Store_alias
  | No_clamp
  | Indirect_iv_use
  | Multi_latch
  | Bad_step
  | Pure_stride  (** t = 1: left to the hardware prefetcher (§4.3) *)
  | Duplicate
  | Provider_disabled  (** the distance provider turned this loop off *)

val string_of_reject : reject -> string

(** How the looked-ahead induction value is clamped (Algorithm 1 line 49):
    a constant limit, or [bound + delta] for a loop-invariant bound. *)
type clamp = Clamp_imm of int | Clamp_expr of Spf_ir.Ir.operand * int

val vet : Analysis.t -> Config.t -> Dfs.candidate -> (clamp, reject) result
(** Check every safety condition; on success return the clamp the code
    generator must apply to the induction variable. *)
