(* Prefetch scheduling (§4.4, eq. 1):

       offset(l) = c * (t - l) / t

   where [t] is the number of loads in the dependent chain and [l] the
   position of a given load (0 = the sequential look-ahead access).  Each
   chain load is thereby prefetched c/t iterations before the next one
   consumes it, spacing dependent prefetches evenly: for the paper's
   integer-sort example (t = 2, c = 64) the stride access is prefetched at
   i+64 and the indirect one at i+32. *)

let offset ~c ~t ~l =
  if t <= 0 then invalid_arg "Schedule.offset: empty chain";
  c * (t - l) / t

let offsets ~c ~t = List.init t (fun l -> offset ~c ~t ~l)

(* Largest constant term the clamped entry point accepts.  [offset] computes
   [c * (t - l)] before dividing, and chain lengths are tiny (t <= ~8), so
   any [c] below 2^40 is far from overflowing 63-bit ints even after the
   per-iteration step multiply that Codegen applies afterwards. *)
let max_c = 1 lsl 40

(* What the code generator actually uses: eq. 1 with degenerate inputs
   clamped to a sane minimum distance.  A non-positive [c] (a misconfigured
   provider, a profile for an empty window) or a division-floored zero
   (c < t at the deepest chain position) must still look *ahead* — a
   distance of 0 would prefetch the line the load is about to touch, pure
   overhead — so the result is clamped to at least one iteration.  Huge [c]
   is capped instead of overflowing into negative offsets.  For every
   well-formed input (1 <= c <= max_c with c * (t-l) >= t) this is
   bit-identical to [offset]. *)
let distance ~c ~t ~l =
  if t <= 0 then invalid_arg "Schedule.distance: empty chain";
  let c = if c < 1 then 1 else if c > max_c then max_c else c in
  let d = c * (t - l) / t in
  if d < 1 then 1 else d
