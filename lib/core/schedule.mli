(** Prefetch scheduling (§4.4, eq. 1): [offset = c (t - l) / t]. *)

val offset : c:int -> t:int -> l:int -> int
(** Look-ahead distance in iterations for the [l]-th load (0-based) of a
    [t]-load dependent chain. *)

val offsets : c:int -> t:int -> int list
(** All [t] offsets, outermost load first. *)

val distance : c:int -> t:int -> l:int -> int
(** Like {!offset} but total on degenerate inputs: [c] is clamped to
    [\[1; max_c\]] and the result to at least 1 iteration, so providers
    can never schedule a zero or negative (overflowed) look-ahead.
    Bit-identical to {!offset} for all well-formed inputs (in particular
    the paper's c = 64 defaults).  Still raises [Invalid_argument] on an
    empty chain ([t <= 0]) — that is a caller bug, not an input. *)

val max_c : int
(** Upper clamp of {!distance}'s constant term (2^40). *)
