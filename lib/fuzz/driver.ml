module Pass = Spf_core.Pass
module Rng = Spf_workloads.Rng
module Pool = Spf_harness.Pool
module Supervisor = Spf_harness.Supervisor
module Bundle = Spf_harness.Bundle
module Runner = Spf_harness.Runner

(* Campaign driver: generate [count] specs from [seed], run each through
   the differential oracle, shrink any failure, and summarise.

   The headline robustness claims this enforces (ISSUE acceptance):
   - zero semantic divergences between original and transformed runs;
   - zero exceptions escaping [Pass.run] (the oracle wraps it; any escape
     is a [Pass_raised] divergence);
   - zero demand-side faults introduced by the transform under tight
     bounds ([introduced_fault] divergences);
   - §4.4 drops actually observed: wild prefetches land in the
     [dropped_prefetches] stat instead of trapping.

   Every case draws from its own [Rng.split]-derived stream, so cases are
   independent of each other and of the execution order: a campaign fanned
   out over N domains produces the same summary as a serial one. *)

type failure = {
  case : int;  (* 0-based index into the campaign *)
  spec : Gen.spec;
  shrunk : Gen.spec option;  (* smaller reproducer, when shrinking is on *)
  divergence : Oracle.divergence_kind;
}

type summary = {
  seed : int;
  count : int;
  runs : int;
  transformed : int;  (* programs where the pass emitted >= 1 prefetch *)
  rejected_only : int;  (* pass inspected loads but declined them all *)
  discarded : int;  (* original itself trapped or spun: comparison skipped *)
  dropped_prefetches : int;  (* §4.4 non-faulting drops, summed *)
  sw_prefetches : int;
  introduced_faults : int;  (* clamp failures (subset of failures) *)
  undecided : int;  (* symbolic oracle give-ups: neither proof nor cex *)
  failures : failure list;
}

let pp_summary fmt (s : summary) =
  Format.fprintf fmt
    "fuzz: %d/%d cases (seed %d): %d transformed, %d rejected-only, %d \
     discarded; %d prefetches issued, %d dropped non-faulting; %d \
     divergences, %d introduced faults@."
    s.runs s.count s.seed s.transformed s.rejected_only s.discarded
    s.sw_prefetches s.dropped_prefetches
    (List.length s.failures)
    s.introduced_faults;
  if s.undecided > 0 then
    Format.fprintf fmt
      "  %d undecided (validator gave up: %.1f%% give-up rate)@." s.undecided
      (100. *. float_of_int s.undecided /. float_of_int (max 1 s.runs));
  List.iter
    (fun f ->
      Format.fprintf fmt "  case %d: %s@.    spec %s@." f.case
        (Oracle.divergence_to_string f.divergence)
        (Gen.to_string f.spec);
      match f.shrunk with
      | Some sh -> Format.fprintf fmt "    shrunk to %s@." (Gen.to_string sh)
      | None -> ())
    s.failures

let ok (s : summary) = s.failures = []

(* Re-check a spec and report whether it still fails the same way (used as
   the shrinking predicate — any divergence counts, not just an identical
   one, which keeps shrinking aggressive).  The re-check runs under the
   same oracle [mode] that found the failure: a symbolic counterexample
   must stay a counterexample *under the symbolic oracle* at every
   shrinking step, not merely under one concrete run — and an [Undecided]
   shrink candidate is not a failure, so shrinking never trades a proven
   divergence for an unprovable program. *)
let fails ?config ?cancel ~mode spec =
  match Oracle.check_mode ?config ?cancel mode spec with
  | Oracle.Diverged _ -> true
  | Oracle.Agree _ | Oracle.Undecided _ -> false

(* Compact per-case result.  An [Oracle.Agree] verdict retains the whole
   pass report and the outcome's memory digest; holding [count] of those
   until the final fold keeps the entire campaign's heap live and major
   GC time swamps the run (measured ~1.7x wall on a 10k campaign).  Each
   job therefore boils its verdict down to these few words before
   returning — only the (rare) failures keep their spec alive. *)
type case_result = {
  c_transformed : bool;
  c_discarded : bool;
  c_dropped : int;
  c_issued : int;
  c_undecided : string option;  (* symbolic give-up reason *)
  c_failure : (Gen.spec * Oracle.divergence_kind * Gen.spec option) option;
}

(* One whole case — generation, oracle, shrinking — as a self-contained
   job: everything that depends on the per-case RNG stream happens here,
   so the result is a pure function of (seed, case). *)
let run_case ?config ?cancel ~mode ~shrink ~seed case =
  let rng = Rng.split ~seed case in
  let spec = Gen.random rng in
  match Oracle.check_mode ?config ?cancel mode spec with
  | Oracle.Agree a ->
      {
        c_transformed = a.Oracle.report.Pass.n_prefetches > 0;
        c_discarded = a.Oracle.discarded;
        c_dropped = a.Oracle.dropped_prefetches;
        c_issued = a.Oracle.sw_prefetches;
        c_undecided = None;
        c_failure = None;
      }
  | Oracle.Undecided reason ->
      {
        c_transformed = false;
        c_discarded = false;
        c_dropped = 0;
        c_issued = 0;
        c_undecided = Some reason;
        c_failure = None;
      }
  | Oracle.Diverged d ->
      let shrunk =
        if shrink then
          Some
            (Shrink.shrink spec ~still_fails:(fails ?config ?cancel ~mode))
        else None
      in
      {
        c_transformed = false;
        c_discarded = false;
        c_dropped = 0;
        c_issued = 0;
        c_undecided = None;
        c_failure = Some (spec, d, shrunk);
      }

exception Campaign_incomplete of int

type injected_fault = Hang | Crash

(* Fault-injection hooks for the resilience tests: [Hang] runs an
   infinite IR loop under the simulator with the job's own cancellation
   token — so an injected hang exercises the very watchdog-fires-token
   path a real runaway simulation would — and [Crash] is a plain
   deterministic exception. *)
let hang_forever (ctx : Runner.ctx) =
  let b = Spf_ir.Builder.create ~name:"injected_hang" ~nparams:0 in
  let loop = Spf_ir.Builder.new_block b "loop" in
  Spf_ir.Builder.br b loop;
  Spf_ir.Builder.set_block b loop;
  Spf_ir.Builder.br b loop;
  let func = Spf_ir.Builder.finish b in
  let interp =
    Spf_sim.Interp.create ~machine:Spf_sim.Machine.haswell
      ?engine:ctx.Runner.engine ?cancel:ctx.Runner.cancel
      ~mem:(Spf_sim.Memory.create ()) ~args:[||] func
  in
  Spf_sim.Interp.run interp

(* The per-case job under supervision.  The work function honours the
   supervisor's context (engine override, cancellation token); a
   divergence — a result, not an exception — writes its own crash bundle
   since the supervisor only bundles exceptional failures; [binfo]
   supplies the reproduction payload for those (crashes, hangs). *)
let supervised_job ?config ?inject opts ~mode ~shrink ~seed case =
  let key = Printf.sprintf "case/%d" case in
  let work (ctx : Runner.ctx) =
    (match inject with
    | Some (n, Hang) when case = n -> hang_forever ctx
    | Some (n, Crash) when case = n -> failwith "injected crash"
    | _ -> ());
    (* The supervisor's engine override only makes sense for the concrete
       oracle — the other modes pick their own engines — and, as before
       the oracle became selectable, it takes precedence over the
       campaign's choice. *)
    let mode =
      match (mode, ctx.Runner.engine) with
      | Oracle.Concrete _, (Some _ as e) -> Oracle.Concrete e
      | _ -> mode
    in
    let r = run_case ?config ?cancel:ctx.Runner.cancel ~mode ~shrink ~seed case in
    (match (r.c_failure, Supervisor.bundle_root opts) with
    | Some (spec, d, shrunk), Some root ->
        let best = Option.value shrunk ~default:spec in
        let p = Replay.payload ?config ~mode best in
        ignore
          (Bundle.write ~root ~name:key
             ~meta:
               (("key", key)
               :: ("divergence", Oracle.divergence_to_string d)
               :: Replay.meta_of_payload p)
             ~ir:(Replay.ir_of_spec best)
             ~payload:(Replay.encode_payload p) ())
    | _ -> ());
    r
  in
  let binfo _exn =
    let spec = Gen.random (Rng.split ~seed case) in
    let p = Replay.payload ?config ~mode spec in
    {
      Supervisor.b_meta = ("case", string_of_int case) :: Replay.meta_of_payload p;
      b_ir = Some (Replay.ir_of_spec spec);
      b_payload = Some (Replay.encode_payload p);
    }
  in
  { Supervisor.key; work; binfo = Some binfo }

let encode_case (r : case_result) = Marshal.to_string r []

let decode_case s =
  try Some (Marshal.from_string s 0 : case_result) with _ -> None

let run ?config ?engine ?(cross_engine = false) ?oracle ?(shrink = false)
    ?progress ?(seed = 0) ?(jobs = 1) ?supervise ?inject ~count () : summary =
  let mode =
    match oracle with
    | Some m -> m
    | None ->
        if cross_engine then Oracle.Cross_engine else Oracle.Concrete engine
  in
  let results =
    match supervise with
    | None ->
        Pool.map ~jobs
          (fun case ->
            (match progress with
            | Some f when jobs <= 1 && case mod 500 = 0 && case > 0 -> f case
            | _ -> ());
            run_case ?config ~mode ~shrink ~seed case)
          (List.init count Fun.id)
    | Some opts ->
        let sjobs =
          List.init count
            (supervised_job ?config ?inject opts ~mode ~shrink ~seed)
        in
        let results =
          Supervisor.run_jobs opts ~encode:encode_case ~decode:decode_case
            sjobs
        in
        let ok, failed = Supervisor.report_stderr results in
        if failed <> [] then raise (Campaign_incomplete (List.length failed));
        List.map (fun (o : _ Supervisor.outcome) -> o.value) ok
  in
  let transformed = ref 0
  and rejected_only = ref 0
  and discarded = ref 0
  and dropped = ref 0
  and issued = ref 0
  and introduced = ref 0
  and undecided = ref 0
  and failures = ref [] in
  List.iteri
    (fun case r ->
      match r.c_failure with
      | None when r.c_undecided <> None -> incr undecided
      | None ->
          if r.c_transformed then incr transformed else incr rejected_only;
          if r.c_discarded then incr discarded;
          dropped := !dropped + r.c_dropped;
          issued := !issued + r.c_issued
      | Some (spec, d, shrunk) ->
          (match d with
          | Oracle.Outcome_mismatch { introduced_fault = true; _ } ->
              incr introduced
          | _ -> ());
          failures := { case; spec; shrunk; divergence = d } :: !failures)
    results;
  {
    seed;
    count;
    runs = count;
    transformed = !transformed;
    rejected_only = !rejected_only;
    discarded = !discarded;
    dropped_prefetches = !dropped;
    sw_prefetches = !issued;
    introduced_faults = !introduced;
    undecided = !undecided;
    failures = List.rev !failures;
  }
