module Pass = Spf_core.Pass
module Rng = Spf_workloads.Rng

(* Campaign driver: generate [count] specs from [seed], run each through
   the differential oracle, shrink any failure, and summarise.

   The headline robustness claims this enforces (ISSUE acceptance):
   - zero semantic divergences between original and transformed runs;
   - zero exceptions escaping [Pass.run] (the oracle wraps it; any escape
     is a [Pass_raised] divergence);
   - zero demand-side faults introduced by the transform under tight
     bounds ([introduced_fault] divergences);
   - §4.4 drops actually observed: wild prefetches land in the
     [dropped_prefetches] stat instead of trapping. *)

type failure = {
  case : int;  (* 0-based index into the campaign *)
  spec : Gen.spec;
  shrunk : Gen.spec option;  (* smaller reproducer, when shrinking is on *)
  divergence : Oracle.divergence_kind;
}

type summary = {
  seed : int;
  count : int;
  runs : int;
  transformed : int;  (* programs where the pass emitted >= 1 prefetch *)
  rejected_only : int;  (* pass inspected loads but declined them all *)
  discarded : int;  (* original itself trapped or spun: comparison skipped *)
  dropped_prefetches : int;  (* §4.4 non-faulting drops, summed *)
  sw_prefetches : int;
  introduced_faults : int;  (* clamp failures (subset of failures) *)
  failures : failure list;
}

let pp_summary fmt (s : summary) =
  Format.fprintf fmt
    "fuzz: %d/%d cases (seed %d): %d transformed, %d rejected-only, %d \
     discarded; %d prefetches issued, %d dropped non-faulting; %d \
     divergences, %d introduced faults@."
    s.runs s.count s.seed s.transformed s.rejected_only s.discarded
    s.sw_prefetches s.dropped_prefetches
    (List.length s.failures)
    s.introduced_faults;
  List.iter
    (fun f ->
      Format.fprintf fmt "  case %d: %s@.    spec %s@." f.case
        (Oracle.divergence_to_string f.divergence)
        (Gen.to_string f.spec);
      match f.shrunk with
      | Some sh -> Format.fprintf fmt "    shrunk to %s@." (Gen.to_string sh)
      | None -> ())
    s.failures

let ok (s : summary) = s.failures = []

(* Re-check a spec and report whether it still fails the same way (used as
   the shrinking predicate — any divergence counts, not just an identical
   one, which keeps shrinking aggressive). *)
let fails ?config spec =
  match Oracle.check ?config spec with
  | Oracle.Diverged _ -> true
  | Oracle.Agree _ -> false

let run ?config ?(shrink = false) ?progress ?(seed = 0) ~count () : summary =
  let rng = Rng.create ~seed in
  let transformed = ref 0
  and rejected_only = ref 0
  and discarded = ref 0
  and dropped = ref 0
  and issued = ref 0
  and introduced = ref 0
  and failures = ref [] in
  for case = 0 to count - 1 do
    (match progress with
    | Some f when case mod 500 = 0 && case > 0 -> f case
    | _ -> ());
    let spec = Gen.random rng in
    match Oracle.check ?config spec with
    | Oracle.Agree a ->
        if a.Oracle.report.Pass.n_prefetches > 0 then incr transformed
        else incr rejected_only;
        if a.Oracle.discarded then incr discarded;
        dropped := !dropped + a.Oracle.dropped_prefetches;
        issued := !issued + a.Oracle.sw_prefetches
    | Oracle.Diverged d ->
        (match d with
        | Oracle.Outcome_mismatch { introduced_fault = true; _ } ->
            incr introduced
        | _ -> ());
        let shrunk =
          if shrink then Some (Shrink.shrink spec ~still_fails:(fails ?config))
          else None
        in
        failures := { case; spec; shrunk; divergence = d } :: !failures
  done;
  {
    seed;
    count;
    runs = count;
    transformed = !transformed;
    rejected_only = !rejected_only;
    discarded = !discarded;
    dropped_prefetches = !dropped;
    sw_prefetches = !issued;
    introduced_faults = !introduced;
    failures = List.rev !failures;
  }
