(** Differential-fuzzing campaign driver.  See docs/ROBUSTNESS.md. *)

type failure = {
  case : int;
  spec : Gen.spec;
  shrunk : Gen.spec option;
  divergence : Oracle.divergence_kind;
}

type summary = {
  seed : int;
  count : int;
  runs : int;
  transformed : int;
  rejected_only : int;
  discarded : int;
  dropped_prefetches : int;
  sw_prefetches : int;
  introduced_faults : int;
  undecided : int;
      (** symbolic-oracle give-ups: neither proved nor refuted.  Counted
          (and a give-up rate printed by {!pp_summary}), but not a
          failure — {!ok} ignores them. *)
  failures : failure list;
}

val pp_summary : Format.formatter -> summary -> unit
val ok : summary -> bool

exception Campaign_incomplete of int
(** A supervised campaign had cases that failed permanently (crashed,
    hung past their deadline and retries); carries the count.  Completed
    cases are already checkpointed, failed ones bundled and reported to
    stderr, so re-running with the same journal retries only the failed
    cases. *)

type injected_fault =
  | Hang  (** an infinite IR loop run with the job's cancellation token *)
  | Crash  (** a deterministic exception from inside the job *)

val run :
  ?config:Spf_core.Config.t ->
  ?engine:Spf_sim.Engine.t ->
  ?cross_engine:bool ->
  ?oracle:Oracle.mode ->
  ?shrink:bool ->
  ?progress:(int -> unit) ->
  ?seed:int ->
  ?jobs:int ->
  ?supervise:Spf_harness.Supervisor.options ->
  ?inject:int * injected_fault ->
  count:int ->
  unit ->
  summary
(** Run [count] generated cases from [seed] (default 0) through the
    oracle; failures are shrunk to minimal reproducers when [shrink] —
    under the {e same} oracle mode the campaign runs, so a symbolic
    counterexample shrinks under the symbolic oracle.  [oracle] picks
    the mode directly; without it, [engine] selects the simulator engine
    for the concrete oracle and [cross_engine] switches to
    {!Oracle.check_engines}, which instead compares the two engines
    against each other on every case (and ignores [engine]).

    Cases are distributed over [jobs] domains (default 1 = serial).  Each
    case draws from its own {!Spf_workloads.Rng.split} stream, so the
    summary — counters and the ordered failure list alike — is identical
    for every [jobs] value.  [progress] only fires on serial runs.

    With [supervise], cases instead run as keyed {!Spf_harness.Supervisor}
    jobs ("case/<n>"): deadlines, retry, checkpoint/resume and crash
    bundles (docs/ROBUSTNESS.md) — the supervisor's [jobs]/[engine]
    options take precedence, and divergences additionally write
    replayable bundles under the supervisor's bundle root.  [inject]
    makes case [n] fail for the resilience tests.
    @raise Campaign_incomplete when supervised cases failed permanently. *)
