module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory
module Rng = Spf_workloads.Rng

(* Random indirect-access programs for differential fuzzing.

   A program is described by a small [spec] record, and [build] is a pure
   function of the spec: building the same spec twice yields two
   structurally identical functions over identically initialised memories.
   The differential oracle leans on this — [Pass.run] mutates its input, so
   instead of cloning IR we just rebuild from the spec.

   Every shape is a loop nest around the paper's core pattern
   [A[f(B[i])]]: plain indirection, histogram stores, hash-computed
   indices, two-level indirection, a nested per-row variant, and a shape
   that issues deliberately wild hand-written prefetches to exercise the
   non-faulting drop semantics (§4.4). *)

type shape =
  | Indirect  (* acc += A[B[i]] *)
  | Indirect_store  (* A[B[i]] += 1, acc += B[i] *)
  | Hash_indirect  (* acc += A[hash(B[i]) & (len_a - 1)] *)
  | Double_indirect  (* acc += A[C[B[i]]] *)
  | Nested  (* for i: for j < inner: acc += A[Brow_i[j]] *)
  | Wild_prefetch  (* Indirect + hand-written prefetches to wild addresses *)

type bound_kind =
  | Bound_imm  (* trip count baked into the IR as a literal *)
  | Bound_param  (* trip count passed as a parameter (Clamp_expr path) *)
  | Bound_loaded  (* trip count loaded from memory in the entry block *)

type spec = {
  shape : shape;
  n : int;  (* outer trip count *)
  inner : int;  (* inner trip count (Nested only) *)
  len_a : int;  (* target-array length; power of two for Hash_indirect *)
  bound : bound_kind;
  tight : bool;
      (* allocate the index array last and exactly trip-count-sized, so any
         unclamped look-ahead load crosses the break and traps *)
  alias_store : bool;
      (* store through the index array inside the loop: §4.2 requires the
         pass to reject the chain (Store_alias) *)
  hash_depth : int;  (* 1..3 mix rounds for Hash_indirect *)
  data_seed : int;  (* seeds the array contents *)
}

let shape_to_string = function
  | Indirect -> "indirect"
  | Indirect_store -> "indirect-store"
  | Hash_indirect -> "hash-indirect"
  | Double_indirect -> "double-indirect"
  | Nested -> "nested"
  | Wild_prefetch -> "wild-prefetch"

let bound_to_string = function
  | Bound_imm -> "imm"
  | Bound_param -> "param"
  | Bound_loaded -> "loaded"

let to_string s =
  Printf.sprintf
    "{shape=%s n=%d inner=%d len_a=%d bound=%s tight=%b alias_store=%b \
     hash_depth=%d data_seed=%d}"
    (shape_to_string s.shape) s.n s.inner s.len_a (bound_to_string s.bound)
    s.tight s.alias_store s.hash_depth s.data_seed

(* Enough fuel for the loop nest plus generous slack; fuel is counted in
   basic blocks executed. *)
let fuel s = 4096 + (16 * s.n * max 1 s.inner)

let all_shapes =
  [|
    Indirect; Indirect_store; Hash_indirect; Double_indirect; Nested;
    Wild_prefetch;
  |]

let random rng =
  let shape = all_shapes.(Rng.int rng (Array.length all_shapes)) in
  {
    shape;
    n = Rng.int rng 257;  (* 0 included: empty loops must also be safe *)
    inner = 1 + Rng.int rng 12;
    len_a = 1 lsl (2 + Rng.int rng 7);  (* 4 .. 512 *)
    bound = [| Bound_imm; Bound_param; Bound_loaded |].(Rng.int rng 3);
    tight = Rng.int rng 2 = 0;
    alias_store = Rng.int rng 4 = 0;
    hash_depth = 1 + Rng.int rng 3;
    data_seed = Rng.int rng 1_000_000;
  }

type built = {
  func : Ir.func;
  mem : Memory.t;
  args : int array;  (* a_base, b_base, bound-or-cell, c_base *)
}

(* A counted accumulator loop: for (i = 0; i < bound; i++) acc = body i acc.
   [body] may itself open nested blocks; the latch is whatever block is
   current when it returns (mirrors Builder.counted_loop).  Leaves the
   builder in the exit block and returns the accumulated value. *)
let acc_loop ?(tag = "l") b ~bound body =
  let head = Builder.new_block b (tag ^ ".head") in
  let bodyb = Builder.new_block b (tag ^ ".body") in
  let exit = Builder.new_block b (tag ^ ".exit") in
  let entry = Builder.current_block b in
  Builder.br b head;
  Builder.set_block b head;
  let i = Builder.phi ~name:(tag ^ ".i") b [ (entry, Ir.Imm 0) ] in
  let acc = Builder.phi ~name:(tag ^ ".acc") b [ (entry, Ir.Imm 0) ] in
  let c = Builder.cmp b Ir.Slt i bound in
  Builder.cbr b c bodyb exit;
  Builder.set_block b bodyb;
  let acc' = body i acc in
  let i' = Builder.add b i (Ir.Imm 1) in
  let latch = Builder.current_block b in
  Builder.br b head;
  Builder.add_incoming b i ~pred:latch i';
  Builder.add_incoming b acc ~pred:latch acc';
  Builder.set_block b exit;
  acc

let build (s : spec) : built =
  let mem = Memory.create () in
  let rng = Rng.create ~seed:s.data_seed in
  let n_idx = match s.shape with Nested -> s.n * s.inner | _ -> s.n in
  let idx_range =
    (* What B's entries index into. *)
    match s.shape with Double_indirect -> max 1 (s.len_a / 2) | _ -> s.len_a
  in
  let b_data = Array.init n_idx (fun _ -> Rng.int rng (max 1 idx_range)) in
  let a_data = Array.init s.len_a (fun _ -> Rng.int rng 1024) in
  let c_len = max 1 (s.len_a / 2) in
  let c_data = Array.init c_len (fun _ -> Rng.int rng s.len_a) in
  (* Allocation order: when [tight], B goes last so its end coincides with
     the break and unclamped look-ahead loads trap. *)
  let a_base = Memory.alloc_i32_array mem a_data in
  let c_base = Memory.alloc_i32_array mem c_data in
  let bound_cell =
    match s.bound with
    | Bound_loaded -> Memory.alloc_i32_array mem [| s.n |]
    | Bound_imm | Bound_param -> 0
  in
  let b_base = Memory.alloc_i32_array mem b_data in
  (if not s.tight then
     (* Slack page after B so only clamp *logic* is under test, not layout. *)
     ignore (Memory.alloc mem 4096));

  let bld = Builder.create ~name:("fuzz_" ^ shape_to_string s.shape) ~nparams:4 in
  let a = Builder.param bld 0 in
  let bp = Builder.param bld 1 in
  let third = Builder.param bld 2 in
  let cp = Builder.param bld 3 in
  let bound_op =
    match s.bound with
    | Bound_imm -> Ir.Imm s.n
    | Bound_param -> third
    | Bound_loaded -> Builder.load ~name:"n" bld Ir.I32 third
  in
  let load_b i = Builder.load ~name:"key" bld Ir.I32 (Builder.gep bld bp i 4) in
  let alias_store i k =
    if s.alias_store then
      (* Rewrite B[i] in flight; value stays a valid index so the program
         is well-defined either way, but §4.2 must reject the chain. *)
      Builder.store bld Ir.I32 (Builder.gep bld bp i 4)
        (Builder.binop bld Ir.And (Builder.add bld k (Ir.Imm 1))
           (Ir.Imm (max 1 idx_range - 1)))
  in
  let body i acc =
    match s.shape with
    | Indirect ->
        let k = load_b i in
        alias_store i k;
        Builder.add bld acc (Builder.load ~name:"v" bld Ir.I32 (Builder.gep bld a k 4))
    | Indirect_store ->
        let k = load_b i in
        alias_store i k;
        let slot = Builder.gep ~name:"slot" bld a k 4 in
        let v = Builder.load ~name:"count" bld Ir.I32 slot in
        Builder.store bld Ir.I32 slot (Builder.add bld v (Ir.Imm 1));
        Builder.add bld acc k
    | Hash_indirect ->
        let k = load_b i in
        alias_store i k;
        let h = ref k in
        for r = 0 to s.hash_depth - 1 do
          let shifted = Builder.binop bld Ir.Lshr !h (Ir.Imm (3 + r)) in
          let mixed = Builder.binop bld Ir.Xor !h shifted in
          h := Builder.mul bld mixed (Ir.Imm 0x9E3779B1)
        done;
        let idx = Builder.binop ~name:"hidx" bld Ir.And !h (Ir.Imm (s.len_a - 1)) in
        Builder.add bld acc
          (Builder.load ~name:"v" bld Ir.I32 (Builder.gep bld a idx 4))
    | Double_indirect ->
        let k = load_b i in
        alias_store i k;
        let m = Builder.load ~name:"mid" bld Ir.I32 (Builder.gep bld cp k 4) in
        Builder.add bld acc (Builder.load ~name:"v" bld Ir.I32 (Builder.gep bld a m 4))
    | Nested ->
        (* Row base B + i*inner*4 is inner-loop-invariant; the inner index
           j is a direct induction use, so the inner chain transforms. *)
        let row = Builder.gep ~name:"row" bld bp (Builder.mul bld i (Ir.Imm s.inner)) 4 in
        let inner_acc =
          acc_loop ~tag:"j" bld ~bound:(Ir.Imm s.inner) (fun j jacc ->
              let k = Builder.load ~name:"key" bld Ir.I32 (Builder.gep bld row j 4) in
              Builder.add bld jacc
                (Builder.load ~name:"v" bld Ir.I32 (Builder.gep bld a k 4)))
        in
        Builder.add bld acc inner_acc
    | Wild_prefetch ->
        let k = load_b i in
        (* Hand-written prefetches the §4.4 semantics must swallow: far
           past the break, and at a negative address. *)
        Builder.prefetch bld (Builder.gep ~name:"wild" bld a k 65536);
        Builder.prefetch bld (Ir.Imm (-64));
        Builder.add bld acc (Builder.load ~name:"v" bld Ir.I32 (Builder.gep bld a k 4))
  in
  let acc = acc_loop ~tag:"i" bld ~bound:bound_op body in
  Builder.ret bld (Some acc);
  let func = Builder.finish bld in
  let third_arg =
    match s.bound with
    | Bound_imm -> 0
    | Bound_param -> s.n
    | Bound_loaded -> bound_cell
  in
  { func; mem; args = [| a_base; b_base; third_arg; c_base |] }
