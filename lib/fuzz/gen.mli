(** Random indirect-access programs for differential fuzzing.

    [build] is a pure function of the spec: building the same spec twice
    yields two structurally identical functions over identically
    initialised memories, which is how the oracle obtains an untransformed
    twin of a program the (mutating) pass has rewritten. *)

type shape =
  | Indirect
  | Indirect_store
  | Hash_indirect
  | Double_indirect
  | Nested
  | Wild_prefetch

type bound_kind = Bound_imm | Bound_param | Bound_loaded

type spec = {
  shape : shape;
  n : int;
  inner : int;
  len_a : int;
  bound : bound_kind;
  tight : bool;
  alias_store : bool;
  hash_depth : int;
  data_seed : int;
}

val to_string : spec -> string
val fuel : spec -> int
(** Interpreter fuel (in blocks) generous for this spec's loop nest. *)

val random : Spf_workloads.Rng.t -> spec

type built = {
  func : Spf_ir.Ir.func;
  mem : Spf_sim.Memory.t;
  args : int array;
}

val build : spec -> built
