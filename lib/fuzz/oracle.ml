module Ir = Spf_ir.Ir
module Interp = Spf_sim.Interp
module Memory = Spf_sim.Memory
module Pass = Spf_core.Pass

(* The differential oracle.

   A prefetch pass must be semantically invisible: for any program, the
   transformed version must return the same value, leave memory in the same
   state, and trap exactly when the original would (§4.2, §4.4).  We check
   this by rebuilding the program from its spec (the pass mutates IR in
   place), running both versions under the interpreter with fault-injection
   semantics, and comparing outcomes.

   Programs whose *original* runs trap or exhaust fuel are discarded as
   invalid inputs — their behaviour is undefined, so nothing is owed — but
   the pass and verifier must still succeed on them: a never-crash pass
   does not get to assume well-formed input data. *)

type outcome =
  | Returned of { retval : int option; digest : string }
  | Trapped of { pc : int; addr : int; is_store : bool }
  | Out_of_fuel

let outcome_to_string = function
  | Returned { retval; digest } ->
      Printf.sprintf "returned %s, mem %s"
        (match retval with Some v -> string_of_int v | None -> "-")
        (String.sub digest 0 8)
  | Trapped { pc; addr; is_store } ->
      Printf.sprintf "trapped (%s at addr %d, instr %d)"
        (if is_store then "store" else "load")
        addr pc
  | Out_of_fuel -> "ran out of fuel"

type divergence_kind =
  | Pass_raised of string  (* exception escaped Pass.run: never allowed *)
  | Verifier_broken of string  (* transformed IR fails Verifier.check *)
  | Outcome_mismatch of {
      original : outcome;
      transformed : outcome;
      introduced_fault : bool;
          (* the transformed run trapped at an instruction the pass
             inserted: the §4.2 fault-avoidance clamp itself failed *)
    }
  | Engine_mismatch of {
      on_transformed : bool;  (* which twin disagreed across engines *)
      engine_a : Spf_sim.Engine.t;  (* the pair that disagreed... *)
      engine_b : Spf_sim.Engine.t;
      outcome_a : outcome;  (* ...and what each of them observed *)
      outcome_b : outcome;
      stat : (string * int * int) option;
          (* when the outcomes agree, the first stats counter that does
             not: the engines computed the same answer but not the same
             execution (timing/cache divergence) *)
    }

let divergence_to_string = function
  | Pass_raised e -> "pass raised: " ^ e
  | Verifier_broken v -> "transformed function fails the verifier: " ^ v
  | Outcome_mismatch { original; transformed; introduced_fault } ->
      Printf.sprintf "outcome mismatch: original %s, transformed %s%s"
        (outcome_to_string original)
        (outcome_to_string transformed)
        (if introduced_fault then
           " (demand fault at a pass-inserted instruction: clamp failure)"
         else "")
  | Engine_mismatch { on_transformed; engine_a; engine_b; outcome_a; outcome_b; stat }
    ->
      let na = Spf_sim.Engine.to_string engine_a in
      let nb = Spf_sim.Engine.to_string engine_b in
      Printf.sprintf "engine mismatch on the %s program: %s %s, %s %s%s"
        (if on_transformed then "transformed" else "plain")
        na
        (outcome_to_string outcome_a)
        nb
        (outcome_to_string outcome_b)
        (match stat with
        | Some (name, a, b) ->
            Printf.sprintf " (first differing counter: %s %s=%d %s=%d)" name na
              a nb b
        | None -> "")

(* What a single differential run yields when the pass behaved. *)
type agreement = {
  report : Pass.report;
  original : outcome;
  discarded : bool;  (* original trapped/spun: outcome comparison skipped *)
  dropped_prefetches : int;  (* §4.4 drops observed in the transformed run *)
  sw_prefetches : int;  (* prefetches actually issued *)
}

(* [Undecided] is specific to the symbolic oracle: the validator could
   neither prove the transform correct on this program nor concretely
   confirm a counterexample.  Campaigns count these as give-ups, not
   failures. *)
type verdict =
  | Agree of agreement
  | Diverged of divergence_kind
  | Undecided of string

(* How a campaign checks each case.  [Concrete] is the classic
   differential run (optionally pinning a simulator engine);
   [Cross_engine] compares every engine pairwise against the others;
   [Symbolic] backs the concrete run with a translation-validation
   proof-or-counterexample. *)
type mode =
  | Concrete of Spf_sim.Engine.t option
  | Cross_engine
  | Symbolic

let mode_to_string = function
  | Concrete None -> "concrete"
  | Concrete (Some e) -> "concrete:" ^ Spf_sim.Engine.to_string e
  | Cross_engine -> "cross-engine"
  | Symbolic -> "symbolic"

let mode_of_string s =
  match s with
  | "concrete" -> Some (Concrete None)
  | "cross-engine" -> Some Cross_engine
  | "symbolic" -> Some Symbolic
  | _ ->
      let pre = "concrete:" in
      let n = String.length pre in
      if String.length s > n && String.sub s 0 n = pre then
        Option.map
          (fun e -> Concrete (Some e))
          (Spf_sim.Engine.of_string (String.sub s n (String.length s - n)))
      else None

let execute ?engine ?cancel ~fuel (b : Gen.built) =
  let interp =
    Interp.create ~machine:Spf_sim.Machine.haswell ?engine ?cancel
      ~mem:b.Gen.mem ~args:b.Gen.args b.Gen.func
  in
  match Interp.run ~fuel interp with
  | () ->
      ( Returned
          {
            retval = Interp.retval interp;
            digest = Memory.digest b.Gen.mem;
          },
        Interp.stats interp )
  | exception Interp.Trap { pc; addr; is_store; _ } ->
      (Trapped { pc; addr; is_store }, Interp.stats interp)
  | exception Interp.Fuel_exhausted -> (Out_of_fuel, Interp.stats interp)

let check ?config ?(strict = false) ?engine ?cancel (spec : Gen.spec) : verdict =
  let fuel = Gen.fuel spec in
  let original = Gen.build spec in
  let o1, _ = execute ?engine ?cancel ~fuel original in
  let transformed = Gen.build spec in
  let n_orig_instrs = Ir.n_instrs transformed.Gen.func in
  match Pass.run ?config ~strict transformed.Gen.func with
  | exception exn -> Diverged (Pass_raised (Printexc.to_string exn))
  | report -> (
      match Spf_ir.Verifier.check transformed.Gen.func with
      | v :: _ ->
          Diverged
            (Verifier_broken (Format.asprintf "%a" Spf_ir.Verifier.pp_violation v))
      | [] -> (
          let o2, stats2 = execute ?engine ?cancel ~fuel transformed in
          let agreement discarded =
            Agree
              {
                report;
                original = o1;
                discarded;
                dropped_prefetches = stats2.Spf_sim.Stats.dropped_prefetches;
                sw_prefetches = stats2.Spf_sim.Stats.sw_prefetches;
              }
          in
          let mismatch ~introduced_fault =
            Diverged
              (Outcome_mismatch
                 { original = o1; transformed = o2; introduced_fault })
          in
          match (o1, o2) with
          | (Trapped _ | Out_of_fuel), _ ->
              (* Undefined original behaviour: transformed outcome owes
                 nothing, but pass + verifier above still had to hold. *)
              agreement true
          | Returned r1, Returned r2 ->
              if r1.retval = r2.retval && r1.digest = r2.digest then
                agreement false
              else mismatch ~introduced_fault:false
          | Returned _, Trapped { pc; _ } ->
              (* A clean program now faults.  When the faulting instruction
                 is one the pass inserted (ids beyond the original count),
                 the §4.2 fault-avoidance clamp itself is broken. *)
              mismatch ~introduced_fault:(pc >= n_orig_instrs)
          | Returned _, Out_of_fuel -> mismatch ~introduced_fault:false))

(* --- cross-engine differential mode ------------------------------------ *)

(* Run the same program (one identical build per engine) under every
   engine in {!Spf_sim.Engine.all} and require the full observable
   behaviour to match pairwise: outcome (return value, memory digest,
   trap site) and every stats counter, timing included.  This is a
   stronger check than the semantic oracle above -- the engines must
   agree cycle-for-cycle, not just value-for-value.  A disagreement
   names the exact engine pair and, when the outcomes agree, the first
   stats counter that does not. *)
let compare_engines ?cancel ~fuel ~on_transformed builds =
  let runs =
    List.map2
      (fun engine b -> (engine, execute ~engine ?cancel ~fuel b))
      Spf_sim.Engine.all builds
  in
  let mismatch (ea, (oa, sa)) (eb, (ob, sb)) =
    if oa <> ob then
      Some
        (Engine_mismatch
           {
             on_transformed;
             engine_a = ea;
             engine_b = eb;
             outcome_a = oa;
             outcome_b = ob;
             stat = None;
           })
    else
      match Spf_sim.Stats.first_mismatch sa sb with
      | Some m ->
          Some
            (Engine_mismatch
               {
                 on_transformed;
                 engine_a = ea;
                 engine_b = eb;
                 outcome_a = oa;
                 outcome_b = ob;
                 stat = Some m;
               })
      | None -> None
  in
  let rec pairwise = function
    | [] -> None
    | r :: rest -> (
        match List.find_map (mismatch r) rest with
        | Some d -> Some d
        | None -> pairwise rest)
  in
  match pairwise runs with
  | Some d -> Error d
  | None ->
      let _, (o, s) = List.hd runs in
      Ok (o, s)

let check_engines ?config ?(strict = false) ?cancel (spec : Gen.spec) : verdict =
  let fuel = Gen.fuel spec in
  let fresh_builds () =
    List.map (fun _ -> Gen.build spec) Spf_sim.Engine.all
  in
  (* The plain twin first: the per-engine builds of the same spec are
     structurally identical, so any disagreement is an engine bug. *)
  match compare_engines ?cancel ~fuel ~on_transformed:false (fresh_builds ()) with
  | Error d -> Diverged d
  | Ok (o_plain, _) -> (
      (* Then the transformed twin: apply the (deterministic) pass to
         every build and compare the engines on the prefetch-bearing
         program, which exercises Prefetch uops, clamps and
         dropped-prefetch accounting. *)
      let ts = fresh_builds () in
      match
        List.map (fun t -> Pass.run ?config ~strict t.Gen.func) ts |> List.hd
      with
      | exception exn -> Diverged (Pass_raised (Printexc.to_string exn))
      | report -> (
          match compare_engines ?cancel ~fuel ~on_transformed:true ts with
          | Error d -> Diverged d
          | Ok (_, stats2) ->
              let discarded =
                match o_plain with
                | Trapped _ | Out_of_fuel -> true
                | Returned _ -> false
              in
              Agree
                {
                  report;
                  original = o_plain;
                  discarded;
                  dropped_prefetches = stats2.Spf_sim.Stats.dropped_prefetches;
                  sw_prefetches = stats2.Spf_sim.Stats.sw_prefetches;
                }))

(* --- symbolic (translation validation) mode ----------------------------- *)

let model_outcome : Spf_valid.Model.outcome -> outcome = function
  | Spf_valid.Model.Returned { retval; digest } -> Returned { retval; digest }
  | Spf_valid.Model.Trapped { pc; addr; is_store } ->
      Trapped { pc; addr; is_store }
  | Spf_valid.Model.Out_of_fuel -> Out_of_fuel

(* The symbolic oracle runs the concrete differential check first (which
   also exercises pass containment and the static verifier), then backs
   an agreeing run with a proof: the validator either proves the pair
   equivalent over ALL environments, confirms a concrete counterexample
   the single concrete run missed (e.g. a fault only a tighter mapping
   exposes), or gives up — reported as [Undecided], never as agreement. *)
let check_symbolic ?config ?strict ?cancel (spec : Gen.spec) : verdict =
  match check ?config ?strict ?cancel spec with
  | (Diverged _ | Undecided _) as v -> v
  | Agree a -> (
      let original = Gen.build spec in
      let transformed = Gen.build spec in
      match Spf_core.Pass.run ?config transformed.Gen.func with
      | exception exn -> Diverged (Pass_raised (Printexc.to_string exn))
      | _report -> (
          let env =
            {
              Spf_valid.Model.fresh =
                (fun () ->
                  let b = Gen.build spec in
                  (b.Gen.mem, b.Gen.args));
              fuel = Gen.fuel spec;
            }
          in
          match
            Spf_valid.Validate.check ?cancel ~env ~orig:original.Gen.func
              ~xform:transformed.Gen.func ()
          with
          | Spf_valid.Validate.Proved _ -> Agree a
          | Spf_valid.Validate.Refuted { cex; _ } ->
              Diverged
                (Outcome_mismatch
                   {
                     original = model_outcome cex.Spf_valid.Model.original;
                     transformed = model_outcome cex.Spf_valid.Model.transformed;
                     introduced_fault = cex.Spf_valid.Model.introduced_fault;
                   })
          | Spf_valid.Validate.Gave_up r -> Undecided r))

let check_mode ?config ?strict ?cancel mode (spec : Gen.spec) : verdict =
  match mode with
  | Concrete engine -> check ?config ?strict ?engine ?cancel spec
  | Cross_engine -> check_engines ?config ?strict ?cancel spec
  | Symbolic -> check_symbolic ?config ?strict ?cancel spec
