(** The differential oracle: the prefetch pass must be semantically
    invisible.  Each spec is built twice (the pass mutates IR in place);
    the original and transformed twins run under the fault-injecting
    interpreter and their outcomes — return value, memory digest, trap
    behaviour — must agree.  See docs/ROBUSTNESS.md. *)

type outcome =
  | Returned of { retval : int option; digest : string }
  | Trapped of { pc : int; addr : int; is_store : bool }
  | Out_of_fuel

val outcome_to_string : outcome -> string

type divergence_kind =
  | Pass_raised of string
      (** an exception escaped [Pass.run]: never allowed *)
  | Verifier_broken of string  (** transformed IR fails [Verifier.check] *)
  | Outcome_mismatch of {
      original : outcome;
      transformed : outcome;
      introduced_fault : bool;
          (** the transformed run trapped at a pass-inserted instruction —
              the §4.2 fault-avoidance clamp failed *)
    }
  | Engine_mismatch of {
      on_transformed : bool;
      engine_a : Spf_sim.Engine.t;  (** the pair that disagreed... *)
      engine_b : Spf_sim.Engine.t;
      outcome_a : outcome;  (** ...and what each of them observed *)
      outcome_b : outcome;
      stat : (string * int * int) option;
          (** when outcomes agree, the first stats counter that does not *)
    }

val divergence_to_string : divergence_kind -> string

type agreement = {
  report : Spf_core.Pass.report;
  original : outcome;
  discarded : bool;
      (** the original itself trapped or spun: outcome comparison skipped
          (undefined input), though pass and verifier still had to hold *)
  dropped_prefetches : int;
  sw_prefetches : int;
}

type verdict =
  | Agree of agreement
  | Diverged of divergence_kind
  | Undecided of string
      (** symbolic oracle only: the validator could neither prove the
          transform correct on this program nor concretely confirm a
          counterexample.  Campaigns count these as give-ups, not
          failures. *)

(** How a campaign checks each case: the classic differential run
    (optionally pinning a simulator engine), the engine-vs-engine
    comparison, or the concrete run backed by a translation-validation
    proof-or-counterexample. *)
type mode =
  | Concrete of Spf_sim.Engine.t option
  | Cross_engine
  | Symbolic

val mode_to_string : mode -> string

val mode_of_string : string -> mode option
(** Inverse of {!mode_to_string}; [None] on an unrecognised mode string
    (e.g. a crash bundle recorded by a newer build). *)

val execute :
  ?engine:Spf_sim.Engine.t ->
  ?cancel:Spf_sim.Interp.cancel ->
  fuel:int ->
  Gen.built ->
  outcome * Spf_sim.Stats.t

val check :
  ?config:Spf_core.Config.t ->
  ?strict:bool ->
  ?engine:Spf_sim.Engine.t ->
  ?cancel:Spf_sim.Interp.cancel ->
  Gen.spec ->
  verdict
(** One differential run.  Never raises with [strict] false (the
    default): pass exceptions become {!Pass_raised} divergences.
    [cancel] is threaded into every simulation the run performs, so a
    supervisor's deadline cancels a hung case mid-oracle
    (@raise Spf_sim.Interp.Cancelled once it fires). *)

val check_engines :
  ?config:Spf_core.Config.t ->
  ?strict:bool ->
  ?cancel:Spf_sim.Interp.cancel ->
  Gen.spec ->
  verdict
(** One cross-engine differential run: the plain and pass-transformed
    twins each execute under every engine in {!Spf_sim.Engine.all},
    which must agree pairwise on the full observable behaviour — outcome
    {e and} every stats counter, cycles included.  A disagreement
    surfaces as {!Engine_mismatch} naming the exact engine pair. *)

val check_symbolic :
  ?config:Spf_core.Config.t ->
  ?strict:bool ->
  ?cancel:Spf_sim.Interp.cancel ->
  Gen.spec ->
  verdict
(** One symbolic run: the concrete differential {!check} first (pass
    containment, verifier, one concrete environment), then — if it
    agreed — the translation validator proves the pair equivalent over
    {e all} environments.  A proof keeps the agreement; a confirmed
    counterexample becomes an {!Outcome_mismatch} divergence exactly as
    a concrete disagreement would (so shrinking and crash bundles work
    unchanged); anything else is {!Undecided}. *)

val check_mode :
  ?config:Spf_core.Config.t ->
  ?strict:bool ->
  ?cancel:Spf_sim.Interp.cancel ->
  mode ->
  Gen.spec ->
  verdict
(** Dispatch one case through the oracle selected by [mode]. *)
