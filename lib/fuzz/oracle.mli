(** The differential oracle: the prefetch pass must be semantically
    invisible.  Each spec is built twice (the pass mutates IR in place);
    the original and transformed twins run under the fault-injecting
    interpreter and their outcomes — return value, memory digest, trap
    behaviour — must agree.  See docs/ROBUSTNESS.md. *)

type outcome =
  | Returned of { retval : int option; digest : string }
  | Trapped of { pc : int; addr : int; is_store : bool }
  | Out_of_fuel

val outcome_to_string : outcome -> string

type divergence_kind =
  | Pass_raised of string
      (** an exception escaped [Pass.run]: never allowed *)
  | Verifier_broken of string  (** transformed IR fails [Verifier.check] *)
  | Outcome_mismatch of {
      original : outcome;
      transformed : outcome;
      introduced_fault : bool;
          (** the transformed run trapped at a pass-inserted instruction —
              the §4.2 fault-avoidance clamp failed *)
    }

val divergence_to_string : divergence_kind -> string

type agreement = {
  report : Spf_core.Pass.report;
  original : outcome;
  discarded : bool;
      (** the original itself trapped or spun: outcome comparison skipped
          (undefined input), though pass and verifier still had to hold *)
  dropped_prefetches : int;
  sw_prefetches : int;
}

type verdict = Agree of agreement | Diverged of divergence_kind

val execute : fuel:int -> Gen.built -> outcome * Spf_sim.Stats.t

val check : ?config:Spf_core.Config.t -> ?strict:bool -> Gen.spec -> verdict
(** One differential run.  Never raises with [strict] false (the
    default): pass exceptions become {!Pass_raised} divergences. *)
