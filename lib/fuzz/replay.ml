module Bundle = Spf_harness.Bundle

(* Offline reproduction of fuzz-case crash bundles.

   A fuzz campaign job that fails permanently (crash, hang) or detects a
   divergence is captured as a {!Spf_harness.Bundle} whose binary payload
   is a Marshal image of [bundle_payload]: the generated spec plus the
   oracle configuration it ran under.  [spf replay] decodes the payload
   and re-runs exactly that oracle check, which makes the bundle a
   self-contained reproducer — no seed arithmetic, no campaign context.

   The payload is guarded by the bundle's checksum, so a torn or edited
   payload.bin is rejected by {!Bundle.read} before Marshal ever sees
   it.  Decode failure here therefore means an incompatible build. *)

type bundle_payload = {
  bp_spec : Gen.spec;
  bp_config : Spf_core.Config.t option;
  bp_cross_engine : bool;
  bp_engine : string option;  (* Engine.to_string; None = default *)
}

let encode_payload (p : bundle_payload) = Marshal.to_string p []

let decode_payload s : bundle_payload =
  try (Marshal.from_string s 0 : bundle_payload)
  with _ ->
    failwith
      "bundle payload does not decode as a fuzz case (incompatible build?)"

(* Everything the bundle records about one fuzz case, for campaign code
   writing bundles and for replay reading them back. *)
let payload ?config ?engine ~cross_engine spec =
  {
    bp_spec = spec;
    bp_config = config;
    bp_cross_engine = cross_engine;
    bp_engine = Option.map Spf_sim.Engine.to_string engine;
  }

let meta_of_payload (p : bundle_payload) =
  [
    ("kind", "fuzz-case");
    ("spec", Gen.to_string p.bp_spec);
    ("cross-engine", string_of_bool p.bp_cross_engine);
    ("oracle-engine", Option.value p.bp_engine ~default:"default");
  ]

let ir_of_spec spec = Spf_ir.Printer.func_to_string (Gen.build spec).Gen.func

type result = Clean | Divergence of string

let replay (b : Bundle.t) : result =
  let payload =
    match Bundle.payload b with
    | Some s -> decode_payload s
    | None ->
        failwith
          (Printf.sprintf "%s has no reproduction payload (not a fuzz-case \
                           bundle?)" (Bundle.dir b))
  in
  let engine = Option.bind payload.bp_engine Spf_sim.Engine.of_string in
  let verdict =
    if payload.bp_cross_engine then
      Oracle.check_engines ?config:payload.bp_config payload.bp_spec
    else Oracle.check ?config:payload.bp_config ?engine payload.bp_spec
  in
  match verdict with
  | Oracle.Agree _ -> Clean
  | Oracle.Diverged d -> Divergence (Oracle.divergence_to_string d)
