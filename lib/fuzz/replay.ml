module Bundle = Spf_harness.Bundle

(* Offline reproduction of fuzz-case crash bundles.

   A fuzz campaign job that fails permanently (crash, hang) or detects a
   divergence is captured as a {!Spf_harness.Bundle} whose binary payload
   is a Marshal image of [bundle_payload]: the generated spec plus the
   oracle configuration it ran under.  [spf replay] decodes the payload
   and re-runs exactly that oracle check, which makes the bundle a
   self-contained reproducer — no seed arithmetic, no campaign context.

   The payload is guarded by the bundle's checksum, so a torn or edited
   payload.bin is rejected by {!Bundle.read} before Marshal ever sees
   it.  Decode failure here therefore means an incompatible build. *)

type bundle_payload = {
  bp_spec : Gen.spec;
  bp_config : Spf_core.Config.t option;
  bp_mode : string;  (* Oracle.mode_to_string; decoded at replay time *)
}

let encode_payload (p : bundle_payload) = Marshal.to_string p []

let decode_payload s : bundle_payload =
  try (Marshal.from_string s 0 : bundle_payload)
  with _ ->
    failwith
      "bundle payload does not decode as a fuzz case (incompatible build?)"

(* Everything the bundle records about one fuzz case, for campaign code
   writing bundles and for replay reading them back.  The oracle mode is
   stored as its string form rather than the variant: a bundle written by
   a build with more modes than this one still decodes, and the unknown
   mode surfaces as a clear replay-time error instead of a Marshal
   failure. *)
let payload ?config ~mode spec =
  { bp_spec = spec; bp_config = config; bp_mode = Oracle.mode_to_string mode }

let meta_of_payload (p : bundle_payload) =
  [
    ("kind", "fuzz-case");
    ("spec", Gen.to_string p.bp_spec);
    ("oracle", p.bp_mode);
  ]

let ir_of_spec spec = Spf_ir.Printer.func_to_string (Gen.build spec).Gen.func

type result = Clean | Divergence of string | Undecided of string

let replay (b : Bundle.t) : result =
  let payload =
    match Bundle.payload b with
    | Some s -> decode_payload s
    | None ->
        failwith
          (Printf.sprintf "%s has no reproduction payload (not a fuzz-case \
                           bundle?)" (Bundle.dir b))
  in
  let mode =
    match Oracle.mode_of_string payload.bp_mode with
    | Some m -> m
    | None ->
        failwith
          (Printf.sprintf
             "%s records oracle mode %S, which this build does not know \
              (bundle from a newer build?)"
             (Bundle.dir b) payload.bp_mode)
  in
  match Oracle.check_mode ?config:payload.bp_config mode payload.bp_spec with
  | Oracle.Agree _ -> Clean
  | Oracle.Diverged d -> Divergence (Oracle.divergence_to_string d)
  | Oracle.Undecided r -> Undecided r
