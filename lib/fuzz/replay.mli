(** Offline reproduction of fuzz-case crash bundles ([spf replay]).
    See docs/ROBUSTNESS.md for the bundle layout. *)

type bundle_payload = {
  bp_spec : Gen.spec;
  bp_config : Spf_core.Config.t option;
  bp_mode : string;
      (** {!Oracle.mode_to_string} form, decoded at replay time so a
          bundle recording a mode this build does not know fails with a
          clear message rather than a Marshal error *)
}
(** The Marshal-encoded reproduction recipe a fuzz bundle carries: the
    generated spec and the oracle configuration it ran under. *)

val payload :
  ?config:Spf_core.Config.t -> mode:Oracle.mode -> Gen.spec -> bundle_payload

val encode_payload : bundle_payload -> string

val decode_payload : string -> bundle_payload
(** @raise Failure when the bytes do not decode (integrity is already
    guaranteed by {!Spf_harness.Bundle}'s checksum, so this means an
    incompatible build). *)

val meta_of_payload : bundle_payload -> (string * string) list
(** The human-readable half of the bundle: kind, spec, oracle mode. *)

val ir_of_spec : Gen.spec -> string
(** Printed IR of the spec's built program, for the bundle's
    [program.ir]. *)

type result = Clean | Divergence of string | Undecided of string

val replay : Spf_harness.Bundle.t -> result
(** Re-run the exact oracle check the bundle records.  [Clean] means the
    failure did not reproduce (e.g. the bundle captured an injected or
    transient crash); [Divergence] means the oracle still disagrees;
    [Undecided] means the symbolic oracle gave up this time.
    @raise Failure on a payload-less bundle, one from an incompatible
    build, or one recording an oracle mode this build does not know, and
    whatever the oracle raises if the crash itself recurs. *)
