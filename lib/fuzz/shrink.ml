(* Greedy spec-level shrinking.

   IR-level delta debugging would have to keep programs well-formed and
   memories consistent; shrinking the *spec* sidesteps both problems — every
   candidate is a valid program by construction.  We repeatedly try the
   first simplification that still reproduces the failure, restarting from
   the head of the list after each success, until a fixpoint. *)

let half x = x / 2

(* Candidate simplifications, most aggressive first.  Each returns a
   strictly "smaller" spec or [None] when it no longer applies. *)
let steps : (Gen.spec -> Gen.spec option) list =
  [
    (* Simplify the shape to the core pattern. *)
    (fun s ->
      if s.Gen.shape <> Gen.Indirect then Some { s with Gen.shape = Gen.Indirect }
      else None);
    (* Drop orthogonal stressors. *)
    (fun s -> if s.Gen.alias_store then Some { s with Gen.alias_store = false } else None);
    (fun s -> if s.Gen.tight then Some { s with Gen.tight = false } else None);
    (fun s ->
      if s.Gen.bound <> Gen.Bound_imm then Some { s with Gen.bound = Gen.Bound_imm }
      else None);
    (* Shrink sizes. *)
    (fun s -> if s.Gen.n > 0 then Some { s with Gen.n = half s.Gen.n } else None);
    (fun s -> if s.Gen.n > 0 then Some { s with Gen.n = s.Gen.n - 1 } else None);
    (fun s -> if s.Gen.inner > 1 then Some { s with Gen.inner = half s.Gen.inner } else None);
    (fun s -> if s.Gen.len_a > 4 then Some { s with Gen.len_a = s.Gen.len_a / 2 } else None);
    (fun s -> if s.Gen.hash_depth > 1 then Some { s with Gen.hash_depth = 1 } else None);
    (fun s -> if s.Gen.data_seed <> 0 then Some { s with Gen.data_seed = 0 } else None);
  ]

(* [shrink spec ~still_fails] returns the smallest spec (under the greedy
   order above) for which [still_fails] holds; [spec] itself must fail. *)
let shrink (spec : Gen.spec) ~(still_fails : Gen.spec -> bool) : Gen.spec =
  let rec fixpoint s =
    let rec try_steps = function
      | [] -> s
      | step :: rest -> (
          match step s with
          | Some s' when still_fails s' -> fixpoint s'
          | _ -> try_steps rest)
    in
    try_steps steps
  in
  fixpoint spec
