(** Greedy spec-level test-case shrinking: every candidate is a valid
    program by construction, so no IR-level repair is needed. *)

val shrink : Gen.spec -> still_fails:(Gen.spec -> bool) -> Gen.spec
(** Smallest spec (under the greedy simplification order) still satisfying
    [still_fails]; the input spec itself is assumed to fail. *)
