(* BENCH.json rendering, factored out of the bench driver so the field
   semantics are unit-testable — in particular the supervised-overhead
   field, which once silently emitted `null` whenever its inputs were
   missing instead of saying why.

   Schema 6: adds the "serve" section (loadtest results of the
   compile-and-simulate service: latency split, throughput, cache hit
   rate, corruption counters) and replaces the `null`
   supervised_overhead_pct with explicit skip markers.

   Schema 7: the serve section gains warm_hit_rate and journal_replayed
   — the cache-journal warm-start measurement (restart the daemon on
   its journal, replay the same pool, record the sim-hit rate). *)

type measurement = {
  name : string;
  skipped : bool;
  walls_s : float list; (* one entry per trial, in run order *)
  cycles : int;
}

let min_wall m = List.fold_left Float.min infinity m.walls_s

let median_wall m =
  (* Float.compare, not polymorphic compare: boxed-float comparison via
     [compare] is both slower and a lurking trap (nan ordering). *)
  let a = Array.of_list m.walls_s in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 0 then infinity
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* Supervision cost of the supervision pipeline, measured piece-vs-piece:
   best supervised fig2 wall over best raw fig2 wall (acceptance: <2%).
   The driver interleaves the two pieces' trials after a shared excluded
   warmup, so both sets of walls see the same machine state — comparing
   a cold first piece against a warm second one once produced an
   impossible negative overhead.  Measurement noise can still leave the
   supervised min a hair under the raw min; that means "no measurable
   overhead", so the delta is clamped at zero rather than reported as a
   negative cost. *)
type overhead =
  | Measured of float
  | Skipped of string  (* why there is no number *)

let supervised_overhead ~trials (ms : measurement list) =
  let find n = List.find_opt (fun m -> m.name = n && not m.skipped) ms in
  match (find "fig2", find "fig2-supervised") with
  | Some raw, Some sup when min_wall raw > 0.0 ->
      if trials < 2 then
        (* One interleaved trial each is a sample, not a measurement:
           min-of-one cannot reject a scheduling hiccup, and this field
           gates a <2% acceptance threshold.  Say so instead of
           reporting a number that looks load-bearing. *)
        Skipped "trials<2"
      else
        Measured
          (Float.max 0.0
             (100.0 *. (min_wall sup -. min_wall raw) /. min_wall raw))
  | _ -> Skipped "fig2 pair not measured"

(* The JSON value for the field: a number, or a self-describing string —
   never null (a bare null cannot say whether the overhead was zero,
   unmeasured, or unmeasurable). *)
let overhead_field ~trials ms =
  match supervised_overhead ~trials ms with
  | Measured pct -> Printf.sprintf "%.2f" pct
  | Skipped why -> Printf.sprintf "%S" ("skipped (" ^ why ^ ")")

type serve_stats = {
  sv_requests : int;
  sv_distinct : int;
  sv_concurrency : int;
  sv_errors : int;
  sv_dropped : int;
  sv_corrupted : int;
  sv_cold : int;
  sv_pass_hits : int;
  sv_sim_hits : int;
  sv_p50_us : int;
  sv_p99_us : int;
  sv_cold_p50_us : int;
  sv_hit_p50_us : int;
  sv_throughput_rps : float;
  sv_hit_rate : float;
  sv_warm_hit_rate : float;
      (* sim-hit rate of a restarted daemon replaying its journal over
         the same program pool — the warm-start payoff *)
  sv_journal_replayed : int;  (* journal records replayed at restart *)
}

(* Recorded serial (-j 1) single-trial baseline wall-clock per piece, in
   seconds, from the interpreter-only harness (EXPERIMENTS.md "Harness
   performance baseline").  BENCH.json reports speedup vs these numbers;
   pieces without a recorded baseline get null. *)
let baseline_wall_s : (string * float) list =
  [
    ("fig2", 4.8);
    ("fig4", 265.7);
    ("fig5", 70.9);
    ("fig7", 15.9);
    ("fig8", 45.0);
    ("fig10", 9.3);
    (* bechamel has no baseline entry: the piece gained the memsys group
       in PR 3, so its wall is not comparable to the PR-1 recording. *)
  ]

let render ~jobs ~engine ~trials ~total_s
    ?(providers : Profile_guided.eval list = []) ?(serve : serve_stats option)
    (ms : measurement list) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": 7,\n";
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string b
    (Printf.sprintf "  \"engine\": %S,\n" (Spf_sim.Engine.to_string engine));
  Buffer.add_string b (Printf.sprintf "  \"trials\": %d,\n" trials);
  Buffer.add_string b (Printf.sprintf "  \"total_wall_s\": %.3f,\n" total_s);
  Buffer.add_string b
    (Printf.sprintf "  \"supervised_overhead_pct\": %s,\n"
       (overhead_field ~trials ms));
  (match providers with
  | [] -> ()
  | evals ->
      Buffer.add_string b "  \"distance_providers\": [\n";
      List.iteri
        (fun i (e : Profile_guided.eval) ->
          let sep = if i = List.length evals - 1 then "" else "," in
          Buffer.add_string b
            (Printf.sprintf
               "    {\"machine\": %S, \"geo_static\": %.4f, \"geo_profile\": \
                %.4f, \"geo_adaptive\": %.4f, \"benches\": [\n"
               e.Profile_guided.machine e.Profile_guided.geo_static
               e.Profile_guided.geo_profile e.Profile_guided.geo_adaptive);
          List.iteri
            (fun j (r : Profile_guided.row) ->
              let rsep = if j = List.length e.Profile_guided.rows - 1 then ""
                else "," in
              Buffer.add_string b
                (Printf.sprintf
                   "      {\"bench\": %S, \"profile_c\": %d, \"plain_cycles\": \
                    %d, \"static_cycles\": %d, \"profile_cycles\": %d, \
                    \"adaptive_cycles\": %d, \"adaptive_windows\": %d}%s\n"
                   r.Profile_guided.bench r.Profile_guided.profile_c
                   r.Profile_guided.plain_cycles r.Profile_guided.static_cycles
                   r.Profile_guided.profile_cycles
                   r.Profile_guided.adaptive_cycles
                   r.Profile_guided.adaptive_windows rsep))
            e.Profile_guided.rows;
          Buffer.add_string b (Printf.sprintf "    ]}%s\n" sep))
        evals;
      Buffer.add_string b "  ],\n");
  (match serve with
  | None -> ()
  | Some s ->
      Buffer.add_string b
        (Printf.sprintf
           "  \"serve\": {\"requests\": %d, \"distinct\": %d, \
            \"concurrency\": %d, \"errors\": %d, \"dropped\": %d, \
            \"corrupted\": %d, \"cold\": %d, \"pass_hits\": %d, \
            \"sim_hits\": %d, \"p50_us\": %d, \"p99_us\": %d, \
            \"cold_p50_us\": %d, \"hit_p50_us\": %d, \"throughput_rps\": \
            %.1f, \"hit_rate\": %.4f, \"warm_hit_rate\": %.4f, \
            \"journal_replayed\": %d},\n"
           s.sv_requests s.sv_distinct s.sv_concurrency s.sv_errors
           s.sv_dropped s.sv_corrupted s.sv_cold s.sv_pass_hits s.sv_sim_hits
           s.sv_p50_us s.sv_p99_us s.sv_cold_p50_us s.sv_hit_p50_us
           s.sv_throughput_rps s.sv_hit_rate s.sv_warm_hit_rate
           s.sv_journal_replayed));
  Buffer.add_string b "  \"pieces\": [\n";
  List.iteri
    (fun i m ->
      let sep = if i = List.length ms - 1 then "" else "," in
      if m.skipped then
        Buffer.add_string b
          (Printf.sprintf "    {\"name\": %S, \"skipped\": true}%s\n" m.name
             sep)
      else begin
        let wmin = min_wall m and wmed = median_wall m in
        let speedup =
          match List.assoc_opt m.name baseline_wall_s with
          | Some base when wmin > 0.0 -> Printf.sprintf "%.2f" (base /. wmin)
          | _ -> "null"
        in
        Buffer.add_string b
          (Printf.sprintf
             "    {\"name\": %S, \"wall_min_s\": %.3f, \"wall_median_s\": \
              %.3f, \"trials\": %d, \"cycles\": %d, \"speedup_vs_baseline\": \
              %s}%s\n"
             m.name wmin wmed (List.length m.walls_s) m.cycles speedup sep)
      end)
    ms;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write ~path ~jobs ~engine ~trials ~total_s ?providers ?serve ms =
  let oc = open_out path in
  output_string oc (render ~jobs ~engine ~trials ~total_s ?providers ?serve ms);
  close_out oc
