(** BENCH.json rendering (schema 7), factored out of the bench driver so
    the field semantics — notably the supervised-overhead skip markers —
    are unit-testable. *)

type measurement = {
  name : string;
  skipped : bool;
  walls_s : float list;  (** one entry per trial, in run order *)
  cycles : int;
}

val min_wall : measurement -> float
val median_wall : measurement -> float

type overhead =
  | Measured of float
  | Skipped of string  (** why there is no number *)

val supervised_overhead : trials:int -> measurement list -> overhead
(** Best supervised fig2 wall over best raw fig2 wall, clamped at zero.
    [Skipped "trials<2"] when both pieces ran but only one interleaved
    trial each (min-of-one cannot gate a <2% threshold); [Skipped "fig2
    pair not measured"] when either piece is absent. *)

val overhead_field : trials:int -> measurement list -> string
(** The rendered JSON value for ["supervised_overhead_pct"]: a number
    such as ["1.43"], or a self-describing string such as
    ["\"skipped (trials<2)\""] — never [null]. *)

type serve_stats = {
  sv_requests : int;
  sv_distinct : int;
  sv_concurrency : int;
  sv_errors : int;
  sv_dropped : int;
  sv_corrupted : int;
  sv_cold : int;
  sv_pass_hits : int;
  sv_sim_hits : int;
  sv_p50_us : int;
  sv_p99_us : int;
  sv_cold_p50_us : int;
  sv_hit_p50_us : int;
  sv_throughput_rps : float;
  sv_hit_rate : float;
  sv_warm_hit_rate : float;
      (** sim-hit rate of a journal-restarted daemon over the same pool *)
  sv_journal_replayed : int;  (** journal records replayed at restart *)
}

val baseline_wall_s : (string * float) list
(** Recorded serial single-trial baselines per piece (seconds). *)

val render :
  jobs:int ->
  engine:Spf_sim.Engine.t ->
  trials:int ->
  total_s:float ->
  ?providers:Profile_guided.eval list ->
  ?serve:serve_stats ->
  measurement list ->
  string

val write :
  path:string ->
  jobs:int ->
  engine:Spf_sim.Engine.t ->
  trials:int ->
  total_s:float ->
  ?providers:Profile_guided.eval list ->
  ?serve:serve_stats ->
  measurement list ->
  unit
