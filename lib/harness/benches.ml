module Machine = Spf_sim.Machine
module Workload = Spf_workloads.Workload
module Is = Spf_workloads.Is
module Cg = Spf_workloads.Cg
module Ra = Spf_workloads.Ra
module Hj = Spf_workloads.Hj
module G500 = Spf_workloads.G500

(* The seven benchmark configurations of §5.1, with plain builders, the
   best-known manual prefetch scheme for each machine ("the best manual
   software prefetches we could generate", §6.1 — which for G500 differs
   between out-of-order and in-order machines), and pass-applied variants. *)

type bench = {
  id : string;
  plain : unit -> Workload.built;
  manual : machine:Machine.t -> c:int option -> Workload.built;
      (* [c] overrides the look-ahead constant (Fig 6 sweeps) *)
}

let with_c ~c ~default = Option.value c ~default

let is_bench ?(params = Is.default) () =
  {
    id = "IS";
    plain = (fun () -> Is.build params);
    manual =
      (fun ~machine:_ ~c ->
        Is.build ~manual:{ Is.optimal with c = with_c ~c ~default:64 } params);
  }

let cg_bench ?(params = Cg.default) () =
  {
    id = "CG";
    plain = (fun () -> Cg.build params);
    manual =
      (fun ~machine:_ ~c ->
        Cg.build ~manual:{ Cg.optimal with c = with_c ~c ~default:64 } params);
  }

let ra_bench ?(params = Ra.default) () =
  {
    id = "RA";
    plain = (fun () -> Ra.build params);
    manual =
      (fun ~machine:_ ~c ->
        (* The batch-generation manual scheme has a fixed (one batch) lead;
           when sweeping c we fall back to the in-loop scheme the sweep is
           about. *)
        match c with
        | None -> Ra.build ~manual:Ra.optimal params
        | Some c ->
            Ra.build ~manual:{ Ra.during_generation = false; c } params);
  }

let hj2_bench ?(params = Hj.default_hj2) () =
  {
    id = "HJ-2";
    plain = (fun () -> Hj.build params);
    manual =
      (fun ~machine:_ ~c ->
        Hj.build ~manual:{ Hj.optimal_hj2 with c = with_c ~c ~default:64 } params);
  }

let hj8_bench ?(params = Hj.default_hj8) () =
  {
    id = "HJ-8";
    plain = (fun () -> Hj.build params);
    manual =
      (fun ~machine:_ ~c ->
        Hj.build ~manual:{ Hj.optimal_hj8 with c = with_c ~c ~default:64 } params);
  }

let g500_bench ~id ~params () =
  {
    id;
    plain = (fun () -> G500.build ~name:id params);
    manual =
      (fun ~machine ~c ->
        (* In our timing model the per-edge prefetches pay off on every
           machine (EXPERIMENTS.md discusses the divergence from the
           paper's real-Haswell finding), so the best manual scheme always
           includes them. *)
        ignore machine;
        ignore c;
        G500.build ~name:id ~manual:G500.optimal params);
  }

let all () =
  [
    is_bench ();
    cg_bench ();
    ra_bench ();
    hj2_bench ();
    hj8_bench ();
    g500_bench ~id:"G500-s16" ~params:G500.small ();
    g500_bench ~id:"G500-s21" ~params:G500.large ();
  ]

(* Look-ahead-sweep subjects of Fig 6. *)
let sweepable () = [ is_bench (); cg_bench (); ra_bench (); hj2_bench () ]

(* Pass-applied variants. *)

let auto ?config (b : Workload.built) =
  ignore (Spf_core.Pass.run ?config b.Workload.func);
  b

let auto_with_report ?config (b : Workload.built) =
  let report = Spf_core.Pass.run ?config b.Workload.func in
  (b, report)

let icc ?config (b : Workload.built) =
  ignore (Spf_core.Icc_pass.run ?config b.Workload.func);
  b

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
           /. float_of_int (List.length xs))
