(** The seven benchmark configurations of §5.1, with plain builders and the
    best-known manual scheme for each machine ("the best manual software
    prefetches we could generate", §6.1). *)

type bench = {
  id : string;
  plain : unit -> Spf_workloads.Workload.built;
  manual :
    machine:Spf_sim.Machine.t ->
    c:int option ->
    Spf_workloads.Workload.built;
      (** [c] overrides the look-ahead constant (the Fig 6 sweeps) *)
}

val is_bench : ?params:Spf_workloads.Is.params -> unit -> bench
val cg_bench : ?params:Spf_workloads.Cg.params -> unit -> bench
val ra_bench : ?params:Spf_workloads.Ra.params -> unit -> bench
val hj2_bench : ?params:Spf_workloads.Hj.params -> unit -> bench
val hj8_bench : ?params:Spf_workloads.Hj.params -> unit -> bench
val g500_bench : id:string -> params:Spf_workloads.G500.params -> unit -> bench

val all : unit -> bench list
(** IS, CG, RA, HJ-2, HJ-8, G500-s16, G500-s21 — Fig 4's benchmark order. *)

val sweepable : unit -> bench list
(** The Fig 6 subjects: IS, CG, RA, HJ-2. *)

val auto :
  ?config:Spf_core.Config.t ->
  Spf_workloads.Workload.built ->
  Spf_workloads.Workload.built
(** Apply the paper's pass in place. *)

val auto_with_report :
  ?config:Spf_core.Config.t ->
  Spf_workloads.Workload.built ->
  Spf_workloads.Workload.built * Spf_core.Pass.report
(** {!auto}, returning the pass report too — needed to recover the
    per-loop distance decisions and adaptive distance registers. *)

val icc :
  ?config:Spf_core.Config.t ->
  Spf_workloads.Workload.built ->
  Spf_workloads.Workload.built
(** Apply the ICC-model baseline pass in place. *)

val geomean : float list -> float
