(* Self-contained crash bundles.

   A bundle is a directory capturing everything needed to reproduce one
   failing campaign job offline: human-readable metadata (what ran, with
   which seed/config/engine, and how it failed), the printed IR of the
   program involved, the stats accumulated up to the failure, and an
   opaque binary payload (a Marshal image of the campaign-specific
   reproduction recipe, e.g. a fuzz spec) guarded by a checksum.

   Layout:
     <dir>/meta          "spf-bundle 1" + one "key value" line per entry
     <dir>/program.ir    printed IR (optional, informational + greppable)
     <dir>/stats.txt     stats-so-far (optional)
     <dir>/payload.bin   binary reproduction payload (optional)

   [meta] carries payload.bin's MD5 ("payload-md5"), so a tampered or
   torn payload is rejected before anything tries to unmarshal it.
   Values are newline-escaped; keys are single tokens. *)

let format_header = "spf-bundle 1"

type t = {
  dir : string;
  meta : (string * string) list;
  ir : string option;
  stats : string option;
  payload : string option;
}

let dir t = t.dir
let meta t = t.meta
let ir t = t.ir
let stats t = t.stats
let payload t = t.payload
let meta_value t key = List.assoc_opt key t.meta

let escape_value v =
  String.concat "\\n" (String.split_on_char '\n' v)

let unescape_value v =
  (* Split on the literal two-character sequence "\n". *)
  let b = Buffer.create (String.length v) in
  let n = String.length v in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && v.[!i] = '\\' && v.[!i + 1] = 'n' then begin
      Buffer.add_char b '\n';
      i := !i + 2
    end
    else begin
      Buffer.add_char b v.[!i];
      incr i
    end
  done;
  Buffer.contents b

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec mkdirs d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdirs parent;
    (try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ())
  end

(* Bundle directory name for a job key: keys are path-like
   ("fig4/7", "case/12"); flatten to a single component. *)
let name_of_key key =
  String.map (fun c -> if c = '/' || c = ' ' then '-' else c) key

let write ~root ~name ~meta ?ir ?stats ?payload () =
  let dir = Filename.concat root (name_of_key name) in
  mkdirs dir;
  let meta =
    match payload with
    | Some p -> meta @ [ ("payload-md5", Digest.to_hex (Digest.string p)) ]
    | None -> meta
  in
  List.iter
    (fun (k, _) ->
      if k = "" || String.exists (fun c -> c = ' ' || c = '\n') k then
        invalid_arg ("Bundle.write: bad meta key " ^ String.escaped k))
    meta;
  let b = Buffer.create 256 in
  Buffer.add_string b (format_header ^ "\n");
  List.iter
    (fun (k, v) -> Buffer.add_string b (k ^ " " ^ escape_value v ^ "\n"))
    meta;
  write_file (Filename.concat dir "meta") (Buffer.contents b);
  Option.iter (fun s -> write_file (Filename.concat dir "program.ir") s) ir;
  Option.iter (fun s -> write_file (Filename.concat dir "stats.txt") s) stats;
  Option.iter (fun s -> write_file (Filename.concat dir "payload.bin") s) payload;
  dir

let bad dir msg =
  failwith (Printf.sprintf "%s is not a usable crash bundle: %s" dir msg)

let read dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    bad dir "no such directory";
  let meta_path = Filename.concat dir "meta" in
  if not (Sys.file_exists meta_path) then bad dir "missing meta file";
  let lines = String.split_on_char '\n' (read_file meta_path) in
  (match lines with
  | header :: _ when header = format_header -> ()
  | header :: _ -> bad dir (Printf.sprintf "unrecognised header %S" header)
  | [] -> bad dir "empty meta");
  let meta =
    List.filteri (fun i _ -> i >= 1) lines
    |> List.filter (fun l -> l <> "")
    |> List.map (fun line ->
           match String.index_opt line ' ' with
           | Some i ->
               ( String.sub line 0 i,
                 unescape_value
                   (String.sub line (i + 1) (String.length line - i - 1)) )
           | None -> bad dir (Printf.sprintf "malformed meta line %S" line))
  in
  let opt_file name =
    let p = Filename.concat dir name in
    if Sys.file_exists p then Some (read_file p) else None
  in
  let payload = opt_file "payload.bin" in
  (match (payload, List.assoc_opt "payload-md5" meta) with
  | Some p, Some sum ->
      if Digest.to_hex (Digest.string p) <> sum then
        bad dir "payload.bin checksum mismatch"
  | Some _, None -> bad dir "payload.bin present but no payload-md5 in meta"
  | None, Some _ -> bad dir "payload-md5 in meta but payload.bin missing"
  | None, None -> ());
  {
    dir;
    meta;
    ir = opt_file "program.ir";
    stats = opt_file "stats.txt";
    payload;
  }
