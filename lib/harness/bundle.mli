(** Self-contained crash bundles: a directory capturing one failing
    campaign job — metadata, printed IR, stats-so-far, and a checksummed
    binary reproduction payload — replayable offline via [spf replay].
    See docs/ROBUSTNESS.md. *)

type t

val write :
  root:string ->
  name:string ->
  meta:(string * string) list ->
  ?ir:string ->
  ?stats:string ->
  ?payload:string ->
  unit ->
  string
(** Write bundle [root]/[name'] (where [name'] is [name] with [/] and
    spaces flattened to [-]) and return its directory.  [meta] keys must
    be single tokens; values may span lines.  When [payload] is given its
    MD5 is recorded in meta, so {!read} can reject tampering. *)

val read : string -> t
(** Load and validate a bundle directory.
    @raise Failure if the bundle is missing pieces, has an unknown format
    version, or its payload fails the checksum. *)

val dir : t -> string
val meta : t -> (string * string) list
val meta_value : t -> string -> string option
val ir : t -> string option
val stats : t -> string option
val payload : t -> string option
