module Machine = Spf_sim.Machine
module Interp = Spf_sim.Interp
module Multicore = Spf_sim.Multicore
module Dram = Spf_sim.Dram
module Workload = Spf_workloads.Workload
module Is = Spf_workloads.Is
module Hj = Spf_workloads.Hj
module Config = Spf_core.Config

(* Reproduction of every table and figure in the paper's evaluation
   (§5–§6).  Each function runs the relevant simulations — every run is
   checksum-validated — and prints the series the paper plots, alongside
   the approximate values read off the paper's charts so drift is obvious.

   Each figure is built as a list of independent cells, each a function
   of the per-job execution context ({!Runner.ctx}): unsupervised runs
   fan them out over {!Pool} directly; supervised runs hand them to
   {!Supervisor} as keyed jobs ("<fig>/<index>"), which adds deadlines,
   retry, checkpoint/resume and crash bundles.  Results are collected in
   submission order and printed serially, so the printed output is
   byte-identical to a serial run for every [jobs] value — and, because
   checkpointed payloads round-trip through Marshal exactly, for
   resumed runs too.  Each figure returns the total simulated cycles it
   executed (the work metric BENCH.json tracks alongside wall-clock).

   The experiment index lives in DESIGN.md §3; paper-vs-measured narrative
   in EXPERIMENTS.md. *)

let fmt = Format.std_formatter

let hr title =
  Format.fprintf fmt "@.=== %s ===@." title

exception Campaign_failed of int

(* Checkpoint codec for cell payloads: Marshal round-trips OCaml floats
   and records bit-exactly, which is what makes resumed figure output
   byte-identical.  The journal's per-record checksum guards integrity;
   decode failure therefore means an incompatible build, not corruption. *)
let encode v = Marshal.to_string v []

let decode s = try Some (Marshal.from_string s 0) with _ -> None

(* Fan a figure's cells out — each takes the job context and returns
   (value, simulated cycles); results come back in submission order.
   With [sup], cells run under the full supervision pipeline instead and
   a permanently-failed cell aborts the figure with {!Campaign_failed}
   (after every other cell has finished and been checkpointed). *)
let par ?sup ?jobs ?engine ~fig thunks =
  let rs =
    match sup with
    | None ->
        let ctx = Runner.ctx_of_engine engine in
        Pool.map ?jobs (fun f -> f ctx) thunks
    | Some opts ->
        let sjobs =
          List.mapi
            (fun i work ->
              {
                Supervisor.key = Printf.sprintf "%s/%d" fig i;
                work;
                binfo =
                  (* Enough for [spf replay] to re-run the cell from the
                     registry: figure name + index. *)
                  Some
                    (fun _ ->
                      {
                        Supervisor.b_meta =
                          [
                            ("kind", "fig-cell");
                            ("figure", fig);
                            ("index", string_of_int i);
                          ];
                        b_ir = None;
                        b_payload = None;
                      });
              })
            thunks
        in
        let results = Supervisor.run_jobs opts ~encode ~decode sjobs in
        let ok, failed = Supervisor.report_stderr results in
        if failed <> [] then raise (Campaign_failed (List.length failed));
        List.map (fun (o : _ Supervisor.outcome) -> o.value) ok
  in
  (List.map fst rs, List.fold_left (fun acc (_, c) -> acc + c) 0 rs)

(* ------------------------------------------------------------------ *)

let table1 () =
  hr "Table 1: system setup for each processor evaluated";
  List.iter (fun m -> Format.fprintf fmt "  %a@." Machine.pp m) Machine.all

(* ------------------------------------------------------------------ *)

let fig2_schemes =
  [
    ("Intuitive", Is.intuitive, 1.08);
    ("Offset too small", Is.offset_too_small, 1.20);
    ("Offset too big", Is.offset_too_big, 1.25);
    ("Optimal", Is.optimal, 1.30);
  ]

let fig2_core () =
  let machine = Machine.haswell in
  (fun ctx ->
    let r = Runner.run_ctx ctx ~machine (Is.build Is.default) in
    (r, Runner.cycles r))
  :: List.map
       (fun (_, m, _) ctx ->
         let r = Runner.run_ctx ctx ~machine (Is.build ~manual:m Is.default) in
         (r, Runner.cycles r))
       fig2_schemes

let fig2 ?sup ?jobs ?engine () =
  hr "Fig 2: manual prefetch schemes for IS on Haswell";
  let runs, cycles = par ?sup ?jobs ?engine ~fig:"fig2" (fig2_core ()) in
  let base, scheme_runs =
    match runs with b :: rest -> (b, rest) | [] -> assert false
  in
  List.iter2
    (fun (label, _, paper) r ->
      Format.fprintf fmt "  %-16s %5.2fx   (paper ~%.2fx)@." label
        (Runner.speedup ~baseline:base r)
        paper)
    fig2_schemes scheme_runs;
  cycles

(* ------------------------------------------------------------------ *)

type fig4_row = {
  bench : string;
  icc : float option;
  auto : float;
  manual : float;
}

(* The auto-pass cell body shared by the provider-aware figures: apply
   the pass under [config] (any {!Spf_core.Distance.provider}, adaptive
   included — {!Profile_guided.run_auto} attaches the tuner) and run.
   With the default config this is bit-identical to the historical
   [Benches.auto] path. *)
let run_auto_cfg (ctx : Runner.ctx) ~machine ?provider (b : Benches.bench) =
  let config =
    match provider with
    | None -> Config.default
    | Some p -> Config.with_provider p Config.default
  in
  Profile_guided.run_auto ~ctx ~config ~machine b

(* One (machine, bench) cell of the Fig 4 grid: base + variants, run
   inside a single job. *)
let fig4_cell ?provider (ctx : Runner.ctx) ~(machine : Machine.t)
    (b : Benches.bench) =
  let with_icc = machine.name = "XeonPhi" in
  let base = Runner.run_ctx ctx ~machine (b.plain ()) in
  let auto_r = run_auto_cfg ctx ~machine ?provider b in
  let manual_r = Runner.run_ctx ctx ~machine (b.manual ~machine ~c:None) in
  let icc_r =
    if with_icc then Some (Runner.run_ctx ctx ~machine (Benches.icc (b.plain ())))
    else None
  in
  let cycles =
    Runner.cycles base + Runner.cycles auto_r + Runner.cycles manual_r
    + (match icc_r with Some r -> Runner.cycles r | None -> 0)
  in
  ( {
      bench = b.id;
      icc = Option.map (fun r -> Runner.speedup ~baseline:base r) icc_r;
      auto = Runner.speedup ~baseline:base auto_r;
      manual = Runner.speedup ~baseline:base manual_r;
    },
    cycles )

let fig4_machine ?jobs ?engine ?provider (machine : Machine.t) : fig4_row list
    =
  fst
    (par ?jobs ?engine ~fig:"fig4m"
       (List.map
          (fun b ctx -> fig4_cell ?provider ctx ~machine b)
          (Benches.all ())))

let fig4_core ?(machines = Machine.all) ?provider () =
  let benches = Benches.all () in
  List.concat_map
    (fun machine ->
      List.map (fun b ctx -> fig4_cell ?provider ctx ~machine b) benches)
    machines

let fig4 ?sup ?jobs ?engine ?(machines = Machine.all) ?provider () =
  hr "Fig 4: autogenerated and manual software-prefetch speedups";
  let benches = Benches.all () in
  let cells, cycles =
    par ?sup ?jobs ?engine ~fig:"fig4" (fig4_core ~machines ?provider ())
  in
  (* Regroup the machine-major job list into per-machine panels. *)
  let nb = List.length benches in
  let rows_of k = List.filteri (fun i _ -> i / nb = k) cells in
  List.iteri
    (fun k machine ->
      let rows = rows_of k in
      Format.fprintf fmt "  --- %s ---@." machine.Machine.name;
      Format.fprintf fmt "  %-10s %s%8s %8s@." "bench"
        (if machine.name = "XeonPhi" then "     icc" else "        ")
        "auto" "manual";
      List.iter
        (fun r ->
          Format.fprintf fmt "  %-10s %s%7.2fx %7.2fx@." r.bench
            (match r.icc with
            | Some v -> Printf.sprintf "%7.2fx" v
            | None -> "        ")
            r.auto r.manual)
        rows;
      let geo f = Benches.geomean (List.map f rows) in
      Format.fprintf fmt "  %-10s %s%7.2fx %7.2fx@." "geomean"
        (match machine.name with
        | "XeonPhi" ->
            Printf.sprintf "%7.2fx"
              (geo (fun r -> Option.value r.icc ~default:1.0))
        | _ -> "        ")
        (geo (fun r -> r.auto))
        (geo (fun r -> r.manual));
      let paper_geo =
        match machine.Machine.name with
        | "Haswell" -> "1.3"
        | "A57" -> "1.1"
        | "A53" -> "2.1"
        | "XeonPhi" -> "2.7"
        | _ -> "?"
      in
      Format.fprintf fmt "  (paper autogenerated geomean ~%sx)@." paper_geo)
    machines;
  cycles

(* ------------------------------------------------------------------ *)

let fig5_core ?provider () =
  let machine = Machine.haswell in
  let cfg =
    match provider with
    | None -> Config.default
    | Some p -> Config.with_provider p Config.default
  in
  List.map
    (fun (b : Benches.bench) ctx ->
      let base = Runner.run_ctx ctx ~machine (b.plain ()) in
      let ind_r =
        Profile_guided.run_auto ~ctx
          ~config:{ cfg with Config.stride_companion = false }
          ~machine b
      in
      let both_r = Profile_guided.run_auto ~ctx ~config:cfg ~machine b in
      ( ( b.id,
          Runner.speedup ~baseline:base ind_r,
          Runner.speedup ~baseline:base both_r ),
        Runner.cycles base + Runner.cycles ind_r + Runner.cycles both_r ))
    (Benches.all ())

let fig5 ?sup ?jobs ?engine ?provider () =
  hr "Fig 5: indirect-only vs indirect+stride prefetches (auto, Haswell)";
  let rows, cycles =
    par ?sup ?jobs ?engine ~fig:"fig5" (fig5_core ?provider ())
  in
  List.iter
    (fun (id, indirect_only, both) ->
      Format.fprintf fmt "  %-10s indirect=%5.2fx  indirect+stride=%5.2fx@."
        id indirect_only both)
    rows;
  cycles

(* ------------------------------------------------------------------ *)

let fig6_default_cs = [ 4; 8; 16; 32; 64; 128; 256 ]

let fig6_core ?(cs = fig6_default_cs) () =
  let benches = Benches.sweepable () in
  let pairs =
    List.concat_map
      (fun (b : Benches.bench) ->
        List.map (fun machine -> (b, machine)) Machine.all)
      benches
  in
  List.map
    (fun ((b : Benches.bench), machine) ctx ->
      let base = Runner.run_ctx ctx ~machine (b.plain ()) in
      let acc = ref (Runner.cycles base) in
      let speedups =
        List.map
          (fun c ->
            let r =
              Runner.run_ctx ctx ~machine (b.manual ~machine ~c:(Some c))
            in
            acc := !acc + Runner.cycles r;
            Runner.speedup ~baseline:base r)
          cs
      in
      (speedups, !acc))
    pairs

let fig6 ?sup ?jobs ?engine ?(cs = fig6_default_cs) () =
  hr "Fig 6: speedup vs look-ahead distance c (manual prefetches)";
  let benches = Benches.sweepable () in
  let rows, cycles = par ?sup ?jobs ?engine ~fig:"fig6" (fig6_core ~cs ()) in
  let nm = List.length Machine.all in
  List.iteri
    (fun k (b : Benches.bench) ->
      Format.fprintf fmt "  --- %s ---@." b.id;
      Format.fprintf fmt "  %-8s" "machine";
      List.iter (fun c -> Format.fprintf fmt " c=%-5d" c) cs;
      Format.fprintf fmt "@.";
      List.iteri
        (fun j machine ->
          let speedups = List.nth rows ((k * nm) + j) in
          Format.fprintf fmt "  %-8s" machine.Machine.name;
          List.iter (fun s -> Format.fprintf fmt " %6.2f " s) speedups;
          Format.fprintf fmt "@.")
        Machine.all)
    benches;
  cycles

(* ------------------------------------------------------------------ *)

let fig7_core () =
  let depths = [ 1; 2; 3; 4 ] in
  List.map
    (fun machine ctx ->
      let base = Runner.run_ctx ctx ~machine (Hj.build Hj.default_hj8) in
      let acc = ref (Runner.cycles base) in
      let speedups =
        List.map
          (fun depth ->
            let r =
              Runner.run_ctx ctx ~machine
                (Hj.build ~manual:{ Hj.c = 64; depth } Hj.default_hj8)
            in
            acc := !acc + Runner.cycles r;
            Runner.speedup ~baseline:base r)
          depths
      in
      (speedups, !acc))
    Machine.all

let fig7 ?sup ?jobs ?engine () =
  hr "Fig 7: prefetching progressively more dependent loads (HJ-8)";
  let rows, cycles = par ?sup ?jobs ?engine ~fig:"fig7" (fig7_core ()) in
  Format.fprintf fmt "  %-8s depth=1 depth=2 depth=3 depth=4@." "machine";
  List.iter2
    (fun machine speedups ->
      Format.fprintf fmt "  %-8s" machine.Machine.name;
      List.iter (fun s -> Format.fprintf fmt " %6.2f " s) speedups;
      Format.fprintf fmt "@.")
    Machine.all rows;
  cycles

(* ------------------------------------------------------------------ *)

let fig8_core () =
  let machine = Machine.haswell in
  List.map
    (fun (b : Benches.bench) ctx ->
      let base = Runner.run_ctx ctx ~machine (b.plain ()) in
      let manual = Runner.run_ctx ctx ~machine (b.manual ~machine ~c:None) in
      ( (b.id, Runner.extra_instructions ~baseline:base manual),
        Runner.cycles base + Runner.cycles manual ))
    (Benches.all ())

let fig8 ?sup ?jobs ?engine () =
  hr "Fig 8: % extra dynamic instructions, optimal scheme, Haswell";
  let rows, cycles = par ?sup ?jobs ?engine ~fig:"fig8" (fig8_core ()) in
  List.iter
    (fun (id, extra) -> Format.fprintf fmt "  %-10s +%.0f%%@." id extra)
    rows;
  cycles

(* ------------------------------------------------------------------ *)

(* Fig 9: n independent copies of IS on cores sharing one DRAM channel.
   Throughput is normalised to one copy on one core without prefetching:
   thr(n) = n * makespan(1 core, no pf) / makespan(n cores). *)
let fig9_run_cores (ctx : Runner.ctx) ~n ~prefetched =
  let machine = Machine.haswell in
  let params = Is.default in
  let builts =
    Array.init n (fun k ->
        let b = Is.build { params with seed = params.seed + k } in
        if prefetched then ignore (Spf_core.Pass.run b.Workload.func);
        b)
  in
  let mc =
    Multicore.create ~machine ~n_cores:n ~make_instance:(fun ~core_id ~dram ~tscale ->
        let b = builts.(core_id) in
        Interp.create ~machine ~tscale ~dram ?engine:ctx.engine
          ?cancel:ctx.cancel ~mem:b.Workload.mem ~args:b.Workload.args
          b.Workload.func)
  in
  Multicore.run mc;
  Array.iteri
    (fun k core -> Workload.validate builts.(k) ~retval:(Interp.retval core))
    (Multicore.cores mc);
  Multicore.total_cycles mc

let fig9_default_core_counts = [ 1; 2; 4 ]

let fig9_core ?(core_counts = fig9_default_core_counts) () =
  let configs =
    (1, false)
    :: List.concat_map (fun n -> [ (n, false); (n, true) ]) core_counts
  in
  List.map
    (fun (n, prefetched) ctx ->
      let m = fig9_run_cores ctx ~n ~prefetched in
      (m, m))
    configs

let fig9 ?sup ?jobs ?engine ?(core_counts = fig9_default_core_counts) () =
  hr "Fig 9: IS multicore throughput on Haswell (shared DRAM)";
  let makespans, cycles =
    par ?sup ?jobs ?engine ~fig:"fig9" (fig9_core ~core_counts ())
  in
  let base1, rest =
    match makespans with b :: rest -> (b, rest) | [] -> assert false
  in
  Format.fprintf fmt "  %-7s %-14s %-14s@." "cores" "no-prefetch" "prefetch";
  List.iteri
    (fun k n ->
      let thr makespan =
        float_of_int (n * base1) /. float_of_int makespan
      in
      Format.fprintf fmt "  %-7d %-14.2f %-14.2f@." n
        (thr (List.nth rest (2 * k)))
        (thr (List.nth rest ((2 * k) + 1))))
    core_counts;
  cycles

(* ------------------------------------------------------------------ *)

let fig10_core ?provider () =
  let benches =
    [ Benches.is_bench (); Benches.ra_bench (); Benches.hj2_bench () ]
  in
  List.map
    (fun (b : Benches.bench) ctx ->
      let acc = ref 0 in
      let speedup_with pages =
        let machine = Machine.with_pages Machine.haswell pages in
        let base = Runner.run_ctx ctx ~machine (b.plain ()) in
        let r = run_auto_cfg ctx ~machine ?provider b in
        acc := !acc + Runner.cycles base + Runner.cycles r;
        Runner.speedup ~baseline:base r
      in
      let small = speedup_with Machine.Small_pages in
      let huge = speedup_with Machine.Huge_pages in
      ((b.id, small, huge), !acc))
    benches

let fig10 ?sup ?jobs ?engine ?provider () =
  hr "Fig 10: huge-page impact (auto, Haswell; speedup vs same page policy)";
  let rows, cycles =
    par ?sup ?jobs ?engine ~fig:"fig10" (fig10_core ?provider ())
  in
  Format.fprintf fmt "  %-10s %-12s %-12s@." "bench" "small-pages" "huge-pages";
  List.iter
    (fun (id, small, huge) ->
      Format.fprintf fmt "  %-10s %-12.2f %-12.2f@." id small huge)
    rows;
  cycles

(* ------------------------------------------------------------------ *)

(* Ablation: clamped prefetches vs Split's peeled clamp-free main loop
   (the hoisted-checks optimisation the paper attributes to ICC, §6.1). *)
let ablation_split_core () =
  List.map
    (fun machine ctx ->
      let base = Runner.run_ctx ctx ~machine (Is.build Is.default) in
      let clamped =
        let b = Is.build Is.default in
        ignore (Spf_core.Pass.run b.Workload.func);
        Runner.run_ctx ctx ~machine b
      in
      let split =
        let b = Is.build Is.default in
        ignore (Spf_core.Split.split_and_prefetch b.Workload.func);
        Runner.run_ctx ctx ~machine b
      in
      ( (base, clamped, split),
        Runner.cycles base + Runner.cycles clamped + Runner.cycles split ))
    Machine.all

let ablation_split ?sup ?jobs ?engine () =
  hr "Ablation: clamped prefetches vs loop splitting (IS, all machines)";
  let rows, cycles =
    par ?sup ?jobs ?engine ~fig:"ablation-split" (ablation_split_core ())
  in
  List.iter2
    (fun machine (base, clamped, split) ->
      Format.fprintf fmt
        "  %-8s clamped=%5.2fx (%+.0f%% insts)  split=%5.2fx (%+.0f%% insts)@."
        machine.Machine.name
        (Runner.speedup ~baseline:base clamped)
        (Runner.extra_instructions ~baseline:base clamped)
        (Runner.speedup ~baseline:base split)
        (Runner.extra_instructions ~baseline:base split))
    Machine.all rows;
  cycles

(* Ablation (DESIGN.md §5): eq. 1's staggered offsets vs a flat offset for
   every load in the chain. *)
let ablation_flat_offsets_core () =
  List.map
    (fun machine ctx ->
      let base = Runner.run_ctx ctx ~machine (Hj.build Hj.default_hj8) in
      let staggered_r =
        Runner.run_ctx ctx ~machine
          (Hj.build ~manual:{ Hj.c = 64; depth = 3 } Hj.default_hj8)
      in
      (* Flat: all prefetches at the same distance — dependent
         prefetches miss on their own address loads. *)
      let flat_r =
        Runner.run_ctx ctx ~machine
          (Hj.build ~manual:{ Hj.c = 1; depth = 3 } Hj.default_hj8)
      in
      ( ( Runner.speedup ~baseline:base staggered_r,
          Runner.speedup ~baseline:base flat_r ),
        Runner.cycles base + Runner.cycles staggered_r + Runner.cycles flat_r
      ))
    Machine.all

let ablation_flat_offsets ?sup ?jobs ?engine () =
  hr "Ablation: eq. 1 staggered offsets vs flat offsets (HJ-8, all machines)";
  let rows, cycles =
    par ?sup ?jobs ?engine ~fig:"ablation-flat"
      (ablation_flat_offsets_core ())
  in
  List.iter2
    (fun machine (staggered, flat) ->
      Format.fprintf fmt "  %-8s staggered=%5.2fx  flat(c=1)=%5.2fx@."
        machine.Machine.name staggered flat)
    Machine.all rows;
  cycles

(* ------------------------------------------------------------------ *)

(* Distance sweep: the acceptance figure for the distance-provider
   subsystem.  A look-ahead × workload heatmap of auto-pass speedups on
   each machine, the per-workload profile pick (ties resolve toward the
   head of [cs], which is eq. 1's c = 64), and the geomean comparison of
   the profile picks against the static equation — the reproducible
   demonstration behind BENCH.json's "distance_providers" gate. *)

let distance_sweep_default_cs = Profile_guided.candidates
let distance_sweep_default_machines = [ Machine.haswell; Machine.a53 ]

let distance_sweep_core ?(cs = distance_sweep_default_cs)
    ?(machines = distance_sweep_default_machines) ?benches () =
  let benches =
    match benches with Some bs -> bs | None -> Benches.sweepable ()
  in
  List.concat_map
    (fun machine ->
      List.map
        (fun (b : Benches.bench) ctx ->
          let plain =
            Runner.cycles (Runner.run_ctx ctx ~machine (b.Benches.plain ()))
          in
          let sweep =
            List.map
              (fun c -> (c, Profile_guided.measure ~ctx ~machine b ~c))
              cs
          in
          ( (b.Benches.id, plain, sweep),
            List.fold_left (fun acc (_, cy) -> acc + cy) plain sweep ))
        benches)
    machines

let distance_sweep ?sup ?jobs ?engine ?(fig = "distance-sweep")
    ?(cs = distance_sweep_default_cs)
    ?(machines = distance_sweep_default_machines) ?benches () =
  hr "Distance sweep: auto-pass speedup by look-ahead c (profile vs eq. 1)";
  let benches =
    match benches with Some bs -> bs | None -> Benches.sweepable ()
  in
  let rows, cycles =
    par ?sup ?jobs ?engine ~fig (distance_sweep_core ~cs ~machines ~benches ())
  in
  let nb = List.length benches in
  List.iteri
    (fun k (machine : Machine.t) ->
      let mrows = List.filteri (fun i _ -> i / nb = k) rows in
      Format.fprintf fmt "  --- %s ---@." machine.Machine.name;
      Format.fprintf fmt "  %-10s" "bench";
      List.iter (fun c -> Format.fprintf fmt "  c=%-5d" c) cs;
      Format.fprintf fmt "  pick@.";
      let static_sp = ref [] and pick_sp = ref [] in
      List.iter
        (fun (id, plain, sweep) ->
          let pick, pick_cy =
            List.fold_left
              (fun (bc, bcy) (c, cy) ->
                if cy < bcy then (c, cy) else (bc, bcy))
              (List.hd sweep) sweep
          in
          let static_cy =
            match List.assoc_opt Config.default.Config.c sweep with
            | Some cy -> cy
            | None -> snd (List.hd sweep)
          in
          static_sp := (float_of_int plain /. float_of_int static_cy) :: !static_sp;
          pick_sp := (float_of_int plain /. float_of_int pick_cy) :: !pick_sp;
          Format.fprintf fmt "  %-10s" id;
          List.iter
            (fun (_, cy) ->
              Format.fprintf fmt " %6.2fx "
                (float_of_int plain /. float_of_int cy))
            sweep;
          Format.fprintf fmt " c=%d@." pick)
        mrows;
      Format.fprintf fmt
        "  geomean    eq.1(c=%d)=%.3fx  profile-guided=%.3fx@."
        Config.default.Config.c
        (Benches.geomean !static_sp)
        (Benches.geomean !pick_sp))
    machines;
  cycles

(* The 4-cell smoke variant behind the tier-1 @distance-smoke alias:
   2 workloads x 2 distances on one machine. *)
let distance_smoke_cs = [ 64; 16 ]
let distance_smoke_benches () = [ Benches.is_bench (); Benches.hj2_bench () ]

let distance_smoke_core () =
  distance_sweep_core ~cs:distance_smoke_cs ~machines:[ Machine.haswell ]
    ~benches:(distance_smoke_benches ()) ()

let distance_smoke ?sup ?jobs ?engine () =
  distance_sweep ?sup ?jobs ?engine ~fig:"distance-smoke"
    ~cs:distance_smoke_cs ~machines:[ Machine.haswell ]
    ~benches:(distance_smoke_benches ()) ()

(* ------------------------------------------------------------------ *)

(* Replay registry: every figure's default cell list with the payload
   type erased (a crash bundle records only "fig <name>/<index>"; replay
   re-runs that one cell and reports its simulated cycles). *)
let erase cells = List.map (fun f ctx -> snd (f ctx)) cells

let replay_registry : (string * (unit -> (Runner.ctx -> int) list)) list =
  [
    ("fig2", fun () -> erase (fig2_core ()));
    ("fig4", fun () -> erase (fig4_core ()));
    ("fig5", fun () -> erase (fig5_core ()));
    ("fig6", fun () -> erase (fig6_core ()));
    ("fig7", fun () -> erase (fig7_core ()));
    ("fig8", fun () -> erase (fig8_core ()));
    ("fig9", fun () -> erase (fig9_core ()));
    ("fig10", fun () -> erase (fig10_core ()));
    ("ablation-split", fun () -> erase (ablation_split_core ()));
    ("ablation-flat", fun () -> erase (ablation_flat_offsets_core ()));
    ("distance-sweep", fun () -> erase (distance_sweep_core ()));
    ("distance-smoke", fun () -> erase (distance_smoke_core ()));
  ]

let replay_cell ~figure ~index ?engine () =
  match List.assoc_opt figure replay_registry with
  | None ->
      failwith
        (Printf.sprintf "unknown figure %S (known: %s)" figure
           (String.concat ", " (List.map fst replay_registry)))
  | Some mk ->
      let cells = mk () in
      let n = List.length cells in
      if index < 0 || index >= n then
        failwith
          (Printf.sprintf "figure %s has cells 0..%d, not %d" figure (n - 1)
             index);
      (List.nth cells index) (Runner.ctx_of_engine engine)
