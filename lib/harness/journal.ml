(* Append-only campaign checkpoint journal.

   One journal records the completed cells of one campaign (a figure run,
   a fuzz run, ...): each record is a (key, payload) pair, where the
   payload is the cell's full result (typically a Marshal image) so a
   resumed campaign reproduces byte-identical output without re-running
   the work.

   Durability discipline:
   - every [record] rewrites the whole journal to [journal.tmp] and
     atomically renames it over [journal], so a kill at ANY point leaves
     either the previous journal or the new one — never a torn file;
   - the header names the format version and the campaign identity;
     resuming with a different campaign string (different seed, count,
     engine, figure set...) is rejected instead of silently mixing runs;
   - every record line carries an MD5 of its key+payload; any mismatch,
     unknown line shape or trailing garbage rejects the journal loudly
     (corruption means external tampering or disk fault — resuming from
     it would silently corrupt results).

   Payloads are hex-encoded so the file stays line-oriented regardless of
   payload bytes.  Journals hold at most a few thousand records, so the
   rewrite-on-append is far below the cost of the cells it checkpoints. *)

let format_header = "spf-checkpoint 1"

type t = {
  dir : string;
  path : string;
  campaign : string;
  tbl : (string, string) Hashtbl.t; (* key -> payload (decoded) *)
  mutable order : string list; (* keys, newest first (for rewrite) *)
  lock : Mutex.t;
}

let file t = t.path

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  if String.length s mod 2 <> 0 then None
  else
    try
      Some
        (String.init (String.length s / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> None

let checksum ~key ~hex = Digest.to_hex (Digest.string (key ^ " " ^ hex))

let corrupt path msg =
  failwith
    (Printf.sprintf
       "checkpoint journal %s is not usable: %s (delete it to start the \
        campaign over)"
       path msg)

let validate_key key =
  if
    key = ""
    || String.exists (fun c -> c = ' ' || c = '\n' || c = '\r') key
  then invalid_arg ("Journal: bad record key " ^ String.escaped key)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Write the whole journal image and atomically swap it in. *)
let flush_locked t =
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (format_header ^ "\n");
  output_string oc ("campaign " ^ t.campaign ^ "\n");
  List.iter
    (fun key ->
      let hex = to_hex (Hashtbl.find t.tbl key) in
      output_string oc
        (Printf.sprintf "cell %s %s %s\n" (checksum ~key ~hex) key hex))
    (List.rev t.order);
  close_out oc;
  Sys.rename tmp t.path

let parse_existing t contents =
  let lines = String.split_on_char '\n' contents in
  (match lines with
  | header :: _ when header = format_header -> ()
  | header :: _ ->
      corrupt t.path
        (Printf.sprintf "unrecognised header %S (expected %S)" header
           format_header)
  | [] -> corrupt t.path "empty file");
  (match lines with
  | _ :: campaign_line :: _ ->
      let prefix = "campaign " in
      let ok =
        String.length campaign_line > String.length prefix
        && String.sub campaign_line 0 (String.length prefix) = prefix
      in
      if not ok then corrupt t.path "missing campaign line";
      let found =
        String.sub campaign_line (String.length prefix)
          (String.length campaign_line - String.length prefix)
      in
      if found <> t.campaign then
        failwith
          (Printf.sprintf
             "checkpoint journal %s belongs to a different campaign:\n\
             \  journal: %s\n  requested: %s"
             t.path found t.campaign)
  | _ -> corrupt t.path "missing campaign line");
  let records = List.filteri (fun i _ -> i >= 2) lines in
  List.iteri
    (fun i line ->
      if line = "" then begin
        (* Only the final newline may leave an empty tail. *)
        if i <> List.length records - 1 then
          corrupt t.path (Printf.sprintf "blank line at record %d" i)
      end
      else
        match String.split_on_char ' ' line with
        | [ "cell"; sum; key; hex ] -> (
            if checksum ~key ~hex <> sum then
              corrupt t.path
                (Printf.sprintf "checksum mismatch on record for key %s" key);
            match of_hex hex with
            | None ->
                corrupt t.path
                  (Printf.sprintf "undecodable payload for key %s" key)
            | Some payload ->
                if Hashtbl.mem t.tbl key then
                  corrupt t.path (Printf.sprintf "duplicate key %s" key);
                Hashtbl.add t.tbl key payload;
                t.order <- key :: t.order)
        | _ ->
            corrupt t.path
              (Printf.sprintf "malformed record line %d: %S" i line))
    records

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (* A concurrent creator is fine — only a still-missing dir is an error. *)
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let start ~dir ~campaign =
  if String.contains campaign '\n' then
    invalid_arg "Journal.start: campaign string must be a single line";
  if not (Sys.file_exists dir) then mkdir_p dir
  else if not (Sys.is_directory dir) then
    failwith (Printf.sprintf "campaign directory %s is not a directory" dir);
  let path = Filename.concat dir "journal" in
  let t =
    {
      dir;
      path;
      campaign;
      tbl = Hashtbl.create 64;
      order = [];
      lock = Mutex.create ();
    }
  in
  if Sys.file_exists path then parse_existing t (read_file path)
  else flush_locked t;
  t

let dir t = t.dir
let completed t = Hashtbl.length t.tbl

let find t key =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.tbl key in
  Mutex.unlock t.lock;
  r

let record t ~key ~payload =
  validate_key key;
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not (Hashtbl.mem t.tbl key) then begin
        Hashtbl.add t.tbl key payload;
        t.order <- key :: t.order;
        flush_locked t
      end)
