(** Append-only campaign checkpoint journal (see docs/ROBUSTNESS.md).

    Records the completed cells of one campaign as (key, payload) pairs
    so an interrupted run can be resumed: journaled cells are skipped and
    their recorded payloads substituted, making the resumed run's output
    byte-identical to an uninterrupted one.

    Every write rewrites the file and atomically renames it into place —
    a kill at any point leaves a valid journal.  The header pins a format
    version and the campaign identity; corrupted, truncated, or
    mismatched-campaign journals are rejected with [Failure] rather than
    silently merged. *)

type t

val start : dir:string -> campaign:string -> t
(** Open (or create) [dir]/journal for the campaign identified by
    [campaign] (a single line naming everything that must match for
    records to be reusable: seed, count, engine, figure set...).

    @raise Failure if an existing journal is corrupt, truncated, or
    belongs to a different campaign.
    @raise Invalid_argument if [campaign] contains a newline. *)

val dir : t -> string
val file : t -> string
val completed : t -> int
(** Number of recorded cells. *)

val find : t -> string -> string option
(** The recorded payload for a key, if that cell already completed.
    Thread-safe. *)

val record : t -> key:string -> payload:string -> unit
(** Durably record a completed cell (idempotent per key).  Thread-safe —
    pool workers record their own completions.

    @raise Invalid_argument if [key] is empty or contains spaces or
    newlines. *)
