(* Fixed-size domain pool for embarrassingly-parallel simulation jobs.

   The evaluation grid (machine x benchmark x variant), the fuzz campaigns
   and the bench harness all run many independent simulations; this pool
   fans them out over OCaml 5 domains while keeping every observable
   deterministic:

   - {e ordered collection}: results come back indexed by submission
     order, never by completion order, so callers can print byte-identical
     output to a serial run;
   - {e exception capture}: a job that raises yields [Error exn] in its
     own slot instead of tearing down the pool; {!map} re-raises the
     first failure {e by submission index}, matching what a serial loop
     would have raised first;
   - {e no shared state}: jobs must be self-contained closures (build
     their own workloads, memories and interpreters).  Nothing in the
     repository's simulators touches global mutable state, which is what
     makes this safe.

   Scheduling is a single atomic next-index counter: domains race to claim
   the next unclaimed job, so long jobs never convoy behind short ones.
   With [jobs = 1] (or a single-element list) everything runs inline on
   the calling domain — the serial path is exactly the parallel path. *)

let default_jobs () = Domain.recommended_domain_count ()

let run ?jobs thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let workers = min jobs n in
  if workers <= 1 then
    Array.to_list
      (Array.map (fun f -> try Ok (f ()) with e -> Error e) thunks)
  else begin
    (* Each slot is written by exactly one domain and read only after the
       joins, so the plain array is data-race-free. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let k = Atomic.fetch_and_add next 1 in
      if k < n then begin
        results.(k) <- Some (try Ok (thunks.(k) ()) with e -> Error e);
        worker ()
      end
    in
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let map_result ?jobs f xs = run ?jobs (List.map (fun x () -> f x) xs)

(* [map] keeps the serial contract (raise what a serial [List.map] would
   have raised first, i.e. the lowest-indexed failure) but no longer
   drops the other failures silently: they are logged to stderr before
   the first one is re-raised, so a multi-failure campaign leaves a
   trace of every broken job. *)
let map ?jobs f xs =
  let results = map_result ?jobs f xs in
  let first = ref None in
  List.iteri
    (fun i -> function
      | Ok _ -> ()
      | Error e -> (
          match !first with
          | None -> first := Some e
          | Some _ ->
              Printf.eprintf "Pool.map: job %d also failed: %s\n%!" i
                (Printexc.to_string e)))
    results;
  match !first with
  | Some e -> raise e
  | None ->
      List.map (function Ok v -> v | Error _ -> assert false) results
