(** Fixed-size domain pool with deterministic, submission-ordered result
    collection (the substrate of every [-j]/[--jobs] flag in the repo).

    Jobs must be self-contained: they may not share mutable state with
    each other or with the submitting domain.  All simulator state in this
    repository is per-instance, so "build the workload inside the job" is
    the only discipline required. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default for every [-j]
    flag. *)

val run : ?jobs:int -> (unit -> 'a) list -> ('a, exn) result list
(** [run ~jobs thunks] executes the thunks on at most [jobs] domains
    (default {!default_jobs}; [jobs <= 1] runs inline on the calling
    domain) and returns one result per thunk {e in submission order},
    regardless of completion order.  A raising job yields [Error exn] in
    its own slot; the other jobs still run. *)

val map_result : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map_result ~jobs f xs] fans [f] over the pool and returns every
    element's outcome in input order — no failure is ever dropped.  The
    building block for supervised execution ({!Supervisor}). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] = [List.map f xs] fanned out over the pool, with
    results in input order.  If any application raised, re-raises the
    exception of the {e lowest-indexed} failing element — the same
    exception a serial [List.map] would have thrown first — after
    logging every {e other} failure to stderr (use {!map_result} to
    handle them programmatically). *)
