module Machine = Spf_sim.Machine
module Attrib = Spf_sim.Attrib
module Tuner = Spf_sim.Tuner
module Workload = Spf_workloads.Workload
module Config = Spf_core.Config
module Distance = Spf_core.Distance
module Pass = Spf_core.Pass
module Profdata = Spf_core.Profdata

(* Profile-guided and adaptive distance selection, end to end:

   - [profile] measures a benchmark — a per-loop attribution run of the
     plain program plus a look-ahead sweep of the transformed one — and
     returns a signed {!Profdata.t} ready to save;
   - [build_auto] applies the pass under any provider and, for the
     adaptive one, constructs the windowed tuner bound to the distance
     registers the pass materialised;
   - [evaluate] compares static vs profile vs adaptive on a benchmark
     list for one machine (the BENCH.json "distance_providers" piece and
     the acceptance gate for this subsystem).

   The candidate order below doubles as the tie-break preference: the
   sweep picks the candidate with the fewest simulated cycles and resolves
   ties toward the front of the list — whose head is the paper's c = 64 —
   so a profile-guided run can never lose to eq. 1 on the workload it was
   measured on, and is strictly better wherever any candidate wins. *)

let candidates = [ 64; 32; 128; 16; 256 ]

(* Eq. 1's constant term from the cost model, used to seed the adaptive
   tuner: the look-ahead must cover the latency of a line fill, counted
   in iterations of the loop that consumes it —

     c0 = dram latency / steady-state iteration time.

   The iteration time estimate has two terms: the core's issue cost for
   the loop body (instructions / width, scaled by inst_cost), and the
   DRAM channel occupancy one fresh line per iteration pays once
   prefetching works — indirect kernels are bandwidth-bound in steady
   state, which is why a fixed default overshoots on low-bandwidth
   in-order parts (A53's occupancy-14 channel wants c~16 on RA, not 64:
   distances past that just evict lines before use).  The result goes
   through {!Spf_core.Schedule.distance}, the same clamp every emitted
   schedule passes through, so a degenerate model can never produce a
   non-positive or overflowing seed. *)
let eq1_seed ~(machine : Machine.t) (func : Spf_ir.Ir.func) ~header =
  let cfg = Spf_ir.Cfg.build func in
  let dom = Spf_ir.Dom.build cfg in
  let loops = Spf_ir.Loops.analyze func cfg dom in
  let body_insts =
    match
      Array.to_list (Spf_ir.Loops.loops loops)
      |> List.find_opt (fun (l : Spf_ir.Loops.loop) -> l.header = header)
    with
    | None -> 0
    | Some l ->
        let n = ref 0 in
        Array.iteri
          (fun bid inside ->
            if inside then
              Array.iter
                (fun id ->
                  match (Spf_ir.Ir.instr func id).Spf_ir.Ir.kind with
                  | Spf_ir.Ir.Phi _ -> ()
                  | _ -> incr n)
                (Spf_ir.Ir.block func bid).Spf_ir.Ir.instrs)
          l.member;
        !n
  in
  let issue =
    (body_insts * machine.Machine.inst_cost + machine.Machine.width - 1)
    / machine.Machine.width
  in
  let iter_cycles = max 1 (issue + machine.Machine.dram.Machine.occupancy) in
  Spf_core.Schedule.distance
    ~c:(machine.Machine.dram.Machine.latency / iter_cycles)
    ~t:1 ~l:0

(* Build the adaptive tuner for a transformed function from the pass
   report: one register per prefetched loop, windowed per the provider's
   parameters.  [None] for non-adaptive reports (no registers).  With
   [machine], each register starts at the eq. 1 cost-model seed for its
   loop instead of the provider's fixed default — the controller then
   fine-tunes from a model-informed point rather than hill-climbing away
   from c = 64 on machines it does not suit. *)
let tuner_of_distances ?machine (func : Spf_ir.Ir.func) ~adaptive
    loop_distances =
  match adaptive with
  | None -> None
  | Some p ->
      let seeded ld =
        match machine with
        | Some m ->
            let s = eq1_seed ~machine:m func ~header:ld.Pass.header in
            (* The model fixes the scale; the controller fine-tunes within
               a 4x band around it.  Unbanded, a bandwidth-bound loop whose
               miss share never improves with distance climbs to max_c and
               evicts its own prefetches (RA on A53: 0.97x vs 2.1x). *)
            (s, Some (max 1 (s / 4), s * 4))
        | None -> (ld.Pass.distance, None)
      in
      let regs =
        List.filter_map
          (fun (ld : Pass.loop_distance) ->
            match ld.Pass.dist_slot with
            | Some slot ->
                let init, band = seeded ld in
                Some (Tuner.spec ?band ~slot ~header:ld.Pass.header ~init ())
            | None -> None)
          loop_distances
      in
      if regs = [] then None
      else
        let attrib = Attrib.create func in
        Some
          (Tuner.create ~attrib ~window:p.Distance.window
             ~min_c:p.Distance.min_c ~max_c:p.Distance.max_c regs)

let tuner_of_report ?machine (func : Spf_ir.Ir.func) (report : Pass.report) =
  tuner_of_distances ?machine func ~adaptive:report.Pass.adaptive
    report.Pass.loop_distances

(* Apply the pass to a fresh plain build under [config]; returns the built
   workload, the report, and the tuner when the provider is adaptive. *)
let build_auto ?(config = Config.default) ?machine (bench : Benches.bench) =
  let b = bench.Benches.plain () in
  let b, report = Benches.auto_with_report ~config b in
  (b, report, tuner_of_report ?machine b.Workload.func report)

let run_auto ?(ctx = Runner.null_ctx) ?(config = Config.default) ~machine
    (bench : Benches.bench) =
  let b, _report, tuner = build_auto ~config ~machine bench in
  Runner.run_ctx ctx ?tuner ~machine b

(* One sweep point: cycles of the pass-transformed benchmark at a fixed
   global look-ahead constant. *)
let measure ?(ctx = Runner.null_ctx) ~machine (bench : Benches.bench) ~c =
  let config = Config.with_c c Config.default in
  let b = Benches.auto ~config (bench.Benches.plain ()) in
  Runner.cycles (Runner.run_ctx ctx ~machine b)

(* Sweep the candidates and pick the winner; ties resolve toward the
   front of [cs] (c = 64 first by default). *)
let choose ?(ctx = Runner.null_ctx) ?(cs = candidates) ~machine bench =
  let sweep = List.map (fun c -> (c, measure ~ctx ~machine bench ~c)) cs in
  let best_c, _ =
    List.fold_left
      (fun (bc, bcy) (c, cy) -> if cy < bcy then (c, cy) else (bc, bcy))
      (match sweep with
      | first :: _ -> first
      | [] -> invalid_arg "Profile_guided.choose: empty candidate list")
      sweep
  in
  (best_c, sweep)

(* Measure a benchmark into a signed profile: attribution run of the plain
   program for the per-loop evidence, candidate sweep for the distance. *)
let profile ?(ctx = Runner.null_ctx) ?(cs = candidates) ~machine
    (bench : Benches.bench) =
  let plain = bench.Benches.plain () in
  let attrib = Attrib.create plain.Workload.func in
  ignore (Runner.run_ctx ctx ~attrib ~machine plain);
  let best_c, sweep = choose ~ctx ~cs ~machine bench in
  (* The prefetched loops, from a throwaway pass application at the chosen
     distance (the pass mutates in place, so use yet another fresh build). *)
  let _, report =
    Benches.auto_with_report
      ~config:(Config.with_c best_c Config.default)
      (bench.Benches.plain ())
  in
  let loops =
    List.filter_map
      (fun (ld : Pass.loop_distance) ->
        if not ld.Pass.enabled then None
        else
          let slot = Attrib.slot_of_header attrib ld.Pass.header in
          Some
            {
              Profdata.header = ld.Pass.header;
              c = best_c;
              enabled = true;
              accesses = (if slot >= 0 then attrib.Attrib.demand.(slot) else 0);
              misses = (if slot >= 0 then attrib.Attrib.miss.(slot) else 0);
            })
      report.Pass.loop_distances
  in
  let pd =
    Profdata.make ~func:plain.Workload.func ~machine:machine.Machine.name
      ~default_c:Config.default.Config.c ~loops
  in
  (pd, sweep)

(* ------------------------------------------------------------------ *)
(* Provider comparison: the acceptance gate and BENCH.json piece.       *)

type row = {
  bench : string;
  plain_cycles : int;
  static_cycles : int; (* eq. 1, c = 64 *)
  profile_cycles : int; (* best candidate from the sweep *)
  profile_c : int;
  sweep : (int * int) list; (* candidate -> cycles *)
  adaptive_cycles : int;
  adaptive_windows : int;
  adaptive_final : (int * int) list; (* loop header -> final distance *)
}

type eval = {
  machine : string;
  rows : row list;
  geo_static : float; (* geomean speedup over plain *)
  geo_profile : float;
  geo_adaptive : float;
}

let evaluate ?(ctx = Runner.null_ctx) ?(cs = candidates) ~machine benches =
  let rows =
    List.map
      (fun (bench : Benches.bench) ->
        let plain_cycles =
          Runner.cycles (Runner.run_ctx ctx ~machine (bench.Benches.plain ()))
        in
        let profile_c, sweep = choose ~ctx ~cs ~machine bench in
        let static_cycles =
          match List.assoc_opt Config.default.Config.c sweep with
          | Some cy -> cy
          | None -> measure ~ctx ~machine bench ~c:Config.default.Config.c
        in
        let profile_cycles = List.assoc profile_c sweep in
        let b, _report, tuner =
          build_auto
            ~config:
              (Config.with_provider
                 (Distance.Adaptive Distance.default_adaptive) Config.default)
            ~machine bench
        in
        let adaptive_cycles =
          Runner.cycles (Runner.run_ctx ctx ?tuner ~machine b)
        in
        let adaptive_windows =
          match tuner with Some tu -> Tuner.windows tu | None -> 0
        in
        let adaptive_final =
          match tuner with Some tu -> Tuner.final tu | None -> []
        in
        {
          bench = bench.Benches.id;
          plain_cycles;
          static_cycles;
          profile_cycles;
          profile_c;
          sweep;
          adaptive_cycles;
          adaptive_windows;
          adaptive_final;
        })
      benches
  in
  let geo proj =
    Benches.geomean
      (List.map
         (fun r -> float_of_int r.plain_cycles /. float_of_int (proj r))
         rows)
  in
  {
    machine = machine.Machine.name;
    rows;
    geo_static = geo (fun r -> r.static_cycles);
    geo_profile = geo (fun r -> r.profile_cycles);
    geo_adaptive = geo (fun r -> r.adaptive_cycles);
  }
