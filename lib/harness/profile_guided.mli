(** Profile-guided and adaptive look-ahead selection: measure a benchmark
    into a signed {!Spf_core.Profdata.t}, apply the pass under any
    {!Spf_core.Distance.provider} (constructing the adaptive tuner when
    needed), and compare providers for the BENCH.json gate. *)

val candidates : int list
(** The look-ahead sweep, in tie-break preference order — head is the
    paper's c = 64, so a profile can never lose to eq. 1 on the workload
    it was measured on. *)

val eq1_seed :
  machine:Spf_sim.Machine.t -> Spf_ir.Ir.func -> header:int -> int
(** Eq. 1 cost-model starting distance for the loop at [header]:
    DRAM fill latency over the steady-state iteration time (issue cost of
    the non-phi loop body plus per-line channel occupancy), clamped
    through {!Spf_core.Schedule.distance}. *)

val tuner_of_distances :
  ?machine:Spf_sim.Machine.t ->
  Spf_ir.Ir.func ->
  adaptive:Spf_core.Distance.adaptive_params option ->
  Spf_core.Pass.loop_distance list ->
  Spf_sim.Tuner.t option
(** {!tuner_of_report} from its parts — what the serving cache stores
    (the pass entry keeps the provider decisions, not the whole
    report). *)

val tuner_of_report :
  ?machine:Spf_sim.Machine.t ->
  Spf_ir.Ir.func ->
  Spf_core.Pass.report ->
  Spf_sim.Tuner.t option
(** Build the windowed tuner bound to the distance registers an adaptive
    pass application materialised; [None] for non-adaptive reports.  With
    [machine], registers start from {!eq1_seed} rather than the
    provider's fixed default, so the controller fine-tunes a
    model-informed distance instead of hill-climbing away from c = 64. *)

val build_auto :
  ?config:Spf_core.Config.t ->
  ?machine:Spf_sim.Machine.t ->
  Benches.bench ->
  Spf_workloads.Workload.built * Spf_core.Pass.report * Spf_sim.Tuner.t option
(** Fresh plain build, pass applied under [config], tuner when adaptive
    (seeded from the cost model when [machine] is given). *)

val run_auto :
  ?ctx:Runner.ctx ->
  ?config:Spf_core.Config.t ->
  machine:Spf_sim.Machine.t ->
  Benches.bench ->
  Runner.result
(** {!build_auto} then run (with the tuner attached when adaptive). *)

val measure :
  ?ctx:Runner.ctx ->
  machine:Spf_sim.Machine.t ->
  Benches.bench ->
  c:int ->
  int
(** Simulated cycles of the pass-transformed benchmark at global
    look-ahead [c]. *)

val choose :
  ?ctx:Runner.ctx ->
  ?cs:int list ->
  machine:Spf_sim.Machine.t ->
  Benches.bench ->
  int * (int * int) list
(** Sweep the candidates; return the winner (ties toward the front of
    [cs]) and the full [(c, cycles)] sweep. *)

val profile :
  ?ctx:Runner.ctx ->
  ?cs:int list ->
  machine:Spf_sim.Machine.t ->
  Benches.bench ->
  Spf_core.Profdata.t * (int * int) list
(** Measure: attribution run of the plain program (per-loop evidence) plus
    the candidate sweep.  Returns the signed profile and the sweep. *)

type row = {
  bench : string;
  plain_cycles : int;
  static_cycles : int;  (** eq. 1, c = 64 *)
  profile_cycles : int;
  profile_c : int;
  sweep : (int * int) list;
  adaptive_cycles : int;
  adaptive_windows : int;
  adaptive_final : (int * int) list;  (** loop header -> final distance *)
}

type eval = {
  machine : string;
  rows : row list;
  geo_static : float;  (** geomean speedup over plain *)
  geo_profile : float;
  geo_adaptive : float;
}

val evaluate :
  ?ctx:Runner.ctx ->
  ?cs:int list ->
  machine:Spf_sim.Machine.t ->
  Benches.bench list ->
  eval
(** Static vs profile vs adaptive on [benches] for one machine. *)
