(** Profile-guided and adaptive look-ahead selection: measure a benchmark
    into a signed {!Spf_core.Profdata.t}, apply the pass under any
    {!Spf_core.Distance.provider} (constructing the adaptive tuner when
    needed), and compare providers for the BENCH.json gate. *)

val candidates : int list
(** The look-ahead sweep, in tie-break preference order — head is the
    paper's c = 64, so a profile can never lose to eq. 1 on the workload
    it was measured on. *)

val tuner_of_report :
  Spf_ir.Ir.func -> Spf_core.Pass.report -> Spf_sim.Tuner.t option
(** Build the windowed tuner bound to the distance registers an adaptive
    pass application materialised; [None] for non-adaptive reports. *)

val build_auto :
  ?config:Spf_core.Config.t ->
  Benches.bench ->
  Spf_workloads.Workload.built * Spf_core.Pass.report * Spf_sim.Tuner.t option
(** Fresh plain build, pass applied under [config], tuner when adaptive. *)

val run_auto :
  ?ctx:Runner.ctx ->
  ?config:Spf_core.Config.t ->
  machine:Spf_sim.Machine.t ->
  Benches.bench ->
  Runner.result
(** {!build_auto} then run (with the tuner attached when adaptive). *)

val measure :
  ?ctx:Runner.ctx ->
  machine:Spf_sim.Machine.t ->
  Benches.bench ->
  c:int ->
  int
(** Simulated cycles of the pass-transformed benchmark at global
    look-ahead [c]. *)

val choose :
  ?ctx:Runner.ctx ->
  ?cs:int list ->
  machine:Spf_sim.Machine.t ->
  Benches.bench ->
  int * (int * int) list
(** Sweep the candidates; return the winner (ties toward the front of
    [cs]) and the full [(c, cycles)] sweep. *)

val profile :
  ?ctx:Runner.ctx ->
  ?cs:int list ->
  machine:Spf_sim.Machine.t ->
  Benches.bench ->
  Spf_core.Profdata.t * (int * int) list
(** Measure: attribution run of the plain program (per-loop evidence) plus
    the candidate sweep.  Returns the signed profile and the sweep. *)

type row = {
  bench : string;
  plain_cycles : int;
  static_cycles : int;  (** eq. 1, c = 64 *)
  profile_cycles : int;
  profile_c : int;
  sweep : (int * int) list;
  adaptive_cycles : int;
  adaptive_windows : int;
  adaptive_final : (int * int) list;  (** loop header -> final distance *)
}

type eval = {
  machine : string;
  rows : row list;
  geo_static : float;  (** geomean speedup over plain *)
  geo_profile : float;
  geo_adaptive : float;
}

val evaluate :
  ?ctx:Runner.ctx ->
  ?cs:int list ->
  machine:Spf_sim.Machine.t ->
  Benches.bench list ->
  eval
(** Static vs profile vs adaptive on [benches] for one machine. *)
