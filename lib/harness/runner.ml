module Interp = Spf_sim.Interp
module Machine = Spf_sim.Machine
module Stats = Spf_sim.Stats
module Workload = Spf_workloads.Workload

(* Run one built workload instance on one machine, verifying the IR and
   validating the result checksum — every number the harness reports comes
   from a semantically-checked execution. *)

type result = { stats : Stats.t; machine : string; bench : string }

(* Per-job execution context: everything a supervisor may want to vary
   or revoke under a running job.  [engine = None] means the engine
   default; [cancel] is the cooperative cancellation token a watchdog
   fires on deadline. *)
type ctx = {
  engine : Spf_sim.Engine.t option;
  cancel : Spf_sim.Exec_state.cancel option;
}

let null_ctx = { engine = None; cancel = None }
let ctx_of_engine engine = { engine; cancel = None }

let run ?fuel ?engine ?cancel ?attrib ?tuner ~(machine : Machine.t)
    (b : Workload.built) : result =
  (match Spf_ir.Verifier.check b.func with
  | [] -> ()
  | vs ->
      let msg =
        String.concat "; "
          (List.map (Format.asprintf "%a" Spf_ir.Verifier.pp_violation) vs)
      in
      failwith (Printf.sprintf "%s: verifier: %s" b.name msg));
  let interp =
    Interp.create ~machine ?engine ?cancel ?attrib ?tuner ~mem:b.mem
      ~args:b.args b.func
  in
  Interp.run ?fuel interp;
  Workload.validate b ~retval:(Interp.retval interp);
  { stats = Interp.stats interp; machine = machine.name; bench = b.name }

let run_ctx (c : ctx) ?fuel ?attrib ?tuner ~machine b =
  run ?fuel ?engine:c.engine ?cancel:c.cancel ?attrib ?tuner ~machine b

let cycles r = r.stats.Stats.cycles

let speedup ~baseline r =
  float_of_int (cycles baseline) /. float_of_int (cycles r)

let extra_instructions ~baseline r =
  let b = baseline.stats.Stats.instructions in
  100.0 *. float_of_int (r.stats.Stats.instructions - b) /. float_of_int b
