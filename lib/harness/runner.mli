(** Run one built workload instance on one machine model.  Every run
    verifies the IR first and validates the result checksum afterwards, so
    every number the harness reports comes from a semantically-checked
    execution. *)

type result = {
  stats : Spf_sim.Stats.t;
  machine : string;
  bench : string;
}

type ctx = {
  engine : Spf_sim.Engine.t option;
  cancel : Spf_sim.Exec_state.cancel option;
}
(** Per-job execution context, threaded through every supervised figure
    cell: the engine override a supervisor may degrade, and the
    cancellation token its watchdog fires on deadline. *)

val null_ctx : ctx
val ctx_of_engine : Spf_sim.Engine.t option -> ctx

val run :
  ?fuel:int ->
  ?engine:Spf_sim.Engine.t ->
  ?cancel:Spf_sim.Exec_state.cancel ->
  ?attrib:Spf_sim.Attrib.t ->
  ?tuner:Spf_sim.Tuner.t ->
  machine:Spf_sim.Machine.t ->
  Spf_workloads.Workload.built ->
  result
(** @raise Failure on verifier violations or checksum mismatch.
    [engine] selects the simulator engine (default {!Spf_sim.Engine.default}).
    [attrib] buckets memory behaviour per source loop (profiling);
    [tuner] drives the adaptive distance registers.
    @raise Spf_sim.Exec_state.Cancelled once [cancel] fires. *)

val run_ctx :
  ctx ->
  ?fuel:int ->
  ?attrib:Spf_sim.Attrib.t ->
  ?tuner:Spf_sim.Tuner.t ->
  machine:Spf_sim.Machine.t ->
  Spf_workloads.Workload.built ->
  result
(** {!run} with the engine/cancel pair of a job context. *)

val cycles : result -> int
val speedup : baseline:result -> result -> float
val extra_instructions : baseline:result -> result -> float
(** Percentage increase in dynamic instructions (Fig 8's metric). *)
