(** Run one built workload instance on one machine model.  Every run
    verifies the IR first and validates the result checksum afterwards, so
    every number the harness reports comes from a semantically-checked
    execution. *)

type result = {
  stats : Spf_sim.Stats.t;
  machine : string;
  bench : string;
}

val run :
  ?fuel:int ->
  ?engine:Spf_sim.Engine.t ->
  machine:Spf_sim.Machine.t ->
  Spf_workloads.Workload.built ->
  result
(** @raise Failure on verifier violations or checksum mismatch.
    [engine] selects the simulator engine (default {!Spf_sim.Engine.default}). *)

val cycles : result -> int
val speedup : baseline:result -> result -> float
val extra_instructions : baseline:result -> result -> float
(** Percentage increase in dynamic instructions (Fig 8's metric). *)
