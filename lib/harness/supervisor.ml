module Engine = Spf_sim.Engine
module S = Spf_sim.Exec_state
module Stats = Spf_sim.Stats

(* Supervised campaign execution on top of {!Pool}.

   The paper's evaluation is a matrix of long-running simulations; at
   campaign scale a single hung job, OOM-killed domain or mid-run crash
   must not cost the whole run.  This module wraps a list of keyed jobs
   with the full supervision pipeline:

     deadline -> retry -> engine fallback -> crash bundle

   - {e deadlines}: a watchdog domain scans the in-flight jobs' start
     times and fires each job's cooperative cancellation token
     ({!Spf_sim.Exec_state.cancel}) once its wall-clock budget is spent;
     the simulation observes the token at block granularity and raises
     [Cancelled] with its stats-so-far.
   - {e retry}: failures are classified ({!classify}) into transient ones
     (retried under exponential backoff, bounded by [policy.retries]),
     timeouts (also retried — a deadline overrun can be scheduling
     noise), and deterministic ones (failed immediately: re-running a
     deterministic simulation reproduces the same failure).
   - {e engine fallback}: a job whose engine decode raises
     ({!Spf_sim.Tape.Decode_error} or {!Spf_sim.Compile.Decode_error})
     is re-run one step down the {!Spf_sim.Engine.fallback} chain
     (tape -> compiled -> interp) — the engines are bit-identical, so
     the campaign's numbers are unaffected; each degradation is reported
     as a note, not a failure, and does not consume a retry.
   - {e checkpointing}: with a {!Journal}, each completed job's encoded
     result is durably recorded by the worker the moment it completes,
     and already-journaled jobs are skipped entirely on resume — the
     decoded payload stands in for the run, byte-identical.
   - {e crash bundles}: a permanently-failed job is captured as a
     self-contained {!Bundle} (metadata, printed IR, reproduction
     payload from the job's [binfo] callback, stats-so-far for
     timeouts), replayable via [spf replay].

   All supervision chatter goes through the caller (notes and failures in
   the returned list) or stderr — never stdout — so a supervised
   campaign's stdout stays byte-identical to a raw run. *)

(* --- failure classification -------------------------------------------- *)

type classification = Transient | Deterministic | Decode_failure | Timeout

let classification_to_string = function
  | Transient -> "transient"
  | Deterministic -> "deterministic"
  | Decode_failure -> "decode-failure"
  | Timeout -> "timeout"

exception Transient_failure of string
(* Marker for failures known to be environmental (and for fault-injection
   tests): always classified Transient. *)

(* The retry-classifier over the repo's exception taxonomy.  Everything
   the simulator or the pass raises deliberately (traps, fuel, verifier
   and checksum failures, diagnostics) is a property of the (job, seed,
   config) triple and will recur on retry: Deterministic.  Resource
   exhaustion and OS-level errors are properties of the moment:
   Transient. *)
let classify = function
  | S.Cancelled _ -> Timeout
  | Spf_sim.Compile.Decode_error _ | Spf_sim.Tape.Decode_error _ ->
      Decode_failure
  | Transient_failure _ | Out_of_memory | Stack_overflow -> Transient
  | Unix.Unix_error _ | Sys_error _ -> Transient
  | S.Trap _ | S.Fuel_exhausted | Failure _ -> Deterministic
  | _ -> Deterministic

(* --- policy ------------------------------------------------------------- *)

type policy = {
  deadline_s : float option; (* per-attempt wall-clock budget *)
  retries : int; (* max re-runs after the first attempt *)
  backoff_base_s : float; (* sleep before retry k: base * 2^k, capped *)
  backoff_max_s : float;
  engine_fallback : bool; (* decode failure -> next engine down the chain *)
}

let default_policy =
  {
    deadline_s = None;
    retries = 1;
    backoff_base_s = 0.25;
    backoff_max_s = 5.0;
    engine_fallback = true;
  }

let backoff_s policy attempt =
  (* attempt is 0-based: the sleep before re-running attempt [attempt+1]. *)
  min policy.backoff_max_s (policy.backoff_base_s *. (2.0 ** float_of_int attempt))

type options = {
  policy : policy;
  jobs : int option;
  engine : Engine.t option;
  journal : Journal.t option;
  bundle_root : string option;
  sleep : float -> unit;
  watch_interval_s : float option;
}

let options ?(policy = default_policy) ?jobs ?engine ?journal ?bundle_root
    ?(sleep = Unix.sleepf) ?watch_interval_s () =
  { policy; jobs; engine; journal; bundle_root; sleep; watch_interval_s }

(* Watchdog scan period.  Scanning costs a wakeup (and, on small
   machines, a domain switch stolen from the workers), so it scales with
   the deadline: a 1s deadline is enforced to ~10ms, an hour-long one to
   ~0.5s — both far finer than anyone sets deadlines, and the overhead
   stays unmeasurable either way. *)
let watch_interval opts =
  match (opts.watch_interval_s, opts.policy.deadline_s) with
  | Some w, _ -> w
  | None, Some d -> Float.min 0.5 (Float.max 0.01 (d /. 100.0))
  | None, None -> 0.05

let bundle_root opts = opts.bundle_root
let journal opts = opts.journal

(* --- jobs and outcomes -------------------------------------------------- *)

type bundle_info = {
  b_meta : (string * string) list;
  b_ir : string option;
  b_payload : string option;
}

type 'a job = {
  key : string;
  work : Runner.ctx -> 'a;
  binfo : (exn -> bundle_info) option;
}

type note =
  | Retried of { attempt : int; slept_s : float; error : string }
  | Fell_back of { from_engine : Engine.t; to_engine : Engine.t; error : string }

let note_to_string = function
  | Retried { attempt; slept_s; error } ->
      Printf.sprintf "attempt %d failed (%s); retried after %.2fs backoff"
        attempt error slept_s
  | Fell_back { from_engine; to_engine; error } ->
      Printf.sprintf "engine %s failed to decode (%s); fell back to %s"
        (Engine.to_string from_engine)
        error
        (Engine.to_string to_engine)

type 'a outcome = { value : 'a; notes : note list; resumed : bool }

type failure = {
  f_key : string;
  f_exn : exn;
  f_class : classification;
  f_attempts : int;
  f_notes : note list;
  f_bundle : string option;
}

let pp_failure fmt (f : failure) =
  Format.fprintf fmt "job %s failed (%s, %d attempt%s): %s" f.f_key
    (classification_to_string f.f_class)
    f.f_attempts
    (if f.f_attempts = 1 then "" else "s")
    (Printexc.to_string f.f_exn);
  List.iter
    (fun n -> Format.fprintf fmt "@.  %s" (note_to_string n))
    (List.rev f.f_notes);
  match f.f_bundle with
  | Some dir -> Format.fprintf fmt "@.  crash bundle: %s" dir
  | None -> ()

(* --- the supervised run ------------------------------------------------- *)

(* One in-flight attempt visible to the watchdog: the absolute deadline
   and the token to fire when it passes. *)
type flight = { until : float; token : S.cancel }

let run_jobs opts ~encode ~decode jobs =
  let jobs_arr = Array.of_list jobs in
  let n = Array.length jobs_arr in
  let flights = Array.init n (fun _ -> Atomic.make (None : flight option)) in
  let stop = Atomic.make false in
  let interval = watch_interval opts in
  (* The watchdog is a systhread, not a domain: an extra domain makes
     every stop-the-world minor collection synchronise with it, which
     costs ~25% wall on a single-CPU box, while a thread parked in
     [select] is invisible to the GC.  It parks on a pipe rather than in
     [sleepf] so the finally-block below can wake it immediately —
     joining costs microseconds instead of the remainder of a scan
     period. *)
  let watchdog rd () =
    while not (Atomic.get stop) do
      let now = Unix.gettimeofday () in
      Array.iter
        (fun slot ->
          match Atomic.get slot with
          | Some f when now > f.until -> S.cancel f.token
          | _ -> ())
        flights;
      ignore (Unix.select [ rd ] [] [] interval)
    done
  in
  let write_bundle (job : 'a job) exn ~cls ~attempts ~notes =
    match opts.bundle_root with
    | None -> None
    | Some root -> (
        let info =
          match job.binfo with
          | Some f -> ( try f exn with _ -> { b_meta = []; b_ir = None; b_payload = None })
          | None -> { b_meta = []; b_ir = None; b_payload = None }
        in
        let stats =
          match exn with
          | S.Cancelled st -> Some (Format.asprintf "%a" Stats.pp st)
          | _ -> None
        in
        let meta =
          [
            ("key", job.key);
            ("error", Printexc.to_string exn);
            ("class", classification_to_string cls);
            ("attempts", string_of_int attempts);
            ( "engine",
              match opts.engine with
              | Some e -> Engine.to_string e
              | None -> "default" );
          ]
          @ List.map (fun n -> ("note", note_to_string n)) (List.rev notes)
          @ info.b_meta
        in
        try
          Some
            (Bundle.write ~root ~name:job.key ~meta ?ir:info.b_ir ?stats
               ?payload:info.b_payload ())
        with e ->
          Printf.eprintf "supervisor: could not write crash bundle for %s: %s\n%!"
            job.key (Printexc.to_string e);
          None)
  in
  (* The whole supervised attempt loop for job [i], run on a pool worker. *)
  let attempt_jobs i =
    let job = jobs_arr.(i) in
    match Option.bind opts.journal (fun j -> Journal.find j job.key) with
    | Some payload -> (
        match decode payload with
        | Some v -> Ok { value = v; notes = []; resumed = true }
        | None ->
            failwith
              (Printf.sprintf
                 "checkpointed payload for %s does not decode (journal from \
                  an incompatible build?)"
                 job.key))
    | None ->
        let notes = ref [] in
        let engine = ref opts.engine in
        let rec go attempt =
          let token = S.new_cancel () in
          (match opts.policy.deadline_s with
          | Some d ->
              Atomic.set flights.(i)
                (Some { until = Unix.gettimeofday () +. d; token })
          | None -> ());
          let ctx = { Runner.engine = !engine; cancel = Some token } in
          match job.work ctx with
          | v ->
              Atomic.set flights.(i) None;
              Option.iter
                (fun j -> Journal.record j ~key:job.key ~payload:(encode v))
                opts.journal;
              Ok { value = v; notes = List.rev !notes; resumed = false }
          | exception exn -> (
              Atomic.set flights.(i) None;
              let cls = classify exn in
              let fail () =
                let attempts = attempt + 1 in
                Error
                  {
                    f_key = job.key;
                    f_exn = exn;
                    f_class = cls;
                    f_attempts = attempts;
                    f_notes = !notes;
                    f_bundle =
                      write_bundle job exn ~cls ~attempts ~notes:!notes;
                  }
              in
              let cur = Option.value !engine ~default:Engine.default in
              match (cls, Engine.fallback cur) with
              | Decode_failure, Some next when opts.policy.engine_fallback ->
                  (* Degradation, not a retry: every engine down the
                     chain is bit-identical, so the campaign's numbers
                     are safe. *)
                  notes :=
                    Fell_back
                      {
                        from_engine = cur;
                        to_engine = next;
                        error = Printexc.to_string exn;
                      }
                    :: !notes;
                  engine := Some next;
                  go attempt
              | (Transient | Timeout), _ when attempt < opts.policy.retries ->
                  let slept = backoff_s opts.policy attempt in
                  opts.sleep slept;
                  notes :=
                    Retried
                      {
                        attempt = attempt + 1;
                        slept_s = slept;
                        error = Printexc.to_string exn;
                      }
                    :: !notes;
                  go (attempt + 1)
              | _ -> fail ())
        in
        go 0
  in
  let need_watchdog =
    opts.policy.deadline_s <> None
    && Array.exists
         (fun (job : 'a job) ->
           match opts.journal with
           | Some j -> Journal.find j job.key = None
           | None -> true)
         jobs_arr
  in
  let wd =
    if need_watchdog then begin
      let rd, wr = Unix.pipe ~cloexec:true () in
      Some (Thread.create (watchdog rd) (), rd, wr)
    end
    else None
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Option.iter
        (fun (thr, rd, wr) ->
          (try ignore (Unix.write wr (Bytes.of_string "x") 0 1)
           with Unix.Unix_error _ -> ());
          Thread.join thr;
          Unix.close rd;
          Unix.close wr)
        wd)
    (fun () ->
      Pool.map ?jobs:opts.jobs attempt_jobs (List.init n Fun.id))

(* Pretty-print the supervision epilogue (notes + failures) to stderr and
   split the outcomes; the common tail of every supervised campaign. *)
let report_stderr results =
  let ok = ref [] and failed = ref [] in
  List.iter
    (fun r ->
      match r with
      | Ok (o : 'a outcome) ->
          List.iter
            (fun note ->
              Format.eprintf "supervisor: %s@." (note_to_string note))
            o.notes;
          ok := o :: !ok
      | Error f ->
          Format.eprintf "supervisor: %a@." pp_failure f;
          failed := f :: !failed)
    results;
  (List.rev !ok, List.rev !failed)
