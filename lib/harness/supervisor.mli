(** Supervised campaign execution on top of {!Pool}: per-job wall-clock
    deadlines (watchdog domain + cooperative cancellation), bounded retry
    with exponential backoff, graceful engine degradation, durable
    checkpointing through {!Journal}, and {!Bundle} capture of permanent
    failures.  See docs/ROBUSTNESS.md for the model. *)

(** {1 Failure classification} *)

type classification =
  | Transient  (** environmental (OOM, OS error); worth retrying *)
  | Deterministic  (** a property of the job itself; retrying is futile *)
  | Decode_failure
      (** an engine's decode raised; fall back down the
          {!Spf_sim.Engine.fallback} chain *)
  | Timeout  (** the watchdog fired the job's deadline *)

val classification_to_string : classification -> string

exception Transient_failure of string
(** Marker for failures known to be environmental; always classified
    {!Transient}.  Also the fault-injection hook used by tests. *)

val classify : exn -> classification

(** {1 Policy and options} *)

type policy = {
  deadline_s : float option;  (** per-attempt wall-clock budget *)
  retries : int;  (** max re-runs after the first attempt *)
  backoff_base_s : float;  (** sleep before retry [k] is [base * 2^k]... *)
  backoff_max_s : float;  (** ...capped at this *)
  engine_fallback : bool;
      (** decode failure -> next engine down the chain, not a failure *)
}

val default_policy : policy
(** No deadline, one retry, 0.25s..5s backoff, fallback enabled. *)

val backoff_s : policy -> int -> float
(** [backoff_s p attempt] is the bounded sleep after failed 0-based
    [attempt]. *)

type options

val options :
  ?policy:policy ->
  ?jobs:int ->
  ?engine:Spf_sim.Engine.t ->
  ?journal:Journal.t ->
  ?bundle_root:string ->
  ?sleep:(float -> unit) ->
  ?watch_interval_s:float ->
  unit ->
  options
(** [jobs]/[engine] as in the unsupervised harness entry points;
    [journal] enables checkpoint/resume; [bundle_root] enables crash
    bundles.  [sleep] is injectable so tests can observe backoff without
    waiting for it.  [watch_interval_s] overrides the watchdog scan
    period (default: deadline/100 clamped to 10ms..0.5s, so enforcement
    granularity tracks the deadline and overhead stays unmeasurable). *)

val bundle_root : options -> string option
(** Campaigns that detect non-exceptional failures (e.g. fuzz
    divergences, which are results, not crashes) write their own bundles
    under the same root. *)

val journal : options -> Journal.t option

(** {1 Jobs and outcomes} *)

type bundle_info = {
  b_meta : (string * string) list;
  b_ir : string option;
  b_payload : string option;
}
(** Campaign-specific reproduction material for a crash bundle. *)

type 'a job = {
  key : string;  (** stable identity, e.g. ["fig4/7"] or ["case/12"] *)
  work : Runner.ctx -> 'a;  (** must honour the ctx's engine and token *)
  binfo : (exn -> bundle_info) option;
}

type note =
  | Retried of { attempt : int; slept_s : float; error : string }
  | Fell_back of {
      from_engine : Spf_sim.Engine.t;
      to_engine : Spf_sim.Engine.t;
      error : string;
    }

val note_to_string : note -> string

type 'a outcome = {
  value : 'a;
  notes : note list;  (** oldest first *)
  resumed : bool;  (** [true]: substituted from the journal, not re-run *)
}

type failure = {
  f_key : string;
  f_exn : exn;
  f_class : classification;
  f_attempts : int;
  f_notes : note list;
  f_bundle : string option;  (** crash-bundle directory, if captured *)
}

val pp_failure : Format.formatter -> failure -> unit

val run_jobs :
  options ->
  encode:('a -> string) ->
  decode:(string -> 'a option) ->
  'a job list ->
  ('a outcome, failure) result list
(** Run every job under the supervision pipeline
    (deadline -> retry -> fallback -> bundle), in submission order.
    [encode]/[decode] serialize results for the journal; they must
    round-trip exactly for resumed output to be byte-identical.

    @raise Failure if a journaled payload no longer decodes. *)

val report_stderr :
  ('a outcome, failure) result list -> 'a outcome list * failure list
(** Print every note and failure to stderr (never stdout — supervised
    campaign stdout stays byte-identical) and split the results. *)
