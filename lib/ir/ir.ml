(* SSA intermediate representation.

   The IR deliberately mirrors the subset of LLVM IR that the CGO'17
   prefetching pass operates on: typed loads/stores, address computation via
   [Gep], phi nodes, allocations, calls with a purity flag, and an explicit
   [Prefetch] instruction.  Instructions are identified by dense integer ids;
   a function owns a growable instruction table plus an array of basic
   blocks, each holding an ordered array of instruction ids and a
   terminator. *)

type ty = I8 | I16 | I32 | I64 | F64

let size_of_ty = function
  | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 | F64 -> 8

let string_of_ty = function
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F64 -> "f64"

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Smin | Smax
  | Fadd | Fsub | Fmul | Fdiv

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | Smin -> "smin" | Smax -> "smax"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

type cmp = Eq | Ne | Slt | Sle | Sgt | Sge

let string_of_cmp = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt"
  | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"

type operand =
  | Var of int
  | Imm of int
  | Fimm of float

type call_info = { callee : string; args : operand list; pure : bool }

type kind =
  | Binop of binop * operand * operand
  | Cmp of cmp * operand * operand
  | Select of operand * operand * operand
  | Load of ty * operand
  | Store of ty * operand * operand
  | Gep of { base : operand; index : operand; scale : int }
  | Phi of (int * operand) list
  | Call of call_info
  | Prefetch of operand
  | Alloc of operand
  | Param of int

type instr = {
  id : int;
  mutable kind : kind;
  mutable block : int;
  mutable name : string;
}

type terminator =
  | Br of int
  | Cbr of operand * int * int
  | Ret of operand option
  | Unreachable

type block = {
  bid : int;
  mutable instrs : int array;
  mutable term : terminator;
  mutable bname : string;
}

type func = {
  fname : string;
  mutable blocks : block array;
  mutable itab : instr option array;
  mutable n_instrs : int;
  mutable entry : int;
  mutable param_ids : int array;
}

(* ------------------------------------------------------------------ *)
(* Operand and instruction helpers                                     *)
(* ------------------------------------------------------------------ *)

let srcs (k : kind) : operand list =
  match k with
  | Binop (_, a, b) | Cmp (_, a, b) | Store (_, a, b) -> [ a; b ]
  | Select (c, a, b) -> [ c; a; b ]
  | Load (_, a) | Prefetch a | Alloc a -> [ a ]
  | Gep { base; index; _ } -> [ base; index ]
  | Phi incoming -> List.map snd incoming
  | Call { args; _ } -> args
  | Param _ -> []

let map_srcs (f : operand -> operand) (k : kind) : kind =
  match k with
  | Binop (op, a, b) -> Binop (op, f a, f b)
  | Cmp (op, a, b) -> Cmp (op, f a, f b)
  | Select (c, a, b) -> Select (f c, f a, f b)
  | Load (ty, a) -> Load (ty, f a)
  | Store (ty, a, v) -> Store (ty, f a, f v)
  | Gep { base; index; scale } -> Gep { base = f base; index = f index; scale }
  | Phi incoming -> Phi (List.map (fun (b, v) -> (b, f v)) incoming)
  | Call c -> Call { c with args = List.map f c.args }
  | Prefetch a -> Prefetch (f a)
  | Alloc a -> Alloc (f a)
  | Param i -> Param i

(* [Store] and [Prefetch] produce no value; everything else defines one. *)
let defines_value = function
  | Store _ | Prefetch _ -> false
  | Binop _ | Cmp _ | Select _ | Load _ | Gep _ | Phi _ | Call _ | Alloc _
  | Param _ -> true

let has_side_effect = function
  | Store _ | Prefetch _ | Alloc _ -> true
  | Call { pure; _ } -> not pure
  | Binop _ | Cmp _ | Select _ | Load _ | Gep _ | Phi _ | Param _ -> false

(* ------------------------------------------------------------------ *)
(* Function construction / mutation                                    *)
(* ------------------------------------------------------------------ *)

let create_func ~name =
  {
    fname = name;
    blocks = [||];
    itab = Array.make 64 None;
    n_instrs = 0;
    entry = 0;
    param_ids = [||];
  }

let instr f id =
  match f.itab.(id) with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Ir.instr: no instruction %d" id)

let block f bid = f.blocks.(bid)
let n_blocks f = Array.length f.blocks
let n_instrs f = f.n_instrs

let fresh_instr f ~name ~block kind =
  let id = f.n_instrs in
  if id >= Array.length f.itab then begin
    let bigger = Array.make (2 * Array.length f.itab) None in
    Array.blit f.itab 0 bigger 0 (Array.length f.itab);
    f.itab <- bigger
  end;
  let i = { id; kind; block; name } in
  f.itab.(id) <- Some i;
  f.n_instrs <- id + 1;
  i

let add_block f ~name term =
  let bid = Array.length f.blocks in
  let b = { bid; instrs = [||]; term; bname = name } in
  f.blocks <- Array.append f.blocks [| b |];
  b

let append_instr f ~bid ~name kind =
  let i = fresh_instr f ~name ~block:bid kind in
  let b = f.blocks.(bid) in
  b.instrs <- Array.append b.instrs [| i.id |];
  i

let iter_instrs f g =
  for id = 0 to f.n_instrs - 1 do
    match f.itab.(id) with Some i -> g i | None -> ()
  done

let iter_blocks f g = Array.iter g f.blocks

(* Splice [ids] into the block containing [anchor], immediately before it.
   All ids must already exist in the instruction table with their [block]
   field set to the anchor's block. *)
let insert_before f ~anchor ids =
  if ids <> [] then begin
    let a = instr f anchor in
    let b = f.blocks.(a.block) in
    let pos = ref (-1) in
    Array.iteri (fun k id -> if id = anchor && !pos < 0 then pos := k) b.instrs;
    if !pos < 0 then
      invalid_arg "Ir.insert_before: anchor not in its block";
    let ids = Array.of_list ids in
    let n = Array.length b.instrs and m = Array.length ids in
    let out = Array.make (n + m) 0 in
    Array.blit b.instrs 0 out 0 !pos;
    Array.blit ids 0 out !pos m;
    Array.blit b.instrs !pos out (!pos + m) (n - !pos);
    b.instrs <- out;
    Array.iter (fun id -> (instr f id).block <- b.bid) ids
  end

(* Splice [ids] at the head of block [bid] (after any phis). *)
let insert_at_head f ~bid ids =
  if ids <> [] then begin
    let b = f.blocks.(bid) in
    let is_phi id = match (instr f id).kind with Phi _ -> true | _ -> false in
    let nphi = ref 0 in
    let n = Array.length b.instrs in
    while !nphi < n && is_phi b.instrs.(!nphi) do incr nphi done;
    let ids = Array.of_list ids in
    let m = Array.length ids in
    let out = Array.make (n + m) 0 in
    Array.blit b.instrs 0 out 0 !nphi;
    Array.blit ids 0 out !nphi m;
    Array.blit b.instrs !nphi out (!nphi + m) (n - !nphi);
    b.instrs <- out;
    Array.iter (fun id -> (instr f id).block <- b.bid) ids
  end

(* Remove an instruction: delete it from its block's list and clear its
   table slot.  The caller must ensure nothing references it. *)
let remove_instr f id =
  let i = instr f id in
  let b = f.blocks.(i.block) in
  b.instrs <- Array.of_list (List.filter (( <> ) id) (Array.to_list b.instrs));
  f.itab.(id) <- None

(* Deep copy with identical ids: fresh instruction records and block
   arrays so mutations of the clone never reach the original. *)
let clone_func f =
  {
    fname = f.fname;
    blocks =
      Array.map
        (fun b ->
          { bid = b.bid; instrs = Array.copy b.instrs; term = b.term;
            bname = b.bname })
        f.blocks;
    itab =
      Array.map
        (function
          | Some i ->
              Some { id = i.id; kind = i.kind; block = i.block; name = i.name }
          | None -> None)
        f.itab;
    n_instrs = f.n_instrs;
    entry = f.entry;
    param_ids = Array.copy f.param_ids;
  }

(* Splice [ids] at the end of block [bid] (just before the terminator). *)
let insert_at_end f ~bid ids =
  if ids <> [] then begin
    let b = f.blocks.(bid) in
    b.instrs <- Array.append b.instrs (Array.of_list ids);
    List.iter (fun id -> (instr f id).block <- bid) ids
  end

(* ------------------------------------------------------------------ *)
(* Structural signature                                                *)
(* ------------------------------------------------------------------ *)

(* A stable, name-independent encoding of a function's structure: entry
   block, parameter ids, and every block's instruction ids, kinds (with
   operands rendered exactly — floats by their bit pattern) and
   terminator.  Two functions with equal signatures execute identically
   instruction-for-instruction, which is what lets the compiled engine
   cache decoded micro-op programs across rebuilds of the same workload
   (see Compile in lib/sim).  Printing hints ([name]/[bname]/[fname]) are
   deliberately excluded so cosmetic renames do not defeat the cache. *)

let signature f =
  let b = Buffer.create 1024 in
  let int n = Buffer.add_string b (string_of_int n); Buffer.add_char b ',' in
  let operand = function
    | Var v -> Buffer.add_char b 'v'; int v
    | Imm n -> Buffer.add_char b 'i'; int n
    | Fimm x ->
        Buffer.add_char b 'f';
        Buffer.add_string b (Int64.to_string (Int64.bits_of_float x));
        Buffer.add_char b ','
  in
  let ty t = Buffer.add_string b (string_of_ty t); Buffer.add_char b ',' in
  let kind = function
    | Binop (op, x, y) ->
        Buffer.add_char b 'B'; Buffer.add_string b (string_of_binop op);
        Buffer.add_char b ','; operand x; operand y
    | Cmp (p, x, y) ->
        Buffer.add_char b 'C'; Buffer.add_string b (string_of_cmp p);
        Buffer.add_char b ','; operand x; operand y
    | Select (c, x, y) -> Buffer.add_char b 'S'; operand c; operand x; operand y
    | Load (t, a) -> Buffer.add_char b 'L'; ty t; operand a
    | Store (t, a, v) -> Buffer.add_char b 'W'; ty t; operand a; operand v
    | Gep { base; index; scale } ->
        Buffer.add_char b 'G'; operand base; operand index; int scale
    | Phi incoming ->
        Buffer.add_char b 'P';
        List.iter (fun (blk, v) -> int blk; operand v) incoming
    | Call { callee; args; pure } ->
        Buffer.add_char b 'F';
        Buffer.add_string b callee;
        Buffer.add_char b (if pure then 'p' else 'e');
        List.iter operand args
    | Prefetch a -> Buffer.add_char b 'H'; operand a
    | Alloc a -> Buffer.add_char b 'A'; operand a
    | Param k -> Buffer.add_char b 'R'; int k
  in
  let term = function
    | Br s -> Buffer.add_char b 'b'; int s
    | Cbr (c, bt, bf) -> Buffer.add_char b 'c'; operand c; int bt; int bf
    | Ret None -> Buffer.add_char b 'r'
    | Ret (Some v) -> Buffer.add_char b 'R'; operand v
    | Unreachable -> Buffer.add_char b 'u'
  in
  int f.entry;
  Array.iter int f.param_ids;
  Buffer.add_char b '|';
  Array.iter
    (fun blk ->
      Buffer.add_char b '[';
      int blk.bid;
      Array.iter
        (fun id ->
          match f.itab.(id) with
          | Some i -> int i.id; kind i.kind
          | None -> ())
        blk.instrs;
      Buffer.add_char b ';';
      term blk.term;
      Buffer.add_char b ']')
    f.blocks;
  Buffer.contents b

let successors (t : terminator) : int list =
  match t with
  | Br b -> [ b ]
  | Cbr (_, b1, b2) -> if b1 = b2 then [ b1 ] else [ b1; b2 ]
  | Ret _ | Unreachable -> []

let term_srcs (t : terminator) : operand list =
  match t with
  | Br _ | Unreachable | Ret None -> []
  | Cbr (c, _, _) -> [ c ]
  | Ret (Some v) -> [ v ]
