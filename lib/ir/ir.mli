(** SSA intermediate representation.

    This IR mirrors the subset of LLVM IR the CGO'17 software-prefetching
    pass operates on: typed loads and stores, explicit address computation
    ([Gep]), phi nodes, allocations, calls carrying a purity flag, and a
    dedicated non-faulting [Prefetch] instruction.  Instructions carry dense
    integer ids; a function owns a growable instruction table plus basic
    blocks holding ordered instruction ids and a terminator. *)

(** Value types.  Integer loads zero-extend to the host integer; [F64]
    values are stored bit-cast inside the same 63-bit integer domain by the
    interpreter. *)
type ty = I8 | I16 | I32 | I64 | F64

val size_of_ty : ty -> int
(** Size of a value of this type in bytes. *)

val string_of_ty : ty -> string

(** Two-operand arithmetic/logical operators.  The [F*] variants operate on
    bit-cast doubles; [Smin]/[Smax] are the select-style clamps the pass
    emits for fault avoidance. *)
type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Smin | Smax
  | Fadd | Fsub | Fmul | Fdiv

val string_of_binop : binop -> string

(** Signed integer comparison predicates. *)
type cmp = Eq | Ne | Slt | Sle | Sgt | Sge

val string_of_cmp : cmp -> string

(** An operand is an SSA variable (instruction or parameter id) or an
    immediate. *)
type operand =
  | Var of int
  | Imm of int
  | Fimm of float

type call_info = {
  callee : string;  (** name resolved by the interpreter's intrinsic table *)
  args : operand list;
  pure : bool;  (** [true] iff side-effect free (pass-relevant, see §4.1) *)
}

(** Instruction payloads. *)
type kind =
  | Binop of binop * operand * operand
  | Cmp of cmp * operand * operand
  | Select of operand * operand * operand  (** [Select (c, a, b)] = c?a:b *)
  | Load of ty * operand  (** load from byte address *)
  | Store of ty * operand * operand  (** [Store (ty, addr, value)] *)
  | Gep of { base : operand; index : operand; scale : int }
      (** address = base + index * scale *)
  | Phi of (int * operand) list  (** (predecessor block id, value) pairs *)
  | Call of call_info
  | Prefetch of operand  (** non-binding, non-faulting cache hint *)
  | Alloc of operand  (** allocate [operand] bytes; yields base address *)
  | Param of int  (** function parameter [i]; lives in the entry block *)

type instr = {
  id : int;
  mutable kind : kind;
  mutable block : int;  (** id of the containing block *)
  mutable name : string;  (** printing hint only *)
}

type terminator =
  | Br of int
  | Cbr of operand * int * int  (** condition, then-target, else-target *)
  | Ret of operand option
  | Unreachable

type block = {
  bid : int;
  mutable instrs : int array;
  mutable term : terminator;
  mutable bname : string;
}

type func = {
  fname : string;
  mutable blocks : block array;  (** indexed by block id *)
  mutable itab : instr option array;  (** indexed by instruction id *)
  mutable n_instrs : int;
  mutable entry : int;
  mutable param_ids : int array;
}

(** {1 Operand and instruction helpers} *)

val srcs : kind -> operand list
(** Source operands of an instruction, in evaluation order. *)

val map_srcs : (operand -> operand) -> kind -> kind
(** Rewrite every source operand (phi block labels are preserved). *)

val defines_value : kind -> bool
(** [false] for [Store] and [Prefetch], [true] otherwise. *)

val has_side_effect : kind -> bool
(** Whether executing the instruction can be observed beyond its value. *)

(** {1 Function construction and mutation} *)

val create_func : name:string -> func

val instr : func -> int -> instr
(** Look up an instruction by id.  @raise Invalid_argument if absent. *)

val block : func -> int -> block
val n_blocks : func -> int
val n_instrs : func -> int

val fresh_instr : func -> name:string -> block:int -> kind -> instr
(** Allocate an instruction id {e without} placing it in any block's
    instruction list; used by the pass before [insert_before]. *)

val add_block : func -> name:string -> terminator -> block

val append_instr : func -> bid:int -> name:string -> kind -> instr
(** Allocate an instruction and append it to block [bid]. *)

val iter_instrs : func -> (instr -> unit) -> unit
val iter_blocks : func -> (block -> unit) -> unit

val insert_before : func -> anchor:int -> int list -> unit
(** Splice already-allocated instruction ids into the anchor's block,
    immediately before the anchor, preserving their given order. *)

val insert_at_head : func -> bid:int -> int list -> unit
(** Splice already-allocated instruction ids at the head of block [bid],
    after any leading phi group. *)

val remove_instr : func -> int -> unit
(** Delete an instruction from its block and clear its table slot.  The
    caller must ensure nothing references it (see {!Simplify.dce}). *)

val insert_at_end : func -> bid:int -> int list -> unit
(** Splice already-allocated instruction ids at the end of block [bid],
    just before the terminator. *)

val clone_func : func -> func
(** Deep copy: fresh instruction records and block arrays, same ids and
    structure.  Mutating the clone (e.g. running the pass on it) leaves
    the original untouched — the translation validator compares the two. *)

val signature : func -> string
(** Stable, name-independent structural encoding of the function: entry,
    parameters, and every block's instruction ids, kinds (floats by bit
    pattern) and terminator.  Functions with equal signatures execute
    identically, so the compiled engine uses this as its decode-cache key;
    printing hints are excluded so renames don't defeat caching. *)

val successors : terminator -> int list
(** Successor block ids (deduplicated when both branch arms coincide). *)

val term_srcs : terminator -> operand list
(** Value operands read by a terminator. *)
