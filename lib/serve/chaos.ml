(* `spf chaos`: a fault-injecting client fleet that proves the daemon's
   hostile-reality contract instead of assuming it.  Layered on the
   loadtest's deterministic program pool, it drives five phases:

     A  mixed traffic — honest workers interleaved with fault clients
        (mid-request disconnects, a slowloris partial-verb sender,
        garbage and NUL-bearing frames, oversized lines and payloads),
        gating on zero corrupted / torn / dropped honest replies and on
        every observable fault connection being answered or reaped;
     B  graceful drain — a burst of cold (uncached) work, SIGTERM fired
        mid-burst; every request that was in flight when the drain
        started must complete (full reply or classified busy), the
        daemon must exit 0;
     C  warm restart — the daemon comes back on the same journal;
        previously-seen programs must answer as cache hits with bodies
        byte-identical to the pre-restart replies;
     D  kill — SIGKILL mid-burst (no drain, journal tail may tear),
        restart; the journal must still load and the phase-A programs
        must still answer byte-identically;
     E  leak check — final STATS must show no lingering handler threads
        beyond the one serving the STATS request itself, and a clean
        SHUTDOWN must exit 0.

   The client-side definition of "unanswered" is {!Proto.read_reply}'s
   framing: a reply cut mid-body is torn (a contract violation outside
   a kill window); a clean EOF before any reply line only violates the
   contract when the daemon had no declared reason (not draining, not
   killed) to close. *)

type ctl = {
  start : unit -> unit;
  term : unit -> unit;
  kill : unit -> unit;
  wait_exit : unit -> int;  (* exit code; 128+signal when killed *)
}

type cfg = {
  seed : int;
  count : int;  (* honest requests in the mixed phase *)
  concurrency : int;
  fault_wait_s : float;  (* client patience for fault-reply reads *)
  connect : unit -> Client.t;
  raw_connect : unit -> Unix.file_descr;
  ctl : ctl;
  log : string -> unit;
}

type result = {
  honest : int;  (* full OK replies across recorded phases *)
  busy : int;  (* classified busy sheds (acceptable answers) *)
  corrupted : int;  (* bodies differing from first-seen for a program *)
  torn : int;  (* replies cut mid-body outside kill windows *)
  unanswered : int;  (* no reply at all, outside drain/kill windows *)
  faults : int;  (* fault injections performed *)
  unreaped : int;  (* verifiable fault conns left hanging *)
  drain_exit : int;  (* exit code of the SIGTERM drain *)
  warm_hits : int;  (* byte-identical post-restart cache hits *)
  warm_after_kill : bool;
  journal_replayed : int;  (* records replayed at the post-drain restart *)
  active_handlers : int;  (* from the final STATS (includes that conn) *)
  failures : string list;
  passed : bool;
}

exception Abort of string

type state = {
  m : Mutex.t;
  first_body : (string, string) Hashtbl.t;
  mutable s_honest : int;
  mutable s_busy : int;
  mutable s_corrupted : int;
  mutable s_torn : int;
  mutable s_unanswered : int;
  mutable s_faults : int;
  mutable s_unreaped : int;
  mutable s_warm_hits : int;
  mutable s_failures : string list;
}

let locked st f =
  Mutex.lock st.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.m) f

let fail st msg =
  locked st (fun () ->
      if not (List.mem msg st.s_failures) then
        st.s_failures <- msg :: st.s_failures)

let classify_error e =
  if String.equal e "connection closed mid-reply" then `Torn
  else if String.length e >= 9 && String.equal (String.sub e 0 9) "malformed"
  then `Corrupt
  else `Closed

(* One honest submit on a fresh connection.  [key] names the program
   for the byte-identity ledger. *)
let submit_once st cfg ~key ~id ~case_text =
  match cfg.connect () with
  | exception _ -> `NoConn
  | client ->
      let outcome =
        match Client.submit client ~id ~case_text () with
        | Ok r -> (
            match r.Proto.r_err with
            | Some ("busy", _) -> `Busy
            | Some (cls, msg) -> `Err (cls, msg)
            | None ->
                let body = String.concat "\n" r.Proto.r_body in
                locked st (fun () ->
                    match Hashtbl.find_opt st.first_body key with
                    | None ->
                        Hashtbl.add st.first_body key body;
                        `Reply (r.Proto.r_cache, body)
                    | Some first ->
                        if String.equal first body then
                          `Reply (r.Proto.r_cache, body)
                        else `Corrupt))
        | Error e -> (
            match classify_error e with
            | `Torn -> `Torn
            | `Corrupt -> `Corrupt
            | `Closed -> `NoConn)
      in
      Client.close client;
      outcome

let run_workers ~concurrency work =
  let threads = List.init concurrency (fun w -> Thread.create work w) in
  List.iter Thread.join threads

(* ------------------------------------------------------------------ *)
(* Fault clients.  Each uses a raw fd so it can violate the protocol
   freely; replies are read through the same bounded reader the server
   uses, so a daemon that hangs a fault connection fails the gate here
   instead of hanging the harness.                                     *)

let try_write fd s =
  try ignore (Unix.write_substring fd s 0 (String.length s))
  with Unix.Unix_error _ -> ()

let try_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Read until an ERR line or EOF, within [wait_s]. *)
let expect_err_or_eof fd ~wait_s =
  let rd = Ioline.create ~idle_s:wait_s fd in
  let rec loop () =
    match Ioline.read_line rd with
    | Ioline.Eof -> true
    | Ioline.Timeout | Ioline.Overflow -> false
    | Ioline.Line l ->
        if String.length l >= 3 && String.equal (String.sub l 0 3) "ERR" then
          true
        else loop ()
  in
  loop ()

let fault_mid_request_disconnect st cfg ~case_text =
  locked st (fun () -> st.s_faults <- st.s_faults + 1);
  match cfg.raw_connect () with
  | exception _ -> ()
  | fd ->
      let half = String.sub case_text 0 (String.length case_text / 2) in
      try_write fd ("SUBMIT chaos-drop\n" ^ half);
      try_close fd

let fault_slowloris st cfg =
  locked st (fun () -> st.s_faults <- st.s_faults + 1);
  match cfg.raw_connect () with
  | exception _ -> ()
  | fd ->
      (* A verb that never finishes: the daemon's idle deadline must
         reap it with a classified timeout (or a close), not wait
         forever. *)
      try_write fd "STAT";
      if not (expect_err_or_eof fd ~wait_s:cfg.fault_wait_s) then begin
        locked st (fun () -> st.s_unreaped <- st.s_unreaped + 1);
        fail st "slowloris connection was not reaped"
      end;
      try_close fd

let fault_garbage st cfg frame =
  locked st (fun () -> st.s_faults <- st.s_faults + 1);
  match cfg.raw_connect () with
  | exception _ -> ()
  | fd ->
      try_write fd frame;
      if not (expect_err_or_eof fd ~wait_s:cfg.fault_wait_s) then begin
        locked st (fun () -> st.s_unreaped <- st.s_unreaped + 1);
        fail st "garbage frame got no classified reply"
      end;
      try_close fd

let fault_oversized_line st cfg =
  (* One line far past the server's max-request-bytes (the chaos CLI
     spawns the daemon with a small budget). *)
  fault_garbage st cfg ("SUBMIT big " ^ String.make 200_000 'x' ^ "\n")

let fault_oversized_payload st cfg =
  locked st (fun () -> st.s_faults <- st.s_faults + 1);
  match cfg.raw_connect () with
  | exception _ -> ()
  | fd ->
      try_write fd "SUBMIT big2\n";
      (let chunk = String.make 4096 'y' ^ "\n" in
       for _ = 1 to 64 do
         try_write fd chunk
       done);
      try_write fd ".\n";
      if not (expect_err_or_eof fd ~wait_s:cfg.fault_wait_s) then begin
        locked st (fun () -> st.s_unreaped <- st.s_unreaped + 1);
        fail st "oversized payload got no classified reply"
      end;
      try_close fd

(* ------------------------------------------------------------------ *)
(* Phases.                                                             *)

let wait_ready cfg ~what =
  let rec loop tries =
    if tries = 0 then raise (Abort (what ^ ": daemon did not come up"))
    else
      match cfg.connect () with
      | exception _ ->
          Thread.delay 0.1;
          loop (tries - 1)
      | client ->
          let ok = Client.ping client in
          Client.close client;
          if not ok then begin
            Thread.delay 0.1;
            loop (tries - 1)
          end
  in
  loop 100

let daemon_stats cfg =
  match cfg.connect () with
  | exception _ -> []
  | client ->
      let r = match Client.stats client with Ok kv -> kv | Error _ -> [] in
      Client.close client;
      r

let stat kv name = Option.value (List.assoc_opt name kv) ~default:0

let phase_mixed st cfg pool =
  cfg.log "phase A: mixed honest + fault traffic";
  let next = Atomic.make 0 in
  let injector () =
    let faults =
      [
        (fun () -> fault_mid_request_disconnect st cfg ~case_text:pool.(0));
        (fun () -> fault_garbage st cfg "XYZZY plugh\n");
        (fun () -> fault_garbage st cfg "\x00\x01\xfe garbage\n");
        (fun () -> fault_oversized_line st cfg);
        (fun () -> fault_oversized_payload st cfg);
        (fun () -> fault_mid_request_disconnect st cfg ~case_text:pool.(0));
        (fun () -> fault_garbage st cfg "SUBMIT\n");
        (fun () -> fault_slowloris st cfg);
      ]
    in
    List.iter
      (fun f ->
        f ();
        Thread.delay 0.01)
      faults
  in
  let inj = Thread.create injector () in
  run_workers ~concurrency:cfg.concurrency (fun w ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < cfg.count then begin
          let prog = i mod Array.length pool in
          let key = "a:" ^ string_of_int prog in
          (match
             submit_once st cfg ~key
               ~id:(Printf.sprintf "a%d-%d" w i)
               ~case_text:pool.(prog)
           with
          | `Reply _ -> locked st (fun () -> st.s_honest <- st.s_honest + 1)
          | `Busy -> locked st (fun () -> st.s_busy <- st.s_busy + 1)
          | `Err (cls, msg) ->
              fail st
                (Printf.sprintf "unexpected ERR on honest traffic: %s %s" cls
                   msg)
          | `Corrupt ->
              locked st (fun () -> st.s_corrupted <- st.s_corrupted + 1);
              fail st "corrupted reply on honest traffic"
          | `Torn ->
              locked st (fun () -> st.s_torn <- st.s_torn + 1);
              fail st "torn reply on honest traffic"
          | `NoConn ->
              locked st (fun () -> st.s_unanswered <- st.s_unanswered + 1);
              fail st "dropped honest request outside any drain/kill window");
          loop ()
        end
      in
      loop ());
  Thread.join inj

let phase_drain st cfg pool =
  cfg.log "phase B: SIGTERM mid-burst, gating on answered in-flight work";
  let next = Atomic.make 0 in
  let count = Array.length pool in
  let term_time = ref infinity in
  let burst =
    Thread.create
      (fun () ->
        run_workers ~concurrency:cfg.concurrency (fun w ->
            let rec loop () =
              let i = Atomic.fetch_and_add next 1 in
              if i < count then begin
                let key = "b:" ^ string_of_int i in
                let t0 = Unix.gettimeofday () in
                (match
                   submit_once st cfg ~key
                     ~id:(Printf.sprintf "b%d-%d" w i)
                     ~case_text:pool.(i)
                 with
                | `Reply _ ->
                    locked st (fun () -> st.s_honest <- st.s_honest + 1)
                | `Busy -> locked st (fun () -> st.s_busy <- st.s_busy + 1)
                | `Err (cls, msg) ->
                    fail st
                      (Printf.sprintf "unexpected ERR during drain: %s %s" cls
                         msg)
                | `Corrupt ->
                    locked st (fun () -> st.s_corrupted <- st.s_corrupted + 1);
                    fail st "corrupted reply during drain"
                | `Torn ->
                    (* The hard gate: a drain must never cut a reply
                       mid-body. *)
                    locked st (fun () -> st.s_torn <- st.s_torn + 1);
                    fail st "reply cut mid-body during drain"
                | `NoConn ->
                    (* Fine after the drain started (the daemon shuts
                       idle conns and refuses new ones); a violation
                       before it. *)
                    if t0 < !term_time then begin
                      locked st (fun () ->
                          st.s_unanswered <- st.s_unanswered + 1);
                      fail st "request dropped before the drain started"
                    end);
                loop ()
              end
            in
            loop ()))
      ()
  in
  Thread.delay 0.3;
  term_time := Unix.gettimeofday ();
  cfg.ctl.term ();
  Thread.join burst;
  let code = cfg.ctl.wait_exit () in
  if code <> 0 then
    fail st (Printf.sprintf "drain exited with code %d, want 0" code);
  code

let phase_warm st cfg pool ~what =
  cfg.ctl.start ();
  wait_ready cfg ~what;
  let kv = daemon_stats cfg in
  let replayed = stat kv "journal_replayed_pass" + stat kv "journal_replayed_sim" in
  if replayed = 0 then fail st (what ^ ": restart replayed nothing from the journal");
  let n = min 5 (Array.length pool) in
  for prog = 0 to n - 1 do
    let key = "a:" ^ string_of_int prog in
    let expected = locked st (fun () -> Hashtbl.find_opt st.first_body key) in
    match expected with
    | None -> ()
    | Some first -> (
        match
          submit_once st cfg ~key
            ~id:(Printf.sprintf "warm-%d" prog)
            ~case_text:pool.(prog)
        with
        | `Reply (cache, body) ->
            if not (String.equal body first) then begin
              locked st (fun () -> st.s_corrupted <- st.s_corrupted + 1);
              fail st (what ^ ": warm reply not byte-identical")
            end
            else if not (String.equal cache "sim-hit") then
              fail st
                (Printf.sprintf "%s: expected a warm sim-hit, got cache=%s"
                   what cache)
            else locked st (fun () -> st.s_warm_hits <- st.s_warm_hits + 1)
        | `Corrupt ->
            locked st (fun () -> st.s_corrupted <- st.s_corrupted + 1);
            fail st (what ^ ": warm reply not byte-identical")
        | `Busy | `Err _ | `Torn | `NoConn ->
            fail st (what ^ ": warm submit did not get a full reply"))
  done;
  replayed

let phase_kill st cfg pool =
  cfg.log "phase D: SIGKILL mid-burst, then restart on the same journal";
  let next = Atomic.make 0 in
  let count = Array.length pool in
  (* Kill-window traffic: outcomes are deliberately not gated — a
     SIGKILL may tear anything client-visible; the contract under test
     is what the *journal* lets the restarted daemon do. *)
  let burst =
    Thread.create
      (fun () ->
        run_workers ~concurrency:cfg.concurrency (fun w ->
            let rec loop () =
              let i = Atomic.fetch_and_add next 1 in
              if i < count then begin
                (match cfg.connect () with
                | exception _ -> ()
                | client ->
                    ignore
                      (Client.submit client
                         ~id:(Printf.sprintf "d%d-%d" w i)
                         ~case_text:pool.(i) ());
                    Client.close client);
                loop ()
              end
            in
            loop ()))
      ()
  in
  Thread.delay 0.2;
  cfg.ctl.kill ();
  ignore (cfg.ctl.wait_exit ());
  Thread.join burst

let phase_final st cfg =
  cfg.log "phase E: leak check + clean shutdown";
  (* Give just-closed handlers a moment to finish their accounting. *)
  let rec poll tries =
    let kv = daemon_stats cfg in
    let handlers = stat kv "active_handlers" in
    if handlers <= 1 || tries = 0 then (kv, handlers)
    else begin
      Thread.delay 0.1;
      poll (tries - 1)
    end
  in
  let kv, handlers = poll 20 in
  if handlers > 1 then
    fail st
      (Printf.sprintf "handler leak: %d still active at quiescence" handlers);
  if stat kv "draining" <> 0 then fail st "daemon reports draining at rest";
  (match cfg.connect () with
  | exception _ -> fail st "could not connect for final shutdown"
  | client ->
      let bye = Client.shutdown client in
      Client.close client;
      if not bye then fail st "final SHUTDOWN got no BYE");
  let code = cfg.ctl.wait_exit () in
  if code <> 0 then
    fail st (Printf.sprintf "final shutdown exited with code %d, want 0" code);
  handlers

let run cfg =
  let st =
    {
      m = Mutex.create ();
      first_body = Hashtbl.create 64;
      s_honest = 0;
      s_busy = 0;
      s_corrupted = 0;
      s_torn = 0;
      s_unanswered = 0;
      s_faults = 0;
      s_unreaped = 0;
      s_warm_hits = 0;
      s_failures = [];
    }
  in
  let distinct = max 2 (cfg.count / 4) in
  let pool_a = Loadtest.build_pool ~seed:cfg.seed ~distinct in
  let pool_b =
    Loadtest.build_pool ~seed:(cfg.seed + 1000)
      ~distinct:(max 6 (cfg.count / 3))
  in
  let pool_d =
    Loadtest.build_pool ~seed:(cfg.seed + 2000)
      ~distinct:(max 4 (cfg.count / 4))
  in
  let drain_exit = ref 0 in
  let journal_replayed = ref 0 in
  let warm_after_kill = ref false in
  let handlers = ref 0 in
  (try
     cfg.ctl.start ();
     wait_ready cfg ~what:"initial start";
     phase_mixed st cfg pool_a;
     drain_exit := phase_drain st cfg pool_b;
     cfg.log "phase C: warm restart, byte-identity against pre-drain replies";
     journal_replayed := phase_warm st cfg pool_a ~what:"post-drain restart";
     phase_kill st cfg pool_d;
     cfg.log "      ... restarting after SIGKILL";
     let before = locked st (fun () -> List.length st.s_failures) in
     ignore (phase_warm st cfg pool_a ~what:"post-kill restart");
     warm_after_kill :=
       locked st (fun () -> List.length st.s_failures) = before;
     handlers := phase_final st cfg
   with Abort msg -> fail st msg);
  let failures = List.rev st.s_failures in
  {
    honest = st.s_honest;
    busy = st.s_busy;
    corrupted = st.s_corrupted;
    torn = st.s_torn;
    unanswered = st.s_unanswered;
    faults = st.s_faults;
    unreaped = st.s_unreaped;
    drain_exit = !drain_exit;
    warm_hits = st.s_warm_hits;
    warm_after_kill = !warm_after_kill;
    journal_replayed = !journal_replayed;
    active_handlers = !handlers;
    failures;
    passed = failures = [];
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>chaos: %s@,\
     honest=%d busy=%d corrupted=%d torn=%d unanswered=%d@,\
     faults=%d unreaped=%d drain_exit=%d@,\
     warm_hits=%d warm_after_kill=%b journal_replayed=%d active_handlers=%d"
    (if r.passed then "PASS" else "FAIL")
    r.honest r.busy r.corrupted r.torn r.unanswered r.faults r.unreaped
    r.drain_exit r.warm_hits r.warm_after_kill r.journal_replayed
    r.active_handlers;
  List.iter (fun f -> Format.fprintf fmt "@,FAIL: %s" f) r.failures;
  Format.fprintf fmt "@]"
