(** [spf chaos]: a fault-injecting client fleet that proves the serve
    daemon's hostile-reality contract — mixed honest + fault traffic,
    SIGTERM drain, journal warm restart, SIGKILL crash recovery, and a
    final handler-leak check.  Gates on zero corrupted replies, zero
    unanswered in-flight requests on drain, and byte-identical
    post-restart warm hits.  See docs/ROBUSTNESS.md. *)

type ctl = {
  start : unit -> unit;  (** (re)start the daemon on the same address + journal *)
  term : unit -> unit;  (** SIGTERM (graceful drain) *)
  kill : unit -> unit;  (** SIGKILL (no drain; journal tail may tear) *)
  wait_exit : unit -> int;  (** reap; exit code, [128+n] when signalled *)
}

type cfg = {
  seed : int;
  count : int;  (** honest requests in the mixed phase *)
  concurrency : int;
  fault_wait_s : float;
      (** client patience for fault replies; must exceed the daemon's
          idle timeout so slowloris reaping is observable *)
  connect : unit -> Client.t;  (** may raise while the daemon is down *)
  raw_connect : unit -> Unix.file_descr;  (** for protocol-violating clients *)
  ctl : ctl;
  log : string -> unit;  (** phase narration *)
}

type result = {
  honest : int;
  busy : int;  (** classified busy sheds (acceptable answers) *)
  corrupted : int;
  torn : int;
  unanswered : int;
  faults : int;
  unreaped : int;
  drain_exit : int;
  warm_hits : int;
  warm_after_kill : bool;
  journal_replayed : int;
  active_handlers : int;
  failures : string list;  (** empty iff [passed] *)
  passed : bool;
}

val run : cfg -> result
(** Owns the daemon lifecycle end to end: starts it via [ctl.start],
    drains, kills and restarts it, and leaves it stopped. *)

val pp : Format.formatter -> result -> unit
