(* The result-cache journal behind `spf serve --cache-journal DIR`: an
   append-only record of every cache insertion, replayed on startup so a
   restarted daemon answers previously-seen work warm instead of
   re-simulating it.

   Durability discipline (the same idioms as the campaign checkpoint
   journal in lib/harness/journal.ml, adapted for append-heavy use):

   - the header names the format version and an *identity* digest over
     everything that could silently change a cached reply body — the
     canonical renders of every machine model, the engine list, the
     default pass config and the body-format version.  A journal written
     by a build with different semantics is refused loudly, never
     half-loaded;
   - every record line carries an MD5 of its tag+key+payload.  A
     checksum mismatch, undecodable payload or malformed line anywhere
     but the torn tail rejects the journal (that is corruption: replaying
     it could serve corrupted replies);
   - appends are single [output_string]+[flush] writes of one complete
     line, so a crash (SIGKILL included) can only tear the *final* line,
     and only by cutting its trailing newline off.  A file whose last
     line is unterminated therefore lost at most that one record: the
     tail is dropped, counted, and the journal immediately compacted so
     the file is whole again;
   - compaction rewrites the whole journal to [.tmp] and atomically
     renames it over the live file — a kill at any point leaves either
     the old journal or the new one, never a torn file.

   Payloads are hex-encoded so the file stays line-oriented regardless
   of payload bytes (reply bodies and IR text contain newlines).

   NOT thread-safe: the owning {!Rcache} serializes all calls under its
   own lock. *)

let format_header = "spf-cache-journal 1"

(* Bump when the rendered reply-body format changes in a way the cache
   keys cannot see (they digest inputs, not the rendering). *)
let body_format_version = 1

type record =
  | Pass of string * string  (* key, encoded pass entry *)
  | Sim of string * string  (* key, rendered reply body *)

type t = {
  dir : string;
  path : string;
  mutable oc : out_channel;
  mutable appends : int;  (* record lines since the last compaction *)
  mutable compactions : int;
  replayed_pass : int;
  replayed_sim : int;
  truncated : bool;  (* a torn tail record was dropped at open *)
  replayed : record list;  (* oldest first *)
}

let dir t = t.dir
let path t = t.path
let appends t = t.appends
let compactions t = t.compactions
let replayed_pass t = t.replayed_pass
let replayed_sim t = t.replayed_sim
let truncated t = t.truncated
let replayed t = t.replayed

let identity () =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "body-format %d\n" body_format_version);
  List.iter
    (fun m ->
      Buffer.add_string b (Spf_sim.Machine.canonical m);
      Buffer.add_char b '\n')
    Spf_sim.Machine.all;
  List.iter
    (fun e ->
      Buffer.add_string b (Spf_sim.Engine.to_string e);
      Buffer.add_char b '\n')
    Spf_sim.Engine.all;
  Buffer.add_string b (Spf_core.Config.canonical Spf_core.Config.default);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter
    (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c)))
    s;
  Buffer.contents b

let of_hex s =
  if String.length s mod 2 <> 0 then None
  else
    try
      Some
        (String.init (String.length s / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> None

let tag_of = function Pass _ -> "P" | Sim _ -> "S"
let key_of = function Pass (k, _) | Sim (k, _) -> k
let payload_of = function Pass (_, p) | Sim (_, p) -> p

let checksum ~tag ~key ~hex =
  Digest.to_hex (Digest.string (tag ^ " " ^ key ^ " " ^ hex))

let record_line r =
  let tag = tag_of r and key = key_of r in
  let hex = to_hex (payload_of r) in
  Printf.sprintf "%s %s %s %s\n" tag (checksum ~tag ~key ~hex) key hex

let corrupt path msg =
  failwith
    (Printf.sprintf
       "cache journal %s is not usable: %s (delete it to start the cache \
        cold)"
       path msg)

let validate_key key =
  if key = "" || String.exists (fun c -> c = ' ' || c = '\n' || c = '\r') key
  then invalid_arg ("Cjournal: bad record key " ^ String.escaped key)

(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Parse an existing journal image.  Returns the replayed records
   (oldest first) and whether a torn tail was dropped.  @raise Failure
   on header/identity mismatch or any corruption before the tail. *)
let parse path contents =
  let ends_clean =
    String.length contents = 0
    || contents.[String.length contents - 1] = '\n'
  in
  let lines = String.split_on_char '\n' contents in
  (* [split_on_char] leaves a final "" element when the file ends with a
     newline; when it does not, the final element is the torn record. *)
  let lines =
    match List.rev lines with
    | "" :: rest when ends_clean -> List.rev rest
    | _ -> lines
  in
  (match lines with
  | header :: _ when header = format_header -> ()
  | header :: _ ->
      corrupt path
        (Printf.sprintf "unrecognised header %S (expected %S)" header
           format_header)
  | [] -> corrupt path "empty file");
  (match lines with
  | _ :: id_line :: _ -> (
      match String.split_on_char ' ' id_line with
      | [ "identity"; found ] ->
          let want = identity () in
          if found <> want then
            failwith
              (Printf.sprintf
                 "cache journal %s was written under a different \
                  machine/engine/config identity:\n\
                 \  journal:   %s\n\
                 \  this build: %s\n\
                  (delete it to start the cache cold)"
                 path found want)
      | _ -> corrupt path "missing identity line")
  | _ -> corrupt path "missing identity line");
  let records = List.filteri (fun i _ -> i >= 2) lines in
  let n_records = List.length records in
  let out = ref [] in
  let truncated = ref false in
  List.iteri
    (fun i line ->
      let is_tail = i = n_records - 1 && not ends_clean in
      let reject msg =
        if is_tail then truncated := true else corrupt path msg
      in
      if line = "" then
        reject (Printf.sprintf "blank line at record %d" i)
      else
        match String.split_on_char ' ' line with
        | [ tag; sum; key; hex ] when tag = "P" || tag = "S" -> (
            if checksum ~tag ~key ~hex <> sum then
              reject
                (Printf.sprintf "checksum mismatch on record for key %s" key)
            else
              match of_hex hex with
              | None ->
                  reject
                    (Printf.sprintf "undecodable payload for key %s" key)
              | Some payload ->
                  let r =
                    if tag = "P" then Pass (key, payload)
                    else Sim (key, payload)
                  in
                  out := r :: !out)
        | _ -> reject (Printf.sprintf "malformed record line %d: %S" i line))
    records;
  (List.rev !out, !truncated)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_image path records =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (format_header ^ "\n");
  output_string oc ("identity " ^ identity () ^ "\n");
  List.iter (fun r -> output_string oc (record_line r)) records;
  close_out oc;
  Sys.rename tmp path

let open_append path = open_out_gen [ Open_append; Open_creat ] 0o644 path

let open_ ~dir =
  if not (Sys.file_exists dir) then mkdir_p dir
  else if not (Sys.is_directory dir) then
    failwith (Printf.sprintf "cache-journal path %s is not a directory" dir);
  let path = Filename.concat dir "cache-journal" in
  let records, truncated =
    if Sys.file_exists path then parse path (read_file path) else ([], false)
  in
  (* A torn tail means the file does not end in a whole line; compact
     immediately so subsequent appends land on a clean boundary. *)
  if truncated || not (Sys.file_exists path) then write_image path records;
  let rp, rs =
    List.fold_left
      (fun (p, s) -> function Pass _ -> (p + 1, s) | Sim _ -> (p, s + 1))
      (0, 0) records
  in
  {
    dir;
    path;
    oc = open_append path;
    appends = 0;
    compactions = (if truncated then 1 else 0);
    replayed_pass = rp;
    replayed_sim = rs;
    truncated;
    replayed = records;
  }

let append t r =
  validate_key (key_of r);
  output_string t.oc (record_line r);
  flush t.oc;
  t.appends <- t.appends + 1

let compact t records =
  close_out_noerr t.oc;
  write_image t.path records;
  t.oc <- open_append t.path;
  t.appends <- 0;
  t.compactions <- t.compactions + 1

let close t = close_out_noerr t.oc
