(** Crash-safe append-only journal for the serve result cache
    ([`spf serve --cache-journal DIR`]).

    File format (line-oriented; payloads hex-encoded):
    {v
    spf-cache-journal 1
    identity <hex md5 over machine/engine/config/body-format identity>
    P <md5> <key> <hex pass-entry payload>
    S <md5> <key> <hex reply-body payload>
    v}

    Appends write one whole line and flush, so a crash — SIGKILL
    included — can tear at most the final record, and only by cutting
    its newline.  {!open_} tolerates exactly that torn tail (drops it
    and compacts); any other damage (bad checksum, malformed line,
    undecodable payload, wrong header) and any identity mismatch raise
    [Failure] with a message telling the operator to delete the journal
    — a damaged journal is never half-loaded.

    Not thread-safe: the owning {!Rcache} serializes all calls under
    its lock. *)

type record =
  | Pass of string * string  (** key, encoded pass entry *)
  | Sim of string * string  (** key, rendered reply body *)

type t

val identity : unit -> string
(** Digest over everything that could silently change a cached reply
    body: the body-format version, every machine model's canonical
    render, the engine list, and the default config's canonical render.
    A journal written under a different identity is refused at
    {!open_}. *)

val open_ : dir:string -> t
(** Create [dir] if needed, replay [dir]/cache-journal if present, and
    leave the file open for appends.  Compacts immediately when a torn
    tail was dropped.  @raise Failure on identity mismatch or
    corruption anywhere but the torn tail. *)

val replayed : t -> record list
(** Records recovered at {!open_}, oldest first (duplicates possible —
    later records win). *)

val append : t -> record -> unit
(** Append one record and flush.  @raise Invalid_argument if the key
    contains whitespace. *)

val compact : t -> record list -> unit
(** Atomically rewrite the journal to exactly [records] (oldest
    first): snapshot to [.tmp], rename over the live file, reopen for
    appends. *)

val close : t -> unit

val path : t -> string
val dir : t -> string

val appends : t -> int
(** Records appended since the last compaction (or open). *)

val compactions : t -> int
val replayed_pass : t -> int
val replayed_sim : t -> int

val truncated : t -> bool
(** True when {!open_} dropped a torn tail record. *)
