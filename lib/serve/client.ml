(* Blocking client for the serve protocol — what `spf loadtest`, the
   serve smoke test and the unit tests speak through.  One connection,
   one outstanding request at a time; concurrency comes from opening
   more clients. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let of_fd fd =
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  of_fd fd

let connect_tcp ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  of_fd fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n'

(* A daemon that died (or a chaos harness that killed it) surfaces here
   as EPIPE/reset on write or read: classify as a closed connection
   instead of raising into the caller's worker thread. *)
let read_line t () =
  match input_line t.ic with
  | line -> Some line
  | exception (End_of_file | Sys_error _) -> None

let read_reply t = Proto.read_reply (read_line t)

let guarded f =
  try f () with
  | Sys_error _ | Unix.Unix_error _ -> Error "connection closed"

let ping t =
  match
    guarded (fun () ->
        send_line t "PING";
        flush t.oc;
        read_reply t)
  with
  | Ok r -> String.equal r.Proto.r_cache "PONG"
  | Error _ -> false

let shutdown t =
  match
    guarded (fun () ->
        send_line t "SHUTDOWN";
        flush t.oc;
        read_reply t)
  with
  | Ok r -> String.equal r.Proto.r_cache "BYE"
  | Error _ -> false

let submit t ~id ?(opts = []) ~case_text () =
  guarded (fun () ->
      let hdr =
        String.concat " "
          ("SUBMIT" :: id :: List.map (fun (k, v) -> k ^ "=" ^ v) opts)
      in
      send_line t hdr;
      output_string t.oc case_text;
      if String.length case_text > 0
         && case_text.[String.length case_text - 1] <> '\n'
      then output_char t.oc '\n';
      send_line t Proto.terminator;
      flush t.oc;
      read_reply t)

let stats t =
  match
    guarded (fun () ->
        send_line t "STATS";
        flush t.oc;
        read_reply t)
  with
  | Ok r ->
      Ok
        (List.filter_map
           (fun line ->
             match String.split_on_char ' ' line with
             | [ "S"; name; v ] ->
                 Option.map (fun n -> (name, n)) (int_of_string_opt v)
             | _ -> None)
           r.Proto.r_body)
  | Error e -> Error e
