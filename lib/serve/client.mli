(** Blocking client for the serve protocol: one connection, one
    outstanding request at a time — concurrency comes from opening more
    clients. *)

type t

val connect_unix : string -> t
val connect_tcp : port:int -> t
(** Loopback. *)

val close : t -> unit

val ping : t -> bool

val shutdown : t -> bool
(** Ask the server to shut down; [true] on a clean [BYE]. *)

val submit :
  t ->
  id:string ->
  ?opts:(string * string) list ->
  case_text:string ->
  unit ->
  (Proto.reply, string) result
(** [opts] are the SUBMIT header options ([machine], [engine], [c],
    [provider], [tscale]). *)

val stats : t -> ((string * int) list, string) result
(** The [STATS] counters, as reported. *)
