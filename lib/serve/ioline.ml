(* Bounded, deadline-aware line reading for the serve daemon.

   The stdlib [in_channel] the first serve cut used has two failure
   modes a hostile client can drive: [input_line] blocks forever on a
   peer that stops sending mid-line (slowloris), and it happily
   accumulates an unbounded line from a peer that never sends the
   newline.  This reader works directly on the fd: every refill waits at
   most [idle_s] for bytes (via [select]), and a line that exceeds
   [max_line] bytes is classified [Overflow] instead of growing the
   buffer — the handler turns both into a classified reply and closes
   the connection.

   Not thread-safe; one reader per connection handler thread. *)

type t = {
  fd : Unix.file_descr;
  mutable pending : string;  (* received, not yet consumed *)
  chunk : Bytes.t;
  max_line : int;
  idle_s : float;
}

type line =
  | Line of string
  | Eof  (* peer closed (or reset) the connection *)
  | Timeout  (* no bytes for [idle_s] seconds mid-read *)
  | Overflow  (* line exceeds [max_line] bytes; stream is unframeable *)

let create ?(max_line = 1 lsl 16) ~idle_s fd =
  { fd; pending = ""; chunk = Bytes.create 8192; max_line; idle_s }

let buffered_bytes t = String.length t.pending

let rec read_line t =
  match String.index_opt t.pending '\n' with
  | Some i ->
      let line = String.sub t.pending 0 i in
      t.pending <-
        String.sub t.pending (i + 1) (String.length t.pending - i - 1);
      if String.length line > t.max_line then Overflow else Line line
  | None ->
      if String.length t.pending > t.max_line then Overflow
      else refill t

and refill t =
  match Unix.select [ t.fd ] [] [] t.idle_s with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill t
  | exception Unix.Unix_error (Unix.EBADF, _, _) ->
      (* The drain watchdog force-shut the socket under us. *)
      Eof
  | [], _, _ -> Timeout
  | _ -> (
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill t
      | exception
          Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
        ->
          Eof
      | 0 ->
          (* A partial unterminated line at EOF is a vanished client,
             not a request. *)
          Eof
      | n ->
          t.pending <- t.pending ^ Bytes.sub_string t.chunk 0 n;
          read_line t)
