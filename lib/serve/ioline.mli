(** Bounded, deadline-aware line reading over a socket fd — the serve
    daemon's defense against slowloris senders (every refill waits at
    most [idle_s] for bytes) and unbounded-line senders (a line past
    [max_line] bytes is [Overflow], not an ever-growing buffer).

    Not thread-safe; one reader per connection handler. *)

type t

val create : ?max_line:int -> idle_s:float -> Unix.file_descr -> t
(** [max_line] defaults to 64 KiB.  [idle_s] is the per-refill idle
    deadline, not a whole-request budget. *)

type line =
  | Line of string
  | Eof  (** peer closed or reset the connection *)
  | Timeout  (** no bytes arrived for [idle_s] seconds *)
  | Overflow
      (** the current line exceeds [max_line] bytes; the stream cannot
          be re-framed, so the caller should reply and close *)

val read_line : t -> line

val buffered_bytes : t -> int
(** Bytes received but not yet consumed (diagnostics). *)
