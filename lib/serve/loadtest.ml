(* `spf loadtest`: replay a fleet of fuzz-generated programs against a
   running server at configurable concurrency and duplication rate,
   measuring latency percentiles, throughput, cache hit rate — and
   verifying zero dropped or corrupted replies (every reply body for a
   given request key must be byte-identical to the first one seen;
   that's the cache's whole contract). *)

module Rng = Spf_workloads.Rng
module Gen = Spf_fuzz.Gen
module Case = Spf_valid.Case

type result = {
  programs : int;  (* requests replayed *)
  distinct : int;  (* distinct programs in the pool *)
  concurrency : int;
  replies : int;
  errors : int;  (* ERR replies (all expected to be 0 here) *)
  dropped : int;  (* requests with no parseable reply *)
  corrupted : int;  (* reply bodies differing from first-seen for the key *)
  cold : int;
  pass_hits : int;
  sim_hits : int;
  p50_us : int;
  p99_us : int;
  cold_p50_us : int;
  hit_p50_us : int;
  wall_s : float;
  throughput_rps : float;
  hit_rate : float;  (* sim-hits / replies *)
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (p * n / 100))

(* One case text per distinct program: deterministic in [seed]. *)
let build_pool ~seed ~distinct =
  List.init distinct (fun i ->
      let rng = Rng.split ~seed i in
      let spec = Gen.random rng in
      let built = Gen.build spec in
      let case =
        Case.of_concrete ~func:built.Gen.func ~mem:built.Gen.mem
          ~args:built.Gen.args ~fuel:(Gen.fuel spec)
      in
      Case.to_string case)
  |> Array.of_list

let run ?(seed = 7) ?(count = 1000) ?(dup = 0.5) ?(concurrency = 8)
    ?(opts = []) ~connect () =
  let distinct =
    max 1 (min count (int_of_float (ceil (float_of_int count *. (1. -. dup)))))
  in
  let pool = build_pool ~seed ~distinct in
  (* The replay schedule: request i exercises program (i mod distinct),
     shuffled so duplicates interleave rather than cluster. *)
  let schedule = Array.init count (fun i -> i mod distinct) in
  Rng.shuffle (Rng.create ~seed:(seed + 1)) schedule;
  let next = Atomic.make 0 in
  let m = Mutex.create () in
  let first_body : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let lat_all = ref [] and lat_cold = ref [] and lat_hit = ref [] in
  let replies = ref 0
  and errors = ref 0
  and dropped = ref 0
  and corrupted = ref 0
  and cold = ref 0
  and pass_hits = ref 0
  and sim_hits = ref 0 in
  let record ~prog ~us (r : Proto.reply) =
    Mutex.lock m;
    (match r.Proto.r_err with
    | Some _ ->
        incr errors;
        incr replies
    | None ->
        incr replies;
        lat_all := us :: !lat_all;
        (match r.Proto.r_cache with
        | "cold" ->
            incr cold;
            lat_cold := us :: !lat_cold
        | "pass-hit" -> incr pass_hits
        | "sim-hit" ->
            incr sim_hits;
            lat_hit := us :: !lat_hit
        | _ -> ());
        let body = String.concat "\n" r.Proto.r_body in
        (match Hashtbl.find_opt first_body prog with
        | None -> Hashtbl.add first_body prog body
        | Some first -> if not (String.equal first body) then incr corrupted));
    Mutex.unlock m
  in
  let worker w =
    let client = connect () in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < count then begin
        let prog = schedule.(i) in
        let t0 = Unix.gettimeofday () in
        (match
           Client.submit client
             ~id:(Printf.sprintf "w%d-%d" w i)
             ~opts ~case_text:pool.(prog) ()
         with
        | Ok r ->
            let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
            record ~prog ~us r
        | Error _ ->
            Mutex.lock m;
            incr dropped;
            Mutex.unlock m);
        loop ()
      end
    in
    loop ();
    Client.close client
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init concurrency (fun w -> Thread.create worker w) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    a
  in
  let all = sorted !lat_all
  and hit = sorted !lat_hit
  and coldl = sorted !lat_cold in
  {
    programs = count;
    distinct;
    concurrency;
    replies = !replies;
    errors = !errors;
    dropped = !dropped;
    corrupted = !corrupted;
    cold = !cold;
    pass_hits = !pass_hits;
    sim_hits = !sim_hits;
    p50_us = percentile all 50;
    p99_us = percentile all 99;
    cold_p50_us = percentile coldl 50;
    hit_p50_us = percentile hit 50;
    wall_s;
    throughput_rps =
      (if wall_s > 0. then float_of_int !replies /. wall_s else 0.);
    hit_rate =
      (if !replies > 0 then float_of_int !sim_hits /. float_of_int !replies
       else 0.);
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>loadtest: %d requests (%d distinct) at concurrency %d in %.2fs@,\
     replies=%d errors=%d dropped=%d corrupted=%d@,\
     cache: cold=%d pass-hit=%d sim-hit=%d (hit rate %.1f%%)@,\
     latency: p50=%dus p99=%dus cold-p50=%dus hit-p50=%dus@,\
     throughput: %.0f req/s@]" r.programs r.distinct r.concurrency r.wall_s
    r.replies r.errors r.dropped r.corrupted r.cold r.pass_hits r.sim_hits
    (100. *. r.hit_rate) r.p50_us r.p99_us r.cold_p50_us r.hit_p50_us
    r.throughput_rps
