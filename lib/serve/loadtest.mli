(** [spf loadtest]: replay fuzz-generated programs against a serve
    daemon at configurable concurrency and duplication rate, recording
    latency percentiles, throughput and cache hit rate — and verifying
    zero dropped or corrupted replies (every reply body for a given
    program must be byte-identical to the first one seen). *)

type result = {
  programs : int;  (** requests replayed *)
  distinct : int;  (** distinct programs in the pool *)
  concurrency : int;
  replies : int;
  errors : int;  (** [ERR] replies *)
  dropped : int;  (** requests with no parseable reply *)
  corrupted : int;  (** bodies differing from first-seen for the program *)
  cold : int;
  pass_hits : int;
  sim_hits : int;
  p50_us : int;
  p99_us : int;
  cold_p50_us : int;
  hit_p50_us : int;
  wall_s : float;
  throughput_rps : float;
  hit_rate : float;  (** sim-hits / replies *)
}

val build_pool : seed:int -> distinct:int -> string array
(** The deterministic case-text pool [run] replays — exposed so the
    chaos harness drives the same honest traffic. *)

val run :
  ?seed:int ->
  ?count:int ->
  ?dup:float ->
  ?concurrency:int ->
  ?opts:(string * string) list ->
  connect:(unit -> Client.t) ->
  unit ->
  result
(** [dup] is the duplication rate in [0,1): the distinct-program pool
    has size [ceil (count * (1 - dup))], and the replay schedule cycles
    it shuffled, so a 0.5 rate means every program is requested ~twice.
    [opts] go on every SUBMIT header.  Deterministic in [seed] (program
    pool and schedule; latencies are wall-clock). *)

val pp : Format.formatter -> result -> unit
