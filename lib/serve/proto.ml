(* The line-oriented text protocol of `spf serve`.

   Requests:

     PING
     STATS
     SHUTDOWN
     SUBMIT <id> [machine=NAME] [engine=NAME] [c=N] [provider=static|adaptive]
                 [tscale=N]
     <case payload: the `spf-case v1` format of lib/valid/case.ml>
     .

   Replies (every reply ends with a DONE or ERR line, so clients frame
   on those):

     OK <id> cache=<cold|pass-hit|sim-hit|->
     R <pass-report line>          (zero or more)
     S <counter> <value>           (zero or more)
     V <retval|->                  (SUBMIT replies only)
     DONE <id> us=<elapsed>

     ERR <id> <class> <message>    (single line, message sanitised)

   PONG answers PING; BYE answers SHUTDOWN.  The R/S/V section is the
   reply *body*: byte-identical between a cold run and any cache hit of
   the same key (the loadtest's corruption check digests exactly these
   lines). *)

module Machine = Spf_sim.Machine
module Engine = Spf_sim.Engine
module Interp = Spf_sim.Interp
module Config = Spf_core.Config
module Distance = Spf_core.Distance

type request = {
  id : string;
  machine : Machine.t;
  engine : Engine.t;
  config : Config.t;
  tscale : int;
  case_text : string;
}

type verb =
  | Submit of { id : string; opts : (string * string) list }
  | Stats
  | Ping
  | Shutdown

let terminator = "."

(* Split on runs of spaces; no quoting — ids and option values are
   token-shaped by construction. *)
let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_opt tok =
  match String.index_opt tok '=' with
  | Some i ->
      Some
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
  | None -> None

let parse_verb line =
  match tokens line with
  | [ "PING" ] -> Ok Ping
  | [ "STATS" ] -> Ok Stats
  | [ "SHUTDOWN" ] -> Ok Shutdown
  | "SUBMIT" :: id :: rest ->
      if String.contains id '=' then Error "SUBMIT: first token must be an id"
      else
        let rec opts acc = function
          | [] -> Ok (Submit { id; opts = List.rev acc })
          | tok :: rest -> (
              match parse_opt tok with
              | Some kv -> opts (kv :: acc) rest
              | None -> Error (Printf.sprintf "SUBMIT: bad option %S" tok))
        in
        opts [] rest
  | [ "SUBMIT" ] -> Error "SUBMIT: missing request id"
  | tok :: _ -> Error (Printf.sprintf "unknown verb %S" tok)
  | [] -> Error "empty request line"

let request_of ~id ~opts ~case_text =
  let find k = List.assoc_opt k opts in
  let int_of k v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "%s: not an integer: %S" k v)
  in
  let ( let* ) = Result.bind in
  let* machine =
    match find "machine" with
    | None -> Ok Machine.haswell
    | Some name -> (
        match Machine.by_name name with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "unknown machine %S" name))
  in
  let* engine =
    match find "engine" with
    | None -> Ok Engine.default
    | Some name -> (
        match Engine.of_string name with
        | Some e -> Ok e
        | None -> Error (Printf.sprintf "unknown engine %S" name))
  in
  let* c = match find "c" with None -> Ok Config.default.Config.c | Some v -> int_of "c" v in
  let* provider =
    match find "provider" with
    | None | Some "static" -> Ok Distance.Static
    | Some "adaptive" -> Ok (Distance.Adaptive Distance.default_adaptive)
    | Some p -> Error (Printf.sprintf "unknown provider %S (static|adaptive)" p)
  in
  let* tscale =
    match find "tscale" with
    | None -> Ok Interp.default_tscale
    | Some v -> int_of "tscale" v
  in
  let* () =
    match
      List.find_opt
        (fun (k, _) ->
          not (List.mem k [ "machine"; "engine"; "c"; "provider"; "tscale" ]))
        opts
    with
    | Some (k, _) -> Error (Printf.sprintf "unknown option %S" k)
    | None -> Ok ()
  in
  Ok
    {
      id;
      machine;
      engine;
      config = Config.with_provider provider (Config.with_c c Config.default);
      tscale;
      case_text;
    }

(* ------------------------------------------------------------------ *)
(* Reply rendering.                                                    *)

let sanitise msg =
  String.map (function '\n' | '\r' -> ' ' | ch -> ch) msg

let ok_line ~id ~cache = Printf.sprintf "OK %s cache=%s" id cache
let done_line ~id ~us = Printf.sprintf "DONE %s us=%d" id us
let err_line ~id ~cls ~msg = Printf.sprintf "ERR %s %s %s" id cls (sanitise msg)

let busy_line ~id ~retry_after_ms ~msg =
  err_line ~id ~cls:"busy"
    ~msg:(Printf.sprintf "retry-after=%d %s" retry_after_ms msg)

type reply = {
  r_id : string;
  r_cache : string;
  r_body : string list;  (* the R/S/V lines *)
  r_us : int;
  r_err : (string * string) option;  (* class, message *)
}

(* A shed reply's suggested client backoff, if this is one. *)
let retry_after_ms r =
  match r.r_err with
  | Some ("busy", msg) ->
      List.find_map
        (fun tok ->
          match parse_opt tok with
          | Some ("retry-after", v) -> int_of_string_opt v
          | _ -> None)
        (tokens msg)
  | _ -> None

(* Parse one framed reply from [read_line] (which returns None on EOF). *)
let read_reply read_line =
  match read_line () with
  | None -> Error "connection closed"
  | Some first -> (
      match tokens first with
      | [ "PONG" ] | [ "BYE" ] ->
          Ok { r_id = ""; r_cache = first; r_body = []; r_us = 0; r_err = None }
      | "ERR" :: id :: cls :: rest ->
          Ok
            {
              r_id = id;
              r_cache = "-";
              r_body = [];
              r_us = 0;
              r_err = Some (cls, String.concat " " rest);
            }
      | [ "OK"; id; cache_kv ] -> (
          let cache =
            match parse_opt cache_kv with Some ("cache", v) -> v | _ -> "-"
          in
          let rec body acc =
            match read_line () with
            | None -> Error "connection closed mid-reply"
            | Some line -> (
                match tokens line with
                | "DONE" :: _ :: rest ->
                    let us =
                      List.fold_left
                        (fun acc tok ->
                          match parse_opt tok with
                          | Some ("us", v) ->
                              Option.value (int_of_string_opt v) ~default:acc
                          | _ -> acc)
                        0 rest
                    in
                    Ok (List.rev acc, us)
                | _ -> body (line :: acc))
          in
          match body [] with
          | Ok (lines, us) ->
              Ok
                {
                  r_id = id;
                  r_cache = cache;
                  r_body = lines;
                  r_us = us;
                  r_err = None;
                }
          | Error e -> Error e)
      | _ -> Error (Printf.sprintf "malformed reply line %S" first))
