(** The line-oriented text protocol of [spf serve].

    Requests are one verb line ([PING], [STATS], [SHUTDOWN], or
    [SUBMIT <id> key=value...] followed by an [spf-case v1] payload and
    a lone ["."]); replies are framed by a trailing [DONE] or a
    single-line [ERR].  The [R]/[S]/[V] lines between [OK] and [DONE]
    are the reply {e body}: byte-identical between a cold run and any
    cache hit of the same key.  See docs/SERVING.md for the full
    grammar. *)

type request = {
  id : string;
  machine : Spf_sim.Machine.t;
  engine : Spf_sim.Engine.t;
  config : Spf_core.Config.t;
  tscale : int;
  case_text : string;
}

type verb =
  | Submit of { id : string; opts : (string * string) list }
  | Stats
  | Ping
  | Shutdown

val terminator : string
(** The payload end marker, a lone ["."]. *)

val parse_verb : string -> (verb, string) result

val request_of :
  id:string ->
  opts:(string * string) list ->
  case_text:string ->
  (request, string) result
(** Resolve SUBMIT options ([machine], [engine], [c], [provider],
    [tscale]) against their defaults (Haswell, the default engine,
    config default c, static, default tscale); unknown keys or values
    are errors. *)

val sanitise : string -> string
(** Newlines to spaces — [ERR] messages must stay single-line. *)

val ok_line : id:string -> cache:string -> string
val done_line : id:string -> us:int -> string
val err_line : id:string -> cls:string -> msg:string -> string

val busy_line : id:string -> retry_after_ms:int -> msg:string -> string
(** The load-shedding reply:
    [ERR <id> busy retry-after=<ms> <msg>] — admission control always
    answers, never silently drops. *)

type reply = {
  r_id : string;
  r_cache : string;  (** [cold], [pass-hit], [sim-hit], or [-] *)
  r_body : string list;  (** the R/S/V lines, in order *)
  r_us : int;  (** server-side elapsed microseconds *)
  r_err : (string * string) option;  (** classification, message *)
}

val read_reply : (unit -> string option) -> (reply, string) result
(** Parse one framed reply from a line source ([None] = EOF). *)

val retry_after_ms : reply -> int option
(** The suggested backoff of a [busy] shed reply; [None] otherwise. *)
