(* The shared content-addressed result cache behind `spf serve`: two
   LRU levels under one lock.

   Level 1 (pass) memoises compile results — the transformed IR (as
   text: strings are immutable, so entries are safe to hand to any
   domain) plus the provider decisions the tuner needs.  Level 2 (sim)
   memoises fully rendered reply bodies.  The levels feed each other: a
   sim miss that pass-hits skips verification and the pass and goes
   straight to simulation of the cached transformed program.

   Keys are content-addressed, never identity-addressed: the program
   half is {!Spf_ir.Ir.signature} (structural, name-independent), the
   configuration half is {!Spf_core.Config.canonical} /
   {!Spf_sim.Machine.canonical} plus engine and tscale, and the
   environment half digests the concrete memory image, arguments and
   fuel.  Two clients submitting alpha-renamed copies of the same
   program under equal configs share entries; any difference in any
   keyed dimension cannot collide. *)

module Pass = Spf_core.Pass
module Distance = Spf_core.Distance
module Config = Spf_core.Config
module Machine = Spf_sim.Machine
module Engine = Spf_sim.Engine
module Case = Spf_valid.Case

(* ------------------------------------------------------------------ *)
(* Intrusive-list LRU with O(1) find/add/evict.                        *)

type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option; (* toward most-recently used *)
  mutable next : 'a node option; (* toward least-recently used *)
}

type level_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type 'a lru = {
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most-recently used *)
  mutable tail : 'a node option; (* least-recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let lru_create cap =
  {
    cap = max 1 cap;
    tbl = Hashtbl.create 256;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink l n =
  (match n.prev with Some p -> p.next <- n.next | None -> l.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> l.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front l n =
  n.next <- l.head;
  n.prev <- None;
  (match l.head with Some h -> h.prev <- Some n | None -> l.tail <- Some n);
  l.head <- Some n

let lru_find l key =
  match Hashtbl.find_opt l.tbl key with
  | Some n ->
      l.hits <- l.hits + 1;
      unlink l n;
      push_front l n;
      Some n.value
  | None ->
      l.misses <- l.misses + 1;
      None

let lru_add l key value =
  (match Hashtbl.find_opt l.tbl key with
  | Some old ->
      (* Re-insertion under the same content-addressed key carries the
         same content; keep one copy and refresh its recency. *)
      unlink l old;
      Hashtbl.remove l.tbl key
  | None -> ());
  let n = { key; value; prev = None; next = None } in
  Hashtbl.replace l.tbl key n;
  push_front l n;
  if Hashtbl.length l.tbl > l.cap then
    match l.tail with
    | Some t ->
        unlink l t;
        Hashtbl.remove l.tbl t.key;
        l.evictions <- l.evictions + 1
    | None -> ()

let lru_stats l =
  {
    hits = l.hits;
    misses = l.misses;
    evictions = l.evictions;
    entries = Hashtbl.length l.tbl;
    capacity = l.cap;
  }

(* ------------------------------------------------------------------ *)
(* The two levels.                                                     *)

type pass_entry = {
  tfunc_text : string;
      (* canonical textual IR of the transformed program; both the cold
         path and the pass-hit path simulate [Parser.parse tfunc_text],
         so the two are byte-identical by construction *)
  report_text : string; (* rendered "R " payload lines *)
  loop_distances : Pass.loop_distance list;
  adaptive : Distance.adaptive_params option;
}

type t = {
  mutex : Mutex.t;
  pass : pass_entry lru;
  sim : string lru;
  journal : Cjournal.t option;
}

(* ------------------------------------------------------------------ *)
(* Pass-entry codec for the journal: an explicit versioned textual
   format (not [Marshal] — a Marshal payload silently breaks across
   compiler versions and record layout changes, and the journal's
   whole point is surviving restarts).  Strings are hex-encoded so the
   payload is one unambiguous space-separated line regardless of IR
   text contents. *)

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter
    (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c)))
    s;
  Buffer.contents b

let of_hex s =
  if String.length s mod 2 <> 0 then None
  else
    try
      Some
        (String.init (String.length s / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> None

let encode_pass_entry (e : pass_entry) =
  let ld { Pass.header; distance; enabled; dist_slot } =
    Printf.sprintf "%d:%d:%d:%s" header distance
      (if enabled then 1 else 0)
      (match dist_slot with Some s -> string_of_int s | None -> "-")
  in
  let lds =
    match e.loop_distances with
    | [] -> "-"
    | l -> String.concat "," (List.map ld l)
  in
  let ad =
    match e.adaptive with
    | None -> "-"
    | Some { Distance.window; min_c; max_c } ->
        Printf.sprintf "%d:%d:%d" window min_c max_c
  in
  Printf.sprintf "pe1 %s %s %s %s" (to_hex e.tfunc_text)
    (to_hex e.report_text) lds ad

let decode_pass_entry s =
  let int_opt x = int_of_string_opt x in
  let ld_of part =
    match String.split_on_char ':' part with
    | [ h; d; en; slot ] -> (
        match (int_opt h, int_opt d, en) with
        | Some header, Some distance, ("0" | "1") -> (
            let enabled = en = "1" in
            match slot with
            | "-" -> Some { Pass.header; distance; enabled; dist_slot = None }
            | _ -> (
                match int_opt slot with
                | Some s ->
                    Some { Pass.header; distance; enabled; dist_slot = Some s }
                | None -> None))
        | _ -> None)
    | _ -> None
  in
  match String.split_on_char ' ' s with
  | [ "pe1"; tfunc_hex; report_hex; lds; ad ] -> (
      match (of_hex tfunc_hex, of_hex report_hex) with
      | Some tfunc_text, Some report_text -> (
          let loop_distances =
            if lds = "-" then Some []
            else
              let parts = String.split_on_char ',' lds in
              let decoded = List.filter_map ld_of parts in
              if List.length decoded = List.length parts then Some decoded
              else None
          in
          let adaptive =
            if ad = "-" then Some None
            else
              match String.split_on_char ':' ad with
              | [ w; mn; mx ] -> (
                  match (int_opt w, int_opt mn, int_opt mx) with
                  | Some window, Some min_c, Some max_c ->
                      Some (Some { Distance.window; min_c; max_c })
                  | _ -> None)
              | _ -> None
          in
          match (loop_distances, adaptive) with
          | Some loop_distances, Some adaptive ->
              Some { tfunc_text; report_text; loop_distances; adaptive }
          | _ -> None)
      | _ -> None)
  | _ -> None

let create ?(pass_cap = 512) ?(sim_cap = 2048) ?journal_dir () =
  let pass = lru_create pass_cap and sim = lru_create sim_cap in
  let journal =
    match journal_dir with
    | None -> None
    | Some dir ->
        let j = Cjournal.open_ ~dir in
        (* Replay oldest-first: later duplicates of a key refresh
           recency, so the restarted LRU ends up in write order. *)
        List.iter
          (function
            | Cjournal.Sim (key, body) -> lru_add sim key body
            | Cjournal.Pass (key, payload) -> (
                match decode_pass_entry payload with
                | Some e -> lru_add pass key e
                | None ->
                    failwith
                      (Printf.sprintf
                         "cache journal %s is not usable: undecodable pass \
                          entry for key %s (delete it to start the cache \
                          cold)"
                         (Cjournal.path j) key)))
          (Cjournal.replayed j);
        Some j
  in
  { mutex = Mutex.create (); pass; sim; journal }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Under the cache lock: the live entries of both levels, oldest-first,
   in journal-record form — replaying them left to right rebuilds both
   LRUs with today's recency order. *)
let dump_locked t =
  let collect lru mk =
    (* Walk head (MRU) toward tail consing, so the result lists the
       tail (LRU, oldest) first. *)
    let acc = ref [] in
    let rec go = function
      | None -> ()
      | Some n ->
          acc := mk n.key n.value :: !acc;
          go n.next
    in
    go lru.head;
    !acc
  in
  collect t.pass (fun k e -> Cjournal.Pass (k, encode_pass_entry e))
  @ collect t.sim (fun k body -> Cjournal.Sim (k, body))

(* Compact once the journal holds several times more records than the
   caches hold entries — i.e. once it is mostly evicted/duplicate dead
   weight.  The floor keeps small caches from compacting constantly. *)
let maybe_compact_locked t =
  match t.journal with
  | None -> ()
  | Some j ->
      let live = Hashtbl.length t.pass.tbl + Hashtbl.length t.sim.tbl in
      if Cjournal.appends j > max 64 (4 * live) then
        Cjournal.compact j (dump_locked t)

let journal_record_locked t r =
  match t.journal with
  | None -> ()
  | Some j ->
      Cjournal.append j r;
      maybe_compact_locked t

let find_pass t key = locked t (fun () -> lru_find t.pass key)

let add_pass t key e =
  locked t (fun () ->
      lru_add t.pass key e;
      journal_record_locked t (Cjournal.Pass (key, encode_pass_entry e)))

let find_sim t key = locked t (fun () -> lru_find t.sim key)

let add_sim t key body =
  locked t (fun () ->
      lru_add t.sim key body;
      journal_record_locked t (Cjournal.Sim (key, body)))

let pass_stats t = locked t (fun () -> lru_stats t.pass)
let sim_stats t = locked t (fun () -> lru_stats t.sim)

type journal_stats = {
  journaled : bool;
  replayed_pass : int;
  replayed_sim : int;
  recovered_truncated : bool;
  appends : int;
  compactions : int;
}

let journal_stats t =
  locked t (fun () ->
      match t.journal with
      | None ->
          {
            journaled = false;
            replayed_pass = 0;
            replayed_sim = 0;
            recovered_truncated = false;
            appends = 0;
            compactions = 0;
          }
      | Some j ->
          {
            journaled = true;
            replayed_pass = Cjournal.replayed_pass j;
            replayed_sim = Cjournal.replayed_sim j;
            recovered_truncated = Cjournal.truncated j;
            appends = Cjournal.appends j;
            compactions = Cjournal.compactions j;
          })

let flush_journal t =
  locked t (fun () ->
      match t.journal with
      | None -> ()
      | Some j -> Cjournal.compact j (dump_locked t))

let close_journal t =
  locked t (fun () ->
      match t.journal with
      | None -> ()
      | Some j ->
          Cjournal.compact j (dump_locked t);
          Cjournal.close j)

(* ------------------------------------------------------------------ *)
(* Key construction.                                                   *)

let pass_key ~sig_digest ~config =
  sig_digest ^ ":" ^ Config.digest config

let env_digest (case : Case.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "brk=%d fuel=%d args=" case.brk case.fuel);
  Array.iter (fun a -> Buffer.add_string b (string_of_int a ^ ",")) case.args;
  List.iter
    (fun (addr, bytes) ->
      Buffer.add_string b (Printf.sprintf " %d:" addr);
      Buffer.add_string b (Digest.string bytes))
    case.writes;
  Digest.to_hex (Digest.string (Buffer.contents b))

let sim_key ~pass_key ~env ~machine ~engine ~tscale =
  Printf.sprintf "%s:%s:%s:%s:%d" pass_key env
    (Digest.to_hex (Digest.string (Machine.canonical machine)))
    (Engine.to_string engine) tscale
