(* The shared content-addressed result cache behind `spf serve`: two
   LRU levels under one lock.

   Level 1 (pass) memoises compile results — the transformed IR (as
   text: strings are immutable, so entries are safe to hand to any
   domain) plus the provider decisions the tuner needs.  Level 2 (sim)
   memoises fully rendered reply bodies.  The levels feed each other: a
   sim miss that pass-hits skips verification and the pass and goes
   straight to simulation of the cached transformed program.

   Keys are content-addressed, never identity-addressed: the program
   half is {!Spf_ir.Ir.signature} (structural, name-independent), the
   configuration half is {!Spf_core.Config.canonical} /
   {!Spf_sim.Machine.canonical} plus engine and tscale, and the
   environment half digests the concrete memory image, arguments and
   fuel.  Two clients submitting alpha-renamed copies of the same
   program under equal configs share entries; any difference in any
   keyed dimension cannot collide. *)

module Pass = Spf_core.Pass
module Distance = Spf_core.Distance
module Config = Spf_core.Config
module Machine = Spf_sim.Machine
module Engine = Spf_sim.Engine
module Case = Spf_valid.Case

(* ------------------------------------------------------------------ *)
(* Intrusive-list LRU with O(1) find/add/evict.                        *)

type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option; (* toward most-recently used *)
  mutable next : 'a node option; (* toward least-recently used *)
}

type level_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type 'a lru = {
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most-recently used *)
  mutable tail : 'a node option; (* least-recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let lru_create cap =
  {
    cap = max 1 cap;
    tbl = Hashtbl.create 256;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink l n =
  (match n.prev with Some p -> p.next <- n.next | None -> l.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> l.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front l n =
  n.next <- l.head;
  n.prev <- None;
  (match l.head with Some h -> h.prev <- Some n | None -> l.tail <- Some n);
  l.head <- Some n

let lru_find l key =
  match Hashtbl.find_opt l.tbl key with
  | Some n ->
      l.hits <- l.hits + 1;
      unlink l n;
      push_front l n;
      Some n.value
  | None ->
      l.misses <- l.misses + 1;
      None

let lru_add l key value =
  (match Hashtbl.find_opt l.tbl key with
  | Some old ->
      (* Re-insertion under the same content-addressed key carries the
         same content; keep one copy and refresh its recency. *)
      unlink l old;
      Hashtbl.remove l.tbl key
  | None -> ());
  let n = { key; value; prev = None; next = None } in
  Hashtbl.replace l.tbl key n;
  push_front l n;
  if Hashtbl.length l.tbl > l.cap then
    match l.tail with
    | Some t ->
        unlink l t;
        Hashtbl.remove l.tbl t.key;
        l.evictions <- l.evictions + 1
    | None -> ()

let lru_stats l =
  {
    hits = l.hits;
    misses = l.misses;
    evictions = l.evictions;
    entries = Hashtbl.length l.tbl;
    capacity = l.cap;
  }

(* ------------------------------------------------------------------ *)
(* The two levels.                                                     *)

type pass_entry = {
  tfunc_text : string;
      (* canonical textual IR of the transformed program; both the cold
         path and the pass-hit path simulate [Parser.parse tfunc_text],
         so the two are byte-identical by construction *)
  report_text : string; (* rendered "R " payload lines *)
  loop_distances : Pass.loop_distance list;
  adaptive : Distance.adaptive_params option;
}

type t = {
  mutex : Mutex.t;
  pass : pass_entry lru;
  sim : string lru;
}

let create ?(pass_cap = 512) ?(sim_cap = 2048) () =
  { mutex = Mutex.create (); pass = lru_create pass_cap; sim = lru_create sim_cap }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_pass t key = locked t (fun () -> lru_find t.pass key)
let add_pass t key e = locked t (fun () -> lru_add t.pass key e)
let find_sim t key = locked t (fun () -> lru_find t.sim key)
let add_sim t key body = locked t (fun () -> lru_add t.sim key body)
let pass_stats t = locked t (fun () -> lru_stats t.pass)
let sim_stats t = locked t (fun () -> lru_stats t.sim)

(* ------------------------------------------------------------------ *)
(* Key construction.                                                   *)

let pass_key ~sig_digest ~config =
  sig_digest ^ ":" ^ Config.digest config

let env_digest (case : Case.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "brk=%d fuel=%d args=" case.brk case.fuel);
  Array.iter (fun a -> Buffer.add_string b (string_of_int a ^ ",")) case.args;
  List.iter
    (fun (addr, bytes) ->
      Buffer.add_string b (Printf.sprintf " %d:" addr);
      Buffer.add_string b (Digest.string bytes))
    case.writes;
  Digest.to_hex (Digest.string (Buffer.contents b))

let sim_key ~pass_key ~env ~machine ~engine ~tscale =
  Printf.sprintf "%s:%s:%s:%s:%d" pass_key env
    (Digest.to_hex (Digest.string (Machine.canonical machine)))
    (Engine.to_string engine) tscale
