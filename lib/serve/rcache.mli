(** The shared content-addressed result cache behind [spf serve]: two
    bounded LRU levels under one lock, safe to share across the server's
    connection threads and pool domains.

    Level 1 memoises compile results (transformed IR as canonical text
    plus provider decisions) keyed by program signature x pass config;
    level 2 memoises fully rendered reply bodies keyed additionally by
    environment, machine, engine and tscale.  A sim miss that pass-hits
    skips verification and the pass; a sim hit skips everything.  See
    docs/SERVING.md for the key discipline. *)

type t

val create : ?pass_cap:int -> ?sim_cap:int -> ?journal_dir:string -> unit -> t
(** Bounded capacities (entries, not bytes); least-recently-used entries
    are evicted beyond them.  Defaults: 512 pass entries, 2048 sim
    entries.

    When [journal_dir] is given, every insertion is also appended to a
    crash-safe journal there (see {!Cjournal}) and any existing journal
    is replayed into the cache first — a restarted daemon starts warm.
    @raise Failure if the existing journal is corrupt (beyond a torn
    tail) or was written under a different machine/engine/config
    identity. *)

type pass_entry = {
  tfunc_text : string;
      (** canonical textual IR of the transformed program — simulation
          always runs [Parser.parse tfunc_text], cold or hit, so replies
          are byte-identical by construction *)
  report_text : string;  (** rendered report payload lines *)
  loop_distances : Spf_core.Pass.loop_distance list;
  adaptive : Spf_core.Distance.adaptive_params option;
}

val find_pass : t -> string -> pass_entry option
val add_pass : t -> string -> pass_entry -> unit

val find_sim : t -> string -> string option
(** The cached value is the complete rendered reply body. *)

val add_sim : t -> string -> string -> unit

type level_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

val pass_stats : t -> level_stats
val sim_stats : t -> level_stats

(** {1 Journal} *)

type journal_stats = {
  journaled : bool;  (** a journal_dir was configured *)
  replayed_pass : int;  (** pass entries recovered at startup *)
  replayed_sim : int;  (** sim bodies recovered at startup *)
  recovered_truncated : bool;  (** a torn tail record was dropped *)
  appends : int;  (** records appended since the last compaction *)
  compactions : int;
}

val journal_stats : t -> journal_stats
(** All-zero with [journaled = false] when no journal is configured. *)

val flush_journal : t -> unit
(** Compact the journal to exactly the live entries (atomic
    snapshot+rename); no-op without a journal.  The daemon calls this
    on graceful drain. *)

val close_journal : t -> unit
(** {!flush_journal} then close the append channel. *)

val encode_pass_entry : pass_entry -> string
val decode_pass_entry : string -> pass_entry option
(** The versioned textual codec journal records use for pass entries;
    exposed for property tests.  [decode_pass_entry] never raises. *)

(** {1 Key construction} *)

val pass_key : sig_digest:string -> config:Spf_core.Config.t -> string
(** [sig_digest] is the hex digest of {!Spf_ir.Ir.signature} of the
    {e original} (pre-pass) program: content-addressed, so alpha-renamed
    resubmissions of one program share entries. *)

val env_digest : Spf_valid.Case.t -> string
(** Digest of the concrete environment (arguments, break, fuel, memory
    image) — part of the sim key only; the pass is
    environment-independent. *)

val sim_key :
  pass_key:string ->
  env:string ->
  machine:Spf_sim.Machine.t ->
  engine:Spf_sim.Engine.t ->
  tscale:int ->
  string
