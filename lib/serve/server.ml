(* The `spf serve` daemon: accept loop, per-connection handler threads,
   and a dispatcher that drains queued requests into supervised batches
   on the domain pool.

   Request flow:

     handler thread:   read SUBMIT -> parse + key (Service.prepare)
                       -> sim-cache hit?  reply inline, never touch the
                          pool
                       -> miss: enqueue {prepared, cell}, block on cell
     dispatcher:       pop up to [batch_max] pending requests, run them
                       as one Supervisor.run_jobs batch over the pool,
                       fill each cell with the outcome
     handler thread:   render OK+body+DONE, or ERR from the
                       supervisor's classification

   Isolation is the supervisor's: a poisoned request (demand fault,
   fuel, verifier violation) raises on its pool domain, is classified
   Deterministic, and becomes that one client's ERR reply — the batch's
   other jobs and the fleet are untouched.  Deadlines ride the same
   watchdog the campaign runner uses. *)

module Supervisor = Spf_harness.Supervisor

type addr = Unix_sock of string | Tcp of int

type cfg = {
  addr : addr;
  jobs : int;  (* pool domains per batch *)
  batch_max : int;  (* max requests fused into one supervised batch *)
  deadline_s : float option;  (* per-request budget on the pool *)
  pass_cap : int;
  sim_cap : int;
}

let default_cfg addr =
  {
    addr;
    jobs = Spf_harness.Pool.default_jobs ();
    batch_max = 32;
    deadline_s = Some 30.;
    pass_cap = 512;
    sim_cap = 2048;
  }

(* A one-shot cell the handler blocks on until the dispatcher fills it. *)
type outcome = (Service.reply, string * string) result (* Error (class, msg) *)

type cell = {
  c_mutex : Mutex.t;
  c_cond : Condition.t;
  mutable c_value : outcome option;
}

let cell_create () =
  { c_mutex = Mutex.create (); c_cond = Condition.create (); c_value = None }

let cell_fill c v =
  Mutex.lock c.c_mutex;
  c.c_value <- Some v;
  Condition.signal c.c_cond;
  Mutex.unlock c.c_mutex

let cell_wait c =
  Mutex.lock c.c_mutex;
  while c.c_value = None do
    Condition.wait c.c_cond c.c_mutex
  done;
  let v = Option.get c.c_value in
  Mutex.unlock c.c_mutex;
  v

type pending = { p_prepared : Service.prepared; p_cell : cell }

type counters = {
  mutable requests : int;
  mutable inline_hits : int;
  mutable batches : int;
  mutable errors : int;
}

type t = {
  cfg : cfg;
  cache : Rcache.t;
  listen_fd : Unix.file_descr;
  queue : pending Queue.t;
  q_mutex : Mutex.t;
  q_cond : Condition.t;
  mutable stopping : bool;
  counters : counters;
  c_mutex : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
}

let cache t = t.cache

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Dispatcher.                                                         *)

let drain_batch t =
  with_lock t.q_mutex (fun () ->
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.q_cond t.q_mutex
      done;
      let rec pop acc n =
        if n = 0 || Queue.is_empty t.queue then List.rev acc
        else pop (Queue.pop t.queue :: acc) (n - 1)
      in
      pop [] t.cfg.batch_max)

let run_batch t batch =
  with_lock t.c_mutex (fun () ->
      t.counters.batches <- t.counters.batches + 1);
  let policy =
    { Supervisor.default_policy with deadline_s = t.cfg.deadline_s }
  in
  let opts = Supervisor.options ~policy ~jobs:t.cfg.jobs () in
  let jobs =
    List.map
      (fun p ->
        {
          Supervisor.key = p.p_prepared.Service.req.Proto.id;
          work = (fun ctx -> Service.run ~cache:t.cache ~ctx p.p_prepared);
          binfo = None;
        })
      batch
  in
  (* No journal is configured, so the encode/decode pair is never
     invoked — results stay in memory and flow back through the cells. *)
  let results =
    Supervisor.run_jobs opts
      ~encode:(fun _ -> "")
      ~decode:(fun _ -> None)
      jobs
  in
  List.iter2
    (fun p result ->
      let v =
        match result with
        | Ok (o : _ Supervisor.outcome) -> Ok o.Supervisor.value
        | Error (f : Supervisor.failure) ->
            with_lock t.c_mutex (fun () ->
                t.counters.errors <- t.counters.errors + 1);
            Error
              ( Supervisor.classification_to_string f.Supervisor.f_class,
                Service.describe_error f.Supervisor.f_exn )
      in
      cell_fill p.p_cell v)
    batch results

let dispatcher t =
  let rec loop () =
    let batch = drain_batch t in
    if batch <> [] then run_batch t batch;
    let continue =
      with_lock t.q_mutex (fun () ->
          not (t.stopping && Queue.is_empty t.queue))
    in
    if continue then loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Per-connection handler.                                             *)

let reply_lines oc lines =
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc

let us_since t0 = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)

let stats_lines t =
  let level name (s : Rcache.level_stats) =
    [
      Printf.sprintf "S %s_hits %d" name s.Rcache.hits;
      Printf.sprintf "S %s_misses %d" name s.Rcache.misses;
      Printf.sprintf "S %s_evictions %d" name s.Rcache.evictions;
      Printf.sprintf "S %s_entries %d" name s.Rcache.entries;
      Printf.sprintf "S %s_capacity %d" name s.Rcache.capacity;
    ]
  in
  let c =
    with_lock t.c_mutex (fun () ->
        ( t.counters.requests,
          t.counters.inline_hits,
          t.counters.batches,
          t.counters.errors ))
  in
  let requests, inline_hits, batches, errors = c in
  [ Proto.ok_line ~id:"stats" ~cache:"-" ]
  @ level "pass" (Rcache.pass_stats t.cache)
  @ level "sim" (Rcache.sim_stats t.cache)
  @ [
      Printf.sprintf "S requests %d" requests;
      Printf.sprintf "S inline_hits %d" inline_hits;
      Printf.sprintf "S batches %d" batches;
      Printf.sprintf "S errors %d" errors;
      Proto.done_line ~id:"stats" ~us:0;
    ]

let read_payload ic =
  let b = Buffer.create 1024 in
  let rec loop () =
    let line = input_line ic in
    if String.equal line Proto.terminator then Buffer.contents b
    else begin
      Buffer.add_string b line;
      Buffer.add_char b '\n';
      loop ()
    end
  in
  loop ()

let submit t oc ~id ~opts ~case_text =
  with_lock t.c_mutex (fun () ->
      t.counters.requests <- t.counters.requests + 1);
  let t0 = Unix.gettimeofday () in
  let err cls msg =
    with_lock t.c_mutex (fun () -> t.counters.errors <- t.counters.errors + 1);
    reply_lines oc [ Proto.err_line ~id ~cls ~msg ]
  in
  let ok (r : Service.reply) =
    reply_lines oc
      ((Proto.ok_line ~id ~cache:(Service.status_to_string r.Service.status)
       :: r.Service.body)
      @ [ Proto.done_line ~id ~us:(us_since t0) ])
  in
  match Proto.request_of ~id ~opts ~case_text with
  | Error msg -> err "protocol" msg
  | Ok req -> (
      match Service.prepare req with
      | exception exn -> err "deterministic" (Service.describe_error exn)
      | p -> (
          match Service.try_hit ~cache:t.cache p with
          | Some r ->
              with_lock t.c_mutex (fun () ->
                  t.counters.inline_hits <- t.counters.inline_hits + 1);
              ok r
          | None ->
              let cell = cell_create () in
              with_lock t.q_mutex (fun () ->
                  Queue.push { p_prepared = p; p_cell = cell } t.queue;
                  Condition.signal t.q_cond);
              (match cell_wait cell with
              | Ok r -> ok r
              | Error (cls, msg) -> err cls msg)))

let trigger_stop t =
  with_lock t.q_mutex (fun () ->
      t.stopping <- true;
      Condition.broadcast t.q_cond);
  (* Wake the accept loop and any handler blocked on a client read. *)
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
  (try Unix.close t.listen_fd with _ -> ());
  (match t.cfg.addr with
  | Unix_sock path -> ( try Unix.unlink path with _ -> ())
  | Tcp _ -> ());
  with_lock t.c_mutex (fun () ->
      List.iter
        (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
        t.conns)

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line -> (
        match Proto.parse_verb line with
        | Error msg ->
            reply_lines oc [ Proto.err_line ~id:"-" ~cls:"protocol" ~msg ];
            loop ()
        | Ok Proto.Ping ->
            reply_lines oc [ "PONG" ];
            loop ()
        | Ok Proto.Stats ->
            reply_lines oc (stats_lines t);
            loop ()
        | Ok Proto.Shutdown -> reply_lines oc [ "BYE" ]; trigger_stop t
        | Ok (Proto.Submit { id; opts }) -> (
            match read_payload ic with
            | exception (End_of_file | Sys_error _) -> ()
            | case_text ->
                submit t oc ~id ~opts ~case_text;
                loop ()))
  in
  (try loop () with Sys_error _ -> ());
  with_lock t.c_mutex (fun () ->
      t.conns <- List.filter (fun c -> c != fd) t.conns);
  try Unix.close fd with _ -> ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error _ -> () (* closed: stopping *)
    | exception Invalid_argument _ -> ()
    | fd, _ ->
        with_lock t.c_mutex (fun () -> t.conns <- fd :: t.conns);
        let th = Thread.create (fun () -> handle_conn t fd) () in
        with_lock t.c_mutex (fun () -> t.threads <- th :: t.threads);
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)

let listen addr =
  match addr with
  | Unix_sock path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

let start cfg =
  let t =
    {
      cfg;
      cache = Rcache.create ~pass_cap:cfg.pass_cap ~sim_cap:cfg.sim_cap ();
      listen_fd = listen cfg.addr;
      queue = Queue.create ();
      q_mutex = Mutex.create ();
      q_cond = Condition.create ();
      stopping = false;
      counters = { requests = 0; inline_hits = 0; batches = 0; errors = 0 };
      c_mutex = Mutex.create ();
      conns = [];
      threads = [];
    }
  in
  let acc = Thread.create (fun () -> accept_loop t) () in
  let disp = Thread.create (fun () -> dispatcher t) () in
  with_lock t.c_mutex (fun () -> t.threads <- [ disp; acc ]);
  t

let stop t = trigger_stop t

let wait t =
  let rec join () =
    let th =
      with_lock t.c_mutex (fun () ->
          match t.threads with
          | [] -> None
          | th :: rest ->
              t.threads <- rest;
              Some th)
    in
    match th with
    | Some th ->
        Thread.join th;
        join ()
    | None -> ()
  in
  join ()
