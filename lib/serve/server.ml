(* The `spf serve` daemon: accept loop, per-connection handler threads,
   and a dispatcher that drains queued requests into supervised batches
   on the domain pool.

   Request flow:

     handler thread:   read SUBMIT -> parse + key (Service.prepare)
                       -> sim-cache hit?  reply inline, never touch the
                          pool
                       -> miss: enqueue {prepared, cell}, block on cell
     dispatcher:       pop up to [batch_max] pending requests, run them
                       as one Supervisor.run_jobs batch over the pool,
                       fill each cell with the outcome
     handler thread:   render OK+body+DONE, or ERR from the
                       supervisor's classification

   Isolation is the supervisor's: a poisoned request (demand fault,
   fuel, verifier violation) raises on its pool domain, is classified
   Deterministic, and becomes that one client's ERR reply — the batch's
   other jobs and the fleet are untouched.  Deadlines ride the same
   watchdog the campaign runner uses.

   Hostile-reality posture (see docs/SERVING.md "Overload, drain, and
   warm-start"):

   - admission control: past [max_conns] live connections a new client
     gets one `ERR - busy retry-after=<ms> ...` line and a close; past
     [max_queue] queued misses a SUBMIT gets the same classified busy
     reply instead of unbounded queueing.  Nothing is ever silently
     dropped, and both sheds are counted in STATS;
   - bounded reads: all client input goes through {!Ioline} (per-read
     idle deadline, per-line cap) and SUBMIT payloads are additionally
     capped at [max_request_bytes] — a slowloris or never-terminating
     sender costs one classified reply, not daemon memory;
   - client-gone writes: SIGPIPE is ignored and EPIPE/ECONNRESET on a
     reply write just ends that connection's handler (counted, never
     fatal);
   - graceful drain: {!stop} (also the SHUTDOWN verb; the CLI wires
     SIGTERM/SIGINT to it) stops accepting, wakes idle connections,
     lets busy ones finish under [drain_deadline_s] (a watchdog
     force-closes stragglers' sockets at the deadline), waits for every
     handler to exit, then snapshots the cache journal.  Every request
     that was in flight when the drain started is answered;
   - warm start: with [journal_dir] set the result cache replays its
     crash-safe journal on startup, so a restarted daemon answers
     previously-seen work from cache with byte-identical bodies. *)

module Supervisor = Spf_harness.Supervisor

type addr = Unix_sock of string | Tcp of int

type cfg = {
  addr : addr;
  jobs : int;  (* pool domains per batch *)
  batch_max : int;  (* max requests fused into one supervised batch *)
  deadline_s : float option;  (* per-request budget on the pool *)
  pass_cap : int;
  sim_cap : int;
  journal_dir : string option;  (* cache journal for warm restarts *)
  max_conns : int;  (* live-connection admission budget *)
  max_queue : int;  (* queued-miss admission budget *)
  max_request_bytes : int;  (* SUBMIT payload budget *)
  idle_timeout_s : float;  (* per-read idle deadline on client input *)
  drain_deadline_s : float;  (* budget for in-flight work at drain *)
}

let default_cfg addr =
  {
    addr;
    jobs = Spf_harness.Pool.default_jobs ();
    batch_max = 32;
    deadline_s = Some 30.;
    pass_cap = 512;
    sim_cap = 2048;
    journal_dir = None;
    max_conns = 256;
    max_queue = 1024;
    max_request_bytes = 4 lsl 20;
    idle_timeout_s = 30.;
    drain_deadline_s = 10.;
  }

(* A one-shot cell the handler blocks on until the dispatcher fills it. *)
type outcome = (Service.reply, string * string) result (* Error (class, msg) *)

type cell = {
  c_mutex : Mutex.t;
  c_cond : Condition.t;
  mutable c_value : outcome option;
}

let cell_create () =
  { c_mutex = Mutex.create (); c_cond = Condition.create (); c_value = None }

let cell_fill c v =
  Mutex.lock c.c_mutex;
  if c.c_value = None then begin
    c.c_value <- Some v;
    Condition.signal c.c_cond
  end;
  Mutex.unlock c.c_mutex

let cell_wait c =
  Mutex.lock c.c_mutex;
  while c.c_value = None do
    Condition.wait c.c_cond c.c_mutex
  done;
  let v = Option.get c.c_value in
  Mutex.unlock c.c_mutex;
  v

type pending = { p_prepared : Service.prepared; p_cell : cell }

type counters = {
  mutable requests : int;
  mutable inline_hits : int;
  mutable batches : int;
  mutable errors : int;
  mutable shed_conns : int;  (* connections refused at max_conns *)
  mutable shed_requests : int;  (* SUBMITs refused busy (queue/drain) *)
  mutable client_gone : int;  (* EPIPE/ECONNRESET/EOF on reply write *)
  mutable idle_timeouts : int;  (* reads that hit the idle deadline *)
  mutable oversized : int;  (* requests past max_request_bytes *)
}

type conn = { fd : Unix.file_descr; mutable busy : bool }
(* [busy] is true while the handler is mid-request (verb read through
   reply written): the drain trigger only force-wakes idle conns, so
   in-flight requests finish and get answered. *)

type t = {
  cfg : cfg;
  cache : Rcache.t;
  listen_fd : Unix.file_descr;
  queue : pending Queue.t;
  q_mutex : Mutex.t;
  q_cond : Condition.t;
  mutable draining : bool;  (* under q_mutex *)
  counters : counters;
  c_mutex : Mutex.t;  (* guards counters, conns, handlers, threads *)
  h_cond : Condition.t;  (* signalled when a handler exits *)
  mutable conns : conn list;
  mutable handlers : int;  (* live handler threads *)
  mutable threads : Thread.t list;  (* accept, dispatcher, watchdog *)
}

let cache t = t.cache

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let bump t f = with_lock t.c_mutex (fun () -> f t.counters)
let is_draining t = with_lock t.q_mutex (fun () -> t.draining)

(* ------------------------------------------------------------------ *)
(* Dispatcher.                                                         *)

let drain_batch t =
  with_lock t.q_mutex (fun () ->
      while Queue.is_empty t.queue && not t.draining do
        Condition.wait t.q_cond t.q_mutex
      done;
      let rec pop acc n =
        if n = 0 || Queue.is_empty t.queue then List.rev acc
        else pop (Queue.pop t.queue :: acc) (n - 1)
      in
      pop [] t.cfg.batch_max)

let run_batch t batch =
  bump t (fun c -> c.batches <- c.batches + 1);
  let policy =
    { Supervisor.default_policy with deadline_s = t.cfg.deadline_s }
  in
  let opts = Supervisor.options ~policy ~jobs:t.cfg.jobs () in
  let jobs =
    List.map
      (fun p ->
        {
          Supervisor.key = p.p_prepared.Service.req.Proto.id;
          work = (fun ctx -> Service.run ~cache:t.cache ~ctx p.p_prepared);
          binfo = None;
        })
      batch
  in
  (* The supervisor's journal hooks are unused here: the serve-side
     journal lives inside Rcache, which records results as they are
     inserted on the pool domains. *)
  match
    Supervisor.run_jobs opts
      ~encode:(fun _ -> "")
      ~decode:(fun _ -> None)
      jobs
  with
  | exception exn ->
      (* A batch-level failure must not leave handlers blocked on
         unfilled cells: every request in it gets a classified reply. *)
      let msg = Service.describe_error exn in
      List.iter
        (fun p ->
          bump t (fun c -> c.errors <- c.errors + 1);
          cell_fill p.p_cell (Error ("transient", msg)))
        batch
  | results ->
      List.iter2
        (fun p result ->
          let v =
            match result with
            | Ok (o : _ Supervisor.outcome) -> Ok o.Supervisor.value
            | Error (f : Supervisor.failure) ->
                bump t (fun c -> c.errors <- c.errors + 1);
                Error
                  ( Supervisor.classification_to_string f.Supervisor.f_class,
                    Service.describe_error f.Supervisor.f_exn )
          in
          cell_fill p.p_cell v)
        batch results

let dispatcher t =
  let rec loop () =
    let batch = drain_batch t in
    if batch <> [] then run_batch t batch;
    let continue =
      with_lock t.q_mutex (fun () ->
          not (t.draining && Queue.is_empty t.queue))
    in
    if continue then loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Per-connection handler.                                             *)

let us_since t0 = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)

let stats_lines t =
  let level name (s : Rcache.level_stats) =
    [
      Printf.sprintf "S %s_hits %d" name s.Rcache.hits;
      Printf.sprintf "S %s_misses %d" name s.Rcache.misses;
      Printf.sprintf "S %s_evictions %d" name s.Rcache.evictions;
      Printf.sprintf "S %s_entries %d" name s.Rcache.entries;
      Printf.sprintf "S %s_capacity %d" name s.Rcache.capacity;
    ]
  in
  let counter_lines =
    with_lock t.c_mutex (fun () ->
        let c = t.counters in
        [
          Printf.sprintf "S requests %d" c.requests;
          Printf.sprintf "S inline_hits %d" c.inline_hits;
          Printf.sprintf "S batches %d" c.batches;
          Printf.sprintf "S errors %d" c.errors;
          Printf.sprintf "S shed_conns %d" c.shed_conns;
          Printf.sprintf "S shed_requests %d" c.shed_requests;
          Printf.sprintf "S client_gone %d" c.client_gone;
          Printf.sprintf "S idle_timeouts %d" c.idle_timeouts;
          Printf.sprintf "S oversized %d" c.oversized;
          Printf.sprintf "S open_conns %d" (List.length t.conns);
          Printf.sprintf "S active_handlers %d" t.handlers;
        ])
  in
  let j = Rcache.journal_stats t.cache in
  let journal_lines =
    [
      Printf.sprintf "S journaled %d" (if j.Rcache.journaled then 1 else 0);
      Printf.sprintf "S journal_replayed_pass %d" j.Rcache.replayed_pass;
      Printf.sprintf "S journal_replayed_sim %d" j.Rcache.replayed_sim;
      Printf.sprintf "S journal_appends %d" j.Rcache.appends;
      Printf.sprintf "S journal_compactions %d" j.Rcache.compactions;
      Printf.sprintf "S journal_recovered_truncated %d"
        (if j.Rcache.recovered_truncated then 1 else 0);
    ]
  in
  [ Proto.ok_line ~id:"stats" ~cache:"-" ]
  @ level "pass" (Rcache.pass_stats t.cache)
  @ level "sim" (Rcache.sim_stats t.cache)
  @ counter_lines @ journal_lines
  @ [
      Printf.sprintf "S draining %d" (if is_draining t then 1 else 0);
      Proto.done_line ~id:"stats" ~us:0;
    ]

(* Read a SUBMIT payload through the bounded reader, holding the total
   under the request-bytes budget. *)
let read_payload rd ~budget =
  let b = Buffer.create 1024 in
  let rec loop () =
    match Ioline.read_line rd with
    | Ioline.Line line when String.equal line Proto.terminator ->
        `Payload (Buffer.contents b)
    | Ioline.Line line ->
        if Buffer.length b + String.length line + 1 > budget then `Oversized
        else begin
          Buffer.add_string b line;
          Buffer.add_char b '\n';
          loop ()
        end
    | Ioline.Eof -> `Eof
    | Ioline.Timeout -> `Timeout
    | Ioline.Overflow -> `Oversized
  in
  loop ()

(* [send] returns false when the client vanished mid-write (EPIPE /
   ECONNRESET / closed fd): counted, the handler just ends. *)
let submit t send ~id ~opts ~case_text =
  bump t (fun c -> c.requests <- c.requests + 1);
  let t0 = Unix.gettimeofday () in
  let err cls msg =
    bump t (fun c -> c.errors <- c.errors + 1);
    send [ Proto.err_line ~id ~cls ~msg ]
  in
  let ok (r : Service.reply) =
    send
      ((Proto.ok_line ~id ~cache:(Service.status_to_string r.Service.status)
       :: r.Service.body)
      @ [ Proto.done_line ~id ~us:(us_since t0) ])
  in
  match Proto.request_of ~id ~opts ~case_text with
  | Error msg -> err "protocol" msg
  | Ok req -> (
      match Service.prepare req with
      | exception exn -> err "deterministic" (Service.describe_error exn)
      | p -> (
          match Service.try_hit ~cache:t.cache p with
          | Some r ->
              bump t (fun c -> c.inline_hits <- c.inline_hits + 1);
              ok r
          | None -> (
              let cell = cell_create () in
              let verdict =
                with_lock t.q_mutex (fun () ->
                    if t.draining then `Draining
                    else if Queue.length t.queue >= t.cfg.max_queue then `Full
                    else begin
                      Queue.push { p_prepared = p; p_cell = cell } t.queue;
                      Condition.signal t.q_cond;
                      `Queued
                    end)
              in
              match verdict with
              | `Queued -> (
                  match cell_wait cell with
                  | Ok r -> ok r
                  | Error (cls, msg) -> err cls msg)
              | `Full ->
                  bump t (fun c -> c.shed_requests <- c.shed_requests + 1);
                  send
                    [
                      Proto.busy_line ~id ~retry_after_ms:250
                        ~msg:"request queue full";
                    ]
              | `Draining ->
                  bump t (fun c -> c.shed_requests <- c.shed_requests + 1);
                  send
                    [
                      Proto.busy_line ~id ~retry_after_ms:1000
                        ~msg:"server draining";
                    ])))

let drain_watchdog t =
  let deadline = Unix.gettimeofday () +. t.cfg.drain_deadline_s in
  let rec loop () =
    let idle = with_lock t.c_mutex (fun () -> t.handlers = 0) in
    if idle then ()
    else if Unix.gettimeofday () >= deadline then
      (* Out of patience: force-close every remaining socket.  Blocked
         reads return Eof, pending writes fail client-gone, and the
         handlers fall through to their accounting. *)
      with_lock t.c_mutex (fun () ->
          List.iter
            (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ())
            t.conns)
    else begin
      Thread.delay 0.05;
      loop ()
    end
  in
  loop ()

let trigger_drain t =
  let first =
    with_lock t.q_mutex (fun () ->
        if t.draining then false
        else begin
          t.draining <- true;
          Condition.broadcast t.q_cond;
          true
        end)
  in
  if first then begin
    (* Stop accepting and release the address. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (match t.cfg.addr with
    | Unix_sock path -> ( try Unix.unlink path with _ -> ())
    | Tcp _ -> ());
    (* Wake idle connections (blocked in select waiting for a verb);
       busy ones finish their in-flight request first and exit at the
       top of their loop.  The watchdog handles stragglers. *)
    with_lock t.c_mutex (fun () ->
        List.iter
          (fun c ->
            if not c.busy then
              try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ())
          t.conns);
    let wd = Thread.create (fun () -> drain_watchdog t) () in
    with_lock t.c_mutex (fun () -> t.threads <- wd :: t.threads)
  end

let handle_conn t conn =
  let oc = Unix.out_channel_of_descr conn.fd in
  let rd =
    Ioline.create ~max_line:t.cfg.max_request_bytes
      ~idle_s:t.cfg.idle_timeout_s conn.fd
  in
  let send lines =
    match
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      flush oc
    with
    | () -> true
    | exception (Sys_error _ | Unix.Unix_error _) ->
        bump t (fun c -> c.client_gone <- c.client_gone + 1);
        false
  in
  let set_busy v = with_lock t.c_mutex (fun () -> conn.busy <- v) in
  let rec loop () =
    if is_draining t then ()
    else
      match Ioline.read_line rd with
      | Ioline.Eof -> ()
      | Ioline.Timeout ->
          bump t (fun c -> c.idle_timeouts <- c.idle_timeouts + 1);
          ignore
            (send
               [
                 Proto.err_line ~id:"-" ~cls:"timeout"
                   ~msg:"idle timeout waiting for a request";
               ])
      | Ioline.Overflow ->
          bump t (fun c -> c.oversized <- c.oversized + 1);
          ignore
            (send
               [
                 Proto.err_line ~id:"-" ~cls:"protocol"
                   ~msg:
                     (Printf.sprintf "request line exceeds %d bytes"
                        t.cfg.max_request_bytes);
               ])
      | Ioline.Line line ->
          set_busy true;
          let continue = dispatch line in
          set_busy false;
          if continue then loop ()
  and dispatch line =
    match Proto.parse_verb line with
    | Error msg -> send [ Proto.err_line ~id:"-" ~cls:"protocol" ~msg ]
    | Ok Proto.Ping -> send [ "PONG" ]
    | Ok Proto.Stats -> send (stats_lines t)
    | Ok Proto.Shutdown ->
        ignore (send [ "BYE" ]);
        trigger_drain t;
        false
    | Ok (Proto.Submit { id; opts }) -> (
        match read_payload rd ~budget:t.cfg.max_request_bytes with
        | `Payload case_text -> submit t send ~id ~opts ~case_text
        | `Eof -> false
        | `Timeout ->
            bump t (fun c -> c.idle_timeouts <- c.idle_timeouts + 1);
            ignore
              (send
                 [
                   Proto.err_line ~id ~cls:"timeout"
                     ~msg:"idle timeout mid-payload";
                 ]);
            false
        | `Oversized ->
            bump t (fun c -> c.oversized <- c.oversized + 1);
            ignore
              (send
                 [
                   Proto.err_line ~id ~cls:"protocol"
                     ~msg:
                       (Printf.sprintf "request exceeds %d bytes"
                          t.cfg.max_request_bytes);
                 ]);
            false)
  in
  loop ()

let handler_main t conn =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close conn.fd with _ -> ());
      with_lock t.c_mutex (fun () ->
          t.conns <- List.filter (fun c -> c != conn) t.conns;
          t.handlers <- t.handlers - 1;
          Condition.broadcast t.h_cond))
    (fun () -> try handle_conn t conn with _ -> ())

(* Refused at the connection budget: one classified busy line, best
   effort (the client may already be gone), then close. *)
let shed_connection fd =
  let line = Proto.busy_line ~id:"-" ~retry_after_ms:500 ~msg:"connection capacity reached" ^ "\n" in
  (try ignore (Unix.write_substring fd line 0 (String.length line))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with _ -> ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error _ -> () (* closed: draining *)
    | exception Invalid_argument _ -> ()
    | fd, _ ->
        let conn = { fd; busy = false } in
        let admitted =
          with_lock t.c_mutex (fun () ->
              if List.length t.conns >= t.cfg.max_conns then begin
                t.counters.shed_conns <- t.counters.shed_conns + 1;
                false
              end
              else begin
                t.conns <- conn :: t.conns;
                t.handlers <- t.handlers + 1;
                true
              end)
        in
        if admitted then
          ignore (Thread.create (fun () -> handler_main t conn) ())
        else shed_connection fd;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)

let listen addr =
  match addr with
  | Unix_sock path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

let start cfg =
  (* A vanished client must cost a counted write error, not the
     process: EPIPE instead of SIGPIPE.  (No-op on platforms without
     SIGPIPE.) *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let cache =
    Rcache.create ~pass_cap:cfg.pass_cap ~sim_cap:cfg.sim_cap
      ?journal_dir:cfg.journal_dir ()
  in
  let t =
    {
      cfg;
      cache;
      listen_fd = listen cfg.addr;
      queue = Queue.create ();
      q_mutex = Mutex.create ();
      q_cond = Condition.create ();
      draining = false;
      counters =
        {
          requests = 0;
          inline_hits = 0;
          batches = 0;
          errors = 0;
          shed_conns = 0;
          shed_requests = 0;
          client_gone = 0;
          idle_timeouts = 0;
          oversized = 0;
        };
      c_mutex = Mutex.create ();
      h_cond = Condition.create ();
      conns = [];
      handlers = 0;
      threads = [];
    }
  in
  let acc = Thread.create (fun () -> accept_loop t) () in
  let disp = Thread.create (fun () -> dispatcher t) () in
  with_lock t.c_mutex (fun () -> t.threads <- [ disp; acc ]);
  t

let stop t = trigger_drain t

let wait t =
  let rec join_all () =
    let th =
      with_lock t.c_mutex (fun () ->
          match t.threads with
          | [] -> None
          | th :: rest ->
              t.threads <- rest;
              Some th)
    in
    match th with
    | Some th ->
        Thread.join th;
        join_all ()
    | None -> ()
  in
  join_all ();
  (* accept + dispatcher are down; now wait out the handlers (the drain
     watchdog bounds how long a straggler can hold its socket). *)
  with_lock t.c_mutex (fun () ->
      while t.handlers > 0 do
        Condition.wait t.h_cond t.c_mutex
      done);
  join_all ();
  (* Everything answered; snapshot the journal so the next start
     replays exactly the live cache. *)
  Rcache.flush_journal t.cache
