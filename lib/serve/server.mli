(** The [spf serve] daemon: accept loop, per-connection handler threads,
    and a dispatcher that fuses queued cache misses into supervised
    batches on the domain pool.

    Sim-level cache hits are answered inline on the connection thread;
    misses queue for the next batch.  Poisoned requests (demand faults,
    fuel exhaustion, verifier violations) are classified by the
    supervisor and become that one client's [ERR] reply — they never
    take down the batch or the server.  See docs/SERVING.md. *)

type addr = Unix_sock of string | Tcp of int
(** TCP binds the loopback interface only. *)

type cfg = {
  addr : addr;
  jobs : int;  (** pool domains per batch *)
  batch_max : int;  (** max requests fused into one supervised batch *)
  deadline_s : float option;  (** per-request wall-clock budget *)
  pass_cap : int;  (** pass-level cache capacity, entries *)
  sim_cap : int;  (** sim-level cache capacity, entries *)
  journal_dir : string option;
      (** crash-safe cache journal directory; replayed on start for a
          warm cache, snapshotted on drain (see {!Cjournal}) *)
  max_conns : int;
      (** live-connection admission budget; excess connections get one
          [ERR - busy retry-after=...] line and a close *)
  max_queue : int;
      (** queued-miss admission budget; excess SUBMITs get a classified
          busy reply instead of unbounded queueing *)
  max_request_bytes : int;  (** SUBMIT payload budget *)
  idle_timeout_s : float;
      (** per-read idle deadline on client input (slowloris defense) *)
  drain_deadline_s : float;
      (** how long in-flight work may run after {!stop} before the
          watchdog force-closes remaining sockets *)
}

val default_cfg : addr -> cfg
(** Pool-sized jobs, batches of 32, 30 s deadline, 512/2048 cache
    entries, no journal, 256 conns / 1024 queued, 4 MiB requests, 30 s
    idle timeout, 10 s drain deadline. *)

type t

val start : cfg -> t
(** Bind, listen and return immediately; serving happens on background
    threads.  Ignores [SIGPIPE] process-wide (vanished clients must
    cost a counted write error, not the process).
    @raise Unix.Unix_error if the address cannot be bound.
    @raise Failure if [journal_dir] holds a corrupt or
    identity-mismatched journal. *)

val stop : t -> unit
(** Initiate a graceful drain: stop accepting, answer in-flight
    requests (bounded by [drain_deadline_s]), then let {!wait} flush
    the journal.  Idempotent; also triggered by the [SHUTDOWN] verb
    (the CLI wires SIGTERM/SIGINT here too). *)

val wait : t -> unit
(** Block until the server has fully stopped — threads joined, every
    handler exited, journal snapshotted. *)

val cache : t -> Rcache.t
(** The shared result cache (exposed for in-process loadtests and
    tests). *)
