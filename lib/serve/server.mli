(** The [spf serve] daemon: accept loop, per-connection handler threads,
    and a dispatcher that fuses queued cache misses into supervised
    batches on the domain pool.

    Sim-level cache hits are answered inline on the connection thread;
    misses queue for the next batch.  Poisoned requests (demand faults,
    fuel exhaustion, verifier violations) are classified by the
    supervisor and become that one client's [ERR] reply — they never
    take down the batch or the server.  See docs/SERVING.md. *)

type addr = Unix_sock of string | Tcp of int
(** TCP binds the loopback interface only. *)

type cfg = {
  addr : addr;
  jobs : int;  (** pool domains per batch *)
  batch_max : int;  (** max requests fused into one supervised batch *)
  deadline_s : float option;  (** per-request wall-clock budget *)
  pass_cap : int;  (** pass-level cache capacity, entries *)
  sim_cap : int;  (** sim-level cache capacity, entries *)
}

val default_cfg : addr -> cfg
(** Pool-sized jobs, batches of 32, 30 s deadline, 512/2048 cache
    entries. *)

type t

val start : cfg -> t
(** Bind, listen and return immediately; serving happens on background
    threads.  @raise Unix.Unix_error if the address cannot be bound. *)

val stop : t -> unit
(** Initiate shutdown: stop accepting, wake blocked threads, drain the
    queue.  Idempotent; also triggered by the [SHUTDOWN] verb. *)

val wait : t -> unit
(** Block until the server has fully stopped (all threads joined). *)

val cache : t -> Rcache.t
(** The shared result cache (exposed for in-process loadtests and
    tests). *)
