(* One request through verify -> pass -> simulate, memoised at both
   cache levels.

   The byte-identity discipline: the body a client sees is either the
   cached string (hits) or the string that was just rendered and cached
   (cold) — one rendering path, one canonical transformed program
   ([Parser.parse pass_entry.tfunc_text], cold or hot), so a hit can
   never differ from its cold run by a byte.

   Everything here runs on a pool domain under the supervisor: the
   cancellation token in the {!Spf_harness.Runner.ctx} is threaded into
   the simulation so a deadline fires mid-run, and every deliberate
   failure (parse error, verifier violation, demand fault, fuel) is a
   deterministic property of the request — the supervisor classifies it,
   the server maps it to an [ERR] reply, and the fleet keeps going. *)

module Ir = Spf_ir.Ir
module Parser = Spf_ir.Parser
module Printer = Spf_ir.Printer
module Verifier = Spf_ir.Verifier
module Pass = Spf_core.Pass
module Interp = Spf_sim.Interp
module Stats = Spf_sim.Stats
module Case = Spf_valid.Case
module Runner = Spf_harness.Runner
module Profile_guided = Spf_harness.Profile_guided

type status = Cold | Pass_hit | Sim_hit

let status_to_string = function
  | Cold -> "cold"
  | Pass_hit -> "pass-hit"
  | Sim_hit -> "sim-hit"

type reply = { body : string list; status : status }

type prepared = {
  req : Proto.request;
  case : Case.t;
  pass_key : string;
  sim_key : string;
}

(* Parse and key the request.  Runs on the connection thread (cheap, and
   the sim key enables the inline fast path); a malformed payload
   surfaces here as [Parse_error]. *)
let prepare (req : Proto.request) =
  let case = Case.parse req.case_text in
  let sig_digest =
    Digest.to_hex (Digest.string (Ir.signature case.Case.func))
  in
  let pass_key = Rcache.pass_key ~sig_digest ~config:req.config in
  let sim_key =
    Rcache.sim_key ~pass_key ~env:(Rcache.env_digest case)
      ~machine:req.machine ~engine:req.engine ~tscale:req.tscale
  in
  { req; case; pass_key; sim_key }

let try_hit ~cache p =
  match Rcache.find_sim cache p.sim_key with
  | Some body ->
      Some { body = String.split_on_char '\n' body; status = Sim_hit }
  | None -> None

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let render_report (ld : Pass.loop_distance list) ~n_prefetches ~n_support =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "R prefetches=%d support=%d loops=%d" n_prefetches
       n_support (List.length ld));
  List.iter
    (fun (d : Pass.loop_distance) ->
      Buffer.add_string b
        (Printf.sprintf "\nR loop bb%d: c=%d %s %s" d.Pass.header
           d.Pass.distance
           (if d.Pass.enabled then "enabled" else "disabled")
           (match d.Pass.dist_slot with
           | Some s -> Printf.sprintf "reg=%d" s
           | None -> "static")))
    ld;
  Buffer.contents b

let render_result ~report_text ~(stats : Stats.t) ~retval =
  let b = Buffer.create 512 in
  Buffer.add_string b report_text;
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "\nS %s %d" name v))
    (Stats.fields stats);
  Buffer.add_string b
    (match retval with
    | Some v -> Printf.sprintf "\nV %d" v
    | None -> "\nV -");
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The pipeline.                                                       *)

let compile ~cache p =
  match Rcache.find_pass cache p.pass_key with
  | Some e -> (e, Pass_hit)
  | None ->
      (* The pass mutates in place; [p.case.func] is this request's own
         parse, so mutation is private.  Verify on both sides: garbage
         in is rejected, and a pass bug cannot serve garbage out. *)
      Verifier.check_exn p.case.Case.func;
      let report = Pass.run ~config:p.req.Proto.config p.case.Case.func in
      Verifier.check_exn p.case.Case.func;
      let n_prefetches, n_support =
        Pass.count_prefetches report.Pass.decisions
      in
      let e =
        {
          Rcache.tfunc_text = Printer.func_to_string p.case.Case.func;
          report_text =
            render_report report.Pass.loop_distances ~n_prefetches ~n_support;
          loop_distances = report.Pass.loop_distances;
          adaptive = report.Pass.adaptive;
        }
      in
      Rcache.add_pass cache p.pass_key e;
      (e, Cold)

let simulate ~(ctx : Runner.ctx) p (e : Rcache.pass_entry) =
  (* The canonical simulated program is the re-parse of the cached text
     on every path — the cold run included — so cold and pass-hit
     simulate structurally identical functions by construction (the
     printer round-trips instruction ids). *)
  let tfunc = Parser.parse e.Rcache.tfunc_text in
  let tuner =
    Profile_guided.tuner_of_distances ~machine:p.req.Proto.machine tfunc
      ~adaptive:e.Rcache.adaptive e.Rcache.loop_distances
  in
  let env = Case.to_env p.case in
  let mem, args = env.Spf_valid.Model.fresh () in
  let engine =
    match ctx.Runner.engine with Some e -> e | None -> p.req.Proto.engine
  in
  let inst =
    Interp.create ~machine:p.req.Proto.machine ~tscale:p.req.Proto.tscale
      ?cancel:ctx.Runner.cancel ?tuner ~engine ~mem ~args tfunc
  in
  Interp.run ~fuel:env.Spf_valid.Model.fuel inst;
  (Interp.stats inst, Interp.retval inst)

(* Full pipeline for one prepared request; runs on a pool domain.
   @raise on any deliberate failure — the supervisor classifies it. *)
let run ~cache ~ctx p =
  match Rcache.find_sim cache p.sim_key with
  | Some body -> { body = String.split_on_char '\n' body; status = Sim_hit }
  | None ->
      let e, status = compile ~cache p in
      let stats, retval = simulate ~ctx p e in
      let body = render_result ~report_text:e.Rcache.report_text ~stats ~retval in
      Rcache.add_sim cache p.sim_key body;
      { body = String.split_on_char '\n' body; status }

(* Human-readable single-line message for an [ERR] reply. *)
let describe_error = function
  | Parser.Parse_error { line; msg } ->
      Printf.sprintf "parse error at line %d: %s" line msg
  | Interp.Trap fault -> "demand fault: " ^ Interp.fault_to_string fault
  | Interp.Fuel_exhausted -> "fuel exhausted (program spins?)"
  | Invalid_argument msg -> "invalid program: " ^ msg
  | Failure msg -> msg
  | Interp.Cancelled _ -> "deadline exceeded"
  | exn -> Printexc.to_string exn
