(** One request through verify -> pass -> simulate, memoised at both
    levels of the {!Rcache}.

    The byte-identity discipline: one rendering path and one canonical
    transformed program (the re-parse of the cached transformed-IR text,
    cold or hot), so a cache hit can never differ from its cold run by a
    byte.  All failure modes raise and are classified by the
    supervisor. *)

type status = Cold | Pass_hit | Sim_hit

val status_to_string : status -> string

type reply = { body : string list; status : status }

type prepared = {
  req : Proto.request;
  case : Spf_valid.Case.t;
  pass_key : string;
  sim_key : string;
}

val prepare : Proto.request -> prepared
(** Parse the payload and build both cache keys — cheap enough for the
    connection thread, enabling the inline {!try_hit} fast path.
    @raise Spf_ir.Parser.Parse_error on a malformed payload. *)

val try_hit : cache:Rcache.t -> prepared -> reply option
(** The fast path: a sim-level hit answered without touching the pool. *)

val run : cache:Rcache.t -> ctx:Spf_harness.Runner.ctx -> prepared -> reply
(** The full pipeline on a pool domain: sim lookup, then pass lookup or
    verify+pass+cache, then simulate and cache the rendered body.
    Honours the ctx's engine override and cancellation token.
    @raise Spf_sim.Interp.Trap on a demand fault (poisoned request),
    {!Spf_sim.Interp.Fuel_exhausted}, [Invalid_argument] on verifier
    violations, {!Spf_sim.Interp.Cancelled} on deadline. *)

val describe_error : exn -> string
(** Single-line human-readable message for an [ERR] reply. *)
