module Ir = Spf_ir.Ir
module Cfg = Spf_ir.Cfg
module Dom = Spf_ir.Dom
module Loops = Spf_ir.Loops

(* Per-loop attribution of memory behaviour, engine-independent by
   construction: the memory system calls in with the demand load's pc and
   what happened to it, and everything else is a table lookup into arrays
   indexed by the innermost natural loop containing that pc's block.

   One instance observes one core's run.  The same counters feed two
   consumers: `spf profile` aggregates a whole run into a profile file,
   and the adaptive Tuner diffs snapshots of them at window boundaries. *)

type t = {
  loop_of_pc : int array; (* instr id -> loop slot, -1 outside all loops *)
  headers : int array; (* loop slot -> header block id *)
  demand : int array; (* demand loads *)
  miss : int array; (* demand loads filled from DRAM *)
  late : int array; (* demand loads that caught a sw-prefetch fill in flight *)
  unused : int array; (* sw-prefetched lines evicted unused, by prefetch pc *)
  stall : int array; (* scaled cycles demand loads spent beyond issue *)
  mutable total_demand : int; (* across all loops and straight-line code *)
}

let create (func : Ir.func) =
  let cfg = Cfg.build func in
  let dom = Dom.build cfg in
  let loops = Loops.analyze func cfg dom in
  let n = Array.length (Loops.loops loops) in
  let headers = Array.map (fun (l : Loops.loop) -> l.header) (Loops.loops loops) in
  let loop_of_pc = Array.make (Array.length func.Ir.itab) (-1) in
  Ir.iter_instrs func (fun i ->
      match Loops.innermost loops i.Ir.block with
      | Some idx -> loop_of_pc.(i.Ir.id) <- idx
      | None -> ());
  {
    loop_of_pc;
    headers;
    demand = Array.make (max n 1) 0;
    miss = Array.make (max n 1) 0;
    late = Array.make (max n 1) 0;
    unused = Array.make (max n 1) 0;
    stall = Array.make (max n 1) 0;
    total_demand = 0;
  }

let n_loops t = Array.length t.headers
let header t slot = t.headers.(slot)

let slot_of_pc t pc =
  if pc >= 0 && pc < Array.length t.loop_of_pc then t.loop_of_pc.(pc) else -1

let slot_of_header t h =
  let rec go k =
    if k >= Array.length t.headers then -1
    else if t.headers.(k) = h then k
    else go (k + 1)
  in
  go 0

let on_demand t ~pc ~dram ~late ~stall =
  t.total_demand <- t.total_demand + 1;
  let s = slot_of_pc t pc in
  if s >= 0 then begin
    t.demand.(s) <- t.demand.(s) + 1;
    if dram then t.miss.(s) <- t.miss.(s) + 1;
    if late then t.late.(s) <- t.late.(s) + 1;
    if stall > 0 then t.stall.(s) <- t.stall.(s) + stall
  end

let on_unused t ~pf_pc =
  let s = slot_of_pc t pf_pc in
  if s >= 0 then t.unused.(s) <- t.unused.(s) + 1

let pp fmt t =
  Format.fprintf fmt "per-loop attribution (%d demand loads total):@."
    t.total_demand;
  Array.iteri
    (fun s h ->
      if t.demand.(s) > 0 || t.unused.(s) > 0 then
        Format.fprintf fmt
          "  loop bb%d: demand=%d miss=%d late=%d unused=%d stall=%d@." h
          t.demand.(s) t.miss.(s) t.late.(s) t.unused.(s) t.stall.(s))
    t.headers
