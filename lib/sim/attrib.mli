(** Per-loop attribution of memory behaviour: demand loads, DRAM misses,
    prefetch timeliness, and stall cycles bucketed by the innermost
    natural loop containing each access's pc.  Engine-independent by
    construction — the memory system reports events, everything else is a
    table lookup.  Feeds both [spf profile] (whole-run aggregation) and
    the adaptive {!Tuner} (windowed snapshots). *)

type t = {
  loop_of_pc : int array;  (** instr id -> loop slot, -1 outside loops *)
  headers : int array;  (** loop slot -> header block id *)
  demand : int array;
  miss : int array;  (** demand loads filled from DRAM *)
  late : int array;  (** demand loads that caught a sw-prefetch fill in flight *)
  unused : int array;  (** sw-prefetched lines evicted unused, by prefetch pc *)
  stall : int array;  (** scaled cycles demand loads spent beyond issue *)
  mutable total_demand : int;
}

val create : Spf_ir.Ir.func -> t
(** Build the pc -> innermost-loop table for [func] (pass the function
    that will actually run — after any transformation). *)

val n_loops : t -> int
val header : t -> int -> int
val slot_of_pc : t -> int -> int
val slot_of_header : t -> int -> int

val on_demand : t -> pc:int -> dram:bool -> late:bool -> stall:int -> unit
val on_unused : t -> pf_pc:int -> unit
val pp : Format.formatter -> t -> unit
