(* Set-associative cache with true-LRU replacement.

   Keyed on an abstract "unit" number (a line number for data caches, a
   page number for the TLB).  Each set's ways are stored in recency
   order — tags.(base) is the MRU way, tags.(base + assoc - 1) the LRU —
   so a probe needs no stamp array and the dominant case of the whole
   simulator, a repeat hit on the most-recently-used way, is a single
   compare.  A hit elsewhere rotates the prefix (move-to-front); the
   eviction victim is simply the last way.  This is observationally
   identical to the classic stamp-based true-LRU scheme: the same keys
   hit, and the same victim is displaced on every insert (invalid ways
   drift to — and are consumed from — the back, exactly like the
   all-zero stamps they used to carry). *)

type t = {
  sets : int;
  mask : int; (* sets - 1 when sets is a power of two, else -1 *)
  assoc : int;
  tags : int array; (* sets * assoc, recency-ordered per set; -1 = invalid *)
}

(* Every real machine config has power-of-two set counts, so set
   selection is a mask rather than an integer division — [set_of] runs
   on every cache and TLB probe, making the division measurable. *)
let mask_of sets = if sets land (sets - 1) = 0 then sets - 1 else -1

let create ~size ~assoc ~unit_shift =
  let units = size lsr unit_shift in
  let sets = max 1 (units / assoc) in
  { sets; mask = mask_of sets; assoc; tags = Array.make (sets * assoc) (-1) }

let create_entries ~entries ~assoc =
  let sets = max 1 (entries / assoc) in
  { sets; mask = mask_of sets; assoc; tags = Array.make (sets * assoc) (-1) }

let set_of t key = if t.mask >= 0 then key land t.mask else key mod t.sets

(* The scans below use unsafe accesses: [set_of] is < [sets] by
   construction, so [base + w] < [sets * assoc] = the array length for
   every way [w] — and these loops run on every simulated memory access. *)

(* Probe without modifying replacement state. *)
let mem t key =
  let base = set_of t key * t.assoc in
  let rec scan w =
    w < t.assoc && (Array.unsafe_get t.tags (base + w) = key || scan (w + 1))
  in
  scan 0

(* Rotate ways [0, w] of the set right by one and put [key] in front —
   the move-to-front that refreshes recency. *)
let promote tags ~base ~w key =
  for k = w downto 1 do
    Array.unsafe_set tags (base + k) (Array.unsafe_get tags (base + k - 1))
  done;
  Array.unsafe_set tags base key

(* Probe and, on a hit, refresh LRU state.  Returns whether the key hit. *)
let access t key =
  let base = set_of t key * t.assoc in
  let tags = t.tags in
  Array.unsafe_get tags base = key
  ||
  let rec scan w =
    if w >= t.assoc then false
    else if Array.unsafe_get tags (base + w) = key then begin
      promote tags ~base ~w key;
      true
    end
    else scan (w + 1)
  in
  scan 1

(* Insert a key (refreshing its recency if already present), evicting
   the LRU way.  Returns the evicted key, if a valid line was
   displaced. *)
let insert t key =
  let base = set_of t key * t.assoc in
  let tags = t.tags in
  let rec find w =
    if w >= t.assoc then -1
    else if Array.unsafe_get tags (base + w) = key then w
    else find (w + 1)
  in
  let pos = find 0 in
  if pos = 0 then None
  else if pos > 0 then begin
    promote tags ~base ~w:pos key;
    None
  end
  else begin
    let old = Array.unsafe_get tags (base + t.assoc - 1) in
    promote tags ~base ~w:(t.assoc - 1) key;
    if old >= 0 then Some old else None
  end

(* Insert a key the caller has just proven absent (an [access] on this
   cache missed, with no intervening insert of it): skips the presence
   scan of {!insert}, going straight to evict-LRU + move-to-front.
   Every memory-system fill site satisfies the precondition — fills only
   happen after the corresponding probe missed. *)
let insert_absent t key =
  let base = set_of t key * t.assoc in
  let tags = t.tags in
  let old = Array.unsafe_get tags (base + t.assoc - 1) in
  promote tags ~base ~w:(t.assoc - 1) key;
  if old >= 0 then Some old else None

let clear t = Array.fill t.tags 0 (Array.length t.tags) (-1)
let capacity t = t.sets * t.assoc
