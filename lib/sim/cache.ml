(* Set-associative cache with true-LRU replacement.

   Keyed on an abstract "unit" number (a line number for data caches, a
   page number for the TLB).  Tags are stored per way alongside an access
   stamp used for LRU. *)

type t = {
  sets : int;
  mask : int; (* sets - 1 when sets is a power of two, else -1 *)
  assoc : int;
  tags : int array; (* sets * assoc; -1 = invalid *)
  stamps : int array;
  mutable tick : int;
}

(* Every real machine config has power-of-two set counts, so set
   selection is a mask rather than an integer division — [set_of] runs
   on every cache and TLB probe, making the division measurable. *)
let mask_of sets = if sets land (sets - 1) = 0 then sets - 1 else -1

let create ~size ~assoc ~unit_shift =
  let units = size lsr unit_shift in
  let sets = max 1 (units / assoc) in
  {
    sets;
    mask = mask_of sets;
    assoc;
    tags = Array.make (sets * assoc) (-1);
    stamps = Array.make (sets * assoc) 0;
    tick = 0;
  }

let create_entries ~entries ~assoc =
  let sets = max 1 (entries / assoc) in
  {
    sets;
    mask = mask_of sets;
    assoc;
    tags = Array.make (sets * assoc) (-1);
    stamps = Array.make (sets * assoc) 0;
    tick = 0;
  }

let set_of t key = if t.mask >= 0 then key land t.mask else key mod t.sets

(* The scans below use unsafe accesses: [set_of] is < [sets] by
   construction, so [base + w] < [sets * assoc] = the array length for
   every way [w] — and these loops run on every simulated memory access. *)

(* Probe without modifying replacement state. *)
let mem t key =
  let base = set_of t key * t.assoc in
  let rec scan w =
    w < t.assoc && (Array.unsafe_get t.tags (base + w) = key || scan (w + 1))
  in
  scan 0

(* Probe and, on a hit, refresh LRU state.  Returns whether the key hit. *)
let access t key =
  let base = set_of t key * t.assoc in
  let rec scan w =
    if w >= t.assoc then false
    else if Array.unsafe_get t.tags (base + w) = key then begin
      t.tick <- t.tick + 1;
      Array.unsafe_set t.stamps (base + w) t.tick;
      true
    end
    else scan (w + 1)
  in
  scan 0

(* Insert a key (no-op if already present), evicting the LRU way.
   Returns the evicted key, if a valid line was displaced. *)
let insert t key =
  let base = set_of t key * t.assoc in
  let existing = ref (-1) in
  let victim = ref 0 in
  for w = 0 to t.assoc - 1 do
    if Array.unsafe_get t.tags (base + w) = key then existing := w;
    if
      Array.unsafe_get t.stamps (base + w)
      < Array.unsafe_get t.stamps (base + !victim)
    then victim := w
  done;
  t.tick <- t.tick + 1;
  if !existing >= 0 then begin
    t.stamps.(base + !existing) <- t.tick;
    None
  end
  else begin
    let old = t.tags.(base + !victim) in
    t.tags.(base + !victim) <- key;
    t.stamps.(base + !victim) <- t.tick;
    if old >= 0 then Some old else None
  end

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.tick <- 0

let capacity t = t.sets * t.assoc
