(** Set-associative cache with true-LRU replacement.

    Keyed on an abstract unit number — a line number for data caches, a
    page number for the TLB. *)

type t

val create : size:int -> assoc:int -> unit_shift:int -> t
(** [create ~size ~assoc ~unit_shift] sizes the structure for [size] bytes
    of [1 lsl unit_shift]-byte units. *)

val create_entries : entries:int -> assoc:int -> t
(** Size by entry count (used for TLBs). *)

val mem : t -> int -> bool
(** Probe without touching replacement state. *)

val access : t -> int -> bool
(** Probe; on a hit, refresh LRU state.  Returns whether the key hit. *)

val insert : t -> int -> int option
(** Insert a key (refreshing it if already present); returns the evicted
    key if a valid entry was displaced. *)

val insert_absent : t -> int -> int option
(** {!insert} for a key the caller has just proven absent (its [access]
    missed, with nothing inserted since): skips the presence scan.  The
    memory system's fill paths all qualify — a fill only follows a
    miss. *)

val clear : t -> unit
val capacity : t -> int
