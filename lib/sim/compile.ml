module Ir = Spf_ir.Ir
module Usedef = Spf_ir.Usedef
module S = Exec_state

(* Compile-to-closure execution engine.

   Each static instruction is decoded once into a specialized closure (a
   "micro-op"): operand kinds (const vs. register, int vs. float) are
   resolved at decode time, per-instruction latencies are pre-scaled by
   [tscale] into the closure environment, and a GEP whose single use is
   the very next load/store's address is fused into that memory micro-op
   (legality: exactly one use, no terminator use — see fusion notes
   below).  The hot loop is then an indirect call over a flat array per
   basic block instead of a pattern match over [Ir.instr] records per
   dynamic instruction.

   Every micro-op drives the shared {!Exec_state} with the shared
   dispatch/retire/memory helpers in exactly the interpreter's order, so
   the engine is bit-identical to {!Interp}'s classic path: same Stats,
   same Trap/Fuel_exhausted behaviour, same multicore schedule.  The
   golden suite and the cross-engine fuzz oracle pin this.

   Decoded programs are cached per domain, keyed by (tscale, structural
   signature): sweeps that rebuild and re-run one workload function
   across thousands of parameter points decode exactly once per domain.
   Nothing per-instance is captured in the closures — all mutable run
   state arrives through the [Exec_state.t] argument — except the phi
   edge scratch buffers, which are written and fully consumed inside a
   single closure call and therefore safe to share between instances on
   one domain (domains never interleave inside a call). *)

type uop = S.t -> unit

type program = { ublocks : uop array array; uterms : uop array }

(* --- decode-time operand specialization -------------------------------- *)

let iread (o : Ir.operand) : S.t -> int =
  match o with
  | Ir.Var id -> fun st -> st.S.env.(id)
  | Ir.Imm n -> fun _ -> n
  | Ir.Fimm x ->
      let n = Int64.to_int (Int64.bits_of_float x) in
      fun _ -> n

let fread (o : Ir.operand) : S.t -> float =
  match o with
  | Ir.Var id -> fun st -> st.S.fenv.(id)
  | Ir.Fimm x -> fun _ -> x
  | Ir.Imm n ->
      let x = float_of_int n in
      fun _ -> x

let ready1 (o : Ir.operand) : S.t -> int =
  match o with
  | Ir.Var id -> fun st -> st.S.ready.(id)
  | Ir.Imm _ | Ir.Fimm _ -> fun _ -> 0

let ready2 (a : Ir.operand) (b : Ir.operand) : S.t -> int =
  match (a, b) with
  | Ir.Var i, Ir.Var j ->
      fun st ->
        let x = st.S.ready.(i) and y = st.S.ready.(j) in
        if x > y then x else y
  | Ir.Var i, _ | _, Ir.Var i -> fun st -> st.S.ready.(i)
  | _, _ -> fun _ -> 0

let ready3 a b c =
  let r2 = ready2 b c in
  match a with
  | Ir.Var i ->
      fun st ->
        let x = st.S.ready.(i) and y = r2 st in
        if x > y then x else y
  | Ir.Imm _ | Ir.Fimm _ -> r2

(* Shared constant closures per operator (allocated once per decode site,
   never per dynamic instruction). *)
let int_fn : Ir.binop -> int -> int -> int = function
  | Ir.Add -> ( + )
  | Ir.Sub -> ( - )
  | Ir.Mul -> ( * )
  | Ir.Sdiv -> ( / )
  | Ir.Srem -> Stdlib.( mod )
  | Ir.And -> ( land )
  | Ir.Or -> ( lor )
  | Ir.Xor -> ( lxor )
  | Ir.Shl -> ( lsl )
  | Ir.Lshr -> ( lsr )
  | Ir.Ashr -> ( asr )
  | Ir.Smin -> fun a b -> if a < b then a else b
  | Ir.Smax -> fun a b -> if a > b then a else b
  | Ir.Fadd | Ir.Fsub | Ir.Fmul | Ir.Fdiv -> assert false

let float_fn : Ir.binop -> float -> float -> float = function
  | Ir.Fadd -> ( +. )
  | Ir.Fsub -> ( -. )
  | Ir.Fmul -> ( *. )
  | Ir.Fdiv -> ( /. )
  | _ -> assert false

let is_float_op = function
  | Ir.Fadd | Ir.Fsub | Ir.Fmul | Ir.Fdiv -> true
  | _ -> false

(* Explicit int-typed lambdas: a bare [( = )]/[( < )] here would be the
   polymorphic compare function — a C call per dynamic Cmp. *)
let cmp_fn : Ir.cmp -> int -> int -> bool = function
  | Ir.Eq -> fun (a : int) b -> a = b
  | Ir.Ne -> fun (a : int) b -> a <> b
  | Ir.Slt -> fun (a : int) b -> a < b
  | Ir.Sle -> fun (a : int) b -> a <= b
  | Ir.Sgt -> fun (a : int) b -> a > b
  | Ir.Sge -> fun (a : int) b -> a >= b

(* The float-half of a [Select] arm: mirror of the interpreter's
   per-operand match ([Imm] leaves fenv untouched). *)
let select_fwrite dst (o : Ir.operand) : S.t -> unit =
  match o with
  | Ir.Var id -> fun st -> st.S.fenv.(dst) <- st.S.fenv.(id)
  | Ir.Fimm x -> fun st -> st.S.fenv.(dst) <- x
  | Ir.Imm _ -> fun _ -> ()

(* --- per-instruction micro-ops ----------------------------------------- *)

(* Every micro-op performs, in the interpreter's exact order:
   instruction count, dispatch on the sources' ready-time, the functional
   effect, the destination ready-time update, and retirement. *)

let decode_instr ~tsc (i : Ir.instr) : uop =
  let dst = i.Ir.id in
  match i.Ir.kind with
  | Ir.Binop (op, x, y) when is_float_op op ->
      let lat = S.binop_latency op * tsc in
      let fx = fread x and fy = fread y in
      let rr = ready2 x y in
      let f = float_fn op in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:(rr st) in
        st.S.fenv.(dst) <- f (fx st) (fy st);
        let c = start + lat in
        st.S.ready.(dst) <- c;
        S.retire st ~complete:c
  | Ir.Binop (op, x, y) ->
      let lat = S.binop_latency op * tsc in
      let gx = iread x and gy = iread y in
      let rr = ready2 x y in
      let f = int_fn op in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:(rr st) in
        st.S.env.(dst) <- f (gx st) (gy st);
        let c = start + lat in
        st.S.ready.(dst) <- c;
        S.retire st ~complete:c
  | Ir.Cmp (p, x, y) ->
      let gx = iread x and gy = iread y in
      let rr = ready2 x y in
      let f = cmp_fn p in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:(rr st) in
        st.S.env.(dst) <- (if f (gx st) (gy st) then 1 else 0);
        let c = start + tsc in
        st.S.ready.(dst) <- c;
        S.retire st ~complete:c
  | Ir.Select (c0, x, y) ->
      let rc = iread c0 in
      let rr = ready3 c0 x y in
      let gx = iread x and gy = iread y in
      let wx = select_fwrite dst x and wy = select_fwrite dst y in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:(rr st) in
        if rc st <> 0 then begin
          st.S.env.(dst) <- gx st;
          wx st
        end
        else begin
          st.S.env.(dst) <- gy st;
          wy st
        end;
        let c = start + tsc in
        st.S.ready.(dst) <- c;
        S.retire st ~complete:c
  | Ir.Gep { base; index; scale } ->
      let gb = iread base and gi = iread index in
      let rr = ready2 base index in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:(rr st) in
        st.S.env.(dst) <- gb st + (gi st * scale);
        let c = start + tsc in
        st.S.ready.(dst) <- c;
        S.retire st ~complete:c
  | Ir.Load (ty, a) ->
      let ga = iread a in
      let rr = ready1 a in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:(rr st) in
        let addr = ga st in
        let c = S.exec_load st ~pc:dst ~dst ~ty ~addr ~start in
        st.S.ready.(dst) <- c;
        S.retire st ~complete:c
  | Ir.Store (Ir.F64, a, v) ->
      let ga = iread a and gv = fread v in
      let rr = ready2 a v in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:(rr st) in
        let addr = ga st in
        let c = S.exec_store_f st ~pc:dst ~addr ~v:(gv st) ~start in
        S.retire st ~complete:c
  | Ir.Store (ty, a, v) ->
      let ga = iread a and gv = iread v in
      let rr = ready2 a v in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:(rr st) in
        let addr = ga st in
        let c = S.exec_store_i st ~pc:dst ~ty ~addr ~v:(gv st) ~start in
        S.retire st ~complete:c
  | Ir.Prefetch a ->
      let ga = iread a in
      let rr = ready1 a in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:(rr st) in
        let addr = ga st in
        let c = S.exec_prefetch st ~pc:dst ~addr ~start in
        S.retire st ~complete:c
  | Ir.Alloc sz ->
      let g = iread sz in
      let rr = ready1 sz in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:(rr st) in
        st.S.env.(dst) <- Memory.alloc st.S.mem (g st);
        let c = start + tsc in
        st.S.ready.(dst) <- c;
        S.retire st ~complete:c
  | Ir.Call { callee; args; _ } ->
      let vread = Array.of_list (List.map iread args) in
      let rvars =
        Array.of_list
          (List.filter_map
             (function Ir.Var id -> Some id | Ir.Imm _ | Ir.Fimm _ -> None)
             args)
      in
      let lat = 10 * tsc in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let ready =
          Array.fold_left
            (fun m id ->
              let r = st.S.ready.(id) in
              if r > m then r else m)
            0 rvars
        in
        let start = S.dispatch st ~operands_ready:ready in
        let argv = Array.map (fun g -> g st) vread in
        st.S.env.(dst) <- S.exec_call st ~pc:dst ~callee argv;
        let c = start + lat in
        st.S.ready.(dst) <- c;
        S.retire st ~complete:c
  | Ir.Param _ ->
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:0 in
        let c = start + tsc in
        st.S.ready.(dst) <- c;
        S.retire st ~complete:c
  | Ir.Phi _ ->
      (* Phis execute on edges; decode never reaches one (blocks are
         filtered) and a cached program holds no phi micro-ops. *)
      fun _ -> assert false

(* --- GEP fusion --------------------------------------------------------- *)

(* Legality: the GEP's value has exactly one use — the immediately
   following load/store's *address* operand — and no terminator use (phi
   uses appear in [Usedef.uses], so a phi reader also blocks fusion).
   The fused micro-op still performs both instructions' full timing
   sequences (two instruction counts, two dispatches, two retirements);
   what it elides is the env/ready round-trip through the GEP's SSA slot,
   which the single-use condition makes unobservable. *)

let fusable usedef (g : Ir.instr) (nxt : Ir.instr) =
  match g.Ir.kind with
  | Ir.Gep _ -> (
      match (Usedef.uses usedef g.Ir.id, Usedef.term_uses usedef g.Ir.id) with
      | [ u ], [] when u = nxt.Ir.id -> (
          match nxt.Ir.kind with
          | Ir.Load (_, Ir.Var a) -> a = g.Ir.id
          | Ir.Store (_, Ir.Var a, v) -> a = g.Ir.id && v <> Ir.Var g.Ir.id
          | _ -> false)
      | _ -> false)
  | _ -> false

let fused_uop ~tsc (g : Ir.instr) (nxt : Ir.instr) : uop =
  let base, index, scale =
    match g.Ir.kind with
    | Ir.Gep { base; index; scale } -> (base, index, scale)
    | _ -> assert false
  in
  let gb = iread base and gi = iread index in
  let rrg = ready2 base index in
  let pc = nxt.Ir.id in
  match nxt.Ir.kind with
  | Ir.Load (ty, _) ->
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let gstart = S.dispatch st ~operands_ready:(rrg st) in
        let addr = gb st + (gi st * scale) in
        let gc = gstart + tsc in
        S.retire st ~complete:gc;
        s.Stats.instructions <- s.Stats.instructions + 1;
        let start = S.dispatch st ~operands_ready:gc in
        let c = S.exec_load st ~pc ~dst:pc ~ty ~addr ~start in
        st.S.ready.(pc) <- c;
        S.retire st ~complete:c
  | Ir.Store (Ir.F64, _, v) ->
      let gv = fread v in
      let rv = ready1 v in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let gstart = S.dispatch st ~operands_ready:(rrg st) in
        let addr = gb st + (gi st * scale) in
        let gc = gstart + tsc in
        S.retire st ~complete:gc;
        s.Stats.instructions <- s.Stats.instructions + 1;
        let rdy = rv st in
        let start = S.dispatch st ~operands_ready:(if gc > rdy then gc else rdy) in
        let c = S.exec_store_f st ~pc ~addr ~v:(gv st) ~start in
        S.retire st ~complete:c
  | Ir.Store (ty, _, v) ->
      let gv = iread v in
      let rv = ready1 v in
      fun st ->
        let s = st.S.stats in
        s.Stats.instructions <- s.Stats.instructions + 1;
        let gstart = S.dispatch st ~operands_ready:(rrg st) in
        let addr = gb st + (gi st * scale) in
        let gc = gstart + tsc in
        S.retire st ~complete:gc;
        s.Stats.instructions <- s.Stats.instructions + 1;
        let rdy = rv st in
        let start = S.dispatch st ~operands_ready:(if gc > rdy then gc else rdy) in
        let c = S.exec_store_i st ~pc ~ty ~addr ~v:(gv st) ~start in
        S.retire st ~complete:c
  | _ -> assert false

(* --- terminators and edges --------------------------------------------- *)

let edge_uop func ~pred ~succ : uop =
  match S.phi_copies func ~pred ~succ with
  | S.No_copies -> fun st -> st.S.cur <- succ
  | S.Bad_edge msg -> fun _ -> failwith msg
  | S.Copies { dsts; srcs } ->
      let n = Array.length dsts in
      (* Scratch buffers implementing read-all-before-write-any; written
         and consumed within this one closure call (see header note on
         sharing). *)
      let iv = Array.make n 0 in
      let fv = Array.make n 0.0 in
      let rd = Array.make n 0 in
      let ivr = Array.map iread srcs in
      let fvr =
        Array.map
          (fun o ->
            match o with
            | Ir.Var id -> fun st -> st.S.fenv.(id)
            | Ir.Fimm x -> fun _ -> x
            | Ir.Imm _ -> fun _ -> 0.0)
          srcs
      in
      let rdr = Array.map ready1 srcs in
      fun st ->
        for k = 0 to n - 1 do
          iv.(k) <- ivr.(k) st;
          fv.(k) <- fvr.(k) st;
          rd.(k) <- rdr.(k) st
        done;
        for k = 0 to n - 1 do
          let d = dsts.(k) in
          st.S.env.(d) <- iv.(k);
          st.S.fenv.(d) <- fv.(k);
          st.S.ready.(d) <- rd.(k)
        done;
        st.S.cur <- succ

(* Terminators occupy a dispatch slot; branch direction is assumed
   predicted, so control does not wait on the condition's readiness. *)
let decode_term ~tsc func bid (term : Ir.terminator) : uop =
  let pre st =
    let s = st.S.stats in
    s.Stats.instructions <- s.Stats.instructions + 1;
    let start = S.dispatch st ~operands_ready:0 in
    S.retire st ~complete:(start + tsc)
  in
  match term with
  | Ir.Br succ ->
      let e = edge_uop func ~pred:bid ~succ in
      fun st ->
        pre st;
        e st
  | Ir.Cbr (c, bt, bf) ->
      let rc = iread c in
      let et = edge_uop func ~pred:bid ~succ:bt in
      let ef = if bt = bf then et else edge_uop func ~pred:bid ~succ:bf in
      fun st ->
        pre st;
        if rc st <> 0 then et st else ef st
  | Ir.Ret v ->
      let g = match v with Some o -> Some (iread o) | None -> None in
      fun st ->
        pre st;
        st.S.retval <- (match g with Some g -> Some (g st) | None -> None);
        st.S.halted <- true
  | Ir.Unreachable ->
      fun st ->
        pre st;
        failwith "Interp: reached unreachable"

(* --- program decode ----------------------------------------------------- *)

exception Decode_error of string

let decode_raw ~tsc func : program =
  let usedef = Usedef.build func in
  let nb = Ir.n_blocks func in
  let ublocks =
    Array.init nb (fun b ->
        let non_phi =
          Array.to_list (Ir.block func b).Ir.instrs
          |> List.filter_map (fun id ->
                 let i = Ir.instr func id in
                 match i.Ir.kind with Ir.Phi _ -> None | _ -> Some i)
        in
        let rec go acc = function
          | g :: nxt :: rest when fusable usedef g nxt ->
              go (fused_uop ~tsc g nxt :: acc) rest
          | i :: rest -> go (decode_instr ~tsc i :: acc) rest
          | [] -> List.rev acc
        in
        Array.of_list (go [] non_phi))
  in
  let uterms =
    Array.init nb (fun b -> decode_term ~tsc func b (Ir.block func b).Ir.term)
  in
  { ublocks; uterms }

let decode ~tscale func : program =
  try decode_raw ~tsc:tscale func
  with
  | Decode_error _ as e -> raise e
  | e ->
      (* Anything escaping decode means this engine cannot run the
         program; wrapping it lets a supervisor distinguish "the compiled
         engine choked" (fall back to interp) from "the program is bad"
         (fail the job). *)
      raise (Decode_error (Printexc.to_string e))

(* --- per-domain decode cache ------------------------------------------- *)

type cache = {
  tbl : (string, program) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let cache_key : cache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { tbl = Hashtbl.create 32; hits = 0; misses = 0 })

(* Decoded closures only reference instruction ids, immediates and
   [tscale]-scaled constants, so (tscale, structural signature) fully
   determines the program — one decode serves every machine model and
   every rebuild of the same workload on this domain. *)
let max_cache_entries = 512

let get ~tscale func : program =
  let c = Domain.DLS.get cache_key in
  let key = string_of_int tscale ^ "#" ^ Ir.signature func in
  match Hashtbl.find_opt c.tbl key with
  | Some p ->
      c.hits <- c.hits + 1;
      p
  | None ->
      c.misses <- c.misses + 1;
      let p = decode ~tscale func in
      if Hashtbl.length c.tbl >= max_cache_entries then Hashtbl.reset c.tbl;
      Hashtbl.add c.tbl key p;
      p

let cache_counters () =
  let c = Domain.DLS.get cache_key in
  (c.hits, c.misses)

(* --- execution ---------------------------------------------------------- *)

(* Execute the current block (micro-ops plus terminator); returns [false]
   once the function has returned.  Identical protocol to the classic
   engine's [step]: the cycle counter is refreshed only after a completed
   step. *)
let step (p : program) (st : S.t) =
  if st.S.halted then false
  else begin
    let cur = st.S.cur in
    let ub = p.ublocks.(cur) in
    for k = 0 to Array.length ub - 1 do
      (Array.unsafe_get ub k) st
    done;
    p.uterms.(cur) st;
    S.update_cycles st;
    not st.S.halted
  end
