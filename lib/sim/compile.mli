(** Compile-to-closure execution engine: each static instruction is
    pre-decoded once into a specialized micro-op closure (operand kinds
    resolved, latencies pre-scaled, single-use GEPs fused into the
    consuming load/store), and the hot loop becomes an indirect call over
    a flat per-block array.  Bit-identical to the classic interpreter —
    both drive the shared {!Exec_state} with the shared timing/memory
    helpers. *)

type uop = Exec_state.t -> unit

type program = { ublocks : uop array array; uterms : uop array }

exception Decode_error of string
(** Decode-time failure of this engine: any exception escaping {!decode}
    is wrapped so a supervisor can tell "the compiled engine cannot
    handle this program" (retry on the classic interpreter) apart from a
    failure of the program itself. *)

val fusable : Spf_ir.Usedef.t -> Spf_ir.Ir.instr -> Spf_ir.Ir.instr -> bool
(** GEP-fusion legality, shared with the tape engine: [fusable ud g nxt]
    iff [g] is a GEP whose single use is the immediately following
    load/store [nxt]'s address operand (and no terminator/phi use; for a
    store, the stored value must not be the GEP itself). *)

val decode : tscale:int -> Spf_ir.Ir.func -> program
(** Decode without consulting the cache.
    @raise Decode_error on any decode-time failure. *)

val get : tscale:int -> Spf_ir.Ir.func -> program
(** Cached decode: per-domain, keyed by (tscale, {!Spf_ir.Ir.signature}),
    so re-building and re-running the same workload decodes once per
    domain — including across {!Spf_harness.Pool} jobs. *)

val cache_counters : unit -> int * int
(** (hits, misses) of this domain's decode cache. *)

val step : program -> Exec_state.t -> bool
(** Execute the current basic block; [false] once the function returned. *)
