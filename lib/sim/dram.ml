(* DRAM channel model: a line fill completes [latency] cycles after it
   begins service, and the channel serves at most one line per [occupancy]
   cycles.  A single instance is shared between cores in multicore
   experiments (Fig 9), which is what produces bandwidth saturation. *)

type t = {
  latency : int;
  occupancy : int;
  mutable next_free : int;
  mutable fills : int;
}

let create (cfg : Machine.dram_cfg) ~tscale =
  {
    latency = cfg.latency * tscale;
    occupancy = cfg.occupancy * tscale;
    next_free = 0;
    fills = 0;
  }

let imax (a : int) (b : int) = if a < b then b else a

(* Request a line fill at time [now]; returns its completion time. *)
let request t ~now =
  let begin_service = imax now t.next_free in
  t.next_free <- begin_service + t.occupancy;
  t.fills <- t.fills + 1;
  begin_service + t.latency

(* Current queueing delay a new request would see. *)
let backlog t ~now = imax 0 (t.next_free - now)

let fills t = t.fills
let occupancy t = t.occupancy
let latency t = t.latency
