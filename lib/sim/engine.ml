(* Execution-engine selector for the simulator.

   [Interp] walks the IR instruction records and pattern-matches on every
   dynamic instruction; [Compiled] pre-decodes each static instruction
   into a specialized closure once and the hot loop becomes an indirect
   call over a flat array (see Compile).  The two are bit-identical —
   same Stats, same Trap/Fuel_exhausted behaviour, same multicore
   schedule — which the golden suite and the cross-engine fuzz oracle
   both pin, so [Compiled] is the default. *)

type t = Interp | Compiled

let default = Compiled

let to_string = function Interp -> "interp" | Compiled -> "compiled"

let of_string s =
  match String.lowercase_ascii s with
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | _ -> None

let all = [ Interp; Compiled ]

(* Degradation order for a supervisor: the compiled engine's safety net
   is the classic interpreter; the interpreter has no net below it. *)
let fallback = function Compiled -> Some Interp | Interp -> None
