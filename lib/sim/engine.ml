(* Execution-engine selector for the simulator.

   [Interp] walks the IR instruction records and pattern-matches on every
   dynamic instruction; [Compiled] pre-decodes each static instruction
   into a specialized closure once and the hot loop becomes an indirect
   call over a flat array (see Compile); [Tape] flattens the decode
   products further into contiguous struct-of-arrays micro-op storage so
   the hot loop is a direct match on an unboxed opcode with no closure
   captures at all (see Tape).  All three are bit-identical — same Stats,
   same Trap/Fuel_exhausted behaviour, same multicore schedule — which
   the golden suite and the cross-engine fuzz oracle both pin, so [Tape]
   is the default. *)

type t = Interp | Compiled | Tape

let default = Tape

let to_string = function
  | Interp -> "interp"
  | Compiled -> "compiled"
  | Tape -> "tape"

let of_string s =
  match String.lowercase_ascii s with
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | "tape" -> Some Tape
  | _ -> None

let all = [ Interp; Compiled; Tape ]

(* Degradation order for a supervisor: the tape engine's safety net is
   the closure engine, whose net is the classic interpreter; the
   interpreter has no net below it. *)
let fallback = function
  | Tape -> Some Compiled
  | Compiled -> Some Interp
  | Interp -> None
