(** Execution-engine selector: the classic instruction-record interpreter,
    the compile-to-closure engine (pre-decoded micro-op closures), or the
    micro-op tape engine (contiguous struct-of-arrays micro-ops).  All
    three are bit-identical; [Tape] is the default because it is the
    fastest. *)

type t = Interp | Compiled | Tape

val default : t
(** [Tape] — pinned bit-identical to [Interp] and [Compiled] by the
    golden suite and the cross-engine fuzz oracle. *)

val to_string : t -> string
val of_string : string -> t option
val all : t list

val fallback : t -> t option
(** The engine a supervisor degrades to when this one fails to decode a
    program: [Tape -> Some Compiled], [Compiled -> Some Interp],
    [Interp -> None]. *)
