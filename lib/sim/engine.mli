(** Execution-engine selector: the classic instruction-record interpreter
    or the compile-to-closure engine (pre-decoded micro-ops).  Both are
    bit-identical; [Compiled] is the default because it is faster. *)

type t = Interp | Compiled

val default : t
(** [Compiled] — pinned bit-identical to [Interp] by the golden suite and
    the cross-engine fuzz oracle. *)

val to_string : t -> string
val of_string : string -> t option
val all : t list

val fallback : t -> t option
(** The engine a supervisor degrades to when this one fails to decode a
    program: [Compiled -> Some Interp], [Interp -> None]. *)
