module Ir = Spf_ir.Ir

(* Execution state and timing helpers shared by the engines.

   The classic interpreter (Interp), the compile-to-closure engine
   (Compile) and the micro-op tape engine (Tape) all drive exactly this
   state with exactly these helpers, so their timing bookkeeping cannot
   drift apart: dispatch/retire, the ROB ring, the in-order demand-miss
   slots and the memory-operation sequences (bounds check, functional
   access, Memsys timing, miss-restart penalty) live here once.

   Time is kept in scaled cycles ([tscale] sub-cycle units) so that
   multi-issue dispatch intervals stay integral. *)

let default_tscale = 12

(* Demand accesses to unmapped addresses fault, carrying enough context to
   compare trap sites across differential runs; software prefetches to the
   same addresses are dropped non-faulting instead (§4.4). *)
type fault = { pc : int; addr : int; width : int; is_store : bool }

exception Trap of fault

exception Fuel_exhausted

(* Cooperative cancellation: a watchdog (or any other domain) sets the
   flag; the engines poll it at block granularity and bail out with
   [Cancelled], carrying the stats accumulated so far — that is what a
   crash bundle records as "stats-so-far" for a job that ran away. *)
type cancel = { cancelled : bool Atomic.t }

exception Cancelled of Stats.t

let new_cancel () = { cancelled = Atomic.make false }
let cancel c = Atomic.set c.cancelled true
let is_cancelled c = Atomic.get c.cancelled

let fault_to_string { pc; addr; width; is_store } =
  Printf.sprintf "%s of %d byte(s) at address %d faulted (instr %d)"
    (if is_store then "store" else "load")
    width addr pc

type t = {
  machine : Machine.t;
  func : Ir.func;
  mem : Memory.t;
  memsys : Memsys.t;
  stats : Stats.t;
  env : int array;
  fenv : float array;
  ready : int array;
  call_fns : (int array -> int) option array;
      (* per instruction id: resolved intrinsic, filled by
         [Interp.register_intrinsic] (no hash lookup on the call path) *)
  tscale : int;
  disp_int : int;
  in_order : bool;
  rob_ring : int array;
  demand_free : int array;
  miss_restart : int;
  cancel : cancel option;
  tuner : Tuner.t option;
      (* adaptive-distance controller, ticked after every retired demand
         load — the same point in all three engines, which is what makes
         adaptive runs engine-independent *)
  mutable rob_slot : int; (* next ROB ring slot (out-of-order only) *)
  mutable cur : int;
  mutable halted : bool;
  mutable retval : int option;
  mutable last_dispatch : int;
  mutable last_retire : int;
}

(* [extra_slots] extends the value arrays beyond the SSA ids: the tape
   engine materializes immediates into trailing constant slots (written
   once at create, ready-time permanently 0) so every operand becomes a
   plain slot index.  Instruction destinations are always < n_instrs, so
   the extension is invisible to the other engines. *)
let create ~machine ~tscale ~dram ?stats ?cancel ?attrib ?tuner
    ?(extra_slots = 0) ~mem ~args func =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let attrib =
    match (attrib, tuner) with
    | Some _, _ -> attrib
    | None, Some tu -> Some (Tuner.attrib tu)
    | None, None -> None
  in
  let memsys = Memsys.create machine ~tscale ~dram ~stats ?attrib () in
  let n = Ir.n_instrs func in
  let slots = max (n + extra_slots) 1 in
  let t =
    {
      machine;
      func;
      mem;
      memsys;
      stats;
      env = Array.make slots 0;
      fenv = Array.make slots 0.0;
      ready = Array.make slots 0;
      call_fns = Array.make (max n 1) None;
      tscale;
      disp_int = max 1 (tscale * machine.Machine.inst_cost / machine.width);
      in_order = machine.kind = Machine.In_order;
      rob_ring = Array.make (max machine.rob 1) 0;
      demand_free = Array.make (max machine.demand_slots 1) 0;
      miss_restart = machine.miss_restart * tscale;
      cancel;
      tuner;
      rob_slot = 0;
      cur = func.Ir.entry;
      halted = false;
      retval = None;
      last_dispatch = 0;
      last_retire = 0;
    }
  in
  (* Bind parameters. *)
  Array.iteri
    (fun k id -> if k < Array.length args then t.env.(id) <- args.(k))
    func.Ir.param_ids;
  (* Distance registers are parameters past the caller's arguments; the
     tuner seeds them with their initial distances. *)
  (match tuner with Some tu -> Tuner.init_env tu t.env | None -> ());
  t

(* Raise [Cancelled] if this state's token has been fired.  Called by the
   engines' run loops every few hundred blocks — cheap enough to be
   invisible, frequent enough that a watchdog deadline is observed within
   microseconds of simulated work. *)
let poll_cancel t =
  match t.cancel with
  | Some c when Atomic.get c.cancelled -> raise (Cancelled t.stats)
  | _ -> ()

(* --- operand access ---------------------------------------------------- *)

let ival t = function
  | Ir.Var id -> t.env.(id)
  | Ir.Imm n -> n
  | Ir.Fimm x -> Int64.to_int (Int64.bits_of_float x)

let fval t = function
  | Ir.Var id -> t.fenv.(id)
  | Ir.Fimm x -> x
  | Ir.Imm n -> float_of_int n

let rtime t = function Ir.Var id -> t.ready.(id) | Ir.Imm _ | Ir.Fimm _ -> 0

(* Int-specialized max: [Stdlib.max] is a generic call into polymorphic
   compare without flambda, and these run several times per dynamic
   instruction. *)
let[@inline always] imax (a : int) (b : int) = if a < b then b else a

(* Latency table shared by both engines (scaled by [tscale] at use/decode
   time). *)
let binop_latency = function
  | Ir.Mul -> 3
  | Ir.Sdiv | Ir.Srem -> 12
  | Ir.Fadd | Ir.Fsub | Ir.Fmul -> 4
  | Ir.Fdiv -> 12
  | Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Lshr | Ir.Ashr
  | Ir.Smin | Ir.Smax -> 1

(* --- dispatch / retire ------------------------------------------------- *)

(* Dispatch the next dynamic instruction; returns its start time.  The
   out-of-order path walks the ROB ring with an explicit rolling slot
   (advanced by [retire], which strictly alternates with [dispatch])
   instead of [inst_index mod rob] — one less integer division per
   dynamic instruction, same values. *)
(* In-order issue: wait for operands at issue time (stall-on-use).  The
   fast path is [operands_ready <= slot] — on an L1-hit-dominated stream
   every source is ready by the next issue slot, so issue advances by
   exactly [disp_int] and the stall max is a predicted-not-taken
   branch. *)
let[@inline always] dispatch_in_order t ~operands_ready =
  let slot = t.last_dispatch + t.disp_int in
  let issue = if operands_ready <= slot then slot else operands_ready in
  t.last_dispatch <- issue;
  issue

let[@inline always] dispatch_out_of_order t ~operands_ready =
  let d = imax (t.last_dispatch + t.disp_int) t.rob_ring.(t.rob_slot) in
  t.last_dispatch <- d;
  imax d operands_ready

let[@inline always] dispatch t ~operands_ready =
  if t.in_order then dispatch_in_order t ~operands_ready
  else dispatch_out_of_order t ~operands_ready

(* Record in-order retirement (OoO ROB bookkeeping). *)
let[@inline always] retire t ~complete =
  let r = imax complete t.last_retire in
  t.last_retire <- r;
  if not t.in_order then begin
    t.rob_ring.(t.rob_slot) <- r;
    let s = t.rob_slot + 1 in
    t.rob_slot <- (if s = Array.length t.rob_ring then 0 else s)
  end

(* Index of the earliest-free outstanding-demand-miss slot. *)
let free_demand_slot t =
  let slots = t.demand_free in
  let k = ref 0 in
  for i = 1 to Array.length slots - 1 do
    if slots.(i) < slots.(!k) then k := i
  done;
  !k

(* Refresh the cycle counter after a completed step (never mid-step, so a
   trapped step leaves the previous step's value, as always).  The block
   boundary is also where dead in-flight fill records get pruned:
   [last_dispatch] only ever grows and every memory access issues at or
   after it, so it is a sound low-water mark for
   {!Memsys.prune_inflight}. *)
let[@inline always] update_cycles t =
  let time = imax t.last_retire t.last_dispatch in
  (* Every shipped machine model runs at the default tscale, and division
     by a literal constant compiles to a multiply-shift where the generic
     [/ t.tscale] pays a hardware divide on every block boundary.  The
     branch is perfectly predicted (tscale is fixed per run). *)
  t.stats.Stats.cycles <-
    (if t.tscale = 12 then time / 12 else time / t.tscale);
  Memsys.prune_inflight t.memsys ~low_water:t.last_dispatch

let time t = imax t.last_retire t.last_dispatch

(* --- memory operations ------------------------------------------------- *)

(* The full demand-load sequence: bounds check (trap), functional load
   into the destination slot, in-order miss-slot serialisation, Memsys
   timing, and the ROB-restart penalty on DRAM fills.  Returns the
   completion time. *)
let exec_load t ~pc ~dst ~ty ~addr ~start =
  let width = Ir.size_of_ty ty in
  if not (Memory.in_bounds t.mem ~addr ~width) then
    raise (Trap { pc; addr; width; is_store = false });
  (match ty with
  | Ir.F64 -> t.fenv.(dst) <- Memory.unsafe_load_f64 t.mem addr
  | Ir.I8 | Ir.I16 | Ir.I32 | Ir.I64 ->
      t.env.(dst) <- Memory.unsafe_load t.mem ty addr);
  (* In-order cores support few outstanding demand misses: a load cannot
     begin its lookup until a slot frees (stall-on-miss when
     [demand_slots] = 1).  Hits release the slot immediately. *)
  let slot = if t.in_order then free_demand_slot t else -1 in
  let start = if t.in_order then imax start t.demand_free.(slot) else start in
  let completion =
    Memsys.access t.memsys ~kind:Memsys.Demand ~pc ~addr ~now:start
  in
  (* Tick the adaptive-distance controller on every retired demand load —
     the window boundary is thereby identical in all three engines. *)
  (match t.tuner with Some tu -> Tuner.tick tu ~env:t.env | None -> ());
  match Memsys.last_level t.memsys with
  | Memsys.L1 -> completion
  | Memsys.Inflight | Memsys.L2 | Memsys.L3 ->
      if t.in_order then t.demand_free.(slot) <- completion;
      completion
  | Memsys.Dram ->
      if t.in_order then t.demand_free.(slot) <- completion;
      completion + t.miss_restart

(* The demand-store sequence: bounds check (trap), functional store, write
   access for the cache model.  Returns the completion time. *)
let exec_store_i t ~pc ~ty ~addr ~v ~start =
  let width = Ir.size_of_ty ty in
  if not (Memory.in_bounds t.mem ~addr ~width) then
    raise (Trap { pc; addr; width; is_store = true });
  Memory.unsafe_store t.mem ty addr v;
  ignore (Memsys.access t.memsys ~kind:Memsys.Write ~pc ~addr ~now:start);
  start + t.tscale

let exec_store_f t ~pc ~addr ~v ~start =
  if not (Memory.in_bounds t.mem ~addr ~width:8) then
    raise (Trap { pc; addr; width = 8; is_store = true });
  Memory.unsafe_store_f64 t.mem addr v;
  ignore (Memsys.access t.memsys ~kind:Memsys.Write ~pc ~addr ~now:start);
  start + t.tscale

(* Prefetches are hints: out-of-bounds or unmapped addresses are dropped
   without faulting (and without touching the cache/TLB model) but
   counted, so fuzzing can observe how often the pass leans on this
   escape hatch. *)
let exec_prefetch t ~pc ~addr ~start =
  if Memory.in_bounds t.mem ~addr ~width:1 then
    ignore (Memsys.access t.memsys ~kind:Memsys.Sw_prefetch ~pc ~addr ~now:start)
  else t.stats.Stats.dropped_prefetches <- t.stats.Stats.dropped_prefetches + 1;
  start + t.tscale

let exec_call t ~pc ~callee args_v =
  match t.call_fns.(pc) with
  | Some fn -> fn args_v
  | None -> failwith ("Interp: unknown intrinsic " ^ callee)

(* --- phi parallel copies ----------------------------------------------- *)

(* The phi parallel copies of CFG edge (pred, succ), analysed once so the
   engines never consult an assoc list on a taken edge.  [Bad_edge] is
   raised only if the edge is actually taken, matching the historical lazy
   behaviour. *)
type edge_copies =
  | No_copies
  | Copies of { dsts : int array; srcs : Ir.operand array }
  | Bad_edge of string

let phi_copies func ~pred ~succ =
  let copies = ref [] and missing = ref None in
  Array.iter
    (fun id ->
      let i = Ir.instr func id in
      match i.Ir.kind with
      | Ir.Phi incoming -> (
          match List.assoc_opt pred incoming with
          | Some v -> copies := (i.Ir.id, v) :: !copies
          | None ->
              if !missing = None then
                missing :=
                  Some
                    (Printf.sprintf "Interp: phi %d lacks edge from bb%d"
                       i.Ir.id pred))
      | _ -> ())
    (Ir.block func succ).Ir.instrs;
  match !missing with
  | Some msg -> Bad_edge msg
  | None -> (
      match List.rev !copies with
      | [] -> No_copies
      | copies ->
          Copies
            {
              dsts = Array.of_list (List.map fst copies);
              srcs = Array.of_list (List.map snd copies);
            })
