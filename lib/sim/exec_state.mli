(** Execution state and timing helpers shared by the simulator engines
    (the classic interpreter, the compile-to-closure engine and the
    micro-op tape engine).  Keeping dispatch/retire, the in-order miss
    slots and the memory-operation sequences in one place is what
    guarantees the engines stay bit-identical. *)

val default_tscale : int

type fault = { pc : int; addr : int; width : int; is_store : bool }

exception Trap of fault
exception Fuel_exhausted

(** {1 Cooperative cancellation}

    A [cancel] token is shared between a running simulation and whoever
    supervises it (e.g. {!Spf_harness}'s watchdog).  Firing the token from
    any domain makes the engines raise [Cancelled] at their next poll
    point (block granularity), carrying the stats accumulated so far. *)

type cancel

exception Cancelled of Stats.t

val new_cancel : unit -> cancel
val cancel : cancel -> unit
val is_cancelled : cancel -> bool

val fault_to_string : fault -> string

type t = {
  machine : Machine.t;
  func : Spf_ir.Ir.func;
  mem : Memory.t;
  memsys : Memsys.t;
  stats : Stats.t;
  env : int array;
  fenv : float array;
  ready : int array;
  call_fns : (int array -> int) option array;
  tscale : int;
  disp_int : int;
  in_order : bool;
  rob_ring : int array;
  demand_free : int array;
  miss_restart : int;
  cancel : cancel option;
  tuner : Tuner.t option;
      (** adaptive-distance controller, ticked per retired demand load *)
  mutable rob_slot : int;
  mutable cur : int;
  mutable halted : bool;
  mutable retval : int option;
  mutable last_dispatch : int;
  mutable last_retire : int;
}

val create :
  machine:Machine.t ->
  tscale:int ->
  dram:Dram.t ->
  ?stats:Stats.t ->
  ?cancel:cancel ->
  ?attrib:Attrib.t ->
  ?tuner:Tuner.t ->
  ?extra_slots:int ->
  mem:Memory.t ->
  args:int array ->
  Spf_ir.Ir.func ->
  t
(** [extra_slots] (default 0) extends [env]/[fenv]/[ready] beyond the SSA
    ids — the tape engine materializes immediates into trailing constant
    slots there.  Instruction destinations never reach the extension.

    [attrib] buckets demand-load outcomes per source loop; [tuner] seeds
    and re-tunes the adaptive distance registers (its own attribution
    table is used when [attrib] is absent). *)

val poll_cancel : t -> unit
(** @raise Cancelled if this state's token (if any) has been fired. *)

val ival : t -> Spf_ir.Ir.operand -> int
val fval : t -> Spf_ir.Ir.operand -> float
val rtime : t -> Spf_ir.Ir.operand -> int

val imax : int -> int -> int
(** Int-specialized max (no polymorphic-compare call on the hot path). *)

val binop_latency : Spf_ir.Ir.binop -> int

val dispatch : t -> operands_ready:int -> int
val retire : t -> complete:int -> unit
val free_demand_slot : t -> int
val update_cycles : t -> unit
val time : t -> int

val exec_load :
  t -> pc:int -> dst:int -> ty:Spf_ir.Ir.ty -> addr:int -> start:int -> int

val exec_store_i :
  t -> pc:int -> ty:Spf_ir.Ir.ty -> addr:int -> v:int -> start:int -> int

val exec_store_f : t -> pc:int -> addr:int -> v:float -> start:int -> int
val exec_prefetch : t -> pc:int -> addr:int -> start:int -> int
val exec_call : t -> pc:int -> callee:string -> int array -> int

type edge_copies =
  | No_copies
  | Copies of { dsts : int array; srcs : Spf_ir.Ir.operand array }
  | Bad_edge of string

val phi_copies : Spf_ir.Ir.func -> pred:int -> succ:int -> edge_copies
