module Ir = Spf_ir.Ir
module S = Exec_state

(* IR execution with a dataflow timing model.

   Functional execution and timing are computed together: every SSA value
   carries a ready-time alongside its contents, and every memory operation
   consults the {!Memsys} model.  Two core models share the machinery:

   - {e out-of-order}: instructions dispatch in order at the machine's
     width, bounded by a reorder buffer (an instruction cannot dispatch
     until the instruction [rob] slots earlier has retired); execution
     starts when operands are ready; retirement is in order.  Independent
     load misses therefore overlap up to the ROB/MSHR limits, which is why
     software prefetching buys little on Haswell/A57 but still helps.

   - {e in-order}: instructions issue strictly in order and stall until
     their operands are ready; demand misses are additionally serialised
     through [demand_slots] (1 on A53/Phi, per the paper's "stalls on load
     misses").  Software prefetches never stall, which is where the large
     in-order speedups come from.

   The state and the timing/memory helpers live in {!Exec_state}; three
   engines drive them (selected per instance, see {!Engine}):

   - the {e classic} engine below walks [Ir.instr] records and
     pattern-matches every dynamic instruction;
   - the {e compiled} engine ({!Compile}) pre-decodes each static
     instruction into a specialized closure once and the hot loop is an
     indirect call over a flat array;
   - the {e tape} engine ({!Tape}, the default) flattens the decode into
     contiguous struct-of-arrays micro-ops and the hot loop is a direct
     match on an unboxed opcode.

   All three are bit-identical — pinned by the golden suite and the
   cross-engine fuzz oracle. *)

let default_tscale = S.default_tscale

type fault = S.fault = { pc : int; addr : int; width : int; is_store : bool }

exception Trap = S.Trap

exception Fuel_exhausted = S.Fuel_exhausted

exception Cancelled = S.Cancelled

type cancel = S.cancel

let new_cancel = S.new_cancel
let fire_cancel = S.cancel
let fault_to_string = S.fault_to_string

(* Parallel phi copies for one CFG edge, precomputed at {!create} so the
   hot loop never consults a hash table or assoc list.  The scratch
   buffers ([iv]/[fv]/[rd]) implement read-all-before-write-any without
   allocating on every edge traversal. *)
type edge =
  | No_copies
  | Copies of {
      dsts : int array;
      srcs : Ir.operand array;
      iv : int array;
      fv : float array;
      rd : int array;
    }
  | Bad_phi of string
      (* a phi in the successor lacks this edge; the error is raised only
         if the edge is actually taken, matching the old lazy behaviour *)

type classic = {
  blocks : Ir.instr array array; (* per block: non-phi instructions *)
  terms : Ir.terminator array;
  edges : edge array; (* (pred * nblocks + succ) -> phi parallel copies *)
}

type impl =
  | Classic of classic
  | Compiled of Compile.program
  | Tape of Tape.program

type t = {
  st : S.t;
  impl : impl;
  call_sites : (int * string) list; (* (call instr id, callee name) *)
}

let build_classic func : classic =
  let nb = Ir.n_blocks func in
  let blocks =
    Array.init nb (fun b ->
        let ids = (Ir.block func b).Ir.instrs in
        let non_phi =
          Array.to_list ids
          |> List.filter_map (fun id ->
                 let i = Ir.instr func id in
                 match i.Ir.kind with Ir.Phi _ -> None | _ -> Some i)
        in
        Array.of_list non_phi)
  in
  let terms = Array.init nb (fun b -> (Ir.block func b).Ir.term) in
  let edges = Array.make (nb * nb) No_copies in
  Array.iteri
    (fun pred term ->
      List.iter
        (fun succ ->
          edges.((pred * nb) + succ) <-
            (match S.phi_copies func ~pred ~succ with
            | S.No_copies -> No_copies
            | S.Bad_edge msg -> Bad_phi msg
            | S.Copies { dsts; srcs } ->
                let m = Array.length dsts in
                Copies
                  {
                    dsts;
                    srcs;
                    iv = Array.make m 0;
                    fv = Array.make m 0.0;
                    rd = Array.make m 0;
                  }))
        (Ir.successors term))
    terms;
  { blocks; terms; edges }

let create ~machine ?(tscale = default_tscale) ?dram ?stats ?cancel ?attrib
    ?tuner ?(engine = Engine.default) ~mem ~args func =
  let dram =
    match dram with
    | Some d -> d
    | None -> Dram.create machine.Machine.dram ~tscale
  in
  (* The tape is decoded before the state exists: its constant-slot count
     sizes the value arrays ([extra_slots]), and the slots' values are
     written right after creation. *)
  let tape =
    match engine with
    | Engine.Tape -> Some (Tape.get ~tscale func)
    | Engine.Compiled | Engine.Interp -> None
  in
  let extra_slots =
    match tape with Some p -> Tape.n_extra_slots p | None -> 0
  in
  let st =
    S.create ~machine ~tscale ~dram ?stats ?cancel ?attrib ?tuner ~extra_slots
      ~mem ~args func
  in
  (match tape with Some p -> Tape.init_consts p st | None -> ());
  (* Call sites, so intrinsics resolve into a per-instruction array at
     registration time instead of a Hashtbl probe per dynamic call. *)
  let call_sites =
    Array.fold_left
      (fun acc (b : Ir.block) ->
        Array.fold_left
          (fun acc id ->
            let i = Ir.instr func id in
            match i.Ir.kind with
            | Ir.Call { callee; _ } -> (i.Ir.id, callee) :: acc
            | _ -> acc)
          acc b.Ir.instrs)
      [] func.Ir.blocks
  in
  let impl =
    match (engine, tape) with
    | _, Some p -> Tape p
    | Engine.Compiled, None -> Compiled (Compile.get ~tscale func)
    | Engine.Interp, None -> Classic (build_classic func)
    | Engine.Tape, None -> assert false
  in
  { st; impl; call_sites }

let register_intrinsic t name fn =
  List.iter
    (fun (id, callee) ->
      if String.equal callee name then t.st.S.call_fns.(id) <- Some fn)
    t.call_sites

(* --- the classic engine ------------------------------------------------ *)

let srcs_ready st (k : Ir.kind) =
  match k with
  | Ir.Binop (_, a, b) | Ir.Cmp (_, a, b) | Ir.Store (_, a, b) ->
      S.imax (S.rtime st a) (S.rtime st b)
  | Ir.Select (c, a, b) ->
      S.imax (S.rtime st c) (S.imax (S.rtime st a) (S.rtime st b))
  | Ir.Load (_, a) | Ir.Prefetch a | Ir.Alloc a -> S.rtime st a
  | Ir.Gep { base; index; _ } -> S.imax (S.rtime st base) (S.rtime st index)
  | Ir.Call { args; _ } ->
      List.fold_left (fun m a -> S.imax m (S.rtime st a)) 0 args
  | Ir.Phi _ | Ir.Param _ -> 0

let exec_binop st op x y dst =
  match op with
  | Ir.Add -> st.S.env.(dst) <- S.ival st x + S.ival st y
  | Ir.Sub -> st.S.env.(dst) <- S.ival st x - S.ival st y
  | Ir.Mul -> st.S.env.(dst) <- S.ival st x * S.ival st y
  | Ir.Sdiv -> st.S.env.(dst) <- S.ival st x / S.ival st y
  | Ir.Srem -> st.S.env.(dst) <- S.ival st x mod S.ival st y
  | Ir.And -> st.S.env.(dst) <- S.ival st x land S.ival st y
  | Ir.Or -> st.S.env.(dst) <- S.ival st x lor S.ival st y
  | Ir.Xor -> st.S.env.(dst) <- S.ival st x lxor S.ival st y
  | Ir.Shl -> st.S.env.(dst) <- S.ival st x lsl S.ival st y
  | Ir.Lshr -> st.S.env.(dst) <- S.ival st x lsr S.ival st y
  | Ir.Ashr -> st.S.env.(dst) <- S.ival st x asr S.ival st y
  | Ir.Smin -> st.S.env.(dst) <- min (S.ival st x) (S.ival st y)
  | Ir.Smax -> st.S.env.(dst) <- max (S.ival st x) (S.ival st y)
  | Ir.Fadd -> st.S.fenv.(dst) <- S.fval st x +. S.fval st y
  | Ir.Fsub -> st.S.fenv.(dst) <- S.fval st x -. S.fval st y
  | Ir.Fmul -> st.S.fenv.(dst) <- S.fval st x *. S.fval st y
  | Ir.Fdiv -> st.S.fenv.(dst) <- S.fval st x /. S.fval st y

let eval_cmp pred (a : int) (b : int) =
  match pred with
  | Ir.Eq -> a = b
  | Ir.Ne -> a <> b
  | Ir.Slt -> a < b
  | Ir.Sle -> a <= b
  | Ir.Sgt -> a > b
  | Ir.Sge -> a >= b

let exec_instr st (i : Ir.instr) =
  st.S.stats.Stats.instructions <- st.S.stats.Stats.instructions + 1;
  let start = S.dispatch st ~operands_ready:(srcs_ready st i.Ir.kind) in
  let dst = i.Ir.id in
  let complete =
    match i.Ir.kind with
    | Ir.Binop (op, x, y) ->
        exec_binop st op x y dst;
        start + (S.binop_latency op * st.S.tscale)
    | Ir.Cmp (pred, x, y) ->
        st.S.env.(dst) <-
          (if eval_cmp pred (S.ival st x) (S.ival st y) then 1 else 0);
        start + st.S.tscale
    | Ir.Select (c, x, y) ->
        let pick = if S.ival st c <> 0 then x else y in
        st.S.env.(dst) <- S.ival st pick;
        (match pick with
        | Ir.Var id -> st.S.fenv.(dst) <- st.S.fenv.(id)
        | Ir.Fimm f -> st.S.fenv.(dst) <- f
        | Ir.Imm _ -> ());
        start + st.S.tscale
    | Ir.Gep { base; index; scale } ->
        st.S.env.(dst) <- S.ival st base + (S.ival st index * scale);
        start + st.S.tscale
    | Ir.Load (ty, a) ->
        S.exec_load st ~pc:dst ~dst ~ty ~addr:(S.ival st a) ~start
    | Ir.Store (Ir.F64, a, v) ->
        S.exec_store_f st ~pc:dst ~addr:(S.ival st a) ~v:(S.fval st v) ~start
    | Ir.Store (ty, a, v) ->
        S.exec_store_i st ~pc:dst ~ty ~addr:(S.ival st a) ~v:(S.ival st v)
          ~start
    | Ir.Prefetch a -> S.exec_prefetch st ~pc:dst ~addr:(S.ival st a) ~start
    | Ir.Alloc sz ->
        st.S.env.(dst) <- Memory.alloc st.S.mem (S.ival st sz);
        start + st.S.tscale
    | Ir.Call { callee; args; _ } ->
        st.S.env.(dst) <-
          S.exec_call st ~pc:dst ~callee
            (Array.of_list (List.map (S.ival st) args));
        start + (10 * st.S.tscale)
    | Ir.Param k ->
        ignore k;
        start + st.S.tscale
    | Ir.Phi _ -> (* executed on edges *) start
  in
  if Ir.defines_value i.Ir.kind then st.S.ready.(dst) <- complete;
  S.retire st ~complete

(* Execute the precomputed phi parallel copies of edge (pred, succ):
   read every source into the edge's scratch buffers, then write every
   destination (read-all-before-write-any). *)
let take_edge (c : classic) st ~pred ~succ =
  (match c.edges.((pred * Array.length c.blocks) + succ) with
  | No_copies -> ()
  | Bad_phi msg -> failwith msg
  | Copies { dsts; srcs; iv; fv; rd } ->
      let n = Array.length dsts in
      for k = 0 to n - 1 do
        let src = srcs.(k) in
        iv.(k) <- S.ival st src;
        (match src with
        | Ir.Var id -> fv.(k) <- st.S.fenv.(id)
        | Ir.Fimm f -> fv.(k) <- f
        | Ir.Imm _ -> fv.(k) <- 0.0);
        rd.(k) <- S.rtime st src
      done;
      for k = 0 to n - 1 do
        let dst = dsts.(k) in
        st.S.env.(dst) <- iv.(k);
        st.S.fenv.(dst) <- fv.(k);
        st.S.ready.(dst) <- rd.(k)
      done);
  st.S.cur <- succ

(* Execute the current block (non-phi instructions plus terminator);
   returns [false] once the function has returned. *)
let step_classic (c : classic) st =
  if st.S.halted then false
  else begin
    let instrs = c.blocks.(st.S.cur) in
    for k = 0 to Array.length instrs - 1 do
      exec_instr st instrs.(k)
    done;
    (* Terminators occupy a dispatch slot; branch direction is assumed
       predicted, so control does not wait on the condition's readiness. *)
    st.S.stats.Stats.instructions <- st.S.stats.Stats.instructions + 1;
    let start = S.dispatch st ~operands_ready:0 in
    S.retire st ~complete:(start + st.S.tscale);
    (match c.terms.(st.S.cur) with
    | Ir.Br succ -> take_edge c st ~pred:st.S.cur ~succ
    | Ir.Cbr (cond, bt, bf) ->
        let succ = if S.ival st cond <> 0 then bt else bf in
        take_edge c st ~pred:st.S.cur ~succ
    | Ir.Ret v ->
        st.S.retval <- Option.map (S.ival st) v;
        st.S.halted <- true
    | Ir.Unreachable -> failwith "Interp: reached unreachable");
    S.update_cycles st;
    not st.S.halted
  end

(* --- engine dispatch --------------------------------------------------- *)

let step t =
  match t.impl with
  | Classic c -> step_classic c t.st
  | Compiled p -> Compile.step p t.st
  | Tape p -> Tape.step p t.st

(* Cancellation poll mask: the engines check the token every [poll_mask
   + 1] blocks, so supervision costs one land+branch per block and an
   atomic read only every 1024th. *)
let poll_mask = 1023

let run ?(fuel = max_int) t =
  let steps = ref 0 in
  (match t.impl with
  | Classic c ->
      let st = t.st in
      while (not st.S.halted) && !steps < fuel do
        ignore (step_classic c st);
        incr steps;
        if !steps land poll_mask = 0 then S.poll_cancel st
      done
  | Compiled p ->
      let st = t.st in
      while (not st.S.halted) && !steps < fuel do
        ignore (Compile.step p st);
        incr steps;
        if !steps land poll_mask = 0 then S.poll_cancel st
      done
  | Tape p ->
      (* The tape engine keeps its own block counter inside one flat
         dispatch loop, with the same fuel/poll accounting as above. *)
      Tape.exec ~fuel p t.st);
  if not t.st.S.halted then raise Fuel_exhausted

let poll_cancel t = S.poll_cancel t.st

let stats t = t.st.S.stats
let cycles t = t.st.S.stats.Stats.cycles
let retval t = t.st.S.retval
let time t = S.time t.st
let halted t = t.st.S.halted
let memory t = t.st.S.mem
