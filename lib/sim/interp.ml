module Ir = Spf_ir.Ir

(* IR interpreter with a dataflow timing model.

   Functional execution and timing are computed together: every SSA value
   carries a ready-time alongside its contents, and every memory operation
   consults the {!Memsys} model.  Two core models share the machinery:

   - {e out-of-order}: instructions dispatch in order at the machine's
     width, bounded by a reorder buffer (an instruction cannot dispatch
     until the instruction [rob] slots earlier has retired); execution
     starts when operands are ready; retirement is in order.  Independent
     load misses therefore overlap up to the ROB/MSHR limits, which is why
     software prefetching buys little on Haswell/A57 but still helps.

   - {e in-order}: instructions issue strictly in order and stall until
     their operands are ready; demand misses are additionally serialised
     through [demand_slots] (1 on A53/Phi, per the paper's "stalls on load
     misses").  Software prefetches never stall, which is where the large
     in-order speedups come from.

   Time is kept in scaled cycles ([tscale] sub-cycle units) so that
   multi-issue dispatch intervals stay integral. *)

let default_tscale = 12

(* Demand accesses to unmapped addresses fault, carrying enough context to
   compare trap sites across differential runs; software prefetches to the
   same addresses are dropped non-faulting instead (§4.4). *)
type fault = { pc : int; addr : int; width : int; is_store : bool }

exception Trap of fault

exception Fuel_exhausted

let fault_to_string { pc; addr; width; is_store } =
  Printf.sprintf "%s of %d byte(s) at address %d faulted (instr %d)"
    (if is_store then "store" else "load")
    width addr pc

(* Parallel phi copies for one CFG edge, precomputed at {!create} so the
   hot loop never consults a hash table or assoc list.  The scratch
   buffers ([iv]/[fv]/[rd]) implement read-all-before-write-any without
   allocating on every edge traversal. *)
type edge =
  | No_copies
  | Copies of {
      dsts : int array;
      srcs : Ir.operand array;
      iv : int array;
      fv : float array;
      rd : int array;
    }
  | Bad_phi of string
      (* a phi in the successor lacks this edge; the error is raised only
         if the edge is actually taken, matching the old lazy behaviour *)

type t = {
  machine : Machine.t;
  func : Ir.func;
  mem : Memory.t;
  memsys : Memsys.t;
  stats : Stats.t;
  env : int array;
  fenv : float array;
  ready : int array;
  blocks : Ir.instr array array; (* per block: non-phi instructions *)
  terms : Ir.terminator array;
  edges : edge array; (* (pred * nblocks + succ) -> phi parallel copies *)
  call_fns : (int array -> int) option array;
      (* per instruction id: resolved intrinsic, filled by
         [register_intrinsic] (no hash lookup on the call path) *)
  call_sites : (int * string) list; (* (call instr id, callee name) *)
  tscale : int;
  disp_int : int;
  in_order : bool;
  rob_ring : int array;
  demand_free : int array;
  miss_restart : int;
  mutable cur : int;
  mutable halted : bool;
  mutable retval : int option;
  mutable last_dispatch : int;
  mutable last_retire : int;
  mutable inst_index : int;
}

let create ~machine ?(tscale = default_tscale) ?dram ?stats ~mem ~args func =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let dram =
    match dram with Some d -> d | None -> Dram.create machine.Machine.dram ~tscale
  in
  let memsys = Memsys.create machine ~tscale ~dram ~stats in
  let n = Ir.n_instrs func in
  let nb = Ir.n_blocks func in
  let blocks =
    Array.init nb (fun b ->
        let ids = (Ir.block func b).instrs in
        let non_phi =
          Array.to_list ids
          |> List.filter_map (fun id ->
                 let i = Ir.instr func id in
                 match i.kind with Ir.Phi _ -> None | _ -> Some i)
        in
        Array.of_list non_phi)
  in
  let terms = Array.init nb (fun b -> (Ir.block func b).term) in
  (* Precompute the phi parallel copies of every CFG edge (pred, succ).
     The old implementation built these lazily into a Hashtbl with an
     [List.assoc_opt] per phi; doing it once here keeps [take_edge]
     allocation- and lookup-free. *)
  let edge_of ~pred ~succ =
    let copies = ref [] and missing = ref None in
    Array.iter
      (fun id ->
        let i = Ir.instr func id in
        match i.kind with
        | Ir.Phi incoming -> (
            match List.assoc_opt pred incoming with
            | Some v -> copies := (i.id, v) :: !copies
            | None ->
                if !missing = None then
                  missing :=
                    Some
                      (Printf.sprintf "Interp: phi %d lacks edge from bb%d"
                         i.id pred))
        | _ -> ())
      (Ir.block func succ).instrs;
    match !missing with
    | Some msg -> Bad_phi msg
    | None -> (
        match List.rev !copies with
        | [] -> No_copies
        | copies ->
            let m = List.length copies in
            Copies
              {
                dsts = Array.of_list (List.map fst copies);
                srcs = Array.of_list (List.map snd copies);
                iv = Array.make m 0;
                fv = Array.make m 0.0;
                rd = Array.make m 0;
              })
  in
  let edges = Array.make (nb * nb) No_copies in
  Array.iteri
    (fun pred term ->
      let succs =
        match term with
        | Ir.Br s -> [ s ]
        | Ir.Cbr (_, bt, bf) -> if bt = bf then [ bt ] else [ bt; bf ]
        | Ir.Ret _ | Ir.Unreachable -> []
      in
      List.iter
        (fun succ -> edges.((pred * nb) + succ) <- edge_of ~pred ~succ)
        succs)
    terms;
  (* Call sites, so intrinsics resolve into a per-instruction array at
     registration time instead of a Hashtbl probe per dynamic call. *)
  let call_sites =
    Array.fold_left
      (fun acc block ->
        Array.fold_left
          (fun acc (i : Ir.instr) ->
            match i.kind with
            | Ir.Call { callee; _ } -> (i.id, callee) :: acc
            | _ -> acc)
          acc block)
      [] blocks
  in
  let t =
    {
      machine;
      func;
      mem;
      memsys;
      stats;
      env = Array.make (max n 1) 0;
      fenv = Array.make (max n 1) 0.0;
      ready = Array.make (max n 1) 0;
      blocks;
      terms;
      edges;
      call_fns = Array.make (max n 1) None;
      call_sites;
      tscale;
      disp_int = max 1 (tscale * machine.inst_cost / machine.width);
      in_order = machine.kind = Machine.In_order;
      rob_ring = Array.make (max machine.rob 1) 0;
      demand_free = Array.make (max machine.demand_slots 1) 0;
      miss_restart = machine.miss_restart * tscale;
      cur = func.entry;
      halted = false;
      retval = None;
      last_dispatch = 0;
      last_retire = 0;
      inst_index = 0;
    }
  in
  (* Bind parameters. *)
  Array.iteri
    (fun k id ->
      if k < Array.length args then t.env.(id) <- args.(k))
    func.param_ids;
  t

let register_intrinsic t name fn =
  List.iter
    (fun (id, callee) -> if String.equal callee name then t.call_fns.(id) <- Some fn)
    t.call_sites

let ival t = function
  | Ir.Var id -> t.env.(id)
  | Ir.Imm n -> n
  | Ir.Fimm x -> Int64.to_int (Int64.bits_of_float x)

let fval t = function
  | Ir.Var id -> t.fenv.(id)
  | Ir.Fimm x -> x
  | Ir.Imm n -> float_of_int n

let rtime t = function Ir.Var id -> t.ready.(id) | Ir.Imm _ | Ir.Fimm _ -> 0

let srcs_ready t (k : Ir.kind) =
  match k with
  | Ir.Binop (_, a, b) | Ir.Cmp (_, a, b) | Ir.Store (_, a, b) ->
      max (rtime t a) (rtime t b)
  | Ir.Select (c, a, b) -> max (rtime t c) (max (rtime t a) (rtime t b))
  | Ir.Load (_, a) | Ir.Prefetch a | Ir.Alloc a -> rtime t a
  | Ir.Gep { base; index; _ } -> max (rtime t base) (rtime t index)
  | Ir.Call { args; _ } -> List.fold_left (fun m a -> max m (rtime t a)) 0 args
  | Ir.Phi _ | Ir.Param _ -> 0

let exec_binop t op x y dst =
  match op with
  | Ir.Add -> t.env.(dst) <- ival t x + ival t y
  | Ir.Sub -> t.env.(dst) <- ival t x - ival t y
  | Ir.Mul -> t.env.(dst) <- ival t x * ival t y
  | Ir.Sdiv -> t.env.(dst) <- ival t x / ival t y
  | Ir.Srem -> t.env.(dst) <- ival t x mod ival t y
  | Ir.And -> t.env.(dst) <- ival t x land ival t y
  | Ir.Or -> t.env.(dst) <- ival t x lor ival t y
  | Ir.Xor -> t.env.(dst) <- ival t x lxor ival t y
  | Ir.Shl -> t.env.(dst) <- ival t x lsl ival t y
  | Ir.Lshr -> t.env.(dst) <- ival t x lsr ival t y
  | Ir.Ashr -> t.env.(dst) <- ival t x asr ival t y
  | Ir.Smin -> t.env.(dst) <- min (ival t x) (ival t y)
  | Ir.Smax -> t.env.(dst) <- max (ival t x) (ival t y)
  | Ir.Fadd -> t.fenv.(dst) <- fval t x +. fval t y
  | Ir.Fsub -> t.fenv.(dst) <- fval t x -. fval t y
  | Ir.Fmul -> t.fenv.(dst) <- fval t x *. fval t y
  | Ir.Fdiv -> t.fenv.(dst) <- fval t x /. fval t y

let binop_latency = function
  | Ir.Mul -> 3
  | Ir.Sdiv | Ir.Srem -> 12
  | Ir.Fadd | Ir.Fsub | Ir.Fmul -> 4
  | Ir.Fdiv -> 12
  | Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Lshr | Ir.Ashr
  | Ir.Smin | Ir.Smax -> 1

let eval_cmp pred a b =
  match pred with
  | Ir.Eq -> a = b
  | Ir.Ne -> a <> b
  | Ir.Slt -> a < b
  | Ir.Sle -> a <= b
  | Ir.Sgt -> a > b
  | Ir.Sge -> a >= b

(* Dispatch the next dynamic instruction; returns its start time. *)
let dispatch t ~operands_ready =
  if t.in_order then begin
    (* In-order issue: wait for operands at issue time (stall-on-use). *)
    let issue = max (t.last_dispatch + t.disp_int) operands_ready in
    t.last_dispatch <- issue;
    t.inst_index <- t.inst_index + 1;
    issue
  end
  else begin
    let rob_slot = t.inst_index mod Array.length t.rob_ring in
    let d = max (t.last_dispatch + t.disp_int) t.rob_ring.(rob_slot) in
    t.last_dispatch <- d;
    t.inst_index <- t.inst_index + 1;
    max d operands_ready
  end

(* Record in-order retirement (OoO ROB bookkeeping). *)
let retire t ~complete =
  let r = max complete t.last_retire in
  t.last_retire <- r;
  if not t.in_order then begin
    let rob_slot = (t.inst_index - 1) mod Array.length t.rob_ring in
    t.rob_ring.(rob_slot) <- r
  end

(* Index of the earliest-free outstanding-demand-miss slot. *)
let free_demand_slot t =
  let slots = t.demand_free in
  let k = ref 0 in
  for i = 1 to Array.length slots - 1 do
    if slots.(i) < slots.(!k) then k := i
  done;
  !k

let exec_instr t (i : Ir.instr) =
  t.stats.instructions <- t.stats.instructions + 1;
  let start = dispatch t ~operands_ready:(srcs_ready t i.kind) in
  let dst = i.id in
  let complete =
    match i.kind with
    | Ir.Binop (op, x, y) ->
        exec_binop t op x y dst;
        start + (binop_latency op * t.tscale)
    | Ir.Cmp (pred, x, y) ->
        t.env.(dst) <- (if eval_cmp pred (ival t x) (ival t y) then 1 else 0);
        start + t.tscale
    | Ir.Select (c, x, y) ->
        let pick = if ival t c <> 0 then x else y in
        t.env.(dst) <- ival t pick;
        (match pick with
        | Ir.Var id -> t.fenv.(dst) <- t.fenv.(id)
        | Ir.Fimm f -> t.fenv.(dst) <- f
        | Ir.Imm _ -> ());
        start + t.tscale
    | Ir.Gep { base; index; scale } ->
        t.env.(dst) <- ival t base + (ival t index * scale);
        start + t.tscale
    | Ir.Load (ty, a) ->
        let addr = ival t a in
        let width = Ir.size_of_ty ty in
        if not (Memory.in_bounds t.mem ~addr ~width) then
          raise (Trap { pc = i.id; addr; width; is_store = false });
        (match ty with
        | Ir.F64 -> t.fenv.(dst) <- Memory.load_f64 t.mem addr
        | Ir.I8 | Ir.I16 | Ir.I32 | Ir.I64 ->
            t.env.(dst) <- Memory.load t.mem ty addr);
        (* In-order cores support few outstanding demand misses: a load
           cannot begin its lookup until a slot frees (stall-on-miss when
           [demand_slots] = 1).  Hits release the slot immediately. *)
        let slot = if t.in_order then free_demand_slot t else -1 in
        let start =
          if t.in_order then max start t.demand_free.(slot) else start
        in
        let completion =
          Memsys.access t.memsys ~kind:Memsys.Demand ~pc:i.id ~addr ~now:start
        in
        (match Memsys.last_level t.memsys with
        | Memsys.L1 -> completion
        | Memsys.Inflight | Memsys.L2 | Memsys.L3 ->
            if t.in_order then t.demand_free.(slot) <- completion;
            completion
        | Memsys.Dram ->
            if t.in_order then t.demand_free.(slot) <- completion;
            completion + t.miss_restart)
    | Ir.Store (ty, a, v) ->
        let addr = ival t a in
        let width = Ir.size_of_ty ty in
        if not (Memory.in_bounds t.mem ~addr ~width) then
          raise (Trap { pc = i.id; addr; width; is_store = true });
        (match ty with
        | Ir.F64 -> Memory.store_f64 t.mem addr (fval t v)
        | Ir.I8 | Ir.I16 | Ir.I32 | Ir.I64 ->
            Memory.store t.mem ty addr (ival t v));
        ignore
          (Memsys.access t.memsys ~kind:Memsys.Write ~pc:i.id ~addr ~now:start);
        start + t.tscale
    | Ir.Prefetch a ->
        (* Prefetches are hints: out-of-bounds or unmapped addresses are
           dropped without faulting (and without touching the cache/TLB
           model) but counted, so fuzzing can observe how often the pass
           leans on this escape hatch. *)
        let addr = ival t a in
        if Memory.in_bounds t.mem ~addr ~width:1 then
          ignore
            (Memsys.access t.memsys ~kind:Memsys.Sw_prefetch ~pc:i.id ~addr
               ~now:start)
        else t.stats.dropped_prefetches <- t.stats.dropped_prefetches + 1;
        start + t.tscale
    | Ir.Alloc sz ->
        t.env.(dst) <- Memory.alloc t.mem (ival t sz);
        start + t.tscale
    | Ir.Call { callee; args; _ } ->
        let fn =
          match t.call_fns.(i.id) with
          | Some fn -> fn
          | None -> failwith ("Interp: unknown intrinsic " ^ callee)
        in
        t.env.(dst) <- fn (Array.of_list (List.map (ival t) args));
        start + (10 * t.tscale)
    | Ir.Param k ->
        ignore k;
        start + t.tscale
    | Ir.Phi _ -> (* executed on edges *) start
  in
  if Ir.defines_value i.kind then t.ready.(dst) <- complete;
  retire t ~complete

(* Execute the precomputed phi parallel copies of edge (pred, succ):
   read every source into the edge's scratch buffers, then write every
   destination (read-all-before-write-any). *)
let take_edge t ~pred ~succ =
  (match t.edges.((pred * Array.length t.blocks) + succ) with
  | No_copies -> ()
  | Bad_phi msg -> failwith msg
  | Copies { dsts; srcs; iv; fv; rd } ->
      let n = Array.length dsts in
      for k = 0 to n - 1 do
        let src = srcs.(k) in
        iv.(k) <- ival t src;
        (match src with
        | Ir.Var id -> fv.(k) <- t.fenv.(id)
        | Ir.Fimm f -> fv.(k) <- f
        | Ir.Imm _ -> fv.(k) <- 0.0);
        rd.(k) <- rtime t src
      done;
      for k = 0 to n - 1 do
        let dst = dsts.(k) in
        t.env.(dst) <- iv.(k);
        t.fenv.(dst) <- fv.(k);
        t.ready.(dst) <- rd.(k)
      done);
  t.cur <- succ

(* Execute the current block (non-phi instructions plus terminator);
   returns [false] once the function has returned. *)
let step t =
  if t.halted then false
  else begin
    let instrs = t.blocks.(t.cur) in
    for k = 0 to Array.length instrs - 1 do
      exec_instr t instrs.(k)
    done;
    (* Terminators occupy a dispatch slot; branch direction is assumed
       predicted, so control does not wait on the condition's readiness. *)
    t.stats.instructions <- t.stats.instructions + 1;
    let start = dispatch t ~operands_ready:0 in
    retire t ~complete:(start + t.tscale);
    (match t.terms.(t.cur) with
    | Ir.Br succ -> take_edge t ~pred:t.cur ~succ
    | Ir.Cbr (c, bt, bf) ->
        let succ = if ival t c <> 0 then bt else bf in
        take_edge t ~pred:t.cur ~succ
    | Ir.Ret v ->
        t.retval <- Option.map (ival t) v;
        t.halted <- true
    | Ir.Unreachable -> failwith "Interp: reached unreachable");
    t.stats.cycles <- (max t.last_retire t.last_dispatch) / t.tscale;
    not t.halted
  end

let run ?(fuel = max_int) t =
  let steps = ref 0 in
  while (not t.halted) && !steps < fuel do
    ignore (step t);
    incr steps
  done;
  if not t.halted then raise Fuel_exhausted

let stats t = t.stats
let cycles t = t.stats.cycles
let retval t = t.retval
let time t = max t.last_retire t.last_dispatch
let halted t = t.halted
let memory t = t.mem
