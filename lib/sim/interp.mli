(** IR interpreter with a dataflow timing model.

    Functional execution and timing are computed together: every SSA value
    carries a ready-time, and every memory operation consults {!Memsys}.
    Out-of-order machines overlap independent misses up to their ROB/MSHR
    limits; in-order machines issue strictly in order, stall on unready
    operands, and serialise demand misses through a small slot pool —
    software prefetches never stall on either model. *)

type t

(** A demand access to an unmapped address (see {!Memory.in_bounds}). *)
type fault = { pc : int; addr : int; width : int; is_store : bool }

exception Trap of fault
(** Raised by {!step}/{!run} when a demand load or store falls outside the
    mapped region.  Software prefetches never trap: out-of-range prefetch
    addresses are dropped and counted in
    {!Stats.t.dropped_prefetches}. *)

exception Fuel_exhausted
(** Raised by {!run} when the fuel budget is exceeded — distinct from
    [Failure] so fuzzing can tell non-termination from other errors. *)

type cancel = Exec_state.cancel
(** Cooperative cancellation token (see {!Exec_state}). *)

exception Cancelled of Stats.t
(** Raised by {!run} (at block granularity) once the instance's [cancel]
    token has been fired, carrying the stats accumulated so far. *)

val new_cancel : unit -> cancel
val fire_cancel : cancel -> unit

val fault_to_string : fault -> string

val default_tscale : int
(** Sub-cycle time scale (dispatch intervals of multi-issue cores stay
    integral). *)

val create :
  machine:Machine.t ->
  ?tscale:int ->
  ?dram:Dram.t ->
  ?stats:Stats.t ->
  ?cancel:cancel ->
  ?attrib:Attrib.t ->
  ?tuner:Tuner.t ->
  ?engine:Engine.t ->
  mem:Memory.t ->
  args:int array ->
  Spf_ir.Ir.func ->
  t
(** Instantiate an execution of [func] with parameter values [args] over
    the given memory.  Pass a shared [dram] to model multicore bandwidth
    contention.  [engine] selects the classic instruction walker, the
    compile-to-closure engine or the micro-op tape engine (default
    {!Engine.default}); all three are bit-identical.  [attrib] buckets
    memory behaviour per source loop; [tuner] drives adaptive distance
    registers — both engine-independent. *)

val register_intrinsic : t -> string -> (int array -> int) -> unit
(** Provide the implementation of a [Call] target. *)

val step : t -> bool
(** Execute the current basic block; [false] once the function returned. *)

val run : ?fuel:int -> t -> unit
(** Run to completion.
    @raise Fuel_exhausted if [fuel] blocks are exceeded.
    @raise Trap on a demand access to an unmapped address.
    @raise Cancelled once the instance's cancel token fires. *)

val poll_cancel : t -> unit
(** @raise Cancelled if the instance's token has been fired — the
    multicore driver's poll point between core steps. *)

val stats : t -> Stats.t
val cycles : t -> int
(** Elapsed cycles (valid once halted; updated each step). *)

val retval : t -> int option
val time : t -> int
(** Current time in scaled cycles — the multicore driver's scheduling key. *)

val halted : t -> bool
val memory : t -> Memory.t
