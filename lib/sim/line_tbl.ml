(* Open-addressing int -> int hash table for the memory system's in-flight
   fill tracking (line number -> fill completion time).

   A generic [Hashtbl] probe on this path pays a C call for hashing and
   another for polymorphic key comparison per access; with one probe per
   simulated memory operation those two calls are among the hottest
   instructions in the whole simulator.  This table keeps keys and values
   in two int arrays with multiplicative hashing and linear probing, so a
   probe is a handful of inline loads.

   Keys are non-negative (line numbers).  Slots: -1 = empty, -2 =
   tombstone.  The capacity is a power of two; the table grows (and drops
   tombstones) when live + dead entries exceed half of it. *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int; (* capacity - 1 *)
  mutable live : int; (* entries holding a binding *)
  mutable used : int; (* live + tombstones *)
}

let empty_slot = -1
let tombstone = -2

let create () =
  {
    keys = Array.make 64 empty_slot;
    vals = Array.make 64 0;
    mask = 63;
    live = 0;
    used = 0;
  }

let length t = t.live

(* Fibonacci hashing: spreads the low-entropy high bits of sequential line
   numbers across the table.  The multiplier is 2^62/phi, odd. *)
let home t key = (key * 0x2E67_F2AE_35E8_DC29) land t.mask

(* Returns the binding of [key], or -1 when absent (values are completion
   times, always >= 0) — no [option] allocation on the per-access path. *)
let find t key =
  let keys = t.keys in
  let mask = t.mask in
  let rec probe i =
    let k = Array.unsafe_get keys i in
    if k = key then Array.unsafe_get t.vals i
    else if k = empty_slot then -1
    else probe ((i + 1) land mask)
  in
  probe (home t key)

let rec insert_fresh keys vals mask key v i =
  if Array.unsafe_get keys i = empty_slot then begin
    Array.unsafe_set keys i key;
    Array.unsafe_set vals i v
  end
  else insert_fresh keys vals mask key v ((i + 1) land mask)

(* Double the capacity (or just shed tombstones if mostly dead) and
   re-insert the live bindings. *)
let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = (t.mask + 1) * if t.live * 4 > t.mask + 1 then 2 else 1 in
  let keys = Array.make cap empty_slot in
  let vals = Array.make cap 0 in
  let mask = cap - 1 in
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- mask;
  t.used <- t.live;
  Array.iteri
    (fun i k ->
      if k >= 0 then insert_fresh keys vals mask k old_vals.(i) (home t k))
    old_keys

let replace t key v =
  let keys = t.keys in
  let mask = t.mask in
  (* First tombstone seen on the probe path, reusable if the key is
     absent. *)
  let rec probe i dead =
    let k = Array.unsafe_get keys i in
    if k = key then Array.unsafe_set t.vals i v
    else if k = empty_slot then
      if dead >= 0 then begin
        Array.unsafe_set keys dead key;
        Array.unsafe_set t.vals dead v;
        t.live <- t.live + 1
      end
      else begin
        Array.unsafe_set keys i key;
        Array.unsafe_set t.vals i v;
        t.live <- t.live + 1;
        t.used <- t.used + 1;
        if t.used * 2 > mask then grow t
      end
    else
      probe ((i + 1) land mask)
        (if dead < 0 && k = tombstone then i else dead)
  in
  probe (home t key) (-1)

(* Drop every binding with value <= bound and rebuild at the smallest
   power-of-two capacity keeping the load factor under a half (floor 64).
   The rebuild also sheds tombstones, so a post-sweep probe over the
   (typically small) survivor set is short and host-cache-resident
   again. *)
let sweep t ~bound =
  let old_keys = t.keys and old_vals = t.vals in
  let live = ref 0 in
  Array.iteri
    (fun i k -> if k >= 0 && Array.unsafe_get old_vals i > bound then incr live)
    old_keys;
  let cap = ref 64 in
  while !live * 2 > !cap do
    cap := !cap * 2
  done;
  let cap = !cap in
  let keys = Array.make cap empty_slot in
  let vals = Array.make cap 0 in
  let mask = cap - 1 in
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- mask;
  t.live <- !live;
  t.used <- !live;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let v = Array.unsafe_get old_vals i in
        if v > bound then insert_fresh keys vals mask k v (home t k)
      end)
    old_keys

let remove t key =
  let keys = t.keys in
  let mask = t.mask in
  let rec probe i =
    let k = Array.unsafe_get keys i in
    if k = key then begin
      Array.unsafe_set keys i tombstone;
      t.live <- t.live - 1
    end
    else if k <> empty_slot then probe ((i + 1) land mask)
  in
  probe (home t key)
