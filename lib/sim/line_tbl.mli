(** Open-addressing [int -> int] hash table for the memory system's
    in-flight fill map — a probe is a few inline loads instead of the two
    C calls (hash + polymorphic compare) a generic [Hashtbl] probe costs.
    Keys and values must be non-negative. *)

type t

val create : unit -> t
val length : t -> int

val find : t -> int -> int
(** The binding of the key, or [-1] when absent. *)

val replace : t -> int -> int -> unit
val remove : t -> int -> unit
