(** Open-addressing [int -> int] hash table for the memory system's
    in-flight fill map — a probe is a few inline loads instead of the two
    C calls (hash + polymorphic compare) a generic [Hashtbl] probe costs.
    Keys and values must be non-negative. *)

type t

val create : unit -> t
val length : t -> int

val find : t -> int -> int
(** The binding of the key, or [-1] when absent. *)

val replace : t -> int -> int -> unit
val remove : t -> int -> unit

val sweep : t -> bound:int -> unit
(** Drop every binding whose value is [<= bound] and rebuild the table at
    the smallest fitting capacity.  The memory system uses this to purge
    fills that already completed behind the core's dispatch low-water
    mark: without it, lines that complete and are never touched again
    accumulate for the whole run and every probe degrades into a host
    cache miss over a multi-megabyte table. *)
