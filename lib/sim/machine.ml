(* Machine descriptions for the four systems of Table 1.

   Cache/TLB geometry follows the paper's Table 1; latencies, queue depths
   and penalties use published figures for these cores and are calibrated so
   the simulator reproduces the paper's speedup *shapes* (see
   EXPERIMENTS.md).  All latencies are in core cycles. *)

type core_kind = In_order | Out_of_order

type cache_geom = { size : int; assoc : int }

type dram_cfg = {
  latency : int; (* load-to-use latency of a DRAM line fill *)
  occupancy : int; (* channel occupancy per line: the bandwidth bound *)
}

type stride_cfg = {
  table : int; (* number of PC-indexed stream entries *)
  threshold : int; (* confirmations before issuing *)
  distance : int; (* lines of look-ahead once confirmed *)
  to_l1 : bool; (* insert into L1 (otherwise L2 and below) *)
}

type t = {
  name : string;
  kind : core_kind;
  width : int; (* issue width *)
  inst_cost : int; (* cycles consumed per [width] instructions (KNC's
                      single-thread decode restriction makes this 2) *)
  rob : int; (* reorder-buffer entries (out-of-order only) *)
  demand_slots : int; (* outstanding demand misses (in-order only) *)
  mshrs : int; (* outstanding demand-side line fills (L1 fill buffers) *)
  pf_mshrs : int; (* outstanding prefetch fills (drain via the L2 queue) *)
  l1 : cache_geom;
  l2 : cache_geom;
  l3 : cache_geom option;
  lat_l1 : int;
  lat_l2 : int;
  lat_l3 : int;
  dram : dram_cfg;
  tlb_entries : int;
  tlb_assoc : int;
  page_shift : int; (* 12 = 4KiB pages, 21 = 2MiB transparent huge pages *)
  walk_latency : int; (* page-table walk cost *)
  walkers : int; (* concurrent page-table walks supported *)
  stride_pf : stride_cfg option;
  miss_restart : int; (* pipeline-refill penalty per ROB-blocking miss *)
}

let kib n = n * 1024
let mib n = n * 1024 * 1024

(* Intel Core i5-4570 (Haswell): 4-wide out-of-order, 192-entry ROB,
   32KiB L1D / 256KiB L2 / 8MiB L3, DDR3, 2 page walkers, transparent huge
   pages available (page policy is selected per experiment). *)
let haswell =
  {
    name = "Haswell";
    kind = Out_of_order;
    width = 4;
    inst_cost = 1;
    (* 192 x86 micro-ops of window; our IR instructions are finer-grained
       than uops (explicit geps fold into x86 addressing modes), so the
       window covers ~1.3x as many IR instructions. *)
    rob = 256;
    demand_slots = 16;
    mshrs = 10; (* L1D fill buffers *)
    pf_mshrs = 14;
    l1 = { size = kib 32; assoc = 8 };
    l2 = { size = kib 256; assoc = 8 };
    l3 = Some { size = mib 8; assoc = 16 };
    lat_l1 = 4;
    lat_l2 = 12;
    lat_l3 = 36;
    dram = { latency = 200; occupancy = 8 };
    tlb_entries = 1024; (* unified L2 STLB *)
    tlb_assoc = 8;
    page_shift = 12;
    walk_latency = 30; (* walks mostly hit the paging-structure caches *)
    walkers = 2;
    stride_pf = Some { table = 64; threshold = 2; distance = 8; to_l1 = false };
    miss_restart = 8;
  }

(* Intel Xeon Phi 3120P (Knights Corner): in-order 2-wide, 32KiB L1D /
   512KiB L2, GDDR5 (high bandwidth, high latency), no L3. *)
let xeon_phi =
  {
    name = "XeonPhi";
    kind = In_order;
    (* one instruction every other cycle from a single hardware thread *)
    width = 1;
    inst_cost = 2;
    rob = 0;
    demand_slots = 1;
    mshrs = 8;
    pf_mshrs = 8;
    l1 = { size = kib 32; assoc = 8 };
    l2 = { size = kib 512; assoc = 8 };
    l3 = None;
    lat_l1 = 3;
    lat_l2 = 24;
    lat_l3 = 0;
    dram = { latency = 400; occupancy = 4 }; (* GDDR5: high latency, wide *)
    tlb_entries = 64;
    tlb_assoc = 4;
    page_shift = 21; (* KNC's MPSS runs with transparent huge pages *)
    walk_latency = 120;
    walkers = 1;
    stride_pf = Some { table = 16; threshold = 2; distance = 4; to_l1 = false };
    miss_restart = 0;
  }

(* ARM Cortex-A57 (Nvidia TX1): 3-wide out-of-order (modelled 2-wide with a
   128-entry window), 32KiB L1D / 2MiB L2, LPDDR4, single page walker (the
   paper highlights this as the limiter for IS and HJ-2). *)
let a57 =
  {
    name = "A57";
    kind = Out_of_order;
    width = 2;
    inst_cost = 1;
    rob = 170; (* 128 micro-ops ~ 170 finer-grained IR instructions *)
    demand_slots = 8;
    mshrs = 6;
    pf_mshrs = 6;
    l1 = { size = kib 32; assoc = 2 };
    l2 = { size = mib 2; assoc = 16 };
    l3 = None;
    lat_l1 = 4;
    lat_l2 = 21;
    lat_l3 = 0;
    dram = { latency = 220; occupancy = 10 };
    tlb_entries = 1024; (* unified L2 TLB *)
    tlb_assoc = 4;
    page_shift = 12;
    walk_latency = 90;
    walkers = 1; (* one page-table walk at a time — the §6.1 limiter *)
    stride_pf = Some { table = 32; threshold = 2; distance = 6; to_l1 = false };
    miss_restart = 8;
  }

(* ARM Cortex-A53 (Odroid C2): 2-wide in-order, stalls on load misses,
   32KiB L1D, DDR3, single page walker.  The Amlogic S905's L2 is 512KiB
   (the paper's Table 1 lists 1MiB; the SoC datasheet says 512KiB, and the
   smaller value is what exposes the visited-list misses that §6.1 says
   dominate Graph500 on in-order cores). *)
let a53 =
  {
    name = "A53";
    kind = In_order;
    width = 2;
    inst_cost = 1;
    rob = 0;
    demand_slots = 1;
    mshrs = 3; (* tiny linefill-buffer pool *)
    pf_mshrs = 2;
    l1 = { size = kib 32; assoc = 4 };
    l2 = { size = kib 512; assoc = 16 };
    l3 = None;
    lat_l1 = 3;
    lat_l2 = 15;
    lat_l3 = 0;
    dram = { latency = 230; occupancy = 14 };
    tlb_entries = 512; (* unified L2 TLB *)
    tlb_assoc = 4;
    page_shift = 12;
    walk_latency = 60;
    walkers = 1;
    stride_pf = Some { table = 32; threshold = 2; distance = 6; to_l1 = false };
    miss_restart = 0;
  }

let all = [ haswell; a57; a53; xeon_phi ]

let by_name name =
  List.find_opt (fun m -> String.lowercase_ascii m.name = String.lowercase_ascii name) all

type page_policy = Small_pages | Huge_pages

let with_pages m = function
  | Small_pages -> { m with page_shift = 12 }
  | Huge_pages -> { m with page_shift = 21 }

let line_shift = 6
let line_size = 64

(* Canonical one-line rendering of every timing-relevant field, the
   machine half of a content-addressed result-cache key.  The record
   pattern is exhaustive so a new field cannot silently be left out of
   the key; [name] is included (it selects nothing by itself, but two
   models that differ only in name should read as different keys — they
   are different declared machines). *)
let canonical
    {
      name;
      kind;
      width;
      inst_cost;
      rob;
      demand_slots;
      mshrs;
      pf_mshrs;
      l1;
      l2;
      l3;
      lat_l1;
      lat_l2;
      lat_l3;
      dram;
      tlb_entries;
      tlb_assoc;
      page_shift;
      walk_latency;
      walkers;
      stride_pf;
      miss_restart;
    } =
  let geom (g : cache_geom) = Printf.sprintf "%d/%d" g.size g.assoc in
  Printf.sprintf
    "name=%s kind=%s width=%d icost=%d rob=%d dslots=%d mshrs=%d pfmshrs=%d \
     l1=%s l2=%s l3=%s lat=%d/%d/%d dram=%d/%d tlb=%d/%d page=%d walk=%d/%d \
     stride=%s restart=%d"
    name
    (match kind with In_order -> "in-order" | Out_of_order -> "ooo")
    width inst_cost rob demand_slots mshrs pf_mshrs (geom l1) (geom l2)
    (match l3 with None -> "-" | Some g -> geom g)
    lat_l1 lat_l2 lat_l3 dram.latency dram.occupancy tlb_entries tlb_assoc
    page_shift walk_latency walkers
    (match stride_pf with
    | None -> "-"
    | Some s ->
        Printf.sprintf "%d/%d/%d/%b" s.table s.threshold s.distance s.to_l1)
    miss_restart

let pp fmt m =
  let geom fmt (g : cache_geom) =
    if g.size >= mib 1 then Format.fprintf fmt "%dMiB/%d-way" (g.size / mib 1) g.assoc
    else Format.fprintf fmt "%dKiB/%d-way" (g.size / kib 1) g.assoc
  in
  Format.fprintf fmt
    "%-8s %-12s width=%d rob=%-3d mshrs=%d+%dpf L1=%a L2=%a%t DRAM=%dcy/%dcy \
     TLB=%dx%d-way walk=%dcy walkers=%d"
    m.name
    (match m.kind with In_order -> "in-order" | Out_of_order -> "out-of-order")
    m.width m.rob m.mshrs m.pf_mshrs geom m.l1 geom m.l2
    (fun fmt ->
      match m.l3 with
      | None -> ()
      | Some g -> Format.fprintf fmt " L3=%a" geom g)
    m.dram.latency m.dram.occupancy m.tlb_entries m.tlb_assoc m.walk_latency
    m.walkers
