(** Machine descriptions for the four evaluated systems (paper Table 1).

    Cache/TLB geometry follows Table 1; latencies and queue depths use
    published figures for these cores, calibrated so the simulator
    reproduces the paper's speedup {e shapes} (EXPERIMENTS.md records the
    calibration). *)

type core_kind = In_order | Out_of_order

type cache_geom = { size : int; assoc : int }

type dram_cfg = {
  latency : int;  (** load-to-use latency of a line fill, cycles *)
  occupancy : int;  (** channel occupancy per line — the bandwidth bound *)
}

type stride_cfg = {
  table : int;  (** PC-indexed stream-table entries *)
  threshold : int;  (** stride confirmations before issuing *)
  distance : int;  (** look-ahead in lines once confirmed *)
  to_l1 : bool;  (** insert into L1 rather than L2-and-below *)
}

type t = {
  name : string;
  kind : core_kind;
  width : int;
  inst_cost : int;  (** cycles consumed per [width] instructions *)
  rob : int;
  demand_slots : int;  (** concurrent demand misses (in-order cores) *)
  mshrs : int;  (** concurrent demand-side line fills (L1 fill buffers) *)
  pf_mshrs : int;  (** concurrent prefetch fills (drain via the L2 queue) *)
  l1 : cache_geom;
  l2 : cache_geom;
  l3 : cache_geom option;
  lat_l1 : int;
  lat_l2 : int;
  lat_l3 : int;
  dram : dram_cfg;
  tlb_entries : int;
  tlb_assoc : int;
  page_shift : int;  (** 12 = 4KiB pages; 21 = 2MiB huge pages *)
  walk_latency : int;
  walkers : int;  (** concurrent page-table walks (1 on A57/A53/Phi) *)
  stride_pf : stride_cfg option;
  miss_restart : int;  (** pipeline-refill penalty per ROB-blocking miss *)
}

val haswell : t
val xeon_phi : t
val a57 : t
val a53 : t

val all : t list
val by_name : string -> t option

type page_policy = Small_pages | Huge_pages

val with_pages : t -> page_policy -> t

val line_shift : int
val line_size : int

val canonical : t -> string
(** Deterministic one-line rendering of every timing-relevant field — the
    machine half of a content-addressed result-cache key.  Exhaustive
    over the record, so a new field cannot be forgotten silently. *)

val kib : int -> int
val mib : int -> int

val pp : Format.formatter -> t -> unit
