module Ir = Spf_ir.Ir

(* Flat byte-addressable memory with a bump allocator.

   Address 0 is never handed out (allocations start at one page) so that a
   zero address can serve as a null sentinel in workloads.  The backing
   buffer grows on demand; all accessors are little-endian. *)

type t = { mutable data : Bytes.t; mutable brk : int }

let create ?(initial = 1 lsl 20) () =
  { data = Bytes.make initial '\000'; brk = 4096 }

let ensure t limit =
  let n = Bytes.length t.data in
  if limit > n then begin
    let n' = ref n in
    while limit > !n' do
      n' := !n' * 2
    done;
    let bigger = Bytes.make !n' '\000' in
    Bytes.blit t.data 0 bigger 0 n;
    t.data <- bigger
  end

(* Allocate [size] bytes aligned to a cache line; returns the base address. *)
let alloc t size =
  let aligned = (t.brk + Machine.line_size - 1) land lnot (Machine.line_size - 1) in
  ensure t (aligned + size);
  t.brk <- aligned + size;
  aligned

let size t = t.brk

(* Shrink the mapped region (clamp the break).  Accesses at or past the
   new break trap afterwards; the validator uses this to hunt for
   introduced faults near the end of the allocation. *)
let truncate t brk =
  (* The initial page is never unmapped: [create] starts the break at
     4096 and [alloc] only grows it, so addresses below 4096 are
     in-bounds in every reachable memory — an invariant the translation
     validator's null-page reasoning relies on. *)
  let brk = max brk 4096 in
  if brk < t.brk then t.brk <- brk

(* An access is in bounds when it lies entirely below the break.  The
   interpreter traps demand accesses outside this range and drops software
   prefetches to it non-faulting; the first page (never handed out by
   [alloc]) stays readable so workloads can use small integers as null-ish
   sentinels without faulting on stray dereferences of page zero. *)
let in_bounds t ~addr ~width =
  (* [t.brk - width] rather than [addr + width] so huge addresses cannot
     wrap around max_int and masquerade as mapped. *)
  addr >= 0 && width >= 0 && addr <= t.brk - width

(* Content digest of the allocated region, for differential testing. *)
let digest t = Digest.to_hex (Digest.subbytes t.data 0 t.brk)

let load t (ty : Ir.ty) addr =
  match ty with
  | Ir.I8 -> Char.code (Bytes.get t.data addr)
  | Ir.I16 -> Bytes.get_uint16_le t.data addr
  | Ir.I32 -> Int32.to_int (Bytes.get_int32_le t.data addr) land 0xFFFFFFFF
  | Ir.I64 | Ir.F64 -> Int64.to_int (Bytes.get_int64_le t.data addr)

let store t (ty : Ir.ty) addr v =
  match ty with
  | Ir.I8 -> Bytes.set t.data addr (Char.chr (v land 0xFF))
  | Ir.I16 -> Bytes.set_uint16_le t.data addr (v land 0xFFFF)
  | Ir.I32 -> Bytes.set_int32_le t.data addr (Int32.of_int v)
  | Ir.I64 | Ir.F64 -> Bytes.set_int64_le t.data addr (Int64.of_int v)

let load_f64 t addr = Int64.float_of_bits (Bytes.get_int64_le t.data addr)
let store_f64 t addr x = Bytes.set_int64_le t.data addr (Int64.bits_of_float x)

(* Unchecked multi-byte accessors.  [Bytes.get_int64_le] and friends are
   out-of-line stdlib calls that bounds-check and box their result; on the
   simulator's per-dynamic-load path that call plus the allocation is
   measurable.  These compiler primitives inline to a single (unaligned)
   machine access, with the byte order fixed up on big-endian hosts. *)
external get_16u : Bytes.t -> int -> int = "%caml_bytes_get16u"
external get_32u : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external get_64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set_16u : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
external set_32u : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external set_64u : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external swap16 : int -> int = "%bswap16"
external swap32 : int32 -> int32 = "%bswap_int32"
external swap64 : int64 -> int64 = "%bswap_int64"

(* Callers must have established [in_bounds] first — the interpreter traps
   before reaching these, so the Bytes bounds check would be pure
   overhead. *)
let unsafe_load t (ty : Ir.ty) addr =
  match ty with
  | Ir.I8 -> Char.code (Bytes.unsafe_get t.data addr)
  | Ir.I16 ->
      let v = get_16u t.data addr in
      if Sys.big_endian then swap16 v else v
  | Ir.I32 ->
      let v = get_32u t.data addr in
      Int32.to_int (if Sys.big_endian then swap32 v else v) land 0xFFFFFFFF
  | Ir.I64 | Ir.F64 ->
      let v = get_64u t.data addr in
      Int64.to_int (if Sys.big_endian then swap64 v else v)

let unsafe_store t (ty : Ir.ty) addr v =
  match ty with
  | Ir.I8 -> Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))
  | Ir.I16 ->
      let v = v land 0xFFFF in
      set_16u t.data addr (if Sys.big_endian then swap16 v else v)
  | Ir.I32 ->
      let v = Int32.of_int v in
      set_32u t.data addr (if Sys.big_endian then swap32 v else v)
  | Ir.I64 | Ir.F64 ->
      let v = Int64.of_int v in
      set_64u t.data addr (if Sys.big_endian then swap64 v else v)

let unsafe_load_f64 t addr =
  let v = get_64u t.data addr in
  Int64.float_of_bits (if Sys.big_endian then swap64 v else v)

let unsafe_store_f64 t addr x =
  let v = Int64.bits_of_float x in
  set_64u t.data addr (if Sys.big_endian then swap64 v else v)

(* Convenience array views used by workload generators and checksums. *)

let alloc_i32_array t values =
  let base = alloc t (4 * Array.length values) in
  Array.iteri (fun i v -> store t Ir.I32 (base + (4 * i)) v) values;
  base

let alloc_i64_array t values =
  let base = alloc t (8 * Array.length values) in
  Array.iteri (fun i v -> store t Ir.I64 (base + (8 * i)) v) values;
  base

let alloc_f64_array t values =
  let base = alloc t (8 * Array.length values) in
  Array.iteri (fun i v -> store_f64 t (base + (8 * i)) v) values;
  base

let read_i32_array t ~base ~len = Array.init len (fun i -> load t Ir.I32 (base + (4 * i)))
let read_i64_array t ~base ~len = Array.init len (fun i -> load t Ir.I64 (base + (8 * i)))
let read_f64_array t ~base ~len = Array.init len (fun i -> load_f64 t (base + (8 * i)))
