(** Flat little-endian byte memory with a bump allocator.

    Address 0 is never handed out, so it can serve as a null sentinel. *)

type t

val create : ?initial:int -> unit -> t
val alloc : t -> int -> int
(** Allocate bytes aligned to a cache line; returns the base address. *)

val size : t -> int
(** Current break (total bytes in use). *)

val truncate : t -> int -> unit
(** Shrink the mapping break (used by the translation validator to hunt
    for introduced faults under the tightest mapping that still admits
    the original run).  Clamped to 4096: the initial page is never
    unmapped, so addresses below 4096 stay in-bounds in every reachable
    memory. *)

val in_bounds : t -> addr:int -> width:int -> bool
(** Whether a [width]-byte access at [addr] lies entirely inside the
    allocated (mapped) region [0, break).  The interpreter traps demand
    accesses outside it and drops prefetches to it non-faulting. *)

val digest : t -> string
(** Hex digest of the allocated region's contents — the differential
    fuzzing oracle's memory-equality check. *)

val load : t -> Spf_ir.Ir.ty -> int -> int
(** Integer loads zero-extend ([I8]/[I16]/[I32]); [I64]/[F64] return the
    raw low 63 bits. *)

val store : t -> Spf_ir.Ir.ty -> int -> int -> unit

val load_f64 : t -> int -> float
val store_f64 : t -> int -> float -> unit

(** {1 Unchecked accessors for the simulator hot path}

    Same semantics as the checked versions, but skip the Bytes bounds
    check and inline to a raw machine access.  Callers must have
    established [in_bounds] for the access first — the interpreter's
    trap check does exactly that. *)

val unsafe_load : t -> Spf_ir.Ir.ty -> int -> int
val unsafe_store : t -> Spf_ir.Ir.ty -> int -> int -> unit
val unsafe_load_f64 : t -> int -> float
val unsafe_store_f64 : t -> int -> float -> unit

(** {1 Bulk helpers for workload setup and checksums} *)

val alloc_i32_array : t -> int array -> int
val alloc_i64_array : t -> int array -> int
val alloc_f64_array : t -> float array -> int
val read_i32_array : t -> base:int -> len:int -> int array
val read_i64_array : t -> base:int -> len:int -> int array
val read_f64_array : t -> base:int -> len:int -> float array
