(* The per-core memory system: TLB (with a bounded pool of page-table
   walkers), L1/L2/optional-L3 caches, MSHR-limited line fills from a DRAM
   channel (shareable between cores), in-flight fill tracking, and a
   hardware stride prefetcher trained by demand loads.

   All times are in the core model's scaled cycles.  [access] returns the
   completion time of the request; [last_level] reports where it was
   satisfied so the core model can apply in-order / ROB-restart policies. *)

type kind = Demand | Write | Sw_prefetch | Hw_prefetch

type level = L1 | L2 | L3 | Dram | Inflight

type t = {
  tscale : int;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t option;
  tlb : Cache.t;
  walkers : int array; (* busy-until time per walker *)
  mshrs : int array; (* busy-until time per demand fill slot *)
  pf_mshrs : int array; (* busy-until time per prefetch fill slot *)
  inflight : Line_tbl.t; (* line -> fill completion *)
  pf_tbl : Line_tbl.t;
      (* line -> pc of the software prefetch whose DRAM fill brought it in,
         kept until the first demand touch (used) or an LLC eviction
         (unused) — the timeliness classification of §4.4.  Empty on runs
         without software prefetches, so the emptiness guard keeps plain
         runs free of any probe. *)
  dram : Dram.t;
  spf : Stride_pf.t option;
  stats : Stats.t;
  attrib : Attrib.t option; (* per-loop attribution sink, when profiling *)
  mutable last_pf_late : bool;
      (* did the most recent demand lookup catch a marked fill in flight? *)
  lat_l1 : int;
  lat_l2 : int;
  lat_l3 : int;
  walk_latency : int;
  mutable page_shift : int;
  mutable last_level : level;
}

let create (m : Machine.t) ~tscale ~dram ~stats ?attrib () =
  let mk (g : Machine.cache_geom) =
    Cache.create ~size:g.size ~assoc:g.assoc ~unit_shift:Machine.line_shift
  in
  {
    tscale;
    l1 = mk m.l1;
    l2 = mk m.l2;
    l3 = Option.map mk m.l3;
    tlb = Cache.create_entries ~entries:m.tlb_entries ~assoc:m.tlb_assoc;
    walkers = Array.make (max 1 m.walkers) 0;
    mshrs = Array.make (max 1 m.mshrs) 0;
    pf_mshrs = Array.make (max 1 m.pf_mshrs) 0;
    inflight = Line_tbl.create ();
    pf_tbl = Line_tbl.create ();
    dram;
    spf = Option.map Stride_pf.create m.stride_pf;
    stats;
    attrib;
    last_pf_late = false;
    lat_l1 = m.lat_l1 * tscale;
    lat_l2 = m.lat_l2 * tscale;
    lat_l3 = m.lat_l3 * tscale;
    walk_latency = m.walk_latency * tscale;
    page_shift = m.page_shift;
    last_level = L1;
  }

let last_level t = t.last_level
let stats t = t.stats

let imax (a : int) (b : int) = if a < b then b else a

(* Index of the earliest-free slot in a busy-until array.  Runs on every
   miss (twice on the DRAM path), scanning a <= 24-entry array: keep the
   comparison value in a local and the accesses unchecked. *)
let min_slot (slots : int array) =
  let best = ref 0 in
  let best_v = ref (Array.unsafe_get slots 0) in
  for k = 1 to Array.length slots - 1 do
    let v = Array.unsafe_get slots k in
    if v < !best_v then begin
      best := k;
      best_v := v
    end
  done;
  !best

(* Translate [addr] at time [now]; returns when the translation is
   available.  Misses consume a page-table walker and fill the TLB —
   including for prefetches, which is the TLB-priming side effect the
   paper's Fig 10 discusses. *)
let translate t ~addr ~now =
  let page = addr lsr t.page_shift in
  if Cache.access t.tlb page then now
  else begin
    t.stats.tlb_misses <- t.stats.tlb_misses + 1;
    t.stats.page_walks <- t.stats.page_walks + 1;
    let k = min_slot t.walkers in
    let start = imax now t.walkers.(k) in
    t.walkers.(k) <- start + t.walk_latency;
    ignore (Cache.insert_absent t.tlb page);
    start + t.walk_latency
  end

(* Every L1 miss occupies a fill buffer (MSHR) until its data arrives,
   whatever level supplies it — this is what bounds a core's memory-level
   parallelism.  Demand misses use the L1's fill buffers; prefetches drain
   through the (typically deeper) L2 queue, which is precisely the
   asymmetry that lets software prefetching raise a core's sustained miss
   throughput. *)
let with_mshr t ~kind ~now fill =
  let slots =
    match kind with
    | Demand | Write -> t.mshrs
    | Sw_prefetch | Hw_prefetch -> t.pf_mshrs
  in
  let k = min_slot slots in
  let start = imax now slots.(k) in
  let completion = fill start in
  slots.(k) <- completion;
  completion

(* The cache/DRAM lookup path, shared by demand and prefetch requests.
   The in-flight probe is guarded by an O(1) emptiness check: phases that
   hit in cache never populate the table, so their L1 hits skip the hash
   probe entirely and the walk is a single [Cache.access]. *)
(* A line evicted from the last-level cache while still carrying its
   software-prefetch mark was never demand-touched: the prefetch fill was
   wasted (issued too early for the reuse, or useless).  Lines still marked
   and resident at end of run are deliberately unclassified — they were
   neither used nor pushed out. *)
let note_llc_victim t victim =
  match victim with
  | None -> ()
  | Some v ->
      if Line_tbl.length t.pf_tbl > 0 then begin
        let p = Line_tbl.find t.pf_tbl v in
        if p >= 0 then begin
          Line_tbl.remove t.pf_tbl v;
          t.stats.unused_pf_fills <- t.stats.unused_pf_fills + 1;
          match t.attrib with
          | Some at -> Attrib.on_unused at ~pf_pc:p
          | None -> ()
        end
      end

let lookup t ~kind ~pc ~line ~now =
  if kind = Demand then t.last_pf_late <- false;
  let fill =
    if Line_tbl.length t.inflight = 0 then -1 else Line_tbl.find t.inflight line
  in
  if fill > now then begin
    if kind = Demand then begin
      t.stats.inflight_hits <- t.stats.inflight_hits + 1;
      (* Catching a software-prefetch fill in flight means the prefetch
         helped but came too late to hide the whole miss. *)
      if Line_tbl.length t.pf_tbl > 0 then begin
        let p = Line_tbl.find t.pf_tbl line in
        if p >= 0 then begin
          Line_tbl.remove t.pf_tbl line;
          t.stats.late_pf_fills <- t.stats.late_pf_fills + 1;
          t.last_pf_late <- true
        end
      end
    end;
    t.last_level <- Inflight;
    fill
  end
  else begin
      if fill >= 0 then Line_tbl.remove t.inflight line;
      (* First demand touch of a timely software-prefetched line: used. *)
      if
        kind = Demand
        && Line_tbl.length t.pf_tbl > 0
        && Line_tbl.find t.pf_tbl line >= 0
      then Line_tbl.remove t.pf_tbl line;
      if Cache.access t.l1 line then begin
        t.last_level <- L1;
        t.stats.l1_hits <- t.stats.l1_hits + 1;
        now + t.lat_l1
      end
      else if Cache.access t.l2 line then begin
        t.last_level <- L2;
        t.stats.l2_hits <- t.stats.l2_hits + 1;
        ignore (Cache.insert_absent t.l1 line);
        with_mshr t ~kind ~now (fun start -> start + t.lat_l2)
      end
      else
        match t.l3 with
        | Some l3 when Cache.access l3 line ->
            t.last_level <- L3;
            t.stats.l3_hits <- t.stats.l3_hits + 1;
            ignore (Cache.insert_absent t.l2 line);
            ignore (Cache.insert_absent t.l1 line);
            with_mshr t ~kind ~now (fun start -> start + t.lat_l3)
        | _ -> (
            t.last_level <- Dram;
            (* Prefetches that would queue behind a saturated channel are
               dropped rather than crowd out demand traffic, as real memory
               controllers do — this keeps software prefetching from
               degrading bandwidth-saturated multicore runs (Fig 9).  The
               check runs after MSHR pacing so ordinary bursts, which the
               fill buffers spread out, are not dropped. *)
            let is_prefetch =
              match kind with
              | Sw_prefetch | Hw_prefetch -> true
              | Demand | Write -> false
            in
            let slots =
              match kind with
              | Demand | Write -> t.mshrs
              | Sw_prefetch | Hw_prefetch -> t.pf_mshrs
            in
            let k = min_slot slots in
            let start = imax now slots.(k) in
            if
              is_prefetch
              && Dram.backlog t.dram ~now:start > 3 * Dram.latency t.dram
            then now (* dropped: no fill started, no slot held *)
            else begin
              t.stats.dram_fills <- t.stats.dram_fills + 1;
              let completion = Dram.request t.dram ~now:start in
              slots.(k) <- completion;
              let into_l1 =
                match kind with
                | Hw_prefetch -> (
                    match t.spf with
                    | Some p -> Stride_pf.insert_to_l1 p
                    | None -> false)
                | Demand | Write | Sw_prefetch -> true
              in
              (* The insert into the last level is where capacity victims
                 fall out of the hierarchy for good — classify marked ones
                 as unused prefetch fills. *)
              (match t.l3 with
              | Some l3 ->
                  note_llc_victim t (Cache.insert_absent l3 line);
                  ignore (Cache.insert_absent t.l2 line)
              | None -> note_llc_victim t (Cache.insert_absent t.l2 line));
              if into_l1 then ignore (Cache.insert_absent t.l1 line);
              Line_tbl.replace t.inflight line completion;
              if kind = Sw_prefetch then Line_tbl.replace t.pf_tbl line pc;
              completion
            end)
  end

(* Purge in-flight records whose fill completed at or before [low_water].
   [lookup] only removes a stale record when its exact line is touched
   again; lines that fill and are never re-accessed would otherwise
   accumulate for the whole run (hundreds of thousands on a G500 sweep),
   degrading every probe of the table into a host cache miss.  Any
   monotone lower bound on all future access times makes the sweep
   observationally free — a record with [fill <= now] already behaves as
   absent ([fill > now] fails, and the emptiness fast path short-circuits
   the same way a probe miss resolves.  The threshold keeps the sweep
   amortized: genuinely in-flight lines number at most a few hundred
   (bounded by fill latency x issue rate), so a table past the threshold
   is mostly corpses. *)
let prune_inflight t ~low_water =
  if Line_tbl.length t.inflight >= 1024 then
    Line_tbl.sweep t.inflight ~bound:low_water

let access t ~kind ~pc ~addr ~now =
  let ready = translate t ~addr ~now in
  let line = addr lsr Machine.line_shift in
  let completion = lookup t ~kind ~pc ~line ~now:ready in
  (match kind with
  | Demand -> (
      t.stats.loads <- t.stats.loads + 1;
      (match t.attrib with
      | Some at ->
          Attrib.on_demand at ~pc
            ~dram:(t.last_level = Dram)
            ~late:t.last_pf_late
            ~stall:(imax 0 (completion - now - t.lat_l1))
      | None -> ());
      match t.spf with
      | Some p ->
          let pf_addr = Stride_pf.train p ~pc ~addr in
          if pf_addr >= 0 then begin
            t.stats.hw_prefetches <- t.stats.hw_prefetches + 1;
            let level = t.last_level in
            let pf_ready = translate t ~addr:pf_addr ~now:ready in
            ignore
              (lookup t ~kind:Hw_prefetch ~pc
                 ~line:(pf_addr lsr Machine.line_shift)
                 ~now:pf_ready);
            t.last_level <- level
          end
      | None -> ())
  | Write -> t.stats.stores <- t.stats.stores + 1
  | Sw_prefetch -> t.stats.sw_prefetches <- t.stats.sw_prefetches + 1
  | Hw_prefetch -> t.stats.hw_prefetches <- t.stats.hw_prefetches + 1);
  completion

let set_page_shift t shift =
  t.page_shift <- shift;
  Cache.clear t.tlb
