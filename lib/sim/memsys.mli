(** Per-core memory system: TLB with a bounded walker pool, L1/L2/optional
    L3 caches, MSHR-limited fills from a (shareable) DRAM channel, in-flight
    fill tracking and a hardware stride prefetcher. *)

type kind =
  | Demand  (** a load on the program's critical path *)
  | Write  (** a store (write-allocate, never stalls the core) *)
  | Sw_prefetch  (** prefetch emitted by the pass or by hand *)
  | Hw_prefetch  (** prefetch issued by the stride engine *)

type level = L1 | L2 | L3 | Dram | Inflight

type t

val create :
  Machine.t ->
  tscale:int ->
  dram:Dram.t ->
  stats:Stats.t ->
  ?attrib:Attrib.t ->
  unit ->
  t
(** [tscale] is the core model's sub-cycle time scale; all configured
    latencies are multiplied by it.  The [dram] channel may be shared
    between several cores' memory systems (Fig 9).  When [attrib] is given,
    demand-load outcomes and unused-prefetch evictions are additionally
    bucketed per source loop (profiling and the adaptive tuner). *)

val access : t -> kind:kind -> pc:int -> addr:int -> now:int -> int
(** Perform an access; returns its completion time.  Demand loads train the
    stride prefetcher under their [pc].  TLB misses are taken (and walks
    paid) for all kinds, including prefetches, which is what primes the TLB
    (Fig 10). *)

val last_level : t -> level
(** Where the most recent [access] was satisfied. *)

val prune_inflight : t -> low_water:int -> unit
(** Drop in-flight fill records that completed at or before [low_water],
    once enough of them have piled up (cheap no-op below an internal
    threshold).  [low_water] must be a monotone lower bound on the [now]
    of every future [access] — the core's dispatch clock qualifies; the
    engines call this at block boundaries.  Observationally free: a
    record with completion [<= now] already behaves exactly like an
    absent one. *)

val stats : t -> Stats.t

val set_page_shift : t -> int -> unit
(** Switch page policy (flushes the TLB). *)
