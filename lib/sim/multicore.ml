(* Multicore driver for the bandwidth experiment (Fig 9): N independent
   instances (private caches and TLBs) share one DRAM channel.  Cores are
   co-simulated by always stepping the core with the smallest local time,
   so contention on the shared channel is interleaved realistically.

   Core selection is a binary min-heap keyed on (local time, core index):
   O(log n) per step instead of the previous O(n) scan, with the index in
   the key preserving the scan's deterministic tie-break (lowest index
   among equal times).  A halted core leaves the heap, so the loop ends
   the moment no core is runnable — fuel is only consumed by real steps,
   never by spinning over an already-finished set of cores. *)

type t = { cores : Interp.t array }

let create ~machine ~n_cores ~make_instance =
  let tscale = Interp.default_tscale in
  let dram = Dram.create machine.Machine.dram ~tscale in
  let cores =
    Array.init n_cores (fun core_id -> make_instance ~core_id ~dram ~tscale)
  in
  { cores }

let run ?(fuel = max_int) t =
  let n = Array.length t.cores in
  (* Heap of runnable core indices; [less] orders by (time, index). *)
  let heap = Array.init n (fun i -> i) in
  let size = ref 0 in
  let less a b =
    let ta = Interp.time t.cores.(a) and tb = Interp.time t.cores.(b) in
    ta < tb || (ta = tb && a < b)
  in
  let swap i j =
    let tmp = heap.(i) in
    heap.(i) <- heap.(j);
    heap.(j) <- tmp
  in
  let rec sift_down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < !size && less heap.(l) heap.(!m) then m := l;
    if r < !size && less heap.(r) heap.(!m) then m := r;
    if !m <> i then begin
      swap i !m;
      sift_down !m
    end
  in
  (* Seed with the runnable cores only (a finished multicore re-run is a
     no-op, not a fuel-burning spin). *)
  Array.iteri
    (fun k _ ->
      if not (Interp.halted t.cores.(k)) then begin
        heap.(!size) <- k;
        incr size
      end)
    t.cores;
  for i = (!size / 2) - 1 downto 0 do
    sift_down i
  done;
  let steps = ref 0 in
  (* Cancellation poll: any core carries the (shared) token, so checking
     the one being stepped every 1024 steps observes a watchdog deadline
     without touching the per-step hot path. *)
  let poll_mask = 1023 in
  while !size > 0 && !steps < fuel do
    if !size = 1 then begin
      (* One runnable core left (the common case: every single-core run,
         and the tail of every multicore one): no ordering to maintain,
         so step it flat out instead of paying a sift per step. *)
      let c = t.cores.(heap.(0)) in
      while !size = 1 && !steps < fuel do
        if not (Interp.step c) then decr size;
        incr steps;
        if !steps land poll_mask = 0 then Interp.poll_cancel c
      done
    end
    else begin
      let k = heap.(0) in
      if !steps land poll_mask = 0 then Interp.poll_cancel t.cores.(k);
      if Interp.step t.cores.(k) then
        (* The core's local time advanced: restore the heap ordering. *)
        sift_down 0
      else begin
        decr size;
        heap.(0) <- heap.(!size);
        sift_down 0
      end;
      incr steps
    end
  done;
  if !size > 0 then failwith "Multicore.run: out of fuel"

let cores t = t.cores

(* Makespan: the time at which the last core finishes. *)
let total_cycles t =
  Array.fold_left (fun m c -> max m (Interp.cycles c)) 0 t.cores
