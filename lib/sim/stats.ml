(* Execution counters, shared by the memory system and the core model. *)

type t = {
  mutable instructions : int; (* dynamic non-phi instructions *)
  mutable loads : int;
  mutable stores : int;
  mutable sw_prefetches : int;
  mutable hw_prefetches : int;
  mutable dropped_prefetches : int;
      (* software prefetches to unmapped/out-of-bounds addresses, dropped
         non-faulting (§4.4's semantic-invisibility obligation) *)
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable dram_fills : int;
  mutable inflight_hits : int; (* demand hits on an in-flight fill *)
  mutable late_pf_fills : int;
      (* software-prefetch fills a demand load caught in flight: the
         prefetch helped but was issued too late to hide all the latency *)
  mutable unused_pf_fills : int;
      (* software-prefetched lines evicted from the last-level cache before
         any demand access touched them: issued too early (or uselessly) *)
  mutable tlb_misses : int;
  mutable page_walks : int;
  mutable cycles : int; (* set at end of run *)
}

let create () =
  {
    instructions = 0;
    loads = 0;
    stores = 0;
    sw_prefetches = 0;
    hw_prefetches = 0;
    dropped_prefetches = 0;
    l1_hits = 0;
    l2_hits = 0;
    l3_hits = 0;
    dram_fills = 0;
    inflight_hits = 0;
    late_pf_fills = 0;
    unused_pf_fills = 0;
    tlb_misses = 0;
    page_walks = 0;
    cycles = 0;
  }

let fields t =
  [
    ("cycles", t.cycles);
    ("instructions", t.instructions);
    ("loads", t.loads);
    ("stores", t.stores);
    ("sw_prefetches", t.sw_prefetches);
    ("hw_prefetches", t.hw_prefetches);
    ("dropped_prefetches", t.dropped_prefetches);
    ("l1_hits", t.l1_hits);
    ("l2_hits", t.l2_hits);
    ("l3_hits", t.l3_hits);
    ("dram_fills", t.dram_fills);
    ("inflight_hits", t.inflight_hits);
    ("late_pf_fills", t.late_pf_fills);
    ("unused_pf_fills", t.unused_pf_fills);
    ("tlb_misses", t.tlb_misses);
    ("page_walks", t.page_walks);
  ]

let first_mismatch a b =
  let rec go = function
    | [], [] -> None
    | (name, x) :: ra, (name', y) :: rb ->
        assert (String.equal name name');
        if x <> y then Some (name, x, y) else go (ra, rb)
    | _ -> assert false
  in
  go (fields a, fields b)

let ipc t = if t.cycles = 0 then 0.0 else float_of_int t.instructions /. float_of_int t.cycles

let pp fmt t =
  Format.fprintf fmt
    "cycles=%d insts=%d (ipc %.2f) loads=%d stores=%d swpf=%d hwpf=%d \
     swpf-dropped=%d@ l1=%d l2=%d l3=%d dram=%d inflight=%d swpf-late=%d \
     swpf-unused=%d tlbmiss=%d walks=%d"
    t.cycles t.instructions (ipc t) t.loads t.stores t.sw_prefetches
    t.hw_prefetches t.dropped_prefetches t.l1_hits t.l2_hits t.l3_hits
    t.dram_fills t.inflight_hits t.late_pf_fills t.unused_pf_fills
    t.tlb_misses t.page_walks
