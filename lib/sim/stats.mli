(** Execution counters shared by the memory system and core model. *)

type t = {
  mutable instructions : int;  (** dynamic non-phi instructions *)
  mutable loads : int;
  mutable stores : int;
  mutable sw_prefetches : int;
  mutable hw_prefetches : int;
  mutable dropped_prefetches : int;
      (** software prefetches to unmapped addresses, dropped non-faulting *)
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable dram_fills : int;
  mutable inflight_hits : int;  (** demand hits on an in-flight fill *)
  mutable late_pf_fills : int;
      (** software-prefetch fills a demand load caught while still in
          flight — issued too late to hide all the latency *)
  mutable unused_pf_fills : int;
      (** software-prefetched lines evicted from the last-level cache
          before any demand access touched them — issued too early (or
          uselessly) *)
  mutable tlb_misses : int;
  mutable page_walks : int;
  mutable cycles : int;
}

val create : unit -> t

val fields : t -> (string * int) list
(** Every counter as a (name, value) pair, in declaration order. *)

val first_mismatch : t -> t -> (string * int * int) option
(** First counter whose values differ — [Some (name, a, b)] — or [None]
    when all counters agree.  Drives readable diffs when two engines or
    two golden runs diverge. *)

val ipc : t -> float
val pp : Format.formatter -> t -> unit
