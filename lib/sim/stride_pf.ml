(* Hardware stride prefetcher, modelled after the region-based streamers in
   these cores (e.g. Intel's L2 streamer): stream-table entries track the
   last access and stride *per 4 KiB region* (two sub-streams per region,
   as the streamers document), not per instruction.  Once a stride has been
   confirmed [threshold] times the prefetcher requests the line [distance]
   lines ahead in the stream's direction.

   Being region-based matters for the paper's results twice over:
   - purely data-dependent accesses (IS's buckets, RA's table...) never
     confirm a stride, which is the gap the pass fills;
   - interleaved streams over the *same* array — the demand stream at [i]
     and the pass's look-ahead loads at [i + offset] — compete for the
     region's sub-streams and keep disturbing each other, which is why the
     paper's software stride companions (§4.3, Fig 5) still pay off on
     machines with hardware prefetchers. *)

type entry = {
  mutable region : int;
  mutable last : int;
  mutable stride : int;
  mutable conf : int;
}

type t = {
  cfg : Machine.stride_cfg;
  entries : entry array;
  mask : int; (* length - 1 when a power of two, else -1: [train] runs
                 once per demand load, so entry selection should be a
                 mask, not a division, whenever the config allows *)
}

let region_shift = 12

(* One stream tracked per region.  These streamers detect one forward
   stream per 4 KiB page: when the pass's look-ahead loads interleave with
   the demand stream on the same array, the two keep retraining the entry
   and coverage collapses — the measured reason the intuitive
   indirect-only scheme of Fig 2 underperforms and the stride companions
   of Fig 5 pay off. *)

let create (cfg : Machine.stride_cfg) =
  let n = max 1 cfg.table in
  {
    cfg;
    entries =
      Array.init n (fun _ -> { region = -1; last = 0; stride = 0; conf = 0 });
    mask = (if n land (n - 1) = 0 then n - 1 else -1);
  }

let reset e ~region ~addr =
  e.region <- region;
  e.last <- addr;
  e.stride <- 0;
  e.conf <- 0

(* Train on a demand access; returns the address to prefetch, or a
   negative value when there is nothing to issue.  [train] runs once per
   simulated demand load, so with one sub-stream per region the selection
   reduces to: continue the region's stream while the access stays within
   a 2 KiB window of it, re-train (reset) otherwise. *)
let train t ~pc ~addr =
  ignore pc;
  let region = addr lsr region_shift in
  let idx =
    if t.mask >= 0 then region land t.mask
    else region mod Array.length t.entries
  in
  let e = Array.unsafe_get t.entries idx in
  if e.region <> region then begin
    reset e ~region ~addr;
    -1
  end
  else begin
    let d = addr - e.last in
    if (if d < 0 then -d else d) > 2048 then begin
      (* Too far from the tracked stream: treat as a new stream stealing
         the region's entry. *)
      reset e ~region ~addr;
      -1
    end
    else begin
      e.last <- addr;
      if d = 0 then -1
      else if d = e.stride then begin
        if e.conf < 1_000 then e.conf <- e.conf + 1;
        if e.conf >= t.cfg.threshold then
          addr + ((if d > 0 then 1 else -1) * t.cfg.distance * Machine.line_size)
        else -1
      end
      else begin
        e.stride <- d;
        e.conf <- 0;
        -1
      end
    end
  end

let insert_to_l1 t = t.cfg.to_l1
