(** Hardware stride prefetcher (region-based stream table, as in these
    cores' L2 streamers).

    Data-dependent accesses never confirm a stride — the gap the pass
    fills — and two interleaved streams over the same array (demand plus
    the pass's look-ahead loads) alias to one region entry and destroy each
    other's stride, which is why software stride companions (§4.3 / Fig 5)
    still pay off on machines with hardware prefetchers. *)

type t

val create : Machine.stride_cfg -> t

val train : t -> pc:int -> addr:int -> int
(** Train the entry for [pc] with a demand access to [addr]; returns an
    address to hardware-prefetch once the stride is confirmed, or a
    negative value when there is nothing to issue.  (An [int] rather than
    an [int option]: this runs once per simulated demand load, and the
    allocation plus match showed up in profiles.) *)

val insert_to_l1 : t -> bool
(** Whether this prefetcher's fills are installed in the L1 (otherwise they
    stop at the L2 and below). *)
