module Ir = Spf_ir.Ir
module Usedef = Spf_ir.Usedef
module S = Exec_state

(* Micro-op tape execution engine.

   The closure engine (Compile) already decodes each static instruction
   once, but its decode product is an array of heap-allocated closures:
   every retired instruction costs an indirect call, and every operand
   read costs a second indirect call through a captured reader closure.
   The tape engine flattens the same decode into contiguous
   struct-of-arrays storage — an int opcode array plus parallel operand /
   destination / latency arrays — so the hot loop is a direct [match] on
   an unboxed opcode (a jump table), with zero closure captures and zero
   allocation per retired instruction.

   Operands are unified into plain slot indices: SSA values keep their
   instruction ids, and immediates are materialized once into trailing
   {e constant slots} of the shared [env]/[fenv]/[ready] arrays (written
   at create time, ready-time permanently 0, never overwritten because
   instruction destinations stay below [Ir.n_instrs]).  Two subtleties
   force the slot tables to mirror the interpreter exactly:

   - an [Imm n] read as a float operand evaluates to [float_of_int n]
     ([Exec_state.fval]), but an [Imm n] flowing through a phi edge-copy
     writes [0.0] into the destination's float half ([Interp.take_edge]);
     the two roles therefore intern {e distinct} constant slots;
   - a [Select] whose picked arm is an [Imm] leaves the destination's
     float half untouched, so selects decode into four opcode variants
     keyed on which arms write [fenv].

   Blocks are laid out as {e superblocks}: decode greedily chains blocks
   across unconditional [Br] edges to not-yet-placed targets, so a
   straight-line kernel body becomes one contiguous tape segment.  An
   interior [Br] becomes a [SEAM] opcode — same terminator timing, same
   pre-planned phi edge-copies, same per-block fuel/cancellation/cycle
   accounting (bit-identical observability), but control simply falls
   through to the next tape pc instead of reloading an edge target.

   Every micro-op drives the shared {!Exec_state} with the shared
   dispatch/retire/memory helpers in exactly the interpreter's order, so
   the engine is bit-identical to the other two: same Stats, same
   Trap/Fuel_exhausted/Cancelled behaviour, same multicore schedule.
   The golden suite, the cross-engine fuzz oracle and the symbolic
   validator pin this.

   Decoded tapes are cached per domain, keyed by (tscale, structural
   signature), like the closure engine's cache.  The phi-copy scratch
   buffers are written and fully consumed inside one block boundary and
   are therefore safe to share between instances on one domain. *)

(* --- opcode space -------------------------------------------------------

   0..12   int binops (Ir.binop declaration order)
   13..16  float binops
   17..22  integer compares (Ir.cmp declaration order)
   23..26  select variants: 23 + (true arm writes fenv) + 2*(false arm)
   27      gep
   28..32  loads (I8, I16, I32, I64, F64)
   33..37  stores (I8, I16, I32, I64, F64)
   38      prefetch
   39      alloc
   40      call (side descriptor array)
   41      param
   42..46  fused gep+load
   47..51  fused gep+store
   52..56  terminators: br, seam, cbr, ret, unreachable

   Per-uop payload (parallel arrays): [xa]/[xb]/[xc] are operand slots
   (or edge indices for branches, the call-descriptor index for calls),
   [dd] is the destination slot / faulting pc, [lt] is the pre-scaled
   latency for binops, the scale for (fused) GEPs, and the call
   latency. *)

let op_of_binop = function
  | Ir.Add -> 0
  | Ir.Sub -> 1
  | Ir.Mul -> 2
  | Ir.Sdiv -> 3
  | Ir.Srem -> 4
  | Ir.And -> 5
  | Ir.Or -> 6
  | Ir.Xor -> 7
  | Ir.Shl -> 8
  | Ir.Lshr -> 9
  | Ir.Ashr -> 10
  | Ir.Smin -> 11
  | Ir.Smax -> 12
  | Ir.Fadd -> 13
  | Ir.Fsub -> 14
  | Ir.Fmul -> 15
  | Ir.Fdiv -> 16

let op_of_cmp = function
  | Ir.Eq -> 17
  | Ir.Ne -> 18
  | Ir.Slt -> 19
  | Ir.Sle -> 20
  | Ir.Sgt -> 21
  | Ir.Sge -> 22

let op_select = 23 (* +1 if the true arm writes fenv, +2 if the false arm *)
let op_gep = 27
let op_load = 28 (* + ty offset *)
let op_store = 33
let op_prefetch = 38
let op_alloc = 39
let op_call = 40
let op_param = 41
let op_gep_load = 42
let op_gep_store = 47
let op_br = 52
let op_seam = 53
let op_cbr = 54
let op_ret = 55
let op_unreachable = 56

let ty_off = function
  | Ir.I8 -> 0
  | Ir.I16 -> 1
  | Ir.I32 -> 2
  | Ir.I64 -> 3
  | Ir.F64 -> 4

(* Inverse of [ty_off], for the load/store arms of the dispatch loop. *)
let[@inline always] ty_of (c : int) =
  if c = 0 then Ir.I8
  else if c = 1 then Ir.I16
  else if c = 2 then Ir.I32
  else if c = 3 then Ir.I64
  else Ir.F64

type call_site = {
  c_pc : int; (* call instruction id (fault/intrinsic table index) *)
  c_dst : int;
  c_callee : string;
  c_args : int array; (* argument slots *)
}

type program = {
  code : int array;
  xa : int array;
  xb : int array;
  xc : int array;
  dd : int array;
  lt : int array;
  bstart : int array; (* per block id: tape pc of its first micro-op *)
  (* CFG edges, struct-of-arrays; phi parallel copies flattened. *)
  e_succ : int array;
  e_pc : int array; (* tape pc of the successor's first micro-op *)
  e_cp_off : int array;
  e_cp_len : int array; (* -1 marks a bad edge (lazy failure, see below) *)
  e_bad : string array;
  cp_dst : int array;
  cp_src : int array;
  (* Read-all-before-write-any scratch for the widest edge; consumed
     within one block boundary, so sharable per domain. *)
  scratch_i : int array;
  scratch_f : float array;
  scratch_r : int array;
  calls : call_site array;
  const_env : int array; (* trailing constant slots: initial values *)
  const_fenv : float array;
  n_base : int; (* first constant slot = Ir.n_instrs *)
  n_seams : int; (* superblock interior edges formed *)
}

let n_extra_slots p = Array.length p.const_env
let seams p = p.n_seams

(* Write the constant slots into a freshly created state (whose arrays
   were sized with [extra_slots = n_extra_slots p]). *)
let init_consts p (st : S.t) =
  let m = Array.length p.const_env in
  Array.blit p.const_env 0 st.S.env p.n_base m;
  Array.blit p.const_fenv 0 st.S.fenv p.n_base m

(* --- decode ------------------------------------------------------------- *)

exception Decode_error of string

let decode_raw ~tsc func : program =
  let usedef = Usedef.build func in
  let nb = Ir.n_blocks func in
  let n = Ir.n_instrs func in
  (* Constant-slot interning: key = (int value, float-half bit pattern),
     so Imm-as-operand (float half = float_of_int n) and Imm-as-phi-source
     (float half = 0.0) get distinct slots. *)
  let ctbl = Hashtbl.create 16 in
  let rev_consts = ref [] and n_consts = ref 0 in
  let slot_for (iv : int) (fv : float) =
    let key = (iv, Int64.bits_of_float fv) in
    match Hashtbl.find_opt ctbl key with
    | Some s -> s
    | None ->
        let s = n + !n_consts in
        incr n_consts;
        rev_consts := (iv, fv) :: !rev_consts;
        Hashtbl.add ctbl key s;
        s
  in
  let slot_of = function
    | Ir.Var id -> id
    | Ir.Imm v -> slot_for v (float_of_int v)
    | Ir.Fimm x -> slot_for (Int64.to_int (Int64.bits_of_float x)) x
  in
  let slot_of_phi_src = function
    | Ir.Var id -> id
    | Ir.Imm v -> slot_for v 0.0 (* edge copies zero the float half *)
    | Ir.Fimm x -> slot_for (Int64.to_int (Int64.bits_of_float x)) x
  in
  (* Micro-op emission into reversed accumulators. *)
  let rev_uops = ref [] and n_uops = ref 0 in
  let emit ?(a = 0) ?(b = 0) ?(c = 0) ?(d = 0) ?(l = 0) op =
    rev_uops := (op, a, b, c, d, l) :: !rev_uops;
    incr n_uops
  in
  (* Superblock layout: chains follow unconditional Br edges to unplaced
     targets, entry chain first; every reached-by-layout block gets a
     contiguous tape segment, and interior Br edges become seams. *)
  let placed = Array.make (max nb 1) false in
  let rev_layout = ref [] in
  let chain b0 =
    let b = ref b0 and more = ref true in
    while !more do
      placed.(!b) <- true;
      rev_layout := !b :: !rev_layout;
      match (Ir.block func !b).Ir.term with
      | Ir.Br s when not placed.(s) -> b := s
      | _ -> more := false
    done
  in
  if nb > 0 then chain func.Ir.entry;
  for b = 0 to nb - 1 do
    if not placed.(b) then chain b
  done;
  let layout = Array.of_list (List.rev !rev_layout) in
  (* Edges: interned per (pred, succ); phi copies flattened with their
     sources pre-resolved to slots.  A phi lacking the edge fails only if
     the edge is actually taken, matching the other engines. *)
  let etbl = Hashtbl.create 16 in
  let rev_edges = ref [] and n_edges = ref 0 in
  let rev_cp = ref [] and n_cp = ref 0 and max_cp = ref 0 in
  let edge_idx ~pred ~succ =
    match Hashtbl.find_opt etbl (pred, succ) with
    | Some e -> e
    | None ->
        let e = !n_edges in
        incr n_edges;
        let off, len, bad =
          match S.phi_copies func ~pred ~succ with
          | S.No_copies -> (0, 0, "")
          | S.Bad_edge msg -> (0, -1, msg)
          | S.Copies { dsts; srcs } ->
              let off = !n_cp in
              let m = Array.length dsts in
              for k = 0 to m - 1 do
                rev_cp := (dsts.(k), slot_of_phi_src srcs.(k)) :: !rev_cp
              done;
              n_cp := !n_cp + m;
              if m > !max_cp then max_cp := m;
              (off, m, "")
        in
        rev_edges := (succ, off, len, bad) :: !rev_edges;
        Hashtbl.add etbl (pred, succ) e;
        e
  in
  let rev_calls = ref [] and n_calls = ref 0 in
  let emit_instr (i : Ir.instr) =
    let dst = i.Ir.id in
    match i.Ir.kind with
    | Ir.Binop (op, x, y) ->
        emit (op_of_binop op) ~a:(slot_of x) ~b:(slot_of y) ~d:dst
          ~l:(S.binop_latency op * tsc)
    | Ir.Cmp (p, x, y) ->
        emit (op_of_cmp p) ~a:(slot_of x) ~b:(slot_of y) ~d:dst
    | Ir.Select (c0, x, y) ->
        let writes = function Ir.Imm _ -> 0 | Ir.Var _ | Ir.Fimm _ -> 1 in
        emit
          (op_select + writes x + (2 * writes y))
          ~a:(slot_of c0) ~b:(slot_of x) ~c:(slot_of y) ~d:dst
    | Ir.Gep { base; index; scale } ->
        emit op_gep ~a:(slot_of base) ~b:(slot_of index) ~d:dst ~l:scale
    | Ir.Load (ty, a) -> emit (op_load + ty_off ty) ~a:(slot_of a) ~d:dst
    | Ir.Store (ty, a, v) ->
        emit (op_store + ty_off ty) ~a:(slot_of a) ~b:(slot_of v) ~d:dst
    | Ir.Prefetch a -> emit op_prefetch ~a:(slot_of a) ~d:dst
    | Ir.Alloc sz -> emit op_alloc ~a:(slot_of sz) ~d:dst
    | Ir.Call { callee; args; _ } ->
        let ci =
          {
            c_pc = dst;
            c_dst = dst;
            c_callee = callee;
            c_args = Array.of_list (List.map slot_of args);
          }
        in
        let idx = !n_calls in
        incr n_calls;
        rev_calls := ci :: !rev_calls;
        emit op_call ~a:idx ~d:dst ~l:(10 * tsc)
    | Ir.Param _ -> emit op_param ~d:dst
    | Ir.Phi _ ->
        (* Phis execute on edges; blocks are filtered below. *)
        assert false
  in
  let emit_fused (g : Ir.instr) (nxt : Ir.instr) =
    let base, index, scale =
      match g.Ir.kind with
      | Ir.Gep { base; index; scale } -> (base, index, scale)
      | _ -> assert false
    in
    let a = slot_of base and b = slot_of index in
    match nxt.Ir.kind with
    | Ir.Load (ty, _) ->
        emit (op_gep_load + ty_off ty) ~a ~b ~d:nxt.Ir.id ~l:scale
    | Ir.Store (ty, _, v) ->
        emit
          (op_gep_store + ty_off ty)
          ~a ~b ~c:(slot_of v) ~d:nxt.Ir.id ~l:scale
    | _ -> assert false
  in
  let bstart = Array.make (max nb 1) 0 in
  let n_seams = ref 0 in
  Array.iteri
    (fun li b ->
      bstart.(b) <- !n_uops;
      let non_phi =
        Array.to_list (Ir.block func b).Ir.instrs
        |> List.filter_map (fun id ->
               let i = Ir.instr func id in
               match i.Ir.kind with Ir.Phi _ -> None | _ -> Some i)
      in
      let rec go = function
        | g :: nxt :: rest when Compile.fusable usedef g nxt ->
            emit_fused g nxt;
            go rest
        | i :: rest ->
            emit_instr i;
            go rest
        | [] -> ()
      in
      go non_phi;
      match (Ir.block func b).Ir.term with
      | Ir.Br s when li + 1 < Array.length layout && layout.(li + 1) = s ->
          incr n_seams;
          emit op_seam ~a:(edge_idx ~pred:b ~succ:s)
      | Ir.Br s -> emit op_br ~a:(edge_idx ~pred:b ~succ:s)
      | Ir.Cbr (c0, bt, bf) ->
          emit op_cbr ~a:(slot_of c0)
            ~b:(edge_idx ~pred:b ~succ:bt)
            ~c:(edge_idx ~pred:b ~succ:bf)
      | Ir.Ret (Some o) -> emit op_ret ~a:(slot_of o)
      | Ir.Ret None -> emit op_ret ~a:(-1)
      | Ir.Unreachable -> emit op_unreachable)
    layout;
  (* Freeze the accumulators into the parallel arrays. *)
  let nu = !n_uops in
  let code = Array.make (max nu 1) op_unreachable in
  let xa = Array.make (max nu 1) 0 in
  let xb = Array.make (max nu 1) 0 in
  let xc = Array.make (max nu 1) 0 in
  let dd = Array.make (max nu 1) 0 in
  let lt = Array.make (max nu 1) 0 in
  let k = ref nu in
  List.iter
    (fun (op, a, b, c, d, l) ->
      decr k;
      code.(!k) <- op;
      xa.(!k) <- a;
      xb.(!k) <- b;
      xc.(!k) <- c;
      dd.(!k) <- d;
      lt.(!k) <- l)
    !rev_uops;
  let ne = !n_edges in
  let e_succ = Array.make (max ne 1) 0 in
  let e_pc = Array.make (max ne 1) 0 in
  let e_cp_off = Array.make (max ne 1) 0 in
  let e_cp_len = Array.make (max ne 1) 0 in
  let e_bad = Array.make (max ne 1) "" in
  let k = ref ne in
  List.iter
    (fun (succ, off, len, bad) ->
      decr k;
      e_succ.(!k) <- succ;
      e_pc.(!k) <- bstart.(succ);
      e_cp_off.(!k) <- off;
      e_cp_len.(!k) <- len;
      e_bad.(!k) <- bad)
    !rev_edges;
  let nc = !n_cp in
  let cp_dst = Array.make (max nc 1) 0 in
  let cp_src = Array.make (max nc 1) 0 in
  let k = ref nc in
  List.iter
    (fun (d, s) ->
      decr k;
      cp_dst.(!k) <- d;
      cp_src.(!k) <- s)
    !rev_cp;
  let calls = Array.of_list (List.rev !rev_calls) in
  let m = !n_consts in
  let const_env = Array.make (max m 1) 0 in
  let const_fenv = Array.make (max m 1) 0.0 in
  let k = ref m in
  List.iter
    (fun (iv, fv) ->
      decr k;
      const_env.(!k) <- iv;
      const_fenv.(!k) <- fv)
    !rev_consts;
  {
    code;
    xa;
    xb;
    xc;
    dd;
    lt;
    bstart;
    e_succ;
    e_pc;
    e_cp_off;
    e_cp_len;
    e_bad;
    cp_dst;
    cp_src;
    scratch_i = Array.make (max !max_cp 1) 0;
    scratch_f = Array.make (max !max_cp 1) 0.0;
    scratch_r = Array.make (max !max_cp 1) 0;
    calls;
    const_env = Array.sub const_env 0 m;
    const_fenv = Array.sub const_fenv 0 m;
    n_base = n;
    n_seams = !n_seams;
  }

let decode ~tscale func : program =
  try decode_raw ~tsc:tscale func
  with
  | Decode_error _ as e -> raise e
  | e ->
      (* Anything escaping decode means this engine cannot run the
         program; wrapping it lets a supervisor distinguish "the tape
         engine choked" (fall back to the closure engine) from "the
         program is bad" (fail the job). *)
      raise (Decode_error (Printexc.to_string e))

(* --- per-domain decode cache ------------------------------------------- *)

type cache = {
  tbl : (string, program) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let cache_key : cache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { tbl = Hashtbl.create 32; hits = 0; misses = 0 })

(* A tape only references slot indices, immediates and [tscale]-scaled
   constants, so (tscale, structural signature) fully determines it —
   one decode serves every machine model and every rebuild of the same
   workload on this domain, and tapes decoded at one [tscale] are never
   served at another. *)
let max_cache_entries = 512

let get ~tscale func : program =
  let c = Domain.DLS.get cache_key in
  let key = string_of_int tscale ^ "#" ^ Ir.signature func in
  match Hashtbl.find_opt c.tbl key with
  | Some p ->
      c.hits <- c.hits + 1;
      p
  | None ->
      c.misses <- c.misses + 1;
      let p = decode ~tscale func in
      if Hashtbl.length c.tbl >= max_cache_entries then Hashtbl.reset c.tbl;
      Hashtbl.add c.tbl key p;
      p

let cache_counters () =
  let c = Domain.DLS.get cache_key in
  (c.hits, c.misses)

(* --- execution ---------------------------------------------------------- *)

let[@inline always] count_instr (s : Stats.t) =
  s.Stats.instructions <- s.Stats.instructions + 1

(* Terminators occupy a dispatch slot; branch direction is assumed
   predicted, so control does not wait on the condition's readiness. *)
let[@inline always] term_pre (st : S.t) tsc =
  count_instr st.S.stats;
  let start = S.dispatch st ~operands_ready:0 in
  S.retire st ~complete:(start + tsc)

(* Take CFG edge [e]: phi parallel copies (read-all-before-write-any via
   the program's scratch buffers), then the successor becomes current. *)
let take_edge p (st : S.t) e =
  let len = Array.unsafe_get p.e_cp_len e in
  if len <> 0 then begin
    if len < 0 then failwith p.e_bad.(e);
    let off = Array.unsafe_get p.e_cp_off e in
    let env = st.S.env and fenv = st.S.fenv and ready = st.S.ready in
    let si = p.scratch_i and sf = p.scratch_f and sr = p.scratch_r in
    let cp_src = p.cp_src and cp_dst = p.cp_dst in
    for k = 0 to len - 1 do
      let s = Array.unsafe_get cp_src (off + k) in
      Array.unsafe_set si k (Array.unsafe_get env s);
      Array.unsafe_set sf k (Array.unsafe_get fenv s);
      Array.unsafe_set sr k (Array.unsafe_get ready s)
    done;
    for k = 0 to len - 1 do
      let d = Array.unsafe_get cp_dst (off + k) in
      Array.unsafe_set env d (Array.unsafe_get si k);
      Array.unsafe_set fenv d (Array.unsafe_get sf k);
      Array.unsafe_set ready d (Array.unsafe_get sr k)
    done
  end;
  st.S.cur <- Array.unsafe_get p.e_succ e

(* Cancellation poll mask: same observable granularity as the other
   engines' run loops (an atomic read every 1024th block). *)
let poll_mask = 1023

(* Execute up to [fuel] original basic blocks starting from [st.cur];
   stops early once the function returns.  Does not raise
   [Fuel_exhausted] itself — the caller checks [halted] — but replicates
   the interpreter run loop's accounting exactly: the block counter
   increments after every block (including the halting one), the cancel
   token is polled at 1024-block boundaries of {e this call}, and the
   cycle counter refreshes at every original block boundary (seams
   included), so stats-so-far at a Trap/Cancelled are bit-identical.

   The state must have been created with [extra_slots = n_extra_slots p]
   and initialized with {!init_consts}. *)
let exec ~fuel (p : program) (st : S.t) =
  if (not st.S.halted) && fuel > 0 then begin
    let code = p.code
    and xa = p.xa
    and xb = p.xb
    and xc = p.xc
    and dd = p.dd
    and lt = p.lt in
    let env = st.S.env and fenv = st.S.fenv and ready = st.S.ready in
    let stats = st.S.stats in
    let tsc = st.S.tscale in
    let steps = ref 0 in
    let pc = ref p.bstart.(st.S.cur) in
    let running = ref true in
    while !running do
      let k = !pc in
      let op = Array.unsafe_get code k in
      match op with
      | 0 | 1 | 2 | 3 | 4 | 5 | 6 | 7 | 8 | 9 | 10 | 11 | 12 ->
          (* int binop *)
          count_instr stats;
          let sa = Array.unsafe_get xa k and sb = Array.unsafe_get xb k in
          let ra = Array.unsafe_get ready sa
          and rb = Array.unsafe_get ready sb in
          let start =
            S.dispatch st ~operands_ready:(if ra > rb then ra else rb)
          in
          let va = Array.unsafe_get env sa and vb = Array.unsafe_get env sb in
          let v =
            match op with
            | 0 -> va + vb
            | 1 -> va - vb
            | 2 -> va * vb
            | 3 -> va / vb
            | 4 -> va mod vb
            | 5 -> va land vb
            | 6 -> va lor vb
            | 7 -> va lxor vb
            | 8 -> va lsl vb
            | 9 -> va lsr vb
            | 10 -> va asr vb
            | 11 -> if va < vb then va else vb
            | _ -> if va > vb then va else vb
          in
          let d = Array.unsafe_get dd k in
          Array.unsafe_set env d v;
          let c = start + Array.unsafe_get lt k in
          Array.unsafe_set ready d c;
          S.retire st ~complete:c;
          pc := k + 1
      | 13 | 14 | 15 | 16 ->
          (* float binop *)
          count_instr stats;
          let sa = Array.unsafe_get xa k and sb = Array.unsafe_get xb k in
          let ra = Array.unsafe_get ready sa
          and rb = Array.unsafe_get ready sb in
          let start =
            S.dispatch st ~operands_ready:(if ra > rb then ra else rb)
          in
          let va = Array.unsafe_get fenv sa
          and vb = Array.unsafe_get fenv sb in
          let v =
            match op with
            | 13 -> va +. vb
            | 14 -> va -. vb
            | 15 -> va *. vb
            | _ -> va /. vb
          in
          let d = Array.unsafe_get dd k in
          Array.unsafe_set fenv d v;
          let c = start + Array.unsafe_get lt k in
          Array.unsafe_set ready d c;
          S.retire st ~complete:c;
          pc := k + 1
      | 17 | 18 | 19 | 20 | 21 | 22 ->
          (* cmp *)
          count_instr stats;
          let sa = Array.unsafe_get xa k and sb = Array.unsafe_get xb k in
          let ra = Array.unsafe_get ready sa
          and rb = Array.unsafe_get ready sb in
          let start =
            S.dispatch st ~operands_ready:(if ra > rb then ra else rb)
          in
          let va = Array.unsafe_get env sa and vb = Array.unsafe_get env sb in
          let r =
            match op with
            | 17 -> va = vb
            | 18 -> va <> vb
            | 19 -> va < vb
            | 20 -> va <= vb
            | 21 -> va > vb
            | _ -> va >= vb
          in
          let d = Array.unsafe_get dd k in
          Array.unsafe_set env d (if r then 1 else 0);
          let c = start + tsc in
          Array.unsafe_set ready d c;
          S.retire st ~complete:c;
          pc := k + 1
      | 23 | 24 | 25 | 26 ->
          (* select; variant encodes which arms write the float half *)
          count_instr stats;
          let sc = Array.unsafe_get xa k
          and sx = Array.unsafe_get xb k
          and sy = Array.unsafe_get xc k in
          let rx = Array.unsafe_get ready sx
          and ry = Array.unsafe_get ready sy in
          let r2 = if rx > ry then rx else ry in
          let rc = Array.unsafe_get ready sc in
          let start =
            S.dispatch st ~operands_ready:(if rc > r2 then rc else r2)
          in
          let d = Array.unsafe_get dd k in
          if Array.unsafe_get env sc <> 0 then begin
            Array.unsafe_set env d (Array.unsafe_get env sx);
            if op land 1 = 1 then
              Array.unsafe_set fenv d (Array.unsafe_get fenv sx)
          end
          else begin
            Array.unsafe_set env d (Array.unsafe_get env sy);
            if op land 2 = 2 then
              Array.unsafe_set fenv d (Array.unsafe_get fenv sy)
          end;
          let c = start + tsc in
          Array.unsafe_set ready d c;
          S.retire st ~complete:c;
          pc := k + 1
      | 27 ->
          (* gep *)
          count_instr stats;
          let sa = Array.unsafe_get xa k and sb = Array.unsafe_get xb k in
          let ra = Array.unsafe_get ready sa
          and rb = Array.unsafe_get ready sb in
          let start =
            S.dispatch st ~operands_ready:(if ra > rb then ra else rb)
          in
          let d = Array.unsafe_get dd k in
          Array.unsafe_set env d
            (Array.unsafe_get env sa
            + (Array.unsafe_get env sb * Array.unsafe_get lt k));
          let c = start + tsc in
          Array.unsafe_set ready d c;
          S.retire st ~complete:c;
          pc := k + 1
      | 28 | 29 | 30 | 31 | 32 ->
          (* load *)
          count_instr stats;
          let sa = Array.unsafe_get xa k in
          let start = S.dispatch st ~operands_ready:(Array.unsafe_get ready sa) in
          let d = Array.unsafe_get dd k in
          let c =
            S.exec_load st ~pc:d ~dst:d ~ty:(ty_of (op - 28))
              ~addr:(Array.unsafe_get env sa) ~start
          in
          Array.unsafe_set ready d c;
          S.retire st ~complete:c;
          pc := k + 1
      | 33 | 34 | 35 | 36 ->
          (* int store *)
          count_instr stats;
          let sa = Array.unsafe_get xa k and sv = Array.unsafe_get xb k in
          let ra = Array.unsafe_get ready sa
          and rv = Array.unsafe_get ready sv in
          let start =
            S.dispatch st ~operands_ready:(if ra > rv then ra else rv)
          in
          let c =
            S.exec_store_i st ~pc:(Array.unsafe_get dd k) ~ty:(ty_of (op - 33))
              ~addr:(Array.unsafe_get env sa)
              ~v:(Array.unsafe_get env sv) ~start
          in
          S.retire st ~complete:c;
          pc := k + 1
      | 37 ->
          (* f64 store *)
          count_instr stats;
          let sa = Array.unsafe_get xa k and sv = Array.unsafe_get xb k in
          let ra = Array.unsafe_get ready sa
          and rv = Array.unsafe_get ready sv in
          let start =
            S.dispatch st ~operands_ready:(if ra > rv then ra else rv)
          in
          let c =
            S.exec_store_f st ~pc:(Array.unsafe_get dd k)
              ~addr:(Array.unsafe_get env sa)
              ~v:(Array.unsafe_get fenv sv) ~start
          in
          S.retire st ~complete:c;
          pc := k + 1
      | 38 ->
          (* prefetch *)
          count_instr stats;
          let sa = Array.unsafe_get xa k in
          let start = S.dispatch st ~operands_ready:(Array.unsafe_get ready sa) in
          let c =
            S.exec_prefetch st ~pc:(Array.unsafe_get dd k)
              ~addr:(Array.unsafe_get env sa) ~start
          in
          S.retire st ~complete:c;
          pc := k + 1
      | 39 ->
          (* alloc *)
          count_instr stats;
          let sa = Array.unsafe_get xa k in
          let start = S.dispatch st ~operands_ready:(Array.unsafe_get ready sa) in
          let d = Array.unsafe_get dd k in
          Array.unsafe_set env d
            (Memory.alloc st.S.mem (Array.unsafe_get env sa));
          let c = start + tsc in
          Array.unsafe_set ready d c;
          S.retire st ~complete:c;
          pc := k + 1
      | 40 ->
          (* call *)
          let ci = Array.unsafe_get p.calls (Array.unsafe_get xa k) in
          count_instr stats;
          let args = ci.c_args in
          let rdy = ref 0 in
          for i = 0 to Array.length args - 1 do
            let r = Array.unsafe_get ready (Array.unsafe_get args i) in
            if r > !rdy then rdy := r
          done;
          let start = S.dispatch st ~operands_ready:!rdy in
          let argv = Array.map (fun s -> Array.unsafe_get env s) args in
          let d = ci.c_dst in
          Array.unsafe_set env d
            (S.exec_call st ~pc:ci.c_pc ~callee:ci.c_callee argv);
          let c = start + Array.unsafe_get lt k in
          Array.unsafe_set ready d c;
          S.retire st ~complete:c;
          pc := k + 1
      | 41 ->
          (* param *)
          count_instr stats;
          let start = S.dispatch st ~operands_ready:0 in
          let d = Array.unsafe_get dd k in
          let c = start + tsc in
          Array.unsafe_set ready d c;
          S.retire st ~complete:c;
          pc := k + 1
      | 42 | 43 | 44 | 45 | 46 ->
          (* fused gep+load: both instructions' full timing sequences *)
          count_instr stats;
          let sa = Array.unsafe_get xa k and sb = Array.unsafe_get xb k in
          let ra = Array.unsafe_get ready sa
          and rb = Array.unsafe_get ready sb in
          let gstart =
            S.dispatch st ~operands_ready:(if ra > rb then ra else rb)
          in
          let addr =
            Array.unsafe_get env sa
            + (Array.unsafe_get env sb * Array.unsafe_get lt k)
          in
          let gc = gstart + tsc in
          S.retire st ~complete:gc;
          count_instr stats;
          let start = S.dispatch st ~operands_ready:gc in
          let d = Array.unsafe_get dd k in
          let c = S.exec_load st ~pc:d ~dst:d ~ty:(ty_of (op - 42)) ~addr ~start in
          Array.unsafe_set ready d c;
          S.retire st ~complete:c;
          pc := k + 1
      | 47 | 48 | 49 | 50 ->
          (* fused gep+store (int) *)
          count_instr stats;
          let sa = Array.unsafe_get xa k and sb = Array.unsafe_get xb k in
          let ra = Array.unsafe_get ready sa
          and rb = Array.unsafe_get ready sb in
          let gstart =
            S.dispatch st ~operands_ready:(if ra > rb then ra else rb)
          in
          let addr =
            Array.unsafe_get env sa
            + (Array.unsafe_get env sb * Array.unsafe_get lt k)
          in
          let gc = gstart + tsc in
          S.retire st ~complete:gc;
          count_instr stats;
          let sv = Array.unsafe_get xc k in
          let rv = Array.unsafe_get ready sv in
          let start = S.dispatch st ~operands_ready:(if gc > rv then gc else rv) in
          let c =
            S.exec_store_i st ~pc:(Array.unsafe_get dd k) ~ty:(ty_of (op - 47))
              ~addr ~v:(Array.unsafe_get env sv) ~start
          in
          S.retire st ~complete:c;
          pc := k + 1
      | 51 ->
          (* fused gep+store (f64) *)
          count_instr stats;
          let sa = Array.unsafe_get xa k and sb = Array.unsafe_get xb k in
          let ra = Array.unsafe_get ready sa
          and rb = Array.unsafe_get ready sb in
          let gstart =
            S.dispatch st ~operands_ready:(if ra > rb then ra else rb)
          in
          let addr =
            Array.unsafe_get env sa
            + (Array.unsafe_get env sb * Array.unsafe_get lt k)
          in
          let gc = gstart + tsc in
          S.retire st ~complete:gc;
          count_instr stats;
          let sv = Array.unsafe_get xc k in
          let rv = Array.unsafe_get ready sv in
          let start = S.dispatch st ~operands_ready:(if gc > rv then gc else rv) in
          let c =
            S.exec_store_f st ~pc:(Array.unsafe_get dd k) ~addr
              ~v:(Array.unsafe_get fenv sv) ~start
          in
          S.retire st ~complete:c;
          pc := k + 1
      | 52 ->
          (* br *)
          term_pre st tsc;
          let e = Array.unsafe_get xa k in
          take_edge p st e;
          S.update_cycles st;
          incr steps;
          if !steps land poll_mask = 0 then S.poll_cancel st;
          if !steps >= fuel then running := false
          else pc := Array.unsafe_get p.e_pc e
      | 53 ->
          (* seam: a Br whose target is laid out next — same timing, same
             edge copies, same per-block accounting, but control falls
             through to the adjacent tape segment *)
          term_pre st tsc;
          take_edge p st (Array.unsafe_get xa k);
          S.update_cycles st;
          incr steps;
          if !steps land poll_mask = 0 then S.poll_cancel st;
          if !steps >= fuel then running := false else pc := k + 1
      | 54 ->
          (* cbr *)
          term_pre st tsc;
          let e =
            if Array.unsafe_get env (Array.unsafe_get xa k) <> 0 then
              Array.unsafe_get xb k
            else Array.unsafe_get xc k
          in
          take_edge p st e;
          S.update_cycles st;
          incr steps;
          if !steps land poll_mask = 0 then S.poll_cancel st;
          if !steps >= fuel then running := false
          else pc := Array.unsafe_get p.e_pc e
      | 55 ->
          (* ret *)
          term_pre st tsc;
          let sv = Array.unsafe_get xa k in
          st.S.retval <-
            (if sv >= 0 then Some (Array.unsafe_get env sv) else None);
          st.S.halted <- true;
          S.update_cycles st;
          incr steps;
          if !steps land poll_mask = 0 then S.poll_cancel st;
          running := false
      | 56 ->
          term_pre st tsc;
          failwith "Interp: reached unreachable"
      | _ -> assert false
    done
  end

(* Execute the current block only; [false] once the function returned.
   Identical protocol to the other engines' [step] — the multicore
   scheduler interleaves cores at this granularity. *)
let step (p : program) (st : S.t) =
  if st.S.halted then false
  else begin
    exec ~fuel:1 p st;
    not st.S.halted
  end
