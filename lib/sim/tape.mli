(** Micro-op tape execution engine: each function decodes once into
    contiguous struct-of-arrays storage (an int opcode array plus
    parallel operand/destination/latency arrays), immediates are
    materialized into trailing constant slots of the shared value arrays,
    and blocks are laid out as superblocks across unconditional [Br]
    edges (interior edges become fall-through seams with pre-planned phi
    copies).  The hot loop is a direct match on an unboxed opcode — no
    closure captures, no allocation per retired instruction.
    Bit-identical to {!Interp}'s classic path and to {!Compile}: all
    three drive the shared {!Exec_state} with the shared timing/memory
    helpers. *)

type program

exception Decode_error of string
(** Decode-time failure of this engine: any exception escaping {!decode}
    is wrapped so a supervisor can tell "the tape engine cannot handle
    this program" (retry on the closure engine) apart from a failure of
    the program itself. *)

val decode : tscale:int -> Spf_ir.Ir.func -> program
(** Decode without consulting the cache.
    @raise Decode_error on any decode-time failure. *)

val get : tscale:int -> Spf_ir.Ir.func -> program
(** Cached decode: per-domain, keyed by (tscale, {!Spf_ir.Ir.signature}),
    so re-building and re-running the same workload decodes once per
    domain — and tapes decoded at one [tscale] are never served at
    another. *)

val cache_counters : unit -> int * int
(** (hits, misses) of this domain's tape decode cache. *)

val n_extra_slots : program -> int
(** Number of trailing constant slots the tape needs; pass as
    [extra_slots] to {!Exec_state.create}. *)

val init_consts : program -> Exec_state.t -> unit
(** Write the constant slots' values into a freshly created state (whose
    arrays were sized with [extra_slots = n_extra_slots p]). *)

val seams : program -> int
(** Number of superblock seams formed (interior unconditional edges). *)

val exec : fuel:int -> program -> Exec_state.t -> unit
(** Execute up to [fuel] basic blocks from the current state; stops early
    once the function returns (the caller checks [halted] and raises
    [Fuel_exhausted] as appropriate).  Cancellation is polled every 1024
    blocks of this call, and the cycle counter refreshes at every
    original block boundary, seams included — the interpreter run loop's
    exact observable accounting. *)

val step : program -> Exec_state.t -> bool
(** Execute the current basic block; [false] once the function returned. *)
