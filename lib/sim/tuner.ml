(* Online distance re-tuning, in the spirit of runtime-guided prefetcher
   reconfiguration: the pass compiles each prefetched loop's look-ahead
   constant into a distance *register* (an extra function parameter), and
   this controller rewrites those registers from windowed attribution
   counters while the program runs.

   Determinism and engine-independence are structural: the window is
   counted in retired demand loads (`Exec_state.exec_load` ticks the tuner
   after every demand access, identically in all three engines), the
   inputs are integer counter deltas, and the policy is pure integer
   arithmetic — so a fixed program + config re-tunes at the same points to
   the same distances on every run and under every engine. *)

type spec = {
  spec_slot : int;
  spec_header : int;
  spec_init : int;
  spec_band : (int * int) option;
}

let spec ?band ~slot ~header ~init () =
  { spec_slot = slot; spec_header = header; spec_init = init; spec_band = band }

type reg = {
  slot : int; (* env slot (instr id of the distance-register Param) *)
  header : int; (* loop header block this register schedules *)
  init : int;
  lo : int; (* per-register tuning range — the cost-model band when the *)
  hi : int; (* register was seeded from eq. 1, [min_c, max_c] otherwise *)
  mutable cur : int;
  loop_slot : int; (* Attrib slot for this header, -1 when unknown *)
  (* Counter snapshot at the last window boundary. *)
  mutable p_demand : int;
  mutable p_miss : int;
  mutable p_late : int;
  mutable p_unused : int;
  mutable trace : int list; (* distances chosen, newest first *)
}

type t = {
  attrib : Attrib.t;
  window : int; (* demand loads per tuning window *)
  min_c : int;
  max_c : int;
  regs : reg array;
  mutable next_at : int;
  mutable windows : int;
}

let create ~attrib ~window ~min_c ~max_c regs =
  let window = max 1 window in
  let min_c = max 1 min_c in
  let max_c = max min_c max_c in
  let mk s =
    let lo, hi =
      match s.spec_band with
      | None -> (min_c, max_c)
      | Some (lo, hi) ->
          let lo = max min_c (min lo max_c) in
          (lo, max lo (min hi max_c))
    in
    let init =
      if s.spec_init < lo then lo else if s.spec_init > hi then hi
      else s.spec_init
    in
    {
      slot = s.spec_slot;
      header = s.spec_header;
      init;
      lo;
      hi;
      cur = init;
      loop_slot = Attrib.slot_of_header attrib s.spec_header;
      p_demand = 0;
      p_miss = 0;
      p_late = 0;
      p_unused = 0;
      trace = [ init ];
    }
  in
  {
    attrib;
    window;
    min_c;
    max_c;
    regs = Array.of_list (List.map mk regs);
    next_at = window;
    windows = 0;
  }

let attrib t = t.attrib

(* Write the initial distances; call once after parameter binding (the
   registers are parameters, so unbound ones read as 0 otherwise). *)
let init_env t (env : int array) =
  Array.iter (fun r -> env.(r.slot) <- r.init) t.regs

(* The per-window policy, applied to each loop's counter deltas:

   - the loop is *starved* when a meaningful share of its demand loads
     still reach DRAM or catch their prefetch in flight — the look-ahead
     is too short, so double it;
   - it is *wasteful* when prefetched lines keep falling out of the LLC
     untouched — the look-ahead overruns the cache, so halve it;
   - ambiguous or idle windows leave the distance alone (hysteresis: the
     2x-vs-competitor guards keep the two signals from fighting).

   Thresholds are shares of the window's demand loads in the loop, in
   integer arithmetic (shortfall/waste >= 1/16th of demand). *)
let retune_reg t (r : reg) (env : int array) =
  if r.loop_slot >= 0 then begin
    let a = t.attrib in
    let d_demand = a.Attrib.demand.(r.loop_slot) - r.p_demand in
    let d_miss = a.Attrib.miss.(r.loop_slot) - r.p_miss in
    let d_late = a.Attrib.late.(r.loop_slot) - r.p_late in
    let d_unused = a.Attrib.unused.(r.loop_slot) - r.p_unused in
    r.p_demand <- a.Attrib.demand.(r.loop_slot);
    r.p_miss <- a.Attrib.miss.(r.loop_slot);
    r.p_late <- a.Attrib.late.(r.loop_slot);
    r.p_unused <- a.Attrib.unused.(r.loop_slot);
    if d_demand > 0 then begin
      let shortfall = d_miss + d_late in
      let next =
        if shortfall * 16 >= d_demand && shortfall >= 2 * d_unused then
          min (r.cur * 2) r.hi
        else if d_unused * 16 >= d_demand && d_unused >= 2 * shortfall then
          max (r.cur / 2) r.lo
        else r.cur
      in
      if next <> r.cur then begin
        r.cur <- next;
        env.(r.slot) <- next
      end;
      r.trace <- r.cur :: r.trace
    end
  end

let retune t env =
  t.windows <- t.windows + 1;
  Array.iter (fun r -> retune_reg t r env) t.regs

(* Called after every retired demand load. *)
let tick t ~env =
  if t.attrib.Attrib.total_demand >= t.next_at then begin
    t.next_at <- t.attrib.Attrib.total_demand + t.window;
    retune t env
  end

let windows t = t.windows

let chosen t =
  Array.to_list
    (Array.map (fun r -> (r.header, List.rev r.trace)) t.regs)

let final t =
  Array.to_list (Array.map (fun r -> (r.header, r.cur)) t.regs)

let pp fmt t =
  Format.fprintf fmt "adaptive tuner: %d window(s) of %d demand loads@."
    t.windows t.window;
  Array.iter
    (fun r ->
      Format.fprintf fmt "  loop bb%d: c %d -> %d (%d decisions)@." r.header
        r.init r.cur
        (List.length r.trace))
    t.regs
