(** Online look-ahead re-tuning: rewrites the per-loop distance registers
    the pass materialised, from windowed {!Attrib} counters.  Windows are
    counted in retired demand loads and the policy is pure integer
    arithmetic, so a fixed program + config chooses the same distances at
    the same points on every run, under every engine. *)

type t

type spec
(** One distance register: the env slot to rewrite, the loop header it
    schedules, its initial distance, and an optional per-register tuning
    band. *)

val spec : ?band:int * int -> slot:int -> header:int -> init:int -> unit -> spec
(** [band], when given, bounds the hill-climb for this register (clipped
    to the provider's global [min_c, max_c]).  Used to anchor the
    controller around an eq. 1 cost-model seed: the model fixes the
    scale, the controller fine-tunes within it — without the band, a
    bandwidth-bound loop whose miss share never improves with distance
    climbs to [max_c] and evicts its own prefetches. *)

val create :
  attrib:Attrib.t ->
  window:int ->
  min_c:int ->
  max_c:int ->
  spec list ->
  t

val attrib : t -> Attrib.t

val init_env : t -> int array -> unit
(** Write the initial distances into the environment; call once after
    parameter binding. *)

val tick : t -> env:int array -> unit
(** Notify one retired demand load; re-tunes at window boundaries. *)

val windows : t -> int
(** Window boundaries crossed so far. *)

val chosen : t -> (int * int list) list
(** Per loop header, the full decision trace (initial value first) —
    the object of the bit-determinism guarantee. *)

val final : t -> (int * int) list
(** Per loop header, the distance in force at the end of the run. *)

val pp : Format.formatter -> t -> unit
