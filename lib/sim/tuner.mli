(** Online look-ahead re-tuning: rewrites the per-loop distance registers
    the pass materialised, from windowed {!Attrib} counters.  Windows are
    counted in retired demand loads and the policy is pure integer
    arithmetic, so a fixed program + config chooses the same distances at
    the same points on every run, under every engine. *)

type t

val create :
  attrib:Attrib.t ->
  window:int ->
  min_c:int ->
  max_c:int ->
  (int * int * int) list ->
  t
(** [create ~attrib ~window ~min_c ~max_c regs] with one [(slot, header,
    init)] triple per distance register: the env slot to rewrite, the loop
    header it schedules, and its initial distance. *)

val attrib : t -> Attrib.t

val init_env : t -> int array -> unit
(** Write the initial distances into the environment; call once after
    parameter binding. *)

val tick : t -> env:int array -> unit
(** Notify one retired demand load; re-tunes at window boundaries. *)

val windows : t -> int
(** Window boundaries crossed so far. *)

val chosen : t -> (int * int list) list
(** Per loop header, the full decision trace (initial value first) —
    the object of the bit-determinism guarantee. *)

val final : t -> (int * int) list
(** Per loop header, the distance in force at the end of the run. *)

val pp : Format.formatter -> t -> unit
