module Ir = Spf_ir.Ir
module Parser = Spf_ir.Parser
module Printer = Spf_ir.Printer
module Memory = Spf_sim.Memory

(* Runnable IR test cases: a program plus the concrete environment it
   runs in, in one text file.  This is the format `spf validate` prints
   counterexamples in and the checked-in corpus is stored in:

     ;; spf-case v1
     !arg 4096
     !arg 8192
     !brk 12288
     !fuel 100000
     !mem 4096 01000000faffffff
     func kernel (2 params, entry bb0) {
       ...
     }

   Lines starting with `!` are environment directives ([!arg] in
   parameter order, [!mem ADDR HEXBYTES] for the non-zero spans of the
   image, [!brk] the mapping break, [!fuel] the block budget); `;;`
   lines are comments; everything else is the textual IR of the
   {e original} program.  [to_env] rebuilds an identical fresh
   environment on every call, which is what {!Model.confirm} needs. *)

type t = {
  func : Ir.func;
  args : int array;
  brk : int;
  fuel : int;
  writes : (int * string) list;  (** address, raw bytes *)
}

let magic = ";; spf-case v1"

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let hex_of_bytes (b : Bytes.t) =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let bytes_of_hex ~line s =
  let n = String.length s in
  if n mod 2 <> 0 then
    raise (Parser.Parse_error { line; msg = "odd hex string in !mem" });
  Bytes.init (n / 2)
    (fun i ->
      match int_of_string_opt ("0x" ^ String.sub s (2 * i) 2) with
      | Some v -> Char.chr v
      | None -> raise (Parser.Parse_error { line; msg = "bad hex in !mem" }))

(* Non-zero spans of a memory image, greedily merged so that short zero
   gaps don't multiply directives. *)
let spans_of_mem mem =
  let size = Memory.size mem in
  let byte a = Memory.load mem Ir.I8 a in
  let spans = ref [] in
  let a = ref 0 in
  while !a < size do
    if byte !a = 0 then incr a
    else begin
      let start = !a in
      let last = ref !a in
      let gap = ref 0 in
      let k = ref (!a + 1) in
      while !k < size && !gap < 16 do
        if byte !k <> 0 then begin
          last := !k;
          gap := 0
        end
        else incr gap;
        incr k
      done;
      let len = !last - start + 1 in
      let b = Bytes.init len (fun i -> Char.chr (byte (start + i))) in
      spans := (start, Bytes.to_string b) :: !spans;
      a := !last + 1
    end
  done;
  List.rev !spans

let of_concrete ~func ~mem ~args ~fuel =
  {
    func;
    args = Array.copy args;
    brk = Memory.size mem;
    fuel;
    writes = spans_of_mem mem;
  }

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "!arg %d\n" v)) t.args;
  Buffer.add_string buf (Printf.sprintf "!brk %d\n" t.brk);
  Buffer.add_string buf (Printf.sprintf "!fuel %d\n" t.fuel);
  List.iter
    (fun (addr, bytes) ->
      Buffer.add_string buf
        (Printf.sprintf "!mem %d %s\n" addr (hex_of_bytes (Bytes.of_string bytes))))
    t.writes;
  Buffer.add_string buf (Printer.func_to_string t.func);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse text =
  let args = ref [] and brk = ref 4096 and fuel = ref 100_000 in
  let writes = ref [] in
  let ir_lines = ref [] in
  List.iteri
    (fun lineno raw ->
      let line = lineno + 1 in
      let s = String.trim raw in
      if String.length s >= 2 && String.sub s 0 2 = ";;" then ()
      else if String.length s >= 1 && s.[0] = '!' then begin
        match String.split_on_char ' ' s |> List.filter (( <> ) "") with
        | [ "!arg"; v ] -> args := int_of_string v :: !args
        | [ "!brk"; v ] -> brk := int_of_string v
        | [ "!fuel"; v ] -> fuel := int_of_string v
        | [ "!mem"; a; hex ] ->
            writes :=
              (int_of_string a, Bytes.to_string (bytes_of_hex ~line hex))
              :: !writes
        | _ ->
            raise (Parser.Parse_error { line; msg = "unknown case directive: " ^ s })
      end
      else ir_lines := raw :: !ir_lines)
    (String.split_on_char '\n' text);
  let func = Parser.parse (String.concat "\n" (List.rev !ir_lines)) in
  {
    func;
    args = Array.of_list (List.rev !args);
    brk = !brk;
    fuel = !fuel;
    writes = List.rev !writes;
  }

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let save path t =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Environment construction                                            *)
(* ------------------------------------------------------------------ *)

let build_memory t =
  let initial =
    let n = ref 4096 in
    while !n < t.brk do
      n := !n * 2
    done;
    !n
  in
  let mem = Memory.create ~initial () in
  (* [alloc] from the initial break of 4096 is already line-aligned, so
     this lands the break exactly on [t.brk]. *)
  if t.brk > Memory.size mem then ignore (Memory.alloc mem (t.brk - Memory.size mem));
  if t.brk < Memory.size mem then Memory.truncate mem t.brk;
  List.iter
    (fun (addr, bytes) ->
      String.iteri
        (fun i c -> Memory.store mem Ir.I8 (addr + i) (Char.code c))
        bytes)
    t.writes;
  mem

let to_env t : Model.env =
  { Model.fresh = (fun () -> (build_memory t, Array.copy t.args)); fuel = t.fuel }
