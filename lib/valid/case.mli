(** Runnable IR test cases: a program plus the concrete environment it
    runs in, in one text file — the format [spf validate] prints
    counterexamples in and the checked-in corpus is stored in:

    {v
    ;; spf-case v1
    !arg 4096
    !brk 12288
    !fuel 100000
    !mem 4096 01000000faffffff
    func kernel (1 params, entry bb0) { ... }
    v}

    [!]-lines are environment directives ([!arg] in parameter order,
    [!mem ADDR HEXBYTES] for the non-zero spans of the image, [!brk]
    the mapping break, [!fuel] the block budget); [;;] lines are
    comments; everything else is the textual IR of the {e original}
    program. *)

type t = {
  func : Spf_ir.Ir.func;
  args : int array;
  brk : int;
  fuel : int;
  writes : (int * string) list;  (** address, raw bytes *)
}

val of_concrete :
  func:Spf_ir.Ir.func ->
  mem:Spf_sim.Memory.t ->
  args:int array ->
  fuel:int ->
  t
(** Snapshot a concrete environment (non-zero spans of [mem], its
    break, the argument vector) into a case. *)

val to_string : t -> string

val parse : string -> t
(** @raise Spf_ir.Parser.Parse_error on a malformed directive or IR. *)

val load : string -> t
val save : string -> t -> unit

val to_env : t -> Model.env
(** Rebuild an identical fresh environment on every call — what
    {!Model.confirm} needs. *)
