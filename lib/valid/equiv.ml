module Ir = Spf_ir.Ir
module Cfg = Spf_ir.Cfg
module Dom = Spf_ir.Dom
module Loops = Spf_ir.Loops

(* Lockstep symbolic execution of an original function and its
   pass-transformed twin, proving they agree on all observable behaviour
   — demand loads/stores, calls, return values — modulo prefetch
   instructions (which never fault) and the pass's inserted look-ahead
   loads (which must be proved to stay inside addresses the original
   itself touches; see the obligation discharge below).

   Shape of the argument:

   - Both functions must share the CFG skeleton (the pass only inserts
     and deletes straight-line instructions).  The checker walks both
     programs block by block along the same path.
   - Values are {!Term}s over shared symbols: parameters, matched call
     results, and the widened loop-carried values introduced at loop
     headers.  Two observables agree when their terms are equal.
   - Loops are not unrolled to termination.  After [unroll] concrete
     head visits, arriving at a loop header {e widens}: every
     loop-carried value is replaced by a fresh symbol shared between the
     two sides (sound because the closing head arrival verifies both
     sides compute equal next-iteration values — the inductive step),
     memory is havocked over the loop's statically-collected store
     regions, and the sound invariant [iv >= v0] is assumed for
     induction variables whose latch update is a non-negative constant
     step.  One widened body iteration closes the induction; the exit
     arm continues with the negated head condition.
   - Memory is a write-version counter plus a log of (version, address,
     region) entries.  A load yields the opaque term
     [mem_v\[addr\]], where [v] is {e canonicalized} to the oldest
     version not separated from the present by a possibly-aliasing
     write.  Matched stores keep both sides' logs identical, so matched
     loads get equal terms without store-to-load forwarding.  Distinct
     function parameters (and distinct allocations) are assumed to
     address disjoint regions — exactly the aliasing model
     [Safety.vet]'s store-alias filter already relies on.
   - Transformed-side extra loads (the §4.2 look-ahead clones) raise a
     proof obligation: the address must be one the original itself
     demand-accesses, given that the original completes trap-free.
     Discharge is by direct membership in this path's observed access
     set, or by loop-footprint coverage: the original unconditionally
     accesses [A(iv)] for every [iv] in [v0, bound), so it suffices to
     exhibit [U] with [addr = A(U)] and [v0 <= U <= hi] — which the
     {!Prove} entailment checker establishes from the path facts and the
     clamp's min/max structure.

   The checker returns [Proved], a [Mismatch] carrying the first failed
   check (which the caller must confirm concretely before calling it a
   counterexample), or [Gave_up]. *)

type config = {
  unroll : int;  (** concrete head visits before widening (default 0) *)
  max_paths : int;
  max_steps : int;
  prover : Prove.config;
}

let default = { unroll = 0; max_paths = 4096; max_steps = 200_000; prover = Prove.default }

type result =
  | Proved of { paths : int; obligations : int }
  | Mismatch of string
  | Gave_up of string

exception Give_up of string
exception Found_mismatch of string

let give_up fmt = Printf.ksprintf (fun s -> raise (Give_up s)) fmt
let mismatch fmt = Printf.ksprintf (fun s -> raise (Found_mismatch s)) fmt

(* ------------------------------------------------------------------ *)
(* Regions                                                             *)
(* ------------------------------------------------------------------ *)

(* A region is the set of base symbols an address may be derived from;
   [None] is "unknown — may alias anything". *)
type region = int list option

let region_union a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some x, Some y -> Some (List.sort_uniq Stdlib.compare (x @ y))

let regions_may_overlap a b =
  match (a, b) with
  | None, _ | _, None -> true
  | Some x, Some y -> List.exists (fun i -> List.mem i y) x

(* ------------------------------------------------------------------ *)
(* Static analysis of the original function                            *)
(* ------------------------------------------------------------------ *)

type cond_info = {
  ci_pid : int;  (** the header phi compared in the head condition *)
  ci_pred : Ir.cmp;  (** Slt or Sle, phi on the left *)
  ci_bound : Ir.operand;
  ci_body_true : bool;  (** the in-loop arm is the true arm *)
}

type chase_static = {
  ch_phi : int;  (** the null-tested pointer phi *)
  ch_offsets : (int * int) list;
      (** (offset, width) accesses off the phi, once per iteration *)
  ch_next : int;  (** offset of the field whose value becomes the next node *)
}

type linfo = {
  li_loop : Loops.loop;
  li_steps : (int * int) list;  (** header phi id -> constant latch step *)
  li_cond : cond_info option;
  li_chase : chase_static option;
  li_uncond : bool array;
      (** blocks executing exactly once per iteration: members whose
          innermost loop is this one and which dominate every latch *)
  li_stores_present : bool;
  li_store_regions : region;
  li_header_exits_only : bool;
}

type static = {
  cfg : Cfg.t;
  dom : Dom.t;
  loops : Loops.t;
  linfos : (int * linfo) list;  (** header bid -> info *)
  has_alloc : bool;
  has_store : bool;  (** any store or impure call anywhere in the function *)
  nparams : int;
}

let header_phis (f : Ir.func) bid =
  Array.to_list (Ir.block f bid).Ir.instrs
  |> List.filter_map (fun id ->
         let i = Ir.instr f id in
         match i.Ir.kind with Ir.Phi inc -> Some (id, inc) | _ -> None)

let rec static_region (f : Ir.func) (op : Ir.operand) depth : region =
  if depth <= 0 then None
  else
    match op with
    | Ir.Imm _ | Ir.Fimm _ -> None
    | Ir.Var id -> (
        match (Ir.instr f id).Ir.kind with
        | Ir.Param k -> Some [ k ]
        | Ir.Gep { base; _ } -> static_region f base (depth - 1)
        | _ -> None)

let analyze_loop f (st_cfg : Cfg.t) dom loops (l : Loops.loop) =
  let phis = header_phis f l.Loops.header in
  let steps =
    match l.Loops.latches with
    | [ latch ] ->
        List.filter_map
          (fun (pid, inc) ->
            match List.assoc_opt latch inc with
            | Some (Ir.Var u) -> (
                match (Ir.instr f u).Ir.kind with
                | Ir.Binop (Ir.Add, Ir.Var p, Ir.Imm c)
                | Ir.Binop (Ir.Add, Ir.Imm c, Ir.Var p)
                  when p = pid && c >= 0 ->
                    Some (pid, c)
                | _ -> None)
            | _ -> None)
          phis
    | _ -> []
  in
  let cond =
    match (Ir.block f l.Loops.header).Ir.term with
    | Ir.Cbr (Ir.Var cid, t, fl) -> (
        match (Ir.instr f cid).Ir.kind with
        | Ir.Cmp ((Ir.Slt | Ir.Sle) as pred, Ir.Var p, bound)
          when List.mem_assoc p phis ->
            let t_in = Loops.contains l t and f_in = Loops.contains l fl in
            if t_in && not f_in then
              Some { ci_pid = p; ci_pred = pred; ci_bound = bound; ci_body_true = true }
            else None
        | _ -> None)
    | _ -> None
  in
  let uncond = Array.make (Ir.n_blocks f) false in
  Array.iteri
    (fun bid inl ->
      if
        inl
        && Loops.innermost loops bid = Some l.Loops.index
        && List.for_all (fun latch -> Dom.dominates dom bid latch) l.Loops.latches
      then uncond.(bid) <- true)
    l.Loops.member;
  let stores_present = ref false in
  let store_regions = ref (Some []) in
  Ir.iter_instrs f (fun i ->
      if Loops.contains l i.Ir.block then
        match i.Ir.kind with
        | Ir.Store (_, addr, _) ->
            stores_present := true;
            store_regions := region_union !store_regions (static_region f addr 8)
        | Ir.Call { pure = false; _ } ->
            stores_present := true;
            store_regions := None
        | _ -> ());
  let header_exits_only =
    List.for_all (fun (src, _) -> src = l.Loops.header) (Loops.exit_edges st_cfg l)
  in
  (* Pointer-chase shape: `while (node != 0) { ... node = node->next }`.
     The per-iteration accesses at constant offsets off the node phi are
     what a staggered manual prefetch chain re-executes speculatively. *)
  let chase =
    (* Constant offset of an address operand relative to the phi [p]. *)
    let rel_off p (op : Ir.operand) =
      match op with
      | Ir.Var v when v = p -> Some 0
      | Ir.Var v -> (
          match (Ir.instr f v).Ir.kind with
          | Ir.Gep { base = Ir.Var b; index = Ir.Imm k; scale } when b = p ->
              Some (k * scale)
          | _ -> None)
      | _ -> None
    in
    match ((Ir.block f l.Loops.header).Ir.term, l.Loops.latches) with
    | Ir.Cbr (Ir.Var cid, t, fl), [ latch ] -> (
        match (Ir.instr f cid).Ir.kind with
        | Ir.Cmp (Ir.Ne, Ir.Var p, Ir.Imm 0)
          when List.mem_assoc p phis
               && Loops.contains l t
               && not (Loops.contains l fl) -> (
            let offsets = ref [] in
            Ir.iter_instrs f (fun i ->
                if uncond.(i.Ir.block) then
                  match i.Ir.kind with
                  | Ir.Load (ty, a) | Ir.Store (ty, a, _) -> (
                      match rel_off p a with
                      | Some o -> offsets := (o, Ir.size_of_ty ty) :: !offsets
                      | None -> ())
                  | _ -> ());
            match List.assoc_opt latch (List.assoc p phis) with
            | Some (Ir.Var u) -> (
                match (Ir.instr f u).Ir.kind with
                | Ir.Load (_, a) when uncond.(( Ir.instr f u).Ir.block) -> (
                    match rel_off p a with
                    | Some o ->
                        Some { ch_phi = p; ch_offsets = !offsets; ch_next = o }
                    | None -> None)
                | _ -> None)
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  {
    li_loop = l;
    li_steps = steps;
    li_cond = cond;
    li_chase = chase;
    li_uncond = uncond;
    li_stores_present = !stores_present;
    li_store_regions = !store_regions;
    li_header_exits_only = header_exits_only;
  }

let analyze (f : Ir.func) =
  let cfg = Cfg.build f in
  let dom = Dom.build cfg in
  let loops = Loops.analyze f cfg dom in
  let linfos =
    Array.to_list (Loops.loops loops)
    |> List.map (fun l -> (l.Loops.header, analyze_loop f cfg dom loops l))
  in
  let has_alloc = ref false and has_store = ref false in
  Ir.iter_instrs f (fun i ->
      match i.Ir.kind with
      | Ir.Alloc _ -> has_alloc := true
      | Ir.Store _ | Ir.Call { pure = false; _ } -> has_store := true
      | _ -> ());
  {
    cfg;
    dom;
    loops;
    linfos;
    has_alloc = !has_alloc;
    has_store = !has_store;
    nparams = Array.length f.Ir.param_ids;
  }

(* The pass only inserts/deletes straight-line instructions; both
   functions must share block structure and terminator shape. *)
let check_skeleton (o : Ir.func) (x : Ir.func) =
  if Ir.n_blocks o <> Ir.n_blocks x then give_up "block structure differs";
  if o.Ir.entry <> x.Ir.entry then give_up "entry block differs";
  for bid = 0 to Ir.n_blocks o - 1 do
    let to_ = (Ir.block o bid).Ir.term and tx = (Ir.block x bid).Ir.term in
    let same =
      match (to_, tx) with
      | Ir.Br a, Ir.Br b -> a = b
      | Ir.Cbr (_, a, b), Ir.Cbr (_, a', b') -> a = a' && b = b'
      | Ir.Ret None, Ir.Ret None -> true
      | Ir.Ret (Some _), Ir.Ret (Some _) -> true
      | Ir.Unreachable, Ir.Unreachable -> true
      | _ -> false
    in
    if not same then give_up "terminator structure differs at bb%d" bid
  done

(* ------------------------------------------------------------------ *)
(* Path state                                                          *)
(* ------------------------------------------------------------------ *)

type mentry =
  | Mstore of { ver : int; addr : Term.t; width : int; region : region }
  | Mhavoc of { ver : int; region : region }

type event =
  | Eload of { pc : int; ty : Ir.ty; addr : Term.t; value : Term.t }
  | Estore of { pc : int; ty : Ir.ty; addr : Term.t; value : Term.t }
  | Eprefetch
  | Ecall of { pc : int; callee : string; args : Term.t list; pure : bool }
  | Ealloc of { pc : int; size : Term.t }

type coverage = { cov_iv_sym : int; cov_lo : Term.t; cov_hi : Term.t }

(* One pointer-chase family recorded against an enclosing widened loop:
   at iteration [iv], the original enters a null-tested walk whose first
   node is [ch_entry] (a term over the loop's iv symbol) and, for every
   non-null node it reaches, accesses the node's [ch_offs] fields — the
   [ch_nexto] field's value being the next node.  Recorded only in
   store-free, alloc-free functions (node values must be stable) and
   discharged together with the null-page invariant (addresses below
   4096 are always mapped). *)
type chase = { ch_entry : Term.t; ch_offs : (int * int) list; ch_nexto : int }

type ctx = {
  cx_header : int;
  cx_loop : Loops.loop;
  cx_uncond : bool array;
  cx_cov : coverage option;
  cx_armed : bool;  (** widened, header terminator not yet taken *)
  cx_nbase : int;  (** fork count at which uniform candidates are valid *)
  cx_cands : (Term.t * int) list;  (** iteration-uniform access terms *)
  cx_chases : chase list;
}

type path = {
  p_bid : int;
  p_pred : int;
  p_env_o : Term.t option array;
  p_env_x : Term.t option array;
  p_facts : Term.t list;
  p_ver : int;
  p_log : mentry list;  (** newest first *)
  p_visits : int array;  (** per-header arrival counts *)
  p_ctxs : ctx list;  (** innermost first *)
  p_nforks : int;
  p_seen : (Term.t * int) list;  (** original-side demand accesses so far *)
  p_oblig : (int * Term.t * int) list;
      (** pending look-ahead obligations: (pc, addr, width) *)
}

type shared = {
  s_orig : Ir.func;
  s_xform : Ir.func;
  s_static : static;
  s_cfg : config;
  s_cancel : Spf_sim.Exec_state.cancel option;
  mutable s_fresh : int;
  s_regions : (int, unit) Hashtbl.t;  (** region-tagged symbol ids *)
  mutable s_paths : int;
  mutable s_steps : int;
  mutable s_obligations : int;
}

let fresh sh =
  let i = sh.s_fresh in
  sh.s_fresh <- i + 1;
  i

let term_region sh t : region =
  let syms =
    List.filter_map
      (fun (i, _) -> if Hashtbl.mem sh.s_regions i then Some i else None)
      (Term.top_syms t)
  in
  match syms with [] -> None | l -> Some l

let entry_may_alias sh entry ~addr ~width ~region =
  match entry with
  | Mhavoc { region = r; _ } -> regions_may_overlap r region
  | Mstore { addr = sa; width = sw; region = sr; _ } ->
      if not (regions_may_overlap sr region) then false
      else (
        match Term.as_const (Term.sub addr sa) with
        | Some d -> not (d >= sw || -d >= width)
        | None -> ignore sh; true)

(* Oldest version not separated from [entries @ log]'s present by a
   possibly-aliasing write. *)
let canonical_ver sh ~local ~log ~addr ~width =
  let region = term_region sh addr in
  let rec scan = function
    | [] -> 0
    | e :: rest ->
        if entry_may_alias sh e ~addr ~width ~region then
          (match e with Mstore { ver; _ } | Mhavoc { ver; _ } -> ver)
        else scan rest
  in
  match scan local with 0 -> scan log | v -> v

(* ------------------------------------------------------------------ *)
(* Per-side block execution                                            *)
(* ------------------------------------------------------------------ *)

type side_result = {
  r_events : event list;  (** in execution order *)
  r_stores : mentry list;  (** newest first, versions above the shared base *)
}

let eval_operand env (op : Ir.operand) =
  match op with
  | Ir.Imm i -> Term.of_int i
  | Ir.Fimm f -> Term.fconst f
  | Ir.Var id -> (
      match env.(id) with
      | Some t -> t
      | None -> give_up "use of undefined value %%%d" id)

(* Execute the non-phi instructions of block [bid] on one side.
   [call_syms]/[alloc_syms] are filled by the original side and consumed
   by the transformed side so matched calls/allocs share result
   symbols. *)
let exec_side sh (f : Ir.func) env ~bid ~ver ~log ~call_syms ~alloc_syms
    ~is_orig =
  let events = ref [] and local = ref [] in
  let ncalls = ref 0 and nallocs = ref 0 in
  let emit e = events := e :: !events in
  Array.iter
    (fun id ->
      let i = Ir.instr f id in
      let ev op = eval_operand env op in
      match i.Ir.kind with
      | Ir.Phi _ -> ()
      | Ir.Param k -> env.(id) <- Some (Term.sym k)
      | Ir.Binop (op, a, b) -> (
          match Term.binop op (ev a) (ev b) with
          | t -> env.(id) <- Some t
          | exception Term.Symbolic_division ->
              give_up "sdiv/srem with symbolic or zero divisor at pc %d" id)
      | Ir.Cmp (p, a, b) -> env.(id) <- Some (Term.cmp p (ev a) (ev b))
      | Ir.Select (c, a, b) -> env.(id) <- Some (Term.select (ev c) (ev a) (ev b))
      | Ir.Gep { base; index; scale } ->
          env.(id) <- Some (Term.add (ev base) (Term.mul_const scale (ev index)))
      | Ir.Load (ty, a) ->
          let addr = ev a in
          let width = Ir.size_of_ty ty in
          let cver = canonical_ver sh ~local:!local ~log ~addr ~width in
          let value = Term.read ~ver:cver ~addr ~ty in
          env.(id) <- Some value;
          emit (Eload { pc = id; ty; addr; value })
      | Ir.Store (ty, a, v) ->
          let addr = ev a and value = ev v in
          let width = Ir.size_of_ty ty in
          emit (Estore { pc = id; ty; addr; value });
          local :=
            Mstore
              {
                ver = ver + List.length !local + 1;
                addr;
                width;
                region = term_region sh addr;
              }
            :: !local
      | Ir.Call { callee; args; pure } ->
          let args = List.map ev args in
          if pure then
            (* Uninterpreted function application: a pass-inserted pure
               look-ahead call is provably equal to the demand call it
               clones whenever the arguments are, with no event to
               align and no memory effect. *)
            env.(id) <- Some (Term.call callee args)
          else begin
            (* Impure calls are observables, matched positionally: the
               k-th call on each side shares a result symbol. *)
            let s =
              if is_orig then begin
                let s = fresh sh in
                call_syms := !call_syms @ [ s ];
                s
              end
              else begin
                let k = !ncalls in
                match List.nth_opt !call_syms k with
                | Some s -> s
                | None -> fresh sh
              end
            in
            incr ncalls;
            env.(id) <- Some (Term.sym s);
            emit (Ecall { pc = id; callee; args; pure });
            local :=
              Mhavoc { ver = ver + List.length !local + 1; region = None }
              :: !local
          end
      | Ir.Alloc size_op ->
          let size = ev size_op in
          let s =
            if is_orig then begin
              let s = fresh sh in
              Hashtbl.replace sh.s_regions s ();
              alloc_syms := !alloc_syms @ [ s ];
              s
            end
            else begin
              let k = !nallocs in
              match List.nth_opt !alloc_syms k with
              | Some s -> s
              | None ->
                  let s = fresh sh in
                  Hashtbl.replace sh.s_regions s ();
                  s
            end
          in
          incr nallocs;
          env.(id) <- Some (Term.sym s);
          emit (Ealloc { pc = id; size })
      | Ir.Prefetch _ -> emit Eprefetch)
    (Ir.block f bid).Ir.instrs;
  { r_events = List.rev !events; r_stores = !local }

(* ------------------------------------------------------------------ *)
(* Event alignment and obligations                                     *)
(* ------------------------------------------------------------------ *)

let demand_access = function
  | Eload { addr; ty; _ } | Estore { addr; ty; _ } -> Some (addr, Ir.size_of_ty ty)
  | _ -> None

let events_equal a b =
  match (a, b) with
  | Eload l1, Eload l2 ->
      l1.ty = l2.ty && Term.equal l1.addr l2.addr && Term.equal l1.value l2.value
  | Estore s1, Estore s2 ->
      s1.ty = s2.ty && Term.equal s1.addr s2.addr && Term.equal s1.value s2.value
  | Ecall c1, Ecall c2 ->
      c1.callee = c2.callee && c1.pure = c2.pure
      && List.length c1.args = List.length c2.args
      && List.for_all2 Term.equal c1.args c2.args
  | Ealloc a1, Ealloc a2 -> Term.equal a1.size a2.size
  | _ -> false

(* Longest matching alignment (classic LCS over the two short per-block
   event lists), returning each side's unmatched events. *)
let align_events os xs =
  let o = Array.of_list os and x = Array.of_list xs in
  let n = Array.length o and m = Array.length x in
  let tbl = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      tbl.(i).(j) <-
        (if events_equal o.(i) x.(j) then 1 + tbl.(i + 1).(j + 1)
         else max tbl.(i + 1).(j) tbl.(i).(j + 1))
    done
  done;
  let un_o = ref [] and un_x = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < n && !j < m do
    if events_equal o.(!i) x.(!j) then (incr i; incr j)
    else if tbl.(!i + 1).(!j) >= tbl.(!i).(!j + 1) then begin
      un_o := o.(!i) :: !un_o;
      incr i
    end
    else begin
      un_x := x.(!j) :: !un_x;
      incr j
    end
  done;
  while !i < n do un_o := o.(!i) :: !un_o; incr i done;
  while !j < m do un_x := x.(!j) :: !un_x; incr j done;
  (List.rev !un_o, List.rev !un_x)

let event_desc = function
  | Eload { pc; addr; _ } ->
      Printf.sprintf "load at pc %d, addr %s" pc (Term.to_string addr)
  | Estore { pc; addr; _ } ->
      Printf.sprintf "store at pc %d, addr %s" pc (Term.to_string addr)
  | Ecall { pc; callee; _ } -> Printf.sprintf "call %s at pc %d" callee pc
  | Ealloc { pc; _ } -> Printf.sprintf "alloc at pc %d" pc
  | Eprefetch -> "prefetch"

(* Prove that a transformed-side extra load touches only addresses the
   original demand-accesses (given it completes trap-free).  Returns
   [false] when unproved — the caller keeps the obligation pending and
   retries as the path accumulates more coverage (a chase family is only
   recorded once the walk loop it describes is reached). *)
let try_discharge sh p ~addr ~width ~pc =
  ignore pc;
  (not sh.s_static.has_alloc)
  &&
  let direct =
    List.exists
      (fun (a, w) -> width <= w && Term.equal a addr)
      p.p_seen
  in
  let by_coverage () =
    List.exists
      (fun cx ->
        match cx.cx_cov with
        | None -> false
        | Some cov ->
            List.exists
              (fun (cand, w) ->
                width <= w
                &&
                match Term.unify ~pat:cand ~target:addr ~var:cov.cov_iv_sym with
                | None -> false
                | Some u ->
                    Prove.prove_ge0 ~cfg:sh.s_cfg.prover ~facts:p.p_facts
                      (Term.sub u cov.cov_lo)
                    && Prove.prove_ge0 ~cfg:sh.s_cfg.prover ~facts:p.p_facts
                         (Term.sub cov.cov_hi u))
              cx.cx_cands)
      p.p_ctxs
  in
  (* Chase coverage: [addr = N + o] where [N] is a chain-node value the
     original provably walks at some covered iteration (or null, in
     which case the address lands in the always-mapped null page). *)
  let by_chase () =
    List.exists
      (fun cx ->
        match cx.cx_cov with
        | None -> false
        | Some cov ->
            let in_range u =
              Prove.prove_ge0 ~cfg:sh.s_cfg.prover ~facts:p.p_facts
                (Term.sub u cov.cov_lo)
              && Prove.prove_ge0 ~cfg:sh.s_cfg.prover ~facts:p.p_facts
                   (Term.sub cov.cov_hi u)
            in
            List.exists
              (fun ch ->
                let rec node t =
                  (match
                     Term.unify ~pat:ch.ch_entry ~target:t ~var:cov.cov_iv_sym
                   with
                  | Some u -> in_range u
                  | None -> false)
                  ||
                  match (Term.lin t, Term.const t) with
                  | [ (Term.Aread { addr = a; ty; _ }, 1) ], 0 ->
                      (* the value of some node's next field *)
                      let w = Ir.size_of_ty ty in
                      List.exists
                        (fun (o, w') -> o = ch.ch_nexto && w' >= w)
                        ch.ch_offs
                      && ch.ch_nexto >= 0
                      && ch.ch_nexto + w <= 4096
                      && node (Term.add_const (-ch.ch_nexto) a)
                  | _ -> false
                in
                List.exists
                  (fun (o, w) ->
                    w >= width && o >= 0
                    && o + width <= 4096
                    && node (Term.add_const (-o) addr))
                  ch.ch_offs)
              cx.cx_chases)
      p.p_ctxs
  in
  direct || by_coverage () || by_chase ()

(* Retry every pending obligation against the path's current contexts. *)
let flush_obligations sh p =
  match p.p_oblig with
  | [] -> p
  | pending ->
      {
        p with
        p_oblig =
          List.filter
            (fun (pc, addr, width) ->
              not (try_discharge sh p ~addr ~width ~pc))
            pending;
      }

let require_discharged p =
  match p.p_oblig with
  | [] -> ()
  | (pc, addr, _) :: _ ->
      mismatch "unproved look-ahead load at pc %d, addr %s" pc
        (Term.to_string addr)

(* ------------------------------------------------------------------ *)
(* Widening at loop heads                                              *)
(* ------------------------------------------------------------------ *)

let is_phi (f : Ir.func) id =
  match (Ir.instr f id).Ir.kind with Ir.Phi _ -> true | _ -> false

let phi_incoming ~line phis pred =
  match List.assoc_opt pred phis with
  | Some op -> op
  | None -> give_up "phi at bb%d has no incoming for edge from bb%d" line pred

(* Replace every loop-carried value by a fresh symbol (shared between
   the sides for positionally-paired header phis, per-side otherwise),
   havoc memory over the loop's store regions, and assume the sound
   step invariant.  Returns the widened envs/facts/log and the new
   context. *)
let widen sh p (li : linfo) ~bid =
  let env_o = p.p_env_o and env_x = p.p_env_x in
  let o_phis = header_phis sh.s_orig bid and x_phis = header_phis sh.s_xform bid in
  let rec pair acc os xs =
    match (os, xs) with
    | (oid, oinc) :: os', (xid, xinc) :: xs' ->
        let vo = eval_operand env_o (phi_incoming ~line:bid oinc p.p_pred) in
        let vx = eval_operand env_x (phi_incoming ~line:bid xinc p.p_pred) in
        if not (Term.equal vo vx) then
          mismatch "loop entry values differ at bb%d: %s vs %s" bid
            (Term.to_string vo) (Term.to_string vx);
        let s = fresh sh in
        env_o.(oid) <- Some (Term.sym s);
        env_x.(xid) <- Some (Term.sym s);
        pair ((oid, s, vo) :: acc) os' xs'
    | rest_o, rest_x ->
        (* Unpaired extras (neither the pass nor the builders create
           them): havoc per side. *)
        List.iter (fun (oid, _) -> env_o.(oid) <- Some (Term.sym (fresh sh))) rest_o;
        List.iter (fun (xid, _) -> env_x.(xid) <- Some (Term.sym (fresh sh))) rest_x;
        List.rev acc
  in
  let pairs = pair [] o_phis x_phis in
  let facts =
    List.fold_left
      (fun facts (oid, s, v0) ->
        if List.mem_assoc oid li.li_steps then
          Term.sub (Term.sym s) v0 :: facts
        else facts)
      p.p_facts pairs
  in
  (* Values defined inside the loop may flow across iterations without a
     phi (a def whose block dominates a later-iteration use), and inner
     header phis carry inner-loop state: havoc everything the loop
     defines except this header's own phis, which were just paired. *)
  let havoc_side (f : Ir.func) env =
    Ir.iter_instrs f (fun i ->
        if
          Loops.contains li.li_loop i.Ir.block
          && Ir.defines_value i.Ir.kind
          && not (i.Ir.block = bid && is_phi f i.Ir.id)
        then env.(i.Ir.id) <- Some (Term.sym (fresh sh)))
  in
  havoc_side sh.s_orig env_o;
  havoc_side sh.s_xform env_x;
  let ver, log =
    if li.li_stores_present then
      ( p.p_ver + 1,
        Mhavoc { ver = p.p_ver + 1; region = li.li_store_regions } :: p.p_log )
    else (p.p_ver, p.p_log)
  in
  let cov =
    match li.li_cond with
    | Some ci
      when li.li_header_exits_only
           && List.assoc_opt ci.ci_pid li.li_steps = Some 1
           && ci.ci_body_true -> (
        match List.find_opt (fun (oid, _, _) -> oid = ci.ci_pid) pairs with
        | Some (_, s_iv, v0) ->
            let bound = eval_operand env_o ci.ci_bound in
            let hi =
              match ci.ci_pred with
              | Ir.Slt -> Term.add_const (-1) bound
              | _ -> bound
            in
            Some { cov_iv_sym = s_iv; cov_lo = v0; cov_hi = hi }
        | None -> None)
    | _ -> None
  in
  let ctx =
    {
      cx_header = bid;
      cx_loop = li.li_loop;
      cx_uncond = li.li_uncond;
      cx_cov = cov;
      cx_armed = true;
      cx_nbase = p.p_nforks;
      cx_cands = [];
      cx_chases = [];
    }
  in
  (* If this loop is a null-tested pointer walk, its entry value as seen
     by each enclosing widened loop is an iteration-uniform chase family
     — provided node values are stable (no stores/allocs anywhere), this
     header runs once per enclosing iteration (dominates its latches),
     and the path from the enclosing header is fork-free. *)
  let enclosing =
    match li.li_chase with
    | Some cs
      when (not sh.s_static.has_store) && not sh.s_static.has_alloc -> (
        match List.find_opt (fun (oid, _, _) -> oid = cs.ch_phi) pairs with
        | Some (_, _, entry) ->
            List.map
              (fun cx ->
                if
                  cx.cx_cov <> None
                  && (cx.cx_armed || p.p_nforks = cx.cx_nbase)
                  && List.for_all
                       (fun latch -> Dom.dominates sh.s_static.dom bid latch)
                       cx.cx_loop.Loops.latches
                then
                  {
                    cx with
                    cx_chases =
                      {
                        ch_entry = entry;
                        ch_offs = cs.ch_offsets;
                        ch_nexto = cs.ch_next;
                      }
                      :: cx.cx_chases;
                  }
                else cx)
              p.p_ctxs
        | None -> p.p_ctxs)
    | _ -> p.p_ctxs
  in
  { p with p_facts = facts; p_ver = ver; p_log = log; p_ctxs = ctx :: enclosing }

(* The closing head arrival: verify both sides carry equal values into
   the next (arbitrary) iteration — the inductive step — then stop. *)
let check_closing sh p ~bid =
  let o_phis = header_phis sh.s_orig bid and x_phis = header_phis sh.s_xform bid in
  let rec go os xs =
    match (os, xs) with
    | (oid, oinc) :: os', (_, xinc) :: xs' ->
        let vo = eval_operand p.p_env_o (phi_incoming ~line:bid oinc p.p_pred) in
        let vx = eval_operand p.p_env_x (phi_incoming ~line:bid xinc p.p_pred) in
        if not (Term.equal vo vx) then
          mismatch "loop-carried value for %%%d differs at bb%d: %s vs %s" oid
            bid (Term.to_string vo) (Term.to_string vx);
        go os' xs'
    | _ -> ()
  in
  go o_phis x_phis

(* ------------------------------------------------------------------ *)
(* The lockstep block step                                             *)
(* ------------------------------------------------------------------ *)

let exec_phis (f : Ir.func) env ~bid ~pred =
  let phis = header_phis f bid in
  let values =
    List.map
      (fun (id, inc) -> (id, eval_operand env (phi_incoming ~line:bid inc pred)))
      phis
  in
  List.iter (fun (id, v) -> env.(id) <- Some v) values

type outcome = Leaf of path | Continue of path list

let copy_path p =
  {
    p with
    p_env_o = Array.copy p.p_env_o;
    p_env_x = Array.copy p.p_env_x;
    p_visits = Array.copy p.p_visits;
  }

let step sh p : outcome =
  (match sh.s_cancel with
  | Some c when Spf_sim.Exec_state.is_cancelled c ->
      give_up "cancelled (supervision deadline)"
  | _ -> ());
  sh.s_steps <- sh.s_steps + 1;
  if sh.s_steps > sh.s_cfg.max_steps then give_up "step budget exhausted";
  let bid = p.p_bid in
  (* Drop contexts of loops this block is no longer inside. *)
  let p = { p with p_ctxs = List.filter (fun c -> Loops.contains c.cx_loop bid) p.p_ctxs } in
  (* Loop-header bookkeeping. *)
  if List.exists (fun c -> c.cx_header = bid) p.p_ctxs then begin
    check_closing sh p ~bid;
    Leaf (flush_obligations sh p)
  end
  else begin
    let p =
      match List.assoc_opt bid sh.s_static.linfos with
      | Some li ->
          p.p_visits.(bid) <- p.p_visits.(bid) + 1;
          if p.p_visits.(bid) > sh.s_cfg.unroll then widen sh p li ~bid
          else begin
            exec_phis sh.s_orig p.p_env_o ~bid ~pred:p.p_pred;
            exec_phis sh.s_xform p.p_env_x ~bid ~pred:p.p_pred;
            p
          end
      | None ->
          if p.p_pred >= 0 then begin
            exec_phis sh.s_orig p.p_env_o ~bid ~pred:p.p_pred;
            exec_phis sh.s_xform p.p_env_x ~bid ~pred:p.p_pred
          end;
          p
    in
    (* Execute both sides' straight-line code. *)
    let call_syms = ref [] and alloc_syms = ref [] in
    let ro =
      exec_side sh sh.s_orig p.p_env_o ~bid ~ver:p.p_ver ~log:p.p_log
        ~call_syms ~alloc_syms ~is_orig:true
    in
    let rx =
      exec_side sh sh.s_xform p.p_env_x ~bid ~ver:p.p_ver ~log:p.p_log
        ~call_syms ~alloc_syms ~is_orig:false
    in
    (* Record the original's demand accesses: path-global, plus
       per-iteration-uniform coverage candidates for enclosing widened
       loops. *)
    let accesses = List.filter_map demand_access ro.r_events in
    let p = { p with p_seen = accesses @ p.p_seen } in
    let p =
      {
        p with
        p_ctxs =
          List.map
            (fun cx ->
              if
                cx.cx_uncond.(bid)
                && (cx.cx_armed || p.p_nforks = cx.cx_nbase)
              then { cx with cx_cands = accesses @ cx.cx_cands }
              else cx)
            p.p_ctxs;
      }
    in
    (* Align the event streams; classify leftovers. *)
    let un_o, un_x = align_events ro.r_events rx.r_events in
    List.iter
      (fun e ->
        match e with
        | Eprefetch | Eload _ -> () (* dead load removed by the cleanup DCE *)
        | _ -> mismatch "original-only %s" (event_desc e))
      un_o;
    let fresh_obligs =
      List.filter_map
        (fun e ->
          match e with
          | Eprefetch -> None
          | Eload { pc; ty; addr; _ } ->
              let width = Ir.size_of_ty ty in
              sh.s_obligations <- sh.s_obligations + 1;
              if try_discharge sh p ~addr ~width ~pc then None
              else Some (pc, addr, width)
          | _ -> mismatch "transformed-only %s" (event_desc e))
        un_x
    in
    (* Stores matched 1:1: commit the original side's entries. *)
    let p =
      {
        p with
        p_ver = p.p_ver + List.length ro.r_stores;
        p_log = ro.r_stores @ p.p_log;
        p_oblig = fresh_obligs @ p.p_oblig;
      }
    in
    let p = flush_obligations sh p in
    (* Terminators. *)
    let term_o = (Ir.block sh.s_orig bid).Ir.term in
    let term_x = (Ir.block sh.s_xform bid).Ir.term in
    match (term_o, term_x) with
    | Ir.Br t, Ir.Br _ -> Continue [ { p with p_bid = t; p_pred = bid } ]
    | Ir.Ret None, Ir.Ret None -> Leaf p
    | Ir.Ret (Some a), Ir.Ret (Some b) ->
        let vo = eval_operand p.p_env_o a and vx = eval_operand p.p_env_x b in
        if Term.equal vo vx then Leaf p
        else mismatch "return values differ: %s vs %s" (Term.to_string vo) (Term.to_string vx)
    | Ir.Unreachable, Ir.Unreachable -> Leaf p
    | Ir.Cbr (c_o, t, f), Ir.Cbr (c_x, _, _) -> (
        let vo = eval_operand p.p_env_o c_o and vx = eval_operand p.p_env_x c_x in
        if not (Term.equal vo vx) then
          mismatch "branch conditions differ at bb%d: %s vs %s" bid
            (Term.to_string vo) (Term.to_string vx);
        match Term.as_const vo with
        | Some 0 -> Continue [ { p with p_bid = f; p_pred = bid } ]
        | Some _ -> Continue [ { p with p_bid = t; p_pred = bid } ]
        | None ->
            let nforks = p.p_nforks + 1 in
            let disarm p' =
              {
                p' with
                p_ctxs =
                  List.map
                    (fun cx ->
                      if cx.cx_armed && cx.cx_header = bid then
                        { cx with cx_armed = false; cx_nbase = p'.p_nforks }
                      else cx)
                    p'.p_ctxs;
              }
            in
            let arm cond_value target =
              let q = copy_path p in
              let q =
                {
                  q with
                  p_bid = target;
                  p_pred = bid;
                  p_nforks = nforks;
                  p_facts = Prove.assert_cond vo cond_value @ q.p_facts;
                }
              in
              disarm q
            in
            Continue [ arm true t; arm false f ])
    | _ -> give_up "terminator shapes differ at bb%d" bid
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let check ?cancel ?(config = default) ~orig ~xform () =
  try
    check_skeleton orig xform;
    let static = analyze orig in
    let sh =
      {
        s_orig = orig;
        s_xform = xform;
        s_static = static;
        s_cfg = config;
        s_cancel = cancel;
        s_fresh = static.nparams;
        s_regions = Hashtbl.create 16;
        s_paths = 0;
        s_steps = 0;
        s_obligations = 0;
      }
    in
    for k = 0 to static.nparams - 1 do
      Hashtbl.replace sh.s_regions k ()
    done;
    let init =
      {
        p_bid = orig.Ir.entry;
        p_pred = -1;
        p_env_o = Array.make (Ir.n_instrs orig) None;
        p_env_x = Array.make (Ir.n_instrs xform) None;
        p_facts = [];
        p_ver = 0;
        p_log = [];
        p_visits = Array.make (Ir.n_blocks orig) 0;
        p_ctxs = [];
        p_nforks = 0;
        p_seen = [];
        p_oblig = [];
      }
    in
    let stack = ref [ init ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | p :: rest -> (
          stack := rest;
          match step sh p with
          | Leaf p' ->
              require_discharged p';
              sh.s_paths <- sh.s_paths + 1;
              if sh.s_paths > config.max_paths then give_up "path budget exhausted"
          | Continue ps -> stack := ps @ !stack)
    done;
    Proved { paths = sh.s_paths; obligations = sh.s_obligations }
  with
  | Give_up r -> Gave_up r
  | Found_mismatch d -> Mismatch d
