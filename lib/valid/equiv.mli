(** The symbolic equivalence checker: lockstep symbolic execution of an
    original program and its {!Spf_core.Pass}-transformed twin, proving
    they agree on all observable behaviour — demand loads and stores,
    traps, calls, allocations and the return value — modulo prefetch
    instructions, over {e every} environment.

    Loops are handled by widening at the header on first arrival: paired
    header phis get shared fresh symbols, loop-defined values are
    havocked, memory gets an opaque-write barrier when the loop stores,
    and closing the loop checks the paired phis' incoming values agree —
    an induction step.  Transformed-side loads with no original
    counterpart (the pass's look-ahead loads) become proof obligations
    discharged against the §4.2 safety argument: the address is a
    structurally-matching access the original performs at some covered
    iteration (array coverage), a field of a chain node the original
    walks (pointer-chase coverage, with the null-page axiom for null
    nodes), or already performed on this path.

    A [Mismatch] is the {e first failed check}, not yet a counterexample
    — the checker over-approximates — so {!Validate} confirms it
    concretely before reporting a refutation.  See docs/ROBUSTNESS.md. *)

type config = {
  unroll : int;  (** concrete header visits before widening (default 0) *)
  max_paths : int;
  max_steps : int;
  prover : Prove.config;
}

val default : config

type result =
  | Proved of { paths : int; obligations : int }
  | Mismatch of string  (** first failed check; unconfirmed *)
  | Gave_up of string  (** beyond the checker's fragment or budget *)

val check :
  ?cancel:Spf_sim.Exec_state.cancel ->
  ?config:config ->
  orig:Spf_ir.Ir.func ->
  xform:Spf_ir.Ir.func ->
  unit ->
  result
(** Never raises; budget exhaustion, unsupported constructs and
    supervision cancellation all surface as [Gave_up]. *)
