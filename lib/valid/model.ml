module Interp = Spf_sim.Interp
module Memory = Spf_sim.Memory
module Machine = Spf_sim.Machine
module Engine = Spf_sim.Engine
module Ir = Spf_ir.Ir

(* Concrete confirmation of candidate counterexamples.

   The symbolic checker never reports [Refuted] on its own authority: a
   failed proof step only becomes a counterexample once the concrete
   interpreter observes the two programs diverge.  Divergences hide in
   two places: value bugs show up on the environment as given, and
   introduced faults (a §4.2 clamp that fails to keep a look-ahead load
   inside the mapping) show up once the mapping is tightened — so the
   portfolio also binary-searches the smallest break at which the
   original still completes and re-compares there. *)

type outcome =
  | Returned of { retval : int option; digest : string }
  | Trapped of { pc : int; addr : int; is_store : bool }
  | Out_of_fuel

let outcome_to_string = function
  | Returned { retval; digest } ->
      Printf.sprintf "returned %s, mem %s"
        (match retval with None -> "void" | Some v -> string_of_int v)
        (String.sub digest 0 (min 12 (String.length digest)))
  | Trapped { pc; addr; is_store } ->
      Printf.sprintf "trapped at pc %d (%s addr %d)" pc
        (if is_store then "store" else "load")
        addr
  | Out_of_fuel -> "out of fuel"

type env = { fresh : unit -> Memory.t * int array; fuel : int }
(** A reproducible concrete environment: every call to [fresh] must
    return an identical, unshared memory image and argument vector. *)

type cex = {
  brk : int;  (** break at which the divergence was confirmed *)
  original : outcome;
  transformed : outcome;
  introduced_fault : bool;
      (** the transformed run trapped at a pass-inserted instruction *)
}

(* A fixed, deterministic meaning for every intrinsic the program calls:
   a value-dependent mix of the callee name and the arguments.  The pass
   must be correct under every implementation of its pure calls, so
   confirming a divergence under this particular one is sound evidence —
   and both runs of a comparison see the same functions. *)
let register_default_intrinsics it func =
  let seed name = String.fold_left (fun h c -> (h * 131) + Char.code c) 7 name in
  Array.iter
    (fun (b : Ir.block) ->
      Array.iter
        (fun id ->
          match (Ir.instr func id).Ir.kind with
          | Ir.Call { callee; _ } ->
              let s = seed callee in
              Interp.register_intrinsic it callee (fun args ->
                  Array.fold_left
                    (fun h a -> (h * 1_000_003) lxor a)
                    s args
                  land 0x3FFF_FFFF)
          | _ -> ())
        b.Ir.instrs)
    func.Ir.blocks

let run_one ?cancel ~env ~brk func =
  let mem, args = env.fresh () in
  if brk < Memory.size mem then Memory.truncate mem brk;
  let it =
    Interp.create ~machine:Machine.haswell ~engine:Engine.Interp ?cancel ~mem
      ~args func
  in
  register_default_intrinsics it func;
  match Interp.run ~fuel:env.fuel it with
  | () -> Returned { retval = Interp.retval it; digest = Memory.digest mem }
  | exception Interp.Trap f ->
      Trapped { pc = f.Interp.pc; addr = f.Interp.addr; is_store = f.Interp.is_store }
  | exception Interp.Fuel_exhausted -> Out_of_fuel

let completes ?cancel ~env ~brk func =
  match run_one ?cancel ~env ~brk func with Returned _ -> true | _ -> false

let outcomes_agree a b =
  match (a, b) with
  | Returned x, Returned y -> x.retval = y.retval && x.digest = y.digest
  | Trapped _, Trapped _ | Out_of_fuel, Out_of_fuel ->
      (* The oracle convention: once the original misbehaves the input is
         undefined and the comparison is discarded, so any transformed
         outcome agrees.  Only reached when the original did not return,
         which [confirm] treats as no evidence anyway. *)
      true
  | _ -> false

(* Smallest break at which the original still completes; completing is
   monotone in the break (shrinking the mapping only adds traps). *)
let min_completing_brk ?cancel ~env func ~full =
  if not (completes ?cancel ~env ~brk:full func) then None
  else begin
    let lo = ref 0 and hi = ref full in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if completes ?cancel ~env ~brk:mid func then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

(* Compare the two programs under [env] at the given break; evidence of
   divergence requires the original to complete there. *)
let compare_at ?cancel ~env ~brk ~n_orig orig xform =
  match run_one ?cancel ~env ~brk orig with
  | Returned _ as original ->
      let transformed = run_one ?cancel ~env ~brk xform in
      if outcomes_agree original transformed then None
      else
        let introduced_fault =
          match transformed with
          | Trapped { pc; _ } -> pc >= n_orig
          | _ -> false
        in
        Some { brk; original; transformed; introduced_fault }
  | _ -> None

let confirm ?cancel ~env ~orig ~xform () =
  let n_orig = Ir.n_instrs orig in
  let mem, _ = env.fresh () in
  let full = Memory.size mem in
  match compare_at ?cancel ~env ~brk:full ~n_orig orig xform with
  | Some cex -> Some cex
  | None -> (
      match min_completing_brk ?cancel ~env orig ~full with
      | Some b when b < full -> compare_at ?cancel ~env ~brk:b ~n_orig orig xform
      | _ -> None)
