(** Concrete confirmation of candidate counterexamples.

    The symbolic checker never reports a refutation on its own
    authority: a failed proof step only becomes a counterexample once
    the concrete interpreter observes the two programs diverge.  The
    portfolio compares on the environment as given, then binary-searches
    the smallest mapping break at which the original still completes and
    re-compares there — which is where §4.2 clamp failures (introduced
    faults) surface. *)

type outcome =
  | Returned of { retval : int option; digest : string }
  | Trapped of { pc : int; addr : int; is_store : bool }
  | Out_of_fuel

val outcome_to_string : outcome -> string

type env = { fresh : unit -> Spf_sim.Memory.t * int array; fuel : int }
(** A reproducible concrete environment: every call to [fresh] must
    return an identical, unshared memory image and argument vector. *)

type cex = {
  brk : int;  (** break at which the divergence was confirmed *)
  original : outcome;
  transformed : outcome;
  introduced_fault : bool;
      (** the transformed run trapped at a pass-inserted instruction *)
}

val run_one :
  ?cancel:Spf_sim.Exec_state.cancel ->
  env:env ->
  brk:int ->
  Spf_ir.Ir.func ->
  outcome
(** One run under [env] with the mapping truncated to [brk]. *)

val min_completing_brk :
  ?cancel:Spf_sim.Exec_state.cancel ->
  env:env ->
  Spf_ir.Ir.func ->
  full:int ->
  int option
(** Smallest break at which the function still completes (completion is
    monotone in the break); [None] if it does not complete at [full]. *)

val confirm :
  ?cancel:Spf_sim.Exec_state.cancel ->
  env:env ->
  orig:Spf_ir.Ir.func ->
  xform:Spf_ir.Ir.func ->
  unit ->
  cex option
(** Try to concretely confirm that [orig] and [xform] diverge under
    [env].  Divergence evidence requires the original to complete at the
    compared break — a trapping or spinning original is undefined input
    and confirms nothing. *)
