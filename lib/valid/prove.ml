(* A small entailment prover for linear facts over opaque atoms.

   A fact is a term [t] asserting [t >= 0]; a goal is proved when it
   follows from the facts over the integers.  Two mechanisms:

   - case splits on min/max/select atoms: [min(x,y)] equals one of its
     arms, so substituting each arm (with the arm's defining inequality
     as an extra fact) and proving all branches is sound;
   - Fourier–Motzkin refutation: negate the goal ([g <= -1], i.e.
     [-g - 1 >= 0]), treat every distinct atom as an opaque variable,
     and eliminate variables until a constant contradiction appears.
     Rational infeasibility implies integer infeasibility, so this is
     sound (and incomplete, which the validator reports as a give-up
     rather than a counterexample). *)

module Ir = Spf_ir.Ir

type config = { split_depth : int; fm_max_facts : int }

let default = { split_depth = 10; fm_max_facts = 128 }

(* Facts implied by branching on [cond] (an arbitrary integer term;
   "true" means non-zero, as in the interpreter's [Cbr]). *)
let assert_cond cond (taken : bool) : Term.t list =
  match (Term.lin cond, Term.const cond) with
  | [ (Term.Acmp (pred, d), 1) ], 0 -> (
      match (pred, taken) with
      | Ir.Slt, true -> [ Term.add_const (-1) (Term.neg d) ] (* d <= -1 *)
      | Ir.Sle, true -> [ Term.neg d ] (* d <= 0 *)
      | Ir.Slt, false -> [ d ] (* d >= 0 *)
      | Ir.Sle, false -> [ Term.add_const (-1) d ] (* d >= 1 *)
      | Ir.Eq, true | Ir.Ne, false -> [ d; Term.neg d ] (* d = 0 *)
      | Ir.Eq, false | Ir.Ne, true -> []
      | _ -> [])
  | _ -> if taken then [] else [ cond; Term.neg cond ] (* cond = 0 *)

(* ------------------------------------------------------------------ *)
(* Fourier–Motzkin refutation                                          *)
(* ------------------------------------------------------------------ *)

let contradiction facts =
  List.exists (fun f -> Term.lin f = [] && Term.const f < 0) facts

let fm_refute cfg (facts : Term.t list) =
  let atoms_of fs =
    List.fold_left
      (fun acc f ->
        List.fold_left
          (fun acc (a, _) -> if List.exists (Term.equal_atom a) acc then acc else a :: acc)
          acc (Term.lin f))
      [] fs
  in
  let rec go facts rounds =
    if contradiction facts then true
    else if rounds <= 0 then false
    else
      match atoms_of facts with
      | [] -> false
      | atoms ->
          (* Eliminate the atom with the cheapest positive x negative
             pairing. *)
          let cost a =
            let p = ref 0 and n = ref 0 in
            List.iter
              (fun f ->
                let c = Term.coeff_of f a in
                if c > 0 then incr p else if c < 0 then incr n)
              facts;
            (!p * !n, a)
          in
          let costs = List.map cost atoms in
          let _, v =
            List.fold_left
              (fun (bc, bv) (c, a) -> if c < bc then (c, a) else (bc, bv))
              (List.hd costs) (List.tl costs)
          in
          let pos, rest =
            List.partition (fun f -> Term.coeff_of f v > 0) facts
          in
          let neg_, zero = List.partition (fun f -> Term.coeff_of f v < 0) rest in
          let combos =
            List.concat_map
              (fun f ->
                let p = Term.coeff_of f v in
                List.map
                  (fun g ->
                    let m = -Term.coeff_of g v in
                    Term.add (Term.mul_const m f) (Term.mul_const p g))
                  neg_)
              pos
          in
          let facts' = zero @ combos in
          if List.length facts' > cfg.fm_max_facts then false
          else go facts' (rounds - 1)
  in
  go facts 16

(* ------------------------------------------------------------------ *)
(* Top-level proving with case splits                                  *)
(* ------------------------------------------------------------------ *)

let rec prove_ge0 ?(cfg = default) ~facts goal =
  match Term.as_const goal with
  | Some c -> c >= 0
  | None -> attempt cfg cfg.split_depth facts goal

and attempt cfg depth facts goal =
  let split_atom =
    match Term.find_split goal with
    | Some a -> Some a
    | None ->
        List.fold_left
          (fun acc f -> match acc with Some _ -> acc | None -> Term.find_split f)
          None facts
  in
  match split_atom with
  | Some atom when depth > 0 ->
      let arms =
        match atom with
        | Term.Amin (x, y) ->
            [ (x, [ Term.sub y x ]); (y, [ Term.sub x y ]) ]
        | Term.Amax (x, y) ->
            [ (x, [ Term.sub x y ]); (y, [ Term.sub y x ]) ]
        | Term.Asel (c, x, y) ->
            [ (x, assert_cond c true); (y, assert_cond c false) ]
        | _ -> []
      in
      arms <> []
      && List.for_all
           (fun (by, arm_facts) ->
             let s t = Term.subst_atom ~atom ~by t in
             let goal' = s goal in
             let facts' = arm_facts @ List.map s facts in
             match Term.as_const goal' with
             | Some c -> c >= 0 || fm_refute cfg (Term.add_const (-1) (Term.neg goal') :: facts')
             | None -> attempt cfg (depth - 1) facts' goal')
           arms
  | _ ->
      (* No splits left: refute facts ∧ goal <= -1. *)
      fm_refute cfg (Term.add_const (-1) (Term.neg goal) :: facts)

let prove_eq0 ?cfg ~facts t =
  prove_ge0 ?cfg ~facts t && prove_ge0 ?cfg ~facts (Term.neg t)
