(** A small entailment prover for linear facts over opaque atoms.

    A fact is a term [t] asserting [t >= 0]; a goal is proved when it
    follows from the facts over the integers.  Case splits on
    min/max/select atoms plus Fourier–Motzkin refutation over the
    rationals: sound and incomplete — the validator reports a failed
    proof as a give-up, never as a counterexample on its own
    authority. *)

type config = {
  split_depth : int;  (** max nested min/max/select case splits *)
  fm_max_facts : int;  (** fact-set size cap per elimination round *)
}

val default : config

val assert_cond : Term.t -> bool -> Term.t list
(** Facts implied by branching on a condition term ("true" means
    non-zero, as in the interpreter's [Cbr]). *)

val prove_ge0 : ?cfg:config -> facts:Term.t list -> Term.t -> bool
(** Does [facts |- goal >= 0] hold over the integers?  [false] means
    "not proved", not "false". *)

val prove_eq0 : ?cfg:config -> facts:Term.t list -> Term.t -> bool
