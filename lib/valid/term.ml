module Ir = Spf_ir.Ir

(* Symbolic integer terms in normalized linear form:

     t  ::=  const + Σ coeff·atom        (atoms sorted, coeffs non-zero)

   Atoms are the opaque leaves — fresh symbols, memory reads, and the
   non-linear operators (min/max, compares, selects, bitwise ops, float
   arithmetic).  Equality of two terms is structural equality of the
   normalized forms, which is the executor's notion of "provably the same
   value".  Constant folding mirrors the interpreter exactly: OCaml native
   [int] arithmetic (`lib/sim/interp.ml`, [exec_binop]/[eval_cmp]), so a
   term that folds to a constant is the value the simulator computes.

   Compare atoms are kept in a reduced form [Acmp (pred, d)] meaning
   [pred (d, 0)] with [pred] restricted to {Eq, Ne, Slt, Sle}; the value
   of such an atom is 0 or 1.  [Aread {ver; addr; ty}] is the value of
   memory at [addr] as of write-version [ver] — the executor assigns
   canonical versions so that reads unaffected by intervening stores get
   equal terms. *)

type t = { const : int; lin : (atom * int) list }

and atom =
  | Asym of int
  | Aread of { ver : int; addr : t; ty : Ir.ty }
  | Amin of t * t
  | Amax of t * t
  | Acmp of Ir.cmp * t
  | Asel of t * t * t
  | Aop of Ir.binop * t * t
  | Acall of string * t list
  | Afconst of float

(* Structural compare; [Asym] ids make the common case cheap.  Used only
   for canonical ordering inside linear forms. *)
let compare_atom (a : atom) (b : atom) = Stdlib.compare a b

let equal_atom a b = compare_atom a b = 0

let equal (x : t) (y : t) =
  x.const = y.const
  && List.length x.lin = List.length y.lin
  && List.for_all2 (fun (a, c) (b, d) -> c = d && equal_atom a b) x.lin y.lin

let compare (x : t) (y : t) = Stdlib.compare x y

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let of_int c = { const = c; lin = [] }
let zero = of_int 0
let one = of_int 1
let sym i = { const = 0; lin = [ (Asym i, 1) ] }
let of_atom a = { const = 0; lin = [ (a, 1) ] }
let as_const t = if t.lin = [] then Some t.const else None
let is_const t = t.lin = []

(* Merge two sorted coefficient lists. *)
let rec merge_lin xs ys =
  match (xs, ys) with
  | [], l | l, [] -> l
  | (a, ca) :: xs', (b, cb) :: ys' ->
      let c = compare_atom a b in
      if c < 0 then (a, ca) :: merge_lin xs' ys
      else if c > 0 then (b, cb) :: merge_lin xs ys'
      else
        let s = ca + cb in
        if s = 0 then merge_lin xs' ys' else (a, s) :: merge_lin xs' ys'

let add x y = { const = x.const + y.const; lin = merge_lin x.lin y.lin }

let mul_const k t =
  if k = 0 then zero
  else if k = 1 then t
  else { const = k * t.const; lin = List.map (fun (a, c) -> (a, k * c)) t.lin }

let neg t = mul_const (-1) t
let sub x y = add x (neg y)
let add_const k t = { t with const = t.const + k }

(* Canonical argument order for commutative opaque operators, so both
   sides of the checker build identical atoms regardless of source
   operand order. *)
let ordered x y = if compare x y <= 0 then (x, y) else (y, x)

let smin x y =
  if equal x y then x
  else
    match as_const (sub x y) with
    | Some d -> if d <= 0 then x else y
    | None ->
        let x, y = ordered x y in
        of_atom (Amin (x, y))

let smax x y =
  if equal x y then x
  else
    match as_const (sub x y) with
    | Some d -> if d >= 0 then x else y
    | None ->
        let x, y = ordered x y in
        of_atom (Amax (x, y))

let fconst f = of_atom (Afconst f)

exception Symbolic_division
(** [Sdiv]/[Srem] whose result the term language cannot represent
    soundly: symbolic or zero divisor.  The executor maps this to a
    give-up (or, for a zero constant divisor, mirrors the trap). *)

let mul x y =
  match (as_const x, as_const y) with
  | Some k, _ -> mul_const k y
  | _, Some k -> mul_const k x
  | None, None ->
      let x, y = ordered x y in
      of_atom (Aop (Ir.Mul, x, y))

let binop (op : Ir.binop) x y =
  let fold f =
    match (as_const x, as_const y) with
    | Some a, Some b -> Some (of_int (f a b))
    | _ -> None
  in
  let opaque ?(commutative = false) () =
    let x, y = if commutative then ordered x y else (x, y) in
    of_atom (Aop (op, x, y))
  in
  match op with
  | Ir.Add -> add x y
  | Ir.Sub -> sub x y
  | Ir.Mul -> mul x y
  | Ir.Sdiv | Ir.Srem -> (
      match (as_const x, as_const y) with
      | _, Some 0 -> raise Symbolic_division
      | Some a, Some b -> of_int (if op = Ir.Sdiv then a / b else a mod b)
      | _ -> raise Symbolic_division)
  | Ir.And -> (
      match fold ( land ) with Some t -> t | None -> opaque ~commutative:true ())
  | Ir.Or -> (
      match fold ( lor ) with Some t -> t | None -> opaque ~commutative:true ())
  | Ir.Xor -> (
      match fold ( lxor ) with Some t -> t | None -> opaque ~commutative:true ())
  | Ir.Shl -> (
      match fold ( lsl ) with
      | Some t -> t
      | None -> (
          (* Left shift by a small constant is a multiplication both in
             OCaml's wrapped arithmetic and on the machine. *)
          match as_const y with
          | Some c when c >= 0 && c <= 61 -> mul_const (1 lsl c) x
          | _ -> opaque ()))
  | Ir.Lshr -> ( match fold ( lsr ) with Some t -> t | None -> opaque ())
  | Ir.Ashr -> ( match fold ( asr ) with Some t -> t | None -> opaque ())
  | Ir.Smin -> smin x y
  | Ir.Smax -> smax x y
  | Ir.Fadd | Ir.Fsub | Ir.Fmul | Ir.Fdiv -> opaque ()

(* Normalize a compare to pred(d, 0) with pred in {Eq, Ne, Slt, Sle}. *)
let cmp (pred : Ir.cmp) x y =
  let pred, d =
    match pred with
    | Ir.Eq -> (Ir.Eq, sub x y)
    | Ir.Ne -> (Ir.Ne, sub x y)
    | Ir.Slt -> (Ir.Slt, sub x y)
    | Ir.Sle -> (Ir.Sle, sub x y)
    | Ir.Sgt -> (Ir.Slt, sub y x)
    | Ir.Sge -> (Ir.Sle, sub y x)
  in
  match as_const d with
  | Some c ->
      let b =
        match pred with
        | Ir.Eq -> c = 0
        | Ir.Ne -> c <> 0
        | Ir.Slt -> c < 0
        | Ir.Sle -> c <= 0
        | _ -> assert false
      in
      if b then one else zero
  | None ->
      (* Eq/Ne are symmetric in d: canonicalize the sign so both
         orderings of the original operands produce one atom. *)
      let d =
        match (pred, d.lin) with
        | (Ir.Eq | Ir.Ne), (_, c) :: _ when c < 0 -> neg d
        | _ -> d
      in
      of_atom (Acmp (pred, d))

let select c a b =
  match as_const c with
  | Some 0 -> b
  | Some _ -> a
  | None -> if equal a b then a else of_atom (Asel (c, a, b))

let read ~ver ~addr ~ty = of_atom (Aread { ver; addr; ty })

(* A pure call is an uninterpreted function of its arguments: two calls
   to the same callee with provably-equal arguments are provably equal,
   which is what lets a pass-inserted look-ahead call match the demand
   call it clones. *)
let call callee args = of_atom (Acall (callee, args))

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let lin t = t.lin
let const t = t.const
let coeff_of t a =
  match List.find_opt (fun (b, _) -> equal_atom a b) t.lin with
  | Some (_, c) -> c
  | None -> 0

(* Top-level symbol atoms with their coefficients. *)
let top_syms t =
  List.filter_map (function Asym i, c -> Some (i, c) | _ -> None) t.lin

let rec iter_syms f t =
  List.iter
    (fun (a, _) ->
      match a with
      | Asym i -> f i
      | Aread { addr; _ } -> iter_syms f addr
      | Amin (x, y) | Amax (x, y) | Aop (_, x, y) ->
          iter_syms f x;
          iter_syms f y
      | Acmp (_, d) -> iter_syms f d
      | Asel (c, x, y) ->
          iter_syms f c;
          iter_syms f x;
          iter_syms f y
      | Acall (_, args) -> List.iter (iter_syms f) args
      | Afconst _ -> ())
    t.lin

let occurs_sym i t =
  let found = ref false in
  iter_syms (fun j -> if i = j then found := true) t;
  !found

(* ------------------------------------------------------------------ *)
(* Substitution (deep, rebuilding through the smart constructors)      *)
(* ------------------------------------------------------------------ *)

let rec subst_sym i ~by t =
  List.fold_left
    (fun acc (a, c) -> add acc (mul_const c (subst_atom_sym i ~by a)))
    (of_int t.const) t.lin

and subst_atom_sym i ~by a =
  match a with
  | Asym j -> if i = j then by else of_atom a
  | Aread { ver; addr; ty } -> read ~ver ~addr:(subst_sym i ~by addr) ~ty
  | Amin (x, y) -> smin (subst_sym i ~by x) (subst_sym i ~by y)
  | Amax (x, y) -> smax (subst_sym i ~by x) (subst_sym i ~by y)
  | Acmp (p, d) -> cmp p (subst_sym i ~by d) zero
  | Asel (c, x, y) ->
      select (subst_sym i ~by c) (subst_sym i ~by x) (subst_sym i ~by y)
  | Aop (op, x, y) -> (
      try binop op (subst_sym i ~by x) (subst_sym i ~by y)
      with Symbolic_division -> of_atom a)
  | Acall (n, args) -> call n (List.map (subst_sym i ~by) args)
  | Afconst _ -> of_atom a

(* Replace every occurrence of [atom] (an extensional value: it equals
   one of its arms) by [by]; used by the prover's min/max case split. *)
let rec subst_atom ~atom ~by t =
  List.fold_left
    (fun acc (a, c) ->
      let a' =
        if equal_atom a atom then by
        else
          match a with
          | Asym _ | Afconst _ -> of_atom a
          | Aread { ver; addr; ty } ->
              read ~ver ~addr:(subst_atom ~atom ~by addr) ~ty
          | Amin (x, y) ->
              smin (subst_atom ~atom ~by x) (subst_atom ~atom ~by y)
          | Amax (x, y) ->
              smax (subst_atom ~atom ~by x) (subst_atom ~atom ~by y)
          | Acmp (p, d) -> cmp p (subst_atom ~atom ~by d) zero
          | Asel (c, x, y) ->
              select (subst_atom ~atom ~by c) (subst_atom ~atom ~by x)
                (subst_atom ~atom ~by y)
          | Aop (op, x, y) -> (
              try binop op (subst_atom ~atom ~by x) (subst_atom ~atom ~by y)
              with Symbolic_division -> of_atom a)
          | Acall (n, args) -> call n (List.map (subst_atom ~atom ~by) args)
      in
      add acc (mul_const c a'))
    (of_int t.const) t.lin

(* First case-splittable atom (min/max/select), searching deep. *)
let rec find_split t =
  let in_atom a =
    match a with
    | Amin _ | Amax _ | Asel _ -> Some a
    | Aread { addr; _ } -> find_split addr
    | Acmp (_, d) -> find_split d
    | Aop (_, x, y) -> ( match find_split x with Some s -> Some s | None -> find_split y)
    | Acall (_, args) ->
        List.fold_left
          (fun acc t -> match acc with Some _ -> acc | None -> find_split t)
          None args
    | Asym _ | Afconst _ -> None
  in
  List.fold_left
    (fun acc (a, _) -> match acc with Some _ -> acc | None -> in_atom a)
    None t.lin

(* Exact division of a linear form by a constant. *)
let div_exact t k =
  if k = 0 then None
  else if
    t.const mod k = 0 && List.for_all (fun (_, c) -> c mod k = 0) t.lin
  then Some { const = t.const / k; lin = List.map (fun (a, c) -> (a, c / k)) t.lin }
  else None

(* ------------------------------------------------------------------ *)
(* Unification: find U with  pat[var := U] == target                   *)
(* ------------------------------------------------------------------ *)

(* The coverage check matches a transformed-side look-ahead address
   against an original-side access term that is a function of the loop's
   widened induction symbol [var].  Handles the linear case (base +
   k·var vs base + k·U) and single-atom structural descent (addresses
   nested inside memory reads or opaque operators). *)
let rec unify ~pat ~target ~var =
  if not (occurs_sym var pat) then None
  else
    let k = coeff_of pat (Asym var) in
    let nested =
      List.exists
        (fun (a, _) ->
          match a with
          | Asym _ -> false
          | _ -> occurs_sym var (of_atom a))
        pat.lin
    in
    if k <> 0 && not nested then
      (* pat = rest + k·var; target must be rest + k·U. *)
      let rest = sub pat (mul_const k (sym var)) in
      let r = sub target rest in
      Option.map (fun u -> u) (div_exact r k)
    else if k = 0 && nested then begin
      (* Cancel equal parts; exactly one atom pair may remain, with
         equal coefficients — recurse into it. *)
      let d = sub target pat in
      if d.const <> 0 then None
      else
        (* d = Σ c·(a_target) - Σ c·(a_pat): collect positive and
           negative leftovers. *)
        let pos = List.filter (fun (_, c) -> c > 0) d.lin in
        let neg_ = List.filter (fun (_, c) -> c < 0) d.lin in
        match (pos, neg_) with
        | [ (ta, c) ], [ (pa, c') ] when c = -c' -> unify_atom ~pat:pa ~target:ta ~var
        | _ -> None
    end
    else None

and unify_atom ~pat ~target ~var =
  (* Both arguments of a binary atom may mention [var] (e.g. the hash
     [xor k (lshr k 33)]): unify each differing pair and require the
     solutions to agree. *)
  (* Every differing argument pair must unify to the same solution. *)
  let unify_list pairs =
    List.fold_left
      (fun acc (x, y) ->
        match acc with
        | `Fail -> `Fail
        | (`No_diff | `Sol _) as acc ->
            if equal x y then acc
            else (
              match (unify ~pat:x ~target:y ~var, acc) with
              | None, _ -> `Fail
              | Some u, `No_diff -> `Sol u
              | Some u, `Sol u0 -> if equal u u0 then acc else `Fail))
      `No_diff pairs
  in
  let unify2 (x, x') (y, y') =
    match unify_list [ (x, x'); (y, y') ] with
    | `Sol u -> Some u
    | `No_diff | `Fail -> None
  in
  match (pat, target) with
  | Aread { ver = v1; addr = a1; ty = t1 }, Aread { ver = v2; addr = a2; ty = t2 }
    when v1 = v2 && t1 = t2 ->
      unify ~pat:a1 ~target:a2 ~var
  | Amin (x, y), Amin (x', y') | Amax (x, y), Amax (x', y') ->
      unify2 (x, x') (y, y')
  | Aop (o, x, y), Aop (o', x', y') when o = o' -> unify2 (x, x') (y, y')
  | Asel (c, x, y), Asel (c', x', y') when equal c c' -> unify2 (x, x') (y, y')
  | Acmp (p, d), Acmp (p', d') when p = p' -> unify ~pat:d ~target:d' ~var
  | Acall (n, xs), Acall (n', ys)
    when n = n' && List.length xs = List.length ys -> (
      match unify_list (List.combine xs ys) with
      | `Sol u -> Some u
      | `No_diff | `Fail -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec to_string t =
  if t.lin = [] then string_of_int t.const
  else
    let part (a, c) =
      if c = 1 then atom_to_string a
      else Printf.sprintf "%d*%s" c (atom_to_string a)
    in
    let body = String.concat " + " (List.map part t.lin) in
    if t.const = 0 then body else Printf.sprintf "%s + %d" body t.const

and atom_to_string = function
  | Asym i -> Printf.sprintf "s%d" i
  | Aread { ver; addr; ty } ->
      Printf.sprintf "mem%d[%s]:%s" ver (to_string addr) (Ir.string_of_ty ty)
  | Amin (x, y) -> Printf.sprintf "min(%s, %s)" (to_string x) (to_string y)
  | Amax (x, y) -> Printf.sprintf "max(%s, %s)" (to_string x) (to_string y)
  | Acmp (p, d) -> Printf.sprintf "(%s 0 %s)" (to_string d) (Ir.string_of_cmp p)
  | Asel (c, a, b) ->
      Printf.sprintf "sel(%s, %s, %s)" (to_string c) (to_string a) (to_string b)
  | Aop (op, x, y) ->
      Printf.sprintf "(%s %s %s)" (Ir.string_of_binop op) (to_string x)
        (to_string y)
  | Acall (n, args) ->
      Printf.sprintf "%s(%s)" n (String.concat ", " (List.map to_string args))
  | Afconst f -> Printf.sprintf "%h" f
