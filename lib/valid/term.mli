(** Symbolic integer terms in normalized linear form:

    {v t ::= const + Σ coeff·atom v}

    with atoms sorted and coefficients non-zero.  Atoms are the opaque
    leaves: fresh symbols, memory reads, and the non-linear operators.
    {!equal} on normalized forms is the executor's notion of "provably
    the same value"; constant folding mirrors the interpreter's native
    [int] arithmetic exactly, so a term that folds to a constant is the
    value the simulator computes.  See docs/ROBUSTNESS.md. *)

type t

and atom =
  | Asym of int  (** a fresh symbol (parameter, widened phi, havoc) *)
  | Aread of { ver : int; addr : t; ty : Spf_ir.Ir.ty }
      (** memory at [addr] as of write-version [ver] *)
  | Amin of t * t
  | Amax of t * t
  | Acmp of Spf_ir.Ir.cmp * t
      (** [pred (d, 0)], [pred] restricted to Eq/Ne/Slt/Sle; value 0/1 *)
  | Asel of t * t * t
  | Aop of Spf_ir.Ir.binop * t * t  (** irreducible operator application *)
  | Acall of string * t list
      (** a pure call as an uninterpreted function of its arguments *)
  | Afconst of float

val compare_atom : atom -> atom -> int
val equal_atom : atom -> atom -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Construction} *)

val of_int : int -> t
val zero : t
val one : t
val sym : int -> t
val of_atom : atom -> t
val as_const : t -> int option
val is_const : t -> bool
val add : t -> t -> t
val mul_const : int -> t -> t
val neg : t -> t
val sub : t -> t -> t
val add_const : int -> t -> t
val smin : t -> t -> t
val smax : t -> t -> t
val fconst : float -> t
val mul : t -> t -> t

exception Symbolic_division
(** [Sdiv]/[Srem] whose result the term language cannot represent
    soundly: symbolic or zero divisor.  The executor maps this to a
    give-up (or, for a constant zero divisor, mirrors the trap). *)

val binop : Spf_ir.Ir.binop -> t -> t -> t
(** Smart constructor folding constants exactly as the interpreter
    computes them.  @raise Symbolic_division as above. *)

val cmp : Spf_ir.Ir.cmp -> t -> t -> t
(** Normalized to [pred (d, 0)] with [pred] in Eq/Ne/Slt/Sle; constant
    operands fold to {!zero}/{!one}. *)

val select : t -> t -> t -> t
val read : ver:int -> addr:t -> ty:Spf_ir.Ir.ty -> t

val call : string -> t list -> t
(** A pure call modelled as an uninterpreted function application: equal
    callee and provably-equal arguments give provably-equal results. *)

(** {1 Queries} *)

val lin : t -> (atom * int) list
val const : t -> int
val coeff_of : t -> atom -> int
val top_syms : t -> (int * int) list
(** Top-level symbol atoms with their coefficients. *)

val iter_syms : (int -> unit) -> t -> unit
(** Every symbol id occurring anywhere in the term, depth included. *)

val occurs_sym : int -> t -> bool

(** {1 Substitution} (deep, rebuilding through the smart constructors) *)

val subst_sym : int -> by:t -> t -> t
val subst_atom : atom:atom -> by:t -> t -> t
(** Replace every occurrence of [atom] — an extensional value equal to
    one of its arms — by [by]; the prover's min/max/select case split. *)

val find_split : t -> atom option
(** First case-splittable atom (min/max/select), searching deep. *)

val div_exact : t -> int -> t option
(** Exact division of every coefficient and the constant, or [None]. *)

val unify : pat:t -> target:t -> var:int -> t option
(** Find [U] with [pat[var := U] == target].  Handles the linear case
    ([base + k·var] vs [base + k·U]) and single-atom structural descent
    (addresses nested inside memory reads or opaque operators, both of
    whose arguments may mention [var]).  The look-ahead coverage check
    in {!Equiv} is built on this. *)

val unify_atom : pat:atom -> target:atom -> var:int -> t option

(** {1 Printing} *)

val to_string : t -> string
val atom_to_string : atom -> string
