module Ir = Spf_ir.Ir
module Pass = Spf_core.Pass
module Config = Spf_core.Config
module Benches = Spf_harness.Benches
module Supervisor = Spf_harness.Supervisor
module Runner = Spf_harness.Runner
module Workload = Spf_workloads.Workload

(* Translation validation: proof-or-counterexample for one (program,
   transformed program) pair.

   The symbolic checker ({!Equiv}) either proves the pair equivalent or
   reports the first failed check.  A failed check is {e not} yet a
   counterexample — the checker over-approximates (widening, opaque
   memory reads, an incomplete prover) — so it must be confirmed by the
   concrete interpreter ({!Model.confirm}) before this module reports
   [Refuted]; an unconfirmed failure is a [Gave_up].  [Refuted] carries
   the runnable {!Case} so callers (the CLI, the fuzz oracle) can hand
   the user a self-contained reproducer. *)

type outcome =
  | Proved of { paths : int; obligations : int }
  | Refuted of { detail : string; cex : Model.cex; case : Case.t }
  | Gave_up of string

let outcome_to_string = function
  | Proved { paths; obligations } ->
      Printf.sprintf "proved (%d paths, %d look-ahead obligations)" paths
        obligations
  | Refuted { detail; cex; _ } ->
      Printf.sprintf
        "refuted: %s\n  confirmed at brk=%d: original %s, transformed %s%s"
        detail cex.Model.brk
        (Model.outcome_to_string cex.Model.original)
        (Model.outcome_to_string cex.Model.transformed)
        (if cex.Model.introduced_fault then
           " (fault at a pass-inserted instruction)"
         else "")
  | Gave_up r -> "gave up: " ^ r

(* ------------------------------------------------------------------ *)
(* Core pair check                                                     *)
(* ------------------------------------------------------------------ *)

let check ?cancel ?(equiv = Equiv.default) ~(env : Model.env) ~orig ~xform () =
  match Equiv.check ?cancel ~config:equiv ~orig ~xform () with
  | Equiv.Proved { paths; obligations } -> Proved { paths; obligations }
  | Equiv.Gave_up r -> Gave_up r
  | Equiv.Mismatch detail -> (
      match Model.confirm ?cancel ~env ~orig ~xform () with
      | Some cex ->
          let mem, args = env.Model.fresh () in
          let case =
            Case.of_concrete ~func:orig ~mem ~args ~fuel:env.Model.fuel
          in
          Refuted { detail; cex; case }
      | None -> Gave_up ("unconfirmed symbolic mismatch: " ^ detail))

let transform ?(config = Config.default) func =
  let x = Ir.clone_func func in
  match Pass.run ~config x with
  | _report -> Ok x
  | exception exn -> Error (Printexc.to_string exn)

let check_case ?cancel ?config ?equiv (c : Case.t) =
  match transform ?config c.Case.func with
  | Error e -> Gave_up ("pass raised: " ^ e)
  | Ok xform ->
      check ?cancel ?equiv ~env:(Case.to_env c) ~orig:c.Case.func ~xform ()

(* ------------------------------------------------------------------ *)
(* The golden suite                                                    *)
(* ------------------------------------------------------------------ *)

(* Every distinct (program, transformed program) pair behind the 44-row
   golden timing suite: the five timing-golden benchmarks under the
   automatic pass, plus the one manual scheme the suite pins (HJ-8). *)

let golden_fuel = 200_000_000

let golden_pairs () =
  let bench id =
    List.find (fun (b : Benches.bench) -> b.Benches.id = id) (Benches.all ())
  in
  List.map (fun id -> (bench id, `Auto)) [ "IS"; "CG"; "RA"; "HJ-2"; "HJ-8" ]
  @ [ (bench "HJ-8", `Manual) ]

let check_golden ?cancel ?config ?equiv () =
  List.map
    (fun ((b : Benches.bench), variant) ->
      let orig = (b.Benches.plain ()).Workload.func in
      let xform, vname =
        match variant with
        | `Auto -> ((Benches.auto ?config (b.Benches.plain ())).Workload.func, "auto")
        | `Manual ->
            ( (b.Benches.manual ~machine:Spf_sim.Machine.haswell ~c:None)
                .Workload.func,
              "manual" )
      in
      let env =
        {
          Model.fresh =
            (fun () ->
              let w = b.Benches.plain () in
              (w.Workload.mem, w.Workload.args));
          fuel = golden_fuel;
        }
      in
      (b.Benches.id ^ "/" ^ vname, check ?cancel ?equiv ~env ~orig ~xform ()))
    (golden_pairs ())

(* ------------------------------------------------------------------ *)
(* Corpus batch mode                                                   *)
(* ------------------------------------------------------------------ *)

(* Compact, journal-able per-file result for supervised sweeps. *)
type status =
  | S_proved of { paths : int; obligations : int }
  | S_refuted of string
  | S_gave_up of string

let status_of_outcome = function
  | Proved { paths; obligations } -> S_proved { paths; obligations }
  | Refuted { detail; cex; _ } ->
      S_refuted
        (Printf.sprintf "%s (confirmed at brk=%d)" detail cex.Model.brk)
  | Gave_up r -> S_gave_up r

let status_to_string = function
  | S_proved { paths; obligations } ->
      Printf.sprintf "proved (%d paths, %d obligations)" paths obligations
  | S_refuted d -> "REFUTED: " ^ d
  | S_gave_up r -> "gave up: " ^ r

let corpus_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".case")
  |> List.sort Stdlib.compare
  |> List.map (Filename.concat dir)

let encode_status (s : status) = Marshal.to_string s []

let decode_status s =
  try Some (Marshal.from_string s 0 : status) with _ -> None

(* Sweep every [*.case] file under [dir].  With [supervise], each file is
   a supervised job ("validate/<file>"): a case whose proof search hangs
   past the deadline (or crashes) is classified as a give-up rather than
   poisoning the sweep, and completed files checkpoint/resume through the
   journal. *)
let check_corpus ?config ?equiv ?supervise dir : (string * status) list =
  let files = corpus_files dir in
  match supervise with
  | None ->
      List.map
        (fun f -> (f, status_of_outcome (check_case ?config ?equiv (Case.load f))))
        files
  | Some opts ->
      let jobs =
        List.map
          (fun f ->
            {
              Supervisor.key = "validate/" ^ Filename.basename f;
              work =
                (fun (ctx : Runner.ctx) ->
                  status_of_outcome
                    (check_case ?cancel:ctx.Runner.cancel ?config ?equiv
                       (Case.load f)));
              binfo =
                Some
                  (fun _exn ->
                    {
                      Supervisor.b_meta =
                        [ ("kind", "validate-case"); ("file", f) ];
                      b_ir = Some (Spf_ir.Printer.func_to_string (Case.load f).Case.func);
                      b_payload = None;
                    });
            })
          files
      in
      let results =
        Supervisor.run_jobs opts ~encode:encode_status ~decode:decode_status
          jobs
      in
      List.map2
        (fun f r ->
          match r with
          | Ok (o : status Supervisor.outcome) -> (f, o.Supervisor.value)
          | Error (fl : Supervisor.failure) ->
              ( f,
                S_gave_up
                  (Printf.sprintf "supervision: %s after %d attempt(s)"
                     (Supervisor.classification_to_string fl.Supervisor.f_class)
                     fl.Supervisor.f_attempts) ))
        files results
