(** Translation validation: proof-or-counterexample for one (program,
    transformed program) pair, and batch drivers over the golden suite
    and the checked-in corpus ([spf validate]).  A failed symbolic check
    must be confirmed by the concrete interpreter before it is reported
    [Refuted]; an unconfirmed failure is a [Gave_up]. *)

type outcome =
  | Proved of { paths : int; obligations : int }
  | Refuted of { detail : string; cex : Model.cex; case : Case.t }
      (** [case] is a runnable reproducer of the confirming environment *)
  | Gave_up of string

val outcome_to_string : outcome -> string

val check :
  ?cancel:Spf_sim.Exec_state.cancel ->
  ?equiv:Equiv.config ->
  env:Model.env ->
  orig:Spf_ir.Ir.func ->
  xform:Spf_ir.Ir.func ->
  unit ->
  outcome

val transform :
  ?config:Spf_core.Config.t ->
  Spf_ir.Ir.func ->
  (Spf_ir.Ir.func, string) Stdlib.result
(** Clone and run the pass; [Error] carries the escaped exception. *)

val check_case :
  ?cancel:Spf_sim.Exec_state.cancel ->
  ?config:Spf_core.Config.t ->
  ?equiv:Equiv.config ->
  Case.t ->
  outcome
(** Transform the case's program under [config] and validate the pair in
    the case's environment. *)

(** {1 The golden suite} *)

val golden_fuel : int

val golden_pairs : unit -> (Spf_harness.Benches.bench * [ `Auto | `Manual ]) list
(** Every distinct (program, transformed program) pair behind the 44-row
    golden timing suite: IS, CG, RA, HJ-2 and HJ-8 under the automatic
    pass, plus the one manual scheme the suite pins (HJ-8). *)

val check_golden :
  ?cancel:Spf_sim.Exec_state.cancel ->
  ?config:Spf_core.Config.t ->
  ?equiv:Equiv.config ->
  unit ->
  (string * outcome) list

(** {1 Corpus batch mode} *)

(** Compact, journal-able per-file result for supervised sweeps. *)
type status =
  | S_proved of { paths : int; obligations : int }
  | S_refuted of string
  | S_gave_up of string

val status_of_outcome : outcome -> status
val status_to_string : status -> string

val corpus_files : string -> string list
(** The [*.case] files under a directory, sorted. *)

val encode_status : status -> string
val decode_status : string -> status option

val check_corpus :
  ?config:Spf_core.Config.t ->
  ?equiv:Equiv.config ->
  ?supervise:Spf_harness.Supervisor.options ->
  string ->
  (string * status) list
(** Validate every [*.case] file under the directory.  With [supervise],
    each file is a supervised job ("validate/<file>"): a proof search
    that hangs past the deadline or crashes is classified as a give-up
    rather than poisoning the sweep, and completed files
    checkpoint/resume through the journal. *)
