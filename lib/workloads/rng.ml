(* Deterministic pseudo-random number generation (splitmix64-style) so that
   every experiment is exactly reproducible without OCaml's global Random
   state. *)

type t = { mutable state : int }

let create ~seed = { state = (seed * 2) + 1 }

(* splitmix64-style core with the multiplicative constants truncated to
   OCaml's 62-bit positive-int range. *)
let next t =
  t.state <- (t.state + 0x1E3779B97F4A7C15) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  z lxor (z lsr 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let float t = float_of_int (next t land 0xFFFFFFFFFFFF) /. float_of_int 0x1000000000000

(* Independent stream [index] of [seed]: the starting state is a full
   avalanche mix of (seed, index), so consecutive indices land in
   unrelated regions of the state space — stream i and stream i+1 do NOT
   overlap shifted by one draw, which matters when each fuzz case owns a
   stream and cases must be mutually independent. *)
let split ~seed index =
  let mixer = create ~seed:((seed * 0x3C79AC49) lxor index) in
  create ~seed:(next mixer)

(* In-place Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
