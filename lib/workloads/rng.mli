(** Deterministic pseudo-random numbers (splitmix64-style) for reproducible
    experiments. *)

type t

val create : seed:int -> t
val next : t -> int
(** Uniform non-negative 63-bit value. *)

val int : t -> int -> int
(** [int t bound] — uniform in [0, bound). *)

val float : t -> float
(** Uniform in [0, 1). *)

val split : seed:int -> int -> t
(** [split ~seed index] derives the [index]-th independent stream of
    [seed] (avalanche-mixed, so nearby indices give unrelated streams).
    The per-case seeding discipline of parallel fuzz campaigns: case [i]
    always sees the same stream no matter which domain runs it. *)

val shuffle : t -> 'a array -> unit
