(* Aggregated test runner: `dune runtest`. *)

let () =
  Alcotest.run "spf"
    [
      ("ir", Test_ir.suite);
      ("analysis", Test_analysis.suite);
      ("verifier", Test_verifier.suite);
      ("parser", Test_parser.suite);
      ("simplify", Test_simplify.suite);
      ("split", Test_split.suite);
      ("profile", Test_profile.suite);
      ("timing", Test_timing.suite);
      ("loop-edges", Test_loop_edges.suite);
      ("interp", Test_interp.suite);
      ("cache", Test_cache.suite);
      ("memsys", Test_memsys.suite);
      ("pass", Test_pass.suite);
      ("schedule", Test_schedule.suite);
      ("distance", Test_distance.suite);
      ("icc", Test_icc.suite);
      ("hoist", Test_hoist.suite);
      ("workloads", Test_workloads.suite);
      ("multicore", Test_multicore.suite);
      ("properties", Test_props.suite);
      ("safety-edges", Test_safety_edges.suite);
      ("term", Test_term.suite);
      ("validate", Test_validate.suite);
      ("fuzz", Test_fuzz.suite);
      ("pool", Test_pool.suite);
      ("supervisor", Test_supervisor.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("engine", Test_engine.suite);
      ("tape", Test_tape.suite);
      ("golden", Test_golden.suite);
      ("serve", Test_serve.suite);
      ("proto-fuzz", Test_proto_fuzz.suite);
      ("cache-journal", Test_cjournal.suite);
    ]
