(* @serve-smoke: end-to-end exercise of a spawned `spf serve` daemon on
   a temp Unix socket — PING, a cold/hot submit pair with a
   byte-identical-body assertion, a mixed hot/cold concurrent burst, one
   injected poisoned request (which must become a classified ERR reply
   while the fleet keeps serving), STATS, and a clean protocol-initiated
   shutdown (the daemon must exit 0).

   Usage: serve_smoke.exe <path-to-spf.exe>                             *)

module Client = Spf_serve.Client
module Loadtest = Spf_serve.Loadtest

let failures = ref 0

let check name ok =
  if ok then Printf.printf "ok   %s\n%!" name
  else begin
    Printf.printf "FAIL %s\n%!" name;
    incr failures
  end

(* One known-good program, same generator the loadtest replays. *)
let good_case =
  let rng = Spf_workloads.Rng.split ~seed:11 0 in
  let spec = Spf_fuzz.Gen.random rng in
  let built = Spf_fuzz.Gen.build spec in
  Spf_valid.Case.to_string
    (Spf_valid.Case.of_concrete ~func:built.Spf_fuzz.Gen.func
       ~mem:built.Spf_fuzz.Gen.mem ~args:built.Spf_fuzz.Gen.args
       ~fuel:(Spf_fuzz.Gen.fuel spec))

(* A demand fault: load far beyond the program break. *)
let poison_case =
  ";; spf-case v1\n!brk 4096\n!fuel 1000\n\
   func poison (0 params, entry bb0) {\n\
   bb0 (entry):\n\
  \  %v.0 = load i32, #1048576\n\
  \  ret %v.0\n\
   }\n"

let rec connect_retry sock n =
  match Client.connect_unix sock with
  | c -> c
  | exception _ when n > 0 ->
      Unix.sleepf 0.05;
      connect_retry sock (n - 1)

let () =
  let spf = Sys.argv.(1) in
  let sock = Filename.temp_file "spf-smoke" ".sock" in
  Sys.remove sock;
  let pid =
    Unix.create_process spf
      [| spf; "serve"; "--socket"; sock |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !finished then begin
        (try Unix.kill pid Sys.sigkill with _ -> ());
        ignore (Unix.waitpid [] pid)
      end)
    (fun () ->
      let c = connect_retry sock 100 in
      check "PING" (Client.ping c);
      (* Cold, then hot: the reply bodies must match byte for byte. *)
      let cold =
        match Client.submit c ~id:"cold" ~case_text:good_case () with
        | Ok r -> r
        | Error e -> failwith ("cold submit: " ^ e)
      in
      check "first submit is cold" (cold.Spf_serve.Proto.r_cache = "cold");
      let hot =
        match Client.submit c ~id:"hot" ~case_text:good_case () with
        | Ok r -> r
        | Error e -> failwith ("hot submit: " ^ e)
      in
      check "second submit is a sim hit"
        (hot.Spf_serve.Proto.r_cache = "sim-hit");
      check "hot body byte-identical to cold"
        (hot.Spf_serve.Proto.r_body = cold.Spf_serve.Proto.r_body);
      (* Poisoned request: a classified ERR for this client only. *)
      (match Client.submit c ~id:"poison" ~case_text:poison_case () with
      | Ok r ->
          (match r.Spf_serve.Proto.r_err with
          | Some (cls, _) ->
              check "poison classified deterministic" (cls = "deterministic")
          | None -> check "poison rejected" false)
      | Error e -> failwith ("poison submit: " ^ e));
      (* The fleet must keep serving after the fault, on the same
         connection and on fresh ones. *)
      (match Client.submit c ~id:"after" ~case_text:good_case () with
      | Ok r ->
          check "same connection survives the fault"
            (r.Spf_serve.Proto.r_cache = "sim-hit"
            && r.Spf_serve.Proto.r_body = cold.Spf_serve.Proto.r_body)
      | Error e -> failwith ("post-poison submit: " ^ e));
      (* Mixed hot/cold concurrent burst with reply-integrity checks. *)
      let burst =
        Loadtest.run ~seed:7 ~count:40 ~dup:0.5 ~concurrency:4
          ~connect:(fun () -> connect_retry sock 20)
          ()
      in
      check "burst: all replied"
        (burst.Loadtest.replies = 40
        && burst.Loadtest.dropped = 0
        && burst.Loadtest.errors = 0);
      check "burst: no corrupted replies" (burst.Loadtest.corrupted = 0);
      check "burst: mixed hot and cold"
        (burst.Loadtest.cold > 0 && burst.Loadtest.sim_hits > 0);
      (match Client.stats c with
      | Ok kv ->
          let get k = Option.value ~default:(-1) (List.assoc_opt k kv) in
          check "STATS counts the hits" (get "sim_hits" >= 2);
          check "STATS counts the fault" (get "errors" >= 1)
      | Error e -> failwith ("stats: " ^ e));
      check "SHUTDOWN acknowledged" (Client.shutdown c);
      Client.close c;
      let _, status = Unix.waitpid [] pid in
      finished := true;
      check "daemon exited cleanly" (status = Unix.WEXITED 0));
  (try Sys.remove sock with Sys_error _ -> ());
  if !failures > 0 then exit 1
